// Network design: the client-server 2-spanner problem (Elkin-Peleg [29],
// Section 4.3.3 of the paper). An operator owns a set of installable links
// (server edges: a backbone plus access links) and must serve a demand set
// (client edges: pairs that need a connection of at most 2 hops), buying
// as few server links as possible.
package main

import (
	"fmt"
	"log"

	"distspanner"
)

func main() {
	// Topology: 4 regions of 8 hosts. Server edges: intra-region links to
	// two regional gateways and a gateway backbone. Client demands:
	// host pairs that must talk within 2 hops.
	const regions, hosts = 4, 8
	n := regions * (hosts + 2) // hosts + 2 gateways per region
	g := distspanner.NewGraph(n)
	servers := []int{}
	gwA := func(r int) int { return r * (hosts + 2) }
	gwB := func(r int) int { return r*(hosts+2) + 1 }
	host := func(r, h int) int { return r*(hosts+2) + 2 + h }

	for r := 0; r < regions; r++ {
		for h := 0; h < hosts; h++ {
			servers = append(servers, g.AddEdge(gwA(r), host(r, h)))
			servers = append(servers, g.AddEdge(gwB(r), host(r, h)))
		}
		servers = append(servers, g.AddEdge(gwA(r), gwB(r)))
		servers = append(servers, g.AddEdge(gwA(r), gwA((r+1)%regions)))
	}

	// Client demands: every intra-region host pair, expressed as direct
	// edges that only exist as demands (not installable).
	clients := []int{}
	for r := 0; r < regions; r++ {
		for a := 0; a < hosts; a++ {
			for b := a + 1; b < hosts; b++ {
				clients = append(clients, g.AddEdge(host(r, a), host(r, b)))
			}
		}
	}

	clientSet := distspanner.NewEdgeSet(g.M())
	for _, e := range clients {
		clientSet.Add(e)
	}
	serverSet := distspanner.NewEdgeSet(g.M())
	for _, e := range servers {
		serverSet.Add(e)
	}

	fmt.Printf("instance: %d vertices, %d installable links, %d demands\n",
		n, serverSet.Len(), clientSet.Len())

	res, err := distspanner.BuildClientServer2Spanner(g, clientSet, serverSet, distspanner.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if !distspanner.VerifyClientServer(g, clientSet, serverSet, res.Spanner, 2) {
		log.Fatal("solution does not serve all demands")
	}
	fmt.Printf("links purchased: %d of %d installable (%.0f%%)\n",
		res.Spanner.Len(), serverSet.Len(),
		100*float64(res.Spanner.Len())/float64(serverSet.Len()))
	fmt.Printf("distributed run: %d rounds, %d iterations\n", res.Stats.Rounds, res.Iterations)

	// Structural optimum for comparison: serving all pairs of a region
	// needs one full gateway star per region = regions * hosts links.
	fmt.Printf("structural optimum: %d links (one gateway star per region)\n", regions*hosts)
}
