// Lower bound walkthrough: builds the paper's Figure 1 construction
// G(ℓ,β), demonstrates the spanner-size dichotomy that powers Theorem 1.1,
// and meters the Alice/Bob cut while a distributed protocol runs —
// the executable version of the two-party simulation argument.
//
// This example exercises the research harness (internal/lb) rather than
// the end-user facade.
package main

import (
	"fmt"
	"log"

	"distspanner/internal/lb"
	"distspanner/internal/span"
)

func main() {
	l, beta := 4, 6
	fmt.Printf("G(ℓ=%d, β=%d): n = 2ℓβ+5ℓ = %d, |D| = (ℓβ)² = %d\n", l, beta, 2*l*beta+5*l, l*beta*l*beta)

	// Disjoint inputs: a sparse 5-spanner exists.
	a, b := lb.DisjointInputs(l*l, 0.4, 1)
	f, err := lb.NewFig1(l, beta, a, b)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.VerifyClaim22(); err != nil {
		log.Fatal(err)
	}
	h := f.NonDSpanner()
	fmt.Printf("disjoint inputs: non-D edges form a 5-spanner: %v, size %d <= 7ℓβ = %d\n",
		span.IsDirectedKSpanner(f.G, h, 5), h.Len(), 7*l*beta)

	// Intersecting inputs: every spanner needs β² D-edges per conflict.
	a2, b2 := lb.IntersectingInputs(l*l, 1, 0.3, 2)
	f2, err := lb.NewFig1(l, beta, a2, b2)
	if err != nil {
		log.Fatal(err)
	}
	forced := f2.ForcedDEdges()
	fmt.Printf("one conflicting bit: %d D-edges are forced into EVERY k-spanner (β² = %d)\n",
		forced.Len(), beta*beta)

	// The two-party view: Bob simulates Y1, Alice the rest; only Θ(ℓ)
	// edges cross. Any algorithm that decides the spanner size lets them
	// solve set-disjointness, which needs Ω(ℓ²) bits.
	comm, _ := f.G.Underlying()
	report, err := lb.MeterLearnBall(comm, f.CutSide(), 5, 32, l*l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cut between Alice and Bob: %d edges (3ℓ)\n", report.CutEdges)
	fmt.Printf("running 'learn your 5-ball' pushed %d bits across the cut\n", report.Stats.CutBits)
	fmt.Printf("disjointness needs Ω(ℓ²) = %d bits => any CONGEST algorithm needs >= %.2f rounds at 32 bits/edge\n",
		l*l, report.ImpliedRounds)
	fmt.Println()
	fmt.Println("scaling the theorem curve T(n) = Ω(√n/(√α·log n)) for α = 4:")
	for _, n := range []int{1 << 10, 1 << 14, 1 << 18} {
		fmt.Printf("  n = %7d: %8.1f rounds\n", n, lb.RandomizedDirectedRounds(n, 4))
	}
}
