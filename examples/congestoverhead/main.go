// CONGEST overhead: the paper's Section 1.3 observes that a direct
// CONGEST implementation of the 2-spanner algorithm pays an O(Δ) round
// overhead, because candidates must ship O(Δ)-word stars and density
// tables through O(log n)-bit messages. This example runs the same
// algorithm in both models on increasingly dense graphs and shows the
// overhead growing with Δ while the outputs stay identical.
package main

import (
	"fmt"
	"log"

	"distspanner"
)

func main() {
	fmt.Println("same algorithm, same seed, LOCAL vs CONGEST execution:")
	fmt.Printf("%8s %5s %12s %12s %14s %10s\n",
		"graph", "Δ", "localRounds", "subrounds", "congestRounds", "overhead")
	for _, n := range []int{8, 12, 16, 24, 32} {
		g := clique(n)
		local, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		congest, err := distspanner.Build2SpannerCongest(g, distspanner.Options{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		if !local.Spanner.Equal(congest.Spanner) {
			log.Fatal("executions diverged — they must not")
		}
		fmt.Printf("%8s %5d %12d %12d %14d %9.1fx\n",
			fmt.Sprintf("K%d", n), g.MaxDegree(),
			local.Stats.Rounds, congest.Subrounds, congest.Stats.Rounds,
			float64(congest.Stats.Rounds)/float64(local.Stats.Rounds))
	}
	fmt.Println()
	fmt.Println("every CONGEST message fits the enforced O(log n) budget; the price is Θ(Δ)")
	fmt.Println("physical rounds per logical round — exactly the Section 1.3 overhead, and the")
	fmt.Println("reason the paper leaves an efficient CONGEST 2-spanner algorithm open.")
}

func clique(n int) *distspanner.Graph {
	g := distspanner.NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}
