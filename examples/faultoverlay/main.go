// Fault-tolerant overlay: spanners as resilient communication overlays.
// The paper's algorithm family connects to fault-tolerant spanners through
// Dinitz-Krauthgamer [21]; this example builds f-fault-tolerant 2-spanners
// of a dense service mesh, then knocks out vertices and shows the overlay
// still 2-spans whatever survives — while the plain spanner breaks.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"distspanner"
)

func main() {
	// A dense service mesh: 24 services with many direct links.
	g := distspanner.RandomGraph(24, 0.6, 3)
	fmt.Printf("mesh: n=%d m=%d\n", g.N(), g.M())

	plain, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain 2-spanner: %d edges (fault budget 0)\n", plain.Spanner.Len())

	for _, f := range []int{1, 2} {
		h := distspanner.FaultTolerant2Spanner(g, f)
		ok := distspanner.VerifyFaultTolerant2Spanner(g, h, f)
		fmt.Printf("f=%d fault-tolerant 2-spanner: %d edges, verified over all fault sets: %v\n",
			f, h.Len(), ok)
		if !ok {
			log.Fatal("fault tolerance verification failed")
		}
	}

	// Demonstrate the difference under random single faults.
	h1 := distspanner.FaultTolerant2Spanner(g, 1)
	rng := rand.New(rand.NewSource(7))
	plainBreaks, ftBreaks := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		dead := rng.Intn(g.N())
		if !survives(g, plain.Spanner, dead) {
			plainBreaks++
		}
		if !survives(g, h1, dead) {
			ftBreaks++
		}
	}
	fmt.Printf("random single faults (%d trials): plain spanner broke %d times, f=1 overlay broke %d\n",
		trials, plainBreaks, ftBreaks)
	if ftBreaks > 0 {
		log.Fatal("the f=1 overlay must never break under a single fault")
	}
}

// survives reports whether h - {dead} still 2-spans g - {dead}.
func survives(g *distspanner.Graph, h *distspanner.EdgeSet, dead int) bool {
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if e.U == dead || e.V == dead {
			continue
		}
		if h.Has(i) {
			continue
		}
		ok := false
		for _, arc := range g.Adj(e.U) {
			w := arc.To
			if w == dead || w == e.V || !h.Has(arc.Edge) {
				continue
			}
			if idx, has := g.EdgeIndex(w, e.V); has && h.Has(idx) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
