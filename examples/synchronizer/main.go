// Synchronizer: the classic spanner application (Awerbuch-Peleg; refs
// [2, 3, 57] of the paper). A synchronizer overlay must reach every
// vertex while keeping few edges and small stretch: broadcasting over a
// 2-spanner costs proportionally fewer messages per round, while any
// neighbor-to-neighbor exchange of the original graph is delayed by at
// most a factor of 2.
//
// This example builds a 2-spanner of a dense cluster topology, then
// simulates a full-network broadcast over both the original graph and the
// spanner overlay, comparing message counts and completion times.
package main

import (
	"fmt"
	"log"

	"distspanner"
)

func main() {
	// A "datacenter row": dense clusters bridged by a backbone, the kind
	// of topology where per-round full-neighborhood chatter is expensive.
	g := buildClusteredNetwork(6, 9)
	fmt.Printf("network: n=%d m=%d maxΔ=%d\n", g.N(), g.M(), g.MaxDegree())

	res, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if !distspanner.VerifySpanner(g, res.Spanner, 2) {
		log.Fatal("spanner invalid")
	}
	fmt.Printf("overlay: %d of %d edges kept (%.0f%%)\n",
		res.Spanner.Len(), g.M(), 100*float64(res.Spanner.Len())/float64(g.M()))

	// Simulate a synchronizer "pulse": flood from vertex 0, where each
	// informed vertex forwards over all its (overlay) edges each round.
	fullRounds, fullMsgs := flood(g, nil)
	spanRounds, spanMsgs := flood(g, res.Spanner)
	fmt.Printf("broadcast on full graph:  %d rounds, %d messages\n", fullRounds, fullMsgs)
	fmt.Printf("broadcast on 2-spanner:   %d rounds, %d messages\n", spanRounds, spanMsgs)
	fmt.Printf("message saving: %.0f%%; round dilation: %.2fx (bounded by the stretch, 2)\n",
		100*(1-float64(spanMsgs)/float64(fullMsgs)),
		float64(spanRounds)/float64(fullRounds))
	if spanRounds > 2*fullRounds {
		log.Fatal("stretch bound violated")
	}
}

// flood simulates synchronous flooding from vertex 0 restricted to the
// overlay (nil = all edges), returning rounds to full coverage and total
// messages sent.
func flood(g *distspanner.Graph, overlay *distspanner.EdgeSet) (rounds, messages int) {
	informed := make([]bool, g.N())
	informed[0] = true
	frontier := []int{0}
	covered := 1
	for covered < g.N() {
		rounds++
		var next []int
		for _, v := range frontier {
			for _, arc := range g.Adj(v) {
				if overlay != nil && !overlay.Has(arc.Edge) {
					continue
				}
				messages++
				if !informed[arc.To] {
					informed[arc.To] = true
					covered++
					next = append(next, arc.To)
				}
			}
		}
		if len(next) == 0 {
			break
		}
		frontier = next
	}
	return rounds, messages
}

// buildClusteredNetwork makes `clusters` cliques of size `size` whose
// leaders form a cycle backbone.
func buildClusteredNetwork(clusters, size int) *distspanner.Graph {
	g := distspanner.NewGraph(clusters * size)
	leader := func(c int) int { return c * size }
	for c := 0; c < clusters; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
		g.AddEdge(leader(c), leader((c+1)%clusters))
	}
	return g
}
