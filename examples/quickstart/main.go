// Quickstart: build a 2-spanner of a random graph with the paper's
// distributed algorithm, verify it, and compare with the sequential
// Kortsarz-Peleg greedy baseline.
package main

import (
	"fmt"
	"log"

	"distspanner"
)

func main() {
	// A connected random graph with some dense neighborhoods.
	g := distspanner.RandomGraph(64, 0.18, 42)
	fmt.Printf("graph: n=%d m=%d maxΔ=%d\n", g.N(), g.M(), g.MaxDegree())

	// Run the distributed algorithm (Theorem 1.3): guaranteed O(log m/n)
	// approximation in O(log n · log Δ) LOCAL rounds w.h.p.
	res, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-spanner: %d of %d edges\n", res.Spanner.Len(), g.M())
	fmt.Printf("valid: %v\n", distspanner.VerifySpanner(g, res.Spanner, 2))
	fmt.Printf("distributed execution: %d rounds, %d iterations, %d messages, %d total bits\n",
		res.Stats.Rounds, res.Iterations, res.Stats.Messages, res.Stats.TotalBits)

	// Compare with the sequential greedy of Kortsarz and Peleg [46] — the
	// benchmark whose O(log m/n) ratio the distributed algorithm matches.
	kp := distspanner.KortsarzPeleg(g)
	fmt.Printf("sequential greedy baseline: %d edges\n", kp.Len())

	// Any 2-spanner of a connected graph needs at least n-1 edges.
	fmt.Printf("trivial lower bound on OPT: %d edges\n", g.N()-1)
}
