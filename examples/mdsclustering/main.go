// MDS clustering: cluster-head election in a sensor-style network using
// the paper's CONGEST dominating-set algorithm (Section 5, Theorem 5.1).
// Every sensor ends up either a cluster head or adjacent to one, heads are
// few (guaranteed O(log Δ) of optimal), and every message of the election
// fits in O(log n) bits — it runs unmodified on bandwidth-limited radios.
package main

import (
	"fmt"
	"log"

	"distspanner"
)

func main() {
	// A sensor field: random geometric-ish graph approximated by a grid
	// with random shortcuts.
	g := buildSensorField(10, 10, 60)
	fmt.Printf("sensor field: n=%d m=%d maxΔ=%d\n", g.N(), g.M(), g.MaxDegree())

	res, err := distspanner.BuildMDS(g, distspanner.MDSOptions{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	heads := res.DominatingSet
	fmt.Printf("cluster heads elected: %d\n", len(heads))
	fmt.Printf("rounds: %d, iterations: %d\n", res.Stats.Rounds, res.Iterations)
	fmt.Printf("max bits over any link in any round: %d (CONGEST-compatible: %v)\n",
		res.Stats.MaxEdgeRoundBits, res.Stats.CongestCompatible(64))

	// Verify the domination property: every sensor is a head or hears one.
	inDS := make(map[int]bool, len(heads))
	for _, v := range heads {
		inDS[v] = true
	}
	orphans := 0
	for v := 0; v < g.N(); v++ {
		if inDS[v] {
			continue
		}
		ok := false
		for _, arc := range g.Adj(v) {
			if inDS[arc.To] {
				ok = true
				break
			}
		}
		if !ok {
			orphans++
		}
	}
	fmt.Printf("sensors without a head in range: %d\n", orphans)
	if orphans > 0 {
		log.Fatal("domination violated")
	}
}

// buildSensorField makes a rows x cols grid plus `extra` random shortcut
// links (deterministic pattern).
func buildSensorField(rows, cols, extra int) *distspanner.Graph {
	g := distspanner.NewGraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	// Deterministic "long links" to create degree variance.
	n := rows * cols
	for i := 0; i < extra; i++ {
		u := (i * 37) % n
		v := (i*53 + 11) % n
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}
