// Command experiments regenerates every experiment in EXPERIMENTS.md:
// one experiment per figure/theorem of "Distributed Spanner Approximation"
// (Censor-Hillel & Dory, PODC 2018), printing paper-expectation versus
// measured values.
//
// Usage:
//
//	experiments            # run everything
//	experiments -exp E6    # run a single experiment
//	experiments -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"distspanner/internal/baseline"
	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/lb"
	"distspanner/internal/localmodel"
	"distspanner/internal/mds"
	"distspanner/internal/span"
)

type experiment struct {
	id    string
	title string
	run   func() error
}

func main() {
	expFlag := flag.String("exp", "", "run only this experiment id (e.g. E6)")
	listFlag := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	exps := []experiment{
		{"E1", "Figure 1 / Lemma 2.3: G(ℓ,β) spanner-size dichotomy", e1},
		{"E2", "Theorem 1.1: randomized directed k-spanner lower bound", e2},
		{"E3", "Theorem 2.8 / Lemma 2.6: deterministic gap-disjointness bound", e3},
		{"E4", "Figure 2 / Theorems 2.9, 2.10: weighted lower bounds", e4},
		{"E5", "Figure 3 / Claim 3.1: MVC gadget equality and Section 3 bounds", e5},
		{"E6", "Theorem 1.3: distributed 2-spanner, guaranteed O(log m/n)", e6},
		{"E7", "Theorem 4.9: directed 2-spanner", e7},
		{"E8", "Theorem 4.12: weighted 2-spanner, O(log Δ)", e8},
		{"E9", "Theorem 4.15: client-server 2-spanner", e9},
		{"E10", "Theorem 5.1: CONGEST MDS, guaranteed O(log Δ)", e10},
		{"E11", "Theorem 1.2: LOCAL (1+ε)-approximation", e11},
		{"E12", "Separations: LOCAL vs CONGEST, directed vs undirected, weighted vs not", e12},
		{"E13", "Baswana-Sen baseline: O(n^{1/k})-approximation in k rounds", e13},
		{"E14", "Section 1.3: direct CONGEST implementation pays Θ(Δ) overhead", e14},
		{"E15", "Ablations: voting threshold and the Section 4.1 star rule", e15},
	}
	if *listFlag {
		for _, e := range exps {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	failed := false
	for _, e := range exps {
		if *expFlag != "" && !strings.EqualFold(*expFlag, e.id) {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
		if err := e.run(); err != nil {
			fmt.Printf("FAILED: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func row(cols ...interface{}) {
	parts := make([]string, len(cols))
	for i, c := range cols {
		switch v := c.(type) {
		case float64:
			parts[i] = fmt.Sprintf("%10.2f", v)
		case string:
			parts[i] = fmt.Sprintf("%-14s", v)
		default:
			parts[i] = fmt.Sprintf("%10v", v)
		}
	}
	fmt.Println("  " + strings.Join(parts, " "))
}

func e1() error {
	row("inputs", "l", "beta", "n", "|D|", "nonD", "bound7lb", "conflicts", "forcedD", "claim2.2")
	for _, p := range [][2]int{{3, 4}, {4, 6}, {5, 8}} {
		l, beta := p[0], p[1]
		a, b := lb.DisjointInputs(l*l, 0.4, int64(l))
		f, err := lb.NewFig1(l, beta, a, b)
		if err != nil {
			return err
		}
		c22 := "ok"
		if err := f.VerifyClaim22(); err != nil {
			c22 = "FAIL"
		}
		nonD := f.NonDSpanner()
		valid := span.IsDirectedKSpanner(f.G, nonD, 5)
		if !valid {
			return fmt.Errorf("disjoint non-D spanner invalid at ℓ=%d", l)
		}
		row("disjoint", l, beta, f.G.N(), f.D.Len(), nonD.Len(), 7*l*beta, 0, 0, c22)

		conflicts := 2
		a2, b2 := lb.IntersectingInputs(l*l, conflicts, 0.3, int64(l)+7)
		f2, err := lb.NewFig1(l, beta, a2, b2)
		if err != nil {
			return err
		}
		c22 = "ok"
		if err := f2.VerifyClaim22(); err != nil {
			c22 = "FAIL"
		}
		forced := f2.ForcedDEdges().Len()
		if forced != conflicts*beta*beta {
			return fmt.Errorf("forced D-edges %d != cβ² = %d", forced, conflicts*beta*beta)
		}
		row("intersecting", l, beta, f2.G.N(), f2.D.Len(), f2.NonDSpanner().Len(), 7*l*beta, conflicts, forced, c22)
	}
	fmt.Println("  paper: disjoint => 5-spanner with <= 7ℓβ edges; each conflict forces β² D-edges (Lemma 2.3)")
	return nil
}

func e2() error {
	row("n", "alpha=1", "alpha=4", "alpha=16", "alpha=64")
	for _, n := range []int{256, 1024, 4096, 16384, 65536} {
		row(n,
			lb.RandomizedDirectedRounds(n, 1),
			lb.RandomizedDirectedRounds(n, 4),
			lb.RandomizedDirectedRounds(n, 16),
			lb.RandomizedDirectedRounds(n, 64))
	}
	fmt.Println("  paper: T(n) = Ω(√n / (√α·log n)) for randomized α-approx, k >= 5 (Theorem 1.1)")

	// Metered two-party run: learning 5-balls on G(ℓ,β) pushes bits
	// across the Θ(ℓ) cut; the disjointness requirement ℓ² bits implies
	// the round bound.
	l, beta := 4, 6
	a, b := lb.DisjointInputs(l*l, 0.4, 1)
	f, err := lb.NewFig1(l, beta, a, b)
	if err != nil {
		return err
	}
	comm, _ := f.G.Underlying()
	bandwidth := 32
	rep, err := lb.MeterLearnBall(comm, f.CutSide(), 5, bandwidth, l*l)
	if err != nil {
		return err
	}
	fmt.Printf("  two-party metering on G(%d,%d): cut edges = %d (3ℓ), bits across cut = %d,\n",
		l, beta, rep.CutEdges, rep.Stats.CutBits)
	fmt.Printf("  disjointness needs Ω(ℓ²)=%d bits => >= %.2f CONGEST rounds at %d bits/edge/round\n",
		l*l, rep.ImpliedRounds, bandwidth)

	// Decision-rule soundness at scale: β > 7αℓ.
	alpha := 2.0
	l2, b2 := 3, 45
	aD, bD := lb.DisjointInputs(l2*l2, 0.4, 2)
	fD, err := lb.NewFig1(l2, b2, aD, bD)
	if err != nil {
		return err
	}
	aI, bI := lb.IntersectingInputs(l2*l2, 1, 0.3, 3)
	fI, err := lb.NewFig1(l2, b2, aI, bI)
	if err != nil {
		return err
	}
	okD := lb.DecideDisjointness(fD, fD.MinimalSpanner(), alpha)
	okI := !lb.DecideDisjointness(fI, fI.MinimalSpanner(), alpha)
	fmt.Printf("  Lemma 2.4 decision rule at α=%.0f: disjoint classified %v, intersecting classified %v (margin %g)\n",
		alpha, okD, okI, lb.ThresholdGap(fD, alpha))
	if !okD || !okI {
		return fmt.Errorf("decision rule misclassified")
	}
	return nil
}

func e3() error {
	row("n", "alpha=1", "alpha=4", "alpha=16", "rand(a=4)")
	for _, n := range []int{256, 1024, 4096, 16384} {
		row(n,
			lb.DeterministicDirectedRounds(n, 1),
			lb.DeterministicDirectedRounds(n, 4),
			lb.DeterministicDirectedRounds(n, 16),
			lb.RandomizedDirectedRounds(n, 4))
	}
	fmt.Println("  paper: deterministic Ω(n/(√α·log n)) vs randomized Ω(√n/(√α·log n)) (Theorem 2.8 vs 1.1)")

	// Gap dichotomy at β <= ℓ.
	l, beta := 12, 11
	a, b := lb.DisjointInputs(l*l, 0.3, 1)
	f, err := lb.NewFig1(l, beta, a, b)
	if err != nil {
		return err
	}
	af, bf := lb.FarFromDisjointInputs(l*l, 2)
	f2, err := lb.NewFig1(l, beta, af, bf)
	if err != nil {
		return err
	}
	forced := f2.ForcedDEdges().Len()
	need := float64(beta*beta) * float64(l*l) / 12
	fmt.Printf("  gap instance ℓ=%d β=%d: disjoint non-D size %d <= 7ℓ²=%d; far inputs force %d >= β²ℓ²/12 = %.0f D-edges\n",
		l, beta, f.NonDSpanner().Len(), 7*l*l, forced, need)
	if float64(forced) < need {
		return fmt.Errorf("gap dichotomy violated")
	}
	return nil
}

func e4() error {
	row("l", "n", "disjoint", "0costOK", "conflictForced")
	for _, l := range []int{3, 5, 8} {
		a, b := lb.DisjointInputs(l*l, 0.4, int64(l))
		f, err := lb.NewFig2(l, a, b)
		if err != nil {
			return err
		}
		ok := span.IsDirectedKSpanner(f.G, f.ZeroCostSpanner(), 4)
		a2, b2 := lb.IntersectingInputs(l*l, 1, 0.3, int64(l)+1)
		f2, err := lb.NewFig2(l, a2, b2)
		if err != nil {
			return err
		}
		bad := span.IsDirectedKSpanner(f2.G, f2.ZeroCostSpanner(), 4)
		row(l, f.G.N(), "yes", ok, !bad)
		if !ok || bad {
			return fmt.Errorf("Fig2 dichotomy broken at ℓ=%d", l)
		}
	}
	fmt.Println("  paper: 0-cost 4-spanner exists iff inputs disjoint (Theorem 2.9)")
	// Undirected variant across k.
	for _, k := range []int{4, 5, 7} {
		a, b := lb.DisjointInputs(9, 0.4, int64(k))
		fu, err := lb.NewFig2Undirected(3, k, a, b)
		if err != nil {
			return err
		}
		if !span.IsKSpanner(fu.G, fu.ZeroCostSpanner(), k) {
			return fmt.Errorf("undirected Fig2 failed at k=%d", k)
		}
	}
	fmt.Println("  undirected variant verified for k in {4,5,7} (Theorem 2.10)")
	row("n", "dir n/logn", "undir k=4", "undir k=8")
	for _, n := range []int{1024, 4096, 16384} {
		row(n, lb.WeightedDirectedRounds(n), lb.WeightedUndirectedRounds(n, 4), lb.WeightedUndirectedRounds(n, 8))
	}
	return nil
}

func e5() error {
	row("seed", "n", "m", "MVC", "2spanGS", "equal")
	for seed := int64(0); seed < 5; seed++ {
		g := gen.GNP(5, 0.5, seed)
		m := lb.NewMVCGadget(g, false)
		mvc := len(exact.MinVertexCover(g))
		_, cost, err := exact.MinSpanner(m.GS, exact.SpannerOptions{K: 2})
		if err != nil {
			return err
		}
		row(seed, g.N(), g.M(), mvc, cost, cost == float64(mvc))
		if cost != float64(mvc) {
			return fmt.Errorf("Claim 3.1 equality failed at seed %d", seed)
		}
	}
	// Directed gadget.
	g := gen.Cycle(4)
	gs, _ := lb.DirectedMVCGadget(g, false)
	mvc := len(exact.MinVertexCover(g))
	_, cost, err := exact.MinDirectedSpanner(gs, exact.SpannerOptions{K: 2})
	if err != nil {
		return err
	}
	fmt.Printf("  directed gadget (C4): MVC=%d, directed 2-spanner cost=%.0f, equal=%v\n", mvc, cost, cost == float64(mvc))
	fmt.Println("  paper: cost of min 2-spanner of G_S == MVC(G) exactly (Claim 3.1)")
	// Lemma 3.2 run forwards: the paper's weighted spanner algorithm on
	// G_S yields a distributed O(log Δ)-approximate vertex cover.
	gf := gen.ConnectedGNP(14, 0.35, 9)
	mvcOpt := len(exact.MinVertexCover(gf))
	res, err := lb.MVCViaSpanner(gf, core.Options{Seed: 2})
	if err != nil {
		return err
	}
	fmt.Printf("  Lemma 3.2 forwards: distributed MVC via weighted 2-spanner: |C|=%d vs OPT=%d (ratio %.2f), 3x%d simulated rounds\n",
		len(res.Cover), mvcOpt, float64(len(res.Cover))/float64(mvcOpt), res.GadgetRounds)
	// Communication-complexity axiom, certified at small scale.
	if err := lb.VerifyDisjointnessFoolingSet(10); err != nil {
		return err
	}
	fmt.Println("  fooling-set certificate: D(DISJ_N) >= N machine-checked for N <= 10")
	row("param", "value", "bound")
	row("Δ=1024", lb.Weighted2SpannerLocalRoundsDelta(1024), "Ω(logΔ/loglogΔ) Thm 3.3")
	row("n=65536", lb.Weighted2SpannerLocalRoundsN(65536), "Ω(√(logn/loglogn))")
	row("n=4096", lb.ExactWeighted2SpannerRounds(4096), "Ω(n²/log²n) Thm 3.5")
	return nil
}

type familyCase struct {
	name string
	g    *graph.Graph
}

func spannerFamilies() []familyCase {
	return []familyCase{
		{"K16", gen.Clique(16)},
		{"K_8,8", gen.CompleteBipartite(8, 8)},
		{"Q4", gen.Hypercube(4)},
		{"grid6x6", gen.Grid(6, 6)},
		{"gnp40-.15", gen.ConnectedGNP(40, 0.15, 1)},
		{"gnp60-.08", gen.ConnectedGNP(60, 0.08, 2)},
		{"planted4x8", gen.PlantedStars(4, 8, 0.4, 3)},
	}
}

func e6() error {
	row("family", "n", "m", "maxΔ", "alg(max/5s)", "KP", "LB(n-1)", "maxRatio", "O(log m/n)", "iters", "rounds")
	for _, fc := range spannerFamilies() {
		g := fc.g
		maxSize, maxIter, maxRounds := 0, 0, 0
		for seed := int64(0); seed < 5; seed++ {
			res, err := core.TwoSpanner(g, core.Options{Seed: seed})
			if err != nil {
				return err
			}
			if !span.IsKSpanner(g, res.Spanner, 2) {
				return fmt.Errorf("%s: invalid spanner", fc.name)
			}
			if res.Fallbacks != 0 {
				return fmt.Errorf("%s: Claim 4.4 fallback", fc.name)
			}
			if res.Spanner.Len() > maxSize {
				maxSize = res.Spanner.Len()
			}
			if res.Iterations > maxIter {
				maxIter = res.Iterations
			}
			if res.Stats.Rounds > maxRounds {
				maxRounds = res.Stats.Rounds
			}
		}
		kp := baseline.KortsarzPeleg(g).Len()
		lbnd := g.N() - 1
		ratio := float64(maxSize) / float64(lbnd)
		logBound := math.Log2(math.Max(2, float64(g.M())/float64(g.N()))) + 1
		row(fc.name, g.N(), g.M(), g.MaxDegree(), maxSize, kp, lbnd, ratio, logBound, maxIter, maxRounds)
	}
	// Guaranteed vs expectation-only comparator on a fixed instance.
	g := gen.ConnectedGNP(30, 0.3, 9)
	worstAlg, worstRand := 0, 0
	for seed := int64(0); seed < 8; seed++ {
		res, err := core.TwoSpanner(g, core.Options{Seed: seed})
		if err != nil {
			return err
		}
		if res.Spanner.Len() > worstAlg {
			worstAlg = res.Spanner.Len()
		}
		if r := baseline.RandomStarSpanner(g, seed).Len(); r > worstRand {
			worstRand = r
		}
	}
	fmt.Printf("  worst-over-8-seeds on gnp30: paper algorithm %d edges vs expectation-only comparator %d edges\n",
		worstAlg, worstRand)
	// Round-complexity scaling sweep: iterations against log n · log Δ.
	fmt.Println("  scaling sweep (planted stars, max over 3 seeds):")
	row("n", "maxΔ", "iters", "lognlogΔ")
	for _, c := range []int{4, 8, 16} {
		gs := gen.PlantedStars(c, 8, 0.4, 5)
		maxIter := 0
		for seed := int64(0); seed < 3; seed++ {
			res, err := core.TwoSpanner(gs, core.Options{Seed: seed})
			if err != nil {
				return err
			}
			if res.Iterations > maxIter {
				maxIter = res.Iterations
			}
		}
		row(gs.N(), gs.MaxDegree(), maxIter,
			math.Log2(float64(gs.N()))*math.Log2(float64(gs.MaxDegree())))
	}
	fmt.Println("  paper: ratio O(log m/n) ALWAYS; O(log n·log Δ) rounds w.h.p. (Theorem 1.3)")
	return nil
}

func e7() error {
	row("instance", "n", "m", "|H|(max/3s)", "valid", "iters", "rounds")
	instances := []struct {
		name string
		d    *graph.Digraph
	}{
		{"rdg20-.25", gen.RandomDigraph(20, 0.25, 1)},
		{"rdg30-.15", gen.RandomDigraph(30, 0.15, 2)},
		{"biclique12", gen.RandomDigraph(12, 1.1, 3)},
		{"oriented-K12", gen.OrientRandomly(gen.Clique(12), 0.5, 4)},
	}
	for _, in := range instances {
		maxSize, maxIter, maxRounds := 0, 0, 0
		for seed := int64(0); seed < 3; seed++ {
			res, err := core.DirectedTwoSpanner(in.d, core.Options{Seed: seed})
			if err != nil {
				return err
			}
			if !span.IsDirectedKSpanner(in.d, res.Spanner, 2) {
				return fmt.Errorf("%s: invalid directed spanner", in.name)
			}
			if res.Spanner.Len() > maxSize {
				maxSize = res.Spanner.Len()
			}
			if res.Iterations > maxIter {
				maxIter = res.Iterations
			}
			if res.Stats.Rounds > maxRounds {
				maxRounds = res.Stats.Rounds
			}
		}
		row(in.name, in.d.N(), in.d.M(), maxSize, true, maxIter, maxRounds)
	}
	fmt.Println("  paper: same O(log m/n) ratio and O(log n·log Δ) rounds as undirected (Theorem 4.9)")
	return nil
}

func e8() error {
	row("W", "n", "m", "cost(max/3s)", "KPcost", "alg/KP", "O(logΔ)", "iters")
	for _, W := range []float64{2, 16, 128} {
		g := gen.RandomWeights(gen.ConnectedGNP(30, 0.25, 3), 1, W, 7)
		maxCost := 0.0
		maxIter := 0
		for seed := int64(0); seed < 3; seed++ {
			res, err := core.TwoSpanner(g, core.Options{Seed: seed})
			if err != nil {
				return err
			}
			if !span.IsKSpanner(g, res.Spanner, 2) {
				return fmt.Errorf("invalid weighted spanner at W=%f", W)
			}
			if res.Cost > maxCost {
				maxCost = res.Cost
			}
			if res.Iterations > maxIter {
				maxIter = res.Iterations
			}
		}
		kp := span.Cost(g, baseline.KortsarzPeleg(g))
		row(W, g.N(), g.M(), maxCost, kp, maxCost/kp, math.Log2(float64(g.MaxDegree()))+1, maxIter)
	}
	// True ratio on a small exactly-solvable weighted instance.
	g := gen.RandomWeights(gen.ConnectedGNP(9, 0.4, 2), 1, 8, 5)
	res, err := core.TwoSpanner(g, core.Options{Seed: 1})
	if err != nil {
		return err
	}
	_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
	if err != nil {
		return err
	}
	fmt.Printf("  exact check (n=9, W=8): alg cost %.2f vs OPT %.2f, ratio %.2f vs O(log Δ)=%.2f\n",
		res.Cost, opt, res.Cost/opt, math.Log2(float64(g.MaxDegree()))+1)
	fmt.Println("  paper: ratio O(log Δ), rounds O(log n·log(ΔW)) (Theorem 4.12)")
	return nil
}

func e9() error {
	row("split", "|C|", "|V(C)|", "ΔS", "cost", "LB|V(C)|/4", "bound", "valid")
	g := gen.ConnectedGNP(30, 0.25, 5)
	for _, pc := range []float64{0.3, 0.6, 0.9} {
		clients, servers := gen.ClientServerSplit(g, pc, 0.7, 11)
		res, err := core.ClientServerTwoSpanner(g, clients, servers, core.Options{Seed: 2})
		if err != nil {
			return err
		}
		valid := span.ClientServerValid(g, clients, servers, res.Spanner, 2)
		if !valid {
			return fmt.Errorf("invalid client-server solution at pc=%f", pc)
		}
		vc := span.ClientVertexCount(g, clients)
		lbound := span.ClientServerOPTLowerBound(g, clients)
		// Δ_S: max degree in the server subgraph.
		deltaS := 0
		for v := 0; v < g.N(); v++ {
			d := 0
			for _, arc := range g.Adj(v) {
				if servers.Has(arc.Edge) {
					d++
				}
			}
			if d > deltaS {
				deltaS = d
			}
		}
		bound := math.Min(
			math.Log2(math.Max(2, float64(clients.Len())/float64(vc)))+1,
			math.Log2(float64(deltaS))+1)
		row(fmt.Sprintf("pc=%.1f", pc), clients.Len(), vc, deltaS, float64(res.Spanner.Len()), lbound, bound, valid)
	}
	// True ratio on a small exactly-solvable instance.
	gs := gen.ConnectedGNP(10, 0.4, 8)
	clients, servers := gen.ClientServerSplit(gs, 0.6, 0.8, 3)
	coverable := span.CoverableClients(gs, clients, servers, 2)
	res, err := core.ClientServerTwoSpanner(gs, clients, servers, core.Options{Seed: 4})
	if err != nil {
		return err
	}
	_, opt, err := exact.MinSpanner(gs, exact.SpannerOptions{K: 2, Target: coverable, Allowed: servers})
	if err != nil {
		return err
	}
	fmt.Printf("  exact check (n=10): alg %d edges vs OPT %.0f, ratio %.2f\n",
		res.Spanner.Len(), opt, float64(res.Spanner.Len())/opt)
	fmt.Println("  paper: ratio O(min{log(|C|/|V(C)|), log Δ_S}) (Theorem 4.15)")
	return nil
}

func e10() error {
	row("family", "n", "Δ", "alg(max/8s)", "greedy", "OPT", "maxRatio", "lnΔ+1", "maxbits", "budget")
	families := []familyCase{
		{"star20", gen.Star(20)},
		{"gnp22-.25", gen.ConnectedGNP(22, 0.25, 7)},
		{"grid5x5", gen.Grid(5, 5)},
		{"cycle24", gen.Cycle(24)},
	}
	for _, fc := range families {
		g := fc.g
		worst := 0
		maxBits := 0
		for seed := int64(0); seed < 8; seed++ {
			res, err := mds.Run(g, mds.Options{Seed: seed})
			if err != nil {
				return err
			}
			if len(res.DominatingSet) > worst {
				worst = len(res.DominatingSet)
			}
			if res.Stats.MaxEdgeRoundBits > maxBits {
				maxBits = res.Stats.MaxEdgeRoundBits
			}
		}
		greedy := len(baseline.GreedyMDS(g))
		opt := len(exact.MinDominatingSet(g))
		budget := 8 * dist.IDBits(g.N())
		row(fc.name, g.N(), g.MaxDegree(), worst, greedy, opt,
			float64(worst)/float64(opt), math.Log(float64(g.MaxDegree()))+1, maxBits, budget)
	}
	// Guaranteed vs expectation-only symmetry breaking (the paper's
	// contrast with Jia et al. [43]): worst case over seeds.
	g := gen.PlantedStars(6, 6, 0.1, 3)
	worstOurs, worstExp := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		res, err := mds.Run(g, mds.Options{Seed: seed})
		if err != nil {
			return err
		}
		if len(res.DominatingSet) > worstOurs {
			worstOurs = len(res.DominatingSet)
		}
		if e := len(baseline.ExpectationMDS(g, seed)); e > worstExp {
			worstExp = e
		}
	}
	fmt.Printf("  worst-over-10-seeds on planted stars: paper (voting) %d vs expectation-only (coin flip) %d\n",
		worstOurs, worstExp)
	fmt.Println("  paper: O(log Δ) ratio ALWAYS, O(log n·log Δ) rounds w.h.p., CONGEST messages (Theorem 5.1)")
	return nil
}

func e11() error {
	row("graph", "k", "eps", "cost", "OPT", "(1+eps)OPT", "colors", "radius", "estRounds")
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		eps  float64
	}{
		{"K8", gen.Clique(8), 2, 1.0},
		{"K8", gen.Clique(8), 2, 0.25},
		{"K33", gen.CompleteBipartite(3, 3), 2, 0.5},
		{"gnp10", gen.ConnectedGNP(10, 0.35, 3), 2, 0.5},
		{"gnp9k3", gen.ConnectedGNP(9, 0.35, 5), 3, 0.5},
	}
	for _, c := range cases {
		res, err := localmodel.EpsilonSpanner(c.g, localmodel.Options{K: c.k, Eps: c.eps, Seed: 1})
		if err != nil {
			return err
		}
		if !span.IsKSpanner(c.g, res.Spanner, c.k) {
			return fmt.Errorf("%s: invalid spanner", c.name)
		}
		_, opt, err := exact.MinSpanner(c.g, exact.SpannerOptions{K: c.k})
		if err != nil {
			return err
		}
		if res.Cost > (1+c.eps)*opt+1e-9 {
			return fmt.Errorf("%s: cost %f exceeds (1+ε)OPT %f", c.name, res.Cost, (1+c.eps)*opt)
		}
		row(c.name, c.k, c.eps, res.Cost, opt, (1+c.eps)*opt, res.Colors, res.Radius, res.EstimatedRounds)
	}
	fmt.Println("  paper: (1+ε)·OPT in poly(log n/ε) LOCAL rounds with unbounded local compute (Theorem 1.2)")
	return nil
}

func e12() error {
	// (a) LOCAL vs CONGEST message sizes, and the O(Δ) overhead of a
	// direct CONGEST implementation of the core algorithm.
	fmt.Println("  (a) max bits over one edge in one round: core 2-spanner vs MDS vs CONGEST budget")
	row("graph", "Δ", "core bits", "mds bits", "budget", "core/budget")
	for _, nn := range []int{8, 16, 24} {
		g := gen.Clique(nn)
		resC, err := core.TwoSpanner(g, core.Options{Seed: 1})
		if err != nil {
			return err
		}
		resM, err := mds.Run(g, mds.Options{Seed: 1})
		if err != nil {
			return err
		}
		budget := 8 * dist.IDBits(g.N())
		row(fmt.Sprintf("K%d", nn), g.MaxDegree(), resC.Stats.MaxEdgeRoundBits,
			resM.Stats.MaxEdgeRoundBits, budget,
			float64(resC.Stats.MaxEdgeRoundBits)/float64(budget))
	}
	fmt.Println("  core messages grow with Δ (the Section 1.3 O(Δ) CONGEST overhead); MDS stays within budget")

	// (b) directed vs undirected at equal approximation: undirected gets
	// O(n^{1/k}) in k rounds (Baswana-Sen); directed needs Ω̃(n^{1/2-1/2k}).
	fmt.Println("  (b) undirected k rounds vs directed lower bound at α = n^{1/k}")
	row("n", "k", "undirRounds", "dirLB")
	for _, n := range []int{1024, 4096} {
		for _, k := range []int{2, 3} {
			alpha := math.Pow(float64(n), 1/float64(k))
			row(n, k, k, lb.RandomizedDirectedRounds(n, alpha))
		}
	}

	// (c) weighted vs unweighted: the weighted bound is Ω̃(n) regardless
	// of α; unweighted undirected admits the k-round construction.
	fmt.Println("  (c) weighted directed LB Ω(n/log n):")
	row("n", "weightedLB", "unweighted(k rounds)")
	for _, n := range []int{1024, 4096} {
		row(n, lb.WeightedDirectedRounds(n), 3)
	}
	return nil
}

func e14() error {
	row("graph", "Δ", "localRounds", "subrounds", "congestRounds", "maxbits", "budget", "sameOutput")
	for _, n := range []int{8, 16, 24, 32} {
		g := gen.Clique(n)
		local, err := core.TwoSpanner(g, core.Options{Seed: 1})
		if err != nil {
			return err
		}
		cg, err := core.TwoSpannerCongest(g, core.Options{Seed: 1})
		if err != nil {
			return err
		}
		same := local.Spanner.Equal(cg.Spanner)
		row(fmt.Sprintf("K%d", n), g.MaxDegree(), local.Stats.Rounds, cg.Subrounds,
			cg.Stats.Rounds, cg.Stats.MaxEdgeRoundBits, cg.Bandwidth, same)
		if !same {
			return fmt.Errorf("CONGEST output diverged on K%d", n)
		}
	}
	fmt.Println("  paper (Section 1.3): 'a direct implementation would yield an overhead of O(Δ)';")
	fmt.Println("  measured: subrounds grow linearly in Δ while every message fits the enforced O(log n) budget")
	return nil
}

func e15() error {
	g := gen.PlantedStars(4, 8, 0.4, 3)
	fmt.Println("  (a) acceptance threshold |C_v|/den (paper: den = 8)")
	row("den", "size(max/4s)", "iters(max/4s)")
	for _, den := range []int{1, 2, 8, 32} {
		maxSize, maxIter := 0, 0
		for seed := int64(0); seed < 4; seed++ {
			res, err := core.TwoSpanner(g, core.Options{Seed: seed, VoteDenominator: den})
			if err != nil {
				return err
			}
			if !span.IsKSpanner(g, res.Spanner, 2) {
				return fmt.Errorf("den=%d: invalid", den)
			}
			if res.Spanner.Len() > maxSize {
				maxSize = res.Spanner.Len()
			}
			if res.Iterations > maxIter {
				maxIter = res.Iterations
			}
		}
		row(den, maxSize, maxIter)
	}
	fmt.Println("  (b) Section 4.1 star rule (monotone) vs fresh choices each iteration")
	row("rule", "size(max/4s)", "iters(max/4s)", "fallbacks")
	for _, fresh := range []bool{false, true} {
		name := "monotone(4.1)"
		if fresh {
			name = "fresh"
		}
		maxSize, maxIter := 0, 0
		var fb int64
		for seed := int64(0); seed < 4; seed++ {
			res, err := core.TwoSpanner(g, core.Options{Seed: seed, FreshStars: fresh})
			if err != nil {
				return err
			}
			if res.Spanner.Len() > maxSize {
				maxSize = res.Spanner.Len()
			}
			if res.Iterations > maxIter {
				maxIter = res.Iterations
			}
			fb += res.Fallbacks
		}
		row(name, maxSize, maxIter, fb)
	}
	fmt.Println("  (c) power-of-two density rounding vs exact densities")
	row("rounding", "size(max/4s)", "iters(max/4s)")
	for _, noRound := range []bool{false, true} {
		name := "pow2(paper)"
		if noRound {
			name = "exact"
		}
		maxSize, maxIter := 0, 0
		for seed := int64(0); seed < 4; seed++ {
			res, err := core.TwoSpanner(g, core.Options{Seed: seed, NoRounding: noRound})
			if err != nil {
				return err
			}
			if !span.IsKSpanner(g, res.Spanner, 2) {
				return fmt.Errorf("rounding ablation produced invalid spanner")
			}
			if res.Spanner.Len() > maxSize {
				maxSize = res.Spanner.Len()
			}
			if res.Iterations > maxIter {
				maxIter = res.Iterations
			}
		}
		row(name, maxSize, maxIter)
	}
	fmt.Println("  paper: the monotone rule underpins Claim 4.4 and thus the O(log n log Δ) round bound;")
	fmt.Println("  smaller thresholds accept fewer stars per iteration, larger ones tolerate more vote overlap")
	return nil
}

func e13() error {
	row("n", "k", "stretch", "size(avg/5s)", "c·k·n^{1+1/k}", "ratio<=n^{1/k}", "rounds")
	for _, n := range []int{100, 200} {
		for _, k := range []int{2, 3, 4} {
			g := gen.ConnectedGNP(n, 0.3, int64(n+k))
			total := 0
			for seed := int64(0); seed < 5; seed++ {
				res := baseline.BaswanaSen(g, k, seed)
				if !span.IsKSpanner(g, res.Spanner, res.Stretch) {
					return fmt.Errorf("invalid BS spanner n=%d k=%d", n, k)
				}
				total += res.Spanner.Len()
			}
			avg := float64(total) / 5
			bound := 4 * float64(k) * math.Pow(float64(n), 1+1/float64(k))
			approx := avg / float64(n-1)
			row(n, k, 2*k-1, avg, bound, approx, k)
		}
	}
	fmt.Println("  paper context: size O(k·n^{1+1/k}) => O(n^{1/k})-approximation of the minimum (2k-1)-spanner")
	return nil
}
