// Command benchgate compares a `go test -bench` text output against a
// committed JSON baseline (the BENCH_*.json files at the repo root) and
// exits non-zero when a yardstick regresses by more than -maxregress
// (default 10%).
//
// Absolute rounds/sec moves with the hardware, so the gate never
// compares raw numbers across machines. Instead it estimates a machine
// scale factor — the median current/baseline ratio across every
// benchmark in the file — and flags only benchmarks whose own ratio
// falls more than -maxregress below that median. A uniform slowdown (a
// slower CI runner) cancels out; one yardstick losing ground relative
// to the rest of the suite does not.
//
// Usage:
//
//	go test -run '^$' -bench ... ./internal/dist | tee bench-dist.txt
//	go run ./cmd/benchgate -baseline BENCH_dist.json bench-dist.txt
//
// Refresh the baseline after an intentional perf change:
//
//	go run ./cmd/benchgate -baseline BENCH_dist.json -update bench-dist.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// metric is the custom metric the yardsticks report; ns/op is dominated
// by per-run setup at -benchtime 1x, so the gate tracks a rate metric
// instead: rounds/sec for the engine suites, req/sec for the service
// suite (-metric selects it).
var metric = "rounds/sec"

// benchLine matches one benchmark result line. The trailing -N
// (GOMAXPROCS suffix) is stripped from the name so baselines are
// comparable across runner core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

var metricField *regexp.Regexp

func parseBench(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(data), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		f := metricField.FindStringSubmatch(m[2])
		if f == nil {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(f[1], "%g", &v); err != nil || v <= 0 {
			continue
		}
		out[m[1]] = v
	}
	return out, nil
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	baselinePath := flag.String("baseline", "", "committed BENCH_*.json baseline to compare against (required)")
	update := flag.Bool("update", false, "rewrite the baseline from the bench output instead of gating")
	maxRegress := flag.Float64("maxregress", 0.10, "max allowed regression below the suite median ratio")
	flag.StringVar(&metric, "metric", metric, "custom benchmark metric the gate compares")
	flag.Parse()
	if *baselinePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchgate -baseline BENCH_x.json [-update] [-maxregress 0.10] [-metric rounds/sec] bench-output.txt")
		os.Exit(2)
	}
	metricField = regexp.MustCompile(`(\d+(?:\.\d+)?(?:e[+-]?\d+)?) ` + regexp.QuoteMeta(metric))

	current, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no %q results in %s\n", metric, flag.Arg(0))
		os.Exit(2)
	}

	if *update {
		data, err := json.MarshalIndent(current, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d baselines to %s\n", len(current), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	baseline := make(map[string]float64)
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(baseline))
	ratios := make([]float64, 0, len(baseline))
	for name, base := range baseline {
		if cur, ok := current[name]; ok && base > 0 {
			names = append(names, name)
			ratios = append(ratios, cur/base)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: no benchmarks in common with the baseline")
		os.Exit(2)
	}
	sort.Strings(names)
	scale := median(append([]float64(nil), ratios...))

	status := 0
	for _, name := range names {
		ratio := current[name] / baseline[name]
		rel := ratio / scale
		mark := "ok"
		if rel < 1-*maxRegress {
			mark = "REGRESSION"
			status = 1
		}
		fmt.Printf("%-70s %8.1f -> %8.1f  rel %.2f  %s\n",
			name, baseline[name], current[name], rel, mark)
	}
	fmt.Printf("benchgate: %d yardsticks, machine scale %.2fx, tolerance %.0f%%\n",
		len(names), scale, *maxRegress*100)
	if missing := len(baseline) - len(names); missing > 0 {
		fmt.Printf("benchgate: %d baseline entries had no current result (renamed or filtered benchmark?)\n", missing)
	}
	os.Exit(status)
}
