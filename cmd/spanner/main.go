// Command spanner generates a graph from a named family and runs one of
// the library's spanner / dominating-set algorithms on it, printing the
// solution size, validity, and the distributed execution statistics.
//
// Examples:
//
//	spanner -family gnp -n 60 -p 0.15 -algo 2spanner
//	spanner -family clique -n 20 -algo kp
//	spanner -family gnp -n 40 -p 0.2 -algo mds -seed 7
//	spanner -family bipartite -n 16 -algo eps -eps 0.5 -k 2
//	spanner -family gnp -n 30 -p 0.3 -algo directed
//	spanner -family gnp -n 60 -algo 2spanner -trace run.jsonl
//
// -trace records the distributed run's logical transcript (sends,
// deliveries, wakes, parks, retirements plus the per-round activity
// curve) to a JSONL file and prints its digest; cmd/trace inspects the
// file. -cpuprofile/-memprofile/-exectrace write standard Go profiles
// of the whole process. Both apply only to the simulated (dist-engine)
// algorithms; sequential baselines run no transcript.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"distspanner/internal/baseline"
	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/localmodel"
	"distspanner/internal/mds"
	"distspanner/internal/prof"
	"distspanner/internal/span"
	"distspanner/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spanner: ")
	var (
		family = flag.String("family", "gnp", "graph family: gnp, clique, bipartite, hypercube, grid, cycle, path, star, planted")
		n      = flag.Int("n", 40, "vertex count (side length for grid, dimension for hypercube)")
		p      = flag.Float64("p", 0.2, "edge probability for gnp/planted")
		algo   = flag.String("algo", "2spanner", "algorithm: 2spanner, congest, directed, cs, mds, kp, greedy, bs, eps, trivial")
		seed   = flag.Int64("seed", 1, "random seed")
		engine = flag.String("engine", "auto", "dist engine: auto, barrier, event, step (results are identical; wall clock differs)")
		k      = flag.Int("k", 2, "stretch (bs: builds (2k-1)-spanner; eps: k-spanner)")
		eps    = flag.Float64("eps", 0.5, "epsilon for -algo eps")
		wmax   = flag.Float64("wmax", 0, "assign random weights in [1, wmax] when > 1")
		dot    = flag.String("dot", "", "write the graph (with the solution highlighted) as DOT to this file")

		traceOut   = flag.String("trace", "", "record the distributed run's logical transcript as JSONL to this file (dist-engine algorithms only)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile (taken at exit) to this file")
		exectrace  = flag.String("exectrace", "", "write a runtime execution trace (go tool trace) to this file")
	)
	flag.Parse()

	stopProfiles, err := prof.Start(*cpuprofile, *memprofile, *exectrace)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer stopProfiles()

	mode, err := dist.ParseMode(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	g := buildGraph(*family, *n, *p, *seed)
	if *wmax > 1 {
		gen.RandomWeights(g, 1, *wmax, *seed)
	}
	fmt.Printf("graph: family=%s n=%d m=%d maxΔ=%d weighted=%v\n",
		*family, g.N(), g.M(), g.MaxDegree(), g.Weighted())

	var rec *trace.Recorder
	if *traceOut != "" {
		rec = trace.NewRecorder(g.N())
	}
	opts := core.Options{Seed: *seed, ExecMode: mode}
	if rec != nil {
		opts.Tracer = rec
	}

	switch *algo {
	case "2spanner":
		res, err := core.TwoSpanner(g, opts)
		fail(err)
		printSpanner(g, res, 2)
		writeDOT(*dot, g, res.Spanner)
	case "congest":
		res, err := core.TwoSpannerCongest(g, opts)
		fail(err)
		fmt.Printf("CONGEST 2-spanner: %d of %d edges, valid=%v, subrounds/logical=%d, budget=%d bits\n",
			res.Spanner.Len(), g.M(), span.IsKSpanner(g, res.Spanner, 2),
			res.Subrounds, res.Bandwidth)
		printStats(&res.Result)
		writeDOT(*dot, g, res.Spanner)
	case "directed":
		d := gen.OrientRandomly(g, 0.3, *seed)
		res, err := core.DirectedTwoSpanner(d, opts)
		fail(err)
		fmt.Printf("directed 2-spanner: %d of %d edges, valid=%v\n",
			res.Spanner.Len(), d.M(), span.IsDirectedKSpanner(d, res.Spanner, 2))
		printStats(res)
	case "cs":
		clients, servers := gen.ClientServerSplit(g, 0.5, 0.8, *seed)
		res, err := core.ClientServerTwoSpanner(g, clients, servers, opts)
		fail(err)
		fmt.Printf("client-server 2-spanner: %d edges for %d clients, valid=%v\n",
			res.Spanner.Len(), clients.Len(),
			span.ClientServerValid(g, clients, servers, res.Spanner, 2))
		printStats(res)
	case "mds":
		mopts := mds.Options{Seed: *seed, ExecMode: mode}
		if rec != nil {
			mopts.Tracer = rec
		}
		res, err := mds.Run(g, mopts)
		fail(err)
		fmt.Printf("dominating set: %d vertices, rounds=%d iterations=%d maxEdgeRoundBits=%d\n",
			len(res.DominatingSet), res.Stats.Rounds, res.Iterations, res.Stats.MaxEdgeRoundBits)
	case "kp":
		h := baseline.KortsarzPeleg(g)
		fmt.Printf("Kortsarz-Peleg greedy: %d of %d edges (cost %.2f), valid=%v\n",
			h.Len(), g.M(), span.Cost(g, h), span.IsKSpanner(g, h, 2))
		writeDOT(*dot, g, h)
	case "greedy":
		h := baseline.GreedyKSpanner(g, *k)
		fmt.Printf("classic greedy %d-spanner: %d of %d edges, valid=%v\n",
			*k, h.Len(), g.M(), span.IsKSpanner(g, h, *k))
		writeDOT(*dot, g, h)
	case "bs":
		res := baseline.BaswanaSen(g, *k, *seed)
		fmt.Printf("Baswana-Sen: (2k-1)=%d-spanner with %d of %d edges in %d rounds, valid=%v\n",
			res.Stretch, res.Spanner.Len(), g.M(), res.Rounds,
			span.IsKSpanner(g, res.Spanner, res.Stretch))
	case "eps":
		res, err := localmodel.EpsilonSpanner(g, localmodel.Options{K: *k, Eps: *eps, Seed: *seed})
		fail(err)
		fmt.Printf("(1+ε) %d-spanner: cost %.2f, colors=%d radius=%d estRounds=%d, valid=%v\n",
			*k, res.Cost, res.Colors, res.Radius, res.EstimatedRounds,
			span.IsKSpanner(g, res.Spanner, *k))
	case "ft":
		h := baseline.FaultTolerant2Spanner(g, *k)
		fmt.Printf("f=%d fault-tolerant 2-spanner: %d of %d edges\n", *k, h.Len(), g.M())
		writeDOT(*dot, g, h)
	case "augment":
		// Initial set: a spanning backbone (BFS tree edges via greedy
		// 1-per-vertex attachment) to augment.
		initial := graph.NewEdgeSet(g.M())
		seen := make([]bool, g.N())
		seen[0] = true
		for changed := true; changed; {
			changed = false
			for i := 0; i < g.M(); i++ {
				e := g.Edge(i)
				if seen[e.U] != seen[e.V] {
					initial.Add(i)
					seen[e.U], seen[e.V] = true, true
					changed = true
				}
			}
		}
		res, err := core.TwoSpannerAugment(g, initial, opts)
		fail(err)
		fmt.Printf("augmentation: %d free backbone edges + %.0f additions => valid=%v\n",
			initial.Len(), res.Cost, span.IsKSpanner(g, res.Spanner, 2))
		writeDOT(*dot, g, res.Spanner)
	case "trivial":
		h := baseline.TrivialSpanner(g)
		fmt.Printf("trivial spanner: all %d edges (0 rounds, n-approximation)\n", h.Len())
	default:
		log.Printf("unknown algorithm %q", *algo)
		flag.Usage()
		os.Exit(2)
	}

	if rec != nil {
		writeTrace(*traceOut, rec, trace.Meta{
			Seed:  *seed,
			Label: fmt.Sprintf("%s %s n=%d", *algo, *family, g.N()),
			Mode:  *engine,
		})
	}
}

// writeTrace serializes the recorded transcript and prints its digest.
// A recorder that saw no events means the chosen algorithm never ran
// the dist engine (a sequential baseline) — flag that instead of
// writing an empty file silently.
func writeTrace(path string, rec *trace.Recorder, meta trace.Meta) {
	if rec.EventCount() == 0 && len(rec.Phases()) == 0 {
		log.Printf("warning: -trace set but the algorithm recorded no transcript (sequential baseline?)")
	}
	f, err := os.Create(path)
	fail(err)
	defer f.Close()
	fail(trace.WriteJSONL(f, meta, rec))
	d := rec.Digest()
	fmt.Printf("trace: %d events over %d rounds -> %s (digest %s)\n",
		rec.EventCount(), len(rec.Phases()), path, d.Run)
}

func buildGraph(family string, n int, p float64, seed int64) *graph.Graph {
	switch family {
	case "gnp":
		return gen.ConnectedGNP(n, p, seed)
	case "clique":
		return gen.Clique(n)
	case "bipartite":
		return gen.CompleteBipartite(n/2, n-n/2)
	case "hypercube":
		return gen.Hypercube(n)
	case "grid":
		return gen.Grid(n, n)
	case "cycle":
		return gen.Cycle(n)
	case "path":
		return gen.Path(n)
	case "star":
		return gen.Star(n)
	case "planted":
		return gen.PlantedStars(n/8+1, 7, p, seed)
	default:
		log.Fatalf("unknown family %q", family)
		return nil
	}
}

func printSpanner(g *graph.Graph, res *core.Result, k int) {
	fmt.Printf("2-spanner: %d of %d edges (cost %.2f), valid=%v\n",
		res.Spanner.Len(), g.M(), res.Cost, span.IsKSpanner(g, res.Spanner, k))
	printStats(res)
}

func printStats(res *core.Result) {
	fmt.Printf("distributed run: rounds=%d iterations=%d messages=%d totalBits=%d maxEdgeRoundBits=%d fallbacks=%d\n",
		res.Stats.Rounds, res.Iterations, res.Stats.Messages,
		res.Stats.TotalBits, res.Stats.MaxEdgeRoundBits, res.Fallbacks)
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func writeDOT(path string, g *graph.Graph, highlight *graph.EdgeSet) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	fail(err)
	defer f.Close()
	fail(graph.ToDOT(f, g, highlight))
	fmt.Printf("wrote DOT to %s\n", path)
}
