// Command coord is the distributed runner's coordinator. It generates
// a graph from a named family (the same generators cmd/spanner uses),
// waits for -workers cmd/node processes to connect over TCP, partitions
// the vertices contiguously across them, drives the round/quiescence
// protocol, and merges the workers' statistics, outputs, and logical
// transcript. The merged transcript is bit-identical to an in-process
// run of the same (algorithm, graph, seed) on the step engine — pass
// -verify to prove it in-process, or -trace to write the JSONL
// transcript for cmd/trace -check and digest comparison.
//
//	coord -listen 127.0.0.1:9131 -workers 2 -family gnp -n 32 -p 0.2 \
//	      -algo twospanner -seed 1 -trace dist.jsonl -verify
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/dist/wire"
	"distspanner/internal/distrun"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("coord: ")
	var (
		listen  = flag.String("listen", "127.0.0.1:9131", "address to accept workers on")
		workers = flag.Int("workers", 2, "number of worker processes to wait for")
		timeout = flag.Duration("timeout", 30*time.Second, "how long to wait for workers to connect")

		family = flag.String("family", "gnp", "graph family: gnp, clique, grid, cycle, path, star")
		n      = flag.Int("n", 32, "vertex count (side length for grid)")
		p      = flag.Float64("p", 0.2, "edge probability for gnp")
		algo   = flag.String("algo", "twospanner", "algorithm family: "+strings.Join(distrun.Names(), ", "))
		seed   = flag.Int64("seed", 1, "random seed (drives the engine and any derived inputs)")

		traceOut = flag.String("trace", "", "write the merged logical transcript as JSONL to this file")
		verify   = flag.Bool("verify", false, "re-run in-process and fail unless the distributed transcript matches bit-for-bit")
	)
	flag.Parse()

	f, ok := distrun.Get(*algo)
	if !ok {
		log.Fatalf("unknown algorithm family %q (have: %s)", *algo, strings.Join(distrun.Names(), ", "))
	}
	g := buildGraph(*family, *n, *p, *seed)
	fmt.Printf("graph: family=%s n=%d m=%d; algo=%s seed=%d workers=%d\n",
		*family, g.N(), g.M(), *algo, *seed, *workers)

	ln, err := net.Listen("tcp", *listen)
	fail(err)
	fmt.Printf("listening on %s\n", ln.Addr())
	ct, err := wire.AcceptWorkers(ln, *workers, *timeout)
	ln.Close()
	fail(err)

	rec := trace.NewRecorder(g.N())
	cfg := f.CoordConfig(g, *seed)
	cfg.Tracer = rec
	res, err := dist.Coordinate(ct, cfg)
	ct.Close()
	fail(err)

	d := rec.Digest()
	fmt.Printf("distributed run: rounds=%d messages=%d totalBits=%d maxEdgeRoundBits=%d\n",
		res.Stats.Rounds, res.Stats.Messages, res.Stats.TotalBits, res.Stats.MaxEdgeRoundBits)
	fmt.Printf("trace: %d events over %d rounds (digest %s)\n",
		rec.EventCount(), len(rec.Phases()), d.Run)

	if *verify {
		refRec := trace.NewRecorder(g.N())
		refOuts, refStats, err := f.RunLocal(g, *seed, refRec)
		fail(err)
		refD := refRec.Digest()
		switch {
		case !refD.Equal(d):
			log.Fatalf("verify: digest mismatch: in-process %s, distributed %s", refD.Run, d.Run)
		case *refStats != res.Stats:
			log.Fatalf("verify: stats mismatch:\n  in-process:  %+v\n  distributed: %+v", *refStats, res.Stats)
		case !outputsEqual(refOuts, res.Outputs):
			log.Fatal("verify: merged outputs differ from the in-process run")
		}
		fmt.Println("verify: distributed transcript matches the in-process step engine bit-for-bit")
	}

	if *traceOut != "" {
		out, err := os.Create(*traceOut)
		fail(err)
		fail(trace.WriteJSONL(out, trace.Meta{
			Seed:  *seed,
			Label: fmt.Sprintf("%s %s n=%d workers=%d", *algo, *family, g.N(), *workers),
			Mode:  "tcp",
		}, rec))
		fail(out.Close())
		fmt.Printf("wrote transcript to %s\n", *traceOut)
	}
}

func buildGraph(family string, n int, p float64, seed int64) *graph.Graph {
	switch family {
	case "gnp":
		return gen.ConnectedGNP(n, p, seed)
	case "clique":
		return gen.Clique(n)
	case "grid":
		return gen.Grid(n, n)
	case "cycle":
		return gen.Cycle(n)
	case "path":
		return gen.Path(n)
	case "star":
		return gen.Star(n)
	default:
		log.Fatalf("unknown family %q", family)
		return nil
	}
}

func outputsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if len(a[v]) != len(b[v]) {
			return false
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				return false
			}
		}
	}
	return true
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
