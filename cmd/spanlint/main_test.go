package main_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestVettoolAgainstBadModule is the end-to-end check of the vet
// protocol: build the real spanlint binary, point `go vet -vettool` at
// the known-bad fixture module, and require the exact seeded diagnostics
// — each (file, line, analyzer) triple marked by a trailing
// `// seed:<analyzer>` comment in the fixture sources, nothing more,
// nothing less, and a failing exit status.
func TestVettoolAgainstBadModule(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	root := repoRoot(t)
	bin := filepath.Join(t.TempDir(), "spanlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/spanlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building spanlint: %v\n%s", err, out)
	}

	badmod := filepath.Join(root, "internal", "analysis", "testdata", "badmod")
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = badmod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool exited 0 over the known-bad module; output:\n%s", out)
	}
	if _, isExit := err.(*exec.ExitError); !isExit {
		t.Fatalf("running go vet: %v\n%s", err, out)
	}

	got := parseDiagnostics(t, string(out))
	want := seededDiagnostics(t, badmod)
	for key := range want {
		if !got[key] {
			t.Errorf("seeded violation not reported: %s", key)
		}
	}
	for key := range got {
		if !want[key] {
			t.Errorf("unexpected diagnostic: %s", key)
		}
	}
	if t.Failed() {
		t.Logf("full vet output:\n%s", out)
	}
}

// diagLine matches the unitchecker's diagnostic lines in vet output:
// path.go:line:col: [analyzer] message.
var diagLine = regexp.MustCompile(`^(.+\.go):(\d+):\d+: \[([a-z]+)\] `)

func parseDiagnostics(t *testing.T, out string) map[string]bool {
	t.Helper()
	got := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			if strings.HasPrefix(line, "#") || strings.TrimSpace(line) == "" {
				continue
			}
			t.Errorf("unparseable vet output line: %q", line)
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		got[diagKey(m[1], ln, m[3])] = true
	}
	return got
}

// seededDiagnostics derives the expected set from the fixture sources:
// every line carrying a trailing `// seed:<analyzer>` marker (markers at
// the start of comment lines are prose, not expectations).
func seededDiagnostics(t *testing.T, badmod string) map[string]bool {
	t.Helper()
	want := make(map[string]bool)
	err := filepath.WalkDir(badmod, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "//") {
				continue
			}
			_, marker, ok := strings.Cut(line, "// seed:")
			if !ok {
				continue
			}
			want[diagKey(path, i+1, strings.TrimSpace(marker))] = true
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture module: %v", err)
	}
	if len(want) == 0 {
		t.Fatal("no seed markers found in the fixture module")
	}
	return want
}

// diagKey normalizes a (file, line, analyzer) triple: vet may print paths
// relative to the module or absolute, so keep the module-relative suffix.
func diagKey(path string, line int, analyzer string) string {
	p := filepath.ToSlash(path)
	if _, rest, ok := strings.Cut(p, "badmod/"); ok {
		p = rest
	}
	return fmt.Sprintf("%s:%d:%s", p, line, analyzer)
}

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
