// Command spanlint statically enforces the repo's determinism, metering,
// and cancellation contracts (see internal/analysis for the analyzer
// suite and ARCHITECTURE.md "Static guarantees" for the contract map).
//
// Two modes share the same analyzers:
//
//	spanlint ./...                          standalone: load, check, print
//	go vet -vettool=$(which spanlint) ./... unit checker under cmd/go
//
// Standalone mode loads packages itself (internal/analysis/driver); vet
// mode speaks cmd/go's vet tool protocol (internal/analysis/unitchecker),
// which hands the tool one pre-planned package at a time and caches clean
// results in the build cache, so re-linting an unchanged package is free.
// CI runs the vet form; the standalone form is for interactive use.
//
// Flags:
//
//	-analyzers detmap,bitsacct   run a subset of the suite
//	-critical pkg,...            override the determinism-critical scope
//	-algopkgs pkg,...            override the all-step-code scope
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"distspanner/internal/analysis"
	"distspanner/internal/analysis/driver"
	"distspanner/internal/analysis/unitchecker"
)

const (
	usageAnalyzers = "comma-separated analyzer subset (default: all)"
	usageCritical  = "determinism-critical package suffixes"
	usageAlgopkgs  = "all-step-code package suffixes"
)

func main() {
	fs := flag.NewFlagSet("spanlint", flag.ExitOnError)
	names := fs.String("analyzers", "", usageAnalyzers)
	critical := fs.String("critical", analysis.CriticalPackages, usageCritical)
	algopkgs := fs.String("algopkgs", analysis.AlgoPackages, usageAlgopkgs)
	version := fs.String("V", "", "print version and exit (cmd/go cache-key probe)")
	printFlags := fs.Bool("flags", false, "print flag schema as JSON and exit (cmd/go probe)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: spanlint [flags] [packages]\n       go vet -vettool=$(which spanlint) [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	// cmd/go probes: `-V=full` keys the build cache, `-flags` validates
	// forwarded analyzer flags. Both print and exit before any analysis.
	if *version != "" {
		unitchecker.PrintVersion(os.Stdout)
		return
	}
	if *printFlags {
		unitchecker.PrintFlags(os.Stdout, map[string]string{
			"analyzers": usageAnalyzers,
			"critical":  usageCritical,
			"algopkgs":  usageAlgopkgs,
		})
		return
	}

	analysis.Pkgs.Critical = *critical
	analysis.Pkgs.Algo = *algopkgs
	analyzers, err := analysis.ByName(*names)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spanlint:", err)
		os.Exit(2)
	}

	args := fs.Args()
	// Vet protocol: a single *.cfg argument names one pre-planned
	// package; everything else is standalone package patterns.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitchecker.Run(args[0], analyzers))
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := driver.Run(".", patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spanlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "spanlint: %d finding%s\n", len(diags), plural(len(diags)))
		os.Exit(1)
	}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}
