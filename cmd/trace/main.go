// Command trace inspects the JSONL execution transcripts written by
// spanner -trace (and validated in CI): per-run summaries, per-round
// message matrices, activity timelines, and Chrome trace_event export.
//
//	trace run.jsonl                       # summary: meta, digest, hot vertices
//	trace -check run.jsonl                # full validation incl. digest recompute
//	trace -matrix run.jsonl               # per-round send/deliver/bits table
//	trace -timeline run.jsonl             # ASCII activity timeline
//	trace -chrome out.json run.jsonl      # export for chrome://tracing / Perfetto
//
// The summary ranks hot vertices by sent messages and sent bits — the
// vertices that dominate the run's communication. The matrix counts
// logical events per round; wall-clock columns appear only when the
// file carries the (opt-in) timing channel. Exit status is non-zero
// when the file fails to parse or -check finds a violation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"distspanner/internal/dist"
	"distspanner/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace: ")
	var (
		check    = flag.Bool("check", false, "fully validate the file: schema, monotone phase rounds, digest recomputation")
		matrix   = flag.Bool("matrix", false, "print the per-round message matrix (sends, deliveries, bits, activity)")
		timeline = flag.Bool("timeline", false, "print an ASCII per-round activity timeline")
		chrome   = flag.String("chrome", "", "export as Chrome trace_event JSON to this file")
		top      = flag.Int("top", 5, "number of hot vertices listed in the summary")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: trace [flags] <run.jsonl>")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	fail(err)
	defer f.Close()

	var lg *trace.Log
	if *check {
		lg, err = trace.Check(f)
	} else {
		lg, err = trace.ReadJSONL(f)
	}
	fail(err)
	rec := lg.Recorder

	if *check {
		status := "digest verified"
		if lg.Digest == nil {
			status = "no digest line (nothing to verify)"
		}
		fmt.Printf("ok: n=%d events=%d rounds=%d timings=%d — %s\n",
			rec.N(), rec.EventCount(), len(rec.Phases()), len(rec.Timings()), status)
		return
	}
	if *chrome != "" {
		out, err := os.Create(*chrome)
		fail(err)
		fail(trace.WriteChrome(out, rec))
		fail(out.Close())
		fmt.Printf("wrote Chrome trace to %s\n", *chrome)
		return
	}
	switch {
	case *matrix:
		printMatrix(rec)
	case *timeline:
		printTimeline(rec)
	default:
		printSummary(lg, *top)
	}
}

func fail(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// roundRow aggregates one round's logical events (and wall time when
// the timing channel is present).
type roundRow struct {
	sends, delivers, wakes, parks, retires int
	sentBits                               int64
}

// byRound folds the per-vertex event buffers into per-round rows,
// returning the rows indexed by round and the max round seen.
func byRound(rec *trace.Recorder) (map[int]*roundRow, int) {
	rows := make(map[int]*roundRow)
	maxRound := 0
	for v := 0; v < rec.N(); v++ {
		for _, ev := range rec.VertexEvents(v) {
			row := rows[ev.Round]
			if row == nil {
				row = &roundRow{}
				rows[ev.Round] = row
			}
			if ev.Round > maxRound {
				maxRound = ev.Round
			}
			switch ev.Kind {
			case dist.TraceSend:
				row.sends++
				row.sentBits += int64(ev.Bits)
			case dist.TraceDeliver:
				row.delivers++
			case dist.TraceWake:
				row.wakes++
			case dist.TracePark:
				row.parks++
			case dist.TraceRetire:
				row.retires++
			}
		}
	}
	for _, act := range rec.Phases() {
		if act.Round > maxRound {
			maxRound = act.Round
		}
	}
	return rows, maxRound
}

func printSummary(lg *trace.Log, top int) {
	rec := lg.Recorder
	m := lg.Meta
	fmt.Printf("run: n=%d seed=%d", m.N, m.Seed)
	if m.Label != "" {
		fmt.Printf(" label=%q", m.Label)
	}
	if m.Mode != "" {
		fmt.Printf(" mode=%s", m.Mode)
	}
	fmt.Println()
	fmt.Printf("transcript: %d events, %d rounds, %d timing entries\n",
		rec.EventCount(), len(rec.Phases()), len(rec.Timings()))
	d := rec.Digest()
	verified := ""
	if lg.Digest != nil {
		if d.Equal(*lg.Digest) {
			verified = " (matches file)"
		} else {
			verified = " (MISMATCH vs file!)"
		}
	}
	fmt.Printf("digest: %s%s\n", d.Run, verified)

	if ts := rec.Timings(); len(ts) > 0 {
		s := trace.SummarizeTimings(ts)
		fmt.Printf("timing: wall mean %.0fns max %dns; shares step=%.2f route=%.2f sync=%.2f\n",
			s.WallMeanNs, s.WallMaxNs, s.StepShare, s.RouteShare, s.SyncShare)
	}

	// Hot vertices: rank by sent messages, then bits.
	type hot struct {
		v, sends int
		bits     int64
	}
	hots := make([]hot, 0, rec.N())
	for v := 0; v < rec.N(); v++ {
		h := hot{v: v}
		for _, ev := range rec.VertexEvents(v) {
			if ev.Kind == dist.TraceSend {
				h.sends++
				h.bits += int64(ev.Bits)
			}
		}
		if h.sends > 0 {
			hots = append(hots, h)
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].sends != hots[j].sends {
			return hots[i].sends > hots[j].sends
		}
		if hots[i].bits != hots[j].bits {
			return hots[i].bits > hots[j].bits
		}
		return hots[i].v < hots[j].v
	})
	if top > len(hots) {
		top = len(hots)
	}
	if top > 0 {
		fmt.Printf("hot vertices (by sends):\n")
		for _, h := range hots[:top] {
			fmt.Printf("  v=%-5d sends=%-6d bits=%d\n", h.v, h.sends, h.bits)
		}
	}
}

func printMatrix(rec *trace.Recorder) {
	rows, maxRound := byRound(rec)
	acts := make(map[int]dist.RoundActivity, len(rec.Phases()))
	for _, act := range rec.Phases() {
		acts[act.Round] = act
	}
	tims := make(map[int]int64, len(rec.Timings()))
	for _, t := range rec.Timings() {
		tims[t.Round] = t.Wall.Nanoseconds()
	}
	timed := len(tims) > 0

	header := "round  sends  deliv  bits      wakes  parks  retire  active  parked"
	if timed {
		header += "  wall_ns"
	}
	fmt.Println(header)
	for r := 1; r <= maxRound; r++ {
		row := rows[r]
		if row == nil {
			row = &roundRow{}
		}
		act := acts[r]
		fmt.Printf("%-6d %-6d %-6d %-9d %-6d %-6d %-7d %-7d %-6d",
			r, row.sends, row.delivers, row.sentBits,
			row.wakes, row.parks, row.retires, act.Active, act.Parked)
		if timed {
			fmt.Printf("  %d", tims[r])
		}
		fmt.Println()
	}
}

// printTimeline renders the activity curve: one row per round, a bar of
// '#' (active) and '.' (parked) scaled to the vertex count.
func printTimeline(rec *trace.Recorder) {
	const width = 60
	n := rec.N()
	if n == 0 {
		fmt.Println("empty trace")
		return
	}
	fmt.Printf("activity timeline (%d vertices, # active, . parked, width %d):\n", n, width)
	for _, act := range rec.Phases() {
		active := act.Active * width / n
		parked := act.Parked * width / n
		if active+parked > width {
			parked = width - active
		}
		bar := strings.Repeat("#", active) + strings.Repeat(".", parked)
		fmt.Printf("%-5d |%-*s| active=%d parked=%d senders=%d\n",
			act.Round, width, bar, act.Active, act.Parked, act.Senders)
	}
}
