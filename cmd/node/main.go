// Command node is the distributed runner's worker process. It dials
// the coordinator (cmd/coord), receives its shard assignment — graph,
// algorithm family, seed, vertex range — over the wire protocol, steps
// its vertices with the state-machine engine, and streams record
// batches, metering reports, and wake scans back each round. One
// process serves one run, then exits; the algorithm registry is
// internal/distrun, so the worker is oblivious to which family it will
// be asked to run until the setup frame arrives.
//
//	node -addr 127.0.0.1:9131
package main

import (
	"flag"
	"log"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/dist/wire"
	"distspanner/internal/distrun"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("node: ")
	var (
		addr    = flag.String("addr", "127.0.0.1:9131", "coordinator address to dial")
		timeout = flag.Duration("timeout", 10*time.Second, "how long to keep retrying the dial")
	)
	flag.Parse()

	wt, err := wire.DialRetry(*addr, *timeout)
	if err != nil {
		log.Fatal(err)
	}
	if err := dist.ServeShard(wt, distrun.Resolver()); err != nil {
		log.Fatal(err)
	}
	log.Printf("shard served, exiting")
}
