// Command loadtest drives a mixed workload against a running spannerd
// and reports throughput, latency, and cache behavior. The mix models
// the three traffic shapes the service is built for:
//
//   - hot repeats: a small set of jobs requested over and over — these
//     should be absorbed by the content-addressed cache;
//   - cold uniques: every request a fresh (params, seed) cell — these
//     always execute and bound the pool's throughput;
//   - identical bursts: barrier-synchronized groups firing the same
//     brand-new job at the same instant — these should coalesce into a
//     single execution. Bursts use their own (heavier) instance via
//     -burst-params: the job must run long enough that followers join
//     the in-flight execution instead of hitting the cache after it
//     finishes, so a sub-millisecond mixed-phase cell would make the
//     coalescing assertion timing-dependent.
//
// The JSON report (written to -out or stdout) carries client-side
// counts and latency percentiles plus the server's own /v1/stats
// snapshot. -require-hits / -require-coalesced turn the cache
// expectations into exit-code assertions for CI.
//
//	loadtest -addr http://localhost:8080 -requests 200 -concurrency 16 \
//	    -bursts 4 -burst-size 8 -require-hits -require-coalesced
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type jobRequest struct {
	Scenario string            `json:"scenario"`
	Params   map[string]string `json:"params,omitempty"`
	Seed     int64             `json:"seed"`
}

// sample is one completed request as the client saw it.
type sample struct {
	latency time.Duration
	cache   string // X-Spannerd-Cache: hit | miss | coalesced
	failed  bool
}

// collector accumulates samples across workers.
type collector struct {
	mu      sync.Mutex
	samples []sample
}

func (c *collector) add(s sample) {
	c.mu.Lock()
	c.samples = append(c.samples, s)
	c.mu.Unlock()
}

// report is the JSON document loadtest emits.
type report struct {
	Config struct {
		Addr        string  `json:"addr"`
		Scenario    string  `json:"scenario"`
		Params      string  `json:"params"`
		Requests    int     `json:"requests"`
		Concurrency int     `json:"concurrency"`
		HotSet      int     `json:"hot_set"`
		HotFraction float64 `json:"hot_fraction"`
		Bursts      int     `json:"bursts"`
		BurstSize   int     `json:"burst_size"`
		BurstParams string  `json:"burst_params"`
	} `json:"config"`
	Requests   int     `json:"requests"`
	Failures   int     `json:"failures"`
	Hits       int     `json:"hits"`
	Misses     int     `json:"misses"`
	Coalesced  int     `json:"coalesced"`
	HitRate    float64 `json:"hit_rate"`
	DurationMs int64   `json:"duration_ms"`
	Throughput float64 `json:"throughput_rps"`
	LatencyMs  struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`
	ServerStats json.RawMessage `json:"server_stats,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "spannerd base URL")
	scenarioName := flag.String("scenario", "twospanner", "scenario to request")
	paramsFlag := flag.String("params", "family=gnp,n=48,p=0.15", "comma-separated k=v parameter overrides")
	requests := flag.Int("requests", 200, "mixed-phase request count")
	concurrency := flag.Int("concurrency", 16, "concurrent client workers")
	hotSet := flag.Int("hot", 4, "distinct jobs in the hot set")
	hotFrac := flag.Float64("hot-frac", 0.6, "fraction of mixed-phase requests drawn from the hot set")
	bursts := flag.Int("bursts", 4, "barrier-synchronized identical bursts")
	burstSize := flag.Int("burst-size", 8, "clients per burst")
	burstParamsFlag := flag.String("burst-params", "family=gnp,n=192,p=0.1",
		"parameter overrides for the burst phase (a deliberately slower instance, so followers reliably join the in-flight run)")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	requireHits := flag.Bool("require-hits", false, "exit nonzero unless at least one cache hit was observed")
	requireCoalesced := flag.Bool("require-coalesced", false, "exit nonzero unless at least one request coalesced")
	flag.Parse()

	params := parseParams(*paramsFlag)
	burstParams := params
	if *burstParamsFlag != "" {
		burstParams = parseParams(*burstParamsFlag)
	}

	// Keep-alive pool sized so every worker holds a warm connection:
	// burst clients must not stagger behind TCP setup, or a fast burst
	// job can finish before the followers' requests even arrive.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = *concurrency + *burstSize
	transport.MaxIdleConnsPerHost = *concurrency + *burstSize
	client := &http.Client{Timeout: 5 * time.Minute, Transport: transport}
	col := &collector{}
	start := time.Now()

	// Mixed phase: hot repeats interleaved with cold uniques. Hot jobs
	// reuse seeds [0, hotSet); cold jobs take seeds from 1<<32 upward so
	// they never collide with the hot set or the burst phase.
	var coldSeed int64 = 1 << 32
	var seedMu sync.Mutex
	nextCold := func() int64 {
		seedMu.Lock()
		defer seedMu.Unlock()
		coldSeed++
		return coldSeed
	}
	work := make(chan int64, *requests)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < *requests; i++ {
		if rng.Float64() < *hotFrac {
			work <- int64(rng.Intn(*hotSet))
		} else {
			work <- nextCold()
		}
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range work {
				col.add(post(client, *addr, jobRequest{Scenario: *scenarioName, Params: params, Seed: seed}))
			}
		}()
	}
	wg.Wait()

	// Burst phase: each burst is burstSize clients releasing the same
	// never-seen job at the same instant; the coalescer should collapse
	// every burst to one execution. Warm one keep-alive connection per
	// burst client first so the barrier release isn't serialized behind
	// TCP handshakes.
	if *bursts > 0 && *burstSize > 0 {
		var warm sync.WaitGroup
		for i := 0; i < *burstSize; i++ {
			warm.Add(1)
			go func() {
				defer warm.Done()
				if resp, err := client.Get(*addr + "/healthz"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}()
		}
		warm.Wait()
	}
	for b := 0; b < *bursts; b++ {
		seed := int64(1<<40) + int64(b)
		barrier := make(chan struct{})
		var bwg sync.WaitGroup
		for i := 0; i < *burstSize; i++ {
			bwg.Add(1)
			go func() {
				defer bwg.Done()
				<-barrier
				col.add(post(client, *addr, jobRequest{Scenario: *scenarioName, Params: burstParams, Seed: seed}))
			}()
		}
		close(barrier)
		bwg.Wait()
	}
	elapsed := time.Since(start)

	var rep report
	rep.Config.Addr = *addr
	rep.Config.Scenario = *scenarioName
	rep.Config.Params = *paramsFlag
	rep.Config.Requests = *requests
	rep.Config.Concurrency = *concurrency
	rep.Config.HotSet = *hotSet
	rep.Config.HotFraction = *hotFrac
	rep.Config.Bursts = *bursts
	rep.Config.BurstSize = *burstSize
	rep.Config.BurstParams = *burstParamsFlag

	latencies := make([]time.Duration, 0, len(col.samples))
	for _, s := range col.samples {
		rep.Requests++
		switch {
		case s.failed:
			rep.Failures++
		case s.cache == "hit":
			rep.Hits++
		case s.cache == "coalesced":
			rep.Coalesced++
		default:
			rep.Misses++
		}
		latencies = append(latencies, s.latency)
	}
	if rep.Requests > 0 {
		rep.HitRate = float64(rep.Hits) / float64(rep.Requests)
	}
	rep.DurationMs = elapsed.Milliseconds()
	rep.Throughput = float64(rep.Requests) / elapsed.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.LatencyMs.P50 = percentileMs(latencies, 0.50)
	rep.LatencyMs.P90 = percentileMs(latencies, 0.90)
	rep.LatencyMs.P99 = percentileMs(latencies, 0.99)
	if n := len(latencies); n > 0 {
		rep.LatencyMs.Max = float64(latencies[n-1]) / float64(time.Millisecond)
	}
	if resp, err := client.Get(*addr + "/v1/stats"); err == nil {
		if body, err := io.ReadAll(resp.Body); err == nil && resp.StatusCode == http.StatusOK {
			rep.ServerStats = body
		}
		resp.Body.Close()
	}

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
		os.Exit(2)
	}
	doc = append(doc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, doc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(doc)
	}

	ok := true
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "loadtest: %d requests failed\n", rep.Failures)
		ok = false
	}
	if *requireHits && rep.Hits == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: expected cache hits, observed none")
		ok = false
	}
	if *requireCoalesced && rep.Coalesced == 0 {
		fmt.Fprintln(os.Stderr, "loadtest: expected coalesced requests, observed none")
		ok = false
	}
	if !ok {
		os.Exit(1)
	}
}

// parseParams splits a comma-separated k=v list into a parameter map.
func parseParams(s string) map[string]string {
	params := map[string]string{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq <= 0 {
			fmt.Fprintf(os.Stderr, "loadtest: bad params entry %q\n", kv)
			os.Exit(2)
		}
		params[kv[:eq]] = kv[eq+1:]
	}
	return params
}

// post runs one job and classifies the outcome.
func post(client *http.Client, addr string, job jobRequest) sample {
	body, _ := json.Marshal(job)
	start := time.Now()
	resp, err := client.Post(addr+"/v1/run", "application/json", bytes.NewReader(body))
	s := sample{latency: time.Since(start)}
	if err != nil {
		s.failed = true
		return s
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	s.cache = resp.Header.Get("X-Spannerd-Cache")
	s.failed = resp.StatusCode != http.StatusOK
	return s
}

// percentileMs returns the q-quantile of sorted latencies, in ms.
func percentileMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
