// Command spannerd serves the spanner algorithms as a long-running
// HTTP/JSON service: clients POST jobs (a registered scenario plus
// parameter overrides and a seed, with the graph named or inline) and
// get back verified metrics. Results are content-addressed — identical
// jobs are answered from an LRU cache byte-for-byte, and concurrent
// identical jobs coalesce into a single execution.
//
//	spannerd -listen :8080 -workers 8 -cache 4096 -timeout 60s
//
// Endpoints: POST /v1/run, POST /v1/stream (SSE progress), GET
// /v1/scenarios, GET /v1/stats, GET /metrics, GET /healthz. See
// internal/service for the job schema and cmd/spannerd/loadtest for a
// mixed-workload driver.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"distspanner/internal/service"
)

func main() {
	listen := flag.String("listen", ":8080", "address to serve on")
	workers := flag.Int("workers", 0, "max concurrent scenario runs (0: GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 0, "result cache capacity in entries (0: 4096)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock timeout (0: none)")
	maxVertices := flag.Int("max-vertices", 0, "inline graph vertex limit (0: default)")
	maxEdges := flag.Int("max-edges", 0, "inline graph edge limit (0: default)")
	flag.Parse()

	srv := service.New(service.Options{
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		Timeout:      *timeout,
		MaxVertices:  *maxVertices,
		MaxEdges:     *maxEdges,
	})
	httpSrv := &http.Server{Addr: *listen, Handler: srv}

	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "spannerd: listening on %s\n", *listen)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		fmt.Fprintf(os.Stderr, "spannerd: %v\n", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "spannerd: %v, draining\n", s)
	}

	// Stop admitting requests, then wait for in-flight runs to unwind.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "spannerd: shutdown: %v\n", err)
	}
	srv.Drain()
}
