// Command sweep runs any registered scenario over a parameter grid on a
// parallel worker pool and writes per-cell aggregates as JSON and/or CSV.
//
// Usage:
//
//	sweep -list
//	sweep -scenario twospanner -grid "n=64,128;p=0.1,0.2" -replicates 3 -json out.json
//	sweep -scenario mds -workers 8 -csv mds.csv
//	sweep -scenario twospanner -engine event            # pin the event-driven engine
//	sweep -scenario twospanner -grid "engine=barrier,event,step;n=128"   # compare engines
//	sweep -scenario twospanner -timing -csv t.csv       # add wall-clock timing columns
//	sweep -scenario mds -cpuprofile cpu.pprof           # profile the whole sweep
//
// Without -grid the scenario's default cases/grid run. Reports are
// deterministic functions of (-scenario, -grid, -replicates, -seed);
// -workers only changes wall-clock time. Simulated scenarios also honor
// the "engine" parameter (auto, barrier, event, step), selecting the
// internal/dist scheduling strategy; -engine overlays it on every cell,
// and because engine modes are bit-identical by contract, an engine axis
// in -grid is a pure wall-clock comparison. -timing overlays the
// execution-only "timing" parameter, adding per-round wall-time and
// scheduler-phase-share columns (round_wall_ns_mean/max,
// time_share_step/route/sync) to the report — wall-clock telemetry, so
// reports meant to be byte-reproducible should leave it off.
// -cpuprofile/-memprofile/-exectrace profile the whole sweep process
// with the standard pprof / runtime-trace tooling. The exit status is
// non-zero when any run fails verification or times out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/prof"
	"distspanner/internal/scenario"
	"distspanner/internal/sweep"
)

func main() {
	scenarioFlag := flag.String("scenario", "", "registered scenario name (see -list)")
	gridFlag := flag.String("grid", "", `parameter grid, e.g. "n=64,128;p=0.1,0.2" (empty: scenario defaults)`)
	replicatesFlag := flag.Int("replicates", 0, "seed replicates per cell (0: scenario default)")
	workersFlag := flag.Int("workers", 0, "concurrent runs (0: GOMAXPROCS)")
	seedFlag := flag.Int64("seed", 1, "base seed for deterministic seed derivation")
	engineFlag := flag.String("engine", "", `execution engine for simulated scenarios: "auto", "barrier", "event", "step" (overlays engine=<v> on every cell)`)
	timingFlag := flag.Bool("timing", false, "overlay timing=1 on every cell: record per-round wall time and scheduler-phase shares as report columns (wall-clock telemetry; non-deterministic)")
	cpuprofileFlag := flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to this file")
	memprofileFlag := flag.String("memprofile", "", "write an allocation profile (taken at exit) to this file")
	exectraceFlag := flag.String("exectrace", "", "write a runtime execution trace (go tool trace) to this file")
	timeoutFlag := flag.Duration("timeout", 2*time.Minute, "per-run timeout (0: none)")
	jsonFlag := flag.String("json", "", `write the full report as JSON to this path ("-": stdout)`)
	csvFlag := flag.String("csv", "", `write per-cell aggregates as CSV to this path ("-": stdout)`)
	listFlag := flag.Bool("list", false, "list scenarios and graph families, then exit")
	quietFlag := flag.Bool("q", false, "suppress the stderr summary")
	flag.Parse()

	if *listFlag {
		list()
		return
	}
	if *scenarioFlag == "" {
		fmt.Fprintln(os.Stderr, "sweep: -scenario is required (try -list)")
		os.Exit(2)
	}
	sc, ok := scenario.Get(*scenarioFlag)
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown scenario %q (try -list)\n", *scenarioFlag)
		os.Exit(2)
	}
	var cells []scenario.Params
	if *gridFlag != "" {
		grid, err := scenario.ParseGrid(*gridFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
		cells = grid.Cells()
	}
	if *engineFlag != "" {
		if _, err := dist.ParseMode(*engineFlag); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(2)
		}
		if cells == nil {
			cells = sc.DefaultCells()
		}
		for i := range cells {
			cells[i] = cells[i].Merge(scenario.Params{"engine": *engineFlag})
		}
	}
	if *timingFlag {
		if cells == nil {
			cells = sc.DefaultCells()
		}
		for i := range cells {
			cells[i] = cells[i].Merge(scenario.Params{"timing": "1"})
		}
	}

	stopProfiles, err := prof.Start(*cpuprofileFlag, *memprofileFlag, *exectraceFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	rep, err := sweep.Execute(sweep.Options{
		Scenario:   sc,
		Cells:      cells,
		Replicates: *replicatesFlag,
		Workers:    *workersFlag,
		BaseSeed:   *seedFlag,
		Timeout:    *timeoutFlag,
	})
	if err != nil {
		stopProfiles()
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	elapsed := time.Since(start)
	stopProfiles()

	if err := emit(*jsonFlag, rep.WriteJSON); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	if err := emit(*csvFlag, rep.WriteCSV); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	if !*quietFlag {
		rep.Summary(os.Stderr)
		fmt.Fprintf(os.Stderr, "wall clock: %s\n", elapsed.Round(time.Millisecond))
	}
	if rep.Failed() {
		os.Exit(1)
	}
}

// emit writes one report serialization to path ("" skips, "-" targets
// stdout).
func emit(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func list() {
	fmt.Println("scenarios:")
	for _, name := range scenario.Names() {
		s, _ := scenario.Get(name)
		fmt.Printf("  %-22s %-10s %s\n", s.Name, s.Model, s.Title)
	}
	fmt.Println("\ngraph families (select with family=<name>):")
	for _, f := range scenario.Families() {
		fmt.Printf("  %-18s %-34s %s\n", f.Name, f.Params, f.Doc)
	}
	fmt.Println("\ndirected: family=rdg (n, p) or any family above with twoway=<frac>")
	fmt.Println("weights:  add whi=<max> (and wlo=<min>) to weight any family")
	fmt.Println("engine:   add engine=barrier|event|step (or -engine) to pick the dist scheduler;")
	fmt.Println("          modes are bit-identical, so an engine axis compares wall clock only")
	fmt.Println("timing:   add timing=1 (or -timing) for per-round wall-time and scheduler-share")
	fmt.Println("          columns — wall-clock telemetry, excluded from deterministic baselines")
}
