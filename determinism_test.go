// Algorithm-level reproducibility: for a fixed seed, the distributed
// algorithms are deterministic end to end — identical edge sets AND
// identical engine statistics across runs, independent of goroutine
// scheduling. CI additionally runs these under -race, where the scheduler
// is deliberately perturbed.
package distspanner_test

import (
	"reflect"
	"testing"

	"distspanner"
)

func TestBuild2SpannerReproducible(t *testing.T) {
	g := distspanner.RandomGraph(40, 0.25, 17)
	var first *distspanner.Result
	for run := 0; run < 3; run++ {
		res, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if !first.Spanner.Equal(res.Spanner) {
			t.Fatalf("run %d: spanner differs from run 0", run)
		}
		if first.Stats != res.Stats {
			t.Fatalf("run %d: stats differ:\n%+v\n%+v", run, first.Stats, res.Stats)
		}
		if first.Iterations != res.Iterations || first.Cost != res.Cost {
			t.Fatalf("run %d: telemetry differs", run)
		}
	}
}

func TestBuildMDSReproducible(t *testing.T) {
	g := distspanner.RandomGraph(40, 0.2, 23)
	var first *distspanner.MDSResult
	for run := 0; run < 3; run++ {
		res, err := distspanner.BuildMDS(g, distspanner.MDSOptions{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = res
			continue
		}
		if !reflect.DeepEqual(first.DominatingSet, res.DominatingSet) {
			t.Fatalf("run %d: dominating set differs from run 0", run)
		}
		if first.Stats != res.Stats {
			t.Fatalf("run %d: stats differ:\n%+v\n%+v", run, first.Stats, res.Stats)
		}
	}
}

// TestCrossModeTranscriptsIdentical is the engine's scheduler-equivalence
// contract at the algorithm level: for a fixed (graph, seed), the barrier
// engine, the event-driven scheduler, and the goroutine-free state-machine
// engine must produce bit-identical transcripts — the same spanner edge
// set, the same dominating set, and the same engine statistics (rounds,
// messages, bits), field for field.
func TestCrossModeTranscriptsIdentical(t *testing.T) {
	modes := []distspanner.ExecMode{distspanner.ModeBarrier, distspanner.ModeEvent, distspanner.ModeStep}
	g := distspanner.RandomGraph(60, 0.15, 41)
	base, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 5, ExecMode: modes[0]})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range modes[1:] {
		res, err := distspanner.Build2Spanner(g, distspanner.Options{Seed: 5, ExecMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !base.Spanner.Equal(res.Spanner) {
			t.Fatalf("2-spanner edge sets differ between barrier and %v modes", mode)
		}
		if base.Stats != res.Stats {
			t.Fatalf("2-spanner stats differ between modes:\nbarrier: %+v\n%v: %+v", base.Stats, mode, res.Stats)
		}
		if base.Iterations != res.Iterations || base.Cost != res.Cost {
			t.Fatalf("2-spanner telemetry differs between barrier and %v modes", mode)
		}
	}

	mg := distspanner.RandomGraph(48, 0.18, 13)
	mb, err := distspanner.BuildMDS(mg, distspanner.MDSOptions{Seed: 9, ExecMode: modes[0]})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range modes[1:] {
		res, err := distspanner.BuildMDS(mg, distspanner.MDSOptions{Seed: 9, ExecMode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(mb.DominatingSet, res.DominatingSet) || mb.Stats != res.Stats {
			t.Fatalf("MDS transcripts differ between modes:\nbarrier: %v %+v\n%v: %v %+v",
				mb.DominatingSet, mb.Stats, mode, res.DominatingSet, res.Stats)
		}
	}
}

func TestCongestRunReproducible(t *testing.T) {
	g := distspanner.RandomGraph(14, 0.4, 31)
	a, err := distspanner.Build2SpannerCongest(g, distspanner.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := distspanner.Build2SpannerCongest(g, distspanner.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Spanner.Equal(b.Spanner) || a.Stats != b.Stats || a.Subrounds != b.Subrounds {
		t.Fatal("CONGEST execution is not reproducible for a fixed seed")
	}
}
