module distspanner

go 1.24
