package lb

import (
	"math"
	"math/rand"
)

// DisjointInputs returns random input strings a, b of length n with
// a_i ∧ b_i = 0 everywhere (set-disjointness YES instances). Density is
// the marginal probability of a 1 in either string.
func DisjointInputs(n int, density float64, seed int64) (a, b []bool) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]bool, n)
	b = make([]bool, n)
	for i := 0; i < n; i++ {
		switch {
		case rng.Float64() < density:
			a[i] = true
		case rng.Float64() < density:
			b[i] = true
		}
	}
	return a, b
}

// IntersectingInputs returns random inputs with exactly `conflicts`
// positions where a_i = b_i = 1 (set-disjointness NO instances).
func IntersectingInputs(n, conflicts int, density float64, seed int64) (a, b []bool) {
	if conflicts < 1 || conflicts > n {
		panic("lb: conflicts out of range")
	}
	a, b = DisjointInputs(n, density, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	for _, i := range rng.Perm(n)[:conflicts] {
		a[i] = true
		b[i] = true
	}
	return a, b
}

// FarFromDisjointInputs returns inputs with at least n/12 conflict
// positions: the gap-disjointness NO instances of Lemma 2.5/2.6.
func FarFromDisjointInputs(n int, seed int64) (a, b []bool) {
	conflicts := n / 12
	if conflicts < 1 {
		conflicts = 1
	}
	return IntersectingInputs(n, conflicts, 0.3, seed)
}

// Predicted lower-bound curves. Each returns the Ω(·) expression's value
// (constant factor 1) so experiments can chart the shapes of the theorems.

// RandomizedDirectedRounds is Theorem 1.1: any randomized α-approximation
// for directed k-spanner (k >= 5) in CONGEST needs Ω(√n / (√α · log n))
// rounds, for 1 <= α <= n/100.
func RandomizedDirectedRounds(n int, alpha float64) float64 {
	if n < 2 || alpha < 1 {
		return 0
	}
	return math.Sqrt(float64(n)) / (math.Sqrt(alpha) * math.Log2(float64(n)))
}

// DeterministicDirectedRounds is Theorem 2.8: deterministic algorithms need
// Ω(n / (√α · log n)) rounds.
func DeterministicDirectedRounds(n int, alpha float64) float64 {
	if n < 2 || alpha < 1 {
		return 0
	}
	return float64(n) / (math.Sqrt(alpha) * math.Log2(float64(n)))
}

// WeightedDirectedRounds is Theorem 2.9: Ω(n / log n) for weighted directed
// k-spanner, k >= 4, any approximation ratio.
func WeightedDirectedRounds(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) / math.Log2(float64(n))
}

// WeightedUndirectedRounds is Theorem 2.10: Ω(n / (k·log n)) for the
// undirected weighted case.
func WeightedUndirectedRounds(n, k int) float64 {
	if n < 2 || k < 1 {
		return 0
	}
	return float64(n) / (float64(k) * math.Log2(float64(n)))
}

// Weighted2SpannerLocalRoundsDelta is Theorem 3.3's first bound: any
// constant/polylog approximation of weighted 2-spanner needs
// Ω(log Δ / log log Δ) rounds even in LOCAL.
func Weighted2SpannerLocalRoundsDelta(delta int) float64 {
	if delta < 4 {
		return 0
	}
	l := math.Log2(float64(delta))
	return l / math.Log2(l)
}

// Weighted2SpannerLocalRoundsN is Theorem 3.3's second bound:
// Ω(√(log n / log log n)) rounds.
func Weighted2SpannerLocalRoundsN(n int) float64 {
	if n < 4 {
		return 0
	}
	l := math.Log2(float64(n))
	return math.Sqrt(l / math.Log2(l))
}

// ExactWeighted2SpannerRounds is Theorem 3.5: solving weighted 2-spanner
// optimally in CONGEST needs Ω(n² / log² n) rounds.
func ExactWeighted2SpannerRounds(n int) float64 {
	if n < 2 {
		return 0
	}
	l := math.Log2(float64(n))
	return float64(n) * float64(n) / (l * l)
}

// TradeoffRatioN is Theorem 3.4's first trade-off: in k rounds, every
// distributed weighted-2-spanner algorithm has approximation ratio at
// least Ω(n^{(1-o(1))/(4k²)} / k); this returns n^{1/(4k²)}/k, the
// leading shape with the o(1) dropped.
func TradeoffRatioN(n, k int) float64 {
	if n < 2 || k < 1 {
		return 0
	}
	return math.Pow(float64(n), 1/float64(4*k*k)) / float64(k)
}

// TradeoffRatioDelta is Theorem 3.4's second trade-off: ratio at least
// Ω(Δ^{1/(k+1)} / k) in k rounds.
func TradeoffRatioDelta(delta, k int) float64 {
	if delta < 2 || k < 1 {
		return 0
	}
	return math.Pow(float64(delta), 1/float64(k+1)) / float64(k)
}

// Fig1Params chooses (ℓ, β) per Theorem 1.1's proof for a target vertex
// count and approximation ratio: q = ⌈αc⌉ + 1 with c = 7, ℓ = ⌊√(n'/cq)⌋,
// β = qℓ. Returns an error-free best effort with ℓ >= 1.
func Fig1Params(nTarget int, alpha float64) (l, beta int) {
	const c = 7
	q := int(math.Ceil(alpha*c)) + 1
	l = int(math.Floor(math.Sqrt(float64(nTarget) / float64(c*q))))
	if l < 1 {
		l = 1
	}
	beta = q * l
	return l, beta
}

// GapParams chooses (ℓ, β) per Theorem 2.8's proof: β = ⌈√(12αc)⌉ + 1,
// ℓ = ⌊n'/(cβ)⌋.
func GapParams(nTarget int, alpha float64) (l, beta int) {
	const c = 7
	beta = int(math.Ceil(math.Sqrt(12*alpha*float64(c)))) + 1
	l = nTarget / (c * beta)
	if l < 1 {
		l = 1
	}
	return l, beta
}

// ImpliedRoundLB converts a communication-complexity requirement into a
// round lower bound for a given cut: an algorithm exchanging at most
// bandwidth bits per cut edge per round needs at least
// bitsNeeded / (cutEdges · bandwidth) rounds (Lemma 2.4's accounting).
func ImpliedRoundLB(bitsNeeded, cutEdges, bandwidth int) float64 {
	if cutEdges <= 0 || bandwidth <= 0 {
		return math.Inf(1)
	}
	return float64(bitsNeeded) / float64(cutEdges*bandwidth)
}
