package lb

import (
	"distspanner/internal/core"
	"distspanner/internal/graph"
)

// MVCViaSpanner makes Lemma 3.2 executable in the forward direction: any
// distributed α-approximation for the weighted 2-spanner problem yields an
// α-approximation for minimum vertex cover with a 3× round overhead, by
// simulating the spanner algorithm on the gadget G_S (each vertex of G
// simulates its three gadget vertices, and each gadget round costs three
// rounds of G).
//
// Here the spanner algorithm is the paper's own weighted variant
// (Theorem 4.12), so the composition is a distributed O(log Δ)-approximate
// vertex cover — the reduction run forwards instead of as a lower bound.
type MVCResult struct {
	// Cover is the produced vertex cover of the base graph.
	Cover []int
	// SpannerCost is the weighted 2-spanner cost on G_S; the cover size
	// never exceeds it (Claim 3.1's conversion).
	SpannerCost float64
	// GadgetRounds is the simulated algorithm's round count on G_S.
	GadgetRounds int
	// SimulatedRounds is the Lemma 3.2 accounting on G: 3 × GadgetRounds.
	SimulatedRounds int
}

// MVCViaSpanner runs the reduction on g.
func MVCViaSpanner(g *graph.Graph, opts core.Options) (*MVCResult, error) {
	m := NewMVCGadget(g, false)
	res, err := core.TwoSpanner(m.GS, opts)
	if err != nil {
		return nil, err
	}
	cover := m.SpannerToCover(res.Spanner)
	// The conversion may undershoot coverage only if the spanner was
	// invalid; guard by completing greedily (never triggered in tests,
	// kept for safety against future algorithm changes).
	if !m.IsVertexCover(cover) {
		inCover := make(map[int]bool, len(cover))
		for _, v := range cover {
			inCover[v] = true
		}
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if !inCover[e.U] && !inCover[e.V] {
				inCover[e.U] = true
				cover = append(cover, e.U)
			}
		}
	}
	return &MVCResult{
		Cover:           cover,
		SpannerCost:     res.Cost,
		GadgetRounds:    res.Stats.Rounds,
		SimulatedRounds: 3 * res.Stats.Rounds,
	}, nil
}
