package lb

import (
	"fmt"
	"sort"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// This file makes the two-party simulation argument of Lemmas 2.4/2.7
// executable. Alice simulates V_A, Bob simulates V_B = Y1; running any
// distributed algorithm on the construction, the bits they must exchange
// are exactly the message bits crossing the cut — which the dist engine
// meters directly. Combined with the Ω(N) communication complexity of
// (gap) set-disjointness, the measured cut traffic converts into round
// lower bounds via ImpliedRoundLB.

// TwoPartyReport summarizes a metered run on a lower-bound instance.
type TwoPartyReport struct {
	// Stats is the engine's accounting; Stats.CutBits is what Alice and
	// Bob exchanged.
	Stats dist.Stats
	// CutEdges is the number of communication edges crossing the cut
	// (Θ(ℓ) on G(ℓ,β)).
	CutEdges int
	// BitsNeeded is the communication-complexity requirement Ω(N) = ℓ²
	// for (gap) disjointness on this instance.
	BitsNeeded int
	// ImpliedRounds is BitsNeeded / (CutEdges · bandwidth): the round
	// lower bound the reduction yields for CONGEST algorithms at the
	// given bandwidth.
	ImpliedRounds float64
}

// MeterLearnBall runs the naive "collect your d-neighborhood" protocol on
// the underlying undirected communication graph of the instance, with the
// Alice/Bob cut metered. Learning 5-neighborhoods is what a trivial
// directed-5-spanner algorithm would do on G(ℓ,β): each x_ij seeing its
// 5-ball can decide locally which of its D-edges are forced. The measured
// cut traffic shows how expensive that is through the Θ(ℓ) cut.
func MeterLearnBall(comm *graph.Graph, cut []bool, depth, bandwidth, bitsNeeded int) (*TwoPartyReport, error) {
	if depth < 1 {
		return nil, fmt.Errorf("lb: depth must be >= 1, got %d", depth)
	}
	proc := func(ctx *dist.Ctx) {
		type edgeKey [2]int
		known := make(map[edgeKey]bool)
		var fresh []edgeKey
		for _, u := range ctx.Neighbors() {
			k := edgeKey{ctx.ID(), u}
			if k[0] > k[1] {
				k[0], k[1] = k[1], k[0]
			}
			known[k] = true
			fresh = append(fresh, k)
		}
		for round := 0; round < depth; round++ {
			sort.Slice(fresh, func(i, j int) bool {
				if fresh[i][0] != fresh[j][0] {
					return fresh[i][0] < fresh[j][0]
				}
				return fresh[i][1] < fresh[j][1]
			})
			payload := dist.Pairs{Space: ctx.N()}
			for _, k := range fresh {
				payload.Values = append(payload.Values, [2]int{k[0], k[1]})
			}
			ctx.Broadcast(payload)
			fresh = nil
			for _, m := range ctx.NextRound() {
				for _, pr := range m.Payload.(dist.Pairs).Values {
					k := edgeKey{pr[0], pr[1]}
					if !known[k] {
						known[k] = true
						fresh = append(fresh, k)
					}
				}
			}
		}
	}
	stats, err := dist.Run(dist.Config{Graph: comm, Seed: 1, CutSide: cut}, proc)
	if err != nil {
		return nil, err
	}
	cutEdges := 0
	for i := 0; i < comm.M(); i++ {
		e := comm.Edge(i)
		if cut[e.U] != cut[e.V] {
			cutEdges++
		}
	}
	return &TwoPartyReport{
		Stats:         *stats,
		CutEdges:      cutEdges,
		BitsNeeded:    bitsNeeded,
		ImpliedRounds: ImpliedRoundLB(bitsNeeded, cutEdges, bandwidth),
	}, nil
}

// DecideDisjointness is Alice's decision rule from Lemma 2.4: given a
// k-spanner produced by an α-approximation algorithm on G(ℓ,β), the inputs
// are declared disjoint iff the spanner uses at most α·t edges of D, where
// t = c·ℓ·β (c = 7) bounds the optimal spanner for disjoint inputs.
func DecideDisjointness(f *Fig1, spanner *graph.EdgeSet, alpha float64) (disjoint bool) {
	dInSpanner := spanner.Clone()
	dInSpanner.IntersectWith(f.D)
	t := 7 * f.L * f.Beta
	return float64(dInSpanner.Len()) <= alpha*float64(t)
}

// DecideGapDisjointness is the deterministic variant (Lemma 2.7): with
// β ≤ ℓ the disjoint-side bound is t = c·ℓ² and Alice declares
// "far from disjoint" iff more than α·t edges of D are used.
func DecideGapDisjointness(f *Fig1, spanner *graph.EdgeSet, alpha float64) (farFromDisjoint bool) {
	dInSpanner := spanner.Clone()
	dInSpanner.IntersectWith(f.D)
	t := 7 * f.L * f.L
	return float64(dInSpanner.Len()) > alpha*float64(t)
}

// ThresholdGap reports the instance's dichotomy margin for approximation
// ratio alpha (Theorem 1.1's calculus): the decision rule is sound whenever
// α·t < β², i.e. whenever ThresholdGap is positive.
func ThresholdGap(f *Fig1, alpha float64) float64 {
	t := float64(7 * f.L * f.Beta)
	return float64(f.Beta*f.Beta) - alpha*t
}
