package lb

import (
	"testing"

	"distspanner/internal/span"
)

func TestFig2CutSideAndDisjoint(t *testing.T) {
	l := 3
	a, b := DisjointInputs(l*l, 0.4, 1)
	f, err := NewFig2(l, a, b)
	if err != nil {
		t.Fatal(err)
	}
	side := f.CutSide()
	bobCount := 0
	for _, s := range side {
		if s {
			bobCount++
		}
	}
	if bobCount != 2*l {
		t.Fatalf("Bob simulates %d vertices, want |Y1| = 2ℓ = %d", bobCount, 2*l)
	}
	if !f.Disjoint() {
		t.Fatal("disjoint inputs misreported")
	}
	a2, b2 := IntersectingInputs(l*l, 1, 0.3, 2)
	fu, err := NewFig2Undirected(l, 4, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if fu.Disjoint() {
		t.Fatal("intersecting undirected inputs misreported")
	}
	// DirectedCost on the weighted construction.
	cost := span.DirectedCost(f.G, f.D)
	if cost != float64(l*l) {
		t.Fatalf("D costs %f, want ℓ² = %d", cost, l*l)
	}
}
