package lb

import (
	"fmt"
	"sort"

	"distspanner/internal/graph"
)

// MVCGadget is the Figure 3 reduction (Section 3): from an MVC instance G
// it builds the weighted graph G_S whose minimum-cost 2-spanner equals the
// minimum vertex cover of G exactly (Claim 3.1). Per vertex v, a triangle
// v1, v2, v3 with w(v1,v2) = 1 and w(v1,v3) = w(v2,v3) = 0; per edge
// {v,u} ∈ G, edges {v1,u1} and {v2,u2} of weight 0 plus one weight-2 edge
// {v1,u2} (for v < u, fixing the paper's id-order choice).
type MVCGadget struct {
	Base *graph.Graph // the MVC instance
	GS   *graph.Graph
	// CapWeights, when set, lowers the weight-2 edges to weight 1 (the
	// remark's 0/1-weight variant: an α-approximation then yields a
	// 2α-approximation for MVC).
	CapWeights bool
}

// V1 returns the id of v1 in G_S.
func (m *MVCGadget) V1(v int) int { return 3 * v }

// V2 returns the id of v2 in G_S.
func (m *MVCGadget) V2(v int) int { return 3*v + 1 }

// V3 returns the id of v3 in G_S.
func (m *MVCGadget) V3(v int) int { return 3*v + 2 }

// NewMVCGadget builds G_S from g.
func NewMVCGadget(g *graph.Graph, capWeights bool) *MVCGadget {
	m := &MVCGadget{Base: g, CapWeights: capWeights}
	gs := graph.New(3 * g.N())
	setW := func(idx int, w float64) { gs.SetWeight(idx, w) }
	heavy := 2.0
	if capWeights {
		heavy = 1
	}
	for v := 0; v < g.N(); v++ {
		setW(gs.AddEdge(m.V1(v), m.V2(v)), 1)
		setW(gs.AddEdge(m.V1(v), m.V3(v)), 0)
		setW(gs.AddEdge(m.V2(v), m.V3(v)), 0)
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i) // canonical U < V
		v, u := e.U, e.V
		setW(gs.AddEdge(m.V1(v), m.V1(u)), 0)
		setW(gs.AddEdge(m.V2(v), m.V2(u)), 0)
		setW(gs.AddEdge(m.V1(v), m.V2(u)), heavy)
	}
	m.GS = gs
	return m
}

// CoverToSpanner implements the forward direction of Claim 3.1: a vertex
// cover C of the base graph maps to a 2-spanner of G_S with cost |C| (all
// weight-0 edges plus the edge {v1, v2} for each v ∈ C).
func (m *MVCGadget) CoverToSpanner(cover []int) *graph.EdgeSet {
	h := graph.NewEdgeSet(m.GS.M())
	for i := 0; i < m.GS.M(); i++ {
		if m.GS.Weight(i) == 0 {
			h.Add(i)
		}
	}
	for _, v := range cover {
		idx, ok := m.GS.EdgeIndex(m.V1(v), m.V2(v))
		if !ok {
			panic(fmt.Sprintf("lb: missing triangle edge for vertex %d", v))
		}
		h.Add(idx)
	}
	return h
}

// SpannerToCover implements the reverse direction of Claim 3.1: any
// 2-spanner H of G_S converts, without cost increase, to a vertex cover of
// the base graph. Weight-2 edges {v1,u2} in H are replaced by {v1,v2} and
// {u1,u2}; the cover is then {v : {v1,v2} ∈ H'}.
func (m *MVCGadget) SpannerToCover(h *graph.EdgeSet) []int {
	inCover := make(map[int]bool)
	h.ForEach(func(i int) {
		e := m.GS.Edge(i)
		w := m.GS.Weight(i)
		if w == 0 {
			return
		}
		// Identify which gadget edge this is.
		uBase, uRole := e.U/3, e.U%3
		vBase, vRole := e.V/3, e.V%3
		if uBase == vBase && uRole == 0 && vRole == 1 {
			inCover[uBase] = true // a {v1, v2} edge
			return
		}
		// A heavy cross edge {v1, u2}: take both endpoints' vertices.
		if uRole == 0 && vRole == 1 {
			inCover[uBase] = true
			inCover[vBase] = true
		}
	})
	out := make([]int, 0, len(inCover))
	for v := range inCover {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// IsVertexCover reports whether set covers all edges of the base graph.
func (m *MVCGadget) IsVertexCover(set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	for i := 0; i < m.Base.M(); i++ {
		e := m.Base.Edge(i)
		if !in[e.U] && !in[e.V] {
			return false
		}
	}
	return true
}

// DirectedMVCGadget builds the directed variant from the Section 3
// remarks: triangle arcs (v1→v2), (v1→v3), (v3→v2); per base edge {v,u}
// (v < u): (v1→u1), (u1→v1), (v2→u2), (u2→v2) of weight 0 and the heavy
// (v1→u2).
func DirectedMVCGadget(g *graph.Graph, capWeights bool) (*graph.Digraph, *MVCGadget) {
	m := &MVCGadget{Base: g, CapWeights: capWeights}
	gs := graph.NewDigraph(3 * g.N())
	heavy := 2.0
	if capWeights {
		heavy = 1
	}
	setW := func(idx int, w float64) { gs.SetWeight(idx, w) }
	for v := 0; v < g.N(); v++ {
		setW(gs.AddEdge(m.V1(v), m.V2(v)), 1)
		setW(gs.AddEdge(m.V1(v), m.V3(v)), 0)
		setW(gs.AddEdge(m.V3(v), m.V2(v)), 0)
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		v, u := e.U, e.V
		setW(gs.AddEdge(m.V1(v), m.V1(u)), 0)
		setW(gs.AddEdge(m.V1(u), m.V1(v)), 0)
		setW(gs.AddEdge(m.V2(v), m.V2(u)), 0)
		setW(gs.AddEdge(m.V2(u), m.V2(v)), 0)
		setW(gs.AddEdge(m.V1(v), m.V2(u)), heavy)
	}
	return gs, m
}
