package lb

import (
	"math"
	"testing"

	"distspanner/internal/core"
	"distspanner/internal/exact"
	"distspanner/internal/gen"
)

func TestMVCViaSpannerProducesCover(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := gen.ConnectedGNP(14, 0.3, seed)
		res, err := MVCViaSpanner(g, core.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m := NewMVCGadget(g, false)
		if !m.IsVertexCover(res.Cover) {
			t.Fatalf("seed %d: reduction output is not a vertex cover", seed)
		}
		if float64(len(res.Cover)) > res.SpannerCost+1e-9 {
			t.Fatalf("seed %d: cover size %d exceeds spanner cost %f (Claim 3.1 conversion)",
				seed, len(res.Cover), res.SpannerCost)
		}
		if res.SimulatedRounds != 3*res.GadgetRounds {
			t.Fatal("Lemma 3.2 round accounting wrong")
		}
	}
}

func TestMVCViaSpannerRatio(t *testing.T) {
	// The composed algorithm inherits the weighted spanner's O(log Δ)
	// guarantee (Lemma 3.2 transfers ratios exactly).
	g := gen.ConnectedGNP(16, 0.35, 7)
	opt := len(exact.MinVertexCover(g))
	if opt == 0 {
		t.Skip("degenerate instance")
	}
	bound := 10 * (math.Log2(float64(3*g.MaxDegree())+2) + 2)
	for seed := int64(0); seed < 6; seed++ {
		res, err := MVCViaSpanner(g, core.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(len(res.Cover)) / float64(opt)
		if ratio > bound {
			t.Fatalf("seed %d: MVC ratio %.2f exceeds transferred O(log Δ) bound %.2f", seed, ratio, bound)
		}
	}
}

func TestMVCViaSpannerEdgeless(t *testing.T) {
	g := gen.Path(1)
	res, err := MVCViaSpanner(g, core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 {
		t.Fatalf("edgeless graph needs an empty cover, got %v", res.Cover)
	}
}

func TestTradeoffCurves(t *testing.T) {
	// More rounds buy smaller unavoidable ratios; both curves must be
	// decreasing in k and increasing in n / Δ.
	if TradeoffRatioN(1<<20, 1) <= TradeoffRatioN(1<<20, 2) {
		t.Fatal("n-curve must decrease with k")
	}
	if TradeoffRatioN(1<<20, 1) <= TradeoffRatioN(1<<10, 1) {
		t.Fatal("n-curve must increase with n")
	}
	if TradeoffRatioDelta(1024, 1) != 32 {
		t.Fatalf("Δ-curve at (1024,1) = %f, want Δ^{1/2}/1 = 32", TradeoffRatioDelta(1024, 1))
	}
	if TradeoffRatioDelta(1024, 3) >= TradeoffRatioDelta(1024, 2) {
		t.Fatal("Δ-curve must decrease with k")
	}
	if TradeoffRatioN(1, 1) != 0 || TradeoffRatioDelta(1, 1) != 0 {
		t.Fatal("degenerate inputs must be 0")
	}
}
