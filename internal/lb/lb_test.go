package lb

import (
	"math"
	"testing"
	"testing/quick"

	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func TestFig1Shape(t *testing.T) {
	l, beta := 3, 4
	a := make([]bool, l*l)
	b := make([]bool, l*l)
	f, err := NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.G.N() != 2*l*beta+5*l {
		t.Fatalf("n = %d, want 2ℓβ+5ℓ = %d", f.G.N(), 2*l*beta+5*l)
	}
	if f.D.Len() != (l*beta)*(l*beta) {
		t.Fatalf("|D| = %d, want (ℓβ)² = %d", f.D.Len(), l*beta*l*beta)
	}
	if got := f.CutEdges(); got != 3*l {
		t.Fatalf("cut edges = %d, want 3ℓ = %d", got, 3*l)
	}
}

func TestFig1Validation(t *testing.T) {
	if _, err := NewFig1(0, 1, nil, nil); err == nil {
		t.Fatal("ℓ=0 must error")
	}
	if _, err := NewFig1(2, 2, make([]bool, 3), make([]bool, 4)); err == nil {
		t.Fatal("wrong input length must error")
	}
}

func TestFig1Claim22Property(t *testing.T) {
	// Claim 2.2 must hold for random inputs, disjoint or not.
	f := func(seed int64) bool {
		l := 2 + int(seed%3+3)%3 // 2..4
		beta := l + 1
		var a, b []bool
		if seed%2 == 0 {
			a, b = DisjointInputs(l*l, 0.4, seed)
		} else {
			conflicts := 1 + int((seed%int64(l)+int64(l))%int64(l))
			a, b = IntersectingInputs(l*l, conflicts, 0.3, seed)
		}
		fig, err := NewFig1(l, beta, a, b)
		if err != nil {
			return false
		}
		return fig.VerifyClaim22() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFig1Lemma23Dichotomy(t *testing.T) {
	l, beta := 3, 4 // β >= ℓ as Lemma 2.3 requires
	// Disjoint side: the non-D edges are a 5-spanner of size <= 7ℓβ.
	a, b := DisjointInputs(l*l, 0.4, 1)
	f, err := NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	h := f.NonDSpanner()
	if !span.IsDirectedKSpanner(f.G, h, 5) {
		t.Fatal("disjoint inputs: non-D edges must form a 5-spanner")
	}
	if h.Len() > 7*l*beta {
		t.Fatalf("non-D spanner has %d edges, Lemma 2.3 promises <= 7ℓβ = %d", h.Len(), 7*l*beta)
	}
	// And it is a k-spanner for all k >= 5.
	if !span.IsDirectedKSpanner(f.G, h, 6) {
		t.Fatal("5-spanner must also be a 6-spanner")
	}

	// Intersecting side: every spanner needs >= β² D-edges per conflict.
	a2, b2 := IntersectingInputs(l*l, 2, 0.3, 3)
	f2, err := NewFig1(l, beta, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	forced := f2.ForcedDEdges()
	if forced.Len() != 2*beta*beta {
		t.Fatalf("forced D-edges = %d, want 2β² = %d", forced.Len(), 2*beta*beta)
	}
	// The non-D spanner alone must fail.
	if span.IsDirectedKSpanner(f2.G, f2.NonDSpanner(), 5) {
		t.Fatal("intersecting inputs: non-D edges cannot form a 5-spanner")
	}
	// Adding the forced edges must fix it (the structurally minimal
	// spanner).
	min := f2.MinimalSpanner()
	if !span.IsDirectedKSpanner(f2.G, min, 5) {
		t.Fatal("minimal spanner invalid")
	}
	// Forced means forced: dropping any forced edge breaks the spanner.
	some := forced.Slice()[0]
	broken := min.Clone()
	broken.Remove(some)
	if span.IsDirectedKSpanner(f2.G, broken, 5) {
		t.Fatal("a forced D-edge was droppable")
	}
}

func TestFig1GapDichotomyLemma26(t *testing.T) {
	// Lemma 2.6 regime: β <= ℓ, gap instances.
	l, beta := 6, 2
	a, b := DisjointInputs(l*l, 0.3, 5)
	f, err := NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	h := f.NonDSpanner()
	if !span.IsDirectedKSpanner(f.G, h, 5) {
		t.Fatal("disjoint: non-D spanner invalid")
	}
	if h.Len() > 7*l*l {
		t.Fatalf("non-D spanner %d > 7ℓ² = %d", h.Len(), 7*l*l)
	}
	af, bf := FarFromDisjointInputs(l*l, 7)
	f2, err := NewFig1(l, beta, af, bf)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(beta*beta) * float64(l*l) / 12
	if got := float64(f2.ForcedDEdges().Len()); got < want {
		t.Fatalf("far inputs force %f D-edges, Lemma 2.6 needs >= β²ℓ²/12 = %f", got, want)
	}
}

func TestFig2ZeroCostIffDisjoint(t *testing.T) {
	l := 4
	a, b := DisjointInputs(l*l, 0.4, 2)
	f, err := NewFig2(l, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if f.G.N() != 6*l {
		t.Fatalf("n = %d, want 6ℓ", f.G.N())
	}
	if !f.Disjoint() {
		t.Fatal("generator must produce disjoint inputs")
	}
	h := f.ZeroCostSpanner()
	if !span.IsDirectedKSpanner(f.G, h, 4) {
		t.Fatal("disjoint: zero-weight edges must form a 4-spanner")
	}
	if f.G.TotalWeight(h) != 0 {
		t.Fatal("zero-cost spanner has positive cost")
	}

	a2, b2 := IntersectingInputs(l*l, 1, 0.3, 4)
	f2, err := NewFig2(l, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if span.IsDirectedKSpanner(f2.G, f2.ZeroCostSpanner(), 4) {
		t.Fatal("intersecting: zero-weight edges cannot 4-span")
	}
	// The conflicting D-edge is forced at any stretch: removal leaves the
	// pair unreachable.
	var conflict [2]int
	found := false
	for i := 0; i < l*l && !found; i++ {
		if a2[i] && b2[i] {
			conflict = [2]int{i / l, i % l}
			found = true
		}
	}
	if !found {
		t.Fatal("no conflict in intersecting inputs")
	}
	idx, _ := f2.G.EdgeIndex(f2.X2(conflict[0]), f2.Y2(conflict[1]))
	all := graph.Full(f2.G.M())
	all.Remove(idx)
	if d := f2.G.DistWithin(f2.X2(conflict[0]), f2.Y2(conflict[1]), all, -1); d != -1 {
		t.Fatalf("conflict D-edge not forced: alternative path of length %d", d)
	}
}

func TestFig2UndirectedZeroCostIffDisjoint(t *testing.T) {
	l := 3
	for _, k := range []int{4, 5, 7} {
		a, b := DisjointInputs(l*l, 0.4, int64(k))
		f, err := NewFig2Undirected(l, k, a, b)
		if err != nil {
			t.Fatal(err)
		}
		h := f.ZeroCostSpanner()
		if !span.IsKSpanner(f.G, h, k) {
			t.Fatalf("k=%d disjoint: zero-weight subgraph must k-span", k)
		}
		a2, b2 := IntersectingInputs(l*l, 1, 0.3, int64(k)*7)
		f2, err := NewFig2Undirected(l, k, a2, b2)
		if err != nil {
			t.Fatal(err)
		}
		if span.IsKSpanner(f2.G, f2.ZeroCostSpanner(), k) {
			t.Fatalf("k=%d intersecting: zero-weight subgraph must fail", k)
		}
	}
	if _, err := NewFig2Undirected(3, 3, make([]bool, 9), make([]bool, 9)); err == nil {
		t.Fatal("k < 4 must error")
	}
}

func TestMVCGadgetClaim31Equality(t *testing.T) {
	// The heart of Section 3: min-cost 2-spanner of G_S == MVC of G.
	for seed := int64(0); seed < 6; seed++ {
		g := gen.GNP(5, 0.5, seed)
		m := NewMVCGadget(g, false)
		mvc := exact.MinVertexCover(g)
		_, cost, err := exact.MinSpanner(m.GS, exact.SpannerOptions{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if cost != float64(len(mvc)) {
			t.Fatalf("seed %d: spanner cost %f != MVC size %d", seed, cost, len(mvc))
		}
	}
}

func TestMVCGadgetCoverToSpanner(t *testing.T) {
	g := gen.Cycle(5)
	m := NewMVCGadget(g, false)
	cover := exact.MinVertexCover(g)
	h := m.CoverToSpanner(cover)
	if !span.IsKSpanner(m.GS, h, 2) {
		t.Fatal("cover-induced spanner invalid")
	}
	if got := span.Cost(m.GS, h); got != float64(len(cover)) {
		t.Fatalf("cover-induced spanner costs %f, want |C| = %d", got, len(cover))
	}
}

func TestMVCGadgetSpannerToCover(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.GNP(6, 0.4, seed)
		m := NewMVCGadget(g, false)
		h, cost, err := exact.MinSpanner(m.GS, exact.SpannerOptions{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		cover := m.SpannerToCover(h)
		if !m.IsVertexCover(cover) {
			t.Fatalf("seed %d: converted set is not a vertex cover", seed)
		}
		if float64(len(cover)) > cost+1e-9 {
			t.Fatalf("seed %d: cover size %d exceeds spanner cost %f", seed, len(cover), cost)
		}
	}
}

func TestMVCGadgetCappedWeights(t *testing.T) {
	// 0/1-weight variant: min 2-spanner cost is between MVC/2 and MVC.
	g := gen.Clique(4)
	m := NewMVCGadget(g, true)
	mvc := len(exact.MinVertexCover(g))
	_, cost, err := exact.MinSpanner(m.GS, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost > float64(mvc)+1e-9 || cost < float64(mvc)/2-1e-9 {
		t.Fatalf("capped gadget cost %f outside [MVC/2, MVC] = [%f, %d]", cost, float64(mvc)/2, mvc)
	}
}

func TestDirectedMVCGadget(t *testing.T) {
	g := gen.Path(4)
	gs, m := DirectedMVCGadget(g, false)
	mvc := exact.MinVertexCover(g)
	_, cost, err := exact.MinDirectedSpanner(gs, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != float64(len(mvc)) {
		t.Fatalf("directed gadget cost %f != MVC %d", cost, len(mvc))
	}
	_ = m
}

func TestInputGenerators(t *testing.T) {
	a, b := DisjointInputs(100, 0.4, 1)
	for i := range a {
		if a[i] && b[i] {
			t.Fatal("disjoint generator produced a conflict")
		}
	}
	a2, b2 := IntersectingInputs(100, 7, 0.3, 2)
	conflicts := 0
	for i := range a2 {
		if a2[i] && b2[i] {
			conflicts++
		}
	}
	if conflicts != 7 {
		t.Fatalf("conflicts = %d, want 7", conflicts)
	}
	a3, b3 := FarFromDisjointInputs(120, 3)
	conflicts = 0
	for i := range a3 {
		if a3[i] && b3[i] {
			conflicts++
		}
	}
	if conflicts < 10 {
		t.Fatalf("far inputs have %d conflicts, want >= n/12 = 10", conflicts)
	}
}

func TestCurves(t *testing.T) {
	// Monotonicity and sanity of the theorem curves.
	if RandomizedDirectedRounds(10000, 1) <= RandomizedDirectedRounds(100, 1) {
		t.Fatal("randomized curve must grow with n")
	}
	if RandomizedDirectedRounds(10000, 100) >= RandomizedDirectedRounds(10000, 1) {
		t.Fatal("randomized curve must shrink with α")
	}
	if DeterministicDirectedRounds(10000, 4) <= RandomizedDirectedRounds(10000, 4) {
		t.Fatal("deterministic bound must dominate the randomized one")
	}
	if WeightedDirectedRounds(4096) != 4096.0/12 {
		t.Fatalf("weighted curve = %f", WeightedDirectedRounds(4096))
	}
	if WeightedUndirectedRounds(4096, 4) != 4096.0/48 {
		t.Fatal("undirected weighted curve wrong")
	}
	if Weighted2SpannerLocalRoundsDelta(2) != 0 || Weighted2SpannerLocalRoundsN(2) != 0 {
		t.Fatal("degenerate curves must be 0")
	}
	if ExactWeighted2SpannerRounds(1024) != 1024*1024/100.0 {
		t.Fatalf("exact curve = %f", ExactWeighted2SpannerRounds(1024))
	}
	if !math.IsInf(ImpliedRoundLB(100, 0, 8), 1) {
		t.Fatal("zero cut edges must imply infinite rounds")
	}
	if got := ImpliedRoundLB(900, 3, 10); got != 30 {
		t.Fatalf("ImpliedRoundLB = %f, want 30", got)
	}
}

func TestFig1ParamsShape(t *testing.T) {
	l, beta := Fig1Params(10000, 4)
	if l < 1 || beta < l {
		t.Fatalf("Fig1Params gave ℓ=%d β=%d; need β >= ℓ >= 1", l, beta)
	}
	// Resulting graph size should be near the target.
	n := 2*l*beta + 5*l
	if n > 2*10000 {
		t.Fatalf("construction size %d far exceeds target", n)
	}
	gl, gb := GapParams(10000, 4)
	if gl < gb {
		t.Fatalf("GapParams gave ℓ=%d < β=%d; Lemma 2.6 needs β <= ℓ", gl, gb)
	}
}

func TestFig2ExactOptimumIsZeroIffDisjoint(t *testing.T) {
	// Proof-by-solver on a small instance: the exact minimum-cost directed
	// 4-spanner of G_w has cost 0 exactly when the inputs are disjoint.
	l := 2
	a, b := DisjointInputs(l*l, 0.5, 3)
	f, err := NewFig2(l, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, cost, err := exact.MinDirectedSpanner(f.G, exact.SpannerOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("disjoint instance has exact OPT %f, want 0", cost)
	}
	a2, b2 := IntersectingInputs(l*l, 1, 0.4, 5)
	f2, err := NewFig2(l, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	_, cost2, err := exact.MinDirectedSpanner(f2.G, exact.SpannerOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cost2 < 1 {
		t.Fatalf("intersecting instance has exact OPT %f, want >= 1", cost2)
	}
}

func TestFig1MinimalSpannerIsOptimalSmall(t *testing.T) {
	// Proof-by-solver: on a tiny G(ℓ,β) the structurally minimal spanner
	// matches the exact optimum size.
	l, beta := 2, 2
	a, b := IntersectingInputs(l*l, 1, 0.4, 7)
	f, err := NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	structural := f.MinimalSpanner()
	_, cost, err := exact.MinDirectedSpanner(f.G, exact.SpannerOptions{K: 5, MaxCovers: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if float64(structural.Len()) < cost {
		t.Fatalf("structural spanner (%d) beat the exact optimum (%f)?", structural.Len(), cost)
	}
	// The exact optimum must include all forced D-edges.
	if cost < float64(f.ForcedDEdges().Len()) {
		t.Fatalf("exact optimum %f below the forced D-edge count %d", cost, f.ForcedDEdges().Len())
	}
}

func TestDisjointnessFoolingSetCertified(t *testing.T) {
	// Certify D(DISJ_N) >= N for every checkable N: the fact the
	// reductions of Section 2 consume.
	for n := 1; n <= 10; n++ {
		if err := VerifyDisjointnessFoolingSet(n); err != nil {
			t.Fatalf("N=%d: %v", n, err)
		}
		if DisjFoolingBoundBits(n) != n {
			t.Fatal("certified bound must be N bits")
		}
	}
	if err := VerifyDisjointnessFoolingSet(0); err == nil {
		t.Fatal("N=0 must be rejected")
	}
	if err := VerifyDisjointnessFoolingSet(13); err == nil {
		t.Fatal("N>12 must be rejected")
	}
}

func TestDisjBasics(t *testing.T) {
	if !Disj(0b0101, 0b1010) {
		t.Fatal("disjoint masks misclassified")
	}
	if Disj(0b0110, 0b0010) {
		t.Fatal("intersecting masks misclassified")
	}
}
