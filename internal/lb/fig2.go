package lb

import (
	"fmt"

	"distspanner/internal/graph"
)

// Fig2 is the weighted directed graph G_w(ℓ) of Figure 2 (Theorem 2.9):
// the β = 1 specialization of G(ℓ,β) without Y3, where every edge outside
// D has weight 0 and every D-edge has weight 1. There is a 0-cost
// k-spanner (k >= 4) iff the inputs are disjoint, which is what makes even
// huge approximation ratios hard: an α-approximation must return cost 0
// whenever OPT is 0.
type Fig2 struct {
	L    int
	A, B []bool
	G    *graph.Digraph
	D    *graph.EdgeSet
}

// Vertex ids: x¹_i, x²_i, y¹_i, y²_i, x_i, y_i.

// X1a returns the id of x¹_i.
func (f *Fig2) X1a(i int) int { return i }

// X1b returns the id of x²_i.
func (f *Fig2) X1b(i int) int { return f.L + i }

// Y1a returns the id of y¹_i.
func (f *Fig2) Y1a(i int) int { return 2*f.L + i }

// Y1b returns the id of y²_i.
func (f *Fig2) Y1b(i int) int { return 3*f.L + i }

// X2 returns the id of x_i.
func (f *Fig2) X2(i int) int { return 4*f.L + i }

// Y2 returns the id of y_i.
func (f *Fig2) Y2(i int) int { return 5*f.L + i }

// N returns the number of vertices, exactly 6ℓ.
func (f *Fig2) N() int { return 6 * f.L }

// NewFig2 builds G_w(ℓ) for inputs a, b of length ℓ².
func NewFig2(l int, a, b []bool) (*Fig2, error) {
	if l < 1 {
		return nil, fmt.Errorf("lb: need ℓ >= 1, got %d", l)
	}
	if len(a) != l*l || len(b) != l*l {
		return nil, fmt.Errorf("lb: input strings must have length ℓ² = %d", l*l)
	}
	f := &Fig2{L: l, A: append([]bool(nil), a...), B: append([]bool(nil), b...)}
	g := graph.NewDigraph(f.N())
	var dIdx []int
	for i := 0; i < l; i++ {
		g.AddEdge(f.X1a(i), f.Y1a(i))
		g.AddEdge(f.X1b(i), f.Y1b(i))
		g.AddEdge(f.X2(i), f.X1a(i))
		g.AddEdge(f.Y1b(i), f.Y2(i)) // replaces the two Y3 hops of Fig1
	}
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			dIdx = append(dIdx, g.AddEdge(f.X2(i), f.Y2(j)))
		}
	}
	for i := 0; i < l; i++ {
		for r := 0; r < l; r++ {
			if !a[i*l+r] {
				g.AddEdge(f.X1a(i), f.X1b(r))
			}
			if !b[i*l+r] {
				g.AddEdge(f.Y1a(i), f.Y1b(r))
			}
		}
	}
	// Weights: 1 on D, 0 elsewhere.
	for i := 0; i < g.M(); i++ {
		g.SetWeight(i, 0)
	}
	f.D = graph.NewEdgeSet(g.M())
	for _, idx := range dIdx {
		f.D.Add(idx)
		g.SetWeight(idx, 1)
	}
	f.G = g
	return f, nil
}

// ZeroCostSpanner returns the all-zero-weight edge set (everything outside
// D): a 4-spanner of cost 0 iff the inputs are disjoint.
func (f *Fig2) ZeroCostSpanner() *graph.EdgeSet {
	h := graph.Full(f.G.M())
	h.SubtractWith(f.D)
	return h
}

// Disjoint reports whether the inputs are disjoint.
func (f *Fig2) Disjoint() bool {
	for i := range f.A {
		if f.A[i] && f.B[i] {
			return false
		}
	}
	return true
}

// CutSide returns the Alice/Bob partition: Bob simulates Y1.
func (f *Fig2) CutSide() []bool {
	side := make([]bool, f.N())
	for i := 0; i < f.L; i++ {
		side[f.Y1a(i)] = true
		side[f.Y1b(i)] = true
	}
	return side
}

// Fig2Undirected is the undirected variant (Theorem 2.10): G_w with
// undirected edges and, to kill long zero-weight detours, each (y²_i, y_i)
// edge replaced by a path of k-3 zero-weight edges. A 0-cost k-spanner
// exists iff the inputs are disjoint.
type Fig2Undirected struct {
	L, K int
	A, B []bool
	G    *graph.Graph
	D    *graph.EdgeSet
}

// NewFig2Undirected builds the undirected weighted construction for
// stretch k >= 4.
func NewFig2Undirected(l, k int, a, b []bool) (*Fig2Undirected, error) {
	if l < 1 {
		return nil, fmt.Errorf("lb: need ℓ >= 1, got %d", l)
	}
	if k < 4 {
		return nil, fmt.Errorf("lb: undirected weighted construction needs k >= 4, got %d", k)
	}
	if len(a) != l*l || len(b) != l*l {
		return nil, fmt.Errorf("lb: input strings must have length ℓ² = %d", l*l)
	}
	f := &Fig2Undirected{L: l, K: k, A: append([]bool(nil), a...), B: append([]bool(nil), b...)}
	// Base ids mirror Fig2; tail vertices y³_i..y^{k-2}_i are appended.
	tailLen := k - 4 // internal vertices on the (y²_i, y_i) path
	n := 6*l + tailLen*l
	g := graph.New(n)
	x1a := func(i int) int { return i }
	x1b := func(i int) int { return l + i }
	y1a := func(i int) int { return 2*l + i }
	y1b := func(i int) int { return 3*l + i }
	x2 := func(i int) int { return 4*l + i }
	y2 := func(i int) int { return 5*l + i }
	tail := func(i, t int) int { return 6*l + i*tailLen + t }

	var dIdx []int
	for i := 0; i < l; i++ {
		g.AddEdge(x1a(i), y1a(i))
		g.AddEdge(x1b(i), y1b(i))
		g.AddEdge(x2(i), x1a(i))
		// Path of length k-3 from y²_i to y_i.
		prev := y1b(i)
		for t := 0; t < tailLen; t++ {
			g.AddEdge(prev, tail(i, t))
			prev = tail(i, t)
		}
		g.AddEdge(prev, y2(i))
	}
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			dIdx = append(dIdx, g.AddEdge(x2(i), y2(j)))
		}
	}
	for i := 0; i < l; i++ {
		for r := 0; r < l; r++ {
			if !a[i*l+r] {
				g.AddEdge(x1a(i), x1b(r))
			}
			if !b[i*l+r] {
				g.AddEdge(y1a(i), y1b(r))
			}
		}
	}
	for i := 0; i < g.M(); i++ {
		g.SetWeight(i, 0)
	}
	f.D = graph.NewEdgeSet(g.M())
	for _, idx := range dIdx {
		f.D.Add(idx)
		g.SetWeight(idx, 1)
	}
	f.G = g
	return f, nil
}

// ZeroCostSpanner returns all edges outside D.
func (f *Fig2Undirected) ZeroCostSpanner() *graph.EdgeSet {
	h := graph.Full(f.G.M())
	h.SubtractWith(f.D)
	return h
}

// Disjoint reports whether the inputs are disjoint.
func (f *Fig2Undirected) Disjoint() bool {
	for i := range f.A {
		if f.A[i] && f.B[i] {
			return false
		}
	}
	return true
}
