// Package lb builds the paper's lower-bound machinery (Sections 2 and 3):
// the graph families G(ℓ,β) (Figure 1), G_w (Figure 2), and the MVC gadget
// G_S (Figure 3); set-disjointness and gap-disjointness input generators;
// the predicted lower-bound curves of Theorems 1.1, 2.8, 2.9, 2.10 and
// 3.3–3.5; and the two-party simulation harness that partitions a CONGEST
// execution into Alice's and Bob's vertices and meters the bits crossing
// the cut — the executable content of the reduction arguments.
package lb

import (
	"fmt"

	"distspanner/internal/graph"
)

// Fig1 is the directed graph G(ℓ,β) of Figure 1. Vertices:
//
//	X1 = {x¹_i, x²_i},  Y1 = {y¹_i, y²_i},  Y3 = {y³_i}   for i ∈ [ℓ]
//	X2 = {x_ij},        Y2 = {y_ij}                        for i ∈ [ℓ], j ∈ [β]
//
// Fixed edges: the matching (x¹_i→y¹_i), (x²_i→y²_i); the dense complete
// bipartite D = X2×Y2; (x_ij→x¹_i); (y³_i→y_ij); (y²_i→y³_i). Input-
// dependent edges: (x¹_i→x²_j) iff a_ij = 0 (Alice), (y¹_i→y²_j) iff
// b_ij = 0 (Bob). The construction's point (Claim 2.2): the D-edge
// (x_ij→y_rs) has a 5-hop bypass iff a_ir = 0 or b_ir = 0; when
// a_ir = b_ir = 1 the direct edge is the ONLY x_ij→y_rs path, so all β²
// such D-edges are forced into every k-spanner.
type Fig1 struct {
	L, Beta int
	A, B    []bool // input strings, length ℓ²; true = 1
	G       *graph.Digraph
	// D is the edge set of the dense component X2×Y2.
	D *graph.EdgeSet
}

// Vertex id layout helpers.

// X1a returns the id of x¹_i.
func (f *Fig1) X1a(i int) int { return i }

// X1b returns the id of x²_i.
func (f *Fig1) X1b(i int) int { return f.L + i }

// Y1a returns the id of y¹_i.
func (f *Fig1) Y1a(i int) int { return 2*f.L + i }

// Y1b returns the id of y²_i.
func (f *Fig1) Y1b(i int) int { return 3*f.L + i }

// Y3 returns the id of y³_i.
func (f *Fig1) Y3(i int) int { return 4*f.L + i }

// X2 returns the id of x_ij.
func (f *Fig1) X2(i, j int) int { return 5*f.L + i*f.Beta + j }

// Y2 returns the id of y_ij.
func (f *Fig1) Y2(i, j int) int { return 5*f.L + f.L*f.Beta + i*f.Beta + j }

// N returns the number of vertices, 2ℓβ + 5ℓ.
func (f *Fig1) N() int { return 2*f.L*f.Beta + 5*f.L }

// NewFig1 builds G(ℓ,β) for input strings a, b of length ℓ² (a[i*ℓ+r]
// is bit a_ir).
func NewFig1(l, beta int, a, b []bool) (*Fig1, error) {
	if l < 1 || beta < 1 {
		return nil, fmt.Errorf("lb: need ℓ, β >= 1, got %d, %d", l, beta)
	}
	if len(a) != l*l || len(b) != l*l {
		return nil, fmt.Errorf("lb: input strings must have length ℓ² = %d", l*l)
	}
	f := &Fig1{L: l, Beta: beta, A: append([]bool(nil), a...), B: append([]bool(nil), b...)}
	g := graph.NewDigraph(f.N())
	// Matching X1 -> Y1.
	for i := 0; i < l; i++ {
		g.AddEdge(f.X1a(i), f.Y1a(i))
		g.AddEdge(f.X1b(i), f.Y1b(i))
	}
	// Dense component D: X2 x Y2.
	var dIdx []int
	for i := 0; i < l; i++ {
		for j := 0; j < beta; j++ {
			for r := 0; r < l; r++ {
				for s := 0; s < beta; s++ {
					dIdx = append(dIdx, g.AddEdge(f.X2(i, j), f.Y2(r, s)))
				}
			}
		}
	}
	// X2 -> X1, Y3 -> Y2, Y1b -> Y3.
	for i := 0; i < l; i++ {
		for j := 0; j < beta; j++ {
			g.AddEdge(f.X2(i, j), f.X1a(i))
			g.AddEdge(f.Y3(i), f.Y2(i, j))
		}
		g.AddEdge(f.Y1b(i), f.Y3(i))
	}
	// Input-dependent edges.
	for i := 0; i < l; i++ {
		for r := 0; r < l; r++ {
			if !a[i*l+r] {
				g.AddEdge(f.X1a(i), f.X1b(r))
			}
			if !b[i*l+r] {
				g.AddEdge(f.Y1a(i), f.Y1b(r))
			}
		}
	}
	f.G = g
	f.D = graph.NewEdgeSet(g.M())
	for _, idx := range dIdx {
		f.D.Add(idx)
	}
	return f, nil
}

// ConflictPairs returns the (i, r) pairs with a_ir = b_ir = 1: the pairs
// whose β² D-edges are forced into every spanner.
func (f *Fig1) ConflictPairs() [][2]int {
	var out [][2]int
	for i := 0; i < f.L; i++ {
		for r := 0; r < f.L; r++ {
			if f.A[i*f.L+r] && f.B[i*f.L+r] {
				out = append(out, [2]int{i, r})
			}
		}
	}
	return out
}

// NonDSpanner returns the candidate spanner consisting of every edge
// outside D: by Lemma 2.3, a 5-spanner (hence k-spanner for k >= 5) when
// the inputs are disjoint.
func (f *Fig1) NonDSpanner() *graph.EdgeSet {
	h := graph.Full(f.G.M())
	h.SubtractWith(f.D)
	return h
}

// ForcedDEdges returns the D-edges that every k-spanner must contain:
// those (x_ij → y_rs) with no alternative directed path of any length.
// By Claim 2.2 these are exactly the β² edges of each conflict pair.
func (f *Fig1) ForcedDEdges() *graph.EdgeSet {
	forced := graph.NewEdgeSet(f.G.M())
	for _, pr := range f.ConflictPairs() {
		i, r := pr[0], pr[1]
		for j := 0; j < f.Beta; j++ {
			for s := 0; s < f.Beta; s++ {
				if idx, ok := f.G.EdgeIndex(f.X2(i, j), f.Y2(r, s)); ok {
					forced.Add(idx)
				}
			}
		}
	}
	return forced
}

// MinimalSpanner returns the structurally minimal k-spanner (k >= 5) per
// Lemma 2.3's argument: all non-D edges plus the forced D-edges of the
// conflict pairs.
func (f *Fig1) MinimalSpanner() *graph.EdgeSet {
	h := f.NonDSpanner()
	h.UnionWith(f.ForcedDEdges())
	return h
}

// VerifyClaim22 machine-checks Claim 2.2 on the instance: for every pair
// (i, r), a 5-hop D-free bypass from x_i0 to y_r0 exists iff a_ir = 0 or
// b_ir = 0, and for conflict pairs the direct D-edge is the only path (its
// removal disconnects the pair). One (j, s) representative per (i, r)
// suffices by the construction's symmetry in j and s.
func (f *Fig1) VerifyClaim22() error {
	nonD := f.NonDSpanner()
	full := graph.Full(f.G.M())
	for i := 0; i < f.L; i++ {
		for r := 0; r < f.L; r++ {
			src, dst := f.X2(i, 0), f.Y2(r, 0)
			bypass := f.G.DistWithin(src, dst, nonD, 5)
			open := !f.A[i*f.L+r] || !f.B[i*f.L+r]
			if open && bypass != 5 {
				return fmt.Errorf("lb: pair (%d,%d) open but D-free distance = %d, want 5", i, r, bypass)
			}
			if !open {
				if bypass != -1 {
					return fmt.Errorf("lb: conflict pair (%d,%d) has a D-free path", i, r)
				}
				// The direct edge must be the unique path of any length.
				idx, _ := f.G.EdgeIndex(src, dst)
				without := full.Clone()
				without.Remove(idx)
				if d := f.G.DistWithin(src, dst, without, -1); d != -1 {
					return fmt.Errorf("lb: conflict pair (%d,%d) reachable without its D-edge (dist %d)", i, r, d)
				}
			}
		}
	}
	return nil
}

// CutSide returns the two-party partition of Lemma 2.4: Bob simulates
// V_B = Y1 (true), Alice simulates everything else (false). The paper's
// accounting uses this cut of Θ(ℓ) edges.
func (f *Fig1) CutSide() []bool {
	side := make([]bool, f.N())
	for i := 0; i < f.L; i++ {
		side[f.Y1a(i)] = true
		side[f.Y1b(i)] = true
	}
	return side
}

// CutEdges counts the edges crossing the Alice/Bob cut; Θ(ℓ) by
// construction (2ℓ matching edges plus ℓ edges into Y3 plus input edges
// internal to... input edges (y¹→y²) stay inside Y1).
func (f *Fig1) CutEdges() int {
	side := f.CutSide()
	count := 0
	for i := 0; i < f.G.M(); i++ {
		e := f.G.Edge(i)
		if side[e.U] != side[e.V] {
			count++
		}
	}
	return count
}
