package lb

import "fmt"

// This file machine-checks, at small scale, the communication-complexity
// fact the reductions consume: the deterministic communication complexity
// of set-disjointness on N bits is at least N. The classic proof exhibits
// a fooling set of size 2^N — the pairs (a, ā) — and fooling sets lower-
// bound deterministic communication by log₂ of their size (Kushilevitz-
// Nisan §1.3). VerifyDisjointnessFoolingSet checks the fooling property
// exhaustively for the given N, upgrading the repository's reliance on
// the bound from "cited" to "certified for small N". (The randomized
// Ω(N) bound of Razborov remains cited; it has no small certificate.)

// Disj evaluates set-disjointness: true iff a and b share no index. The
// inputs are bitmask encodings of subsets of [N].
func Disj(a, b uint) bool { return a&b == 0 }

// VerifyDisjointnessFoolingSet checks that F = {(a, ā) : a ⊆ [N]} is a
// fooling set for DISJ_N: every pair in F is a 1-input, and for any two
// distinct members, at least one of the crossed pairs is a 0-input. A
// successful check certifies D(DISJ_N) >= log₂|F| = N bits. N is capped
// at 12 (the check is Θ(4^N)).
func VerifyDisjointnessFoolingSet(n int) error {
	if n < 1 || n > 12 {
		return fmt.Errorf("lb: fooling-set check supports 1 <= N <= 12, got %d", n)
	}
	full := uint(1)<<uint(n) - 1
	for a := uint(0); a <= full; a++ {
		if !Disj(a, full&^a) {
			return fmt.Errorf("lb: (a, ā) not a 1-input for a=%b", a)
		}
	}
	for a := uint(0); a <= full; a++ {
		for b := uint(0); b < a; b++ {
			// Crossing (a, ā) with (b, b̄): at least one must be a 0-input,
			// otherwise a deterministic protocol could not distinguish the
			// monochromatic rectangle containing both.
			if Disj(a, full&^b) && Disj(b, full&^a) {
				return fmt.Errorf("lb: fooling property fails for a=%b b=%b", a, b)
			}
		}
	}
	return nil
}

// DisjFoolingBoundBits returns the deterministic communication lower
// bound certified by the fooling set: N bits for DISJ_N.
func DisjFoolingBoundBits(n int) int { return n }
