package lb

import (
	"testing"
	"testing/quick"

	"distspanner/internal/graph"
)

func TestMeterLearnBallOnFig1(t *testing.T) {
	l, beta := 3, 4
	a, b := DisjointInputs(l*l, 0.4, 1)
	f, err := NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	comm, _ := f.G.Underlying()
	cut := f.CutSide()
	report, err := MeterLearnBall(comm, cut, 5, 32, l*l)
	if err != nil {
		t.Fatal(err)
	}
	if report.CutEdges != 3*l {
		t.Fatalf("cut edges = %d, want 3ℓ", report.CutEdges)
	}
	if report.Stats.CutBits == 0 {
		t.Fatal("learning 5-balls must push bits across the cut")
	}
	if report.ImpliedRounds <= 0 {
		t.Fatal("implied round bound missing")
	}
	// The implied bound for this instance: ℓ² bits through 3ℓ edges of 32
	// bits each.
	want := float64(l*l) / float64(3*l*32)
	if report.ImpliedRounds != want {
		t.Fatalf("implied rounds = %f, want %f", report.ImpliedRounds, want)
	}
}

func TestMeterLearnBallValidation(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	if _, err := MeterLearnBall(g, []bool{true, false}, 0, 8, 4); err == nil {
		t.Fatal("depth 0 must error")
	}
}

func TestDecideDisjointnessRule(t *testing.T) {
	l, beta := 3, 45 // β > 7αℓ = 42 so that β² > α·7ℓβ for α = 2
	alpha := 2.0
	// Disjoint instance: even an adversarial α-approximation (optimal
	// plus α·t junk D-edges) must still be declared disjoint... the rule
	// tolerates up to α·t D-edges.
	a, b := DisjointInputs(l*l, 0.4, 3)
	f, err := NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ThresholdGap(f, alpha) <= 0 {
		t.Fatalf("instance parameters leave no dichotomy margin: %f", ThresholdGap(f, alpha))
	}
	h := f.MinimalSpanner()
	// Adversarially pad with D-edges up to the α·t budget.
	budget := int(alpha * float64(7*f.L*f.Beta))
	added := 0
	f.D.ForEach(func(i int) {
		if added < budget && !h.Has(i) {
			h.Add(i)
			added++
		}
	})
	if !DecideDisjointness(f, h, alpha) {
		t.Fatal("rule rejected a valid α-approximate spanner of a disjoint instance")
	}

	// Intersecting instance: ANY k-spanner includes >= β² D-edges, which
	// exceeds α·t, so the rule must say "not disjoint" even on the
	// optimal spanner.
	a2, b2 := IntersectingInputs(l*l, 1, 0.3, 5)
	f2, err := NewFig1(l, beta, a2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if DecideDisjointness(f2, f2.MinimalSpanner(), alpha) {
		t.Fatal("rule accepted an intersecting instance as disjoint")
	}
}

func TestDecideGapDisjointnessRule(t *testing.T) {
	// Gap regime: β ≤ ℓ; disjoint vs far-from-disjoint. Soundness needs
	// α·7 < β²/12, i.e. β² > 84α.
	l, beta := 12, 11
	alpha := 1.2
	// Soundness needs α·7ℓ² < β²ℓ²/12, i.e. α·7 < β²/12.
	if alpha*7 >= float64(beta*beta)/12 {
		t.Fatal("test parameters leave no gap margin")
	}
	a, b := DisjointInputs(l*l, 0.3, 2)
	f, err := NewFig1(l, beta, a, b)
	if err != nil {
		t.Fatal(err)
	}
	h := f.MinimalSpanner()
	// Pad up to α·t.
	budget := int(alpha * float64(7*f.L*f.L))
	added := 0
	f.D.ForEach(func(i int) {
		if added < budget && !h.Has(i) {
			h.Add(i)
			added++
		}
	})
	if DecideGapDisjointness(f, h, alpha) {
		t.Fatal("rule declared a disjoint instance far-from-disjoint")
	}
	af, bf := FarFromDisjointInputs(l*l, 4)
	f2, err := NewFig1(l, beta, af, bf)
	if err != nil {
		t.Fatal(err)
	}
	if !DecideGapDisjointness(f2, f2.MinimalSpanner(), alpha) {
		t.Fatal("rule missed a far-from-disjoint instance")
	}
}

// Property: with parameters satisfying the Theorem 1.1 margin (β > 7αℓ),
// the Lemma 2.4 decision rule classifies random disjoint and intersecting
// instances correctly from the structurally minimal spanner.
func TestDecisionRuleProperty(t *testing.T) {
	f := func(seed int64) bool {
		l := 2 + int((seed%2+2)%2) // 2..3
		alpha := 1.5
		beta := int(7*alpha*float64(l)) + 2
		var a, b []bool
		disjoint := seed%2 == 0
		if disjoint {
			a, b = DisjointInputs(l*l, 0.4, seed)
		} else {
			a, b = IntersectingInputs(l*l, 1, 0.3, seed)
		}
		fig, err := NewFig1(l, beta, a, b)
		if err != nil {
			return false
		}
		if ThresholdGap(fig, alpha) <= 0 {
			return false
		}
		return DecideDisjointness(fig, fig.MinimalSpanner(), alpha) == disjoint
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
