//go:build race

package core

// raceEnabled gates the million-vertex smoke test off under the race
// detector, whose memory and time overhead at n = 10^6 is prohibitive;
// the full (non-race) CI test job still runs it.
const raceEnabled = true
