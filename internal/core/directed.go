package core

import (
	"sort"
	"sync/atomic"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Directed-variant payloads. Communication runs over the underlying
// undirected graph (the paper's model is bidirectional even for directed
// spanner problems), so directionality is data, not topology. Like the
// undirected protocol, state announcements are deltas accumulated by the
// receivers, and each phase has a distinguishable record tag, so idle
// vertices park in Recv and re-identify the phase on wake-up.

// dirSpanListMsg announces the sender's newly added outgoing spanner
// edges: an entry w means (sender, w) joined the spanner. Out-lists alone
// suffice for coverage checks, since every directed 2-path u -> x -> w
// consists of out-edges of u and x. Phase G'; sent only on growth.
type dirSpanListMsg struct {
	outNbrs []int
	n       int
}

func (m dirSpanListMsg) Bits() int     { return (1 + len(m.outNbrs)) * dist.IDBits(m.n) }
func (m dirSpanListMsg) rec() dist.Rec { return dist.Rec{Tag: tagDirSpan, Ints: m.outNbrs} }

// dirUncovMsg announces the sender's uncovered outgoing edges by head:
// the full list once at start-up (full=true), then removals as heads
// become covered. Phase A. The full/removal distinction is one
// transmitted bit.
type dirUncovMsg struct {
	heads []int
	full  bool
	n     int
}

//spanlint:bits full — the trailing +1 is the one-bit full/removal flag
func (m dirUncovMsg) Bits() int { return (1+len(m.heads))*dist.IDBits(m.n) + 1 }
func (m dirUncovMsg) rec() dist.Rec {
	r := dist.Rec{Tag: tagDirUncov, Ints: m.heads}
	if m.full {
		r.Flag = 1
	}
	return r
}

// Packed directed-star entries: a neighbor id with the directions taken —
// bit 1 set means (nbr -> candidate) is in the star, bit 0 set means
// (candidate -> nbr) is.
const (
	dirIn  = 2
	dirOut = 1
)

func packDirEntry(nbr int, in, out bool) int {
	e := nbr << 2
	if in {
		e |= dirIn
	}
	if out {
		e |= dirOut
	}
	return e
}

// dirStarMsg announces a candidate's directed star (packed entries) and
// random rank (phase D; r >= 1), or — with r == -1 — that the star was
// accepted into the spanner (phase F). Each entry is an id plus two
// direction bits.
type dirStarMsg struct {
	entries []int // packed ids: nbr<<2 | in<<1 | out
	r       int64
	n       int
}

//spanlint:bits r — the 4*IDBits(n) term is the rank r ∈ {1..n⁴}, four id-sized words
func (m dirStarMsg) Bits() int {
	return (1+len(m.entries))*(dist.IDBits(m.n)+2) + 4*dist.IDBits(m.n)
}
func (m dirStarMsg) rec() dist.Rec { return dist.Rec{Tag: tagDirStar, A: m.r, Ints: m.entries} }

// dirTermMsg announces termination: the sender adds the listed uncovered
// incident directed edges (flattened (tail, head) pairs) to the spanner.
// It doubles as the death notice pruning the sender from its peers' folds
// and broadcasts.
type dirTermMsg struct {
	pairs []int // flattened (tail, head) pairs; always even length
	n     int
}

func (m dirTermMsg) Bits() int     { return (1 + len(m.pairs)) * dist.IDBits(m.n) }
func (m dirTermMsg) rec() dist.Rec { return dist.Rec{Tag: tagDirTerm, Ints: m.pairs} }

// DirectedTwoSpanner runs the directed 2-spanner algorithm of Theorem 4.9
// on the digraph d. The communication topology is d's underlying undirected
// graph.
func DirectedTwoSpanner(d *graph.Digraph, opts Options) (*Result, error) {
	under, _ := d.Underlying()
	dr := newDirRun(d)
	stats, err := dist.RunMachines(dist.Config{
		Graph: under, Seed: opts.Seed, MaxRounds: opts.MaxRounds,
		Mode: opts.ExecMode, OnRound: opts.RoundHook, Cancel: opts.Cancel,
		Tracer: opts.Tracer, Shards: opts.Shards,
	}, dr.factory())
	if err != nil {
		return nil, err
	}
	return dr.result(stats), nil
}

// dirRun is the directed analogue of uRun: the cross-vertex collectors
// the directed machine factory closes over.
type dirRun struct {
	d         *graph.Digraph
	outs      [][]int
	iters     []int
	fallbacks atomic.Int64
	tele      *telemetry
}

func newDirRun(d *graph.Digraph) *dirRun {
	n := d.N()
	return &dirRun{d: d, outs: make([][]int, n), iters: make([]int, n), tele: newTelemetry()}
}

func (r *dirRun) factory() func(*dist.Ctx) dist.Machine {
	return func(ctx *dist.Ctx) dist.Machine {
		nd := newDirectedNode(ctx, r.d, r.outs, r.iters, &r.fallbacks)
		nd.tele = r.tele
		return dist.NewPhasedMachine(nd)
	}
}

func (r *dirRun) output(v int) []int { return r.outs[v] }

func (r *dirRun) result(stats *dist.Stats) *Result {
	return assembleResult(r.outs, r.iters, r.d.M(), r.d.TotalWeight, r.tele, r.fallbacks.Load(), stats)
}

// classifyDirected maps a wake inbox to its phase by record tag.
// tagDirStar serves two phases and is disambiguated by its rank:
// candidates announce with r >= 1, acceptances carry r == -1.
func classifyDirected(msgs []dist.InRec) uPhase {
	switch msgs[0].Tag {
	case tagDirSpan:
		return phSpan
	case tagDirUncov:
		return phUncov
	case tagDens:
		return phDens
	case tagMax:
		return phMax
	case tagDirTerm:
		return phStar
	case tagDirStar:
		if msgs[0].A == -1 {
			return phAccept
		}
		return phStar
	case tagVote:
		return phVote
	}
	panic("core: unclassifiable directed wake record tag")
}

// dirDensVal is a neighbor's last announced (rounded, raw) density pair.
// The directed variant folds both separately because the rounding applies
// to the footnote-7 running minimum, not the instantaneous value.
type dirDensVal struct {
	rho, raw float64
}

// dirCandidate is one announced directed star this iteration: the
// candidate's id, its sorted in/out neighbor lists, and its rank.
type dirCandidate struct {
	from    int
	in, out []int // sorted ids
	r       int64
}

// directedNode is the per-vertex state, with all per-neighbor state in
// flat slices indexed by the neighbor's position in the sorted neighbor
// list (see undirectedNode).
type directedNode struct {
	ctx       *dist.Ctx
	d         *graph.Digraph
	outs      [][]int
	iters     []int
	fallbacks *atomic.Int64
	tele      *telemetry

	me      int
	nbrs    []int  // sorted neighbor ids
	hasOut  []bool // per position: directed edge (me, nbr) exists
	outIdx  []int  // its edge index
	hasIn   []bool // per position: directed edge (nbr, me) exists
	inIdx   []int  // its edge index
	covOut  []bool
	covIn   []bool
	spanOut []bool
	spanIn  []bool
	nbrCnt  map[int]int // directed multiplicity per neighbor id (static; view input)

	wasCand  bool
	lastRho  float64
	prevStar []int
	runMin   float64 // footnote 7: running minimum of the approximate density

	// Accumulated per-neighbor state, kept in sync by deltas.
	alive     []bool
	spanOutOf [][]int // live neighbor -> its announced out-spanner heads (sorted ids)
	uncovOf   [][]int // live neighbor -> its uncovered out-heads (sorted ids)
	densOf    []dirDensVal
	densKnown []bool
	hopOf     []dirDensVal
	hopKnown  []bool

	// Own derived quantities and change tracking.
	pendingSpan    []int  // spanOut additions not yet announced
	announcedUncov []bool // per position
	sentUncovInit  bool
	view           *dirView
	viewDirty      bool
	hopDirty       bool
	m2Dirty        bool
	raw, rho       float64
	densSent       bool
	lastDens       dirDensVal
	hopRho, hopRaw float64
	hopSent        bool
	lastHop        dirDensVal
	m2Rho, m2Raw   float64

	// Per-iteration scratch.
	iter        int
	isCand      bool
	myEntries   []int // packed star entries
	mySpanCount int
	cands       []dirCandidate
	myVotes     int
}

func newDirectedNode(ctx *dist.Ctx, d *graph.Digraph, outs [][]int, iters []int, fb *atomic.Int64) *directedNode {
	me := ctx.ID()
	nd := &directedNode{
		ctx: ctx, d: d, outs: outs, iters: iters, fallbacks: fb,
		me:        me,
		nbrs:      ctx.Neighbors(),
		nbrCnt:    make(map[int]int),
		runMin:    -1,
		viewDirty: true,
		hopDirty:  true,
		m2Dirty:   true,
	}
	deg := len(nd.nbrs)
	nd.hasOut = make([]bool, deg)
	nd.outIdx = make([]int, deg)
	nd.hasIn = make([]bool, deg)
	nd.inIdx = make([]int, deg)
	nd.covOut = make([]bool, deg)
	nd.covIn = make([]bool, deg)
	nd.spanOut = make([]bool, deg)
	nd.spanIn = make([]bool, deg)
	nd.alive = make([]bool, deg)
	nd.spanOutOf = make([][]int, deg)
	nd.uncovOf = make([][]int, deg)
	nd.densOf = make([]dirDensVal, deg)
	nd.densKnown = make([]bool, deg)
	nd.hopOf = make([]dirDensVal, deg)
	nd.hopKnown = make([]bool, deg)
	nd.announcedUncov = make([]bool, deg)
	for i, u := range nd.nbrs {
		nd.alive[i] = true
		cnt := 0
		if idx, ok := d.EdgeIndex(me, u); ok {
			nd.hasOut[i] = true
			nd.outIdx[i] = idx
			cnt++
		}
		if idx, ok := d.EdgeIndex(u, me); ok {
			nd.hasIn[i] = true
			nd.inIdx[i] = idx
			cnt++
		}
		nd.nbrCnt[u] = cnt
	}
	return nd
}

// setSpanOut records (me, nbrs[i]) as a spanner member and queues the
// round-1 delta announcing it.
func (nd *directedNode) setSpanOut(i int) {
	if !nd.spanOut[i] {
		nd.spanOut[i] = true
		nd.pendingSpan = append(nd.pendingSpan, nd.nbrs[i])
	}
}

// bcast sends the record to every live neighbor.
func (nd *directedNode) bcast(r dist.Rec, bits int) {
	for i, u := range nd.nbrs {
		if nd.alive[i] {
			nd.ctx.SendRec(u, r, bits)
		}
	}
}

// parkable mirrors undirectedNode.parkable for the directed state.
func (nd *directedNode) parkable() bool {
	if len(nd.pendingSpan) > 0 || nd.viewDirty || nd.hopDirty || nd.m2Dirty {
		return false
	}
	for i := range nd.announcedUncov {
		if nd.announcedUncov[i] && nd.covOut[i] {
			return false
		}
	}
	return !(nd.rho > 0 && nd.rho >= nd.m2Rho && nd.raw >= 1)
}

// Phases implements dist.PhasedProgram.
func (nd *directedNode) Phases() (int, int) { return int(phSpan), int(phAccept) }

// Begin implements dist.PhasedProgram: record and bump the iteration
// count, reset the per-iteration scratch.
func (nd *directedNode) Begin() {
	nd.iters[nd.me] = nd.iter
	nd.iter++
	nd.isCand = false
	nd.myEntries = nil
	nd.mySpanCount = 0
	nd.cands = nd.cands[:0]
	nd.myVotes = 0
}

// Emit implements dist.PhasedProgram.
func (nd *directedNode) Emit(ph int) bool { return nd.emit(uPhase(ph)) }

// Process implements dist.PhasedProgram. The directed protocol halts via
// the terminal announcement in emit, never mid-iteration.
func (nd *directedNode) Process(ph int, recs []dist.InRec) bool {
	nd.process(uPhase(ph), recs)
	return false
}

// Parkable implements dist.PhasedProgram.
func (nd *directedNode) Parkable() bool { return nd.parkable() }

// ParkReset implements dist.PhasedProgram: parked iterations are not
// candidate iterations, so the monotone-star continuation resets exactly
// as it would have in the spinning execution.
func (nd *directedNode) ParkReset() { nd.wasCand, nd.prevStar = false, nil }

// Classify implements dist.PhasedProgram.
func (nd *directedNode) Classify(recs []dist.InRec) int { return int(classifyDirected(recs)) }

// Halt implements dist.PhasedProgram; unreachable (Process never halts).
func (nd *directedNode) Halt() {}

// Terminal implements dist.PhasedProgram: output after the flush round
// that committed the termination announcement.
func (nd *directedNode) Terminal() { nd.emitOutput() }

// Quiesce implements dist.PhasedProgram.
func (nd *directedNode) Quiesce() { nd.finalizeQuiesced() }

// finalizeQuiesced is the quiescence safety net: direct-add every still
// uncovered incident directed edge (what the termination step would do),
// then output and halt.
func (nd *directedNode) finalizeQuiesced() {
	for i := range nd.nbrs {
		if nd.hasOut[i] && !nd.covOut[i] {
			nd.spanOut[i] = true
			nd.covOut[i] = true
		}
		if nd.hasIn[i] && !nd.covIn[i] {
			nd.spanIn[i] = true
			nd.covIn[i] = true
		}
	}
	if nd.tele != nil {
		it := nd.iter
		if it > 0 {
			it--
		}
		nd.tele.bump(nd.tele.term, it)
	}
	nd.emitOutput()
}

func (nd *directedNode) emit(ph uPhase) bool {
	switch ph {
	case phSpan:
		if len(nd.pendingSpan) > 0 {
			sort.Ints(nd.pendingSpan)
			m := dirSpanListMsg{outNbrs: nd.pendingSpan, n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
			nd.pendingSpan = nil
		}
	case phUncov:
		nd.emitUncov()
	case phDens:
		if nd.viewDirty {
			nd.rebuildView()
		}
		dv := dirDensVal{rho: nd.rho, raw: nd.raw}
		if !nd.densSent || dv != nd.lastDens {
			m := densMsg{rho: nd.rho, raw: nd.raw, wmax: 1}
			nd.bcast(m.rec(), m.Bits())
			nd.densSent, nd.lastDens = true, dv
		}
	case phMax:
		if nd.hopDirty {
			nd.refoldHop()
		}
		hv := dirDensVal{rho: nd.hopRho, raw: nd.hopRaw}
		if !nd.hopSent || hv != nd.lastHop {
			m := maxMsg{rho: nd.hopRho, raw: nd.hopRaw, wmax: 1}
			nd.bcast(m.rec(), m.Bits())
			nd.hopSent, nd.lastHop = true, hv
		}
	case phStar:
		if nd.m2Dirty {
			nd.refoldM2()
		}
		// Termination: as in the undirected case, with approximate
		// densities (constants shift, shape preserved).
		if nd.m2Raw <= 1 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.term, nd.iter-1)
			}
			var added []int
			for i, u := range nd.nbrs {
				if nd.hasOut[i] && !nd.covOut[i] {
					nd.spanOut[i] = true
					nd.covOut[i] = true
					added = append(added, nd.me, u)
				}
				if nd.hasIn[i] && !nd.covIn[i] {
					nd.spanIn[i] = true
					nd.covIn[i] = true
					added = append(added, u, nd.me)
				}
			}
			m := dirTermMsg{pairs: added, n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
			return true
		}
		nd.isCand = nd.rho > 0 && nd.rho >= nd.m2Rho && nd.raw >= 1
		if nd.isCand {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.cand, nd.iter-1)
			}
			var prev []bool
			if nd.wasCand && nd.lastRho == nd.rho && nd.prevStar != nil {
				prev = nd.view.maskFromIDs(nd.prevStar)
			}
			sel, fb := nd.view.chooseStar(nd.rho, prev)
			if fb {
				nd.fallbacks.Add(1)
			}
			ids := nd.view.starNeighborIDs(sel)
			nd.myEntries = nd.myEntries[:0]
			for _, u := range ids {
				i := posOf(nd.nbrs, u)
				nd.myEntries = append(nd.myEntries, packDirEntry(u, nd.hasIn[i], nd.hasOut[i]))
			}
			spanned, _ := nd.view.dirValue(sel)
			nd.mySpanCount = int(spanned + 0.5)
			m := dirStarMsg{entries: nd.myEntries, r: 1 + nd.ctx.Rand().Int63n(1<<62), n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
			nd.wasCand, nd.lastRho, nd.prevStar = true, nd.rho, ids
		} else {
			nd.wasCand = false
			nd.prevStar = nil
		}
	case phVote:
		// Each uncovered outgoing edge (me, w) votes, owned by its tail.
		// The candidate v 2-spans (me, w) iff (me, v) and (v, w) are in
		// S_v: v's star has an In entry for me and an Out entry for w.
		var votes map[int][]int
		for i, w := range nd.nbrs {
			if !nd.hasOut[i] || nd.covOut[i] {
				continue
			}
			bestV, bestR := -1, int64(0)
			for ci := range nd.cands {
				c := &nd.cands[ci]
				if !containsSorted(c.in, nd.me) || !containsSorted(c.out, w) {
					continue
				}
				if bestV < 0 || c.r < bestR || (c.r == bestR && c.from < bestV) {
					bestV, bestR = c.from, c.r
				}
			}
			if bestV >= 0 {
				if votes == nil {
					votes = make(map[int][]int)
				}
				votes[bestV] = append(votes[bestV], nd.me, w)
			}
		}
		for _, vid := range sortedKeys(votes) {
			m := voteMsg{pairs: votes[vid], n: nd.ctx.N()}
			nd.ctx.SendRec(vid, m.rec(), m.Bits())
		}
	case phAccept:
		if nd.isCand && 8*nd.myVotes >= nd.mySpanCount && nd.mySpanCount > 0 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.accept, nd.iter-1)
			}
			for _, e := range nd.myEntries {
				i := posOf(nd.nbrs, e>>2)
				if e&dirOut != 0 {
					nd.setSpanOut(i)
				}
				if e&dirIn != 0 {
					nd.spanIn[i] = true
				}
			}
			m := dirStarMsg{entries: nd.myEntries, r: -1, n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
		}
	}
	return false
}

func (nd *directedNode) emitUncov() {
	if !nd.sentUncovInit {
		nd.sentUncovInit = true
		var full []int
		for i, w := range nd.nbrs {
			if nd.hasOut[i] && !nd.covOut[i] {
				full = append(full, w)
				nd.announcedUncov[i] = true
			}
		}
		m := dirUncovMsg{heads: full, full: true, n: nd.ctx.N()}
		nd.bcast(m.rec(), m.Bits())
		return
	}
	var dels []int
	for i, w := range nd.nbrs {
		if nd.announcedUncov[i] && nd.covOut[i] {
			dels = append(dels, w)
			nd.announcedUncov[i] = false
		}
	}
	if len(dels) == 0 {
		return
	}
	m := dirUncovMsg{heads: dels, n: nd.ctx.N()}
	nd.bcast(m.rec(), m.Bits())
}

func (nd *directedNode) process(ph uPhase, inbox []dist.InRec) {
	j := 0
	switch ph {
	case phSpan:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagDirSpan {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			nd.spanOutOf[j] = mergeSorted(nd.spanOutOf[j], r.Ints)
		}
		nd.updateCoverage()
	case phUncov:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagDirUncov {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			if r.Flag != 0 {
				nd.uncovOf[j] = append(nd.uncovOf[j][:0], r.Ints...)
			} else {
				nd.uncovOf[j] = removeSorted(nd.uncovOf[j], r.Ints)
			}
			nd.viewDirty = true
		}
	case phDens:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagDens {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			nd.densOf[j] = dirDensVal{rho: r.F0, raw: r.F1}
			nd.densKnown[j] = true
			nd.hopDirty = true
		}
	case phMax:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagMax {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			nd.hopOf[j] = dirDensVal{rho: r.F0, raw: r.F1}
			nd.hopKnown[j] = true
			nd.m2Dirty = true
		}
	case phStar:
		for i := range inbox {
			r := &inbox[i]
			j = seekPos(nd.nbrs, j, r.From)
			switch r.Tag {
			case tagDirTerm:
				nd.processDeath(j, r.Ints)
			case tagDirStar:
				// Unpack the star into sorted in/out lists (entries are
				// packed in ascending neighbor order), copying out of the
				// arena since candidates are retained across rounds.
				c := dirCandidate{from: r.From, r: r.A}
				for _, e := range r.Ints {
					if e&dirIn != 0 {
						c.in = append(c.in, e>>2)
					}
					if e&dirOut != 0 {
						c.out = append(c.out, e>>2)
					}
				}
				nd.cands = append(nd.cands, c)
			}
		}
	case phVote:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag == tagVote {
				nd.myVotes += len(r.Ints) / 2
			}
		}
	case phAccept:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagDirStar || r.A != -1 {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			for _, e := range r.Ints {
				if e>>2 != nd.me {
					continue
				}
				if e&dirOut != 0 { // (sender, me) in spanner
					nd.spanIn[j] = true
				}
				if e&dirIn != 0 { // (me, sender) in spanner
					nd.setSpanOut(j)
				}
			}
		}
	}
}

// processDeath handles the termination of the neighbor at position i:
// record the direct-added edges touching this vertex, then prune the
// sender from every fold. pairs is the flattened (tail, head) list.
func (nd *directedNode) processDeath(i int, pairs []int) {
	for k := 0; k+1 < len(pairs); k += 2 {
		tail, head := pairs[k], pairs[k+1]
		if tail == nd.me {
			p := posOf(nd.nbrs, head)
			nd.setSpanOut(p)
			nd.covOut[p] = true
		}
		if head == nd.me {
			p := posOf(nd.nbrs, tail)
			nd.spanIn[p] = true
			nd.covIn[p] = true
		}
	}
	nd.alive[i] = false
	nd.densKnown[i] = false
	nd.hopKnown[i] = false
	nd.spanOutOf[i] = nil
	if len(nd.uncovOf[i]) > 0 {
		nd.viewDirty = true
	}
	nd.uncovOf[i] = nil
	nd.hopDirty = true
	nd.m2Dirty = true
}

// idxOf resolves an id to its position in the sorted neighbor list,
// reporting whether it is a neighbor at all.
func idxOf(nbrs []int, id int) (int, bool) {
	i := sort.SearchInts(nbrs, id)
	return i, i < len(nbrs) && nbrs[i] == id
}

// updateCoverage marks directed incident edges covered when in the spanner
// or bridged by a directed 2-path through a common neighbor, using the
// accumulated out-lists of live neighbors.
func (nd *directedNode) updateCoverage() {
	// Outgoing edge (me, w): covered by (me, x) ∈ spanner and (x, w) ∈
	// spanner, learned from x's out-list.
	for i, w := range nd.nbrs {
		if !nd.hasOut[i] || nd.covOut[i] {
			continue
		}
		if nd.spanOut[i] {
			nd.covOut[i] = true
			continue
		}
		for x := range nd.nbrs {
			if nd.spanOut[x] && nd.alive[x] && containsSorted(nd.spanOutOf[x], w) {
				nd.covOut[i] = true
				break
			}
		}
	}
	// Incoming edge (u, me): covered by (u, x) ∈ spanner (from u's
	// out-list) and (x, me) ∈ spanner (own incoming spanner state).
	for i := range nd.nbrs {
		if !nd.hasIn[i] || nd.covIn[i] {
			continue
		}
		if nd.spanIn[i] {
			nd.covIn[i] = true
			continue
		}
		for _, x := range nd.spanOutOf[i] {
			if x == nd.me {
				continue
			}
			if p, ok := idxOf(nd.nbrs, x); ok && nd.spanIn[p] {
				// (u, x) ∈ spanner and (x, me) ∈ spanner.
				nd.covIn[i] = true
				break
			}
		}
	}
}

// rebuildView reassembles the directed view from the accumulated
// uncovered out-head sets and refreshes the footnote-7 running minimum of
// the approximate densest-star density.
func (nd *directedNode) rebuildView() {
	nd.viewDirty = false
	var hDir [][2]int
	for i, u := range nd.nbrs {
		if !nd.hasIn[i] {
			continue // star cannot use (u, me): no such edge
		}
		for _, w := range nd.uncovOf[i] {
			if w == nd.me {
				continue
			}
			if p, ok := idxOf(nd.nbrs, w); ok && nd.hasOut[p] {
				hDir = append(hDir, [2]int{u, w})
			}
		}
	}
	nd.view = newDirView(nd.nbrCnt, hDir)
	_, raw := nd.view.approxDensest(nil)
	// Footnote 7: the approximation may fluctuate upward; use the
	// running minimum so the rounded value never increases.
	if nd.runMin < 0 || raw < nd.runMin {
		nd.runMin = raw
	}
	raw = nd.runMin
	rho := RoundUpPow2(raw)
	if raw != nd.raw || rho != nd.rho {
		nd.hopDirty = true
	}
	nd.raw, nd.rho = raw, rho
}

// refoldHop recomputes the 1-hop maxima (own values first, then live
// neighbors in id order).
func (nd *directedNode) refoldHop() {
	nd.hopDirty = false
	old := dirDensVal{rho: nd.hopRho, raw: nd.hopRaw}
	nd.hopRho, nd.hopRaw = nd.rho, nd.raw
	for i := range nd.nbrs {
		if !nd.alive[i] || !nd.densKnown[i] {
			continue
		}
		d := nd.densOf[i]
		nd.hopRho = maxf(nd.hopRho, d.rho)
		nd.hopRaw = maxf(nd.hopRaw, d.raw)
	}
	if (dirDensVal{rho: nd.hopRho, raw: nd.hopRaw}) != old {
		nd.m2Dirty = true
	}
}

// refoldM2 recomputes the 2-hop maxima from the accumulated 1-hop maxima.
func (nd *directedNode) refoldM2() {
	nd.m2Dirty = false
	nd.m2Rho, nd.m2Raw = nd.hopRho, nd.hopRaw
	for i := range nd.nbrs {
		if !nd.alive[i] || !nd.hopKnown[i] {
			continue
		}
		h := nd.hopOf[i]
		nd.m2Rho = maxf(nd.m2Rho, h.rho)
		nd.m2Raw = maxf(nd.m2Raw, h.raw)
	}
}

func (nd *directedNode) emitOutput() {
	var out []int
	for i := range nd.nbrs {
		if nd.spanOut[i] {
			out = append(out, nd.outIdx[i])
		}
		if nd.spanIn[i] {
			out = append(out, nd.inIdx[i])
		}
	}
	sort.Ints(out)
	nd.outs[nd.me] = out
}
