package core

import (
	"sort"
	"sync/atomic"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Directed-variant payloads. Communication runs over the underlying
// undirected graph (the paper's model is bidirectional even for directed
// spanner problems), so directionality is data, not topology.

// dirSpanListMsg broadcasts the sender's outgoing spanner edges: an entry w
// means (sender, w) is in the spanner. Out-lists alone suffice for coverage
// checks, since every directed 2-path u -> x -> w consists of out-edges of
// u and x.
type dirSpanListMsg struct {
	outNbrs []int
	n       int
}

func (m dirSpanListMsg) Bits() int {
	return (1 + len(m.outNbrs)) * dist.IDBits(m.n)
}

// dirUncovMsg broadcasts the sender's uncovered outgoing edges by head.
type dirUncovMsg struct {
	heads []int
	n     int
}

func (m dirUncovMsg) Bits() int { return (1 + len(m.heads)) * dist.IDBits(m.n) }

// dirStarEntry is one neighbor of a candidate's directed star with the
// directions taken: in means (nbr -> candidate), out means (candidate ->
// nbr).
type dirStarEntry struct {
	Nbr     int
	In, Out bool
}

// dirStarMsg announces a candidate's directed star and random rank.
type dirStarMsg struct {
	entries []dirStarEntry
	r       int64
	n       int
}

func (m dirStarMsg) Bits() int {
	return (1+len(m.entries))*(dist.IDBits(m.n)+2) + 4*dist.IDBits(m.n)
}

// dirTermMsg announces termination: the sender adds the listed uncovered
// incident directed edges (tail, head) to the spanner.
type dirTermMsg struct {
	edges [][2]int
	n     int
}

func (m dirTermMsg) Bits() int { return (1 + 2*len(m.edges)) * dist.IDBits(m.n) }

// DirectedTwoSpanner runs the directed 2-spanner algorithm of Theorem 4.9
// on the digraph d. The communication topology is d's underlying undirected
// graph.
func DirectedTwoSpanner(d *graph.Digraph, opts Options) (*Result, error) {
	under, _ := d.Underlying()
	n := d.N()
	outs := make([][]int, n)
	iters := make([]int, n)
	var fallbacks atomic.Int64
	tele := newTelemetry()
	proc := func(ctx *dist.Ctx) {
		nd := newDirectedNode(ctx, d, outs, iters, &fallbacks)
		nd.tele = tele
		nd.run()
	}
	stats, err := dist.Run(dist.Config{Graph: under, Seed: opts.Seed, MaxRounds: opts.MaxRounds, Mode: opts.ExecMode}, proc)
	if err != nil {
		return nil, err
	}
	spanner := graph.NewEdgeSet(d.M())
	for _, edges := range outs {
		for _, e := range edges {
			spanner.Add(e)
		}
	}
	maxIter := 0
	for _, it := range iters {
		if it > maxIter {
			maxIter = it
		}
	}
	return &Result{
		Spanner:      spanner,
		Cost:         d.TotalWeight(spanner),
		Stats:        *stats,
		Iterations:   maxIter,
		PerIteration: tele.stats(maxIter),
		Fallbacks:    fallbacks.Load(),
	}, nil
}

type directedNode struct {
	ctx       *dist.Ctx
	d         *graph.Digraph
	outs      [][]int
	iters     []int
	fallbacks *atomic.Int64

	me      int
	nbrs    []int
	nbrSet  map[int]bool
	outEdge map[int]int // head -> directed edge id (me, head)
	inEdge  map[int]int // tail -> directed edge id (tail, me)
	covOut  map[int]bool
	covIn   map[int]bool
	spanOut map[int]bool
	spanIn  map[int]bool

	wasCand  bool
	lastRho  float64
	prevStar []int
	runMin   float64 // footnote 7: running minimum of the approximate density
	tele     *telemetry
}

func newDirectedNode(ctx *dist.Ctx, d *graph.Digraph, outs [][]int, iters []int, fb *atomic.Int64) *directedNode {
	me := ctx.ID()
	nd := &directedNode{
		ctx: ctx, d: d, outs: outs, iters: iters, fallbacks: fb,
		me:      me,
		nbrs:    ctx.Neighbors(),
		nbrSet:  make(map[int]bool),
		outEdge: make(map[int]int),
		inEdge:  make(map[int]int),
		covOut:  make(map[int]bool),
		covIn:   make(map[int]bool),
		spanOut: make(map[int]bool),
		spanIn:  make(map[int]bool),
		runMin:  -1,
	}
	for _, u := range nd.nbrs {
		nd.nbrSet[u] = true
		if idx, ok := d.EdgeIndex(me, u); ok {
			nd.outEdge[u] = idx
		}
		if idx, ok := d.EdgeIndex(u, me); ok {
			nd.inEdge[u] = idx
		}
	}
	return nd
}

func (nd *directedNode) run() {
	n := nd.ctx.N()
	for iter := 0; ; iter++ {
		nd.iters[nd.me] = iter

		// Phase G': exchange directed spanner lists, update coverage.
		nd.ctx.Broadcast(dirSpanListMsg{outNbrs: setToSorted(nd.spanOut), n: n})
		spanOutOf := make(map[int]map[int]bool)
		for _, m := range nd.ctx.NextRound() {
			p := m.Payload.(dirSpanListMsg)
			spanOutOf[m.From] = sliceToSet(p.outNbrs)
		}
		nd.updateCoverage(spanOutOf)

		// Phase A: exchange uncovered outgoing edges; build directed H_v.
		var heads []int
		for w := range nd.outEdge {
			if !nd.covOut[w] {
				heads = append(heads, w)
			}
		}
		sort.Ints(heads)
		nd.ctx.Broadcast(dirUncovMsg{heads: heads, n: n})
		var hDir [][2]int
		for _, m := range nd.ctx.NextRound() {
			u := m.From
			if _, hasIn := nd.inEdge[u]; !hasIn {
				continue // star cannot use (u, me): no such edge
			}
			for _, w := range m.Payload.(dirUncovMsg).heads {
				if w == nd.me || !nd.nbrSet[w] {
					continue
				}
				if _, hasOut := nd.outEdge[w]; hasOut {
					hDir = append(hDir, [2]int{u, w})
				}
			}
		}
		nbrCnt := make(map[int]int, len(nd.nbrs))
		for _, u := range nd.nbrs {
			cnt := 0
			if _, ok := nd.outEdge[u]; ok {
				cnt++
			}
			if _, ok := nd.inEdge[u]; ok {
				cnt++
			}
			nbrCnt[u] = cnt
		}
		view := newDirView(nbrCnt, hDir)
		_, raw := view.approxDensest(nil)
		// Footnote 7: the approximation may fluctuate upward; use the
		// running minimum so the rounded value never increases.
		if nd.runMin < 0 || raw < nd.runMin {
			nd.runMin = raw
		}
		raw = nd.runMin
		rho := RoundUpPow2(raw)

		// Phases B + C: 2-hop maxima of (rho, raw).
		nd.ctx.Broadcast(densMsg{rho: rho, raw: raw, wmax: 1})
		hopRho, hopRaw := rho, raw
		for _, m := range nd.ctx.NextRound() {
			p := m.Payload.(densMsg)
			hopRho = maxf(hopRho, p.rho)
			hopRaw = maxf(hopRaw, p.raw)
		}
		nd.ctx.Broadcast(maxMsg{rho: hopRho, raw: hopRaw, wmax: 1})
		m2Rho, m2Raw := hopRho, hopRaw
		for _, m := range nd.ctx.NextRound() {
			p := m.Payload.(maxMsg)
			m2Rho = maxf(m2Rho, p.rho)
			m2Raw = maxf(m2Raw, p.raw)
		}

		// Termination: as in the undirected case, with approximate
		// densities (constants shift, shape preserved).
		if m2Raw <= 1 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.term, iter)
			}
			var added [][2]int
			for w := range nd.outEdge {
				if !nd.covOut[w] {
					nd.spanOut[w] = true
					nd.covOut[w] = true
					added = append(added, [2]int{nd.me, w})
				}
			}
			for u := range nd.inEdge {
				if !nd.covIn[u] {
					nd.spanIn[u] = true
					nd.covIn[u] = true
					added = append(added, [2]int{u, nd.me})
				}
			}
			nd.ctx.Broadcast(dirTermMsg{edges: added, n: n})
			nd.ctx.NextRound()
			nd.emitOutput()
			return
		}

		// Phase D: candidacy and star choice.
		isCand := rho > 0 && rho >= m2Rho && raw >= 1
		var myEntries []dirStarEntry
		mySpanCount := 0
		if isCand {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.cand, iter)
			}
			var prev []bool
			if nd.wasCand && nd.lastRho == rho && nd.prevStar != nil {
				prev = view.maskFromIDs(nd.prevStar)
			}
			sel, fb := view.chooseStar(rho, prev)
			if fb {
				nd.fallbacks.Add(1)
			}
			ids := view.starNeighborIDs(sel)
			for _, u := range ids {
				_, hasOut := nd.outEdge[u]
				_, hasIn := nd.inEdge[u]
				myEntries = append(myEntries, dirStarEntry{Nbr: u, In: hasIn, Out: hasOut})
			}
			spanned, _ := view.dirValue(sel)
			mySpanCount = int(spanned + 0.5)
			nd.ctx.Broadcast(dirStarMsg{entries: myEntries, r: 1 + nd.ctx.Rand().Int63n(1<<62), n: n})
			nd.wasCand, nd.lastRho, nd.prevStar = true, rho, ids
		} else {
			nd.wasCand = false
			nd.prevStar = nil
		}

		// Phase D inbox: stars and terminations.
		type candidate struct {
			in, out map[int]bool
			r       int64
		}
		cands := make(map[int]candidate)
		for _, m := range nd.ctx.NextRound() {
			switch p := m.Payload.(type) {
			case dirTermMsg:
				for _, e := range p.edges {
					if e[0] == nd.me {
						nd.spanOut[e[1]] = true
						nd.covOut[e[1]] = true
					}
					if e[1] == nd.me {
						nd.spanIn[e[0]] = true
						nd.covIn[e[0]] = true
					}
				}
			case dirStarMsg:
				c := candidate{in: map[int]bool{}, out: map[int]bool{}, r: p.r}
				for _, en := range p.entries {
					if en.In {
						c.in[en.Nbr] = true
					}
					if en.Out {
						c.out[en.Nbr] = true
					}
				}
				cands[m.From] = c
			}
		}

		// Phase E: each uncovered outgoing edge (me, w) votes, owned by its
		// tail. The candidate v 2-spans (me, w) iff (me, v) and (v, w) are
		// in S_v: v's star has an In entry for me and an Out entry for w.
		votes := make(map[int][][2]int)
		for w := range nd.outEdge {
			if nd.covOut[w] {
				continue
			}
			bestV, bestR := -1, int64(0)
			for vid, c := range cands {
				if !c.in[nd.me] || !c.out[w] {
					continue
				}
				if bestV < 0 || c.r < bestR || (c.r == bestR && vid < bestV) {
					bestV, bestR = vid, c.r
				}
			}
			if bestV >= 0 {
				votes[bestV] = append(votes[bestV], [2]int{nd.me, w})
			}
		}
		for vid, es := range votes {
			nd.ctx.Send(vid, voteMsg{edges: es, n: n})
		}

		// Phase E inbox: acceptance at >= |C_v|/8 votes.
		myVotes := 0
		for _, m := range nd.ctx.NextRound() {
			myVotes += len(m.Payload.(voteMsg).edges)
		}
		if isCand && 8*myVotes >= mySpanCount && mySpanCount > 0 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.accept, iter)
			}
			for _, en := range myEntries {
				if en.Out {
					nd.spanOut[en.Nbr] = true
				}
				if en.In {
					nd.spanIn[en.Nbr] = true
				}
			}
			nd.ctx.Broadcast(dirStarMsg{entries: myEntries, r: -1, n: n})
		}

		// Phase F inbox: accepted stars (r == -1 marks acceptance).
		for _, m := range nd.ctx.NextRound() {
			p, ok := m.Payload.(dirStarMsg)
			if !ok || p.r != -1 {
				continue
			}
			for _, en := range p.entries {
				if en.Nbr != nd.me {
					continue
				}
				if en.Out { // (sender, me) in spanner
					nd.spanIn[m.From] = true
				}
				if en.In { // (me, sender) in spanner
					nd.spanOut[m.From] = true
				}
			}
		}
	}
}

// updateCoverage marks directed incident edges covered when in the spanner
// or bridged by a directed 2-path through a common neighbor.
func (nd *directedNode) updateCoverage(spanOutOf map[int]map[int]bool) {
	// Outgoing edge (me, w): covered by (me, x) ∈ spanner and (x, w) ∈
	// spanner, learned from x's out-list.
	for w := range nd.outEdge {
		if nd.covOut[w] {
			continue
		}
		if nd.spanOut[w] {
			nd.covOut[w] = true
			continue
		}
		for x, outX := range spanOutOf {
			if nd.spanOut[x] && outX[w] {
				nd.covOut[w] = true
				break
			}
		}
	}
	// Incoming edge (u, me): covered by (u, x) ∈ spanner (x's... the tail
	// u also tracks this edge as its outgoing edge; to keep both endpoint
	// views consistent we check (u, x) from u's broadcasts and (x, me)
	// from our own incoming spanner state.
	for u := range nd.inEdge {
		if nd.covIn[u] {
			continue
		}
		if nd.spanIn[u] {
			nd.covIn[u] = true
			continue
		}
		outU := spanOutOf[u]
		if outU == nil {
			continue
		}
		for x := range outU {
			if x == nd.me {
				continue
			}
			if nd.spanIn[x] && nd.nbrSet[x] {
				// (u, x) ∈ spanner and (x, me) ∈ spanner.
				nd.covIn[u] = true
				break
			}
		}
	}
}

func (nd *directedNode) emitOutput() {
	var out []int
	for w, in := range nd.spanOut {
		if in {
			out = append(out, nd.outEdge[w])
		}
	}
	for u, in := range nd.spanIn {
		if in {
			out = append(out, nd.inEdge[u])
		}
	}
	sort.Ints(out)
	nd.outs[nd.me] = out
}
