package core

import (
	"sort"
	"sync/atomic"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Directed-variant payloads. Communication runs over the underlying
// undirected graph (the paper's model is bidirectional even for directed
// spanner problems), so directionality is data, not topology. Like the
// undirected protocol, state announcements are deltas accumulated by the
// receivers, and each phase has a distinguishable payload, so idle
// vertices park in Recv and re-identify the phase on wake-up.

// dirSpanListMsg announces the sender's newly added outgoing spanner
// edges: an entry w means (sender, w) joined the spanner. Out-lists alone
// suffice for coverage checks, since every directed 2-path u -> x -> w
// consists of out-edges of u and x. Phase G'; sent only on growth.
type dirSpanListMsg struct {
	outNbrs []int
	n       int
}

func (m dirSpanListMsg) Bits() int {
	return (1 + len(m.outNbrs)) * dist.IDBits(m.n)
}

// dirUncovMsg announces the sender's uncovered outgoing edges by head:
// the full list once at start-up (full=true), then removals as heads
// become covered. Phase A.
type dirUncovMsg struct {
	heads []int
	full  bool
	n     int
}

func (m dirUncovMsg) Bits() int { return (1 + len(m.heads)) * dist.IDBits(m.n) }

// dirStarEntry is one neighbor of a candidate's directed star with the
// directions taken: in means (nbr -> candidate), out means (candidate ->
// nbr).
type dirStarEntry struct {
	Nbr     int
	In, Out bool
}

// dirStarMsg announces a candidate's directed star and random rank
// (phase D; r >= 1), or — with r == -1 — that the star was accepted into
// the spanner (phase F).
type dirStarMsg struct {
	entries []dirStarEntry
	r       int64
	n       int
}

func (m dirStarMsg) Bits() int {
	return (1+len(m.entries))*(dist.IDBits(m.n)+2) + 4*dist.IDBits(m.n)
}

// dirTermMsg announces termination: the sender adds the listed uncovered
// incident directed edges (tail, head) to the spanner. It doubles as the
// death notice pruning the sender from its peers' folds and broadcasts.
type dirTermMsg struct {
	edges [][2]int
	n     int
}

func (m dirTermMsg) Bits() int { return (1 + 2*len(m.edges)) * dist.IDBits(m.n) }

// DirectedTwoSpanner runs the directed 2-spanner algorithm of Theorem 4.9
// on the digraph d. The communication topology is d's underlying undirected
// graph.
func DirectedTwoSpanner(d *graph.Digraph, opts Options) (*Result, error) {
	under, _ := d.Underlying()
	n := d.N()
	outs := make([][]int, n)
	iters := make([]int, n)
	var fallbacks atomic.Int64
	tele := newTelemetry()
	proc := func(ctx *dist.Ctx) {
		nd := newDirectedNode(ctx, d, outs, iters, &fallbacks)
		nd.tele = tele
		nd.run()
	}
	stats, err := dist.Run(dist.Config{
		Graph: under, Seed: opts.Seed, MaxRounds: opts.MaxRounds,
		Mode: opts.ExecMode, OnRound: opts.RoundHook,
	}, proc)
	if err != nil {
		return nil, err
	}
	spanner := graph.NewEdgeSet(d.M())
	for _, edges := range outs {
		for _, e := range edges {
			spanner.Add(e)
		}
	}
	maxIter := 0
	for _, it := range iters {
		if it > maxIter {
			maxIter = it
		}
	}
	return &Result{
		Spanner:      spanner,
		Cost:         d.TotalWeight(spanner),
		Stats:        *stats,
		Iterations:   maxIter,
		PerIteration: tele.stats(maxIter),
		Fallbacks:    fallbacks.Load(),
	}, nil
}

// classifyDirected maps a wake inbox to its phase. dirStarMsg serves two
// phases and is disambiguated by its rank: candidates announce with
// r >= 1, acceptances carry r == -1.
func classifyDirected(msgs []dist.Message) uPhase {
	switch p := msgs[0].Payload.(type) {
	case dirSpanListMsg:
		return phSpan
	case dirUncovMsg:
		return phUncov
	case densMsg:
		return phDens
	case maxMsg:
		return phMax
	case dirTermMsg:
		return phStar
	case dirStarMsg:
		if p.r == -1 {
			return phAccept
		}
		return phStar
	case voteMsg:
		return phVote
	}
	panic("core: unclassifiable directed wake payload")
}

// dirDensVal is a neighbor's last announced (rounded, raw) density pair.
// The directed variant folds both separately because the rounding applies
// to the footnote-7 running minimum, not the instantaneous value.
type dirDensVal struct {
	rho, raw float64
}

// dirCandidate is one announced directed star this iteration.
type dirCandidate struct {
	in, out map[int]bool
	r       int64
}

type directedNode struct {
	ctx       *dist.Ctx
	d         *graph.Digraph
	outs      [][]int
	iters     []int
	fallbacks *atomic.Int64
	tele      *telemetry

	me      int
	nbrs    []int
	nbrSet  map[int]bool
	outEdge map[int]int // head -> directed edge id (me, head)
	inEdge  map[int]int // tail -> directed edge id (tail, me)
	covOut  map[int]bool
	covIn   map[int]bool
	spanOut map[int]bool
	spanIn  map[int]bool
	nbrCnt  map[int]int // directed multiplicity per neighbor (static)

	wasCand  bool
	lastRho  float64
	prevStar []int
	runMin   float64 // footnote 7: running minimum of the approximate density

	// Accumulated per-neighbor state, kept in sync by deltas. Scalar
	// state is indexed by neighbor position (see undirectedNode).
	nbrPos    map[int]int
	alive     []bool
	spanOutOf map[int]map[int]bool
	uncovOf   map[int]map[int]bool // live neighbor -> its uncovered out-heads
	densOf    []dirDensVal
	densKnown []bool
	hopOf     []dirDensVal
	hopKnown  []bool

	// Own derived quantities and change tracking.
	pendingSpan    []int // spanOut additions not yet announced
	announcedUncov map[int]bool
	sentUncovInit  bool
	view           *dirView
	viewDirty      bool
	hopDirty       bool
	m2Dirty        bool
	raw, rho       float64
	densSent       bool
	lastDens       dirDensVal
	hopRho, hopRaw float64
	hopSent        bool
	lastHop        dirDensVal
	m2Rho, m2Raw   float64

	// Per-iteration scratch.
	iter        int
	isCand      bool
	myEntries   []dirStarEntry
	mySpanCount int
	cands       map[int]dirCandidate
	myVotes     int
}

func newDirectedNode(ctx *dist.Ctx, d *graph.Digraph, outs [][]int, iters []int, fb *atomic.Int64) *directedNode {
	me := ctx.ID()
	nd := &directedNode{
		ctx: ctx, d: d, outs: outs, iters: iters, fallbacks: fb,
		me:             me,
		nbrs:           ctx.Neighbors(),
		nbrSet:         make(map[int]bool),
		outEdge:        make(map[int]int),
		inEdge:         make(map[int]int),
		covOut:         make(map[int]bool),
		covIn:          make(map[int]bool),
		spanOut:        make(map[int]bool),
		spanIn:         make(map[int]bool),
		nbrCnt:         make(map[int]int),
		runMin:         -1,
		nbrPos:         make(map[int]int),
		spanOutOf:      make(map[int]map[int]bool),
		uncovOf:        make(map[int]map[int]bool),
		announcedUncov: make(map[int]bool),
		viewDirty:      true,
		hopDirty:       true,
		m2Dirty:        true,
	}
	deg := len(nd.nbrs)
	nd.alive = make([]bool, deg)
	nd.densOf = make([]dirDensVal, deg)
	nd.densKnown = make([]bool, deg)
	nd.hopOf = make([]dirDensVal, deg)
	nd.hopKnown = make([]bool, deg)
	for i, u := range nd.nbrs {
		nd.nbrSet[u] = true
		nd.nbrPos[u] = i
		nd.alive[i] = true
		cnt := 0
		if idx, ok := d.EdgeIndex(me, u); ok {
			nd.outEdge[u] = idx
			cnt++
		}
		if idx, ok := d.EdgeIndex(u, me); ok {
			nd.inEdge[u] = idx
			cnt++
		}
		nd.nbrCnt[u] = cnt
	}
	return nd
}

// setSpanOut records (me, w) as a spanner member and queues the round-1
// delta announcing it.
func (nd *directedNode) setSpanOut(w int) {
	if !nd.spanOut[w] {
		nd.spanOut[w] = true
		nd.pendingSpan = append(nd.pendingSpan, w)
	}
}

// bcast sends p to every live neighbor.
func (nd *directedNode) bcast(p dist.Payload) {
	for i, u := range nd.nbrs {
		if nd.alive[i] {
			nd.ctx.Send(u, p)
		}
	}
}

// parkable mirrors undirectedNode.parkable for the directed state.
func (nd *directedNode) parkable() bool {
	if len(nd.pendingSpan) > 0 || nd.viewDirty || nd.hopDirty || nd.m2Dirty {
		return false
	}
	for w := range nd.announcedUncov {
		if nd.covOut[w] {
			return false
		}
	}
	return !(nd.rho > 0 && nd.rho >= nd.m2Rho && nd.raw >= 1)
}

func (nd *directedNode) run() {
	for {
		start := phSpan
		var wake []dist.Message
		if nd.iter > 0 && nd.parkable() {
			nd.wasCand, nd.prevStar = false, nil
			msgs, ok := nd.ctx.Recv()
			if !ok {
				nd.finalizeQuiesced()
				return
			}
			start = classifyDirected(msgs)
			wake = msgs
		}
		nd.iters[nd.me] = nd.iter
		nd.iter++
		if nd.iteration(start, wake) {
			return
		}
	}
}

// finalizeQuiesced is the quiescence safety net: direct-add every still
// uncovered incident directed edge (what the termination step would do),
// then output and halt.
func (nd *directedNode) finalizeQuiesced() {
	for w := range nd.outEdge {
		if !nd.covOut[w] {
			nd.spanOut[w] = true
			nd.covOut[w] = true
		}
	}
	for u := range nd.inEdge {
		if !nd.covIn[u] {
			nd.spanIn[u] = true
			nd.covIn[u] = true
		}
	}
	if nd.tele != nil {
		it := nd.iter
		if it > 0 {
			it--
		}
		nd.tele.bump(nd.tele.term, it)
	}
	nd.emitOutput()
}

func (nd *directedNode) iteration(start uPhase, wake []dist.Message) bool {
	nd.isCand = false
	nd.myEntries = nil
	nd.mySpanCount = 0
	nd.cands = nil
	nd.myVotes = 0
	for ph := start; ph <= phAccept; ph++ {
		var inbox []dist.Message
		if ph == start && wake != nil {
			inbox = wake
		} else {
			if nd.emit(ph) {
				return true
			}
			inbox = nd.ctx.NextRound()
		}
		nd.process(ph, inbox)
	}
	return false
}

func (nd *directedNode) emit(ph uPhase) bool {
	switch ph {
	case phSpan:
		if len(nd.pendingSpan) > 0 {
			sort.Ints(nd.pendingSpan)
			nd.bcast(dirSpanListMsg{outNbrs: nd.pendingSpan, n: nd.ctx.N()})
			nd.pendingSpan = nil
		}
	case phUncov:
		nd.emitUncov()
	case phDens:
		if nd.viewDirty {
			nd.rebuildView()
		}
		dv := dirDensVal{rho: nd.rho, raw: nd.raw}
		if !nd.densSent || dv != nd.lastDens {
			nd.bcast(densMsg{rho: nd.rho, raw: nd.raw, wmax: 1})
			nd.densSent, nd.lastDens = true, dv
		}
	case phMax:
		if nd.hopDirty {
			nd.refoldHop()
		}
		hv := dirDensVal{rho: nd.hopRho, raw: nd.hopRaw}
		if !nd.hopSent || hv != nd.lastHop {
			nd.bcast(maxMsg{rho: nd.hopRho, raw: nd.hopRaw, wmax: 1})
			nd.hopSent, nd.lastHop = true, hv
		}
	case phStar:
		if nd.m2Dirty {
			nd.refoldM2()
		}
		// Termination: as in the undirected case, with approximate
		// densities (constants shift, shape preserved).
		if nd.m2Raw <= 1 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.term, nd.iter-1)
			}
			var added [][2]int
			for w := range nd.outEdge {
				if !nd.covOut[w] {
					nd.spanOut[w] = true
					nd.covOut[w] = true
					added = append(added, [2]int{nd.me, w})
				}
			}
			for u := range nd.inEdge {
				if !nd.covIn[u] {
					nd.spanIn[u] = true
					nd.covIn[u] = true
					added = append(added, [2]int{u, nd.me})
				}
			}
			nd.bcast(dirTermMsg{edges: added, n: nd.ctx.N()})
			nd.ctx.NextRound()
			nd.emitOutput()
			return true
		}
		nd.isCand = nd.rho > 0 && nd.rho >= nd.m2Rho && nd.raw >= 1
		if nd.isCand {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.cand, nd.iter-1)
			}
			var prev []bool
			if nd.wasCand && nd.lastRho == nd.rho && nd.prevStar != nil {
				prev = nd.view.maskFromIDs(nd.prevStar)
			}
			sel, fb := nd.view.chooseStar(nd.rho, prev)
			if fb {
				nd.fallbacks.Add(1)
			}
			ids := nd.view.starNeighborIDs(sel)
			for _, u := range ids {
				_, hasOut := nd.outEdge[u]
				_, hasIn := nd.inEdge[u]
				nd.myEntries = append(nd.myEntries, dirStarEntry{Nbr: u, In: hasIn, Out: hasOut})
			}
			spanned, _ := nd.view.dirValue(sel)
			nd.mySpanCount = int(spanned + 0.5)
			nd.bcast(dirStarMsg{entries: nd.myEntries, r: 1 + nd.ctx.Rand().Int63n(1<<62), n: nd.ctx.N()})
			nd.wasCand, nd.lastRho, nd.prevStar = true, nd.rho, ids
		} else {
			nd.wasCand = false
			nd.prevStar = nil
		}
	case phVote:
		// Each uncovered outgoing edge (me, w) votes, owned by its tail.
		// The candidate v 2-spans (me, w) iff (me, v) and (v, w) are in
		// S_v: v's star has an In entry for me and an Out entry for w.
		votes := make(map[int][][2]int)
		heads := make([]int, 0, len(nd.outEdge))
		for w := range nd.outEdge {
			if !nd.covOut[w] {
				heads = append(heads, w)
			}
		}
		sort.Ints(heads)
		for _, w := range heads {
			bestV, bestR := -1, int64(0)
			for vid, c := range nd.cands {
				if !c.in[nd.me] || !c.out[w] {
					continue
				}
				if bestV < 0 || c.r < bestR || (c.r == bestR && vid < bestV) {
					bestV, bestR = vid, c.r
				}
			}
			if bestV >= 0 {
				votes[bestV] = append(votes[bestV], [2]int{nd.me, w})
			}
		}
		for vid, es := range votes {
			nd.ctx.Send(vid, voteMsg{edges: es, n: nd.ctx.N()})
		}
	case phAccept:
		if nd.isCand && 8*nd.myVotes >= nd.mySpanCount && nd.mySpanCount > 0 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.accept, nd.iter-1)
			}
			for _, en := range nd.myEntries {
				if en.Out {
					nd.setSpanOut(en.Nbr)
				}
				if en.In {
					nd.spanIn[en.Nbr] = true
				}
			}
			nd.bcast(dirStarMsg{entries: nd.myEntries, r: -1, n: nd.ctx.N()})
		}
	}
	return false
}

func (nd *directedNode) emitUncov() {
	if !nd.sentUncovInit {
		nd.sentUncovInit = true
		var full []int
		for w := range nd.outEdge {
			if !nd.covOut[w] {
				full = append(full, w)
				nd.announcedUncov[w] = true
			}
		}
		sort.Ints(full)
		nd.bcast(dirUncovMsg{heads: full, full: true, n: nd.ctx.N()})
		return
	}
	var dels []int
	for w := range nd.announcedUncov {
		if nd.covOut[w] {
			dels = append(dels, w)
		}
	}
	if len(dels) == 0 {
		return
	}
	sort.Ints(dels)
	for _, w := range dels {
		delete(nd.announcedUncov, w)
	}
	nd.bcast(dirUncovMsg{heads: dels, n: nd.ctx.N()})
}

func (nd *directedNode) process(ph uPhase, inbox []dist.Message) {
	switch ph {
	case phSpan:
		for _, m := range inbox {
			p, ok := m.Payload.(dirSpanListMsg)
			if !ok || !nd.alive[nd.nbrPos[m.From]] {
				continue
			}
			set := nd.spanOutOf[m.From]
			if set == nil {
				set = make(map[int]bool, len(p.outNbrs))
				nd.spanOutOf[m.From] = set
			}
			for _, w := range p.outNbrs {
				set[w] = true
			}
		}
		nd.updateCoverage()
	case phUncov:
		for _, m := range inbox {
			p, ok := m.Payload.(dirUncovMsg)
			if !ok || !nd.alive[nd.nbrPos[m.From]] {
				continue
			}
			if p.full {
				nd.uncovOf[m.From] = sliceToSet(p.heads)
			} else {
				set := nd.uncovOf[m.From]
				for _, w := range p.heads {
					delete(set, w)
				}
			}
			nd.viewDirty = true
		}
	case phDens:
		for _, m := range inbox {
			p, ok := m.Payload.(densMsg)
			if !ok {
				continue
			}
			i := nd.nbrPos[m.From]
			if !nd.alive[i] {
				continue
			}
			nd.densOf[i] = dirDensVal{rho: p.rho, raw: p.raw}
			nd.densKnown[i] = true
			nd.hopDirty = true
		}
	case phMax:
		for _, m := range inbox {
			p, ok := m.Payload.(maxMsg)
			if !ok {
				continue
			}
			i := nd.nbrPos[m.From]
			if !nd.alive[i] {
				continue
			}
			nd.hopOf[i] = dirDensVal{rho: p.rho, raw: p.raw}
			nd.hopKnown[i] = true
			nd.m2Dirty = true
		}
	case phStar:
		for _, m := range inbox {
			switch p := m.Payload.(type) {
			case dirTermMsg:
				nd.processDeath(m.From, p.edges)
			case dirStarMsg:
				c := dirCandidate{in: map[int]bool{}, out: map[int]bool{}, r: p.r}
				for _, en := range p.entries {
					if en.In {
						c.in[en.Nbr] = true
					}
					if en.Out {
						c.out[en.Nbr] = true
					}
				}
				if nd.cands == nil {
					nd.cands = make(map[int]dirCandidate)
				}
				nd.cands[m.From] = c
			}
		}
	case phVote:
		for _, m := range inbox {
			if p, ok := m.Payload.(voteMsg); ok {
				nd.myVotes += len(p.edges)
			}
		}
	case phAccept:
		for _, m := range inbox {
			p, ok := m.Payload.(dirStarMsg)
			if !ok || p.r != -1 {
				continue
			}
			for _, en := range p.entries {
				if en.Nbr != nd.me {
					continue
				}
				if en.Out { // (sender, me) in spanner
					nd.spanIn[m.From] = true
				}
				if en.In { // (me, sender) in spanner
					nd.setSpanOut(m.From)
				}
			}
		}
	}
}

// processDeath handles a neighbor's termination: record the direct-added
// edges touching this vertex, then prune the sender from every fold.
func (nd *directedNode) processDeath(from int, edges [][2]int) {
	for _, e := range edges {
		if e[0] == nd.me {
			nd.setSpanOut(e[1])
			nd.covOut[e[1]] = true
		}
		if e[1] == nd.me {
			nd.spanIn[e[0]] = true
			nd.covIn[e[0]] = true
		}
	}
	i := nd.nbrPos[from]
	nd.alive[i] = false
	nd.densKnown[i] = false
	nd.hopKnown[i] = false
	delete(nd.spanOutOf, from)
	if set := nd.uncovOf[from]; len(set) > 0 {
		nd.viewDirty = true
	}
	delete(nd.uncovOf, from)
	nd.hopDirty = true
	nd.m2Dirty = true
}

// updateCoverage marks directed incident edges covered when in the spanner
// or bridged by a directed 2-path through a common neighbor, using the
// accumulated out-lists of live neighbors.
func (nd *directedNode) updateCoverage() {
	// Outgoing edge (me, w): covered by (me, x) ∈ spanner and (x, w) ∈
	// spanner, learned from x's out-list.
	for w := range nd.outEdge {
		if nd.covOut[w] {
			continue
		}
		if nd.spanOut[w] {
			nd.covOut[w] = true
			continue
		}
		for x, outX := range nd.spanOutOf {
			if nd.spanOut[x] && outX[w] {
				nd.covOut[w] = true
				break
			}
		}
	}
	// Incoming edge (u, me): covered by (u, x) ∈ spanner (from u's
	// out-list) and (x, me) ∈ spanner (own incoming spanner state).
	for u := range nd.inEdge {
		if nd.covIn[u] {
			continue
		}
		if nd.spanIn[u] {
			nd.covIn[u] = true
			continue
		}
		outU := nd.spanOutOf[u]
		if outU == nil {
			continue
		}
		for x := range outU {
			if x == nd.me {
				continue
			}
			if nd.spanIn[x] && nd.nbrSet[x] {
				// (u, x) ∈ spanner and (x, me) ∈ spanner.
				nd.covIn[u] = true
				break
			}
		}
	}
}

// rebuildView reassembles the directed view from the accumulated
// uncovered out-head sets and refreshes the footnote-7 running minimum of
// the approximate densest-star density.
func (nd *directedNode) rebuildView() {
	nd.viewDirty = false
	var hDir [][2]int
	for _, u := range nd.nbrs {
		if _, hasIn := nd.inEdge[u]; !hasIn {
			continue // star cannot use (u, me): no such edge
		}
		set := nd.uncovOf[u]
		if len(set) == 0 {
			continue
		}
		ws := make([]int, 0, len(set))
		for w := range set {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		for _, w := range ws {
			if w == nd.me || !nd.nbrSet[w] {
				continue
			}
			if _, hasOut := nd.outEdge[w]; hasOut {
				hDir = append(hDir, [2]int{u, w})
			}
		}
	}
	nd.view = newDirView(nd.nbrCnt, hDir)
	_, raw := nd.view.approxDensest(nil)
	// Footnote 7: the approximation may fluctuate upward; use the
	// running minimum so the rounded value never increases.
	if nd.runMin < 0 || raw < nd.runMin {
		nd.runMin = raw
	}
	raw = nd.runMin
	rho := RoundUpPow2(raw)
	if raw != nd.raw || rho != nd.rho {
		nd.hopDirty = true
	}
	nd.raw, nd.rho = raw, rho
}

// refoldHop recomputes the 1-hop maxima (own values first, then live
// neighbors in id order).
func (nd *directedNode) refoldHop() {
	nd.hopDirty = false
	old := dirDensVal{rho: nd.hopRho, raw: nd.hopRaw}
	nd.hopRho, nd.hopRaw = nd.rho, nd.raw
	for i := range nd.nbrs {
		if !nd.alive[i] || !nd.densKnown[i] {
			continue
		}
		d := nd.densOf[i]
		nd.hopRho = maxf(nd.hopRho, d.rho)
		nd.hopRaw = maxf(nd.hopRaw, d.raw)
	}
	if (dirDensVal{rho: nd.hopRho, raw: nd.hopRaw}) != old {
		nd.m2Dirty = true
	}
}

// refoldM2 recomputes the 2-hop maxima from the accumulated 1-hop maxima.
func (nd *directedNode) refoldM2() {
	nd.m2Dirty = false
	nd.m2Rho, nd.m2Raw = nd.hopRho, nd.hopRaw
	for i := range nd.nbrs {
		if !nd.alive[i] || !nd.hopKnown[i] {
			continue
		}
		h := nd.hopOf[i]
		nd.m2Rho = maxf(nd.m2Rho, h.rho)
		nd.m2Raw = maxf(nd.m2Raw, h.raw)
	}
}

func (nd *directedNode) emitOutput() {
	var out []int
	for w, in := range nd.spanOut {
		if in {
			out = append(out, nd.outEdge[w])
		}
	}
	for u, in := range nd.spanIn {
		if in {
			out = append(out, nd.inEdge[u])
		}
	}
	sort.Ints(out)
	nd.outs[nd.me] = out
}
