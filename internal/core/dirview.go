package core

import "sort"

// dirView is the directed analogue of localView (Section 4.3.1). The
// densest directed star is approximated by the undirected reduction of
// Claims 4.10/4.11: ignore directions of the 2-spannable uncovered edges,
// compute the densest undirected star with unit costs, then convert back by
// taking every existing directed edge between the center and the selected
// neighbors. Densities used for thresholds are the true directed densities
// of the converted stars, and the Section 4.1 extension rule runs with
// threshold ρ/8 instead of ρ/4 (the paper's adjustment for working with a
// 2-approximation).
type dirView struct {
	uv     *localView
	dirCnt []float64      // directed star edges (1 or 2) per position
	mult   map[[2]int]int // directed multiplicity per unordered position pair
}

// newDirView builds the view. nbrs maps neighbor id to the number of
// directed edges between the center and that neighbor (1 or 2). hDir lists
// the uncovered 2-spannable directed edges (u, w) between neighbors.
func newDirView(nbrs map[int]int, hDir [][2]int) *dirView {
	selectable := make(map[int]float64, len(nbrs))
	for id := range nbrs {
		selectable[id] = 1
	}
	// Collapse directed edges to unordered pairs with multiplicities.
	multByIDs := make(map[[2]int]int)
	for _, e := range hDir {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		multByIDs[[2]int{a, b}]++
	}
	pairs := make([][2]int, 0, len(multByIDs))
	for p := range multByIDs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	uv := newLocalView(selectable, nil, pairs)
	dv := &dirView{uv: uv, dirCnt: make([]float64, len(uv.nbrs)), mult: make(map[[2]int]int, len(multByIDs))}
	//spanlint:ordered pos is a bijection over ids, so distinct iterations write distinct dirCnt slots
	for id, cnt := range nbrs {
		dv.dirCnt[uv.pos[id]] = float64(cnt)
	}
	//spanlint:ordered distinct id pairs map through the pos bijection to distinct normalized position pairs
	for p, m := range multByIDs {
		a, b := uv.pos[p[0]], uv.pos[p[1]]
		if a > b {
			a, b = b, a
		}
		dv.mult[[2]int{a, b}] = m
	}
	return dv
}

// dirValue returns the directed 2-spanned count and directed star size of
// the selection.
func (dv *dirView) dirValue(sel []bool) (spanned, size float64) {
	for p, in := range sel {
		if !in {
			continue
		}
		size += dv.dirCnt[p]
		for _, q := range dv.uv.hAdj[p] {
			if q > p && sel[q] {
				spanned += float64(dv.mult[[2]int{p, q}])
			}
		}
	}
	return spanned, size
}

// dirDensity is the true directed density ρ_D of the selection.
func (dv *dirView) dirDensity(sel []bool) float64 {
	s, c := dv.dirValue(sel)
	if c <= 0 {
		return 0
	}
	return s / c
}

// approxDensest returns the undirected-densest star and its directed
// density, a 2-approximation of the densest directed star (Claim 4.10).
func (dv *dirView) approxDensest(allowed []bool) ([]bool, float64) {
	sel, _ := dv.uv.densestStar(allowed)
	if sel == nil {
		return nil, 0
	}
	return sel, dv.dirDensity(sel)
}

// chooseStar mirrors localView.chooseStar with directed densities and the
// ρ/8 threshold.
func (dv *dirView) chooseStar(rho float64, prev []bool) (sel []bool, fallback bool) {
	threshold := rho / 8
	if prev != nil {
		if dv.dirDensity(prev) >= threshold {
			return copyMask(prev), false
		}
		base, d := dv.approxDensest(prev)
		if base != nil && d >= threshold {
			dv.extend(base, threshold, prev)
			return base, false
		}
		sel, _ := dv.fresh(threshold)
		return sel, true
	}
	sel, _ = dv.fresh(threshold)
	return sel, false
}

func (dv *dirView) fresh(threshold float64) ([]bool, float64) {
	sel, d := dv.approxDensest(nil)
	if sel == nil {
		return make([]bool, len(dv.uv.nbrs)), 0
	}
	dv.extend(sel, threshold, nil)
	return sel, d
}

// extend mirrors localView.extend under directed densities.
func (dv *dirView) extend(sel []bool, threshold float64, within []bool) {
	spanned, size := dv.dirValue(sel)
	for {
		progressed := false
		for p := range dv.uv.nbrs {
			if sel[p] || (within != nil && !within[p]) {
				continue
			}
			gain := 0.0
			for _, q := range dv.uv.hAdj[p] {
				if sel[q] {
					a, b := p, q
					if a > b {
						a, b = b, a
					}
					gain += float64(dv.mult[[2]int{a, b}])
				}
			}
			if (spanned+gain)/(size+dv.dirCnt[p]) >= threshold {
				sel[p] = true
				spanned += gain
				size += dv.dirCnt[p]
				progressed = true
			}
		}
		if progressed {
			continue
		}
		allowed := make([]bool, len(dv.uv.nbrs))
		any := false
		for p := range dv.uv.nbrs {
			if !sel[p] && (within == nil || within[p]) {
				allowed[p] = true
				any = true
			}
		}
		if !any {
			return
		}
		disj, d := dv.approxDensest(allowed)
		if disj == nil || d < threshold {
			return
		}
		for p, in := range disj {
			if in {
				sel[p] = true
			}
		}
		spanned, size = dv.dirValue(sel)
	}
}

// starNeighborIDs converts a selection to sorted neighbor ids.
func (dv *dirView) starNeighborIDs(sel []bool) []int {
	var out []int
	for p, in := range sel {
		if in {
			out = append(out, dv.uv.nbrs[p])
		}
	}
	sort.Ints(out)
	return out
}

// maskFromIDs converts neighbor ids back to a selection mask.
func (dv *dirView) maskFromIDs(ids []int) []bool {
	return dv.uv.maskFromIDs(ids)
}
