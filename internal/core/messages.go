package core

import "distspanner/internal/dist"

// Message payloads for the 7-round-per-iteration LOCAL protocol. Sizes
// follow CONGEST accounting (IDBits-sized words), which is what makes the
// O(Δ)-word messages of this LOCAL algorithm measurably non-CONGEST
// (Section 1.3 discusses exactly this overhead).
//
// State announcements are deltas: receivers accumulate them into
// persistent per-neighbor state, so a vertex whose state did not change
// sends nothing and a parked vertex receives nothing. Each phase has a
// distinct payload type — that is how a vertex woken from Recv
// re-identifies the current phase (see classifyUndirected).

// spanListMsg announces the sender's newly added incident spanner edges,
// named by the far endpoint. Phase G'; sent only when the sender's
// spanner membership grew since its last announcement.
type spanListMsg struct {
	nbrs []int
	n    int
}

func (m spanListMsg) Bits() int { return (1 + len(m.nbrs)) * dist.IDBits(m.n) }

// uncovMsg announces the sender's incident uncovered target edges, named
// by the far endpoint: the full list once at start-up (full=true), then
// only removals as edges become covered. Phase A.
type uncovMsg struct {
	nbrs []int
	full bool
	n    int
}

func (m uncovMsg) Bits() int { return (1 + len(m.nbrs)) * dist.IDBits(m.n) }

// densMsg announces the sender's rounded density, raw density, and the
// maximum weight among its incident edges (used by the weighted variant's
// termination rule). Phase B; sent when the density changed (and by
// everyone in iteration 0, seeding the accumulated state). In the
// unweighted algorithm the raw density is the exact rational num/den
// (2-spanned count over star size), which is what the CONGEST adapter
// ships as two words.
type densMsg struct {
	rho, raw, wmax float64
	num, den       int
}

func (densMsg) Bits() int { return 3 * 64 }

// maxMsg announces 1-hop maxima of the densMsg fields, so that receivers
// learn 2-hop maxima. Phase C; sent when the maxima changed (and by
// everyone in iteration 0). num/den carry the maximizing rational.
type maxMsg struct {
	rho, raw, wmax float64
	num, den       int
}

func (maxMsg) Bits() int { return 3 * 64 }

// starMsg announces a candidate's chosen star (neighbor ids) and its random
// rank r ∈ {1, …, n⁴}. Phase D.
type starMsg struct {
	star []int
	r    int64
	n    int
}

func (m starMsg) Bits() int { return (1+len(m.star))*dist.IDBits(m.n) + 4*dist.IDBits(m.n) }

// termMsg announces that the sender terminates and directly adds the listed
// incident edges (by far endpoint) to the spanner. Phase D. It doubles as
// the death notice: receivers drop the sender from every accumulated fold
// and prune it from their broadcast lists.
type termMsg struct {
	added []int
	n     int
}

func (m termMsg) Bits() int { return (1 + len(m.added)) * dist.IDBits(m.n) }

// voteMsg carries the votes of the sender's owned uncovered edges for the
// receiving candidate. Phase E.
type voteMsg struct {
	edges [][2]int
	n     int
}

func (m voteMsg) Bits() int { return (1 + 2*len(m.edges)) * dist.IDBits(m.n) }

// acceptMsg announces that the sender's star was accepted into the spanner.
// Phase F.
type acceptMsg struct {
	star []int
	n    int
}

func (m acceptMsg) Bits() int { return (1 + len(m.star)) * dist.IDBits(m.n) }
