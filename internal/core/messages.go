package core

import "distspanner/internal/dist"

// Message schema for the 7-round-per-iteration LOCAL protocol, both
// undirected and directed. Every message travels on the engine's
// flat-buffer record path (dist.Rec): each struct below defines one wire
// record — its tag, its field layout, and its metered size — and its
// rec() builder maps the fields onto the flat record. Sizes follow
// CONGEST accounting (IDBits-sized words for ids, 64 bits for scalar
// fields), which is what makes the O(Δ)-word messages of this LOCAL
// algorithm measurably non-CONGEST (Section 1.3 discusses exactly this
// overhead). Bits must account every transmitted field; the reflection
// conformance test in messages_test.go fails when a field is added
// without updating the accounting.
//
// State announcements are deltas: receivers accumulate them into
// persistent per-neighbor state, so a vertex whose state did not change
// sends nothing and a parked vertex receives nothing. Each phase has a
// distinct record tag — that is how a vertex woken from Recv re-identifies
// the current phase (see classifyUndirected / classifyDirected).

// Record tags. Tags within one protocol's phases are disjoint; the tag is
// the type information the flat-buffer inbox carries in place of a boxed
// payload's dynamic type.
const (
	tagSpan uint8 = iota + 1
	tagUncov
	tagDens
	tagMax
	tagStar
	tagTerm
	tagVote
	tagAccept
	tagDirSpan
	tagDirUncov
	tagDirStar
	tagDirTerm
	tagChunk // CONGEST fragment (congest.go)
)

// spanListMsg announces the sender's newly added incident spanner edges,
// named by the far endpoint. Phase G'; sent only when the sender's
// spanner membership grew since its last announcement.
type spanListMsg struct {
	nbrs []int
	n    int
}

func (m spanListMsg) Bits() int     { return (1 + len(m.nbrs)) * dist.IDBits(m.n) }
func (m spanListMsg) rec() dist.Rec { return dist.Rec{Tag: tagSpan, Ints: m.nbrs} }

// uncovMsg announces the sender's incident uncovered target edges, named
// by the far endpoint: the full list once at start-up (full=true), then
// only removals as edges become covered. Phase A. The full/removal
// distinction is one transmitted bit.
type uncovMsg struct {
	nbrs []int
	full bool
	n    int
}

//spanlint:bits full — the trailing +1 is the one-bit full/removal flag
func (m uncovMsg) Bits() int { return (1+len(m.nbrs))*dist.IDBits(m.n) + 1 }
func (m uncovMsg) rec() dist.Rec {
	r := dist.Rec{Tag: tagUncov, Ints: m.nbrs}
	if m.full {
		r.Flag = 1
	}
	return r
}

// densMsg announces the sender's rounded density, raw density, and the
// maximum weight among its incident edges (used by the weighted variant's
// termination rule). Phase B; sent when the density changed (and by
// everyone in iteration 0, seeding the accumulated state). In the
// unweighted algorithm the raw density is the exact rational num/den
// (2-spanned count over star size), which rides along as two more words —
// it is what the CONGEST adapter ships, and receivers fold it, so it is
// transmitted payload and is accounted: five 64-bit fields.
type densMsg struct {
	rho, raw, wmax float64
	num, den       int
}

//spanlint:bits rho raw wmax num den — five fixed 64-bit scalar words, billed by the constant 5*64
func (densMsg) Bits() int { return 5 * 64 }
func (m densMsg) rec() dist.Rec {
	return dist.Rec{Tag: tagDens, A: int64(m.num), B: int64(m.den), F0: m.rho, F1: m.raw, F2: m.wmax}
}

// maxMsg announces 1-hop maxima of the densMsg fields, so that receivers
// learn 2-hop maxima. Phase C; sent when the maxima changed (and by
// everyone in iteration 0). num/den carry the maximizing rational and are
// accounted like densMsg's.
type maxMsg struct {
	rho, raw, wmax float64
	num, den       int
}

//spanlint:bits rho raw wmax num den — five fixed 64-bit scalar words, billed by the constant 5*64
func (maxMsg) Bits() int { return 5 * 64 }
func (m maxMsg) rec() dist.Rec {
	return dist.Rec{Tag: tagMax, A: int64(m.num), B: int64(m.den), F0: m.rho, F1: m.raw, F2: m.wmax}
}

// starMsg announces a candidate's chosen star (neighbor ids) and its random
// rank r ∈ {1, …, n⁴}. Phase D.
type starMsg struct {
	star []int
	r    int64
	n    int
}

//spanlint:bits r — the 4*IDBits(n) term is the rank r ∈ {1..n⁴}, four id-sized words
func (m starMsg) Bits() int     { return (1+len(m.star))*dist.IDBits(m.n) + 4*dist.IDBits(m.n) }
func (m starMsg) rec() dist.Rec { return dist.Rec{Tag: tagStar, A: m.r, Ints: m.star} }

// termMsg announces that the sender terminates and directly adds the listed
// incident edges (by far endpoint) to the spanner. Phase D. It doubles as
// the death notice: receivers drop the sender from every accumulated fold
// and prune it from their broadcast lists.
type termMsg struct {
	added []int
	n     int
}

func (m termMsg) Bits() int     { return (1 + len(m.added)) * dist.IDBits(m.n) }
func (m termMsg) rec() dist.Rec { return dist.Rec{Tag: tagTerm, Ints: m.added} }

// voteMsg carries the votes of the sender's owned uncovered edges for the
// receiving candidate, as flattened (owner, far endpoint) id pairs.
// Phase E.
type voteMsg struct {
	pairs []int // flattened edge pairs; always even length
	n     int
}

func (m voteMsg) Bits() int     { return (1 + len(m.pairs)) * dist.IDBits(m.n) }
func (m voteMsg) rec() dist.Rec { return dist.Rec{Tag: tagVote, Ints: m.pairs} }

// acceptMsg announces that the sender's star was accepted into the spanner.
// Phase F.
type acceptMsg struct {
	star []int
	n    int
}

func (m acceptMsg) Bits() int     { return (1 + len(m.star)) * dist.IDBits(m.n) }
func (m acceptMsg) rec() dist.Rec { return dist.Rec{Tag: tagAccept, Ints: m.star} }
