package core

import "distspanner/internal/dist"

// Message payloads for the 7-round-per-iteration LOCAL protocol. Sizes
// follow CONGEST accounting (IDBits-sized words), which is what makes the
// O(Δ)-word messages of this LOCAL algorithm measurably non-CONGEST
// (Section 1.3 discusses exactly this overhead).

// spanListMsg broadcasts the sender's incident spanner edges, named by the
// far endpoint. Phase G'.
type spanListMsg struct {
	nbrs []int
	n    int
}

func (m spanListMsg) Bits() int { return (1 + len(m.nbrs)) * dist.IDBits(m.n) }

// uncovMsg broadcasts the sender's incident still-uncovered target edges,
// named by the far endpoint. Phase A.
type uncovMsg struct {
	nbrs []int
	n    int
}

func (m uncovMsg) Bits() int { return (1 + len(m.nbrs)) * dist.IDBits(m.n) }

// densMsg broadcasts the sender's rounded density, raw density, and the
// maximum weight among its incident edges (used by the weighted variant's
// termination rule). Phase B. In the unweighted algorithm the raw density
// is the exact rational num/den (2-spanned count over star size), which is
// what the CONGEST adapter ships as two words.
type densMsg struct {
	rho, raw, wmax float64
	num, den       int
}

func (densMsg) Bits() int { return 3 * 64 }

// maxMsg broadcasts 1-hop maxima of the densMsg fields, so that receivers
// learn 2-hop maxima. Phase C. num/den carry the maximizing rational.
type maxMsg struct {
	rho, raw, wmax float64
	num, den       int
}

func (maxMsg) Bits() int { return 3 * 64 }

// starMsg announces a candidate's chosen star (neighbor ids) and its random
// rank r ∈ {1, …, n⁴}. Phase D.
type starMsg struct {
	star []int
	r    int64
	n    int
}

func (m starMsg) Bits() int { return (1+len(m.star))*dist.IDBits(m.n) + 4*dist.IDBits(m.n) }

// termMsg announces that the sender terminates and directly adds the listed
// incident edges (by far endpoint) to the spanner. Phase D.
type termMsg struct {
	added []int
	n     int
}

func (m termMsg) Bits() int { return (1 + len(m.added)) * dist.IDBits(m.n) }

// voteMsg carries the votes of the sender's owned uncovered edges for the
// receiving candidate. Phase E.
type voteMsg struct {
	edges [][2]int
	n     int
}

func (m voteMsg) Bits() int { return (1 + 2*len(m.edges)) * dist.IDBits(m.n) }

// acceptMsg announces that the sender's star was accepted into the spanner.
// Phase F.
type acceptMsg struct {
	star []int
	n    int
}

func (m acceptMsg) Bits() int { return (1 + len(m.star)) * dist.IDBits(m.n) }
