package core

import (
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/mds"
	"distspanner/internal/span"
)

// tailInstance builds a weighted G(c, 0.3) core with (n-c) pendant leaves
// spread over the core: the core's densities descend through many levels
// while the fringe is idle after the opening iterations — the
// sparse-activity regime the Recv-parking port targets.
func tailInstance(c, n int, seed int64) *graph.Graph {
	core := gen.RandomWeights(gen.ConnectedGNP(c, 0.3, seed), 1, 32, seed+1)
	g := graph.New(n)
	for i := 0; i < core.M(); i++ {
		e := core.Edge(i)
		g.SetWeight(g.AddEdge(e.U, e.V), core.Weight(i))
	}
	for l := c; l < n; l++ {
		g.SetWeight(g.AddEdge(l, l%c), 1)
	}
	return g
}

// TestTwoSpannerTailActivityShrinks asserts the point of the port: on a
// core+fringe instance the late rounds run a small active set — the
// activity curve collapses after the opening iterations instead of
// touching all n vertices every round.
func TestTwoSpannerTailActivityShrinks(t *testing.T) {
	g := tailInstance(48, 200, 5)
	var curve []dist.RoundActivity
	// NoRounding makes candidacy an exact local maximum: the core resolves
	// one small region at a time, stretching the tail the test inspects.
	res, err := TwoSpanner(g, Options{Seed: 2, NoRounding: true, RoundHook: func(a dist.RoundActivity) {
		curve = append(curve, a)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("invalid spanner")
	}
	if len(curve) != res.Stats.Rounds {
		t.Fatalf("curve has %d rounds, stats say %d", len(curve), res.Stats.Rounds)
	}
	if curve[0].Active != g.N() {
		t.Fatalf("round 1 active = %d, want all %d vertices", curve[0].Active, g.N())
	}
	// The whole run must be cheaper than all-spinning execution, and the
	// parked population must actually exist.
	if res.Stats.ActiveSteps >= int64(res.Stats.Rounds)*int64(g.N()) {
		t.Fatalf("no activity saved: %d active steps over %d rounds at n=%d",
			res.Stats.ActiveSteps, res.Stats.Rounds, g.N())
	}
	if res.Stats.ParkedSteps == 0 {
		t.Fatal("no vertex ever parked on a core+fringe tail instance")
	}
	// Late rounds must be sparse: the final quarter of the curve averages
	// well below the opening quarter.
	q := len(curve) / 4
	if q == 0 {
		t.Fatalf("run too short to have a tail: %d rounds", len(curve))
	}
	var early, late float64
	for i := 0; i < q; i++ {
		early += float64(curve[i].Active)
		late += float64(curve[len(curve)-1-i].Active)
	}
	if late >= early || late/float64(q) >= float64(g.N())/2 {
		t.Fatalf("late-round activity did not shrink: early quarter %.0f vs late quarter %.0f at n=%d",
			early/float64(q), late/float64(q), g.N())
	}
}

// TestMDSTailActivityShrinks is the MDS analogue: after the opening
// iterations most vertices are dominated and parked or halted, so the
// late rounds report a shrinking active set.
func TestMDSTailActivityShrinks(t *testing.T) {
	g := gen.ConnectedGNP(300, 0.02, 9)
	var curve []dist.RoundActivity
	res, err := mds.Run(g, mds.Options{Seed: 4, RoundHook: func(a dist.RoundActivity) {
		curve = append(curve, a)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ActiveSteps >= int64(res.Stats.Rounds)*int64(g.N()) {
		t.Fatalf("no activity saved: %d active steps over %d rounds at n=%d",
			res.Stats.ActiveSteps, res.Stats.Rounds, g.N())
	}
	last := curve[len(curve)-1]
	if last.Active >= g.N()/2 {
		t.Fatalf("final round still ran %d of %d vertices", last.Active, g.N())
	}
}

// TestActivityCurveIdenticalAcrossModes pins the determinism of the
// activity profile for a real algorithm: the per-round curve is
// bit-identical under the barrier, event, and step schedulers.
func TestActivityCurveIdenticalAcrossModes(t *testing.T) {
	g := tailInstance(32, 96, 7)
	modes := []dist.Mode{dist.ModeBarrier, dist.ModeEvent, dist.ModeStep}
	curves := make([][]dist.RoundActivity, len(modes))
	for i, mode := range modes {
		res, err := TwoSpanner(g, Options{Seed: 3, ExecMode: mode, RoundHook: func(a dist.RoundActivity) {
			curves[i] = append(curves[i], a)
		}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.ParkedSteps == 0 {
			t.Fatal("expected parking on the tail instance")
		}
	}
	for i := 1; i < len(modes); i++ {
		if len(curves[0]) != len(curves[i]) {
			t.Fatalf("curve lengths differ: %v %d vs %v %d", modes[0], len(curves[0]), modes[i], len(curves[i]))
		}
		for r := range curves[0] {
			if curves[0][r] != curves[i][r] {
				t.Fatalf("round %d activity differs between %v and %v: %+v vs %+v",
					r+1, modes[0], modes[i], curves[0][r], curves[i][r])
			}
		}
	}
}
