package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Options configures a run of the distributed algorithms.
type Options struct {
	// Seed drives all per-vertex randomness; runs are deterministic
	// functions of (instance, Seed).
	Seed int64
	// MaxRounds aborts runaway executions; zero uses the engine default.
	MaxRounds int
	// ExecMode selects the engine's scheduling strategy (barrier vs
	// event-driven); the zero value auto-switches on network size.
	// Results are identical in every mode — only wall-clock cost differs.
	ExecMode dist.Mode

	// VoteDenominator is an ablation knob for the acceptance rule: a
	// candidate star is accepted when votes >= |C_v| / VoteDenominator.
	// Zero means the paper's 8. Smaller values accept fewer stars per
	// iteration (more rounds); larger values accept stars with heavy
	// vote overlap (worse ratio constant).
	VoteDenominator int
	// FreshStars is an ablation knob disabling the Section 4.1 monotone
	// star-choice rule: every candidacy picks a fresh star. Claim 4.4's
	// potential argument — the basis of the O(log n log Δ) round bound —
	// relies on the rule; the ablation measures what it buys.
	FreshStars bool
	// NoRounding is an ablation knob skipping the power-of-two density
	// rounding: candidacy then requires being an exact local maximum.
	// Rounding is what caps the number of density levels at O(log Δ); the
	// ablation measures the cost of exact comparisons.
	NoRounding bool
}

func (o Options) voteDenominator() int {
	if o.VoteDenominator <= 0 {
		return 8
	}
	return o.VoteDenominator
}

// IterationStat is per-iteration telemetry of a run.
type IterationStat struct {
	// Candidates is the number of vertices whose rounded density was
	// maximal in their 2-neighborhood this iteration.
	Candidates int
	// Accepted is the number of candidate stars that reached the voting
	// threshold and joined the spanner.
	Accepted int
	// Terminated is the number of vertices that halted this iteration.
	Terminated int
}

// Result reports the outcome of a distributed spanner construction.
type Result struct {
	// Spanner is the union of the edges output by all vertices.
	Spanner *graph.EdgeSet
	// Cost is the spanner's total weight (edge count when unweighted).
	Cost float64
	// Stats carries the engine's round/message/bit measurements.
	Stats dist.Stats
	// Iterations is the maximum number of algorithm iterations any vertex
	// executed (each iteration is a constant number of rounds).
	Iterations int
	// PerIteration is the telemetry of each iteration, in order.
	PerIteration []IterationStat
	// Fallbacks counts uses of the degenerate star-choice fallback of
	// Section 4.1, which Claim 4.4 proves is never taken. It should be 0;
	// tests assert this invariant.
	Fallbacks int64
}

// telemetry collects per-iteration counters across the concurrently
// running vertices. Slices are fixed-size; iterations beyond the cap are
// executed but not recorded (far beyond any w.h.p. bound).
type telemetry struct {
	cand, accept, term []atomic.Int32
}

const telemetryCap = 4096

func newTelemetry() *telemetry {
	return &telemetry{
		cand:   make([]atomic.Int32, telemetryCap),
		accept: make([]atomic.Int32, telemetryCap),
		term:   make([]atomic.Int32, telemetryCap),
	}
}

func (t *telemetry) stats(maxIter int) []IterationStat {
	if maxIter+1 > telemetryCap {
		maxIter = telemetryCap - 1
	}
	out := make([]IterationStat, maxIter+1)
	for i := range out {
		out[i] = IterationStat{
			Candidates: int(t.cand[i].Load()),
			Accepted:   int(t.accept[i].Load()),
			Terminated: int(t.term[i].Load()),
		}
	}
	return out
}

func (t *telemetry) bump(arr []atomic.Int32, iter int) {
	if iter < telemetryCap {
		arr[iter].Add(1)
	}
}

// variant captures what differs between the undirected flavors of the
// algorithm: plain (Theorem 1.3), weighted (Theorem 4.12), and
// client-server (Theorem 4.15).
type variant struct {
	// target reports whether edge i needs covering (client edges in the
	// client-server problem, every edge otherwise).
	target func(i int) bool
	// starEdge reports whether edge i may participate in a star (server
	// edges in the client-server problem, every edge otherwise).
	starEdge func(i int) bool
	// directAdd reports whether edge i may be added directly to the
	// spanner at termination (client ∩ server edges in the client-server
	// problem, every edge otherwise).
	directAdd func(i int) bool
	// candidateOK is the minimum raw density for candidacy.
	candidateOK func(raw float64) bool
	// terminal decides termination from the 2-hop maxima of raw density
	// and incident edge weight.
	terminal func(maxRaw, maxWeight float64) bool
}

// TwoSpanner runs the paper's distributed minimum 2-spanner algorithm
// (Section 4) on the connected undirected graph g. If g is weighted the
// weighted variant (Section 4.3.2) runs, including its zero-weight edge
// pre-pass; otherwise the unweighted algorithm of Theorem 1.3 runs.
func TwoSpanner(g *graph.Graph, opts Options) (*Result, error) {
	all := func(int) bool { return true }
	v := variant{
		target:      all,
		starEdge:    all,
		directAdd:   all,
		candidateOK: func(raw float64) bool { return raw >= 1 },
		terminal:    func(maxRaw, _ float64) bool { return maxRaw <= 1 },
	}
	if g.Weighted() {
		v.candidateOK = func(raw float64) bool { return raw > 0 }
		v.terminal = func(maxRaw, maxWeight float64) bool {
			if maxWeight <= 0 {
				return true
			}
			return maxRaw <= 1/maxWeight
		}
	}
	return runUndirected(g, v, opts)
}

// ClientServerTwoSpanner runs the client-server variant (Section 4.3.3):
// cover every client edge using only server edges. Client edges with no
// possible server cover are left uncovered, matching the paper's
// convention; use span.CoverableClients to identify them.
func ClientServerTwoSpanner(g *graph.Graph, clients, servers *graph.EdgeSet, opts Options) (*Result, error) {
	if clients == nil || servers == nil {
		return nil, errors.New("core: client-server variant requires client and server edge sets")
	}
	if clients.Universe() != g.M() || servers.Universe() != g.M() {
		return nil, fmt.Errorf("core: edge set universes must equal M()=%d", g.M())
	}
	if g.Weighted() {
		return nil, errors.New("core: client-server variant is unweighted in the paper")
	}
	v := variant{
		target:      clients.Has,
		starEdge:    servers.Has,
		directAdd:   func(i int) bool { return clients.Has(i) && servers.Has(i) },
		candidateOK: func(raw float64) bool { return raw >= 0.5 },
		terminal:    func(maxRaw, _ float64) bool { return maxRaw < 0.5 },
	}
	return runUndirected(g, v, opts)
}

func runUndirected(g *graph.Graph, v variant, opts Options) (*Result, error) {
	n := g.N()
	outs := make([][]int, n)   // per-vertex incident spanner edge indices
	iters := make([]int, n)    // per-vertex iteration counts
	var fallbacks atomic.Int64 // Claim 4.4 fallback counter
	tele := newTelemetry()
	proc := func(ctx *dist.Ctx) {
		nd := newUndirectedNode(ctx, g, v, outs, iters, &fallbacks)
		nd.opts = opts
		nd.tele = tele
		nd.run()
	}
	stats, err := dist.Run(dist.Config{Graph: g, Seed: opts.Seed, MaxRounds: opts.MaxRounds, Mode: opts.ExecMode}, proc)
	if err != nil {
		return nil, err
	}
	spanner := graph.NewEdgeSet(g.M())
	for _, edges := range outs {
		for _, e := range edges {
			spanner.Add(e)
		}
	}
	maxIter := 0
	for _, it := range iters {
		if it > maxIter {
			maxIter = it
		}
	}
	return &Result{
		Spanner:      spanner,
		Cost:         g.TotalWeight(spanner),
		Stats:        *stats,
		Iterations:   maxIter,
		PerIteration: tele.stats(maxIter),
		Fallbacks:    fallbacks.Load(),
	}, nil
}

// roundCtx is the per-vertex network surface the protocol needs. It is
// satisfied by *dist.Ctx (the LOCAL implementation) and by *congestCtx
// (the fragmenting CONGEST adapter of Section 1.3's discussion).
type roundCtx interface {
	ID() int
	N() int
	Neighbors() []int
	Rand() *rand.Rand
	Send(to int, p dist.Payload)
	Broadcast(p dist.Payload)
	NextRound() []dist.Message
}

// undirectedNode is the per-vertex state of the protocol.
type undirectedNode struct {
	ctx       roundCtx
	g         *graph.Graph
	v         variant
	opts      Options
	outs      [][]int
	iters     []int
	fallbacks *atomic.Int64
	tele      *telemetry // may be nil (the CONGEST path sets its own)

	me      int
	nbrs    []int // sorted neighbor ids
	nbrSet  map[int]bool
	edgeOf  map[int]int // neighbor id -> incident edge index
	covered map[int]bool
	inSpan  map[int]bool

	wasCand  bool
	lastRho  float64
	prevStar []int // neighbor ids of last chosen star (selectable + free)
}

func newUndirectedNode(ctx roundCtx, g *graph.Graph, v variant, outs [][]int, iters []int, fb *atomic.Int64) *undirectedNode {
	me := ctx.ID()
	nd := &undirectedNode{
		ctx: ctx, g: g, v: v, outs: outs, iters: iters, fallbacks: fb,
		me:      me,
		nbrs:    ctx.Neighbors(),
		nbrSet:  make(map[int]bool),
		edgeOf:  make(map[int]int),
		covered: make(map[int]bool),
		inSpan:  make(map[int]bool),
	}
	for _, u := range nd.nbrs {
		idx, ok := g.EdgeIndex(me, u)
		if !ok {
			panic("core: neighbor without edge")
		}
		nd.nbrSet[u] = true
		nd.edgeOf[u] = idx
		if !v.target(idx) {
			// Non-target edges never need covering.
			nd.covered[u] = true
		}
		if g.Weighted() && g.Weight(idx) == 0 && v.starEdge(idx) {
			// Weighted pre-pass: all zero-weight edges join the spanner.
			nd.inSpan[u] = true
		}
	}
	return nd
}

func (nd *undirectedNode) run() {
	n := nd.ctx.N()
	for iter := 0; ; iter++ {
		nd.iters[nd.me] = iter

		// Phase G': exchange incident spanner lists, update coverage.
		nd.ctx.Broadcast(spanListMsg{nbrs: setToSorted(nd.inSpan), n: n})
		spanOf := make(map[int]map[int]bool)
		for _, m := range nd.ctx.NextRound() {
			spanOf[m.From] = sliceToSet(m.Payload.(spanListMsg).nbrs)
		}
		nd.updateCoverage(spanOf)

		// Phase A: exchange uncovered incident target edges; build H_v.
		uncov := nd.uncoveredNbrs()
		nd.ctx.Broadcast(uncovMsg{nbrs: uncov, n: n})
		var hEdges [][2]int
		for _, m := range nd.ctx.NextRound() {
			u := m.From
			for _, w := range m.Payload.(uncovMsg).nbrs {
				if nd.nbrSet[w] && u < w {
					hEdges = append(hEdges, [2]int{u, w})
				}
			}
		}
		view := nd.buildView(hEdges)
		sel, _ := view.densestStar(nil)
		raw, num, den := 0.0, 0, 1
		if sel != nil {
			if s, c := view.starValue(sel); c > 0 {
				// The canonical raw density is this division; in the
				// unweighted case (s, c) are exact integers, which the
				// CONGEST adapter ships verbatim so every vertex computes
				// bit-identical values.
				raw = s / c
				num, den = int(s+0.5), int(c+0.5)
			}
		}
		rho := RoundUpPow2(raw)
		if nd.opts.NoRounding {
			rho = raw
		}

		// Phase B: broadcast densities; compute 1-hop maxima. Rounding is
		// monotone, so the max rounded density is the rounding of the max
		// raw density and need not travel separately.
		myWmax := nd.incidentWmax()
		nd.ctx.Broadcast(densMsg{rho: rho, raw: raw, wmax: myWmax, num: num, den: den})
		hopRaw, hopW := raw, myWmax
		hopNum, hopDen := num, den
		for _, m := range nd.ctx.NextRound() {
			d := m.Payload.(densMsg)
			if d.raw > hopRaw {
				hopRaw, hopNum, hopDen = d.raw, d.num, d.den
			}
			hopW = maxf(hopW, d.wmax)
		}

		// Phase C: broadcast 1-hop maxima; compute 2-hop maxima.
		nd.ctx.Broadcast(maxMsg{rho: RoundUpPow2(hopRaw), raw: hopRaw, wmax: hopW, num: hopNum, den: hopDen})
		m2Raw, m2W := hopRaw, hopW
		for _, m := range nd.ctx.NextRound() {
			d := m.Payload.(maxMsg)
			m2Raw = maxf(m2Raw, d.raw)
			m2W = maxf(m2W, d.wmax)
		}
		m2Rho := RoundUpPow2(m2Raw)
		if nd.opts.NoRounding {
			m2Rho = m2Raw
		}

		// Termination (paper step 7): the maximal density in the
		// 2-neighborhood fell below the useful threshold. Add the remaining
		// uncovered incident edges directly and halt.
		if nd.v.terminal(m2Raw, m2W) {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.term, iter)
			}
			var added []int
			for _, u := range nd.nbrs {
				if !nd.covered[u] && nd.v.directAdd(nd.edgeOf[u]) {
					nd.inSpan[u] = true
					nd.covered[u] = true
					added = append(added, u)
				}
			}
			nd.ctx.Broadcast(termMsg{added: added, n: n})
			nd.ctx.NextRound() // flush phase D
			nd.emitOutput()
			return
		}

		// Phase D: candidates choose and announce stars.
		isCand := rho > 0 && rho >= m2Rho && nd.v.candidateOK(raw)
		var myStar []int
		mySpanCount := 0
		if isCand {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.cand, iter)
			}
			var prev []bool
			if !nd.opts.FreshStars && nd.wasCand && nd.lastRho == rho && nd.prevStar != nil {
				prev = view.maskFromIDs(nd.prevStar)
			}
			sel, fb := view.chooseStar(rho, prev)
			if fb {
				nd.fallbacks.Add(1)
			}
			myStar = view.starNeighborIDs(sel)
			spanned, _ := view.starValue(sel)
			mySpanCount = int(spanned + 0.5)
			nd.ctx.Broadcast(starMsg{star: myStar, r: 1 + nd.ctx.Rand().Int63n(1<<62), n: n})
			nd.wasCand, nd.lastRho = true, rho
			nd.prevStar = myStar
		} else {
			nd.wasCand = false
			nd.prevStar = nil
		}

		// Phase D inbox: neighbor terminations and candidate stars.
		type candidate struct {
			star map[int]bool
			r    int64
		}
		cands := make(map[int]candidate)
		for _, m := range nd.ctx.NextRound() {
			switch p := m.Payload.(type) {
			case termMsg:
				for _, w := range p.added {
					if w == nd.me {
						nd.inSpan[m.From] = true
						nd.covered[m.From] = true
					}
				}
			case starMsg:
				cands[m.From] = candidate{star: sliceToSet(p.star), r: p.r}
			}
		}

		// Phase E: each owned uncovered edge votes for the first candidate
		// (by (r, id)) that 2-spans it.
		votes := make(map[int][][2]int)
		for _, u := range nd.nbrs {
			if nd.covered[u] || nd.me > u {
				continue // not an owner, or nothing to vote for
			}
			bestV, bestR := -1, int64(0)
			for vid, c := range cands {
				if !c.star[nd.me] || !c.star[u] {
					continue
				}
				if bestV < 0 || c.r < bestR || (c.r == bestR && vid < bestV) {
					bestV, bestR = vid, c.r
				}
			}
			if bestV >= 0 {
				votes[bestV] = append(votes[bestV], [2]int{nd.me, u})
			}
		}
		for vid, es := range votes {
			nd.ctx.Send(vid, voteMsg{edges: es, n: n})
		}

		// Phase E inbox: my votes (if candidate); accept if >= |C_v|/8.
		myVotes := 0
		for _, m := range nd.ctx.NextRound() {
			myVotes += len(m.Payload.(voteMsg).edges)
		}
		if isCand && nd.opts.voteDenominator()*myVotes >= mySpanCount && mySpanCount > 0 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.accept, iter)
			}
			for _, u := range myStar {
				nd.inSpan[u] = true
			}
			nd.ctx.Broadcast(acceptMsg{star: myStar, n: n})
		}

		// Phase F inbox: accepted stars of neighbors.
		for _, m := range nd.ctx.NextRound() {
			p, ok := m.Payload.(acceptMsg)
			if !ok {
				continue
			}
			for _, w := range p.star {
				if w == nd.me {
					nd.inSpan[m.From] = true
				}
			}
		}
	}
}

// updateCoverage marks incident target edges covered when the spanner
// contains them or a 2-path around them.
func (nd *undirectedNode) updateCoverage(spanOf map[int]map[int]bool) {
	for _, u := range nd.nbrs {
		if nd.covered[u] {
			continue
		}
		if nd.inSpan[u] {
			nd.covered[u] = true
			continue
		}
		for x, viaX := range spanOf {
			if nd.inSpan[x] && viaX[u] {
				nd.covered[u] = true
				break
			}
		}
	}
}

func (nd *undirectedNode) uncoveredNbrs() []int {
	var out []int
	for _, u := range nd.nbrs {
		if !nd.covered[u] {
			out = append(out, u)
		}
	}
	return out
}

// buildView assembles the localView: selectable star edges with their
// costs, free (zero-weight) star edges, and the uncovered H_v edges.
func (nd *undirectedNode) buildView(hEdges [][2]int) *localView {
	selectable := make(map[int]float64)
	var free []int
	for _, u := range nd.nbrs {
		idx := nd.edgeOf[u]
		if !nd.v.starEdge(idx) {
			continue
		}
		w := nd.g.Weight(idx)
		if w == 0 {
			free = append(free, u)
		} else {
			selectable[u] = w
		}
	}
	return newLocalView(selectable, free, hEdges)
}

// incidentWmax returns the largest weight among incident edges (1 for
// unweighted graphs), feeding the weighted termination rule.
func (nd *undirectedNode) incidentWmax() float64 {
	w := 0.0
	for _, u := range nd.nbrs {
		w = maxf(w, nd.g.Weight(nd.edgeOf[u]))
	}
	return w
}

func (nd *undirectedNode) emitOutput() {
	var out []int
	for u, in := range nd.inSpan {
		if in {
			out = append(out, nd.edgeOf[u])
		}
	}
	sort.Ints(out)
	nd.outs[nd.me] = out
}

func setToSorted(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k, v := range set {
		if v {
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

func sliceToSet(s []int) map[int]bool {
	set := make(map[int]bool, len(s))
	for _, x := range s {
		set[x] = true
	}
	return set
}

func maxf(a, b float64) float64 {
	if a >= b {
		return a
	}
	return b
}
