package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Options configures a run of the distributed algorithms.
type Options struct {
	// Seed drives all per-vertex randomness; runs are deterministic
	// functions of (instance, Seed).
	Seed int64
	// MaxRounds aborts runaway executions; zero uses the engine default.
	MaxRounds int
	// ExecMode selects the engine's scheduling strategy (barrier, event,
	// or the goroutine-free step engine); the zero value resolves to
	// dist.ModeStep — the algorithms are state machines, which the step
	// engine runs with no per-vertex goroutine. Results are identical in
	// every mode — only wall-clock cost differs.
	ExecMode dist.Mode
	// RoundHook, when non-nil, receives the engine's per-round activity
	// snapshots (see dist.Config.OnRound) — the activity curve of the run.
	RoundHook func(dist.RoundActivity)
	// Cancel, when non-nil, aborts the run at the next round boundary
	// once closed (see dist.Config.Cancel); timed-out sweeps use it so an
	// abandoned run actually stops.
	Cancel <-chan struct{}
	// Tracer, when non-nil, receives the run's execution narration — the
	// deterministic logical transcript and the wall-clock timing channel
	// (see dist.Config.Tracer). Zero cost when nil.
	Tracer dist.Tracer
	// Shards, when positive, runs the protocol distributed across that
	// many shard workers over an in-process transport (see
	// dist.Config.Shards). Results are bit-identical to Shards == 0 with
	// the step engine; ExecMode must be ModeAuto or ModeStep.
	Shards int

	// VoteDenominator is an ablation knob for the acceptance rule: a
	// candidate star is accepted when votes >= |C_v| / VoteDenominator.
	// Zero means the paper's 8. Smaller values accept fewer stars per
	// iteration (more rounds); larger values accept stars with heavy
	// vote overlap (worse ratio constant).
	VoteDenominator int
	// FreshStars is an ablation knob disabling the Section 4.1 monotone
	// star-choice rule: every candidacy picks a fresh star. Claim 4.4's
	// potential argument — the basis of the O(log n log Δ) round bound —
	// relies on the rule; the ablation measures what it buys.
	FreshStars bool
	// NoRounding is an ablation knob skipping the power-of-two density
	// rounding: candidacy then requires being an exact local maximum.
	// Rounding is what caps the number of density levels at O(log Δ); the
	// ablation measures the cost of exact comparisons.
	NoRounding bool
}

func (o Options) voteDenominator() int {
	if o.VoteDenominator <= 0 {
		return 8
	}
	return o.VoteDenominator
}

// IterationStat is per-iteration telemetry of a run.
type IterationStat struct {
	// Candidates is the number of vertices whose rounded density was
	// maximal in their 2-neighborhood this iteration.
	Candidates int
	// Accepted is the number of candidate stars that reached the voting
	// threshold and joined the spanner.
	Accepted int
	// Terminated is the number of vertices that halted this iteration.
	Terminated int
}

// Result reports the outcome of a distributed spanner construction.
type Result struct {
	// Spanner is the union of the edges output by all vertices.
	Spanner *graph.EdgeSet
	// Cost is the spanner's total weight (edge count when unweighted).
	Cost float64
	// Stats carries the engine's round/message/bit measurements, including
	// the ActiveSteps/ParkedSteps activity profile.
	Stats dist.Stats
	// Iterations is the maximum number of algorithm iterations any vertex
	// executed (each iteration is a constant number of rounds). Parked
	// vertices skip iterations, so this counts the longest active
	// participation.
	Iterations int
	// PerIteration is the telemetry of each iteration, in order.
	PerIteration []IterationStat
	// Fallbacks counts uses of the degenerate star-choice fallback of
	// Section 4.1, which Claim 4.4 proves is never taken. It should be 0;
	// tests assert this invariant.
	Fallbacks int64
}

// telemetry collects per-iteration counters across the concurrently
// running vertices. Slices are fixed-size; iterations beyond the cap are
// executed but not recorded (far beyond any w.h.p. bound).
type telemetry struct {
	cand, accept, term []atomic.Int32
}

const telemetryCap = 4096

func newTelemetry() *telemetry {
	return &telemetry{
		cand:   make([]atomic.Int32, telemetryCap),
		accept: make([]atomic.Int32, telemetryCap),
		term:   make([]atomic.Int32, telemetryCap),
	}
}

func (t *telemetry) stats(maxIter int) []IterationStat {
	if maxIter+1 > telemetryCap {
		maxIter = telemetryCap - 1
	}
	out := make([]IterationStat, maxIter+1)
	for i := range out {
		out[i] = IterationStat{
			Candidates: int(t.cand[i].Load()),
			Accepted:   int(t.accept[i].Load()),
			Terminated: int(t.term[i].Load()),
		}
	}
	return out
}

func (t *telemetry) bump(arr []atomic.Int32, iter int) {
	if iter < telemetryCap {
		arr[iter].Add(1)
	}
}

// variant captures what differs between the undirected flavors of the
// algorithm: plain (Theorem 1.3), weighted (Theorem 4.12), and
// client-server (Theorem 4.15).
type variant struct {
	// target reports whether edge i needs covering (client edges in the
	// client-server problem, every edge otherwise).
	target func(i int) bool
	// starEdge reports whether edge i may participate in a star (server
	// edges in the client-server problem, every edge otherwise).
	starEdge func(i int) bool
	// directAdd reports whether edge i may be added directly to the
	// spanner at termination (client ∩ server edges in the client-server
	// problem, every edge otherwise).
	directAdd func(i int) bool
	// candidateOK is the minimum raw density for candidacy.
	candidateOK func(raw float64) bool
	// terminal decides termination from the 2-hop maxima of raw density
	// and incident edge weight.
	terminal func(maxRaw, maxWeight float64) bool
}

// TwoSpanner runs the paper's distributed minimum 2-spanner algorithm
// (Section 4) on the connected undirected graph g. If g is weighted the
// weighted variant (Section 4.3.2) runs, including its zero-weight edge
// pre-pass; otherwise the unweighted algorithm of Theorem 1.3 runs.
func TwoSpanner(g *graph.Graph, opts Options) (*Result, error) {
	return runUndirected(g, twoSpannerVariant(g.Weighted()), opts)
}

// twoSpannerVariant is the plain (Theorem 1.3) or weighted (Theorem
// 4.12) flavor of the undirected protocol.
func twoSpannerVariant(weighted bool) variant {
	all := func(int) bool { return true }
	v := variant{
		target:      all,
		starEdge:    all,
		directAdd:   all,
		candidateOK: func(raw float64) bool { return raw >= 1 },
		terminal:    func(maxRaw, _ float64) bool { return maxRaw <= 1 },
	}
	if weighted {
		v.candidateOK = func(raw float64) bool { return raw > 0 }
		v.terminal = func(maxRaw, maxWeight float64) bool {
			if maxWeight <= 0 {
				return true
			}
			return maxRaw <= 1/maxWeight
		}
	}
	return v
}

// ClientServerTwoSpanner runs the client-server variant (Section 4.3.3):
// cover every client edge using only server edges. Client edges with no
// possible server cover are left uncovered, matching the paper's
// convention; use span.CoverableClients to identify them.
func ClientServerTwoSpanner(g *graph.Graph, clients, servers *graph.EdgeSet, opts Options) (*Result, error) {
	v, err := clientServerVariant(g, clients, servers)
	if err != nil {
		return nil, err
	}
	return runUndirected(g, v, opts)
}

// clientServerVariant validates the edge sets and builds the Section
// 4.3.3 flavor of the undirected protocol.
func clientServerVariant(g *graph.Graph, clients, servers *graph.EdgeSet) (variant, error) {
	if clients == nil || servers == nil {
		return variant{}, errors.New("core: client-server variant requires client and server edge sets")
	}
	if clients.Universe() != g.M() || servers.Universe() != g.M() {
		return variant{}, fmt.Errorf("core: edge set universes must equal M()=%d", g.M())
	}
	if g.Weighted() {
		return variant{}, errors.New("core: client-server variant is unweighted in the paper")
	}
	return variant{
		target:      clients.Has,
		starEdge:    servers.Has,
		directAdd:   func(i int) bool { return clients.Has(i) && servers.Has(i) },
		candidateOK: func(raw float64) bool { return raw >= 0.5 },
		terminal:    func(maxRaw, _ float64) bool { return maxRaw < 0.5 },
	}, nil
}

// uRun owns the cross-vertex collectors of one undirected-protocol run:
// the per-vertex outputs, iteration counts, Claim 4.4 fallback counter,
// and iteration telemetry the machine factory closes over. It is the
// state behind both the local runners and the exported shard programs
// (the distributed runner reads outputs through uRun.output).
type uRun struct {
	g         *graph.Graph
	outs      [][]int // per-vertex incident spanner edge indices
	iters     []int   // per-vertex iteration counts
	fallbacks atomic.Int64
	tele      *telemetry
}

func newURun(g *graph.Graph) *uRun {
	n := g.N()
	return &uRun{g: g, outs: make([][]int, n), iters: make([]int, n), tele: newTelemetry()}
}

// factory builds the per-vertex machines of the undirected protocol.
func (r *uRun) factory(v variant, opts Options) func(*dist.Ctx) dist.Machine {
	return func(ctx *dist.Ctx) dist.Machine {
		nd := newUndirectedNode(ctx, r.g, v, r.outs, r.iters, &r.fallbacks)
		nd.opts = opts
		nd.tele = r.tele
		return dist.NewPhasedMachine(nd)
	}
}

func (r *uRun) output(v int) []int { return r.outs[v] }

func (r *uRun) result(stats *dist.Stats) *Result {
	return assembleResult(r.outs, r.iters, r.g.M(), r.g.TotalWeight, r.tele, r.fallbacks.Load(), stats)
}

// assembleResult folds the per-vertex collectors into a Result — shared
// by the undirected, CONGEST, and directed runners.
func assembleResult(outs [][]int, iters []int, m int, total func(*graph.EdgeSet) float64,
	tele *telemetry, fallbacks int64, stats *dist.Stats) *Result {
	spanner := graph.NewEdgeSet(m)
	for _, edges := range outs {
		for _, e := range edges {
			spanner.Add(e)
		}
	}
	maxIter := 0
	for _, it := range iters {
		if it > maxIter {
			maxIter = it
		}
	}
	return &Result{
		Spanner:      spanner,
		Cost:         total(spanner),
		Stats:        *stats,
		Iterations:   maxIter,
		PerIteration: tele.stats(maxIter),
		Fallbacks:    fallbacks,
	}
}

func runUndirected(g *graph.Graph, v variant, opts Options) (*Result, error) {
	ru := newURun(g)
	stats, err := dist.RunMachines(dist.Config{
		Graph: g, Seed: opts.Seed, MaxRounds: opts.MaxRounds,
		Mode: opts.ExecMode, OnRound: opts.RoundHook, Cancel: opts.Cancel,
		Tracer: opts.Tracer, Shards: opts.Shards,
	}, ru.factory(v, opts))
	if err != nil {
		return nil, err
	}
	return ru.result(stats), nil
}

// roundCtx is the per-vertex network surface the protocol needs: vertex
// identity plus the record send primitive. It is satisfied by *dist.Ctx
// (the LOCAL implementation) and by *congestCtx (the fragmenting CONGEST
// adapter of Section 1.3's discussion). The protocols never block on it —
// they are PhasedPrograms whose round boundaries the engine drives — so
// the blocking receive primitives live outside this interface.
type roundCtx interface {
	ID() int
	N() int
	Neighbors() []int
	Rand() *rand.Rand
	SendRec(to int, r dist.Rec, bits int)
}

// uPhase indexes the seven rounds of one iteration of the undirected
// protocol. Each phase has disjoint record tags, which is how a vertex
// woken from Recv re-identifies the network's current phase.
type uPhase int

const (
	phSpan   uPhase = iota + 1 // round 1 (G'): spanListMsg deltas
	phUncov                    // round 2 (A): uncovMsg init/removals
	phDens                     // round 3 (B): densMsg deltas
	phMax                      // round 4 (C): maxMsg deltas
	phStar                     // round 5 (D): starMsg / termMsg
	phVote                     // round 6 (E): voteMsg (candidates only)
	phAccept                   // round 7 (F): acceptMsg
)

// classifyUndirected maps a wake inbox to its phase by record tag. One
// inbox is always one phase: every sender is phase-aligned and each
// phase's tags are disjoint.
func classifyUndirected(msgs []dist.InRec) uPhase {
	switch msgs[0].Tag {
	case tagSpan:
		return phSpan
	case tagUncov:
		return phUncov
	case tagDens:
		return phDens
	case tagMax:
		return phMax
	case tagStar, tagTerm:
		return phStar
	case tagVote:
		return phVote
	case tagAccept:
		return phAccept
	}
	panic("core: unclassifiable wake record tag")
}

// seekPos is dist.SeekPos: the monotone sender-position merge scan over
// the sorted neighbor list that replaces per-message map lookups.
func seekPos(nbrs []int, j, from int) int { return dist.SeekPos(nbrs, j, from) }

// posOf is the cold-path id -> position lookup (binary search) for ids
// that must be neighbors; it panics on a miss rather than silently
// resolving to the insertion slot. Use idxOf when absence is legitimate.
func posOf(nbrs []int, id int) int {
	i, ok := idxOf(nbrs, id)
	if !ok {
		panic("core: id is not a neighbor")
	}
	return i
}

// containsSorted reports whether the sorted slice s contains x.
func containsSorted(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// mergeSorted merges the sorted, duplicate-free slice add into the sorted
// slice dst in place (merging from the back after growing), returning the
// merged slice. add may alias an inbox arena; its values are copied.
func mergeSorted(dst, add []int) []int {
	if len(add) == 0 {
		return dst
	}
	if len(dst) == 0 || dst[len(dst)-1] < add[0] {
		return append(dst, add...)
	}
	i, j := len(dst)-1, len(add)-1
	dst = append(dst, add...)
	for k := len(dst) - 1; j >= 0; k-- {
		if i >= 0 && dst[i] > add[j] {
			dst[k] = dst[i]
			i--
		} else {
			dst[k] = add[j]
			j--
		}
	}
	return dst
}

// removeSorted deletes the sorted values of del from the sorted slice dst
// in place, returning the shortened slice.
func removeSorted(dst, del []int) []int {
	if len(del) == 0 || len(dst) == 0 {
		return dst
	}
	out := dst[:0]
	k := 0
	for _, v := range dst {
		if k < len(del) && del[k] == v {
			k++
			continue
		}
		out = append(out, v)
	}
	return out
}

// densVal is a neighbor's last announced density or 1-hop maximum: the
// exact rational the CONGEST adapter ships, plus the weight maximum
// riding along for the weighted termination rule (the static incident
// maximum in density announcements, the 1-hop fold in maxima).
type densVal struct {
	raw      float64
	num, den int
	wmax     float64
}

// candRec is one announced star this iteration: the candidate's id, its
// sorted star neighbor ids, and its random rank.
type candRec struct {
	from int
	star []int
	r    int64
}

// undirectedNode is the per-vertex state of the protocol. All
// per-neighbor state is held in flat slices indexed by the neighbor's
// position in the sorted neighbor list: inbox decoding resolves sender
// positions with a merge scan (seekPos), and the folds and broadcasts
// scan slices with no map in sight.
type undirectedNode struct {
	ctx       roundCtx
	g         *graph.Graph
	v         variant
	opts      Options
	outs      [][]int
	iters     []int
	fallbacks *atomic.Int64
	tele      *telemetry // may be nil (tests construct nodes directly)

	me      int
	nbrs    []int // sorted neighbor ids
	edgeIdx []int // incident edge index per position
	covered []bool
	inSpan  []bool
	myWmax  float64

	// Monotone star-choice state (Section 4.1).
	wasCand  bool
	lastRho  float64
	prevStar []int // neighbor ids of last chosen star (selectable + free)

	// Accumulated per-neighbor state, kept in sync by deltas, all indexed
	// by neighbor position. A live neighbor's entry always equals what the
	// classic all-broadcast execution would have received from it this
	// iteration. spanOf/uncovOf are sorted id lists maintained by
	// merge/remove — the flat replacement for the old map-of-sets fold.
	alive     []bool
	spanOf    [][]int // live neighbor -> its incident spanner edges (sorted ids)
	uncovOf   [][]int // live neighbor -> its uncovered target edges (sorted ids)
	densOf    []densVal
	densKnown []bool
	hopOf     []densVal
	hopKnown  []bool

	// Own derived quantities and the change-tracking behind the deltas.
	pendingSpan    []int  // inSpan additions not yet announced (round 1)
	announcedUncov []bool // per position: uncovered edge announced, removal owed when covered
	sentUncovInit  bool
	view           *localView
	viewDirty      bool // uncovOf changed since the view was built
	hopDirty       bool // own density, a neighbor density, or liveness changed
	m2Dirty        bool // own 1-hop max, a neighbor 1-hop max, or liveness changed
	raw            float64
	num, den       int
	rho            float64
	densSent       bool
	lastDens       densVal
	hopRaw         float64
	hopNum, hopDen int
	hopW           float64
	hopSent        bool
	lastHop        densVal
	m2Raw, m2Rho   float64
	m2W            float64

	// Per-iteration scratch.
	iter        int
	isCand      bool
	myStar      []int
	mySpanCount int
	cands       []candRec
	myVotes     int
}

func newUndirectedNode(ctx roundCtx, g *graph.Graph, v variant, outs [][]int, iters []int, fb *atomic.Int64) *undirectedNode {
	me := ctx.ID()
	nd := &undirectedNode{
		ctx: ctx, g: g, v: v, outs: outs, iters: iters, fallbacks: fb,
		me:        me,
		nbrs:      ctx.Neighbors(),
		viewDirty: true,
		hopDirty:  true,
		m2Dirty:   true,
	}
	deg := len(nd.nbrs)
	nd.edgeIdx = make([]int, deg)
	nd.covered = make([]bool, deg)
	nd.inSpan = make([]bool, deg)
	nd.alive = make([]bool, deg)
	nd.spanOf = make([][]int, deg)
	nd.uncovOf = make([][]int, deg)
	nd.densOf = make([]densVal, deg)
	nd.densKnown = make([]bool, deg)
	nd.hopOf = make([]densVal, deg)
	nd.hopKnown = make([]bool, deg)
	nd.announcedUncov = make([]bool, deg)
	for i, u := range nd.nbrs {
		idx, ok := g.EdgeIndex(me, u)
		if !ok {
			panic("core: neighbor without edge")
		}
		nd.edgeIdx[i] = idx
		nd.alive[i] = true
		if !v.target(idx) {
			// Non-target edges never need covering.
			nd.covered[i] = true
		}
		if g.Weighted() && g.Weight(idx) == 0 && v.starEdge(idx) {
			// Weighted pre-pass: all zero-weight edges join the spanner.
			nd.setInSpan(i)
		}
		nd.myWmax = maxf(nd.myWmax, g.Weight(idx))
	}
	return nd
}

// setInSpan records the edge to the neighbor at position i as a spanner
// member and queues the round-1 delta announcing it.
func (nd *undirectedNode) setInSpan(i int) {
	if !nd.inSpan[i] {
		nd.inSpan[i] = true
		nd.pendingSpan = append(nd.pendingSpan, nd.nbrs[i])
	}
}

// bcast sends the record to every live neighbor: terminated vertices are
// pruned from all broadcasts. The record's Ints tail is staged once in
// the sender's arena and shared across the fan-out.
func (nd *undirectedNode) bcast(r dist.Rec, bits int) {
	for i, u := range nd.nbrs {
		if nd.alive[i] {
			nd.ctx.SendRec(u, r, bits)
		}
	}
}

// parkable reports whether this vertex owes the network nothing in the
// coming iteration: no pending deltas, every fold clean, and no
// candidacy. Such a vertex parks in Recv; any input that could change its
// answers arrives as a delivery and wakes it into the right phase.
func (nd *undirectedNode) parkable() bool {
	if len(nd.pendingSpan) > 0 || nd.viewDirty || nd.hopDirty || nd.m2Dirty {
		return false
	}
	for i := range nd.announcedUncov {
		if nd.announcedUncov[i] && nd.covered[i] {
			return false // owes an uncovered-list removal
		}
	}
	// Candidacy is a pure function of the clean folds.
	return !(nd.rho > 0 && nd.rho >= nd.m2Rho && nd.v.candidateOK(nd.raw))
}

// The node implements dist.PhasedProgram: the engine (via
// dist.NewPhasedMachine) drives the iteration grid — parking between
// iterations when parkable, classifying wake inboxes into the right
// phase, and spending the terminal flush round — while the node supplies
// only the per-phase emit/process logic.

// Phases implements dist.PhasedProgram.
func (nd *undirectedNode) Phases() (int, int) { return int(phSpan), int(phAccept) }

// Begin implements dist.PhasedProgram: record and bump the iteration
// count, reset the per-iteration scratch.
func (nd *undirectedNode) Begin() {
	nd.iters[nd.me] = nd.iter
	nd.iter++
	nd.isCand = false
	nd.myStar = nil
	nd.mySpanCount = 0
	nd.cands = nd.cands[:0]
	nd.myVotes = 0
}

// Emit implements dist.PhasedProgram.
func (nd *undirectedNode) Emit(ph int) bool { return nd.emit(uPhase(ph)) }

// Process implements dist.PhasedProgram. The undirected protocol halts
// via the terminal announcement in emit, never mid-iteration.
func (nd *undirectedNode) Process(ph int, recs []dist.InRec) bool {
	nd.process(uPhase(ph), recs)
	return false
}

// Parkable implements dist.PhasedProgram.
func (nd *undirectedNode) Parkable() bool { return nd.parkable() }

// ParkReset implements dist.PhasedProgram: parked iterations are not
// candidate iterations, so the monotone-star continuation resets exactly
// as it would have in the spinning execution.
func (nd *undirectedNode) ParkReset() { nd.wasCand, nd.prevStar = false, nil }

// Classify implements dist.PhasedProgram.
func (nd *undirectedNode) Classify(recs []dist.InRec) int { return int(classifyUndirected(recs)) }

// Halt implements dist.PhasedProgram; unreachable (Process never halts).
func (nd *undirectedNode) Halt() {}

// Terminal implements dist.PhasedProgram: output after the flush round
// that committed the termination announcement.
func (nd *undirectedNode) Terminal() { nd.emitOutput() }

// Quiesce implements dist.PhasedProgram.
func (nd *undirectedNode) Quiesce() { nd.finalizeQuiesced() }

// finalizeQuiesced handles the quiescence release (Recv ok=false): no
// future round can cover anything, so the remaining uncovered incident
// target edges are added directly — the same direct-add the paper's
// termination step performs — and the vertex outputs and halts. With the
// paper's termination rule this is a safety net: a parked vertex's
// 2-neighborhood always contains an active candidate until the vertex
// itself becomes terminal, so runs normally end by explicit termination.
func (nd *undirectedNode) finalizeQuiesced() {
	for i := range nd.nbrs {
		if !nd.covered[i] && nd.v.directAdd(nd.edgeIdx[i]) {
			nd.inSpan[i] = true
			nd.covered[i] = true
		}
	}
	if nd.tele != nil {
		it := nd.iter
		if it > 0 {
			it--
		}
		nd.tele.bump(nd.tele.term, it)
	}
	nd.emitOutput()
}

// emit queues the sends of phase ph (committed by the yield that returns
// ph's inbox) and performs the fold recomputations scheduled at ph. It
// returns true when the vertex terminated (phStar only).
func (nd *undirectedNode) emit(ph uPhase) bool {
	switch ph {
	case phSpan:
		if len(nd.pendingSpan) > 0 {
			sort.Ints(nd.pendingSpan)
			m := spanListMsg{nbrs: nd.pendingSpan, n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
			nd.pendingSpan = nil
		}
	case phUncov:
		nd.emitUncov()
	case phDens:
		if nd.viewDirty {
			nd.rebuildView()
		}
		dv := densVal{raw: nd.raw, num: nd.num, den: nd.den, wmax: nd.myWmax}
		if !nd.densSent || dv != nd.lastDens {
			m := densMsg{rho: nd.rho, raw: nd.raw, wmax: nd.myWmax, num: nd.num, den: nd.den}
			nd.bcast(m.rec(), m.Bits())
			nd.densSent, nd.lastDens = true, dv
		}
	case phMax:
		if nd.hopDirty {
			nd.refoldHop()
		}
		hv := densVal{raw: nd.hopRaw, num: nd.hopNum, den: nd.hopDen, wmax: nd.hopW}
		if !nd.hopSent || hv != nd.lastHop {
			m := maxMsg{rho: RoundUpPow2(nd.hopRaw), raw: nd.hopRaw, wmax: nd.hopW, num: nd.hopNum, den: nd.hopDen}
			nd.bcast(m.rec(), m.Bits())
			nd.hopSent, nd.lastHop = true, hv
		}
	case phStar:
		if nd.m2Dirty {
			nd.refoldM2()
		}
		// Termination (paper step 7): the maximal density in the
		// 2-neighborhood fell below the useful threshold. Add the
		// remaining uncovered incident edges directly and halt; the
		// termMsg doubles as the death notice that prunes this vertex
		// from its peers' broadcasts.
		if nd.v.terminal(nd.m2Raw, nd.m2W) {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.term, nd.iter-1)
			}
			var added []int
			for i, u := range nd.nbrs {
				if !nd.covered[i] && nd.v.directAdd(nd.edgeIdx[i]) {
					nd.inSpan[i] = true
					nd.covered[i] = true
					added = append(added, u)
				}
			}
			// The phased machine spends the flush round committing this
			// announcement, then calls Terminal to output.
			m := termMsg{added: added, n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
			return true
		}
		// Candidacy and star choice (Section 4.1).
		nd.isCand = nd.rho > 0 && nd.rho >= nd.m2Rho && nd.v.candidateOK(nd.raw)
		if nd.isCand {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.cand, nd.iter-1)
			}
			var prev []bool
			if !nd.opts.FreshStars && nd.wasCand && nd.lastRho == nd.rho && nd.prevStar != nil {
				prev = nd.view.maskFromIDs(nd.prevStar)
			}
			sel, fb := nd.view.chooseStar(nd.rho, prev)
			if fb {
				nd.fallbacks.Add(1)
			}
			nd.myStar = nd.view.starNeighborIDs(sel)
			spanned, _ := nd.view.starValue(sel)
			nd.mySpanCount = int(spanned + 0.5)
			m := starMsg{star: nd.myStar, r: 1 + nd.ctx.Rand().Int63n(1<<62), n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
			nd.wasCand, nd.lastRho = true, nd.rho
			nd.prevStar = nd.myStar
		} else {
			nd.wasCand = false
			nd.prevStar = nil
		}
	case phVote:
		// Each owned uncovered edge votes for the first candidate (by
		// (r, id)) that 2-spans it.
		var votes map[int][]int
		for i, u := range nd.nbrs {
			if nd.covered[i] || nd.me > u {
				continue // not an owner, or nothing to vote for
			}
			bestV, bestR := -1, int64(0)
			for ci := range nd.cands {
				c := &nd.cands[ci]
				if !containsSorted(c.star, nd.me) || !containsSorted(c.star, u) {
					continue
				}
				if bestV < 0 || c.r < bestR || (c.r == bestR && c.from < bestV) {
					bestV, bestR = c.from, c.r
				}
			}
			if bestV >= 0 {
				if votes == nil {
					votes = make(map[int][]int)
				}
				votes[bestV] = append(votes[bestV], nd.me, u)
			}
		}
		for _, vid := range sortedKeys(votes) {
			m := voteMsg{pairs: votes[vid], n: nd.ctx.N()}
			nd.ctx.SendRec(vid, m.rec(), m.Bits())
		}
	case phAccept:
		if nd.isCand && nd.opts.voteDenominator()*nd.myVotes >= nd.mySpanCount && nd.mySpanCount > 0 {
			if nd.tele != nil {
				nd.tele.bump(nd.tele.accept, nd.iter-1)
			}
			for _, u := range nd.myStar {
				nd.setInSpan(posOf(nd.nbrs, u))
			}
			m := acceptMsg{star: nd.myStar, n: nd.ctx.N()}
			nd.bcast(m.rec(), m.Bits())
		}
	}
	return false
}

// sortedKeys returns the keys of a small map in ascending order, for a
// deterministic send order.
func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// emitUncov announces the uncovered incident target edges: the full list
// once at start-up, removals afterwards. Receivers maintain the
// accumulated set, so the network-wide picture matches the classic
// full-rebroadcast execution exactly.
func (nd *undirectedNode) emitUncov() {
	if !nd.sentUncovInit {
		nd.sentUncovInit = true
		var full []int
		for i, u := range nd.nbrs {
			if !nd.covered[i] {
				full = append(full, u)
				nd.announcedUncov[i] = true
			}
		}
		m := uncovMsg{nbrs: full, full: true, n: nd.ctx.N()}
		nd.bcast(m.rec(), m.Bits())
		return
	}
	var dels []int
	for i, u := range nd.nbrs {
		if nd.announcedUncov[i] && nd.covered[i] {
			dels = append(dels, u)
			nd.announcedUncov[i] = false
		}
	}
	if len(dels) == 0 {
		return
	}
	m := uncovMsg{nbrs: dels, n: nd.ctx.N()}
	nd.bcast(m.rec(), m.Bits())
}

// process decodes the records of phase ph in place: sender positions come
// from the seekPos merge scan, scalar fields are read straight off the
// record, and list tails are folded into the flat per-neighbor slices.
func (nd *undirectedNode) process(ph uPhase, inbox []dist.InRec) {
	j := 0
	switch ph {
	case phSpan:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagSpan {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			nd.spanOf[j] = mergeSorted(nd.spanOf[j], r.Ints)
		}
		nd.updateCoverage()
	case phUncov:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagUncov {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			if r.Flag != 0 {
				nd.uncovOf[j] = append(nd.uncovOf[j][:0], r.Ints...)
			} else {
				nd.uncovOf[j] = removeSorted(nd.uncovOf[j], r.Ints)
			}
			nd.viewDirty = true
		}
	case phDens:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagDens {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			nd.densOf[j] = densVal{raw: r.F1, num: int(r.A), den: int(r.B), wmax: r.F2}
			nd.densKnown[j] = true
			nd.hopDirty = true
		}
	case phMax:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagMax {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			if !nd.alive[j] {
				continue
			}
			nd.hopOf[j] = densVal{raw: r.F1, num: int(r.A), den: int(r.B), wmax: r.F2}
			nd.hopKnown[j] = true
			nd.m2Dirty = true
		}
	case phStar:
		for i := range inbox {
			r := &inbox[i]
			j = seekPos(nd.nbrs, j, r.From)
			switch r.Tag {
			case tagTerm:
				nd.processDeath(j, r.Ints)
			case tagStar:
				// The star list is retained across the iteration; copy it
				// out of the arena.
				nd.cands = append(nd.cands, candRec{
					from: r.From,
					star: append([]int(nil), r.Ints...),
					r:    r.A,
				})
			}
		}
	case phVote:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag == tagVote {
				nd.myVotes += len(r.Ints) / 2
			}
		}
	case phAccept:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag != tagAccept {
				continue
			}
			j = seekPos(nd.nbrs, j, r.From)
			for _, w := range r.Ints {
				if w == nd.me {
					nd.setInSpan(j)
				}
			}
		}
	}
}

// processDeath handles the termination announcement of the neighbor at
// position i: record the direct-added edges naming this vertex, then
// prune the sender from every accumulated fold — exactly the information
// the classic execution loses when a terminated vertex stops
// broadcasting.
func (nd *undirectedNode) processDeath(i int, added []int) {
	for _, w := range added {
		if w == nd.me {
			nd.setInSpan(i)
			nd.covered[i] = true
		}
	}
	nd.alive[i] = false
	nd.densKnown[i] = false
	nd.hopKnown[i] = false
	nd.spanOf[i] = nil
	if len(nd.uncovOf[i]) > 0 {
		nd.viewDirty = true
	}
	nd.uncovOf[i] = nil
	nd.hopDirty = true
	nd.m2Dirty = true
}

// updateCoverage marks incident target edges covered when the spanner
// contains them or a 2-path around them through a live neighbor's
// announced spanner edges.
func (nd *undirectedNode) updateCoverage() {
	for i, u := range nd.nbrs {
		if nd.covered[i] {
			continue
		}
		if nd.inSpan[i] {
			nd.covered[i] = true
			continue
		}
		for x := range nd.nbrs {
			if nd.inSpan[x] && nd.alive[x] && containsSorted(nd.spanOf[x], u) {
				nd.covered[i] = true
				break
			}
		}
	}
}

// rebuildView reassembles the localView from the accumulated uncovered
// sets and recomputes the densest-star density (the expensive flow-oracle
// step — now run only when an input actually changed).
func (nd *undirectedNode) rebuildView() {
	nd.viewDirty = false
	nd.view = nd.buildView(nd.hEdges())
	sel, _ := nd.view.densestStar(nil)
	raw, num, den := 0.0, 0, 1
	if sel != nil {
		if s, c := nd.view.starValue(sel); c > 0 {
			// The canonical raw density is this division; in the
			// unweighted case (s, c) are exact integers, which the
			// CONGEST adapter ships verbatim so every vertex computes
			// bit-identical values.
			raw = s / c
			num, den = int(s+0.5), int(c+0.5)
		}
	}
	if raw != nd.raw || num != nd.num || den != nd.den {
		nd.hopDirty = true
	}
	nd.raw, nd.num, nd.den = raw, num, den
	nd.rho = RoundUpPow2(raw)
	if nd.opts.NoRounding {
		nd.rho = raw
	}
}

// hEdges lists the uncovered 2-spannable edges between neighbors, in the
// same (sender ascending, endpoint ascending, owner-side only) order the
// classic execution reads them off its round-2 inbox. The accumulated
// uncovered lists are already sorted, so this is a flat scan.
func (nd *undirectedNode) hEdges() [][2]int {
	var out [][2]int
	for i, u := range nd.nbrs {
		for _, w := range nd.uncovOf[i] {
			if u < w && containsSorted(nd.nbrs, w) {
				out = append(out, [2]int{u, w})
			}
		}
	}
	return out
}

// refoldHop recomputes the 1-hop maxima (own values first, then live
// neighbors in id order — the fold the classic execution performs on its
// round-3 inbox).
func (nd *undirectedNode) refoldHop() {
	nd.hopDirty = false
	oldHop := densVal{raw: nd.hopRaw, num: nd.hopNum, den: nd.hopDen, wmax: nd.hopW}
	nd.hopRaw, nd.hopNum, nd.hopDen = nd.raw, nd.num, nd.den
	nd.hopW = nd.myWmax
	for i := range nd.nbrs {
		if !nd.alive[i] || !nd.densKnown[i] {
			continue
		}
		d := nd.densOf[i]
		if d.raw > nd.hopRaw {
			nd.hopRaw, nd.hopNum, nd.hopDen = d.raw, d.num, d.den
		}
		nd.hopW = maxf(nd.hopW, d.wmax)
	}
	if (densVal{raw: nd.hopRaw, num: nd.hopNum, den: nd.hopDen, wmax: nd.hopW}) != oldHop {
		nd.m2Dirty = true
	}
}

// refoldM2 recomputes the 2-hop maxima from the accumulated 1-hop maxima.
func (nd *undirectedNode) refoldM2() {
	nd.m2Dirty = false
	nd.m2Raw, nd.m2W = nd.hopRaw, nd.hopW
	for i := range nd.nbrs {
		if !nd.alive[i] || !nd.hopKnown[i] {
			continue
		}
		h := nd.hopOf[i]
		nd.m2Raw = maxf(nd.m2Raw, h.raw)
		nd.m2W = maxf(nd.m2W, h.wmax)
	}
	nd.m2Rho = RoundUpPow2(nd.m2Raw)
	if nd.opts.NoRounding {
		nd.m2Rho = nd.m2Raw
	}
}

// buildView assembles the localView: selectable star edges with their
// costs, free (zero-weight) star edges, and the uncovered H_v edges.
func (nd *undirectedNode) buildView(hEdges [][2]int) *localView {
	selectable := make(map[int]float64)
	var free []int
	for i, u := range nd.nbrs {
		idx := nd.edgeIdx[i]
		if !nd.v.starEdge(idx) {
			continue
		}
		w := nd.g.Weight(idx)
		if w == 0 {
			free = append(free, u)
		} else {
			selectable[u] = w
		}
	}
	return newLocalView(selectable, free, hEdges)
}

func (nd *undirectedNode) emitOutput() {
	var out []int
	for i := range nd.nbrs {
		if nd.inSpan[i] {
			out = append(out, nd.edgeIdx[i])
		}
	}
	sort.Ints(out)
	nd.outs[nd.me] = out
}

func maxf(a, b float64) float64 {
	if a >= b {
		return a
	}
	return b
}
