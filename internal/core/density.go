// Package core implements the paper's main algorithmic contribution
// (Section 4): a distributed algorithm for the minimum 2-spanner problem in
// the LOCAL model with a guaranteed O(log(m/n)) approximation ratio and
// O(log n · log Δ) rounds w.h.p. (Theorem 1.3), together with its directed
// (Theorem 4.9), weighted (Theorem 4.12), and client-server (Theorem 4.15)
// variants.
//
// The algorithm repeatedly has every vertex compute its densest star with
// respect to the still-uncovered edges in its neighborhood (by flow
// techniques), lets vertices whose rounded density is maximal in their
// 2-neighborhood become candidates, breaks symmetry by letting every
// uncovered edge vote for the first candidate that 2-spans it under a
// random permutation, and accepts stars receiving at least 1/8 of their
// potential votes. Stars are chosen by the careful rule of Section 4.1 so
// that, within one rounded-density level, the chosen stars only shrink
// (Claim 4.4), which is what bounds the round complexity.
package core

import "math"

// RoundUpPow2 returns the smallest power of two strictly greater than x
// (the paper's rounded density ρ̃). Negative powers are allowed, matching
// the weighted variant where densities may be below one. RoundUpPow2 of a
// non-positive value is 0.
func RoundUpPow2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	e := math.Floor(math.Log2(x))
	p := math.Ldexp(1, int(e))
	// Guard against floating error in Log2: ensure p <= x < 2p.
	for p > x {
		p /= 2
	}
	for p*2 <= x {
		p *= 2
	}
	return p * 2
}
