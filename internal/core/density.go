// Package core implements the paper's main algorithmic contribution
// (Section 4): a distributed algorithm for the minimum 2-spanner problem in
// the LOCAL model with a guaranteed O(log(m/n)) approximation ratio and
// O(log n · log Δ) rounds w.h.p. (Theorem 1.3), together with its directed
// (Theorem 4.9), weighted (Theorem 4.12), and client-server (Theorem 4.15)
// variants.
//
// The algorithm repeatedly has every vertex compute its densest star with
// respect to the still-uncovered edges in its neighborhood (by flow
// techniques), lets vertices whose rounded density is maximal in their
// 2-neighborhood become candidates, breaks symmetry by letting every
// uncovered edge vote for the first candidate that 2-spans it under a
// random permutation, and accepts stars receiving at least 1/8 of their
// potential votes. Stars are chosen by the careful rule of Section 4.1 so
// that, within one rounded-density level, the chosen stars only shrink
// (Claim 4.4), which is what bounds the round complexity.
//
// # Activity-aware execution
//
// The implementations are event-driven within the paper's fixed
// per-iteration round grid (see ALGORITHMS.md). State announcements are
// deltas accumulated by receivers, so the folded quantities match the
// classic re-broadcast-everything execution round for round while static
// vertices send nothing. Per-vertex termination states replace
// round-count spinning:
//
//   - active: the vertex owes a delta or is a candidate and runs the full
//     iteration;
//   - parked: nothing to send and no candidacy — the vertex blocks in
//     dist.Ctx.Recv and is woken only by deliveries, whose payload types
//     identify the iteration phase it rejoins;
//   - terminal: the paper's 2-hop termination rule fired — the vertex
//     direct-adds its remaining uncovered edges, announces a termMsg that
//     doubles as a death notice (peers prune it from folds and broadcast
//     lists), and retires. A vertex parked past the end of the run is
//     released by the engine's quiescence and finalizes the same way.
//
// The engine's Stats.ActiveSteps / Stats.ParkedSteps record the
// resulting activity profile; Options.RoundHook exposes the full
// per-round curve.
package core

import "math"

// RoundUpPow2 returns the smallest power of two strictly greater than x
// (the paper's rounded density ρ̃). Negative powers are allowed, matching
// the weighted variant where densities may be below one. RoundUpPow2 of a
// non-positive value is 0.
func RoundUpPow2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	e := math.Floor(math.Log2(x))
	p := math.Ldexp(1, int(e))
	// Guard against floating error in Log2: ensure p <= x < 2p.
	for p > x {
		p /= 2
	}
	for p*2 <= x {
		p *= 2
	}
	return p * 2
}
