package core

import (
	"math"
	"testing"

	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func mustTwoSpanner(t *testing.T, g *graph.Graph, seed int64) *Result {
	t.Helper()
	res, err := TwoSpanner(g, Options{Seed: seed})
	if err != nil {
		t.Fatalf("TwoSpanner failed: %v", err)
	}
	return res
}

func TestTwoSpannerValidOnFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"clique":     gen.Clique(12),
		"cycle":      gen.Cycle(15),
		"path":       gen.Path(10),
		"star":       gen.Star(14),
		"bipartite":  gen.CompleteBipartite(5, 7),
		"hypercube":  gen.Hypercube(4),
		"grid":       gen.Grid(4, 5),
		"gnp-sparse": gen.ConnectedGNP(40, 0.05, 1),
		"gnp-dense":  gen.ConnectedGNP(30, 0.4, 2),
		"planted":    gen.PlantedStars(4, 6, 0.5, 3),
	}
	for name, g := range families {
		res := mustTwoSpanner(t, g, 7)
		if !span.IsKSpanner(g, res.Spanner, 2) {
			t.Errorf("%s: output is not a 2-spanner", name)
		}
		if res.Fallbacks != 0 {
			t.Errorf("%s: Claim 4.4 fallback taken %d times, want 0", name, res.Fallbacks)
		}
	}
}

func TestTwoSpannerCliqueSavesEdges(t *testing.T) {
	// On K_n the optimum is a star with n-1 edges; the algorithm must get
	// within O(log(m/n)) of it, and certainly far below m.
	g := gen.Clique(16)
	res := mustTwoSpanner(t, g, 3)
	opt := float64(g.N() - 1)
	ratio := res.Cost / opt
	bound := ratioBound(g)
	if ratio > bound {
		t.Fatalf("clique ratio %.2f exceeds analysis bound %.2f", ratio, bound)
	}
	if res.Cost >= float64(g.M()) {
		t.Fatalf("no sparsification at all: cost %f of %d edges", res.Cost, g.M())
	}
}

// ratioBound is the analysis bound 8*sum over O(log(m/n))+2 cost classes
// with per-class constant <= 9 (Lemma 4.2): conservatively 80*(log2(m/n)+2).
func ratioBound(g *graph.Graph) float64 {
	r := float64(g.M()) / float64(g.N())
	if r < 2 {
		r = 2
	}
	return 80 * (math.Log2(r) + 2)
}

func TestTwoSpannerGuaranteedRatioManySeeds(t *testing.T) {
	// The paper's headline: the ratio holds ALWAYS, not in expectation.
	// Run many seeds on a fixed instance and check the bound on every run.
	g := gen.ConnectedGNP(24, 0.35, 5)
	opt := exactOPT(t, g)
	bound := ratioBound(g)
	for seed := int64(0); seed < 12; seed++ {
		res := mustTwoSpanner(t, g, seed)
		if !span.IsKSpanner(g, res.Spanner, 2) {
			t.Fatalf("seed %d: invalid spanner", seed)
		}
		ratio := res.Cost / opt
		if ratio > bound {
			t.Fatalf("seed %d: ratio %.2f exceeds bound %.2f", seed, ratio, bound)
		}
		if res.Fallbacks != 0 {
			t.Fatalf("seed %d: fallback taken", seed)
		}
	}
}

func exactOPT(t *testing.T, g *graph.Graph) float64 {
	t.Helper()
	// Import cycle avoidance: a local tiny branch-and-bound would duplicate
	// internal/exact; instead compute OPT by the n-1 lower bound plus
	// verification that some near-optimal star cover exists. For ratio
	// tests we use the trivial lower bound, which only makes the test
	// stricter for the algorithm (ratio measured against a smaller OPT
	// would be larger; here OPT >= n-1 so ratio <= cost/(n-1)).
	return float64(g.N() - 1)
}

func TestTwoSpannerIterationsScale(t *testing.T) {
	// Round complexity shape: iterations should stay near
	// O(log n * log Δ); give a generous constant and verify across sizes.
	for _, n := range []int{16, 32, 64} {
		g := gen.ConnectedGNP(n, 0.25, 11)
		res := mustTwoSpanner(t, g, 1)
		logn := math.Log2(float64(n))
		logd := math.Log2(float64(g.MaxDegree()) + 1)
		bound := 20 * (logn*logd + 1)
		if float64(res.Iterations) > bound {
			t.Fatalf("n=%d: %d iterations exceeds %f", n, res.Iterations, bound)
		}
	}
}

func TestTwoSpannerDeterministicPerSeed(t *testing.T) {
	g := gen.ConnectedGNP(20, 0.3, 9)
	a := mustTwoSpanner(t, g, 4)
	b := mustTwoSpanner(t, g, 4)
	if !a.Spanner.Equal(b.Spanner) {
		t.Fatal("same seed produced different spanners")
	}
	if a.Stats.Rounds != b.Stats.Rounds {
		t.Fatal("same seed produced different round counts")
	}
}

func TestTwoSpannerTinyGraphs(t *testing.T) {
	// Degenerate cases: single edge, triangle, two vertices.
	g1 := gen.Path(2)
	res := mustTwoSpanner(t, g1, 1)
	if res.Spanner.Len() != 1 {
		t.Fatalf("P2 spanner has %d edges, want 1", res.Spanner.Len())
	}
	g2 := gen.Clique(3)
	res2 := mustTwoSpanner(t, g2, 1)
	if !span.IsKSpanner(g2, res2.Spanner, 2) {
		t.Fatal("triangle spanner invalid")
	}
	// Isolated vertices plus an edge: not connected, but the algorithm
	// must still terminate and cover the one edge.
	g3 := graph.New(4)
	g3.AddEdge(0, 1)
	res3 := mustTwoSpanner(t, g3, 1)
	if !span.IsKSpanner(g3, res3.Spanner, 2) {
		t.Fatal("disconnected case must still cover its edges")
	}
}

func TestWeightedTwoSpanner(t *testing.T) {
	// Weighted K8 with heavy matching edges and light star edges around
	// vertex 0: the algorithm should cover heavy edges via light 2-paths.
	g := gen.Clique(8)
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if e.U == 0 {
			g.SetWeight(i, 1)
		} else {
			g.SetWeight(i, 50)
		}
	}
	res := mustTwoSpanner(t, g, 2)
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("weighted spanner invalid")
	}
	// The star around 0 costs 7; taking any heavy edge costs 50. The
	// result must avoid heavy edges entirely.
	if res.Cost >= 50 {
		t.Fatalf("weighted cost %f; expected the light star (7) to win", res.Cost)
	}
	if res.Fallbacks != 0 {
		t.Fatal("Claim 4.4 fallback in weighted run")
	}
}

func TestWeightedZeroEdges(t *testing.T) {
	// Zero-weight edges join the spanner up front and cover for free.
	g := gen.Clique(6)
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if e.U == 0 {
			g.SetWeight(i, 0)
		} else {
			g.SetWeight(i, 3)
		}
	}
	res := mustTwoSpanner(t, g, 5)
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("spanner invalid")
	}
	if res.Cost != 0 {
		t.Fatalf("cost = %f, want 0 (free star covers everything)", res.Cost)
	}
}

func TestWeightedRatioAgainstLowerBound(t *testing.T) {
	// O(log Δ) guarantee, measured against the weight of a spanning
	// structure lower bound: any 2-spanner of a connected graph needs at
	// least n-1 edges, each of at least the minimum weight.
	g := gen.RandomWeights(gen.ConnectedGNP(20, 0.3, 8), 1, 4, 13)
	res := mustTwoSpanner(t, g, 3)
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("invalid spanner")
	}
	minW := math.Inf(1)
	for i := 0; i < g.M(); i++ {
		if w := g.Weight(i); w < minW {
			minW = w
		}
	}
	lb := float64(g.N()-1) * minW
	bound := 80 * (math.Log2(float64(g.MaxDegree())) + 2) * 4 // extra W slack
	if res.Cost/lb > bound {
		t.Fatalf("weighted ratio %.2f exceeds generous bound %.2f", res.Cost/lb, bound)
	}
}

func TestClientServerTwoSpanner(t *testing.T) {
	g := gen.ConnectedGNP(25, 0.3, 4)
	clients, servers := gen.ClientServerSplit(g, 0.5, 0.7, 2)
	res, err := ClientServerTwoSpanner(g, clients, servers, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !span.ClientServerValid(g, clients, servers, res.Spanner, 2) {
		t.Fatal("client-server solution invalid")
	}
	if res.Fallbacks != 0 {
		t.Fatal("Claim 4.4 fallback in client-server run")
	}
}

func TestClientServerOnlyServersUsed(t *testing.T) {
	// Explicit instance: clients are chords, servers are a wheel.
	g := graph.New(6)
	rim := make([]int, 0, 5)
	for i := 1; i < 6; i++ {
		rim = append(rim, g.AddEdge(0, i)) // spokes (servers)
	}
	chord1 := g.AddEdge(1, 2)
	chord2 := g.AddEdge(3, 4)
	clients := graph.NewEdgeSet(g.M())
	clients.Add(chord1)
	clients.Add(chord2)
	servers := graph.NewEdgeSet(g.M())
	for _, e := range rim {
		servers.Add(e)
	}
	res, err := ClientServerTwoSpanner(g, clients, servers, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !span.ClientServerValid(g, clients, servers, res.Spanner, 2) {
		t.Fatal("invalid client-server spanner")
	}
	res.Spanner.ForEach(func(i int) {
		if !servers.Has(i) {
			t.Fatalf("non-server edge %d in spanner", i)
		}
	})
}

func TestClientServerUncoverableClientsIgnored(t *testing.T) {
	// A client edge with no server cover must not break the run.
	g := graph.New(4)
	e01 := g.AddEdge(0, 1) // client only, no server path
	e12 := g.AddEdge(1, 2)
	e23 := g.AddEdge(2, 3)
	clients := graph.NewEdgeSet(g.M())
	clients.Add(e01)
	clients.Add(e23)
	servers := graph.NewEdgeSet(g.M())
	servers.Add(e12)
	servers.Add(e23)
	res, err := ClientServerTwoSpanner(g, clients, servers, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !span.ClientServerValid(g, clients, servers, res.Spanner, 2) {
		t.Fatal("solution must cover all coverable clients")
	}
	if res.Spanner.Has(e01) {
		t.Fatal("uncoverable pure-client edge must not be added")
	}
}

func TestClientServerValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := ClientServerTwoSpanner(g, nil, nil, Options{}); err == nil {
		t.Fatal("nil edge sets must error")
	}
	small := graph.NewEdgeSet(1)
	if _, err := ClientServerTwoSpanner(g, small, small, Options{}); err == nil {
		t.Fatal("universe mismatch must error")
	}
	wg := gen.Path(3)
	wg.SetWeight(0, 2)
	full := graph.Full(wg.M())
	if _, err := ClientServerTwoSpanner(wg, full, full, Options{}); err == nil {
		t.Fatal("weighted client-server must error")
	}
}

func TestTwoSpannerSpannerSubsetOfGraph(t *testing.T) {
	g := gen.ConnectedGNP(18, 0.4, 6)
	res := mustTwoSpanner(t, g, 8)
	if res.Spanner.Universe() != g.M() {
		t.Fatal("spanner universe mismatch")
	}
	if res.Spanner.Len() > g.M() {
		t.Fatal("spanner larger than graph")
	}
	if int(res.Cost) != res.Spanner.Len() {
		t.Fatalf("unweighted cost %f != size %d", res.Cost, res.Spanner.Len())
	}
}

func TestTwoSpannerLocalNotCongest(t *testing.T) {
	// The paper notes a direct CONGEST implementation has Ω(Δ) overhead:
	// on a dense graph the per-edge-per-round bits must exceed O(log n).
	g := gen.Clique(14)
	res := mustTwoSpanner(t, g, 2)
	logn := 4 * 8 // generous O(log n) word
	if res.Stats.MaxEdgeRoundBits <= logn {
		t.Fatalf("expected LOCAL-sized messages on K14, max edge-round bits = %d", res.Stats.MaxEdgeRoundBits)
	}
}

func TestTwoSpannerAugment(t *testing.T) {
	// Augmenting with an empty initial set equals solving from scratch in
	// objective terms; augmenting with a full star makes the rest free.
	g := gen.Clique(10)
	empty := graph.NewEdgeSet(g.M())
	res, err := TwoSpannerAugment(g, empty, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("augmented spanner invalid")
	}
	if res.Cost <= 0 {
		t.Fatal("empty initial set must cost something")
	}

	// Initial = the full star of vertex 0: a 2-spanner already, so the
	// optimal augmentation adds nothing.
	star := graph.NewEdgeSet(g.M())
	for v := 1; v < 10; v++ {
		i, _ := g.EdgeIndex(0, v)
		star.Add(i)
	}
	res2, err := TwoSpannerAugment(g, star, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res2.Spanner, 2) {
		t.Fatal("augmented spanner invalid")
	}
	if res2.Cost != 0 {
		t.Fatalf("star initial set needs no additions, cost = %f", res2.Cost)
	}
}

func TestTwoSpannerAugmentValidation(t *testing.T) {
	g := gen.Path(3)
	if _, err := TwoSpannerAugment(g, nil, Options{}); err == nil {
		t.Fatal("nil initial set must error")
	}
	if _, err := TwoSpannerAugment(g, graph.NewEdgeSet(1), Options{}); err == nil {
		t.Fatal("universe mismatch must error")
	}
	wg := gen.Path(3)
	wg.SetWeight(0, 2)
	if _, err := TwoSpannerAugment(wg, graph.NewEdgeSet(wg.M()), Options{}); err == nil {
		t.Fatal("weighted graph must error")
	}
}

func TestTwoSpannerAugmentPartialTree(t *testing.T) {
	// Initial = a spanning path of the clique; the augmentation should
	// still produce a valid 2-spanner and pay less than from scratch.
	g := gen.Clique(12)
	path := graph.NewEdgeSet(g.M())
	for v := 0; v+1 < 12; v++ {
		i, _ := g.EdgeIndex(v, v+1)
		path.Add(i)
	}
	res, err := TwoSpannerAugment(g, path, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("invalid")
	}
	path.ForEach(func(i int) {
		if !res.Spanner.Has(i) {
			t.Fatal("initial edges must appear in the spanner (they are free)")
		}
	})
}

func TestPerIterationTelemetry(t *testing.T) {
	g := gen.PlantedStars(4, 7, 0.5, 2)
	res := mustTwoSpanner(t, g, 3)
	if len(res.PerIteration) != res.Iterations+1 {
		t.Fatalf("telemetry has %d entries for %d iterations", len(res.PerIteration), res.Iterations)
	}
	totalTerm := 0
	for i, st := range res.PerIteration {
		if st.Accepted > st.Candidates {
			t.Fatalf("iteration %d: %d accepted > %d candidates", i, st.Accepted, st.Candidates)
		}
		totalTerm += st.Terminated
	}
	if totalTerm != g.N() {
		t.Fatalf("terminations sum to %d, want every vertex (%d)", totalTerm, g.N())
	}
	// The final iteration must terminate at least one vertex.
	if res.PerIteration[len(res.PerIteration)-1].Terminated == 0 {
		t.Fatal("last iteration terminated nobody")
	}
}

func TestTwoSpannerOnNewFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"geometric":   gen.Geometric(60, 0.3, 4),
		"ba":          gen.PreferentialAttachment(60, 3, 5),
		"lollipop":    gen.LollipopChain(3, 7, 5),
		"caterpillar": gen.Caterpillar(6, 4),
	}
	for name, g := range families {
		res := mustTwoSpanner(t, g, 11)
		if !span.IsKSpanner(g, res.Spanner, 2) {
			t.Errorf("%s: invalid spanner", name)
		}
		if res.Fallbacks != 0 {
			t.Errorf("%s: Claim 4.4 fallback", name)
		}
	}
	// Trees keep everything (no 2-paths around any edge).
	cat := gen.Caterpillar(6, 4)
	res := mustTwoSpanner(t, cat, 1)
	if res.Spanner.Len() != cat.M() {
		t.Fatalf("tree spanner must keep all %d edges, kept %d", cat.M(), res.Spanner.Len())
	}
}

func TestTwoSpannerLargeScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test")
	}
	g := gen.ConnectedGNP(300, 0.03, 1)
	res := mustTwoSpanner(t, g, 1)
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("large run invalid")
	}
	if res.Fallbacks != 0 {
		t.Fatal("Claim 4.4 fallback at scale")
	}
}
