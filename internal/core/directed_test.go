package core

import (
	"math"
	"testing"

	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func mustDirected(t *testing.T, d *graph.Digraph, seed int64) *Result {
	t.Helper()
	res, err := DirectedTwoSpanner(d, Options{Seed: seed})
	if err != nil {
		t.Fatalf("DirectedTwoSpanner failed: %v", err)
	}
	return res
}

func TestDirectedTwoSpannerValid(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		d := gen.RandomDigraph(20, 0.25, seed)
		res := mustDirected(t, d, seed)
		if !span.IsDirectedKSpanner(d, res.Spanner, 2) {
			t.Fatalf("seed %d: output is not a directed 2-spanner", seed)
		}
	}
}

func TestDirectedTwoSpannerDenseTournament(t *testing.T) {
	// Orient a clique: every edge one way plus some two-way.
	g := gen.Clique(12)
	d := gen.OrientRandomly(g, 0.5, 3)
	res := mustDirected(t, d, 1)
	if !span.IsDirectedKSpanner(d, res.Spanner, 2) {
		t.Fatal("invalid directed 2-spanner on oriented clique")
	}
}

func TestDirectedBidirectedCliqueSparsifies(t *testing.T) {
	// Fully bidirected clique: directed 2-spanners can use the in+out star
	// of a single hub, so the output must be far below m.
	d := gen.RandomDigraph(12, 1.1, 1) // p > 1: all ordered pairs
	if d.M() != 12*11 {
		t.Fatalf("expected complete digraph, m = %d", d.M())
	}
	res := mustDirected(t, d, 2)
	if !span.IsDirectedKSpanner(d, res.Spanner, 2) {
		t.Fatal("invalid spanner")
	}
	if res.Spanner.Len() >= d.M()*3/4 {
		t.Fatalf("no sparsification: %d of %d edges kept", res.Spanner.Len(), d.M())
	}
}

func TestDirectedRatioShape(t *testing.T) {
	// Ratio against the trivial bound: with n vertices any directed
	// 2-spanner needs enough edges to preserve reachability of each edge's
	// endpoints; use OPT >= n-1 on strongly-connected-ish instances and
	// allow the analysis constant.
	d := gen.RandomDigraph(18, 0.3, 7)
	res := mustDirected(t, d, 4)
	bound := 80 * (math.Log2(float64(d.M())/float64(d.N())+2) + 2) * 2
	ratio := res.Cost / float64(d.N()-1)
	if ratio > bound {
		t.Fatalf("directed ratio %.2f exceeds generous bound %.2f", ratio, bound)
	}
}

func TestDirectedDeterministic(t *testing.T) {
	d := gen.RandomDigraph(15, 0.3, 5)
	a := mustDirected(t, d, 9)
	b := mustDirected(t, d, 9)
	if !a.Spanner.Equal(b.Spanner) {
		t.Fatal("same seed produced different directed spanners")
	}
}

func TestDirectedAsymmetricPath(t *testing.T) {
	// One-way path: nothing is 2-spannable, everything must be kept.
	d := graph.NewDigraph(6)
	for i := 0; i+1 < 6; i++ {
		d.AddEdge(i, i+1)
	}
	res := mustDirected(t, d, 1)
	if res.Spanner.Len() != d.M() {
		t.Fatalf("one-way path: %d edges kept, want all %d", res.Spanner.Len(), d.M())
	}
}

func TestDirectedAntiparallelPair(t *testing.T) {
	// Two vertices with edges both ways: both must be kept (no 2-path
	// alternatives).
	d := graph.NewDigraph(2)
	d.AddEdge(0, 1)
	d.AddEdge(1, 0)
	res := mustDirected(t, d, 1)
	if res.Spanner.Len() != 2 {
		t.Fatalf("antiparallel pair: %d edges, want 2", res.Spanner.Len())
	}
}

func TestDirectedTwoSpanUseCase(t *testing.T) {
	// Hub with in-edges from a's and out-edges to b's, plus direct a->b
	// edges: the hub star should 2-span the direct edges.
	d := graph.NewDigraph(7) // hub=0, tails 1,2,3, heads 4,5,6
	for _, a := range []int{1, 2, 3} {
		d.AddEdge(a, 0)
	}
	for _, b := range []int{4, 5, 6} {
		d.AddEdge(0, b)
	}
	var direct []int
	for _, a := range []int{1, 2, 3} {
		for _, b := range []int{4, 5, 6} {
			direct = append(direct, d.AddEdge(a, b))
		}
	}
	res := mustDirected(t, d, 3)
	if !span.IsDirectedKSpanner(d, res.Spanner, 2) {
		t.Fatal("invalid spanner")
	}
	kept := 0
	for _, e := range direct {
		if res.Spanner.Has(e) {
			kept++
		}
	}
	if kept == len(direct) {
		t.Fatal("hub star not exploited: all direct edges kept")
	}
	if res.Fallbacks != 0 {
		t.Fatalf("Claim 4.4 fallback taken %d times", res.Fallbacks)
	}
}

func TestDirViewDensity(t *testing.T) {
	// Neighbors 1 (bidirected, cost 2) and 2 (one-way, cost 1); one
	// directed H edge (1,2) and its reverse (2,1).
	dv := newDirView(map[int]int{1: 2, 2: 1}, [][2]int{{1, 2}, {2, 1}})
	full := []bool{true, true}
	s, c := dv.dirValue(full)
	if s != 2 || c != 3 {
		t.Fatalf("dirValue = (%f, %f), want (2, 3)", s, c)
	}
	if d := dv.dirDensity(full); math.Abs(d-2.0/3.0) > 1e-9 {
		t.Fatalf("dirDensity = %f, want 2/3", d)
	}
}

func TestDirViewApproxWithinFactor2(t *testing.T) {
	// Claim 4.10/4.11: the undirected reduction is a 2-approximation of
	// the densest directed star. Check on a brute-forced instance.
	nbrs := map[int]int{1: 1, 2: 2, 3: 1, 4: 2}
	h := [][2]int{{1, 2}, {2, 1}, {2, 3}, {3, 4}, {4, 1}}
	dv := newDirView(nbrs, h)
	_, approx := dv.approxDensest(nil)
	// Brute force the true densest directed density over neighbor subsets.
	best := 0.0
	ids := []int{1, 2, 3, 4}
	for mask := 1; mask < 16; mask++ {
		sel := make([]bool, len(dv.uv.nbrs))
		for b, id := range ids {
			if mask&(1<<uint(b)) != 0 {
				sel[dv.uv.pos[id]] = true
			}
		}
		if d := dv.dirDensity(sel); d > best {
			best = d
		}
	}
	if approx < best/2-1e-9 || approx > best+1e-9 {
		t.Fatalf("approx %f outside [best/2, best] = [%f, %f]", approx, best/2, best)
	}
}
