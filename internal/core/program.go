package core

import (
	"errors"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Shard-program exports for the distributed runner (dist.ServeShard):
// each constructor returns the same machine factory the local runners
// use, plus a per-vertex output reader, packaged as a dist.ShardProgram.
// A worker resolves its program deterministically from (graph, seed) —
// every auxiliary input (orientations, edge-set splits) must be derived
// the same way on every worker — and the coordinator merges the outputs.
// The algorithm code is transport-oblivious: these factories are exactly
// the ones RunMachines gets; only the delivery layer differs.

// TwoSpannerProgram is the shard program of TwoSpanner (plain or
// weighted, chosen by g.Weighted()). Output(v) lists vertex v's
// incident spanner edge indices, sorted.
func TwoSpannerProgram(g *graph.Graph, opts Options) dist.ShardProgram {
	ru := newURun(g)
	return dist.ShardProgram{
		Factory: ru.factory(twoSpannerVariant(g.Weighted()), opts),
		Output:  ru.output,
	}
}

// ClientServerTwoSpannerProgram is the shard program of
// ClientServerTwoSpanner.
func ClientServerTwoSpannerProgram(g *graph.Graph, clients, servers *graph.EdgeSet, opts Options) (dist.ShardProgram, error) {
	v, err := clientServerVariant(g, clients, servers)
	if err != nil {
		return dist.ShardProgram{}, err
	}
	ru := newURun(g)
	return dist.ShardProgram{
		Factory: ru.factory(v, opts),
		Output:  ru.output,
	}, nil
}

// TwoSpannerCongestProgram is the shard program of TwoSpannerCongest.
// The engine running it must enforce CongestBandwidth(g.N()) to
// reproduce the local runner bit-for-bit.
func TwoSpannerCongestProgram(g *graph.Graph, opts Options) (dist.ShardProgram, error) {
	if g.Weighted() {
		return dist.ShardProgram{}, errors.New("core: the CONGEST variant is unweighted (densities ship as count rationals)")
	}
	ru := newURun(g)
	return dist.ShardProgram{
		Factory: congestFactory(ru, opts),
		Output:  ru.output,
	}, nil
}

// DirectedTwoSpannerProgram is the shard program of DirectedTwoSpanner.
// The engine topology is d's underlying undirected graph, carried as
// the program's Graph override (it has the same vertex count).
func DirectedTwoSpannerProgram(d *graph.Digraph, opts Options) dist.ShardProgram {
	under, _ := d.Underlying()
	dr := newDirRun(d)
	return dist.ShardProgram{
		Graph:   under,
		Factory: dr.factory(),
		Output:  dr.output,
	}
}
