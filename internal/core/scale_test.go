package core

import (
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

// ringChords returns a degree-4 ring with chords: deterministic, cheap to
// build at any size, and sparse enough that the 2-spanner converges in a
// bounded number of iterations independent of n — the scale-test family.
func ringChords(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
		g.AddEdge(v, (v+2)%n)
	}
	return g
}

// hubRing is ringChords plus planted hub stars every `spacing` vertices
// (each hub also linked to the `span` vertices ahead of it): the hubs are
// locally-densest stars, so the run exercises real candidacy, voting, and
// fringe parking instead of terminating on the first density check.
func hubRing(n, spacing, span int) *graph.Graph {
	g := ringChords(n)
	for h := 0; h < n; h += spacing {
		for j := 3; j < span; j++ {
			g.AddEdge(h, (h+j)%n)
		}
	}
	return g
}

// TestTwoSpannerMillionVertexStep is the scale contract of the
// goroutine-free step engine: a full two-spanner run at n = 1,000,000 on
// one box. The blocking engines cannot touch this size (a million
// goroutine stacks); the step engine holds one small machine struct per
// vertex and scans the active set. Skipped under -short — CI's full test
// job runs it.
func TestTwoSpannerMillionVertexStep(t *testing.T) {
	if testing.Short() {
		t.Skip("million-vertex smoke test skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("million-vertex smoke test skipped under the race detector")
	}
	const n = 1_000_000
	g := hubRing(n, 2048, 256)
	res, err := TwoSpanner(g, Options{Seed: 6, ExecMode: dist.ModeStep})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("invalid 2-spanner at n=1e6")
	}
	if res.Stats.Rounds == 0 || res.Stats.Messages == 0 {
		t.Fatalf("implausible stats: %+v", res.Stats)
	}
	t.Logf("n=%d: %d spanner edges, %d iterations, %d rounds, %d messages",
		n, res.Spanner.Len(), res.Iterations, res.Stats.Rounds, res.Stats.Messages)
}

// TestCrossModeByteEqualityLarge extends the cross-mode transcript
// contract to the largest size the blocking engines share with the step
// engine's scale range: at n = 4096 (the EventThreshold boundary) all
// three modes must produce byte-identical outputs, rounds, and message
// counts on both the busy G(n, 8/n) workload and the ring+chords
// scale-test family.
func TestCrossModeByteEqualityLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("n=4096 cross-mode equality skipped in -short mode")
	}
	const n = 4096
	graphs := map[string]*graph.Graph{
		"gnp":        gen.ConnectedGNP(n, 8.0/float64(n), 1),
		"ringchords": ringChords(n),
	}
	modes := []dist.Mode{dist.ModeBarrier, dist.ModeEvent, dist.ModeStep}
	for name, g := range graphs {
		base, err := TwoSpanner(g, Options{Seed: 11, ExecMode: modes[0]})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range modes[1:] {
			res, err := TwoSpanner(g, Options{Seed: 11, ExecMode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if !base.Spanner.Equal(res.Spanner) {
				t.Fatalf("%s: spanner differs between %v and %v", name, modes[0], mode)
			}
			if base.Stats != res.Stats {
				t.Fatalf("%s: stats differ between %v and %v:\n%+v\n%+v",
					name, modes[0], mode, base.Stats, res.Stats)
			}
			if base.Iterations != res.Iterations || base.Cost != res.Cost {
				t.Fatalf("%s: telemetry differs between %v and %v", name, modes[0], mode)
			}
		}
	}
}
