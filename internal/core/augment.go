package core

import (
	"errors"
	"fmt"

	"distspanner/internal/graph"
)

// TwoSpannerAugment solves the 2-spanner augmentation problem from the
// Section 3 remarks: given an initial edge set that is already paid for,
// add the minimum number of further edges so that the union 2-spans the
// graph. The remarks observe this is exactly the weighted problem with
// 0/1 weights (initial edges free, others unit), so the weighted
// algorithm's O(log Δ) guarantee carries over.
//
// The returned Result's Spanner is the full spanner (initial edges
// included); Cost counts only the newly added edges.
func TwoSpannerAugment(g *graph.Graph, initial *graph.EdgeSet, opts Options) (*Result, error) {
	if initial == nil {
		return nil, errors.New("core: augmentation requires an initial edge set")
	}
	if initial.Universe() != g.M() {
		return nil, fmt.Errorf("core: initial set universe %d != M() = %d", initial.Universe(), g.M())
	}
	if g.Weighted() {
		return nil, errors.New("core: augmentation instance must be unweighted (weights encode the initial set)")
	}
	work := g.Clone()
	for i := 0; i < work.M(); i++ {
		if initial.Has(i) {
			work.SetWeight(i, 0)
		} else {
			work.SetWeight(i, 1)
		}
	}
	res, err := TwoSpanner(work, opts)
	if err != nil {
		return nil, err
	}
	return res, nil
}
