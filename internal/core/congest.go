package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// This file implements the paper's Section 1.3 discussion point: "A direct
// implementation of our algorithm in the Congest model yields an overhead
// of O(Δ) rounds". TwoSpannerCongest runs the exact same per-vertex
// program as TwoSpanner, but every logical round is realized as a fixed
// number of CONGEST subrounds over which the O(Δ)-word messages are
// fragmented into O(log n)-bit chunks. The engine enforces the bandwidth,
// so a single oversized message aborts the run — the CONGEST legality is
// checked, not assumed.

// chunkWords is the number of payload words carried per chunk; with the
// header this keeps every chunk within the 8-word CONGEST budget.
const chunkWords = 6

// chunkMsg is one fragment of an encoded logical payload.
type chunkMsg struct {
	kind  uint8
	words []int
	more  bool
	n     int
}

// Bits accounts a fixed 8-word CONGEST message: header (kind, more, count)
// plus up to chunkWords words.
func (m chunkMsg) Bits() int { return 8 * dist.IDBits(m.n) }

// Payload kind tags for the fragmenter.
const (
	kindSpanList uint8 = iota + 1
	kindUncov
	kindDens
	kindMax
	kindStar
	kindTerm
	kindVote
	kindAccept
	kindUncovFull
)

// encodePayload flattens a core payload into words. Densities travel as
// exact (spanned, cost) integer rationals — the unweighted algorithm's
// densities are ratios of counts, so one word each suffices; receivers
// recompute the float and its rounding, which is exactly how a real
// CONGEST implementation would ship them.
func encodePayload(p dist.Payload) (uint8, []int, error) {
	switch m := p.(type) {
	case spanListMsg:
		return kindSpanList, m.nbrs, nil
	case uncovMsg:
		if m.full {
			return kindUncovFull, m.nbrs, nil
		}
		return kindUncov, m.nbrs, nil
	case densMsg:
		return kindDens, []int{m.num, m.den}, nil
	case maxMsg:
		return kindMax, []int{m.num, m.den}, nil
	case starMsg:
		words := []int{int(m.r >> 31), int(m.r & ((1 << 31) - 1))}
		return kindStar, append(words, m.star...), nil
	case termMsg:
		return kindTerm, m.added, nil
	case voteMsg:
		words := make([]int, 0, 2*len(m.edges))
		for _, e := range m.edges {
			words = append(words, e[0], e[1])
		}
		return kindVote, words, nil
	case acceptMsg:
		return kindAccept, m.star, nil
	default:
		return 0, nil, fmt.Errorf("core: unknown payload %T in CONGEST mode", p)
	}
}

// decodePayload reverses encodePayload.
func decodePayload(kind uint8, words []int, n int) (dist.Payload, error) {
	switch kind {
	case kindSpanList:
		return spanListMsg{nbrs: words, n: n}, nil
	case kindUncov:
		return uncovMsg{nbrs: words, n: n}, nil
	case kindUncovFull:
		return uncovMsg{nbrs: words, full: true, n: n}, nil
	case kindDens:
		if len(words) != 2 {
			return nil, errors.New("core: bad density fragment")
		}
		raw := ratValue(words[0], words[1])
		return densMsg{rho: RoundUpPow2(raw), raw: raw, wmax: 1, num: words[0], den: words[1]}, nil
	case kindMax:
		if len(words) != 2 {
			return nil, errors.New("core: bad max fragment")
		}
		raw := ratValue(words[0], words[1])
		return maxMsg{rho: RoundUpPow2(raw), raw: raw, wmax: 1, num: words[0], den: words[1]}, nil
	case kindStar:
		if len(words) < 2 {
			return nil, errors.New("core: bad star fragment")
		}
		r := int64(words[0])<<31 | int64(words[1])
		return starMsg{star: words[2:], r: r, n: n}, nil
	case kindTerm:
		return termMsg{added: words, n: n}, nil
	case kindVote:
		if len(words)%2 != 0 {
			return nil, errors.New("core: bad vote fragment")
		}
		edges := make([][2]int, 0, len(words)/2)
		for i := 0; i < len(words); i += 2 {
			edges = append(edges, [2]int{words[i], words[i+1]})
		}
		return voteMsg{edges: edges, n: n}, nil
	case kindAccept:
		return acceptMsg{star: words, n: n}, nil
	default:
		return nil, fmt.Errorf("core: unknown payload kind %d", kind)
	}
}

// ratValue recomputes a density from its exact integer rational. Both the
// sender (Phase B) and this decoder perform the identical float division,
// so LOCAL and CONGEST executions see bit-identical densities.
func ratValue(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// congestCtx adapts *dist.Ctx so that one logical round of the protocol
// becomes exactly `sub` physical CONGEST rounds, fragmenting every payload
// into chunkMsg fragments. All vertices derive `sub` from the globally
// known n and Δ, keeping the network in lockstep.
type congestCtx struct {
	ctx *dist.Ctx
	sub int
	out map[int][]pendingPayload
}

type pendingPayload struct {
	kind  uint8
	words []int
}

// newCongestCtx computes the subround count from the maximum logical
// payload: star/uncovered/spanner lists have at most Δ+2 words and vote
// lists at most 2Δ words.
func newCongestCtx(ctx *dist.Ctx, maxDegree int) *congestCtx {
	maxWords := 2*maxDegree + 4
	sub := (maxWords + chunkWords - 1) / chunkWords
	if sub < 1 {
		sub = 1
	}
	return &congestCtx{ctx: ctx, sub: sub, out: make(map[int][]pendingPayload)}
}

// Subrounds reports the physical rounds per logical round: the measured
// O(Δ) overhead.
func (c *congestCtx) Subrounds() int { return c.sub }

// ID implements roundCtx.
func (c *congestCtx) ID() int { return c.ctx.ID() }

// N implements roundCtx.
func (c *congestCtx) N() int { return c.ctx.N() }

// Neighbors implements roundCtx.
func (c *congestCtx) Neighbors() []int { return c.ctx.Neighbors() }

// Rand implements roundCtx.
func (c *congestCtx) Rand() *rand.Rand { return c.ctx.Rand() }

// Send implements roundCtx by queuing the payload for fragmentation.
func (c *congestCtx) Send(to int, p dist.Payload) {
	kind, words, err := encodePayload(p)
	if err != nil {
		panic(err)
	}
	c.out[to] = append(c.out[to], pendingPayload{kind: kind, words: words})
}

// inStream reassembles one sender's fragmented payload.
type inStream struct {
	kind  uint8
	words []int
	done  bool
}

// collectChunks folds one physical round's inbox into the reassembly map.
func collectChunks(incoming map[int]*inStream, msgs []dist.Message) {
	for _, m := range msgs {
		ch, ok := m.Payload.(chunkMsg)
		if !ok {
			panic(fmt.Sprintf("core: non-chunk payload %T in CONGEST mode", m.Payload))
		}
		st := incoming[m.From]
		if st == nil || st.done {
			st = &inStream{kind: ch.kind}
			incoming[m.From] = st
		}
		st.words = append(st.words, ch.words...)
		if !ch.more {
			st.done = true
		}
	}
}

// assemble decodes the reassembled streams into the logical inbox, sorted
// by sender.
func (c *congestCtx) assemble(incoming map[int]*inStream) []dist.Message {
	froms := make([]int, 0, len(incoming))
	for from := range incoming {
		froms = append(froms, from)
	}
	sort.Ints(froms)
	msgs := make([]dist.Message, 0, len(froms))
	for _, from := range froms {
		st := incoming[from]
		p, err := decodePayload(st.kind, st.words, c.ctx.N())
		if err != nil {
			panic(err)
		}
		msgs = append(msgs, dist.Message{From: from, Payload: p})
	}
	return msgs
}

// NextRound implements roundCtx: it spends exactly c.sub physical rounds
// streaming the queued fragments and reassembles the logical inbox.
func (c *congestCtx) NextRound() []dist.Message {
	// The protocol sends at most one payload per (sender, receiver) per
	// logical round, which keeps reassembly unambiguous.
	type stream struct {
		kind   uint8
		words  []int
		offset int
	}
	streams := make(map[int]*stream, len(c.out))
	for to, payloads := range c.out {
		if len(payloads) != 1 {
			panic(fmt.Sprintf("core: %d payloads to one receiver in a logical round", len(payloads)))
		}
		streams[to] = &stream{kind: payloads[0].kind, words: payloads[0].words}
	}
	c.out = make(map[int][]pendingPayload)

	incoming := make(map[int]*inStream)
	n := c.ctx.N()
	for round := 0; round < c.sub; round++ {
		for to, s := range streams {
			if s.offset == 0 || s.offset < len(s.words) {
				end := s.offset + chunkWords
				if end > len(s.words) {
					end = len(s.words)
				}
				chunk := chunkMsg{
					kind:  s.kind,
					words: s.words[s.offset:end],
					more:  end < len(s.words),
					n:     n,
				}
				s.offset = end
				if s.offset == 0 { // empty payload: mark sent
					s.offset = 1
				}
				c.ctx.Send(to, chunk)
			}
		}
		collectChunks(incoming, c.ctx.NextRound())
	}
	return c.assemble(incoming)
}

// Recv implements roundCtx: it parks the vertex across whole logical
// rounds. A vertex with nothing to send costs zero physical wakeups until
// a peer addresses it; every stream's first chunk is committed at a
// logical-round boundary, so the physical wake lands on the first round
// of a logical window and the remaining sub-1 physical rounds both finish
// the collection and re-align the vertex with the network's round grid.
// Quiescence (ok=false) passes through from the physical engine.
func (c *congestCtx) Recv() ([]dist.Message, bool) {
	if len(c.out) != 0 {
		panic("core: congest Recv with queued sends (park only when silent)")
	}
	msgs, ok := c.ctx.Recv()
	if !ok {
		return nil, false
	}
	incoming := make(map[int]*inStream)
	collectChunks(incoming, msgs)
	for round := 1; round < c.sub; round++ {
		collectChunks(incoming, c.ctx.NextRound())
	}
	return c.assemble(incoming), true
}

// CongestResult extends Result with the fragmentation accounting.
type CongestResult struct {
	Result
	// Subrounds is the number of physical CONGEST rounds per logical
	// round of the LOCAL algorithm: Θ(Δ), the Section 1.3 overhead.
	Subrounds int
	// Bandwidth is the enforced per-edge bit budget.
	Bandwidth int
}

// TwoSpannerCongest runs the unweighted minimum 2-spanner algorithm in the
// CONGEST model: identical logic to TwoSpanner, with every message
// fragmented into 8-word chunks and the engine enforcing the O(log n)
// bandwidth. The price is Θ(Δ) physical rounds per logical round,
// demonstrating the overhead the paper's discussion section describes.
func TwoSpannerCongest(g *graph.Graph, opts Options) (*CongestResult, error) {
	if g.Weighted() {
		return nil, errors.New("core: the CONGEST variant is unweighted (densities ship as count rationals)")
	}
	all := func(int) bool { return true }
	v := variant{
		target:      all,
		starEdge:    all,
		directAdd:   all,
		candidateOK: func(raw float64) bool { return raw >= 1 },
		terminal:    func(maxRaw, _ float64) bool { return maxRaw <= 1 },
	}
	n := g.N()
	maxDeg := g.MaxDegree()
	bandwidth := 8 * dist.IDBits(n)
	outs := make([][]int, n)
	iters := make([]int, n)
	var fallbacks atomic.Int64
	tele := newTelemetry()
	subrounds := 0
	proc := func(ctx *dist.Ctx) {
		cc := newCongestCtx(ctx, maxDeg)
		if ctx.ID() == 0 {
			subrounds = cc.Subrounds()
		}
		nd := newUndirectedNode(cc, g, v, outs, iters, &fallbacks)
		nd.opts = opts
		nd.tele = tele
		nd.run()
	}
	stats, err := dist.Run(dist.Config{
		Graph:     g,
		Seed:      opts.Seed,
		Mode:      opts.ExecMode,
		Bandwidth: bandwidth,
		Enforce:   true,
		MaxRounds: opts.MaxRounds,
		OnRound:   opts.RoundHook,
	}, proc)
	if err != nil {
		return nil, err
	}
	spanner := graph.NewEdgeSet(g.M())
	for _, edges := range outs {
		for _, e := range edges {
			spanner.Add(e)
		}
	}
	maxIter := 0
	for _, it := range iters {
		if it > maxIter {
			maxIter = it
		}
	}
	return &CongestResult{
		Result: Result{
			Spanner:      spanner,
			Cost:         g.TotalWeight(spanner),
			Stats:        *stats,
			Iterations:   maxIter,
			PerIteration: tele.stats(maxIter),
			Fallbacks:    fallbacks.Load(),
		},
		Subrounds: subrounds,
		Bandwidth: bandwidth,
	}, nil
}
