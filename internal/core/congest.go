package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// This file implements the paper's Section 1.3 discussion point: "A direct
// implementation of our algorithm in the Congest model yields an overhead
// of O(Δ) rounds". TwoSpannerCongest runs the exact same per-vertex
// program as TwoSpanner, but every logical round is realized as a fixed
// number of CONGEST subrounds over which the O(Δ)-word records are
// fragmented into O(log n)-bit chunks. The engine enforces the bandwidth,
// so a single oversized message aborts the run — the CONGEST legality is
// checked, not assumed.
//
// Physical traffic also rides the flat-buffer record path: a fragment is a
// record with Tag tagChunk whose Flag carries the logical payload kind,
// whose A word is the more-fragments marker, and whose Ints tail is the
// word slice. Reassembly decodes the word stream back into the logical
// record the LOCAL execution would have delivered.

// chunkWords is the number of payload words carried per chunk; with the
// header this keeps every chunk within the 8-word CONGEST budget.
const chunkWords = 6

// chunkBits is the fixed metered size of one fragment: a full 8-word
// CONGEST message — header (kind, more, count) plus up to chunkWords
// words.
func chunkBits(n int) int { return 8 * dist.IDBits(n) }

// Logical payload kind tags for the fragmenter.
const (
	kindSpanList uint8 = iota + 1
	kindUncov
	kindDens
	kindMax
	kindStar
	kindTerm
	kindVote
	kindAccept
	kindUncovFull
)

// encodePayload flattens a logical record into (kind, words). Densities
// travel as exact (spanned, cost) integer rationals — the unweighted
// algorithm's densities are ratios of counts, so one word each suffices;
// receivers recompute the float and its rounding, which is exactly how a
// real CONGEST implementation would ship them. Scalar ranks are split
// into two 31-bit words.
func encodePayload(r dist.Rec) (uint8, []int, error) {
	switch r.Tag {
	case tagSpan:
		return kindSpanList, r.Ints, nil
	case tagUncov:
		if r.Flag != 0 {
			return kindUncovFull, r.Ints, nil
		}
		return kindUncov, r.Ints, nil
	case tagDens:
		return kindDens, []int{int(r.A), int(r.B)}, nil
	case tagMax:
		return kindMax, []int{int(r.A), int(r.B)}, nil
	case tagStar:
		words := []int{int(r.A >> 31), int(r.A & ((1 << 31) - 1))}
		return kindStar, append(words, r.Ints...), nil
	case tagTerm:
		return kindTerm, r.Ints, nil
	case tagVote:
		return kindVote, r.Ints, nil
	case tagAccept:
		return kindAccept, r.Ints, nil
	default:
		return 0, nil, fmt.Errorf("core: unknown record tag %d in CONGEST mode", r.Tag)
	}
}

// decodePayload reverses encodePayload into the logical record.
func decodePayload(kind uint8, words []int, n int) (dist.Rec, error) {
	switch kind {
	case kindSpanList:
		return dist.Rec{Tag: tagSpan, Ints: words}, nil
	case kindUncov:
		return dist.Rec{Tag: tagUncov, Ints: words}, nil
	case kindUncovFull:
		return dist.Rec{Tag: tagUncov, Flag: 1, Ints: words}, nil
	case kindDens:
		if len(words) != 2 {
			return dist.Rec{}, errors.New("core: bad density fragment")
		}
		raw := ratValue(words[0], words[1])
		return dist.Rec{Tag: tagDens, A: int64(words[0]), B: int64(words[1]),
			F0: RoundUpPow2(raw), F1: raw, F2: 1}, nil
	case kindMax:
		if len(words) != 2 {
			return dist.Rec{}, errors.New("core: bad max fragment")
		}
		raw := ratValue(words[0], words[1])
		return dist.Rec{Tag: tagMax, A: int64(words[0]), B: int64(words[1]),
			F0: RoundUpPow2(raw), F1: raw, F2: 1}, nil
	case kindStar:
		if len(words) < 2 {
			return dist.Rec{}, errors.New("core: bad star fragment")
		}
		r := int64(words[0])<<31 | int64(words[1])
		return dist.Rec{Tag: tagStar, A: r, Ints: words[2:]}, nil
	case kindTerm:
		return dist.Rec{Tag: tagTerm, Ints: words}, nil
	case kindVote:
		if len(words)%2 != 0 {
			return dist.Rec{}, errors.New("core: bad vote fragment")
		}
		return dist.Rec{Tag: tagVote, Ints: words}, nil
	case kindAccept:
		return dist.Rec{Tag: tagAccept, Ints: words}, nil
	default:
		return dist.Rec{}, fmt.Errorf("core: unknown payload kind %d", kind)
	}
}

// ratValue recomputes a density from its exact integer rational. Both the
// sender (Phase B) and this decoder perform the identical float division,
// so LOCAL and CONGEST executions see bit-identical densities.
func ratValue(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// congestCtx adapts *dist.Ctx so that one logical round of the protocol
// becomes exactly `sub` physical CONGEST rounds, fragmenting every record
// into chunk records. All vertices derive `sub` from the globally known n
// and Δ, keeping the network in lockstep.
type congestCtx struct {
	ctx   *dist.Ctx
	sub   int
	cbits int // metered size of one chunk
	out   map[int]pendingPayload
}

type pendingPayload struct {
	kind  uint8
	words []int
}

// newCongestCtx computes the subround count from the maximum logical
// payload: star/uncovered/spanner lists have at most Δ+2 words and vote
// lists at most 2Δ words.
func newCongestCtx(ctx *dist.Ctx, maxDegree int) *congestCtx {
	return &congestCtx{ctx: ctx, sub: congestSubrounds(maxDegree), cbits: chunkBits(ctx.N()), out: make(map[int]pendingPayload)}
}

// Subrounds reports the physical rounds per logical round: the measured
// O(Δ) overhead.
func (c *congestCtx) Subrounds() int { return c.sub }

// ID implements roundCtx.
func (c *congestCtx) ID() int { return c.ctx.ID() }

// N implements roundCtx.
func (c *congestCtx) N() int { return c.ctx.N() }

// Neighbors implements roundCtx.
func (c *congestCtx) Neighbors() []int { return c.ctx.Neighbors() }

// Rand implements roundCtx.
func (c *congestCtx) Rand() *rand.Rand { return c.ctx.Rand() }

// SendRec implements roundCtx by queuing the record for fragmentation.
// The bits argument (the LOCAL accounting) is discarded: physical chunks
// meter their own fixed CONGEST size.
func (c *congestCtx) SendRec(to int, r dist.Rec, _ int) {
	kind, words, err := encodePayload(r)
	if err != nil {
		panic(err)
	}
	if _, dup := c.out[to]; dup {
		// The protocol sends at most one payload per (sender, receiver)
		// per logical round, which keeps reassembly unambiguous.
		panic("core: two payloads to one receiver in a logical round")
	}
	// The words slice may alias the caller's scratch (a rec built from
	// per-iteration state is fine, but the engine contract for staged
	// tails requires stability until commit) — the fragment loop below
	// reads it across sub physical rounds, so keep the reference; callers
	// rebuild their payloads per logical round.
	c.out[to] = pendingPayload{kind: kind, words: words}
}

// inStream reassembles one sender's fragmented payload.
type inStream struct {
	kind  uint8
	words []int
	done  bool
}

// collectChunks folds one physical round's chunk records into the
// reassembly map.
func collectChunks(incoming map[int]*inStream, msgs []dist.InRec) {
	for i := range msgs {
		m := &msgs[i]
		if m.Tag != tagChunk {
			panic(fmt.Sprintf("core: non-chunk record tag %d in CONGEST mode", m.Tag))
		}
		st := incoming[m.From]
		if st == nil || st.done {
			st = &inStream{kind: m.Flag}
			incoming[m.From] = st
		}
		// The chunk's word tail aliases the physical inbox arena; copy.
		st.words = append(st.words, m.Ints...)
		if m.A == 0 {
			st.done = true
		}
	}
}

// assemble decodes the reassembled streams into the logical inbox, sorted
// by sender.
func (c *congestCtx) assemble(incoming map[int]*inStream) []dist.InRec {
	froms := make([]int, 0, len(incoming))
	for from := range incoming {
		froms = append(froms, from)
	}
	sort.Ints(froms)
	msgs := make([]dist.InRec, 0, len(froms))
	for _, from := range froms {
		st := incoming[from]
		r, err := decodePayload(st.kind, st.words, c.ctx.N())
		if err != nil {
			panic(err)
		}
		msgs = append(msgs, dist.InRec{From: from, Rec: r})
	}
	return msgs
}

// congestMachine state: between physical rounds the machine is either
// mid-window (streaming fragments) or parked across whole logical rounds.
type cmState uint8

const (
	cmStart  cmState = iota // inner machine not yet started
	cmStream                // inside a logical window of sub physical rounds
	cmParked                // inner machine parked; wake starts a new window
)

// congestStream is one receiver's in-flight fragmented payload.
type congestStream struct {
	to     int
	kind   uint8
	words  []int
	offset int
}

// congestMachine nests the logical protocol machine inside the physical
// one: each inner yield opens a logical window of exactly sub physical
// rounds over which the queued payloads stream out as chunk records while
// the peers' chunks accumulate for reassembly. It is the state-machine
// form of the retired blocking adapter (one logical round = sub physical
// NextRound calls), stepping the inner machine only at window boundaries
// so the network stays on the same physical round grid in every mode.
type congestMachine struct {
	cc       *congestCtx
	inner    dist.Machine
	state    cmState
	round    int // physical rounds already spent in the current window
	sending  []congestStream
	incoming map[int]*inStream
}

func newCongestMachine(cc *congestCtx, inner dist.Machine) *congestMachine {
	return &congestMachine{cc: cc, inner: inner}
}

// Step implements dist.Machine.
func (m *congestMachine) Step(c *dist.Ctx, in dist.StepIn) dist.StepStatus {
	switch m.state {
	case cmStart:
		return m.advance(c, dist.StepIn{Start: true})
	case cmParked:
		if in.Quiesced {
			return m.advance(c, dist.StepIn{Quiesced: true})
		}
		// First physical round of a peer-initiated window: every stream's
		// first chunk is committed at a logical-round boundary, so this
		// wake lands on round 0 of the window and the remaining sub-1
		// physical rounds finish the collection and re-align the vertex
		// with the network's round grid.
		m.incoming = make(map[int]*inStream)
		collectChunks(m.incoming, in.Recs)
		m.round = 1
		return m.stream(c)
	default: // cmStream
		collectChunks(m.incoming, in.Recs)
		return m.stream(c)
	}
}

// advance hands one logical inbox to the inner machine and translates its
// blocking decision into the physical one.
func (m *congestMachine) advance(c *dist.Ctx, in dist.StepIn) dist.StepStatus {
	switch m.inner.Step(c, in) {
	case dist.StepDone:
		if len(m.cc.out) != 0 {
			panic("core: congest machine retired with queued sends")
		}
		return dist.StepDone
	case dist.StepPark:
		if len(m.cc.out) != 0 {
			panic("core: congest Recv with queued sends (park only when silent)")
		}
		m.state = cmParked
		return dist.StepPark
	}
	// Inner yield: open a new logical window over the queued payloads.
	m.sending = m.sending[:0]
	tos := make([]int, 0, len(m.cc.out))
	for to := range m.cc.out {
		tos = append(tos, to)
	}
	sort.Ints(tos)
	for _, to := range tos {
		p := m.cc.out[to]
		m.sending = append(m.sending, congestStream{to: to, kind: p.kind, words: p.words})
	}
	m.cc.out = make(map[int]pendingPayload)
	m.incoming = make(map[int]*inStream)
	m.round = 0
	return m.stream(c)
}

// stream either closes the window (sub physical rounds spent: reassemble
// and advance the inner machine) or stages the next fragment of every
// still-active stream and yields for one physical round.
func (m *congestMachine) stream(c *dist.Ctx) dist.StepStatus {
	if m.round == m.cc.sub {
		return m.advance(c, dist.StepIn{Recs: m.cc.assemble(m.incoming)})
	}
	for i := range m.sending {
		s := &m.sending[i]
		if s.offset == 0 || s.offset < len(s.words) {
			end := s.offset + chunkWords
			if end > len(s.words) {
				end = len(s.words)
			}
			more := int64(0)
			if end < len(s.words) {
				more = 1
			}
			chunk := dist.Rec{Tag: tagChunk, Flag: s.kind, A: more, Ints: s.words[s.offset:end]}
			s.offset = end
			if s.offset == 0 { // empty payload: mark sent
				s.offset = 1
			}
			c.SendRec(s.to, chunk, m.cc.cbits)
		}
	}
	m.round++
	m.state = cmStream
	return dist.StepYield
}

// CongestResult extends Result with the fragmentation accounting.
type CongestResult struct {
	Result
	// Subrounds is the number of physical CONGEST rounds per logical
	// round of the LOCAL algorithm: Θ(Δ), the Section 1.3 overhead.
	Subrounds int
	// Bandwidth is the enforced per-edge bit budget.
	Bandwidth int
}

// TwoSpannerCongest runs the unweighted minimum 2-spanner algorithm in the
// CONGEST model: identical logic to TwoSpanner, with every message
// fragmented into 8-word chunks and the engine enforcing the O(log n)
// bandwidth. The price is Θ(Δ) physical rounds per logical round,
// demonstrating the overhead the paper's discussion section describes.
func TwoSpannerCongest(g *graph.Graph, opts Options) (*CongestResult, error) {
	if g.Weighted() {
		return nil, errors.New("core: the CONGEST variant is unweighted (densities ship as count rationals)")
	}
	bandwidth := CongestBandwidth(g.N())
	ru := newURun(g)
	subrounds := congestSubrounds(g.MaxDegree())
	stats, err := dist.RunMachines(dist.Config{
		Graph:     g,
		Seed:      opts.Seed,
		Mode:      opts.ExecMode,
		Bandwidth: bandwidth,
		Enforce:   true,
		MaxRounds: opts.MaxRounds,
		OnRound:   opts.RoundHook,
		Cancel:    opts.Cancel,
		Tracer:    opts.Tracer,
		Shards:    opts.Shards,
	}, congestFactory(ru, opts))
	if err != nil {
		return nil, err
	}
	return &CongestResult{
		Result:    *ru.result(stats),
		Subrounds: subrounds,
		Bandwidth: bandwidth,
	}, nil
}

// CongestBandwidth is the per-edge per-round bit budget the CONGEST
// variant enforces for an n-vertex run: 8 words of ceil(log2 n) bits.
func CongestBandwidth(n int) int { return chunkBits(n) }

// congestSubrounds is the Θ(Δ) subround count the adapter uses — a pure
// function of the maximum degree, so the runner can report it without
// reaching into a machine.
func congestSubrounds(maxDegree int) int {
	maxWords := 2*maxDegree + 4
	sub := (maxWords + chunkWords - 1) / chunkWords
	if sub < 1 {
		sub = 1
	}
	return sub
}

// congestFactory wraps the undirected factory in the Section 1.3
// fragmenting CONGEST adapter.
func congestFactory(ru *uRun, opts Options) func(*dist.Ctx) dist.Machine {
	maxDeg := ru.g.MaxDegree()
	v := twoSpannerVariant(false)
	return func(ctx *dist.Ctx) dist.Machine {
		cc := newCongestCtx(ctx, maxDeg)
		nd := newUndirectedNode(cc, ru.g, v, ru.outs, ru.iters, &ru.fallbacks)
		nd.opts = opts
		nd.tele = ru.tele
		return newCongestMachine(cc, dist.NewPhasedMachine(nd))
	}
}
