package core

import (
	"sort"

	"distspanner/internal/flow"
)

// localView is a vertex's picture of its 2-neighborhood for one iteration:
// the selectable star edges (to neighbors), their costs, and the uncovered
// edges H_v between neighbors that a star can 2-span. Positions index the
// selectable neighbors; free neighbors (zero-cost star edges, which every
// chosen star includes implicitly) contribute per-item bonuses instead.
type localView struct {
	nbrs   []int       // selectable neighbor ids, sorted
	pos    map[int]int // neighbor id -> position
	cost   []float64   // star-edge cost per position (> 0)
	bonus  []float64   // uncovered H_v edges from this neighbor to free neighbors
	hAdj   [][]int     // H_v adjacency among selectable positions
	free   []int       // free (zero-cost) neighbor ids, always part of any star
	hPairs int         // number of H_v edges between selectable neighbors
}

// newLocalView builds the view. selectable maps neighbor id to the star-edge
// cost (must be > 0); free lists zero-cost neighbors; hEdges lists the
// uncovered 2-spannable edges {a, b} between neighbors (each edge once).
func newLocalView(selectable map[int]float64, free []int, hEdges [][2]int) *localView {
	v := &localView{pos: make(map[int]int, len(selectable))}
	for id := range selectable {
		v.nbrs = append(v.nbrs, id)
	}
	sort.Ints(v.nbrs)
	v.cost = make([]float64, len(v.nbrs))
	v.bonus = make([]float64, len(v.nbrs))
	v.hAdj = make([][]int, len(v.nbrs))
	for i, id := range v.nbrs {
		v.pos[id] = i
		v.cost[i] = selectable[id]
	}
	v.free = append([]int(nil), free...)
	sort.Ints(v.free)
	freeSet := make(map[int]bool, len(free))
	for _, id := range free {
		freeSet[id] = true
	}
	for _, e := range hEdges {
		a, ok1 := v.pos[e[0]]
		b, ok2 := v.pos[e[1]]
		switch {
		case ok1 && ok2:
			v.hAdj[a] = append(v.hAdj[a], b)
			v.hAdj[b] = append(v.hAdj[b], a)
			v.hPairs++
		case ok1 && freeSet[e[1]]:
			v.bonus[a]++
		case ok2 && freeSet[e[0]]:
			v.bonus[b]++
		default:
			// Edge between two free neighbors: already covered by the free
			// star edges added at start-up, never appears in H_v; or an
			// edge involving a non-neighbor, which cannot happen.
		}
	}
	return v
}

// starValue returns the number of H_v edges 2-spanned by the star with the
// given selectable positions (including bonuses via free neighbors) and the
// star's cost.
func (v *localView) starValue(sel []bool) (spanned, cost float64) {
	for p, in := range sel {
		if !in {
			continue
		}
		cost += v.cost[p]
		spanned += v.bonus[p]
		// Each H_v pair {p, q} is counted once, at its lower endpoint.
		for _, q := range v.hAdj[p] {
			if q > p && sel[q] {
				spanned++
			}
		}
	}
	return spanned, cost
}

// density returns spanned/cost for the selection, 0 for an empty or
// zero-cost selection.
func (v *localView) density(sel []bool) float64 {
	s, c := v.starValue(sel)
	if c <= 0 {
		return 0
	}
	return s / c
}

// densestStar computes the densest star among the allowed selectable
// positions (nil means all) using the flow-based densest-selection oracle.
// It returns the selection as a position-indexed mask and its density.
// When no positions are allowed it returns (nil, 0).
func (v *localView) densestStar(allowed []bool) ([]bool, float64) {
	// Build the sub-instance over allowed positions.
	var items []int
	for p := range v.nbrs {
		if allowed == nil || allowed[p] {
			items = append(items, p)
		}
	}
	if len(items) == 0 {
		return nil, 0
	}
	idx := make(map[int]int, len(items))
	in := &flow.DensestInstance{
		NumItems: len(items),
		Cost:     make([]float64, len(items)),
		Bonus:    make([]float64, len(items)),
	}
	for i, p := range items {
		idx[p] = i
		in.Cost[i] = v.cost[p]
		in.Bonus[i] = v.bonus[p]
	}
	for _, p := range items {
		for _, q := range v.hAdj[p] {
			if q > p {
				if qi, ok := idx[q]; ok {
					in.Pairs = append(in.Pairs, [2]int{idx[p], qi})
				}
			}
		}
	}
	selSub, density, err := flow.Densest(in)
	if err != nil {
		// Instance construction is internal; errors indicate a bug.
		panic("core: densest star oracle failed: " + err.Error())
	}
	sel := make([]bool, len(v.nbrs))
	for i, p := range items {
		sel[p] = selSub[i]
	}
	return sel, density
}

// chooseStar implements the star-selection rule of Section 4.1. rho is the
// vertex's rounded density this iteration; prev is the star chosen in the
// previous iteration if the vertex was then a candidate at the same rounded
// density (nil otherwise). It returns the chosen selection and whether the
// degenerate fallback was taken (which Claim 4.4 proves never happens).
func (v *localView) chooseStar(rho float64, prev []bool) (sel []bool, fallback bool) {
	threshold := rho / 4
	if prev != nil {
		// Continuation at the same rounded density: shrink within prev.
		if v.density(prev) >= threshold {
			return copyMask(prev), false
		}
		base, d := v.densestStar(prev)
		if base != nil && d >= threshold {
			v.extend(base, threshold, prev)
			return base, false
		}
		// Claim 4.4 says this branch is unreachable; fall back to a fresh
		// choice and report it so tests can assert the invariant.
		sel, _ := v.freshStar(threshold)
		return sel, true
	}
	sel, _ = v.freshStar(threshold)
	return sel, false
}

func (v *localView) freshStar(threshold float64) ([]bool, float64) {
	sel, d := v.densestStar(nil)
	if sel == nil {
		return make([]bool, len(v.nbrs)), 0
	}
	v.extend(sel, threshold, nil)
	return sel, d
}

// extend grows sel per Section 4.1: repeatedly add a single star edge if
// the density stays at least threshold; otherwise add a disjoint star of
// density at least threshold; stop when neither exists. A non-nil within
// restricts additions to that mask (the shrink path only adds from the
// previous star).
func (v *localView) extend(sel []bool, threshold float64, within []bool) {
	spanned, cost := v.starValue(sel)
	for {
		progressed := false
		// Single-edge additions, in position order for determinism.
		for p := range v.nbrs {
			if sel[p] || (within != nil && !within[p]) {
				continue
			}
			gain := v.bonus[p]
			for _, q := range v.hAdj[p] {
				if sel[q] {
					gain++
				}
			}
			if (spanned+gain)/(cost+v.cost[p]) >= threshold {
				sel[p] = true
				spanned += gain
				cost += v.cost[p]
				progressed = true
			}
		}
		if progressed {
			continue
		}
		// Disjoint star addition: densest star among the remaining allowed
		// positions.
		allowed := make([]bool, len(v.nbrs))
		any := false
		for p := range v.nbrs {
			if !sel[p] && (within == nil || within[p]) {
				allowed[p] = true
				any = true
			}
		}
		if !any {
			return
		}
		disj, d := v.densestStar(allowed)
		if disj == nil || d < threshold {
			return
		}
		for p, in := range disj {
			if in {
				sel[p] = true
			}
		}
		spanned, cost = v.starValue(sel)
	}
}

// starNeighborIDs converts a selection mask to the sorted list of neighbor
// ids forming the star, including the always-present free neighbors.
func (v *localView) starNeighborIDs(sel []bool) []int {
	out := make([]int, 0, len(v.free)+len(sel))
	out = append(out, v.free...)
	for p, in := range sel {
		if in {
			out = append(out, v.nbrs[p])
		}
	}
	sort.Ints(out)
	return out
}

// maskFromIDs converts a list of neighbor ids back into a selection mask,
// ignoring free neighbors and ids that are no longer selectable.
func (v *localView) maskFromIDs(ids []int) []bool {
	sel := make([]bool, len(v.nbrs))
	for _, id := range ids {
		if p, ok := v.pos[id]; ok {
			sel[p] = true
		}
	}
	return sel
}

func copyMask(m []bool) []bool {
	out := make([]bool, len(m))
	copy(out, m)
	return out
}
