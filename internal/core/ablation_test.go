package core

import (
	"testing"

	"distspanner/internal/gen"
	"distspanner/internal/span"
)

// The ablation knobs in Options isolate two design choices of Section 4:
// the |C_v|/8 acceptance threshold and the Section 4.1 monotone
// star-choice rule. These tests check that the ablated variants remain
// correct (they still produce 2-spanners) while the design choices' costs
// and benefits stay measurable.

func TestAblationVoteDenominatorStillValid(t *testing.T) {
	g := gen.ConnectedGNP(25, 0.3, 4)
	for _, den := range []int{1, 2, 8, 32} {
		res, err := TwoSpanner(g, Options{Seed: 3, VoteDenominator: den})
		if err != nil {
			t.Fatalf("den=%d: %v", den, err)
		}
		if !span.IsKSpanner(g, res.Spanner, 2) {
			t.Fatalf("den=%d: invalid spanner", den)
		}
	}
}

func TestAblationStricterVotesNeverAcceptMore(t *testing.T) {
	// VoteDenominator = 1 demands votes >= |C_v|: acceptance becomes much
	// rarer, so runs take at least as many iterations as the default on
	// star-rich graphs.
	g := gen.PlantedStars(4, 7, 0.5, 2)
	strict, err := TwoSpanner(g, Options{Seed: 5, VoteDenominator: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := TwoSpanner(g, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Iterations < def.Iterations {
		t.Fatalf("strict voting finished in %d iterations, default needed %d",
			strict.Iterations, def.Iterations)
	}
	if !span.IsKSpanner(g, strict.Spanner, 2) {
		t.Fatal("strict variant invalid")
	}
}

func TestAblationFreshStarsStillValid(t *testing.T) {
	// Without the monotone rule, correctness is unharmed (the
	// approximation analysis never used it) — only the round argument
	// (Claim 4.4 / the potential function) loses its footing.
	g := gen.ConnectedGNP(25, 0.3, 7)
	res, err := TwoSpanner(g, Options{Seed: 2, FreshStars: true})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("fresh-star ablation produced an invalid spanner")
	}
}

func TestAblationDefaultsMatchExplicitEight(t *testing.T) {
	g := gen.ConnectedGNP(20, 0.3, 1)
	a, err := TwoSpanner(g, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TwoSpanner(g, Options{Seed: 9, VoteDenominator: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Spanner.Equal(b.Spanner) {
		t.Fatal("explicit VoteDenominator=8 differs from the default")
	}
}

// BenchmarkAblationVoteThreshold sweeps the acceptance denominator.
func BenchmarkAblationVoteThreshold(b *testing.B) {
	g := gen.PlantedStars(4, 8, 0.4, 3)
	for _, den := range []int{2, 8, 32} {
		b.Run(benchName("den", den), func(b *testing.B) {
			var iters, size int
			for i := 0; i < b.N; i++ {
				res, err := TwoSpanner(g, Options{Seed: int64(i), VoteDenominator: den})
				if err != nil {
					b.Fatal(err)
				}
				iters, size = res.Iterations, res.Spanner.Len()
			}
			b.ReportMetric(float64(iters), "iterations")
			b.ReportMetric(float64(size), "edges")
		})
	}
}

// BenchmarkAblationStarRule contrasts the Section 4.1 monotone rule with
// fresh star choices.
func BenchmarkAblationStarRule(b *testing.B) {
	g := gen.PlantedStars(4, 8, 0.4, 3)
	for _, fresh := range []bool{false, true} {
		name := "monotone"
		if fresh {
			name = "fresh"
		}
		b.Run(name, func(b *testing.B) {
			var iters int
			for i := 0; i < b.N; i++ {
				res, err := TwoSpanner(g, Options{Seed: int64(i), FreshStars: fresh})
				if err != nil {
					b.Fatal(err)
				}
				iters = res.Iterations
			}
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkCongestOverhead measures the Θ(Δ) subround overhead.
func BenchmarkCongestOverhead(b *testing.B) {
	for _, n := range []int{8, 16} {
		g := gen.Clique(n)
		b.Run(benchName("K", n), func(b *testing.B) {
			var sub, rounds int
			for i := 0; i < b.N; i++ {
				res, err := TwoSpannerCongest(g, Options{Seed: int64(i)})
				if err != nil {
					b.Fatal(err)
				}
				sub, rounds = res.Subrounds, res.Stats.Rounds
			}
			b.ReportMetric(float64(sub), "subrounds")
			b.ReportMetric(float64(rounds), "congestRounds")
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestAblationNoRoundingStillValid(t *testing.T) {
	g := gen.ConnectedGNP(25, 0.3, 6)
	res, err := TwoSpanner(g, Options{Seed: 4, NoRounding: true})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, res.Spanner, 2) {
		t.Fatal("no-rounding ablation produced an invalid spanner")
	}
	// Exact comparisons make candidacy rarer (strictly max density), so
	// the run still terminates; that is the main point of this test.
}
