//go:build !race

package core

// See race_enabled_test.go.
const raceEnabled = false
