package core

import (
	"fmt"
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/mds"
)

// Real-algorithm tail benchmarks: the spanner/MDS runs whose late rounds
// leave most vertices parked or retired — the regime the activity-aware
// ports (Recv-parking, delta messaging) target, measured head-to-head
// across the two scheduling modes. Custom metrics report rounds/sec plus
// the per-round activity means, so the bench artifact records the
// activity profile alongside the throughput trajectory.

// reportTail attaches the shared tail metrics.
func reportTail(b *testing.B, s dist.Stats) {
	b.ReportMetric(float64(s.Rounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
	if s.Rounds > 0 {
		b.ReportMetric(float64(s.ActiveSteps)/float64(s.Rounds), "meanActive")
		b.ReportMetric(float64(s.ParkedSteps)/float64(s.Rounds), "meanParked")
	}
}

// BenchmarkTwoSpannerTail runs the weighted 2-spanner on a core+fringe
// instance at n >= 4096 under both schedulers.
func BenchmarkTwoSpannerTail(b *testing.B) {
	for _, n := range []int{4096, 8192} {
		g := tailInstance(512, n, 3)
		for _, mode := range []dist.Mode{dist.ModeBarrier, dist.ModeEvent, dist.ModeStep} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				var stats dist.Stats
				for i := 0; i < b.N; i++ {
					res, err := TwoSpanner(g, Options{Seed: 1, ExecMode: mode})
					if err != nil {
						b.Fatal(err)
					}
					stats = res.Stats
				}
				b.StopTimer()
				reportTail(b, stats)
			})
		}
	}
}

// BenchmarkTwoSpannerDeepTail stretches the tail with the NoRounding
// ablation (exact-maximum candidacy resolves one small region at a time):
// hundreds of iterations whose rounds touch a few hundred vertices while
// thousands stay parked. Smaller n keeps it benchable; the activity
// profile, not the instance size, is the point.
func BenchmarkTwoSpannerDeepTail(b *testing.B) {
	g := tailInstance(96, 1024, 3)
	for _, mode := range []dist.Mode{dist.ModeBarrier, dist.ModeEvent, dist.ModeStep} {
		b.Run(fmt.Sprintf("n=%d/mode=%s", g.N(), mode), func(b *testing.B) {
			var stats dist.Stats
			for i := 0; i < b.N; i++ {
				res, err := TwoSpanner(g, Options{Seed: 1, ExecMode: mode, NoRounding: true})
				if err != nil {
					b.Fatal(err)
				}
				stats = res.Stats
			}
			b.StopTimer()
			reportTail(b, stats)
		})
	}
}

// BenchmarkTwoSpannerBusy is the tail-less counterweight to the tail
// benchmarks: a uniform sparse G(n, 8/n) where density levels resolve
// nearly in lockstep, so most vertices are active in most rounds and the
// run is dominated by busy phases — the regime that pays the delta
// receivers' per-message decode cost rather than profiting from parking.
// This is the yardstick for the flat-buffer inbox path.
func BenchmarkTwoSpannerBusy(b *testing.B) {
	for _, n := range []int{4096, 8192} {
		g := gen.ConnectedGNP(n, 8.0/float64(n), 1)
		for _, mode := range []dist.Mode{dist.ModeBarrier, dist.ModeEvent, dist.ModeStep} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				var stats dist.Stats
				for i := 0; i < b.N; i++ {
					res, err := TwoSpanner(g, Options{Seed: 1, ExecMode: mode})
					if err != nil {
						b.Fatal(err)
					}
					stats = res.Stats
				}
				b.StopTimer()
				reportTail(b, stats)
			})
		}
	}
}

// BenchmarkMDSTail runs the CONGEST MDS on a sparse G(n, 8/n) where
// domination spreads in waves and the covered interior halts or parks.
func BenchmarkMDSTail(b *testing.B) {
	for _, n := range []int{4096, 8192} {
		g := gen.ConnectedGNP(n, 8.0/float64(n), 1)
		for _, mode := range []dist.Mode{dist.ModeBarrier, dist.ModeEvent, dist.ModeStep} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				var stats dist.Stats
				for i := 0; i < b.N; i++ {
					res, err := mds.Run(g, mds.Options{Seed: 1, ExecMode: mode})
					if err != nil {
						b.Fatal(err)
					}
					stats = res.Stats
				}
				b.StopTimer()
				reportTail(b, stats)
			})
		}
	}
}
