package core

import "testing"

func TestDirViewChooseStarShrinkPath(t *testing.T) {
	// Previous star {1,2} whose density under the new H dropped below
	// rho/8: the shrink path must recompute within prev only.
	nbrs := map[int]int{1: 1, 2: 1, 3: 2}
	// H now only supports the pair {2,3} (multiplicity 2) and {1,2} once.
	dv := newDirView(nbrs, [][2]int{{2, 3}, {3, 2}, {1, 2}})
	prev := dv.maskFromIDs([]int{1, 2})
	// rho chosen so prev (density (1)/(2) = 0.5) stays acceptable at
	// threshold rho/8 when rho = 4: 0.5 >= 0.5: kept.
	sel, fb := dv.chooseStar(4, prev)
	if fb {
		t.Fatal("unexpected fallback")
	}
	if sel[dv.uv.pos[3]] {
		t.Fatal("shrink path escaped the previous star")
	}
	// With a much higher rho the previous star fails and the fallback
	// (fresh choice) fires — the directed analogue's guard path.
	_, fb2 := dv.chooseStar(64, prev)
	if !fb2 {
		t.Fatal("expected fallback when prev contains no dense-enough star")
	}
}

func TestDirViewMaskFromIDs(t *testing.T) {
	dv := newDirView(map[int]int{5: 1, 9: 2}, nil)
	mask := dv.maskFromIDs([]int{9})
	if mask[dv.uv.pos[5]] || !mask[dv.uv.pos[9]] {
		t.Fatal("maskFromIDs wrong")
	}
}
