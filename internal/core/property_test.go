package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distspanner/internal/gen"
	"distspanner/internal/span"
)

// Property: across random instances and seeds, the undirected algorithm
// always returns a valid 2-spanner, never takes the Claim 4.4 fallback,
// and stays within the analysis's ratio envelope against the n-1 bound.
func TestTwoSpannerAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		g := gen.ConnectedGNP(n, 0.15+rng.Float64()*0.4, seed)
		res, err := TwoSpanner(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		if !span.IsKSpanner(g, res.Spanner, 2) || res.Fallbacks != 0 {
			return false
		}
		bound := 80 * (math.Log2(math.Max(2, float64(g.M())/float64(g.N()))) + 2)
		return res.Cost/float64(g.N()-1) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the directed algorithm always returns a valid directed
// 2-spanner on random digraphs.
func TestDirectedAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		d := gen.RandomDigraph(n, 0.15+rng.Float64()*0.35, seed)
		res, err := DirectedTwoSpanner(d, Options{Seed: seed})
		if err != nil {
			return false
		}
		return span.IsDirectedKSpanner(d, res.Spanner, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: client-server runs are always valid for random splits.
func TestClientServerAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(18)
		g := gen.ConnectedGNP(n, 0.3, seed)
		clients, servers := gen.ClientServerSplit(g, 0.3+rng.Float64()*0.5, 0.5+rng.Float64()*0.4, seed)
		res, err := ClientServerTwoSpanner(g, clients, servers, Options{Seed: seed})
		if err != nil {
			return false
		}
		return span.ClientServerValid(g, clients, servers, res.Spanner, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted runs remain valid with arbitrary weight spreads,
// including zero-weight edges.
func TestWeightedAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(15)
		g := gen.ConnectedGNP(n, 0.35, seed)
		for i := 0; i < g.M(); i++ {
			switch rng.Intn(4) {
			case 0:
				g.SetWeight(i, 0)
			default:
				g.SetWeight(i, 0.5+rng.Float64()*float64(int64(1)<<uint(rng.Intn(8))))
			}
		}
		res, err := TwoSpanner(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		return span.IsKSpanner(g, res.Spanner, 2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: CONGEST and LOCAL executions agree exactly on random
// unweighted instances.
func TestCongestLocalAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(14)
		g := gen.ConnectedGNP(n, 0.3, seed)
		local, err := TwoSpanner(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		congest, err := TwoSpannerCongest(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		return local.Spanner.Equal(congest.Spanner) &&
			congest.Stats.MaxEdgeRoundBits <= congest.Bandwidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: chooseStar always returns a star of density >= rho/4 with
// respect to the view whenever a star of rounded density rho exists
// (fresh path), on random local views.
func TestChooseStarDensityInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 3 + rng.Intn(8)
		sel := make(map[int]float64, k)
		for i := 0; i < k; i++ {
			sel[i] = 1
		}
		var h [][2]int
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				if rng.Float64() < 0.5 {
					h = append(h, [2]int{a, b})
				}
			}
		}
		v := newLocalView(sel, nil, h)
		dsel, raw := v.densestStar(nil)
		if dsel == nil || raw == 0 {
			return true
		}
		rho := RoundUpPow2(raw)
		mask, fb := v.chooseStar(rho, nil)
		if fb {
			return false
		}
		return v.density(mask) >= rho/4-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: RoundUpPow2 returns the unique power p with p/2 <= x < p.
func TestRoundUpPow2Property(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) || x > 1e300 || x < 1e-300 {
			return true
		}
		p := RoundUpPow2(x)
		return p > x && p/2 <= x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
