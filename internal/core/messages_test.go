package core

import (
	"testing"

	"distspanner/internal/dist"
)

// TestPayloadBitsConformance audits every payload schema in this package
// against its struct fields via dist.AuditPayloadFields: each field is
// charged its accounting minimum (per element for lists), and a field
// added to any struct without an entry here — or without Bits() covering
// it — fails the test. This is the regression guard for the densMsg
// undercount (it billed 3 words for 5 transmitted fields) and the
// uncovMsg full-flag bit.
func TestPayloadBitsConformance(t *testing.T) {
	for _, n := range []int{2, 64, 1 << 14} {
		w := dist.IDBits(n)
		cases := []struct {
			name      string
			p         interface{ Bits() int }
			accounted map[string]int
		}{
			{"spanListMsg", spanListMsg{nbrs: []int{1, 2, 3}, n: n},
				map[string]int{"nbrs": w, "n": 0}},
			{"uncovMsg", uncovMsg{nbrs: []int{1, 2}, full: true, n: n},
				map[string]int{"nbrs": w, "full": 1, "n": 0}},
			{"densMsg", densMsg{rho: 2, raw: 1.5, wmax: 3, num: 3, den: 2},
				map[string]int{"rho": 64, "raw": 64, "wmax": 64, "num": 64, "den": 64}},
			{"maxMsg", maxMsg{rho: 2, raw: 1.5, wmax: 3, num: 3, den: 2},
				map[string]int{"rho": 64, "raw": 64, "wmax": 64, "num": 64, "den": 64}},
			{"starMsg", starMsg{star: []int{0, 1}, r: 99, n: n},
				map[string]int{"star": w, "r": 4 * w, "n": 0}},
			{"termMsg", termMsg{added: []int{5}, n: n},
				map[string]int{"added": w, "n": 0}},
			{"voteMsg", voteMsg{pairs: []int{1, 2, 3, 4}, n: n},
				map[string]int{"pairs": w, "n": 0}},
			{"acceptMsg", acceptMsg{star: []int{7}, n: n},
				map[string]int{"star": w, "n": 0}},
			{"dirSpanListMsg", dirSpanListMsg{outNbrs: []int{1, 2}, n: n},
				map[string]int{"outNbrs": w, "n": 0}},
			{"dirUncovMsg", dirUncovMsg{heads: []int{1}, full: true, n: n},
				map[string]int{"heads": w, "full": 1, "n": 0}},
			{"dirStarMsg", dirStarMsg{entries: []int{packDirEntry(1, true, false)}, r: 3, n: n},
				map[string]int{"entries": w + 2, "r": 4 * w, "n": 0}},
			{"dirTermMsg", dirTermMsg{pairs: []int{1, 2}, n: n},
				map[string]int{"pairs": w, "n": 0}},
		}
		for _, tc := range cases {
			if err := dist.AuditPayloadFields(tc.p, tc.p.Bits(), tc.accounted); err != nil {
				t.Errorf("n=%d %s: %v", n, tc.name, err)
			}
		}
	}
}

// TestDensMsgBillsAllFiveFields pins the corrected densMsg/maxMsg size:
// the payload carries three floats and the exact num/den rational the
// CONGEST adapter ships, so 3 words is an undercount and 5×64 is the
// honest LOCAL accounting.
func TestDensMsgBillsAllFiveFields(t *testing.T) {
	if got := (densMsg{}).Bits(); got != 5*64 {
		t.Fatalf("densMsg.Bits() = %d, want %d (rho, raw, wmax, num, den)", got, 5*64)
	}
	if got := (maxMsg{}).Bits(); got != 5*64 {
		t.Fatalf("maxMsg.Bits() = %d, want %d", got, 5*64)
	}
}
