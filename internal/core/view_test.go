package core

import (
	"math"
	"testing"
)

func TestRoundUpPow2(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {-3, 0},
		{0.3, 0.5}, {0.5, 1}, {0.75, 1},
		{1, 2}, {1.5, 2}, {2, 4}, {3, 4}, {4, 8}, {7.9, 8}, {8, 16},
		{0.25, 0.5}, {0.125, 0.25},
	}
	for _, c := range cases {
		if got := RoundUpPow2(c.in); got != c.want {
			t.Fatalf("RoundUpPow2(%f) = %f, want %f (strictly greater power of 2)", c.in, got, c.want)
		}
	}
}

func TestLocalViewDensity(t *testing.T) {
	// Neighbors 10, 20, 30 with unit costs; H_v edges {10,20} and {20,30}.
	sel := map[int]float64{10: 1, 20: 1, 30: 1}
	v := newLocalView(sel, nil, [][2]int{{10, 20}, {20, 30}})
	full := []bool{true, true, true}
	s, c := v.starValue(full)
	if s != 2 || c != 3 {
		t.Fatalf("full star value = (%f, %f), want (2, 3)", s, c)
	}
	// The densest star is the full star here: 2/3. Any pair gives 1/2.
	mask, d := v.densestStar(nil)
	if math.Abs(d-2.0/3.0) > 1e-9 {
		t.Fatalf("densest density = %f, want 2/3", d)
	}
	for p, in := range mask {
		if !in {
			t.Fatalf("densest star must select all neighbors, missing position %d", p)
		}
	}
}

func TestLocalViewDensestPrefersCore(t *testing.T) {
	// Neighbors 1..5; H_v forms a K4 on {1,2,3,4} (6 edges) and a pendant
	// edge {1,5}. Densest star is {1,2,3,4}: 6/4 > 7/5.
	sel := map[int]float64{1: 1, 2: 1, 3: 1, 4: 1, 5: 1}
	var h [][2]int
	for a := 1; a <= 4; a++ {
		for b := a + 1; b <= 4; b++ {
			h = append(h, [2]int{a, b})
		}
	}
	h = append(h, [2]int{1, 5})
	v := newLocalView(sel, nil, h)
	mask, d := v.densestStar(nil)
	if math.Abs(d-1.5) > 1e-9 {
		t.Fatalf("densest density = %f, want 1.5", d)
	}
	if mask[v.pos[5]] {
		t.Fatal("pendant neighbor must not be in the densest star")
	}
}

func TestLocalViewFreeNeighborsBonuses(t *testing.T) {
	// Free neighbor 99 (zero-weight star edge); selectable 1 with an H
	// edge to 99: bonus of 1 at cost of 1's weight.
	sel := map[int]float64{1: 2}
	v := newLocalView(sel, []int{99}, [][2]int{{1, 99}})
	if v.bonus[v.pos[1]] != 1 {
		t.Fatalf("bonus = %f, want 1", v.bonus[v.pos[1]])
	}
	mask, d := v.densestStar(nil)
	if math.Abs(d-0.5) > 1e-9 {
		t.Fatalf("density = %f, want 1/2 (one edge per weight 2)", d)
	}
	ids := v.starNeighborIDs(mask)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 99 {
		t.Fatalf("star ids = %v, want [1 99] (free neighbors always included)", ids)
	}
}

func TestChooseStarFreshMeetsThreshold(t *testing.T) {
	// rho rounded = 2 for raw densities in (1, 2]; chosen star must have
	// density >= rho/4 = 0.5.
	sel := map[int]float64{1: 1, 2: 1, 3: 1, 4: 1}
	h := [][2]int{{1, 2}, {2, 3}, {3, 4}, {1, 4}, {1, 3}}
	v := newLocalView(sel, nil, h)
	_, raw := v.densestStar(nil)
	rho := RoundUpPow2(raw)
	mask, fb := v.chooseStar(rho, nil)
	if fb {
		t.Fatal("fresh choice must not fall back")
	}
	if d := v.density(mask); d < rho/4-1e-9 {
		t.Fatalf("chosen star density %f < rho/4 = %f", d, rho/4)
	}
}

func TestChooseStarExtensionAddsDisjoint(t *testing.T) {
	// Two disjoint triangles among neighbors: {1,2,3} and {4,5,6}, each
	// with 3 H-edges (density 1). The densest star is one triangle; the
	// extension rule must absorb the other (density 1 >= rho/4 = 0.5).
	sel := map[int]float64{1: 1, 2: 1, 3: 1, 4: 1, 5: 1, 6: 1}
	h := [][2]int{{1, 2}, {2, 3}, {1, 3}, {4, 5}, {5, 6}, {4, 6}}
	v := newLocalView(sel, nil, h)
	_, raw := v.densestStar(nil)
	rho := RoundUpPow2(raw) // raw = 1, rho = 2
	mask, fb := v.chooseStar(rho, nil)
	if fb {
		t.Fatal("unexpected fallback")
	}
	count := 0
	for _, in := range mask {
		if in {
			count++
		}
	}
	if count != 6 {
		t.Fatalf("extension selected %d neighbors, want all 6 (disjoint star absorbed)", count)
	}
}

func TestChooseStarShrinkPath(t *testing.T) {
	// Previous star {1,2,3} with old H; new H lost edge {1,2} but keeps
	// {2,3}: density of prev under new H is 1/3 >= rho/4 when rho <= 4/3.
	sel := map[int]float64{1: 1, 2: 1, 3: 1}
	v := newLocalView(sel, nil, [][2]int{{2, 3}})
	prev := []bool{true, true, true}
	rho := 1.0 // threshold 0.25; prev density = 1/3 >= 0.25: keep prev
	mask, fb := v.chooseStar(rho, prev)
	if fb {
		t.Fatal("unexpected fallback")
	}
	for p, in := range prev {
		if mask[p] != in {
			t.Fatal("shrink path must keep the previous star when still dense enough")
		}
	}
	// With rho = 2 (threshold 0.5), prev density 1/3 < 0.5: shrink to the
	// densest sub-star {2,3} (density 1/2).
	mask2, fb2 := v.chooseStar(2, prev)
	if fb2 {
		t.Fatal("unexpected fallback on shrink")
	}
	if mask2[v.pos[1]] {
		t.Fatal("shrunken star must drop neighbor 1")
	}
	if !mask2[v.pos[2]] || !mask2[v.pos[3]] {
		t.Fatal("shrunken star must keep the dense pair {2,3}")
	}
}

func TestChooseStarShrinkNeverGrows(t *testing.T) {
	// The shrink path must never select outside prev even when denser
	// stars exist elsewhere.
	sel := map[int]float64{1: 1, 2: 1, 3: 1, 4: 1}
	// Dense pair {3,4} outside prev; prev = {1,2} with one edge.
	v := newLocalView(sel, nil, [][2]int{{1, 2}, {3, 4}})
	prev := []bool{true, true, false, false}
	mask, fb := v.chooseStar(2, prev) // threshold 0.5; prev density 1/2: kept
	if fb {
		t.Fatal("unexpected fallback")
	}
	if mask[v.pos[3]] || mask[v.pos[4]] {
		t.Fatal("shrink path escaped the previous star")
	}
}
