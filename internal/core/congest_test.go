package core

import (
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func mustCongest(t *testing.T, g *graph.Graph, seed int64) *CongestResult {
	t.Helper()
	res, err := TwoSpannerCongest(g, Options{Seed: seed})
	if err != nil {
		t.Fatalf("TwoSpannerCongest failed: %v", err)
	}
	return res
}

func TestCongestProducesValidSpanner(t *testing.T) {
	families := map[string]*graph.Graph{
		"clique":  gen.Clique(12),
		"gnp":     gen.ConnectedGNP(25, 0.25, 1),
		"planted": gen.PlantedStars(3, 6, 0.5, 2),
		"cycle":   gen.Cycle(10),
	}
	for name, g := range families {
		res := mustCongest(t, g, 3)
		if !span.IsKSpanner(g, res.Spanner, 2) {
			t.Errorf("%s: CONGEST run produced an invalid spanner", name)
		}
		if res.Fallbacks != 0 {
			t.Errorf("%s: Claim 4.4 fallback in CONGEST mode", name)
		}
	}
}

func TestCongestMatchesLocalOutput(t *testing.T) {
	// Same algorithm, same seed: the fragmented CONGEST execution must
	// produce exactly the same spanner as the LOCAL execution.
	g := gen.ConnectedGNP(20, 0.3, 5)
	local, err := TwoSpanner(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	congest := mustCongest(t, g, 7)
	if !local.Spanner.Equal(congest.Spanner) {
		t.Fatalf("CONGEST spanner (%d edges) differs from LOCAL (%d edges)",
			congest.Spanner.Len(), local.Spanner.Len())
	}
	if local.Iterations != congest.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", local.Iterations, congest.Iterations)
	}
}

func TestCongestBandwidthRespected(t *testing.T) {
	// Enforcement is on inside TwoSpannerCongest: reaching here means no
	// violation; additionally the recorded max must be within budget.
	g := gen.Clique(14)
	res := mustCongest(t, g, 2)
	if res.Stats.MaxEdgeRoundBits > res.Bandwidth {
		t.Fatalf("max edge-round bits %d exceed enforced budget %d",
			res.Stats.MaxEdgeRoundBits, res.Bandwidth)
	}
	if res.Stats.BandwidthViolations != 0 {
		t.Fatal("bandwidth violations recorded despite enforcement")
	}
}

func TestCongestOverheadIsThetaDelta(t *testing.T) {
	// Section 1.3: the direct CONGEST implementation pays Θ(Δ) physical
	// rounds per logical round. Subrounds must grow linearly with Δ and
	// total rounds must be ≈ subrounds × local rounds.
	prev := 0
	for _, n := range []int{8, 16, 32} {
		g := gen.Clique(n)
		res := mustCongest(t, g, 1)
		if res.Subrounds <= prev {
			t.Fatalf("subrounds did not grow with Δ: %d after %d", res.Subrounds, prev)
		}
		prev = res.Subrounds
		local, err := TwoSpanner(g, Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		wantRounds := local.Stats.Rounds * res.Subrounds
		if res.Stats.Rounds != wantRounds {
			t.Fatalf("n=%d: CONGEST rounds %d != local %d × subrounds %d",
				n, res.Stats.Rounds, local.Stats.Rounds, res.Subrounds)
		}
	}
}

func TestCongestRejectsWeighted(t *testing.T) {
	g := gen.Clique(4)
	g.SetWeight(0, 2)
	if _, err := TwoSpannerCongest(g, Options{}); err == nil {
		t.Fatal("weighted graph must be rejected in CONGEST mode")
	}
}

func TestPayloadCodecRoundTrip(t *testing.T) {
	n := 64
	recs := []struct {
		name string
		r    dist.Rec
	}{
		{"spanList", spanListMsg{nbrs: []int{1, 5, 9}, n: n}.rec()},
		{"uncov", uncovMsg{nbrs: []int{2, 3}, n: n}.rec()},
		{"uncov-full", uncovMsg{nbrs: []int{2, 3}, full: true, n: n}.rec()},
		{"uncov-empty", uncovMsg{n: n}.rec()},
		{"dens", densMsg{rho: 4, raw: 3.5, wmax: 1, num: 7, den: 2}.rec()},
		{"max", maxMsg{rho: 4, raw: 7.0 / 3.0, wmax: 1, num: 7, den: 3}.rec()},
		{"star", starMsg{star: []int{7, 8, 20}, r: (int64(3) << 31) | 12345, n: n}.rec()},
		{"term", termMsg{added: []int{4}, n: n}.rec()},
		{"vote", voteMsg{pairs: []int{1, 2, 3, 4}, n: n}.rec()},
		{"accept", acceptMsg{star: []int{0, 63}, n: n}.rec()},
	}
	for _, tc := range recs {
		kind, words, err := encodePayload(tc.r)
		if err != nil {
			t.Fatalf("%s: encode failed: %v", tc.name, err)
		}
		got, err := decodePayload(kind, words, n)
		if err != nil {
			t.Fatalf("%s: decode failed: %v", tc.name, err)
		}
		if got.Tag != tc.r.Tag || got.Flag != tc.r.Flag {
			t.Fatalf("%s: tag/flag round trip: got %+v want %+v", tc.name, got, tc.r)
		}
		switch tc.r.Tag {
		case tagDens, tagMax:
			// The float fields are recomputed from the shipped rational:
			// identical to the sender's division, rounding included.
			if got.F1 != tc.r.F1 || got.F0 != RoundUpPow2(tc.r.F1) || got.A != tc.r.A || got.B != tc.r.B {
				t.Fatalf("%s round trip: got %+v want %+v", tc.name, got, tc.r)
			}
		default:
			if got.A != tc.r.A {
				t.Fatalf("%s: scalar round trip: got %d want %d", tc.name, got.A, tc.r.A)
			}
			if len(got.Ints) != len(tc.r.Ints) {
				t.Fatalf("%s: tail length round trip: got %v want %v", tc.name, got.Ints, tc.r.Ints)
			}
			for i := range got.Ints {
				if got.Ints[i] != tc.r.Ints[i] {
					t.Fatalf("%s: tail round trip: got %v want %v", tc.name, got.Ints, tc.r.Ints)
				}
			}
		}
	}
	// Decoding a corrupted stream fails rather than panicking downstream.
	if _, err := decodePayload(kindDens, []int{1}, n); err == nil {
		t.Fatal("short density fragment must fail to decode")
	}
	if _, err := decodePayload(kindVote, []int{1, 2, 3}, n); err == nil {
		t.Fatal("odd vote fragment must fail to decode")
	}
	if _, err := decodePayload(99, nil, n); err == nil {
		t.Fatal("unknown kind must fail to decode")
	}
}

func TestRatValue(t *testing.T) {
	if ratValue(7, 3) != 7.0/3.0 {
		t.Fatal("ratValue must be the plain float division")
	}
	if ratValue(0, 1) != 0 {
		t.Fatal("zero rational")
	}
	if ratValue(5, 0) != 0 {
		t.Fatal("zero denominator must read as density 0")
	}
}

func TestDensityMaxPropagationMatchesLocal(t *testing.T) {
	// The CONGEST codec must preserve candidate decisions: run both modes
	// on a graph rich in distinct densities and require identical output.
	g := gen.PlantedStars(3, 7, 0.5, 9)
	local, err := TwoSpanner(g, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	congest := mustCongest(t, g, 11)
	if !local.Spanner.Equal(congest.Spanner) {
		t.Fatal("CONGEST and LOCAL diverged on planted-star instance")
	}
}
