package mds

import (
	"reflect"
	"sort"
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
)

// classicRun is the golden reference: the classical all-broadcast
// execution of the paper's loop, with every vertex spinning the six-round
// grid and rebroadcasting its full state each iteration. A vertex halts
// immediately after the coverage fold that finds U_v = ∅ — no bye
// announcement and no trailing flush round, so the run's last charged
// round is the coverage round of the last halter. Candidates draw from
// the same per-vertex RNG streams at the same iterations as the
// activity-aware implementation, so the chosen dominating set and the
// round count are exactly the values the optimized run must reproduce.
func classicRun(t *testing.T, g *graph.Graph, seed int64) ([]int, int) {
	t.Helper()
	n := g.N()
	inDS := make([]bool, n)
	proc := func(ctx *dist.Ctx) {
		me := ctx.ID()
		nbrs := ctx.Neighbors()
		covered := false
		selfIn := false
		nbrCovered := make([]bool, len(nbrs))
		for {
			// Round 1: coverage. Covered vertices rebroadcast their status.
			if covered {
				ctx.BroadcastRec(coveredMsg{}.rec(), coveredMsg{}.Bits())
			}
			inbox := ctx.NextRoundRecs()
			j := 0
			for i := range inbox {
				if inbox[i].Tag == tagCovered {
					j = seekPos(nbrs, j, inbox[i].From)
					nbrCovered[j] = true
				}
			}
			count := 0
			if !covered {
				count++
			}
			for i := range nbrs {
				if !nbrCovered[i] {
					count++
				}
			}
			if count == 0 {
				inDS[me] = selfIn
				return
			}
			// Round 2: density. Halted neighbors are silent, so a missing
			// sender folds as density 0 — the classical equivalent of the
			// optimized run's bye pruning.
			dm := densityMsg{count: count, n: ctx.N()}
			ctx.BroadcastRec(dm.rec(), dm.Bits())
			inbox = ctx.NextRoundRecs()
			hop := roundUpPow2Int(count)
			for i := range inbox {
				if inbox[i].Tag == tagDensity {
					if r := roundUpPow2Int(int(inbox[i].A)); r > hop {
						hop = r
					}
				}
			}
			// Round 3: 1-hop maxima.
			mm := maxMsg{count: hop, n: ctx.N()}
			ctx.BroadcastRec(mm.rec(), mm.Bits())
			inbox = ctx.NextRoundRecs()
			m2 := hop
			for i := range inbox {
				if inbox[i].Tag == tagMax {
					if r := int(inbox[i].A); r > m2 {
						m2 = r
					}
				}
			}
			// Round 4: candidacy.
			isCand := roundUpPow2Int(count) >= m2
			var myR int64
			if isCand {
				myR = 1 + ctx.Rand().Int63n(1<<62)
				cm := candMsg{r: myR, n: ctx.N()}
				for i, u := range nbrs {
					if !nbrCovered[i] {
						ctx.SendRec(u, cm.rec(), cm.Bits())
					}
				}
			}
			cands := ctx.NextRoundRecs()
			// Round 5: votes.
			votes := 0
			if !covered {
				bestV, bestR := -1, int64(0)
				if isCand {
					bestV, bestR = me, myR
				}
				for i := range cands {
					if cands[i].Tag != tagCand {
						continue
					}
					if bestV < 0 || cands[i].A < bestR || (cands[i].A == bestR && cands[i].From < bestV) {
						bestV, bestR = cands[i].From, cands[i].A
					}
				}
				if bestV == me {
					votes++ // self-vote
				} else if bestV >= 0 {
					ctx.SendRec(bestV, voteMsg{}.rec(), voteMsg{}.Bits())
				}
			}
			inbox = ctx.NextRoundRecs()
			for i := range inbox {
				if inbox[i].Tag == tagVote {
					votes++
				}
			}
			// Round 6: joins.
			if isCand && 8*votes >= count && count > 0 {
				selfIn = true
				ctx.BroadcastRec(joinMsg{}.rec(), joinMsg{}.Bits())
			}
			inbox = ctx.NextRoundRecs()
			joined := selfIn
			for i := range inbox {
				if inbox[i].Tag == tagJoin {
					joined = true
				}
			}
			if joined {
				covered = true
			}
		}
	}
	stats, err := dist.Run(dist.Config{Graph: g, Seed: seed}, proc)
	if err != nil {
		t.Fatalf("classic reference: %v", err)
	}
	var ds []int
	for v, in := range inDS {
		if in {
			ds = append(ds, v)
		}
	}
	sort.Ints(ds)
	return ds, stats.Rounds
}

// TestGoldenRoundsMatchClassic pins the activity-aware implementation to
// the classical reference: identical dominating set and — with the
// termination bye folded into the retirement instead of a dedicated
// flush round — an identical round count.
func TestGoldenRoundsMatchClassic(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"clique":  gen.Clique(15),
		"star":    gen.Star(20),
		"path":    gen.Path(25),
		"cycle":   gen.Cycle(24),
		"grid":    gen.Grid(5, 6),
		"gnp":     gen.ConnectedGNP(50, 0.08, 2),
		"planted": gen.PlantedStars(5, 8, 0.2, 4),
	}
	for name, g := range graphs {
		for _, seed := range []int64{1, 7, 42} {
			res, err := Run(g, Options{Seed: seed})
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			wantDS, wantRounds := classicRun(t, g, seed)
			if !reflect.DeepEqual(res.DominatingSet, wantDS) {
				t.Errorf("%s seed %d: dominating set %v, classic reference %v",
					name, seed, res.DominatingSet, wantDS)
			}
			if res.Stats.Rounds != wantRounds {
				t.Errorf("%s seed %d: %d rounds, classic reference %d",
					name, seed, res.Stats.Rounds, wantRounds)
			}
		}
	}
}
