package mds

import (
	"math"
	"testing"
	"testing/quick"

	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
)

func mustRun(t *testing.T, g *graph.Graph, seed int64) *Result {
	t.Helper()
	res, err := Run(g, Options{Seed: seed})
	if err != nil {
		t.Fatalf("MDS run failed: %v", err)
	}
	return res
}

func dominates(g *graph.Graph, set []int) bool {
	dominated := make([]bool, g.N())
	for _, v := range set {
		dominated[v] = true
		for _, arc := range g.Adj(v) {
			dominated[arc.To] = true
		}
	}
	for _, d := range dominated {
		if !d {
			return false
		}
	}
	return true
}

func TestMDSDominatesOnFamilies(t *testing.T) {
	families := map[string]*graph.Graph{
		"clique":    gen.Clique(15),
		"star":      gen.Star(20),
		"path":      gen.Path(25),
		"cycle":     gen.Cycle(24),
		"grid":      gen.Grid(5, 6),
		"hypercube": gen.Hypercube(5),
		"gnp":       gen.ConnectedGNP(50, 0.08, 2),
		"planted":   gen.PlantedStars(5, 8, 0.2, 4),
	}
	for name, g := range families {
		res := mustRun(t, g, 3)
		if !dominates(g, res.DominatingSet) {
			t.Errorf("%s: output does not dominate", name)
		}
	}
}

func TestMDSCongestCompliant(t *testing.T) {
	// Run enforces the bandwidth; additionally check the recorded maximum
	// stays within the O(log n) budget on a dense graph, where the LOCAL
	// 2-spanner algorithm would blow past it.
	g := gen.Clique(20)
	res := mustRun(t, g, 1)
	budget := 8 * idBits(g.N())
	if !res.Stats.CongestCompatible(budget) {
		t.Fatalf("max edge-round bits %d exceeds CONGEST budget %d", res.Stats.MaxEdgeRoundBits, budget)
	}
	if res.Stats.BandwidthViolations != 0 {
		t.Fatalf("bandwidth violations: %d", res.Stats.BandwidthViolations)
	}
}

func idBits(n int) int {
	b := 1
	for v := 2; v < n; v <<= 1 {
		b++
	}
	return b
}

func TestMDSStarOptimal(t *testing.T) {
	// On a star the center dominates everything; the guaranteed O(log Δ)
	// ratio must still pick a tiny set (1 or at most a few).
	g := gen.Star(30)
	res := mustRun(t, g, 5)
	if len(res.DominatingSet) > 2 {
		t.Fatalf("star MDS size %d, want <= 2", len(res.DominatingSet))
	}
}

func TestMDSGuaranteedRatioManySeeds(t *testing.T) {
	// The headline guarantee: ratio O(log Δ) on EVERY run, vs exact OPT.
	g := gen.ConnectedGNP(22, 0.25, 7)
	opt := len(exact.MinDominatingSet(g))
	if opt == 0 {
		t.Fatal("degenerate instance")
	}
	bound := 8 * (math.Log2(float64(g.MaxDegree())+1) + 2) // generous constant
	for seed := int64(0); seed < 15; seed++ {
		res := mustRun(t, g, seed)
		if !dominates(g, res.DominatingSet) {
			t.Fatalf("seed %d: not dominating", seed)
		}
		ratio := float64(len(res.DominatingSet)) / float64(opt)
		if ratio > bound {
			t.Fatalf("seed %d: ratio %.2f exceeds O(log Δ) bound %.2f", seed, ratio, bound)
		}
	}
}

func TestMDSIterationsScale(t *testing.T) {
	for _, n := range []int{20, 40, 80} {
		g := gen.ConnectedGNP(n, 0.15, 9)
		res := mustRun(t, g, 2)
		logn := math.Log2(float64(n))
		logd := math.Log2(float64(g.MaxDegree()) + 1)
		bound := 25 * (logn*logd + 1)
		if float64(res.Iterations) > bound {
			t.Fatalf("n=%d: %d iterations exceeds O(log n log Δ) bound %.0f", n, res.Iterations, bound)
		}
	}
}

func TestMDSDeterministic(t *testing.T) {
	g := gen.ConnectedGNP(30, 0.2, 4)
	a := mustRun(t, g, 11)
	b := mustRun(t, g, 11)
	if len(a.DominatingSet) != len(b.DominatingSet) {
		t.Fatal("same seed produced different dominating sets")
	}
	for i := range a.DominatingSet {
		if a.DominatingSet[i] != b.DominatingSet[i] {
			t.Fatal("same seed produced different dominating sets")
		}
	}
}

func TestMDSSingletonAndEdge(t *testing.T) {
	g1 := graph.New(1)
	res := mustRun(t, g1, 1)
	if len(res.DominatingSet) != 1 {
		t.Fatalf("singleton graph: MDS = %v, want the vertex itself", res.DominatingSet)
	}
	g2 := gen.Path(2)
	res2 := mustRun(t, g2, 1)
	if len(res2.DominatingSet) != 1 {
		t.Fatalf("single edge: MDS size %d, want 1", len(res2.DominatingSet))
	}
}

func TestMDSPathRatio(t *testing.T) {
	// MDS of P_n is ceil(n/3); check the algorithm stays within a small
	// factor on paths (low degree: log Δ is constant).
	g := gen.Path(30)
	opt := 10
	res := mustRun(t, g, 6)
	if !dominates(g, res.DominatingSet) {
		t.Fatal("not dominating")
	}
	if len(res.DominatingSet) > 4*opt {
		t.Fatalf("path MDS size %d vs opt %d", len(res.DominatingSet), opt)
	}
}

// Property: across random graphs and seeds, the output always dominates
// and every run stays CONGEST-legal.
func TestMDSAlwaysValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 5 + int((seed%40+40)%40)
		g := gen.ConnectedGNP(n, 0.2, seed)
		res, err := Run(g, Options{Seed: seed})
		if err != nil {
			return false
		}
		budget := 8 * idBits(g.N())
		return dominates(g, res.DominatingSet) && res.Stats.MaxEdgeRoundBits <= budget
	}
	if err := quickCheck(t, f, 20); err != nil {
		t.Fatal(err)
	}
}

func quickCheck(t *testing.T, f func(int64) bool, count int) error {
	t.Helper()
	return quick.Check(f, &quick.Config{MaxCount: count})
}

func TestMDSDisconnectedComponents(t *testing.T) {
	// Two disjoint triangles: each needs its own dominator.
	g := graph.New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	res, err := Run(g, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !dominates(g, res.DominatingSet) {
		t.Fatal("disconnected components not dominated")
	}
	if len(res.DominatingSet) < 2 {
		t.Fatal("each component needs at least one dominator")
	}
}
