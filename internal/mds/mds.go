// Package mds implements the paper's distributed minimum dominating set
// algorithm (Section 5, Theorem 5.1): a CONGEST-model algorithm with a
// guaranteed O(log Δ) approximation ratio — not merely in expectation, the
// paper's improvement over Jia et al. [43] — running in O(log n · log Δ)
// rounds w.h.p.
//
// The structure mirrors the 2-spanner algorithm with stars replaced by
// closed neighborhoods: densities are counts of uncovered vertices in the
// closed neighborhood, candidates are vertices whose rounded density is
// maximal in their 2-neighborhood, uncovered vertices vote for the first
// candidate covering them under a random permutation, and candidates
// obtaining at least 1/8 of their potential votes join the dominating set.
// Every message fits in O(log n) bits, so the algorithm runs unchanged in
// the CONGEST model; the engine enforces this at runtime.
//
// # Activity-aware execution
//
// The implementation is event-driven within the paper's six-round
// iteration grid. State broadcasts are deltas: a vertex announces its
// domination status only when it changes, its density and 1-hop maximum
// only when they change, and candidacy announcements go only to the
// uncovered neighbors whose votes they solicit. Receivers accumulate the
// deltas into persistent per-neighbor state, so the folded quantities
// (densities, 1-hop and 2-hop maxima) are identical to the classical
// all-broadcast execution round for round — the chosen dominating set is
// the same, message for message of randomness.
//
// Per-vertex termination states replace round-count spinning:
//
//   - active: the vertex owes a delta or is a candidate this iteration and
//     executes the full iteration.
//   - parked: nothing to send and not a candidate — the vertex parks in
//     Ctx.Recv and wakes only when a delivery arrives. The wake's payload
//     types identify the iteration phase (coverage deltas arrive in round
//     1, densities in round 2, ...), so the vertex re-enters the iteration
//     loop exactly where the network is.
//   - halted: U_v = ∅ (paper step 6). The vertex announces a byeMsg — its
//     density is now irrevocably 0 and senders prune it from their
//     broadcast lists — then retires. When every vertex is parked or
//     halted with no messages in flight, the engine's quiescence releases
//     the parked vertices (Recv reports ok=false) and they finalize.
//
// Stats.ActiveSteps / ParkedSteps record the resulting activity profile;
// on covered-tail instances most vertices spend most rounds parked, which
// is what the event-driven scheduler turns into wall-clock speedups (see
// BenchmarkMDSTail).
package mds

import (
	"sort"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Options configures a run.
type Options struct {
	// Seed drives the per-vertex randomness.
	Seed int64
	// MaxRounds aborts runaway executions; zero uses the engine default.
	MaxRounds int
	// Bandwidth is the CONGEST per-edge bit budget to enforce; zero
	// defaults to 8 words of ceil(log2 n) bits. Enforcement is always on:
	// exceeding the budget is an error, demonstrating CONGEST legality.
	Bandwidth int
	// ExecMode selects the engine's scheduling strategy (barrier vs
	// event-driven); the zero value auto-switches on network size.
	// Results are identical in every mode — only wall-clock cost differs.
	ExecMode dist.Mode
	// RoundHook, when non-nil, receives the engine's per-round activity
	// snapshots (see dist.Config.OnRound).
	RoundHook func(dist.RoundActivity)
	// Cancel, when non-nil, aborts the run when closed (see
	// dist.Config.Cancel).
	Cancel <-chan struct{}
	// Tracer, when non-nil, receives the run's execution narration (see
	// dist.Config.Tracer). Zero cost when nil.
	Tracer dist.Tracer
	// Shards, when positive, runs the algorithm distributed across that
	// many shard workers over an in-process transport (see
	// dist.Config.Shards). Results are bit-identical to Shards == 0 with
	// the step engine; ExecMode must be ModeAuto or ModeStep.
	Shards int
}

// Result reports the outcome.
type Result struct {
	// DominatingSet is the sorted set of chosen vertices.
	DominatingSet []int
	// Stats carries round/message/bit measurements; MaxEdgeRoundBits stays
	// within the CONGEST budget by construction, and ActiveSteps /
	// ParkedSteps expose the activity profile.
	Stats dist.Stats
	// Iterations is the maximum number of algorithm iterations any vertex
	// executed. Parked vertices skip iterations entirely, so this counts
	// the longest active participation, not wall-clock rounds / 6.
	Iterations int
}

// Message schema: every payload is O(1) words of O(log n) bits, carried
// on the engine's flat-buffer record path (dist.Rec). Each phase of the
// six-round iteration has a distinct record tag, which is how a vertex
// woken from Recv re-identifies the network's current phase. Each struct
// below defines one wire record (fields + metered size) and its rec()
// builder; the reflection conformance test in mds_test.go fails when a
// field is added without updating the accounting.

// Record tags, one per payload type.
const (
	tagCovered uint8 = iota + 1
	tagDensity
	tagBye
	tagMax
	tagCand
	tagVote
	tagJoin
)

// coveredMsg announces that the sender became dominated (round 1; sent
// once, on the transition).
type coveredMsg struct{}

func (coveredMsg) Bits() int     { return 1 }
func (coveredMsg) rec() dist.Rec { return dist.Rec{Tag: tagCovered} }

// densityMsg announces the sender's changed uncovered-neighborhood count
// (round 2; the MDS density is an integer, so one word suffices).
type densityMsg struct {
	count int
	n     int
}

//spanlint:bits count — the one IDBits(n) word is count itself; n only sizes the word
func (m densityMsg) Bits() int     { return dist.IDBits(m.n) }
func (m densityMsg) rec() dist.Rec { return dist.Rec{Tag: tagDensity, A: int64(m.count)} }

// byeMsg announces that the sender halted (U_v = ∅, round 2): its density
// is 0 forever and senders drop it from their broadcast lists.
type byeMsg struct{}

func (byeMsg) Bits() int     { return 1 }
func (byeMsg) rec() dist.Rec { return dist.Rec{Tag: tagBye} }

// maxMsg announces the sender's changed 1-hop maximum of rounded
// densities (round 3). Rounded densities are powers of two <= 2(Δ+1), so
// the value fits a word.
type maxMsg struct {
	count int
	n     int
}

//spanlint:bits count — the one IDBits(n) word is count itself; n only sizes the word
func (m maxMsg) Bits() int     { return dist.IDBits(m.n) }
func (m maxMsg) rec() dist.Rec { return dist.Rec{Tag: tagMax, A: int64(m.count)} }

// candMsg announces candidacy with the random rank r ∈ {1..n⁴} (round 4;
// 4 words). It is sent only to the uncovered neighbors whose votes it
// solicits — a covered vertex never acts on it.
type candMsg struct {
	r int64
	n int
}

//spanlint:bits r — the 4*IDBits(n) term is the rank r ∈ {1..n⁴}, four id-sized words
func (m candMsg) Bits() int     { return 4 * dist.IDBits(m.n) }
func (m candMsg) rec() dist.Rec { return dist.Rec{Tag: tagCand, A: m.r} }

// voteMsg casts the sender's vote for the receiving candidate (round 5).
type voteMsg struct{}

func (voteMsg) Bits() int     { return 1 }
func (voteMsg) rec() dist.Rec { return dist.Rec{Tag: tagVote} }

// joinMsg announces that the sender joined the dominating set (round 6).
type joinMsg struct{}

func (joinMsg) Bits() int     { return 1 }
func (joinMsg) rec() dist.Rec { return dist.Rec{Tag: tagJoin} }

// Run executes the MDS algorithm on the connected graph g.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	bandwidth := opts.Bandwidth
	if bandwidth <= 0 {
		bandwidth = DefaultBandwidth(g.N())
	}
	mr := newMDSRun(g.N())
	stats, err := dist.RunMachines(dist.Config{
		Graph:     g,
		Seed:      opts.Seed,
		Mode:      opts.ExecMode,
		Bandwidth: bandwidth,
		Enforce:   true,
		MaxRounds: opts.MaxRounds,
		OnRound:   opts.RoundHook,
		Cancel:    opts.Cancel,
		Tracer:    opts.Tracer,
		Shards:    opts.Shards,
	}, mr.factory)
	if err != nil {
		return nil, err
	}
	return mr.result(stats), nil
}

// DefaultBandwidth is the per-edge per-round bit budget Run enforces
// when Options.Bandwidth is zero: 8 words of ceil(log2 n) bits.
func DefaultBandwidth(n int) int { return 8 * dist.IDBits(n) }

// mdsRun owns the cross-vertex collectors the machine factory closes
// over: domination membership and per-vertex iteration counts.
type mdsRun struct {
	inDS  []bool
	iters []int
}

func newMDSRun(n int) *mdsRun {
	return &mdsRun{inDS: make([]bool, n), iters: make([]int, n)}
}

func (r *mdsRun) factory(ctx *dist.Ctx) dist.Machine {
	v := newNode(ctx)
	v.inDS, v.iters = r.inDS, r.iters
	return dist.NewPhasedMachine(v)
}

func (r *mdsRun) result(stats *dist.Stats) *Result {
	var ds []int
	for v, in := range r.inDS {
		if in {
			ds = append(ds, v)
		}
	}
	sort.Ints(ds)
	maxIter := 0
	for _, it := range r.iters {
		if it > maxIter {
			maxIter = it
		}
	}
	return &Result{DominatingSet: ds, Stats: *stats, Iterations: maxIter}
}

// Program is the shard program of Run for the distributed runner
// (dist.ServeShard). Output(v) is [1] when v joined the dominating set,
// nil otherwise. The engine running it must enforce
// DefaultBandwidth(g.N()) (or the same custom budget on every worker)
// to reproduce the local runner bit-for-bit.
func Program(g *graph.Graph, opts Options) dist.ShardProgram {
	mr := newMDSRun(g.N())
	return dist.ShardProgram{
		Factory: mr.factory,
		Output: func(v int) []int {
			if mr.inDS[v] {
				return []int{1}
			}
			return nil
		},
	}
}

// roundUpPow2Int returns the smallest power of two strictly greater than x
// (x >= 0), as an integer; 0 for x <= 0. MDS densities are integer counts.
func roundUpPow2Int(x int) int {
	if x <= 0 {
		return 0
	}
	p := 1
	for p <= x {
		p <<= 1
	}
	return p
}

// phase indexes the six rounds of one iteration. A parked vertex that is
// woken classifies the wake by record tag into the phase whose inbox it
// received and resumes the iteration from there.
type phase int

const (
	phCoverage phase = iota + 1 // round 1: coveredMsg deltas
	phDensity                   // round 2: densityMsg deltas + byeMsg
	phMax                       // round 3: maxMsg deltas
	phCand                      // round 4: candMsg
	phVote                      // round 5: voteMsg (candidates only)
	phJoin                      // round 6: joinMsg
)

// candRank is one announced candidacy this iteration.
type candRank struct {
	from int
	r    int64
}

// node is the per-vertex state.
type node struct {
	ctx   *dist.Ctx
	me    int
	n     int
	nbrs  []int
	inDS  []bool // shared output: dominating-set membership per vertex
	iters []int  // shared output: iterations executed per vertex

	covered    bool
	selfIn     bool
	pendingCov bool // covered transition not yet announced (round 1)

	// Per-neighbor state, indexed by the neighbor's position in nbrs. The
	// folds scan slices, and inbox decoding resolves sender positions with
	// the seekPos merge scan (inboxes are sorted by sender): no map on any
	// per-message path.
	alive      []bool
	nbrCovered []bool
	densOf     []int // last announced count per live neighbor
	hopOf      []int // last announced 1-hop max per live neighbor

	count    int // |U_v|: uncovered vertices in the closed neighborhood
	hopMax   int // 1-hop maximum of rounded densities (incl. own)
	m2       int // 2-hop maximum (incl. own)
	lastDens int // last announced count (-1: never)
	lastHop  int // last announced hopMax (-1: never)
	isCand   bool
	myR      int64
	cands    []candRank // announced candidacies, this iteration
	votes    int
	iter     int
}

func newNode(ctx *dist.Ctx) *node {
	nbrs := ctx.Neighbors()
	v := &node{
		ctx: ctx, me: ctx.ID(), n: ctx.N(), nbrs: nbrs,
		alive:      make([]bool, len(nbrs)),
		nbrCovered: make([]bool, len(nbrs)),
		densOf:     make([]int, len(nbrs)),
		hopOf:      make([]int, len(nbrs)),
		lastDens:   -1,
		lastHop:    -1,
	}
	for i := range nbrs {
		v.alive[i] = true
	}
	return v
}

// seekPos is dist.SeekPos: the monotone sender-position merge scan over
// the sorted neighbor list that replaces per-message map lookups.
func seekPos(nbrs []int, j, from int) int { return dist.SeekPos(nbrs, j, from) }

// bcast sends the record to every live neighbor: halted vertices are
// pruned from all broadcasts, which is what makes covered-tail rounds
// cheap.
func (v *node) bcast(r dist.Rec, bits int) {
	for i, u := range v.nbrs {
		if v.alive[i] {
			v.ctx.SendRec(u, r, bits)
		}
	}
}

// recount recomputes |U_v| from the accumulated coverage state.
func (v *node) recount() {
	c := 0
	if !v.covered {
		c++
	}
	for i := range v.nbrs {
		if !v.nbrCovered[i] {
			c++
		}
	}
	v.count = c
}

// refoldHop recomputes the 1-hop maximum of rounded densities from the
// accumulated per-neighbor counts (own first, then live neighbors in id
// order — the same fold the all-broadcast execution performs on its
// round-2 inbox).
func (v *node) refoldHop() {
	h := roundUpPow2Int(v.count)
	for i := range v.nbrs {
		if !v.alive[i] {
			continue
		}
		if r := roundUpPow2Int(v.densOf[i]); r > h {
			h = r
		}
	}
	v.hopMax = h
}

// refoldM2 recomputes the 2-hop maximum from the accumulated 1-hop maxima.
func (v *node) refoldM2() {
	m := v.hopMax
	for i := range v.nbrs {
		if !v.alive[i] {
			continue
		}
		if r := v.hopOf[i]; r > m {
			m = r
		}
	}
	v.m2 = m
}

// parkable reports whether the vertex owes the network nothing this
// iteration: no pending deltas and no candidacy. Such a vertex parks in
// Recv; anything that could change its answers arrives as a delivery.
func (v *node) parkable() bool {
	if v.pendingCov || v.count != v.lastDens || v.hopMax != v.lastHop {
		return false
	}
	return roundUpPow2Int(v.count) < v.m2 // not a candidate
}

// classify maps a wake inbox to the phase whose round delivered it. Every
// phase has disjoint record tags and all senders are phase-aligned, so
// one inbox is always one phase.
func classify(msgs []dist.InRec) phase {
	switch msgs[0].Tag {
	case tagCovered:
		return phCoverage
	case tagDensity, tagBye:
		return phDensity
	case tagMax:
		return phMax
	case tagCand:
		return phCand
	case tagVote:
		return phVote
	case tagJoin:
		return phJoin
	}
	panic("mds: unclassifiable wake record tag")
}

// Phases implements dist.PhasedProgram.
func (v *node) Phases() (int, int) { return int(phCoverage), int(phJoin) }

// Begin implements dist.PhasedProgram: record and bump the iteration
// count, reset the per-iteration scratch.
func (v *node) Begin() {
	v.iters[v.me] = v.iter
	v.iter++
	v.isCand = false
	v.votes = 0
	v.cands = v.cands[:0]
}

// Emit implements dist.PhasedProgram. MDS never halts while emitting:
// termination is detected on the receive side (U_v = ∅ after the
// coverage fold).
func (v *node) Emit(ph int) bool {
	v.emit(phase(ph))
	return false
}

// Process implements dist.PhasedProgram: halt when the coverage fold
// finds U_v = ∅ (paper step 6).
func (v *node) Process(ph int, recs []dist.InRec) bool {
	return v.process(phase(ph), recs)
}

// Parkable implements dist.PhasedProgram.
func (v *node) Parkable() bool { return v.parkable() }

// ParkReset implements dist.PhasedProgram; the MDS iteration keeps no
// cross-iteration continuation, so there is nothing to reset.
func (v *node) ParkReset() {}

// Classify implements dist.PhasedProgram.
func (v *node) Classify(recs []dist.InRec) int { return int(classify(recs)) }

// Halt implements dist.PhasedProgram: announce the retirement so peers
// zero this vertex's density and stop sending to it, output membership,
// halt. The byeMsg rides the retirement itself (the engine commits a
// retiring vertex's queued sends), so halting costs no extra round — the
// last halter's byes reach only already-retired peers and are metered and
// dropped without charging the network a round.
func (v *node) Halt() {
	v.bcast(byeMsg{}.rec(), byeMsg{}.Bits())
	v.inDS[v.me] = v.selfIn
}

// Terminal implements dist.PhasedProgram; unreachable (Emit never
// reports a terminal announcement).
func (v *node) Terminal() {}

// Quiesce implements dist.PhasedProgram: nothing can ever change U_v
// again, so output membership as-is.
func (v *node) Quiesce() { v.inDS[v.me] = v.selfIn }

// emit queues the sends of phase ph; they are committed by the blocking
// call that returns ph's inbox.
func (v *node) emit(ph phase) {
	switch ph {
	case phCoverage:
		if v.pendingCov {
			v.bcast(coveredMsg{}.rec(), coveredMsg{}.Bits())
			v.pendingCov = false
		}
	case phDensity:
		if v.count != v.lastDens {
			m := densityMsg{count: v.count, n: v.n}
			v.bcast(m.rec(), m.Bits())
			v.lastDens = v.count
		}
	case phMax:
		if v.hopMax != v.lastHop {
			m := maxMsg{count: v.hopMax, n: v.n}
			v.bcast(m.rec(), m.Bits())
			v.lastHop = v.hopMax
		}
	case phCand:
		v.isCand = roundUpPow2Int(v.count) >= v.m2
		if v.isCand {
			v.myR = 1 + v.ctx.Rand().Int63n(1<<62)
			// Only uncovered vertices vote; covered neighbors would
			// discard the announcement, so it is not sent to them.
			m := candMsg{r: v.myR, n: v.n}
			for i, u := range v.nbrs {
				if v.alive[i] && !v.nbrCovered[i] {
					v.ctx.SendRec(u, m.rec(), m.Bits())
				}
			}
		}
	case phVote:
		if !v.covered {
			bestV, bestR := -1, int64(0)
			if v.isCand {
				bestV, bestR = v.me, v.myR
			}
			for _, c := range v.cands {
				if bestV < 0 || c.r < bestR || (c.r == bestR && c.from < bestV) {
					bestV, bestR = c.from, c.r
				}
			}
			if bestV == v.me {
				v.votes++ // self-vote
			} else if bestV >= 0 {
				v.ctx.SendRec(bestV, voteMsg{}.rec(), voteMsg{}.Bits())
			}
		}
	case phJoin:
		if v.isCand && 8*v.votes >= v.count && v.count > 0 {
			v.selfIn = true
			v.bcast(joinMsg{}.rec(), joinMsg{}.Bits())
		}
	}
}

// process consumes the inbox of phase ph, returning true when the vertex
// detected U_v = ∅ and must halt.
func (v *node) process(ph phase, inbox []dist.InRec) bool {
	j := 0
	switch ph {
	case phCoverage:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag == tagCovered {
				j = seekPos(v.nbrs, j, r.From)
				v.nbrCovered[j] = true
			}
		}
		v.recount()
		return v.count == 0
	case phDensity:
		for i := range inbox {
			r := &inbox[i]
			switch r.Tag {
			case tagDensity:
				j = seekPos(v.nbrs, j, r.From)
				v.densOf[j] = int(r.A)
			case tagBye:
				// The sender halted: density 0 forever, pruned from all
				// future broadcasts. Halting implies it was dominated.
				j = seekPos(v.nbrs, j, r.From)
				v.alive[j] = false
				v.nbrCovered[j] = true
				v.densOf[j] = 0
				v.hopOf[j] = 0
			}
		}
		v.refoldHop()
	case phMax:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag == tagMax {
				j = seekPos(v.nbrs, j, r.From)
				v.hopOf[j] = int(r.A)
			}
		}
		v.refoldM2()
	case phCand:
		for i := range inbox {
			r := &inbox[i]
			if r.Tag == tagCand {
				v.cands = append(v.cands, candRank{from: r.From, r: r.A})
			}
		}
	case phVote:
		for i := range inbox {
			if inbox[i].Tag == tagVote {
				v.votes++
			}
		}
	case phJoin:
		joined := v.selfIn
		for i := range inbox {
			if inbox[i].Tag == tagJoin {
				joined = true // a dominator is adjacent (or is this vertex)
			}
		}
		if joined && !v.covered {
			v.covered = true
			v.pendingCov = true
		}
	}
	return false
}
