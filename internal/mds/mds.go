// Package mds implements the paper's distributed minimum dominating set
// algorithm (Section 5, Theorem 5.1): a CONGEST-model algorithm with a
// guaranteed O(log Δ) approximation ratio — not merely in expectation, the
// paper's improvement over Jia et al. [43] — running in O(log n · log Δ)
// rounds w.h.p.
//
// The structure mirrors the 2-spanner algorithm with stars replaced by
// closed neighborhoods: densities are counts of uncovered vertices in the
// closed neighborhood, candidates are vertices whose rounded density is
// maximal in their 2-neighborhood, uncovered vertices vote for the first
// candidate covering them under a random permutation, and candidates
// obtaining at least 1/8 of their potential votes join the dominating set.
// Every message fits in O(log n) bits, so the algorithm runs unchanged in
// the CONGEST model; the engine enforces this at runtime.
package mds

import (
	"sort"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// Options configures a run.
type Options struct {
	// Seed drives the per-vertex randomness.
	Seed int64
	// MaxRounds aborts runaway executions; zero uses the engine default.
	MaxRounds int
	// Bandwidth is the CONGEST per-edge bit budget to enforce; zero
	// defaults to 8 words of ceil(log2 n) bits. Enforcement is always on:
	// exceeding the budget is an error, demonstrating CONGEST legality.
	Bandwidth int
	// ExecMode selects the engine's scheduling strategy (barrier vs
	// event-driven); the zero value auto-switches on network size.
	// Results are identical in every mode — only wall-clock cost differs.
	ExecMode dist.Mode
}

// Result reports the outcome.
type Result struct {
	// DominatingSet is the sorted set of chosen vertices.
	DominatingSet []int
	// Stats carries round/message/bit measurements; MaxEdgeRoundBits stays
	// within the CONGEST budget by construction.
	Stats dist.Stats
	// Iterations is the maximum number of algorithm iterations at any
	// vertex.
	Iterations int
}

// Message payloads: every payload is O(1) words of O(log n) bits.

// coveredMsg broadcasts whether the sender is dominated yet.
type coveredMsg struct {
	covered bool
}

func (coveredMsg) Bits() int { return 1 }

// densityMsg broadcasts the sender's uncovered-neighborhood count (the MDS
// density is an integer, so one word suffices).
type densityMsg struct {
	count int
	n     int
}

func (m densityMsg) Bits() int { return dist.IDBits(m.n) }

// maxMsg broadcasts a 1-hop maximum of rounded densities. Rounded densities
// are powers of two <= 2(Δ+1), so the exponent fits a word.
type maxMsg struct {
	count int
	n     int
}

func (m maxMsg) Bits() int { return dist.IDBits(m.n) }

// candMsg announces candidacy with the random rank r ∈ {1..n⁴}: 4 words.
type candMsg struct {
	r int64
	n int
}

func (m candMsg) Bits() int { return 4 * dist.IDBits(m.n) }

// voteMsg casts the sender's vote for the receiving candidate.
type voteMsg struct{}

func (voteMsg) Bits() int { return 1 }

// joinMsg announces that the sender joined the dominating set.
type joinMsg struct{}

func (joinMsg) Bits() int { return 1 }

// Run executes the MDS algorithm on the connected graph g.
func Run(g *graph.Graph, opts Options) (*Result, error) {
	n := g.N()
	bandwidth := opts.Bandwidth
	if bandwidth <= 0 {
		bandwidth = 8 * dist.IDBits(n)
	}
	inDS := make([]bool, n)
	iters := make([]int, n)
	proc := func(ctx *dist.Ctx) {
		runNode(ctx, inDS, iters)
	}
	stats, err := dist.Run(dist.Config{
		Graph:     g,
		Seed:      opts.Seed,
		Mode:      opts.ExecMode,
		Bandwidth: bandwidth,
		Enforce:   true,
		MaxRounds: opts.MaxRounds,
	}, proc)
	if err != nil {
		return nil, err
	}
	var ds []int
	for v, in := range inDS {
		if in {
			ds = append(ds, v)
		}
	}
	sort.Ints(ds)
	maxIter := 0
	for _, it := range iters {
		if it > maxIter {
			maxIter = it
		}
	}
	return &Result{DominatingSet: ds, Stats: *stats, Iterations: maxIter}, nil
}

// roundUpPow2Int returns the smallest power of two strictly greater than x
// (x >= 0), as an integer; 0 for x <= 0. MDS densities are integer counts.
func roundUpPow2Int(x int) int {
	if x <= 0 {
		return 0
	}
	p := 1
	for p <= x {
		p <<= 1
	}
	return p
}

func runNode(ctx *dist.Ctx, inDS []bool, iters []int) {
	me := ctx.ID()
	n := ctx.N()
	nbrs := ctx.Neighbors()
	selfIn := false
	covered := false
	nbrCovered := make(map[int]bool, len(nbrs))

	for iter := 0; ; iter++ {
		iters[me] = iter

		// Round 1: coverage sync. Everyone reports domination status.
		ctx.Broadcast(coveredMsg{covered: covered})
		for _, m := range ctx.NextRound() {
			nbrCovered[m.From] = m.Payload.(coveredMsg).covered
		}
		// U_v: uncovered vertices in the closed neighborhood.
		count := 0
		if !covered {
			count++
		}
		for _, u := range nbrs {
			if !nbrCovered[u] {
				count++
			}
		}
		if count == 0 {
			// U_v = ∅: output membership and halt (paper step 6).
			inDS[me] = selfIn
			return
		}
		rho := roundUpPow2Int(count)

		// Round 2: densities (as raw counts; receivers round).
		ctx.Broadcast(densityMsg{count: count, n: n})
		hopMax := rho
		for _, m := range ctx.NextRound() {
			if r := roundUpPow2Int(m.Payload.(densityMsg).count); r > hopMax {
				hopMax = r
			}
		}

		// Round 3: 1-hop maxima -> 2-hop maxima.
		ctx.Broadcast(maxMsg{count: hopMax, n: n})
		m2 := hopMax
		for _, m := range ctx.NextRound() {
			if r := m.Payload.(maxMsg).count; r > m2 {
				m2 = r
			}
		}

		// Round 4: candidacy.
		isCand := rho >= m2
		var myR int64
		if isCand {
			myR = 1 + ctx.Rand().Int63n(1<<62)
			ctx.Broadcast(candMsg{r: myR, n: n})
		}
		type cand struct{ r int64 }
		cands := make(map[int]cand)
		for _, m := range ctx.NextRound() {
			cands[m.From] = cand{r: m.Payload.(candMsg).r}
		}

		// Round 5: votes. An uncovered vertex votes for the first
		// candidate covering it by (r, id); itself included if candidate.
		selfVote := false
		if !covered {
			bestV, bestR := -1, int64(0)
			if isCand {
				bestV, bestR = me, myR
			}
			for vid, c := range cands {
				if bestV < 0 || c.r < bestR || (c.r == bestR && vid < bestV) {
					bestV, bestR = vid, c.r
				}
			}
			if bestV == me {
				selfVote = true
			} else if bestV >= 0 {
				ctx.Send(bestV, voteMsg{})
			}
		}
		votes := 0
		if selfVote {
			votes++
		}
		for range ctx.NextRound() {
			votes++
		}

		// Round 6: acceptance at >= |C_v|/8 votes; C_v = count.
		if isCand && 8*votes >= count && count > 0 {
			selfIn = true
			ctx.Broadcast(joinMsg{})
		}
		joined := selfIn
		for _, m := range ctx.NextRound() {
			if _, ok := m.Payload.(joinMsg); ok {
				joined = true // a neighbor joined; we are dominated
			}
		}
		if joined {
			covered = true
		}
	}
}
