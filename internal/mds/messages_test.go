package mds

import (
	"testing"

	"distspanner/internal/dist"
)

// TestPayloadBitsConformance audits the MDS payload schemas against their
// struct fields (see dist.AuditPayloadFields): adding a field without
// accounting it fails here.
func TestPayloadBitsConformance(t *testing.T) {
	for _, n := range []int{2, 100, 1 << 12} {
		w := dist.IDBits(n)
		cases := []struct {
			name      string
			p         interface{ Bits() int }
			accounted map[string]int
		}{
			{"coveredMsg", coveredMsg{}, map[string]int{}},
			{"densityMsg", densityMsg{count: 5, n: n}, map[string]int{"count": w, "n": 0}},
			{"byeMsg", byeMsg{}, map[string]int{}},
			{"maxMsg", maxMsg{count: 8, n: n}, map[string]int{"count": w, "n": 0}},
			{"candMsg", candMsg{r: 12, n: n}, map[string]int{"r": 4 * w, "n": 0}},
			{"voteMsg", voteMsg{}, map[string]int{}},
			{"joinMsg", joinMsg{}, map[string]int{}},
		}
		for _, tc := range cases {
			if err := dist.AuditPayloadFields(tc.p, tc.p.Bits(), tc.accounted); err != nil {
				t.Errorf("n=%d %s: %v", n, tc.name, err)
			}
		}
	}
}
