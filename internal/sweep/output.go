package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteJSON serializes the report as indented JSON. Map keys (params,
// metrics) marshal in sorted order, so the bytes are a deterministic
// function of the report — the property the recorded BENCH_*.json
// trajectory files rely on.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV serializes the per-cell aggregates as CSV: one row per cell,
// with the union of parameter columns, then replicates/failures, then
// <metric>_mean/_min/_max/_std column groups in sorted metric order.
// Cells missing a parameter or metric (ragged case lists) leave the field
// empty.
func (r *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	params := r.ParamNames()
	metrics := r.MetricNames()
	header := append([]string{"scenario", "cell"}, params...)
	header = append(header, "replicates", "failures")
	for _, m := range metrics {
		header = append(header, m+"_mean", m+"_min", m+"_max", m+"_std")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for ci, cell := range r.Cells {
		row := []string{r.Scenario, strconv.Itoa(ci)}
		for _, p := range params {
			row = append(row, cell.Params[p])
		}
		row = append(row, strconv.Itoa(cell.Replicates), strconv.Itoa(cell.Failures))
		for _, m := range metrics {
			agg, ok := cell.Metrics[m]
			if !ok {
				row = append(row, "", "", "", "")
				continue
			}
			row = append(row, formatFloat(agg.Mean), formatFloat(agg.Min),
				formatFloat(agg.Max), formatFloat(agg.Std))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders aggregates compactly ("12" rather than "12.000000")
// while keeping full precision for fractional values. Non-finite values
// render as an empty field — CSV consumers treat them like a missing
// metric instead of choking on a "NaN"/"+Inf" literal, mirroring how
// WriteJSON maps them to null.
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Summary writes a short human-readable digest: per-cell one line with the
// parameter key and that cell's own replicate/failure counts — the same
// per-cell numbers WriteCSV emits, so a failure in cell 0 reads as
// "cell 0: 1/3 replicates FAILED" and is never mistaken for the
// report-wide aggregate, which the header states separately over the run
// total. It is what drivers print to stderr alongside the
// machine-readable outputs.
func (r *Report) Summary(w io.Writer) {
	fmt.Fprintf(w, "scenario %s: %d cells × %d replicates, %d/%d runs failed\n",
		r.Scenario, len(r.Cells), r.Replicates, r.Failures, len(r.Runs))
	for ci, cell := range r.Cells {
		status := fmt.Sprintf("ok (%d/%d replicates)", cell.Replicates-cell.Failures, cell.Replicates)
		if cell.Failures > 0 {
			status = fmt.Sprintf("%d/%d replicates FAILED", cell.Failures, cell.Replicates)
		}
		fmt.Fprintf(w, "  cell %d [%s]: %s\n", ci, cell.Params.Key(), status)
		for _, e := range cell.Errors {
			fmt.Fprintf(w, "    error: %s\n", e)
		}
	}
}
