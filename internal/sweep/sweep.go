// Package sweep is the parallel experiment runner on top of
// internal/scenario: it expands a parameter grid into cells, replicates
// each cell across deterministically derived seeds, executes the runs on a
// bounded worker pool with per-run timeouts, aggregates every metric per
// cell
// (mean/min/max/stddev over successful replicates), and serializes the
// whole report as schema-stable JSON and CSV.
//
// Determinism: the report (cells, run order, seeds, metrics) is a pure
// function of (scenario, cells, replicates, base seed) — worker count and
// scheduling only change wall-clock time. Run seeds are derived by hashing
// the scenario name, the cell's instance key, and the replicate index into
// the base seed, so a cell's seeds are stable under grid reordering and
// sweep composition. Execution-only parameters (the "engine" selection of
// the dist scheduler) are excluded from the instance key: cells differing
// only in engine run identical instances and must report identical
// metrics, making an engine axis a pure wall-clock comparison. Wall-clock
// durations are excluded from the serialized report by default; the
// execution-only "timing" parameter opts in to per-round wall-time
// metrics (round_wall_ns_mean/max, time_share_*), which are telemetry —
// reports carrying them are not byte-reproducible.
package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"distspanner/internal/scenario"
)

// Options configures one sweep.
type Options struct {
	// Scenario is the workload to run. Required.
	Scenario *scenario.Scenario
	// Cells are the parameter cells to run; nil uses the scenario's
	// default cases/grid. Each cell is layered over Scenario.Defaults.
	Cells []scenario.Params
	// Replicates is the number of seed replicates per cell; 0 uses the
	// scenario default.
	Replicates int
	// Workers bounds concurrent runs; 0 uses GOMAXPROCS.
	Workers int
	// BaseSeed drives every derived run seed.
	BaseSeed int64
	// Timeout bounds one run's wall clock; 0 means none. A timed-out run
	// is recorded as failed ("timeout after ...") and actively canceled:
	// the scenario's cancel channel is closed and the sweep waits for the
	// run to unwind before moving on, so no abandoned goroutine keeps
	// writing behind the sweep's back. A run that ignores the cancel
	// signal (sequential solvers may) is abandoned after a grace period
	// of one more Timeout.
	Timeout time.Duration
}

// Run is one executed (cell, replicate) pair.
type Run struct {
	Cell      int              `json:"cell"`
	Replicate int              `json:"replicate"`
	Seed      int64            `json:"seed"`
	Params    scenario.Params  `json:"params"`
	Metrics   scenario.Metrics `json:"metrics,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// Agg is one metric aggregated over a cell's successful replicates.
type Agg struct {
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Std   float64 `json:"std"`
	Count int     `json:"count"`
}

// MarshalJSON renders non-finite aggregates as null: JSON has no
// Inf/NaN literal, and a single ln(0) metric must not make the whole
// report unserializable after every run already completed.
func (a Agg) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"mean":%s,"min":%s,"max":%s,"std":%s,"count":%d}`,
		jsonNum(a.Mean), jsonNum(a.Min), jsonNum(a.Max), jsonNum(a.Std), a.Count)), nil
}

// jsonNum formats one JSON number, mapping NaN/±Inf to null.
func jsonNum(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	b, _ := json.Marshal(v)
	return string(b)
}

// Cell is the per-cell aggregate view.
type Cell struct {
	Params     scenario.Params `json:"params"`
	Replicates int             `json:"replicates"`
	Failures   int             `json:"failures"`
	Metrics    map[string]Agg  `json:"metrics"`
	Errors     []string        `json:"errors,omitempty"`
}

// Report is the full sweep result.
type Report struct {
	Scenario   string `json:"scenario"`
	Title      string `json:"title,omitempty"`
	Model      string `json:"model,omitempty"`
	BaseSeed   int64  `json:"base_seed"`
	Replicates int    `json:"replicates"`
	Failures   int    `json:"failures"`
	Cells      []Cell `json:"cells"`
	Runs       []Run  `json:"runs"`
}

// Failed reports whether any run failed verification (or timed out).
func (r *Report) Failed() bool { return r.Failures > 0 }

// DeriveSeed returns the seed of one (scenario, cell, replicate) run:
// base mixed with an FNV hash of the scenario name and the cell's
// instance key, then a splitmix64 step per replicate. Stable under cell
// reordering, and blind to execution-only parameters (the "engine"
// selection), so cells that differ only in engine mode run identical
// instances — any metric difference between them is an engine bug.
func DeriveSeed(base int64, scenarioName string, cell scenario.Params, replicate int) int64 {
	h := fnv.New64a()
	h.Write([]byte(scenarioName))
	h.Write([]byte{0})
	h.Write([]byte(cell.InstanceKey()))
	z := uint64(base) ^ h.Sum64()
	z += 0x9e3779b97f4a7c15 * uint64(replicate+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Execute runs the sweep and returns the aggregated report. An error is
// returned only for misconfiguration; individual run failures are recorded
// in the report (check Report.Failed()).
func Execute(opts Options) (*Report, error) {
	sc := opts.Scenario
	if sc == nil {
		return nil, errors.New("sweep: Options.Scenario is nil")
	}
	cells := opts.Cells
	if cells == nil {
		cells = sc.DefaultCells()
	}
	if len(cells) == 0 {
		cells = []scenario.Params{{}}
	}
	replicates := opts.Replicates
	if replicates <= 0 {
		replicates = sc.EffectiveReplicates()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Resolve each cell over the scenario defaults once, up front.
	resolved := make([]scenario.Params, len(cells))
	for i, c := range cells {
		resolved[i] = sc.Defaults.Merge(c)
	}

	runs := make([]Run, len(cells)*replicates)
	for ci := range resolved {
		for r := 0; r < replicates; r++ {
			idx := ci*replicates + r
			runs[idx] = Run{
				Cell:      ci,
				Replicate: r,
				Seed:      DeriveSeed(opts.BaseSeed, sc.Name, resolved[ci], r),
				Params:    resolved[ci],
			}
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				executeRun(sc, &runs[idx], opts.Timeout)
			}
		}()
	}
	for idx := range runs {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	rep := &Report{
		Scenario:   sc.Name,
		Title:      sc.Title,
		Model:      sc.Model,
		BaseSeed:   opts.BaseSeed,
		Replicates: replicates,
		Runs:       runs,
	}
	rep.Cells = make([]Cell, len(resolved))
	for ci, params := range resolved {
		cell := Cell{Params: params, Replicates: replicates, Metrics: map[string]Agg{}}
		samples := map[string][]float64{}
		seenErr := map[string]bool{}
		for r := 0; r < replicates; r++ {
			run := runs[ci*replicates+r]
			if run.Error != "" {
				cell.Failures++
				if !seenErr[run.Error] {
					seenErr[run.Error] = true
					cell.Errors = append(cell.Errors, run.Error)
				}
				continue
			}
			for name, v := range run.Metrics {
				samples[name] = append(samples[name], v)
			}
		}
		for name, vals := range samples {
			cell.Metrics[name] = aggregate(vals)
		}
		rep.Failures += cell.Failures
		rep.Cells[ci] = cell
	}
	return rep, nil
}

// executeRun performs one run in place, converting panics and timeouts
// into recorded failures so a single bad cell cannot kill the sweep.
func executeRun(sc *scenario.Scenario, run *Run, timeout time.Duration) {
	m, err := Single(sc, run.Params, run.Seed, timeout, nil)
	run.Metrics = m
	if err != nil {
		run.Error = err.Error()
	}
}

// ErrCanceled is returned by Single when the caller's cancel signal
// fires before the run completes.
var ErrCanceled = errors.New("sweep: run canceled")

// Single is the single-run executor seam: it executes one (params, seed)
// cell of sc with the sweep's full execution discipline — panic recovery,
// an optional per-run timeout, and active cancellation — and returns the
// run's metrics. It is what every sweep worker calls per run, and what
// the service layer's job pool reuses to serve one request.
//
// The run happens on its own goroutine with a recover wrapper, so a
// panicking cell surfaces as an error rather than killing the caller.
// When timeout > 0 and the run exceeds it, or when the caller's cancel
// channel fires first, the scenario's cancel channel is closed
// (dist-engine scenarios plumb it into dist.Config.Cancel, stopping
// within one round) and Single waits for the run goroutine to unwind —
// so no abandoned writer keeps mutating shared state behind the caller's
// back. A run that ignores the cancel signal (sequential solvers may) is
// abandoned after a grace period of one more timeout (one minute when no
// timeout was set). Cancellation reports ErrCanceled (wrapped); the
// run's own outcome is discarded.
func Single(sc *scenario.Scenario, p scenario.Params, seed int64, timeout time.Duration, cancel <-chan struct{}) (scenario.Metrics, error) {
	inner := make(chan struct{})
	done := make(chan runOutcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- runOutcome{err: fmt.Errorf("panic: %v", r)}
			}
		}()
		m, err := sc.Run(p, seed, inner)
		done <- runOutcome{metrics: m, err: err}
	}()
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	grace := timeout
	if grace <= 0 {
		grace = time.Minute
	}
	select {
	case out := <-done:
		return out.metrics, out.err
	case <-timer:
		close(inner)
		awaitUnwind(done, grace)
		return nil, fmt.Errorf("timeout after %s", timeout)
	case <-cancel:
		close(inner)
		awaitUnwind(done, grace)
		return nil, fmt.Errorf("%w before completion", ErrCanceled)
	}
}

// runOutcome is one run goroutine's result, handed back over the done
// channel.
type runOutcome struct {
	metrics scenario.Metrics
	err     error
}

// awaitUnwind waits for an aborted run goroutine to unwind (its outcome
// is discarded), bounded by the grace period, so the run's writers are
// gone before the caller moves on.
func awaitUnwind(done <-chan runOutcome, grace time.Duration) {
	select {
	case <-done:
	case <-time.After(grace):
	}
}

// aggregate computes mean/min/max/population-stddev of a sample.
func aggregate(vals []float64) Agg {
	a := Agg{Min: math.Inf(1), Max: math.Inf(-1), Count: len(vals)}
	if len(vals) == 0 {
		return Agg{}
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < a.Min {
			a.Min = v
		}
		if v > a.Max {
			a.Max = v
		}
	}
	a.Mean = sum / float64(len(vals))
	varsum := 0.0
	for _, v := range vals {
		d := v - a.Mean
		varsum += d * d
	}
	a.Std = math.Sqrt(varsum / float64(len(vals)))
	return a
}

// MetricNames returns the union of metric names across all cells, sorted —
// the canonical CSV column order.
func (r *Report) MetricNames() []string {
	seen := map[string]bool{}
	for _, c := range r.Cells {
		for name := range c.Metrics {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ParamNames returns the union of parameter names across all cells,
// sorted.
func (r *Report) ParamNames() []string {
	seen := map[string]bool{}
	for _, c := range r.Cells {
		for name := range c.Params {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
