package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"distspanner/internal/scenario"
)

// TestNonFiniteMetricsSerialize reproduces the edgeless-graph case: a
// metric like ln(maxDegree)+1 can be -Inf, which encoding/json rejects.
// The report must still serialize (non-finite values become null) rather
// than discarding a completed sweep.
func TestNonFiniteMetricsSerialize(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "degenerate",
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			return scenario.Metrics{
				"neg_inf": math.Inf(-1),
				"nan":     math.NaN(),
				"fine":    3,
			}, nil
		},
	}
	rep, err := Execute(Options{Scenario: sc, Replicates: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON must survive non-finite metrics: %v", err)
	}
	var decoded struct {
		Cells []struct {
			Metrics map[string]map[string]interface{} `json:"metrics"`
		} `json:"cells"`
		Runs []struct {
			Metrics map[string]interface{} `json:"metrics"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	run := decoded.Runs[0].Metrics
	if run["neg_inf"] != nil || run["nan"] != nil {
		t.Fatalf("per-run non-finite values must decode as null: %v", run)
	}
	if run["fine"] != 3.0 {
		t.Fatalf("finite values must survive: %v", run)
	}
	// The -Inf aggregate (mean/min/max of [-Inf,-Inf]) must also be null,
	// while its count stays intact.
	agg := decoded.Cells[0].Metrics["neg_inf"]
	if agg["mean"] != nil || agg["min"] != nil {
		t.Fatalf("aggregate non-finite values must decode as null: %v", agg)
	}
	if agg["count"] != 2.0 {
		t.Fatalf("aggregate count lost: %v", agg)
	}
	if s := buf.String(); strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		t.Fatalf("non-finite literal leaked into JSON:\n%s", s)
	}
	// CSV must not leak non-finite literals either: formatFloat renders
	// them as empty fields.
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if s := csvBuf.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Fatalf("non-finite literal leaked into CSV:\n%s", s)
	}
}

// TestSingleReplicateAggregates pins the 1-replicate edge case: with one
// sample the population stddev is exactly 0 — never NaN, which
// encoding/json rejects and which would make WriteJSON fail on any
// 1-replicate sweep.
func TestSingleReplicateAggregates(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "single",
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			return scenario.Metrics{"size": 17, "ratio": 2.5}, nil
		},
	}
	rep, err := Execute(Options{Scenario: sc, Replicates: 1, BaseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for name, agg := range rep.Cells[0].Metrics {
		if agg.Count != 1 {
			t.Fatalf("%s: count = %d, want 1", name, agg.Count)
		}
		if agg.Std != 0 {
			t.Fatalf("%s: single-replicate Std = %v, want exactly 0", name, agg.Std)
		}
		if agg.Mean != agg.Min || agg.Min != agg.Max {
			t.Fatalf("%s: single-replicate mean/min/max disagree: %+v", name, agg)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON on a 1-replicate sweep: %v", err)
	}
	if s := buf.String(); strings.Contains(s, "NaN") {
		t.Fatalf("NaN leaked into 1-replicate JSON:\n%s", s)
	}
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 cell", len(lines))
	}
	// Columns: scenario,cell,replicates,failures, then ratio_*, size_*
	// (sorted metric order); every std field must be the literal 0.
	fields := strings.Split(lines[1], ",")
	if fields[2] != "1" || fields[3] != "0" {
		t.Fatalf("replicates/failures = %q/%q, want 1/0", fields[2], fields[3])
	}
	if std := fields[7]; std != "0" {
		t.Fatalf("ratio_std = %q, want 0", std)
	}
	if std := fields[11]; std != "0" {
		t.Fatalf("size_std = %q, want 0", std)
	}
}

// TestFormatFloat pins the CSV field rendering, including the non-finite
// cases that must never surface as literals.
func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		12:           "12",
		2.5:          "2.5",
		0:            "0",
		math.NaN():   "",
		math.Inf(1):  "",
		math.Inf(-1): "",
	}
	for v, want := range cases {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestSummaryGolden pins the digest byte for byte: per-cell lines carry
// that cell's own replicate/failure counts (consistent with WriteCSV's
// per-cell columns), so cell-0 errors cannot be misread as the aggregate,
// which the header reports separately over the run total.
func TestSummaryGolden(t *testing.T) {
	rep := &Report{
		Scenario:   "demo",
		Replicates: 3,
		Failures:   2,
		Cells: []Cell{
			{
				Params:     scenario.Params{"n": "64", "p": "0.2"},
				Replicates: 3,
				Failures:   2,
				Errors:     []string{"timeout after 1s"},
			},
			{
				Params:     scenario.Params{"n": "128", "p": "0.2"},
				Replicates: 3,
			},
		},
		Runs: make([]Run, 6),
	}
	var buf bytes.Buffer
	rep.Summary(&buf)
	want := "scenario demo: 2 cells × 3 replicates, 2/6 runs failed\n" +
		"  cell 0 [n=64 p=0.2]: 2/3 replicates FAILED\n" +
		"    error: timeout after 1s\n" +
		"  cell 1 [n=128 p=0.2]: ok (3/3 replicates)\n"
	if got := buf.String(); got != want {
		t.Fatalf("Summary digest drifted:\n got: %q\nwant: %q", got, want)
	}
}
