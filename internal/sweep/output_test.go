package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"distspanner/internal/scenario"
)

// TestNonFiniteMetricsSerialize reproduces the edgeless-graph case: a
// metric like ln(maxDegree)+1 can be -Inf, which encoding/json rejects.
// The report must still serialize (non-finite values become null) rather
// than discarding a completed sweep.
func TestNonFiniteMetricsSerialize(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "degenerate",
		Run: func(p scenario.Params, seed int64) (scenario.Metrics, error) {
			return scenario.Metrics{
				"neg_inf": math.Inf(-1),
				"nan":     math.NaN(),
				"fine":    3,
			}, nil
		},
	}
	rep, err := Execute(Options{Scenario: sc, Replicates: 2, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON must survive non-finite metrics: %v", err)
	}
	var decoded struct {
		Cells []struct {
			Metrics map[string]map[string]interface{} `json:"metrics"`
		} `json:"cells"`
		Runs []struct {
			Metrics map[string]interface{} `json:"metrics"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	run := decoded.Runs[0].Metrics
	if run["neg_inf"] != nil || run["nan"] != nil {
		t.Fatalf("per-run non-finite values must decode as null: %v", run)
	}
	if run["fine"] != 3.0 {
		t.Fatalf("finite values must survive: %v", run)
	}
	// The -Inf aggregate (mean/min/max of [-Inf,-Inf]) must also be null,
	// while its count stays intact.
	agg := decoded.Cells[0].Metrics["neg_inf"]
	if agg["mean"] != nil || agg["min"] != nil {
		t.Fatalf("aggregate non-finite values must decode as null: %v", agg)
	}
	if agg["count"] != 2.0 {
		t.Fatalf("aggregate count lost: %v", agg)
	}
	if s := buf.String(); strings.Contains(s, "Inf") || strings.Contains(s, "NaN") {
		t.Fatalf("non-finite literal leaked into JSON:\n%s", s)
	}
	// CSV has no such restriction; it must also not error.
	var csvBuf bytes.Buffer
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
}
