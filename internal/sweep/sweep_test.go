package sweep

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/scenario"
)

// synthetic returns an unregistered scenario whose metrics are pure
// functions of (params, seed) so tests can assert exact aggregates.
func synthetic() *scenario.Scenario {
	return &scenario.Scenario{
		Name:     "synthetic",
		Title:    "test scenario",
		Model:    "analytic",
		Defaults: scenario.Params{"x": "1"},
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			x := p.Float("x", 0)
			if p.Bool("fail", false) {
				return nil, fmt.Errorf("deliberate failure at x=%g", x)
			}
			return scenario.Metrics{
				"x":    x,
				"seed": float64(seed % 97),
			}, nil
		},
	}
}

func TestExecuteAggregates(t *testing.T) {
	sc := synthetic()
	rep, err := Execute(Options{
		Scenario:   sc,
		Cells:      []scenario.Params{{"x": "2"}, {"x": "5"}},
		Replicates: 4,
		BaseSeed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || len(rep.Runs) != 8 {
		t.Fatalf("cells=%d runs=%d", len(rep.Cells), len(rep.Runs))
	}
	if rep.Failed() {
		t.Fatalf("unexpected failures: %+v", rep.Cells)
	}
	agg := rep.Cells[0].Metrics["x"]
	if agg.Mean != 2 || agg.Min != 2 || agg.Max != 2 || agg.Std != 0 || agg.Count != 4 {
		t.Fatalf("x agg = %+v", agg)
	}
	if rep.Cells[1].Metrics["x"].Mean != 5 {
		t.Fatal("cell 1 did not get its own params")
	}
	// Defaults layered under cells.
	if rep.Cells[0].Params["x"] != "2" {
		t.Fatal("cell override lost")
	}
}

func TestExecuteDeterministicAcrossWorkers(t *testing.T) {
	sc := synthetic()
	cells := []scenario.Params{{"x": "1"}, {"x": "2"}, {"x": "3"}, {"x": "4"}}
	var outs []string
	for _, workers := range []int{1, 8} {
		rep, err := Execute(Options{Scenario: sc, Cells: cells, Replicates: 3, Workers: workers, BaseSeed: 42})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf.String())
	}
	if outs[0] != outs[1] {
		t.Fatal("JSON differs between workers=1 and workers=8")
	}
}

func TestSeedDerivation(t *testing.T) {
	c1 := scenario.Params{"n": "64", "p": "0.1"}
	c2 := scenario.Params{"p": "0.1", "n": "64"} // same cell, different construction order
	if DeriveSeed(7, "s", c1, 0) != DeriveSeed(7, "s", c2, 0) {
		t.Fatal("seed must depend on canonical key, not map order")
	}
	if DeriveSeed(7, "s", c1, 0) == DeriveSeed(7, "s", c1, 1) {
		t.Fatal("replicates must get distinct seeds")
	}
	if DeriveSeed(7, "s", c1, 0) == DeriveSeed(8, "s", c1, 0) {
		t.Fatal("base seed must matter")
	}
	if DeriveSeed(7, "a", c1, 0) == DeriveSeed(7, "b", c1, 0) {
		t.Fatal("scenario name must matter")
	}
}

func TestFailuresRecorded(t *testing.T) {
	sc := synthetic()
	rep, err := Execute(Options{
		Scenario:   sc,
		Cells:      []scenario.Params{{"x": "1"}, {"x": "9", "fail": "true"}},
		Replicates: 2,
		BaseSeed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || rep.Failures != 2 {
		t.Fatalf("failures = %d, want 2", rep.Failures)
	}
	cell := rep.Cells[1]
	if cell.Failures != 2 || len(cell.Errors) != 1 || !strings.Contains(cell.Errors[0], "deliberate") {
		t.Fatalf("cell = %+v", cell)
	}
	// Failed replicates contribute no samples.
	if _, ok := cell.Metrics["x"]; ok {
		t.Fatal("failed runs must not contribute aggregates")
	}
}

func TestPanicRecovered(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "panicky",
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			panic("boom")
		},
	}
	rep, err := Execute(Options{Scenario: sc, Replicates: 1, BaseSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || !strings.Contains(rep.Runs[0].Error, "boom") {
		t.Fatalf("panic not recorded: %+v", rep.Runs)
	}
}

func TestTimeout(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "slow",
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			time.Sleep(5 * time.Second)
			return scenario.Metrics{"done": 1}, nil
		},
	}
	start := time.Now()
	rep, err := Execute(Options{Scenario: sc, Replicates: 1, BaseSeed: 1, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout did not take effect")
	}
	if !rep.Failed() || !strings.Contains(rep.Runs[0].Error, "timeout") {
		t.Fatalf("timeout not recorded: %+v", rep.Runs)
	}
}

// TestTimeoutCancelsBusyRun asserts a timeout actively stops the losing
// run rather than abandoning its goroutine: the busy dist run is unwound
// via the scenario cancel channel before Execute returns, so the test's
// read of the hook-written counter below is race-free (run with -race).
func TestTimeoutCancelsBusyRun(t *testing.T) {
	rounds := 0 // written by the run's round hook, read after Execute
	sc := &scenario.Scenario{
		Name: "busy",
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			_, err := dist.Run(dist.Config{
				Graph:     gen.Cycle(64),
				Seed:      seed,
				MaxRounds: 1 << 30,
				Cancel:    cancel,
				OnRound:   func(dist.RoundActivity) { rounds++ },
			}, func(c *dist.Ctx) {
				for {
					c.NextRound()
				}
			})
			return nil, err
		},
	}
	rep, err := Execute(Options{Scenario: sc, Replicates: 1, BaseSeed: 1, Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || !strings.Contains(rep.Runs[0].Error, "timeout") {
		t.Fatalf("timeout not recorded: %+v", rep.Runs)
	}
	if rounds == 0 {
		t.Fatal("busy run never advanced a round before the timeout")
	}
}

// TestWorkerPoolParallelism shows wall clock drops as -workers grows: 6
// runs of a 60ms scenario take >= 360ms serially but ~60ms on 6 workers.
// Sleep-based so the demonstration holds even on single-CPU CI runners.
func TestWorkerPoolParallelism(t *testing.T) {
	sc := &scenario.Scenario{
		Name: "sleepy",
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			time.Sleep(60 * time.Millisecond)
			return scenario.Metrics{"ok": 1}, nil
		},
	}
	cells := make([]scenario.Params, 6)
	for i := range cells {
		cells[i] = scenario.Params{"i": fmt.Sprint(i)}
	}
	elapsed := func(workers int) time.Duration {
		start := time.Now()
		rep, err := Execute(Options{Scenario: sc, Cells: cells, Replicates: 1, Workers: workers, BaseSeed: 1})
		if err != nil || rep.Failed() {
			t.Fatalf("workers=%d: %v %+v", workers, err, rep)
		}
		return time.Since(start)
	}
	serial := elapsed(1)
	parallel := elapsed(6)
	if serial < 300*time.Millisecond {
		t.Fatalf("serial sweep finished too fast (%s): jobs not serialized?", serial)
	}
	if parallel >= serial/2 {
		t.Fatalf("parallel sweep (%s) not faster than serial (%s)", parallel, serial)
	}
}

func TestCSVShape(t *testing.T) {
	sc := synthetic()
	rep, err := Execute(Options{
		Scenario:   sc,
		Cells:      []scenario.Params{{"x": "2"}, {"x": "3", "extra": "1"}},
		Replicates: 2,
		BaseSeed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want header + 2 cells", len(lines))
	}
	header := strings.Split(lines[0], ",")
	wantCols := 2 + 2 /*params: extra,x*/ + 2 + 2*4 /*metrics: seed,x × 4 aggs*/
	if len(header) != wantCols {
		t.Fatalf("header has %d columns, want %d: %v", len(header), wantCols, header)
	}
	if header[0] != "scenario" || header[2] != "extra" || header[3] != "x" {
		t.Fatalf("header order: %v", header)
	}
	// Cell 0 has no "extra" param: empty field.
	row0 := strings.Split(lines[1], ",")
	if row0[2] != "" || row0[3] != "2" {
		t.Fatalf("row0: %v", row0)
	}
}

// TestRealScenarioSweep exercises the acceptance-criteria path end to end:
// the registered twospanner scenario over a parsed grid, checking
// determinism of the serialized report for a fixed base seed.
func TestRealScenarioSweep(t *testing.T) {
	sc, ok := scenario.Get("twospanner")
	if !ok {
		t.Fatal("twospanner not registered")
	}
	grid, err := scenario.ParseGrid("n=20,28;p=0.15,0.25")
	if err != nil {
		t.Fatal(err)
	}
	var prev string
	for i := 0; i < 2; i++ {
		rep, err := Execute(Options{Scenario: sc, Cells: grid.Cells(), Replicates: 2, BaseSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Failed() {
			t.Fatalf("verification failures: %+v", rep.Cells)
		}
		if len(rep.Cells) != 4 {
			t.Fatalf("%d cells", len(rep.Cells))
		}
		for _, c := range rep.Cells {
			if c.Metrics["valid"].Min != 1 {
				t.Fatalf("cell %v not verified", c.Params)
			}
			if c.Metrics["size"].Count != 2 {
				t.Fatalf("cell %v missing samples", c.Params)
			}
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			prev = buf.String()
		} else if buf.String() != prev {
			t.Fatal("repeat sweep with fixed base seed produced different JSON")
		}
	}
}

func TestEngineAxisRunsIdenticalInstances(t *testing.T) {
	// Cells that differ only in the execution-only "engine" parameter must
	// derive identical seeds (InstanceKey is blind to it), so a sweep over
	// engine={barrier,event} runs the same instances and — by the dist
	// engine's cross-mode determinism contract — yields identical metrics.
	for r := 0; r < 3; r++ {
		a := DeriveSeed(7, "twospanner", scenario.Params{"n": "32", "engine": "barrier"}, r)
		b := DeriveSeed(7, "twospanner", scenario.Params{"n": "32", "engine": "event"}, r)
		c := DeriveSeed(7, "twospanner", scenario.Params{"n": "32"}, r)
		if a != b || a != c {
			t.Fatalf("replicate %d: engine parameter leaked into seed derivation: %d %d %d", r, a, b, c)
		}
	}
	sc, ok := scenario.Get("twospanner")
	if !ok {
		t.Fatal("twospanner not registered")
	}
	rep, err := Execute(Options{
		Scenario:   sc,
		Cells:      []scenario.Params{{"n": "28", "engine": "barrier"}, {"n": "28", "engine": "event"}},
		Replicates: 2,
		BaseSeed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("sweep failed: %+v", rep.Cells)
	}
	barrier, event := rep.Cells[0], rep.Cells[1]
	if len(barrier.Metrics) == 0 {
		t.Fatal("no metrics recorded")
	}
	for name, agg := range barrier.Metrics {
		if event.Metrics[name] != agg {
			t.Fatalf("metric %q diverges across engine cells: barrier %+v, event %+v",
				name, agg, event.Metrics[name])
		}
	}
}
