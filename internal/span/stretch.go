package span

import "distspanner/internal/graph"

// StretchStats summarizes the per-edge stretch of a spanner H: for each
// edge {u,v} of the graph, the distance between u and v inside H.
type StretchStats struct {
	// Histogram[d] counts edges whose endpoints are at distance d in H
	// (index 1 = the edge itself is present).
	Histogram map[int]int
	// Max is the worst stretch; -1 if some edge's endpoints are
	// disconnected in H.
	Max int
	// Mean is the average stretch over edges (undefined, 0, when
	// disconnected or edgeless).
	Mean float64
}

// Stretch computes the stretch distribution of H over the edges of g,
// searching distances up to cap (use cap <= 0 for unbounded; disconnected
// pairs then mark the result disconnected).
func Stretch(g *graph.Graph, H *graph.EdgeSet, cap int) StretchStats {
	st := StretchStats{Histogram: make(map[int]int)}
	total := 0
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		d := g.DistWithin(e.U, e.V, H, cap)
		if d < 0 {
			st.Max = -1
			st.Mean = 0
			return st
		}
		st.Histogram[d]++
		if d > st.Max {
			st.Max = d
		}
		total += d
	}
	if g.M() > 0 {
		st.Mean = float64(total) / float64(g.M())
	}
	return st
}

// DirectedStretch is the digraph analogue of Stretch.
func DirectedStretch(d *graph.Digraph, H *graph.EdgeSet, cap int) StretchStats {
	st := StretchStats{Histogram: make(map[int]int)}
	total := 0
	for i := 0; i < d.M(); i++ {
		e := d.Edge(i)
		dist := d.DistWithin(e.U, e.V, H, cap)
		if dist < 0 {
			st.Max = -1
			st.Mean = 0
			return st
		}
		st.Histogram[dist]++
		if dist > st.Max {
			st.Max = dist
		}
		total += dist
	}
	if d.M() > 0 {
		st.Mean = float64(total) / float64(d.M())
	}
	return st
}
