// Package span defines the semantics of the spanner problems studied in the
// paper: k-spanner validity for undirected, directed, weighted, and
// client-server variants, coverage of single edges, spanner cost, and the
// simple lower bounds on OPT used by the approximation analyses.
//
// Following the paper's Preliminaries: an edge e = {u, v} is covered by an
// edge subset S if S contains a path of length at most k between u and v
// (for directed graphs, a directed path from u to v). A k-spanner of G is a
// subgraph covering all edges of G; a k-spanner of a subgraph G' ⊆ G covers
// all edges of G'.
package span

import (
	"distspanner/internal/graph"
)

// Covered reports whether edge i of g is covered by the edge subset H with
// stretch k: either i ∈ H or H contains a path of length at most k between
// its endpoints.
func Covered(g *graph.Graph, H *graph.EdgeSet, i, k int) bool {
	if H.Has(i) {
		return true
	}
	e := g.Edge(i)
	return g.DistWithin(e.U, e.V, H, k) >= 0
}

// CoveredDirected reports whether directed edge i of d is covered by H with
// stretch k: either i ∈ H or H contains a directed path of length at most k
// from its tail to its head.
func CoveredDirected(d *graph.Digraph, H *graph.EdgeSet, i, k int) bool {
	if H.Has(i) {
		return true
	}
	e := d.Edge(i)
	return d.DistWithin(e.U, e.V, H, k) >= 0
}

// IsKSpanner reports whether H is a k-spanner of g: every edge of g is
// covered by H with stretch k.
func IsKSpanner(g *graph.Graph, H *graph.EdgeSet, k int) bool {
	return len(Violations(g, H, k, 1)) == 0
}

// Violations returns up to max edges of g not covered by H with stretch k.
// A max <= 0 returns all violations.
func Violations(g *graph.Graph, H *graph.EdgeSet, k, max int) []int {
	var out []int
	for i := 0; i < g.M(); i++ {
		if !Covered(g, H, i, k) {
			out = append(out, i)
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// IsDirectedKSpanner reports whether H is a k-spanner of the digraph d.
func IsDirectedKSpanner(d *graph.Digraph, H *graph.EdgeSet, k int) bool {
	return len(DirectedViolations(d, H, k, 1)) == 0
}

// DirectedViolations returns up to max directed edges of d not covered by H
// with stretch k. A max <= 0 returns all violations.
func DirectedViolations(d *graph.Digraph, H *graph.EdgeSet, k, max int) []int {
	var out []int
	for i := 0; i < d.M(); i++ {
		if !CoveredDirected(d, H, i, k) {
			out = append(out, i)
			if max > 0 && len(out) >= max {
				return out
			}
		}
	}
	return out
}

// IsSpannerOf reports whether H is a k-spanner of the sub-edge-set target:
// every edge of target is covered by H with stretch k. This is the
// "k-spanner of a subgraph" notion (used by client-server and the (1+ε)
// algorithm's partial covers).
func IsSpannerOf(g *graph.Graph, target, H *graph.EdgeSet, k int) bool {
	ok := true
	target.ForEach(func(i int) {
		if ok && !Covered(g, H, i, k) {
			ok = false
		}
	})
	return ok
}

// ClientServerValid reports whether H is a valid solution to the
// client-server k-spanner instance: H uses only server edges and covers
// every coverable client edge. Client edges that no server subset can cover
// are excluded, matching Section 4.3.3's convention of restricting clients
// to coverable edges.
func ClientServerValid(g *graph.Graph, clients, servers, H *graph.EdgeSet, k int) bool {
	sub := H.Clone()
	sub.SubtractWith(servers)
	if sub.Len() != 0 {
		return false // H contains a non-server edge
	}
	ok := true
	clients.ForEach(func(i int) {
		if !ok {
			return
		}
		if !coverableByServers(g, servers, i, k) {
			return
		}
		e := g.Edge(i)
		if H.Has(i) {
			return
		}
		if g.DistWithin(e.U, e.V, H, k) < 0 {
			ok = false
		}
	})
	return ok
}

// CoverableClients returns the subset of client edges that can be covered
// by some subset of server edges at stretch k (i.e. by all of them).
func CoverableClients(g *graph.Graph, clients, servers *graph.EdgeSet, k int) *graph.EdgeSet {
	out := graph.NewEdgeSet(g.M())
	clients.ForEach(func(i int) {
		if coverableByServers(g, servers, i, k) {
			out.Add(i)
		}
	})
	return out
}

func coverableByServers(g *graph.Graph, servers *graph.EdgeSet, i, k int) bool {
	if servers.Has(i) {
		return true
	}
	e := g.Edge(i)
	return g.DistWithin(e.U, e.V, servers, k) >= 0
}

// Cost returns the cost of the spanner H: total weight for weighted graphs,
// edge count for unweighted ones (Weight reports 1 per edge then).
func Cost(g *graph.Graph, H *graph.EdgeSet) float64 {
	return g.TotalWeight(H)
}

// DirectedCost returns the cost of H in the digraph d.
func DirectedCost(d *graph.Digraph, H *graph.EdgeSet) float64 {
	return d.TotalWeight(H)
}

// MaxStretch returns the maximum over edges e = {u,v} of g of the distance
// between u and v inside H, i.e. the actual stretch of H. It returns -1 if
// some edge's endpoints are disconnected in H. Distances are capped at
// cap (pass cap <= 0 for uncapped search).
func MaxStretch(g *graph.Graph, H *graph.EdgeSet, cap int) int {
	max := 0
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		d := g.DistWithin(e.U, e.V, H, cap)
		if d < 0 {
			return -1
		}
		if d > max {
			max = d
		}
	}
	return max
}

// SpannerOPTLowerBound returns the trivial lower bound on the size of any
// k-spanner of a connected graph: n - 1 edges (the paper uses this
// repeatedly: any spanner of a connected graph connects it).
func SpannerOPTLowerBound(g *graph.Graph) int {
	if g.N() == 0 {
		return 0
	}
	return g.N() - 1
}

// ClientServerOPTLowerBound returns the |V(C)|/4 lower bound on the optimal
// client-server 2-spanner proven inside Lemma 4.16: H* must connect each
// connected component of the client graph, and each H* edge touches at most
// two components' vertex sets.
func ClientServerOPTLowerBound(g *graph.Graph, clients *graph.EdgeSet) float64 {
	vc := clientVertexCount(g, clients)
	return float64(vc) / 4
}

// ClientVertexCount returns |V(C)|: the number of vertices touching at
// least one client edge.
func ClientVertexCount(g *graph.Graph, clients *graph.EdgeSet) int {
	return clientVertexCount(g, clients)
}

func clientVertexCount(g *graph.Graph, clients *graph.EdgeSet) int {
	touched := make([]bool, g.N())
	clients.ForEach(func(i int) {
		e := g.Edge(i)
		touched[e.U] = true
		touched[e.V] = true
	})
	count := 0
	for _, b := range touched {
		if b {
			count++
		}
	}
	return count
}

// TwoSpanOK reports whether edge i = {u, w} is "2-spanned" in the paper's
// star sense by the subset H: there is a vertex x with both {u, x} and
// {x, w} in H. Unlike Covered this never counts i ∈ H itself.
func TwoSpanOK(g *graph.Graph, H *graph.EdgeSet, i int) bool {
	e := g.Edge(i)
	return g.DistWithin(e.U, e.V, hWithout(H, i), 2) == 2
}

func hWithout(H *graph.EdgeSet, i int) *graph.EdgeSet {
	if !H.Has(i) {
		return H
	}
	c := H.Clone()
	c.Remove(i)
	return c
}
