package span

import (
	"math/rand"
	"testing"
	"testing/quick"

	"distspanner/internal/gen"
	"distspanner/internal/graph"
)

func TestCoveredBasics(t *testing.T) {
	// Triangle 0-1-2.
	g := gen.Clique(3)
	e01, _ := g.EdgeIndex(0, 1)
	e12, _ := g.EdgeIndex(1, 2)
	e02, _ := g.EdgeIndex(0, 2)

	h := graph.NewEdgeSet(g.M())
	h.Add(e01)
	h.Add(e12)
	if !Covered(g, h, e01, 2) {
		t.Fatal("edge in H must be covered")
	}
	if !Covered(g, h, e02, 2) {
		t.Fatal("edge 0-2 covered by path 0-1-2")
	}
	if Covered(g, h, e02, 1) {
		t.Fatal("edge 0-2 must not be covered at stretch 1")
	}
}

func TestIsKSpannerOnClique(t *testing.T) {
	g := gen.Clique(6)
	// A star centered at 0 is a 2-spanner of the clique.
	h := graph.NewEdgeSet(g.M())
	for v := 1; v < 6; v++ {
		i, _ := g.EdgeIndex(0, v)
		h.Add(i)
	}
	if !IsKSpanner(g, h, 2) {
		t.Fatal("star must be a 2-spanner of the clique")
	}
	if IsKSpanner(g, h, 1) {
		t.Fatal("star is not a 1-spanner of the clique")
	}
	if got := MaxStretch(g, h, -1); got != 2 {
		t.Fatalf("MaxStretch = %d, want 2", got)
	}
}

func TestViolations(t *testing.T) {
	g := gen.Cycle(5)
	empty := graph.NewEdgeSet(g.M())
	v := Violations(g, empty, 2, 0)
	if len(v) != g.M() {
		t.Fatalf("empty H: %d violations, want all %d", len(v), g.M())
	}
	v1 := Violations(g, empty, 2, 2)
	if len(v1) != 2 {
		t.Fatalf("max=2 returned %d violations", len(v1))
	}
	full := graph.Full(g.M())
	if len(Violations(g, full, 1, 0)) != 0 {
		t.Fatal("full graph must 1-span itself")
	}
}

func TestCycleSpannerRemovalLimit(t *testing.T) {
	// In C_n, removing one edge gives an (n-1)-spanner but not an
	// (n-2)-spanner.
	g := gen.Cycle(6)
	h := graph.Full(g.M())
	h.Remove(0)
	if !IsKSpanner(g, h, 5) {
		t.Fatal("C6 minus an edge must be a 5-spanner")
	}
	if IsKSpanner(g, h, 4) {
		t.Fatal("C6 minus an edge must not be a 4-spanner")
	}
}

func TestDirectedSpanner(t *testing.T) {
	// Directed triangle 0->1->2->0 plus shortcut 0->2.
	d := graph.NewDigraph(3)
	e01 := d.AddEdge(0, 1)
	e12 := d.AddEdge(1, 2)
	e20 := d.AddEdge(2, 0)
	e02 := d.AddEdge(0, 2)

	h := graph.NewEdgeSet(d.M())
	h.Add(e01)
	h.Add(e12)
	h.Add(e20)
	if !IsDirectedKSpanner(d, h, 2) {
		t.Fatal("cycle must 2-span the shortcut 0->2 via 0->1->2")
	}
	// Dropping 0->1 breaks coverage: 0->1 has no replacement directed path.
	h2 := graph.NewEdgeSet(d.M())
	h2.Add(e12)
	h2.Add(e20)
	h2.Add(e02)
	if IsDirectedKSpanner(d, h2, 2) {
		t.Fatal("0->1 has no directed 2-path in h2; spanner check must fail")
	}
	viol := DirectedViolations(d, h2, 2, 0)
	if len(viol) != 1 || viol[0] != e01 {
		t.Fatalf("violations = %v, want [%d]", viol, e01)
	}
}

func TestDirectedViolationsDirectionMatters(t *testing.T) {
	// Edges 0->1 and 1->0. Keeping only 0->1 does not cover 1->0.
	d := graph.NewDigraph(2)
	a := d.AddEdge(0, 1)
	b := d.AddEdge(1, 0)
	h := graph.NewEdgeSet(d.M())
	h.Add(a)
	viol := DirectedViolations(d, h, 5, 0)
	if len(viol) != 1 || viol[0] != b {
		t.Fatalf("violations = %v, want [%d]", viol, b)
	}
}

func TestIsSpannerOf(t *testing.T) {
	g := gen.Clique(4)
	target := graph.NewEdgeSet(g.M())
	i01, _ := g.EdgeIndex(0, 1)
	target.Add(i01)
	// Cover {0,1} via 0-2-1.
	h := graph.NewEdgeSet(g.M())
	i02, _ := g.EdgeIndex(0, 2)
	i12, _ := g.EdgeIndex(1, 2)
	h.Add(i02)
	h.Add(i12)
	if !IsSpannerOf(g, target, h, 2) {
		t.Fatal("H must 2-span the single target edge")
	}
	empty := graph.NewEdgeSet(g.M())
	if IsSpannerOf(g, target, empty, 2) {
		t.Fatal("empty H cannot span a non-empty target")
	}
	if !IsSpannerOf(g, empty, empty, 2) {
		t.Fatal("anything spans an empty target")
	}
}

func TestClientServerValid(t *testing.T) {
	// Path 0-1-2 plus chord 0-2. Client = chord; servers = path edges.
	g := graph.New(3)
	e01 := g.AddEdge(0, 1)
	e12 := g.AddEdge(1, 2)
	e02 := g.AddEdge(0, 2)
	clients := graph.NewEdgeSet(g.M())
	clients.Add(e02)
	servers := graph.NewEdgeSet(g.M())
	servers.Add(e01)
	servers.Add(e12)

	h := servers.Clone()
	if !ClientServerValid(g, clients, servers, h, 2) {
		t.Fatal("path must cover the chord client edge")
	}
	// Using the client edge itself is invalid: it is not a server edge.
	bad := graph.NewEdgeSet(g.M())
	bad.Add(e02)
	if ClientServerValid(g, clients, servers, bad, 2) {
		t.Fatal("non-server edge in H must invalidate the solution")
	}
	// Empty H does not cover the coverable client.
	if ClientServerValid(g, clients, servers, graph.NewEdgeSet(g.M()), 2) {
		t.Fatal("empty H cannot be valid here")
	}
}

func TestCoverableClients(t *testing.T) {
	// Star 0-1, 0-2 plus isolated-ish edge 3-4; client {3,4} has no server
	// path if servers exclude it.
	g := graph.New(5)
	e01 := g.AddEdge(0, 1)
	e02 := g.AddEdge(0, 2)
	e12 := g.AddEdge(1, 2)
	e34 := g.AddEdge(3, 4)
	clients := graph.NewEdgeSet(g.M())
	clients.Add(e12)
	clients.Add(e34)
	servers := graph.NewEdgeSet(g.M())
	servers.Add(e01)
	servers.Add(e02)
	cov := CoverableClients(g, clients, servers, 2)
	if !cov.Has(e12) {
		t.Fatal("client {1,2} coverable via 1-0-2")
	}
	if cov.Has(e34) {
		t.Fatal("client {3,4} has no server cover")
	}
}

func TestCost(t *testing.T) {
	g := graph.New(3)
	a := g.AddEdge(0, 1)
	b := g.AddEdge(1, 2)
	h := graph.NewEdgeSet(g.M())
	h.Add(a)
	h.Add(b)
	if Cost(g, h) != 2 {
		t.Fatalf("unweighted cost = %f, want 2", Cost(g, h))
	}
	g.SetWeight(a, 0)
	g.SetWeight(b, 2.5)
	if Cost(g, h) != 2.5 {
		t.Fatalf("weighted cost = %f, want 2.5", Cost(g, h))
	}
}

func TestTwoSpanOK(t *testing.T) {
	g := gen.Clique(3)
	e01, _ := g.EdgeIndex(0, 1)
	e02, _ := g.EdgeIndex(0, 2)
	e12, _ := g.EdgeIndex(1, 2)
	h := graph.NewEdgeSet(g.M())
	h.Add(e01)
	h.Add(e02)
	if !TwoSpanOK(g, h, e12) {
		t.Fatal("{1,2} is 2-spanned by the 0-star")
	}
	if TwoSpanOK(g, h, e01) {
		t.Fatal("a star never 2-spans its own edge")
	}
	// Membership of the edge itself must not count as 2-spanning.
	h2 := graph.NewEdgeSet(g.M())
	h2.Add(e12)
	if TwoSpanOK(g, h2, e12) {
		t.Fatal("edge in H is covered but not 2-spanned")
	}
}

func TestOPTLowerBounds(t *testing.T) {
	g := gen.ConnectedGNP(20, 0.3, 4)
	if got := SpannerOPTLowerBound(g); got != 19 {
		t.Fatalf("lower bound = %d, want n-1 = 19", got)
	}
	clients := graph.Full(g.M())
	vc := ClientVertexCount(g, clients)
	if vc != 20 {
		t.Fatalf("V(C) = %d, want 20 on connected graph with all clients", vc)
	}
	if lb := ClientServerOPTLowerBound(g, clients); lb != 5 {
		t.Fatalf("client-server lower bound = %f, want |V(C)|/4 = 5", lb)
	}
}

// Property: the full edge set is always a k-spanner for every k >= 1, and
// any subset that is a k-spanner is also a (k+1)-spanner.
func TestSpannerMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ConnectedGNP(3+rng.Intn(15), 0.3, seed)
		full := graph.Full(g.M())
		if !IsKSpanner(g, full, 1) {
			return false
		}
		// Random subset + patched-up violations at k=3 must also be valid at k=4.
		h := graph.NewEdgeSet(g.M())
		for i := 0; i < g.M(); i++ {
			if rng.Intn(2) == 0 {
				h.Add(i)
			}
		}
		for _, v := range Violations(g, h, 3, 0) {
			h.Add(v)
		}
		return IsKSpanner(g, h, 3) && IsKSpanner(g, h, 4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStretchStats(t *testing.T) {
	// Star spanner of K5: kept edges have stretch 1, the rest 2.
	g := gen.Clique(5)
	h := graph.NewEdgeSet(g.M())
	for v := 1; v < 5; v++ {
		i, _ := g.EdgeIndex(0, v)
		h.Add(i)
	}
	st := Stretch(g, h, -1)
	if st.Max != 2 {
		t.Fatalf("max stretch = %d, want 2", st.Max)
	}
	if st.Histogram[1] != 4 || st.Histogram[2] != 6 {
		t.Fatalf("histogram = %v, want 4 at 1 and 6 at 2", st.Histogram)
	}
	wantMean := (4.0*1 + 6.0*2) / 10.0
	if st.Mean != wantMean {
		t.Fatalf("mean = %f, want %f", st.Mean, wantMean)
	}
	// Disconnected spanner: Max = -1.
	if got := Stretch(g, graph.NewEdgeSet(g.M()), -1); got.Max != -1 {
		t.Fatalf("empty spanner must report disconnected, got %+v", got)
	}
}

func TestDirectedStretchStats(t *testing.T) {
	d := graph.NewDigraph(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	shortcut := d.AddEdge(0, 2)
	h := graph.Full(d.M())
	h.Remove(shortcut)
	st := DirectedStretch(d, h, -1)
	if st.Max != 2 || st.Histogram[2] != 1 || st.Histogram[1] != 2 {
		t.Fatalf("directed stretch = %+v", st)
	}
}
