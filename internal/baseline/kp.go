// Package baseline implements the comparison algorithms the paper measures
// itself against in prose: the sequential greedy 2-spanner of Kortsarz and
// Peleg [46] (the O(log(m/n)) benchmark the distributed algorithm matches),
// the Baswana-Sen (2k-1)-spanner construction [7, 28] (whose O(n^{1+1/k})
// size yields the O(n^{1/k})-approximation for undirected k-spanners in
// CONGEST), the classic greedy dominating set, the trivial
// whole-graph n-approximation, and an expectation-only randomized star
// selector in the spirit of Jia et al. [43] for contrasting guaranteed
// versus in-expectation ratios.
package baseline

import (
	"sort"

	"distspanner/internal/flow"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

// KortsarzPeleg runs the sequential greedy 2-spanner algorithm [46]:
// repeatedly add the globally densest star with respect to the uncovered
// edges while its density exceeds 1, then take the remaining uncovered
// edges directly. Approximation ratio O(log(m/n)); weighted graphs get the
// weighted-density variant (density per unit star weight, zero-weight edges
// taken up front).
func KortsarzPeleg(g *graph.Graph) *graph.EdgeSet {
	m := g.M()
	H := graph.NewEdgeSet(m)
	covered := graph.NewEdgeSet(m)
	// Weighted pre-pass: zero-weight edges are free.
	if g.Weighted() {
		for i := 0; i < m; i++ {
			if g.Weight(i) == 0 {
				H.Add(i)
			}
		}
	}
	refreshCoverage(g, H, covered)

	density := make([]float64, g.N())
	stars := make([][]int, g.N())
	spans := make([]float64, g.N())
	dirty := make([]bool, g.N())
	for v := range dirty {
		dirty[v] = true
	}
	for {
		best, bestD := -1, 0.0
		for v := 0; v < g.N(); v++ {
			if dirty[v] {
				stars[v], spans[v], density[v] = densestStarOf(g, covered, v)
				dirty[v] = false
			}
			if density[v] > bestD {
				best, bestD = v, density[v]
			}
		}
		if best < 0 || bestD <= 1 {
			break
		}
		for _, u := range stars[best] {
			idx, _ := g.EdgeIndex(best, u)
			H.Add(idx)
		}
		newlyCovered := refreshCoverage(g, H, covered)
		markDirty(g, dirty, newlyCovered)
	}
	// Remaining uncovered edges are taken directly.
	for i := 0; i < m; i++ {
		if !covered.Has(i) {
			H.Add(i)
		}
	}
	return H
}

// densestStarOf computes the densest v-star against uncovered edges between
// v's neighbors: edges 2-spanned per unit star cost. Zero-weight star edges
// are free and always included.
func densestStarOf(g *graph.Graph, covered *graph.EdgeSet, v int) (star []int, spanned, density float64) {
	var items []int
	var free []int
	costOf := make(map[int]float64)
	for _, arc := range g.Adj(v) {
		w := g.Weight(arc.Edge)
		if w == 0 {
			free = append(free, arc.To)
		} else {
			items = append(items, arc.To)
			costOf[arc.To] = w
		}
	}
	sort.Ints(items)
	if len(items) == 0 {
		return free, 0, 0
	}
	idx := make(map[int]int, len(items))
	in := &flow.DensestInstance{
		NumItems: len(items),
		Cost:     make([]float64, len(items)),
		Bonus:    make([]float64, len(items)),
	}
	for i, u := range items {
		idx[u] = i
		in.Cost[i] = costOf[u]
	}
	freeSet := make(map[int]bool, len(free))
	for _, u := range free {
		freeSet[u] = true
	}
	// Uncovered edges between neighbors: pairs between selectable items,
	// bonuses for selectable-free pairs.
	for _, arc := range g.Adj(v) {
		u := arc.To
		for _, arc2 := range g.Adj(u) {
			w := arc2.To
			if w <= u || w == v || covered.Has(arc2.Edge) {
				continue
			}
			ui, uOK := idx[u]
			wi, wOK := idx[w]
			if !g.HasEdge(v, w) {
				continue
			}
			switch {
			case uOK && wOK:
				in.Pairs = append(in.Pairs, [2]int{ui, wi})
			case uOK && freeSet[w]:
				in.Bonus[ui]++
			case wOK && freeSet[u]:
				in.Bonus[wi]++
			}
		}
	}
	sel, d, err := flow.Densest(in)
	if err != nil {
		panic("baseline: densest star failed: " + err.Error())
	}
	star = append(star, free...)
	for i, s := range sel {
		if s {
			star = append(star, items[i])
		}
	}
	// Spanned count: pairs inside the selection plus bonuses.
	prof, _ := in.Value(sel)
	return star, prof, d
}

// refreshCoverage recomputes covered status for all uncovered edges and
// returns the newly covered edge indices.
func refreshCoverage(g *graph.Graph, H, covered *graph.EdgeSet) []int {
	var newly []int
	for i := 0; i < g.M(); i++ {
		if covered.Has(i) {
			continue
		}
		if span.Covered(g, H, i, 2) {
			covered.Add(i)
			newly = append(newly, i)
		}
	}
	return newly
}

// markDirty invalidates cached densities of every vertex whose
// 2-neighborhood saw a coverage change.
func markDirty(g *graph.Graph, dirty []bool, newlyCovered []int) {
	for _, i := range newlyCovered {
		e := g.Edge(i)
		for _, v := range []int{e.U, e.V} {
			dirty[v] = true
			for _, arc := range g.Adj(v) {
				dirty[arc.To] = true
			}
		}
	}
}

// TrivialSpanner returns the whole edge set: the communication-free
// n-approximation the paper contrasts its lower bounds with (any k-spanner
// of a connected graph has at least n-1 edges, the graph has at most
// n(n-1)/2 < n · (n-1)).
func TrivialSpanner(g *graph.Graph) *graph.EdgeSet {
	return graph.Full(g.M())
}

// GreedyMDS is the classic sequential greedy dominating set: repeatedly
// take the vertex dominating the most not-yet-dominated vertices. Ratio
// ln Δ + 1.
func GreedyMDS(g *graph.Graph) []int {
	n := g.N()
	dominated := make([]bool, n)
	remaining := n
	var ds []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for v := 0; v < n; v++ {
			gain := 0
			if !dominated[v] {
				gain++
			}
			for _, arc := range g.Adj(v) {
				if !dominated[arc.To] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			break
		}
		ds = append(ds, best)
		if !dominated[best] {
			dominated[best] = true
			remaining--
		}
		for _, arc := range g.Adj(best) {
			if !dominated[arc.To] {
				dominated[arc.To] = true
				remaining--
			}
		}
	}
	sort.Ints(ds)
	return ds
}
