package baseline

import (
	"math"
	"testing"

	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func TestKortsarzPelegValid(t *testing.T) {
	families := map[string]*graph.Graph{
		"clique":    gen.Clique(14),
		"bipartite": gen.CompleteBipartite(5, 6),
		"gnp":       gen.ConnectedGNP(30, 0.3, 1),
		"cycle":     gen.Cycle(12),
		"planted":   gen.PlantedStars(3, 7, 0.4, 2),
	}
	for name, g := range families {
		h := KortsarzPeleg(g)
		if !span.IsKSpanner(g, h, 2) {
			t.Errorf("%s: KP output is not a 2-spanner", name)
		}
	}
}

func TestKortsarzPelegCliqueNearOptimal(t *testing.T) {
	// On K_n the densest star is a full star (density ~ (n-1)/2 ... > 1):
	// greedy should find a near-star solution, far below m.
	g := gen.Clique(16)
	h := KortsarzPeleg(g)
	if h.Len() > 3*(g.N()-1) {
		t.Fatalf("KP on K16 used %d edges; want close to n-1 = 15", h.Len())
	}
}

func TestKortsarzPelegRatioSmall(t *testing.T) {
	g := gen.ConnectedGNP(12, 0.4, 3)
	h := KortsarzPeleg(g)
	_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(h.Len()) / opt
	bound := 8 * (math.Log2(float64(g.M())/float64(g.N())+2) + 2)
	if ratio > bound {
		t.Fatalf("KP ratio %.2f exceeds O(log m/n) bound %.2f", ratio, bound)
	}
}

func TestKortsarzPelegWeighted(t *testing.T) {
	// Expensive direct edges vs a cheap star.
	g := gen.Clique(8)
	for i := 0; i < g.M(); i++ {
		if e := g.Edge(i); e.U == 0 {
			g.SetWeight(i, 1)
		} else {
			g.SetWeight(i, 100)
		}
	}
	h := KortsarzPeleg(g)
	if !span.IsKSpanner(g, h, 2) {
		t.Fatal("weighted KP invalid")
	}
	if span.Cost(g, h) >= 100 {
		t.Fatalf("weighted KP cost %f; cheap star should win", span.Cost(g, h))
	}
	// Zero-weight pre-pass.
	g2 := gen.Clique(5)
	for i := 0; i < g2.M(); i++ {
		if e := g2.Edge(i); e.U == 0 {
			g2.SetWeight(i, 0)
		} else {
			g2.SetWeight(i, 7)
		}
	}
	h2 := KortsarzPeleg(g2)
	if span.Cost(g2, h2) != 0 {
		t.Fatalf("zero-weight star should cover all; cost %f", span.Cost(g2, h2))
	}
}

func TestTrivialSpanner(t *testing.T) {
	g := gen.ConnectedGNP(15, 0.3, 2)
	h := TrivialSpanner(g)
	if h.Len() != g.M() {
		t.Fatal("trivial spanner must be the whole graph")
	}
	if !span.IsKSpanner(g, h, 1) {
		t.Fatal("whole graph must 1-span itself")
	}
}

func TestGreedyMDS(t *testing.T) {
	g := gen.Star(20)
	ds := GreedyMDS(g)
	if len(ds) != 1 || ds[0] != 0 {
		t.Fatalf("greedy MDS on star = %v, want [0]", ds)
	}
	// Must dominate on random graphs and stay within ln Δ + 1 of exact.
	g2 := gen.ConnectedGNP(20, 0.25, 5)
	ds2 := GreedyMDS(g2)
	dominated := make([]bool, g2.N())
	for _, v := range ds2 {
		dominated[v] = true
		for _, arc := range g2.Adj(v) {
			dominated[arc.To] = true
		}
	}
	for v, d := range dominated {
		if !d {
			t.Fatalf("vertex %d not dominated", v)
		}
	}
	opt := len(exact.MinDominatingSet(g2))
	bound := math.Log(float64(g2.MaxDegree())+1) + 1
	if float64(len(ds2)) > bound*float64(opt)+1 {
		t.Fatalf("greedy MDS %d vs opt %d exceeds ln Δ+1", len(ds2), opt)
	}
}

func TestBaswanaSenStretchAndSize(t *testing.T) {
	for _, k := range []int{2, 3} {
		for seed := int64(0); seed < 5; seed++ {
			g := gen.ConnectedGNP(60, 0.15, seed)
			res := BaswanaSen(g, k, seed)
			if res.Stretch != 2*k-1 {
				t.Fatalf("stretch = %d, want %d", res.Stretch, 2*k-1)
			}
			if res.Rounds != k {
				t.Fatalf("rounds = %d, want k = %d", res.Rounds, k)
			}
			if !span.IsKSpanner(g, res.Spanner, res.Stretch) {
				t.Fatalf("k=%d seed=%d: not a (2k-1)-spanner", k, seed)
			}
		}
	}
}

func TestBaswanaSenSparsifies(t *testing.T) {
	// On a dense graph the expected size is O(k n^{1+1/k}) << m. Average
	// over seeds to keep the test stable.
	g := gen.ConnectedGNP(80, 0.5, 1)
	total := 0
	runs := 5
	for seed := int64(0); seed < int64(runs); seed++ {
		res := BaswanaSen(g, 2, seed)
		total += res.Spanner.Len()
	}
	avg := float64(total) / float64(runs)
	n := float64(g.N())
	bound := 6 * 2 * n * math.Sqrt(n) // c·k·n^{1+1/2}
	if avg > bound {
		t.Fatalf("BS average size %.0f exceeds O(k n^{3/2}) = %.0f", avg, bound)
	}
	if avg >= float64(g.M()) {
		t.Fatalf("BS did not sparsify: %.0f of %d", avg, g.M())
	}
}

func TestBaswanaSenK1IsWholeGraph(t *testing.T) {
	// k=1: stretch 1, every edge must be kept (one edge per adjacent
	// singleton cluster = all edges).
	g := gen.ConnectedGNP(20, 0.3, 2)
	res := BaswanaSen(g, 1, 1)
	if res.Spanner.Len() != g.M() {
		t.Fatalf("k=1: %d of %d edges", res.Spanner.Len(), g.M())
	}
}

func TestRandomStarSpannerValid(t *testing.T) {
	g := gen.ConnectedGNP(20, 0.3, 4)
	for seed := int64(0); seed < 3; seed++ {
		h := RandomStarSpanner(g, seed)
		if !span.IsKSpanner(g, h, 2) {
			t.Fatalf("seed %d: random-star output invalid", seed)
		}
	}
}

func TestDensestStarOfIgnoresCovered(t *testing.T) {
	// Covered edges must not count toward density.
	g := gen.Clique(5)
	covered := graph.NewEdgeSet(g.M())
	_, spanned0, d0 := densestStarOf(g, covered, 0)
	if d0 <= 0 || spanned0 <= 0 {
		t.Fatal("densest star on clique must 2-span edges")
	}
	// Cover everything: density drops to 0.
	for i := 0; i < g.M(); i++ {
		covered.Add(i)
	}
	_, spanned1, d1 := densestStarOf(g, covered, 0)
	if d1 != 0 || spanned1 != 0 {
		t.Fatalf("covered graph: density %f, spanned %f; want 0", d1, spanned1)
	}
}

func TestExpectationMDSDominates(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := gen.ConnectedGNP(30, 0.15, seed)
		ds := ExpectationMDS(g, seed)
		dominated := make([]bool, g.N())
		for _, v := range ds {
			dominated[v] = true
			for _, arc := range g.Adj(v) {
				dominated[arc.To] = true
			}
		}
		for v, d := range dominated {
			if !d {
				t.Fatalf("seed %d: vertex %d undominated", seed, v)
			}
		}
	}
}

func TestExpectationMDSReasonableOnStar(t *testing.T) {
	g := gen.Star(25)
	// Average over seeds stays small; single runs may overshoot (that is
	// the point of the comparator).
	total := 0
	for seed := int64(0); seed < 10; seed++ {
		total += len(ExpectationMDS(g, seed))
	}
	if avg := float64(total) / 10; avg > 6 {
		t.Fatalf("expectation MDS average %f too large on a star", avg)
	}
}

func TestFaultTolerant2SpannerValid(t *testing.T) {
	for _, f := range []int{0, 1, 2} {
		for seed := int64(0); seed < 4; seed++ {
			g := gen.ConnectedGNP(12, 0.5, seed)
			h := FaultTolerant2Spanner(g, f)
			if !IsFaultTolerant2Spanner(g, h, f) {
				t.Fatalf("f=%d seed=%d: output not fault tolerant", f, seed)
			}
		}
	}
}

func TestFaultTolerant2SpannerF0IsSpanner(t *testing.T) {
	// f = 0 degenerates to a plain 2-spanner.
	g := gen.Clique(10)
	h := FaultTolerant2Spanner(g, 0)
	if !span.IsKSpanner(g, h, 2) {
		t.Fatal("f=0 output is not a 2-spanner")
	}
	if h.Len() >= g.M() {
		t.Fatal("f=0 should sparsify a clique")
	}
}

func TestFaultTolerantSizeGrowsWithF(t *testing.T) {
	g := gen.Clique(12)
	prev := -1
	for _, f := range []int{0, 1, 3} {
		h := FaultTolerant2Spanner(g, f)
		if h.Len() < prev {
			t.Fatalf("size decreased as f grew: %d after %d", h.Len(), prev)
		}
		prev = h.Len()
	}
	// Large f forces keeping everything.
	hAll := FaultTolerant2Spanner(g, g.N())
	if hAll.Len() != g.M() {
		t.Fatalf("f=n must keep all edges, kept %d of %d", hAll.Len(), g.M())
	}
}

func TestIsFaultTolerantDetectsFailure(t *testing.T) {
	// A plain star on K4 is a 2-spanner but not 1-fault-tolerant: killing
	// the hub strands the leaf edges.
	g := gen.Clique(4)
	star := graph.NewEdgeSet(g.M())
	for v := 1; v < 4; v++ {
		i, _ := g.EdgeIndex(0, v)
		star.Add(i)
	}
	if !IsFaultTolerant2Spanner(g, star, 0) {
		t.Fatal("star is a valid 2-spanner at f=0")
	}
	if IsFaultTolerant2Spanner(g, star, 1) {
		t.Fatal("killing the hub must break the star spanner")
	}
}
