package baseline

import (
	"math"
	"math/rand"

	"distspanner/internal/graph"
)

// BaswanaSenResult carries the spanner plus the construction's
// CONGEST-relevant accounting.
type BaswanaSenResult struct {
	// Spanner is a (2k-1)-spanner of the input w.h.p. over the sampling.
	Spanner *graph.EdgeSet
	// Rounds is the distributed round count of the cited algorithm: k
	// phases, each a constant number of CONGEST rounds [28].
	Rounds int
	// Stretch is 2k-1.
	Stretch int
}

// BaswanaSen builds a (2k-1)-spanner with expected size O(k·n^{1+1/k})
// following Baswana and Sen [7] (unweighted clustering form). Since any
// spanner of a connected graph has at least n-1 edges, the output is an
// O(n^{1/k})-approximation of the minimum (2k-1)-spanner — the undirected
// CONGEST baseline against which the paper's directed lower bound draws its
// separation.
//
// This is a faithful centralized execution of the k-phase distributed
// algorithm; each phase is realizable in O(1) CONGEST rounds, reported in
// Rounds rather than re-simulated.
func BaswanaSen(g *graph.Graph, k int, seed int64) *BaswanaSenResult {
	if k < 1 {
		panic("baseline: Baswana-Sen needs k >= 1")
	}
	n := g.N()
	rng := rand.New(rand.NewSource(seed))
	H := graph.NewEdgeSet(g.M())
	p := math.Pow(float64(n), -1.0/float64(k))

	// cluster[v] is the id of v's cluster center, -1 once v drops out.
	cluster := make([]int, n)
	for v := range cluster {
		cluster[v] = v
	}
	active := graph.Full(g.M())

	removeEdgesToCluster := func(v, c int) {
		for _, arc := range g.Adj(v) {
			if cluster[arc.To] == c && active.Has(arc.Edge) {
				active.Remove(arc.Edge)
			}
		}
	}

	for phase := 1; phase < k; phase++ {
		// Sample surviving cluster centers.
		sampled := make(map[int]bool)
		centers := make(map[int]bool)
		for v := 0; v < n; v++ {
			if cluster[v] >= 0 {
				centers[cluster[v]] = true
			}
		}
		for c := range centers {
			if rng.Float64() < p {
				sampled[c] = true
			}
		}
		newCluster := make([]int, n)
		copy(newCluster, cluster)
		for v := 0; v < n; v++ {
			if cluster[v] < 0 {
				continue
			}
			if sampled[cluster[v]] {
				continue // v's cluster survives; v stays put
			}
			// Find a neighbor in a sampled cluster over active edges.
			join := -1
			for _, arc := range g.Adj(v) {
				if !active.Has(arc.Edge) {
					continue
				}
				cu := cluster[arc.To]
				if cu >= 0 && sampled[cu] {
					join = arc.To
					break
				}
			}
			if join >= 0 {
				idx, _ := g.EdgeIndex(v, join)
				H.Add(idx)
				newCluster[v] = cluster[join]
				removeEdgesToCluster(v, cluster[join])
				continue
			}
			// No sampled neighbor: connect to every adjacent cluster once
			// and drop out.
			addOnePerCluster(g, H, active, cluster, v)
			newCluster[v] = -1
		}
		cluster = newCluster
	}
	// Final phase: every remaining vertex connects once to each adjacent
	// cluster.
	for v := 0; v < n; v++ {
		addOnePerCluster(g, H, active, cluster, v)
	}
	return &BaswanaSenResult{Spanner: H, Rounds: k, Stretch: 2*k - 1}
}

// addOnePerCluster adds to H one active edge from v to each distinct
// adjacent cluster and deactivates all of v's edges to those clusters.
func addOnePerCluster(g *graph.Graph, H, active *graph.EdgeSet, cluster []int, v int) {
	seen := make(map[int]bool)
	for _, arc := range g.Adj(v) {
		if !active.Has(arc.Edge) {
			continue
		}
		c := cluster[arc.To]
		if c < 0 || seen[c] {
			continue
		}
		seen[c] = true
		H.Add(arc.Edge)
	}
	for _, arc := range g.Adj(v) {
		if active.Has(arc.Edge) && cluster[arc.To] >= 0 && seen[cluster[arc.To]] {
			active.Remove(arc.Edge)
		}
	}
}

// RandomStarSpanner is an expectation-only comparator in the spirit of the
// symmetry breaking of Jia et al. [43]: every vertex whose rounded density
// is locally maximal flips a fair coin and, on heads, adds its densest star.
// It produces valid 2-spanners with a ratio that holds only in expectation —
// individual runs can be far off, which experiment E6 contrasts with the
// paper's always-guaranteed ratio.
func RandomStarSpanner(g *graph.Graph, seed int64) *graph.EdgeSet {
	rng := rand.New(rand.NewSource(seed))
	m := g.M()
	H := graph.NewEdgeSet(m)
	covered := graph.NewEdgeSet(m)
	refreshCoverage(g, H, covered)
	for round := 0; round < 40*g.N(); round++ {
		// Recompute densities (coarse; this is a comparator, not the
		// contribution).
		type starInfo struct {
			star    []int
			density float64
		}
		infos := make([]starInfo, g.N())
		maxD := 0.0
		for v := 0; v < g.N(); v++ {
			star, _, d := densestStarOf(g, covered, v)
			infos[v] = starInfo{star: star, density: d}
			if d > maxD {
				maxD = d
			}
		}
		if maxD <= 1 {
			break
		}
		progressed := false
		for v := 0; v < g.N(); v++ {
			if infos[v].density <= 1 {
				continue
			}
			// Locally maximal by rounded density within 2 hops.
			localMax := true
			for _, u := range g.Ball(v, 2) {
				if roundPow2(infos[u].density) > roundPow2(infos[v].density) {
					localMax = false
					break
				}
			}
			if !localMax || rng.Intn(2) == 0 {
				continue
			}
			for _, u := range infos[v].star {
				if idx, ok := g.EdgeIndex(v, u); ok {
					H.Add(idx)
				}
			}
			progressed = true
		}
		if progressed {
			refreshCoverage(g, H, covered)
		}
	}
	for i := 0; i < m; i++ {
		if !covered.Has(i) {
			H.Add(i)
		}
	}
	return H
}

func roundPow2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p := 1.0
	for p <= x {
		p *= 2
	}
	for p/2 > x {
		p /= 2
	}
	return p
}
