package baseline

import (
	"testing"

	"distspanner/internal/gen"
)

func BenchmarkKortsarzPeleg(b *testing.B) {
	g := gen.ConnectedGNP(40, 0.25, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KortsarzPeleg(g)
	}
}

func BenchmarkBaswanaSen(b *testing.B) {
	g := gen.ConnectedGNP(300, 0.1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BaswanaSen(g, 3, int64(i))
	}
}

func BenchmarkGreedyKSpanner(b *testing.B) {
	g := gen.ConnectedGNP(150, 0.15, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GreedyKSpanner(g, 3)
	}
}
