package baseline

import (
	"math/rand"
	"sort"

	"distspanner/internal/graph"
)

// ExpectationMDS is the in-expectation comparator for the paper's MDS
// algorithm, with the symmetry breaking of Jia et al. [43] rather than the
// paper's voting: locally-maximal candidates join the dominating set with
// an independent coin flip instead of earning votes from the vertices they
// cover. Its O(log Δ) ratio holds in expectation only — individual runs
// can overshoot, which is exactly the behavior the paper's guaranteed
// version eliminates (experiment E10).
func ExpectationMDS(g *graph.Graph, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	covered := make([]bool, n)
	inDS := make([]bool, n)
	remaining := n

	uncoveredCount := func(v int) int {
		c := 0
		if !covered[v] {
			c++
		}
		for _, arc := range g.Adj(v) {
			if !covered[arc.To] {
				c++
			}
		}
		return c
	}
	for rounds := 0; remaining > 0 && rounds < 50*n; rounds++ {
		counts := make([]int, n)
		for v := 0; v < n; v++ {
			counts[v] = uncoveredCount(v)
		}
		progressed := false
		for v := 0; v < n; v++ {
			if counts[v] == 0 || inDS[v] {
				continue
			}
			localMax := true
			for _, u := range g.Ball(v, 2) {
				if roundPow2(float64(counts[u])) > roundPow2(float64(counts[v])) {
					localMax = false
					break
				}
			}
			if !localMax || rng.Intn(2) == 0 {
				continue
			}
			inDS[v] = true
			progressed = true
			if !covered[v] {
				covered[v] = true
				remaining--
			}
			for _, arc := range g.Adj(v) {
				if !covered[arc.To] {
					covered[arc.To] = true
					remaining--
				}
			}
		}
		_ = progressed
	}
	// Mop up any stragglers (possible only under absurd coin sequences).
	for v := 0; v < n; v++ {
		if !covered[v] {
			inDS[v] = true
			covered[v] = true
			for _, arc := range g.Adj(v) {
				covered[arc.To] = true
			}
		}
	}
	var ds []int
	for v, in := range inDS {
		if in {
			ds = append(ds, v)
		}
	}
	sort.Ints(ds)
	return ds
}
