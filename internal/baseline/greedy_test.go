package baseline

import (
	"math"
	"testing"
	"testing/quick"

	"distspanner/internal/gen"
	"distspanner/internal/span"
)

func TestGreedyKSpannerValid(t *testing.T) {
	g := gen.ConnectedGNP(40, 0.3, 1)
	for _, k := range []int{1, 2, 3, 5} {
		h := GreedyKSpanner(g, k)
		if !span.IsKSpanner(g, h, k) {
			t.Fatalf("k=%d: invalid greedy spanner", k)
		}
	}
}

func TestGreedyKSpannerStretchOne(t *testing.T) {
	// k=1 keeps every edge.
	g := gen.ConnectedGNP(20, 0.3, 2)
	if h := GreedyKSpanner(g, 1); h.Len() != g.M() {
		t.Fatalf("k=1 kept %d of %d edges", h.Len(), g.M())
	}
}

func TestGreedyKSpannerGirth(t *testing.T) {
	// The structural guarantee: the greedy k-spanner has girth > k+1.
	g := gen.ConnectedGNP(30, 0.4, 3)
	for _, k := range []int{2, 3} {
		h := GreedyKSpanner(g, k)
		if !GirthAbove(g, h, k+1) {
			t.Fatalf("k=%d: greedy spanner contains a cycle of length <= k+1", k)
		}
	}
}

func TestGreedyKSpannerSizeBound(t *testing.T) {
	// For k = 3 (t = 2): size O(n^{3/2}).
	g := gen.ConnectedGNP(100, 0.5, 4)
	h := GreedyKSpanner(g, 3)
	n := float64(g.N())
	if float64(h.Len()) > 3*n*math.Sqrt(n) {
		t.Fatalf("3-spanner size %d exceeds O(n^{3/2})", h.Len())
	}
}

func TestGreedyKSpannerWeightedOrdersByWeight(t *testing.T) {
	// On a weighted triangle, the two cheap edges enter first and the
	// expensive edge is skipped when within stretch.
	g := gen.Clique(3)
	e01, _ := g.EdgeIndex(0, 1)
	e12, _ := g.EdgeIndex(1, 2)
	e02, _ := g.EdgeIndex(0, 2)
	g.SetWeight(e01, 1)
	g.SetWeight(e12, 1)
	g.SetWeight(e02, 100)
	h := GreedyKSpanner(g, 2)
	if h.Has(e02) {
		t.Fatal("expensive edge kept despite cheap 2-path")
	}
	if !h.Has(e01) || !h.Has(e12) {
		t.Fatal("cheap edges must be kept")
	}
}

// Property: greedy output is always a valid k-spanner and a subset of the
// edges, for random graphs and k in {2,3,4}.
func TestGreedyKSpannerProperty(t *testing.T) {
	f := func(seed int64) bool {
		k := 2 + int((seed%3+3)%3)
		g := gen.ConnectedGNP(4+int((seed%17+17)%17), 0.35, seed)
		h := GreedyKSpanner(g, k)
		return span.IsKSpanner(g, h, k) && h.Len() <= g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
