package baseline

import (
	"distspanner/internal/graph"
)

// FaultTolerant2Spanner builds an f-vertex-fault-tolerant 2-spanner: a
// subgraph H such that for every set F of at most f vertices, H - F is a
// 2-spanner of G - F. The paper positions Dinitz-Krauthgamer [21] as
// solving this more general problem (in expectation); this greedy gives
// the deterministic baseline.
//
// The construction processes edges in index order and adds edge {u,v}
// unless H already contains f+1 vertex-disjoint 2-paths between u and v.
// Correctness: additions are monotone, so the f+1 disjoint 2-paths seen at
// skip time survive to the final H; any fault set of size ≤ f kills at
// most f of them, and the survivor 2-spans the skipped edge.
func FaultTolerant2Spanner(g *graph.Graph, f int) *graph.EdgeSet {
	if f < 0 {
		panic("baseline: negative fault budget")
	}
	h := graph.NewEdgeSet(g.M())
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if disjointTwoPaths(g, h, e.U, e.V) >= f+1 {
			continue
		}
		h.Add(i)
	}
	return h
}

// disjointTwoPaths counts vertex-disjoint 2-paths between u and v inside
// h. Distinct 2-paths u-w-v are automatically vertex-disjoint (they share
// only the endpoints), so this is the number of common neighbors w with
// both {u,w} and {w,v} in h.
func disjointTwoPaths(g *graph.Graph, h *graph.EdgeSet, u, v int) int {
	count := 0
	for _, arc := range g.Adj(u) {
		if !h.Has(arc.Edge) {
			continue
		}
		w := arc.To
		if w == v {
			continue
		}
		if idx, ok := g.EdgeIndex(w, v); ok && h.Has(idx) {
			count++
		}
	}
	return count
}

// IsFaultTolerant2Spanner exhaustively verifies vertex fault tolerance:
// for every fault set F of size at most f, H - F must 2-span G - F.
// Exponential in f; intended for small instances in tests and experiments.
func IsFaultTolerant2Spanner(g *graph.Graph, h *graph.EdgeSet, f int) bool {
	n := g.N()
	faults := make([]int, 0, f)
	var rec func(start int) bool
	check := func() bool {
		dead := make([]bool, n)
		for _, v := range faults {
			dead[v] = true
		}
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if dead[e.U] || dead[e.V] {
				continue // edge not present in G - F
			}
			if h.Has(i) {
				continue
			}
			// Need a surviving 2-path in H - F.
			ok := false
			for _, arc := range g.Adj(e.U) {
				w := arc.To
				if dead[w] || w == e.V || !h.Has(arc.Edge) {
					continue
				}
				if idx, has := g.EdgeIndex(w, e.V); has && h.Has(idx) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	rec = func(start int) bool {
		if !check() {
			return false
		}
		if len(faults) == f {
			return true
		}
		for v := start; v < n; v++ {
			faults = append(faults, v)
			if !rec(v + 1) {
				return false
			}
			faults = faults[:len(faults)-1]
		}
		return true
	}
	return rec(0)
}
