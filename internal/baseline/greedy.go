package baseline

import (
	"sort"

	"distspanner/internal/graph"
)

// GreedyKSpanner is the classic sequential greedy spanner (Althöfer et
// al.): scan the edges (by weight for weighted graphs, by index
// otherwise) and keep an edge iff the spanner built so far does not
// already connect its endpoints within stretch k. The result is a
// k-spanner whose girth exceeds k+1, which for odd k = 2t-1 bounds its
// size by O(n^{1+1/t}) — the worst-case-sparsity counterpoint to the
// paper's per-instance approximation objective.
func GreedyKSpanner(g *graph.Graph, k int) *graph.EdgeSet {
	if k < 1 {
		panic("baseline: stretch must be >= 1")
	}
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	if g.Weighted() {
		sort.SliceStable(order, func(a, b int) bool {
			return g.Weight(order[a]) < g.Weight(order[b])
		})
	}
	h := graph.NewEdgeSet(g.M())
	for _, i := range order {
		e := g.Edge(i)
		if g.DistWithin(e.U, e.V, h, k) < 0 {
			h.Add(i)
		}
	}
	return h
}

// GirthAbove reports whether every cycle in the subgraph H has length
// greater than limit, by checking, for each edge of H, that removing it
// leaves the endpoints at distance >= limit. Used to validate the greedy
// spanner's structural guarantee.
func GirthAbove(g *graph.Graph, h *graph.EdgeSet, limit int) bool {
	ok := true
	h.ForEach(func(i int) {
		if !ok {
			return
		}
		e := g.Edge(i)
		rest := h.Clone()
		rest.Remove(i)
		if d := g.DistWithin(e.U, e.V, rest, limit-1); d >= 0 && d+1 <= limit {
			ok = false
		}
	})
	return ok
}
