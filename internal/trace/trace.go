// Package trace records, hashes, and exports the execution narration
// the dist engine emits through dist.Config.Tracer.
//
// The narration has two strictly separated channels (see dist/trace.go):
// the logical transcript — per-vertex send/deliver/wake/park/retire
// events plus per-round activity snapshots, a deterministic function of
// (Graph, Seed, protocol) — and the wall-clock timing channel, which is
// not deterministic and never enters the transcript. This package keeps
// the separation: Digest hashes only the logical channel, exporters
// carry both but label them apart, and TimingRecorder drops the logical
// channel entirely when only telemetry is wanted.
//
// The canonical artifacts:
//
//   - Recorder: the standard Tracer. Logical events land in per-vertex
//     append-only buffers — within one vertex the order is the engine's
//     deterministic emission order, and cross-vertex interleaving (the
//     one thing that varies between execution modes) is never stored.
//   - Digest: an FNV-64a hash per vertex plus a whole-run hash. Equal
//     digests mean equal logical transcripts; the cross-mode tests
//     assert equality across the barrier/event/step engines, and a
//     future network transport must reproduce the same digests.
//   - WriteJSONL / ReadJSONL / Check: the line-oriented interchange
//     format, one JSON object per line, self-validating (the trailing
//     digest line must match a recomputation over the lines above it).
//   - WriteChrome: the Chrome trace_event rendering of the timing
//     channel with activity counters, for chrome://tracing / Perfetto.
package trace

import (
	"fmt"

	"distspanner/internal/dist"
)

// Recorder is the standard dist.Tracer: it records the full narration
// of one run. The engine serializes all Tracer calls, so Recorder has
// no internal locking — do not share one Recorder between concurrent
// runs, and use a fresh Recorder per run (buffers only ever grow).
type Recorder struct {
	events  [][]dist.TraceEvent
	phases  []dist.RoundActivity
	timings []dist.RoundTiming
}

// NewRecorder returns a Recorder for an n-vertex run.
func NewRecorder(n int) *Recorder {
	return &Recorder{events: make([][]dist.TraceEvent, n)}
}

// Event appends ev to its vertex's transcript buffer.
func (r *Recorder) Event(ev dist.TraceEvent) {
	r.events[ev.V] = append(r.events[ev.V], ev)
}

// Phase appends the completed round's activity snapshot.
func (r *Recorder) Phase(act dist.RoundActivity) {
	r.phases = append(r.phases, act)
}

// RoundTime appends the completed round's wall-clock measurement.
func (r *Recorder) RoundTime(t dist.RoundTiming) {
	r.timings = append(r.timings, t)
}

// N returns the vertex count the Recorder was built for.
func (r *Recorder) N() int { return len(r.events) }

// VertexEvents returns vertex v's transcript buffer. The slice is the
// live buffer; callers must not modify it.
func (r *Recorder) VertexEvents(v int) []dist.TraceEvent { return r.events[v] }

// Phases returns the per-round activity snapshots in round order.
func (r *Recorder) Phases() []dist.RoundActivity { return r.phases }

// Timings returns the timing channel in round order.
func (r *Recorder) Timings() []dist.RoundTiming { return r.timings }

// EventCount returns the total number of logical events recorded.
func (r *Recorder) EventCount() int {
	n := 0
	for _, evs := range r.events {
		n += len(evs)
	}
	return n
}

// addEvent rebuilds a Recorder from deserialized lines, validating the
// vertex id.
func (r *Recorder) addEvent(ev dist.TraceEvent) error {
	if ev.V < 0 || ev.V >= len(r.events) {
		return fmt.Errorf("trace: event vertex %d out of range [0,%d)", ev.V, len(r.events))
	}
	r.events[ev.V] = append(r.events[ev.V], ev)
	return nil
}

// TimingRecorder is a dist.Tracer that keeps only the timing channel,
// discarding logical events — the cheap choice when a run only wants
// wall-clock telemetry (the sweep timing metrics use it). Like
// Recorder, one TimingRecorder serves one run.
type TimingRecorder struct {
	timings []dist.RoundTiming
}

// Event discards the logical event.
func (t *TimingRecorder) Event(dist.TraceEvent) {}

// Phase discards the activity snapshot.
func (t *TimingRecorder) Phase(dist.RoundActivity) {}

// RoundTime appends the completed round's measurement.
func (t *TimingRecorder) RoundTime(rt dist.RoundTiming) {
	t.timings = append(t.timings, rt)
}

// Timings returns the recorded timing channel in round order.
func (t *TimingRecorder) Timings() []dist.RoundTiming { return t.timings }
