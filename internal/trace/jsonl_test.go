package trace

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// realRecorder records an actual engine run — a small gossip with a
// parked listener, so the file exercises every line type and every
// event kind.
func realRecorder(t *testing.T) *Recorder {
	t.Helper()
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	rec := NewRecorder(g.N())
	_, err := dist.Run(dist.Config{Graph: g, Seed: 7, Tracer: rec}, func(ctx *dist.Ctx) {
		if ctx.ID() == 3 {
			for {
				if _, ok := ctx.Recv(); !ok {
					return
				}
			}
		}
		for r := 0; r < 3; r++ {
			ctx.Broadcast(intPayload(r))
			ctx.NextRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.EventCount() == 0 {
		t.Fatal("run recorded no events")
	}
	return rec
}

type intPayload int

func (intPayload) Bits() int { return 8 }

func TestJSONLRoundTrip(t *testing.T) {
	rec := realRecorder(t)
	meta := Meta{Seed: 7, Label: "gossip path4", Mode: "auto"}

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, meta, rec); err != nil {
		t.Fatal(err)
	}
	log, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if log.Meta.N != 4 || log.Meta.Seed != 7 || log.Meta.Label != "gossip path4" || log.Meta.Mode != "auto" {
		t.Errorf("meta round-trip: %+v", log.Meta)
	}
	if !reflect.DeepEqual(log.Recorder.events, rec.events) {
		t.Error("event buffers did not round-trip")
	}
	if !reflect.DeepEqual(log.Recorder.phases, rec.phases) {
		t.Error("phases did not round-trip")
	}
	if !reflect.DeepEqual(log.Recorder.timings, rec.timings) {
		t.Error("timings did not round-trip")
	}
	if log.Digest == nil || !log.Digest.Equal(rec.Digest()) {
		t.Error("digest line did not round-trip")
	}

	// The file must also pass full validation.
	if _, err := Check(bytes.NewReader(buf.Bytes())); err != nil {
		t.Errorf("Check rejected a freshly written file: %v", err)
	}
}

// validFile returns a well-formed serialized trace to corrupt.
func validFile(t *testing.T) []string {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, Meta{Seed: 7}, realRecorder(t)); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("suspiciously short file: %d lines", len(lines))
	}
	return lines
}

func TestReadJSONLRejectsMalformed(t *testing.T) {
	lines := validFile(t)
	join := func(ls []string) string { return strings.Join(ls, "\n") + "\n" }

	cases := map[string]string{
		"empty input":      "",
		"not json":         "garbage\n",
		"first not meta":   join(append([]string{lines[1]}, lines...)),
		"bad version":      strings.Replace(join(lines), `"version":1`, `"version":99`, 1),
		"duplicate meta":   join(append([]string{lines[0]}, lines...)),
		"unknown type":     join(append([]string{lines[0], `{"type":"mystery","round":1}`}, lines[1:]...)),
		"unknown kind":     join(append([]string{lines[0], `{"type":"event","kind":"vanish","round":1,"v":0,"peer":1}`}, lines[1:]...)),
		"missing v":        join(append([]string{lines[0], `{"type":"event","kind":"send","round":1,"peer":1}`}, lines[1:]...)),
		"v out of range":   join(append([]string{lines[0], `{"type":"event","kind":"send","round":1,"v":99,"peer":1}`}, lines[1:]...)),
		"negative round":   join(append([]string{lines[0], `{"type":"event","kind":"send","round":-1,"v":0,"peer":1}`}, lines[1:]...)),
		"phase round 0":    join(append([]string{lines[0], `{"type":"phase","round":0}`}, lines[1:]...)),
		"timing round 0":   join(append([]string{lines[0], `{"type":"timing","round":0}`}, lines[1:]...)),
		"short digest":     join(append(lines[:len(lines)-1], `{"type":"digest","round":0,"run":"abc","vertex":["a","b","c","d"]}`)),
		"duplicate digest": join(append(lines, lines[len(lines)-1])),
	}
	for name, input := range cases {
		if _, err := ReadJSONL(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCheckRejectsTamperedDigest(t *testing.T) {
	lines := validFile(t)
	last := len(lines) - 1

	// Replace the digest's run hash with a same-length fake.
	var dl map[string]any
	if err := json.Unmarshal([]byte(lines[last]), &dl); err != nil {
		t.Fatal(err)
	}
	dl["run"] = "0123456789abcdef"
	fake, err := json.Marshal(dl)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Join(append(append([]string{}, lines[:last]...), string(fake)), "\n") + "\n"
	if _, err := Check(strings.NewReader(tampered)); err == nil {
		t.Error("Check accepted a tampered digest")
	}
	// ReadJSONL (no digest verification) must still accept it.
	if _, err := ReadJSONL(strings.NewReader(tampered)); err != nil {
		t.Errorf("ReadJSONL rejected structurally valid file: %v", err)
	}
}

func TestCheckRejectsTamperedEvent(t *testing.T) {
	lines := validFile(t)
	// Flip one event's bits field; the trailing digest no longer matches.
	for i, l := range lines {
		if strings.Contains(l, `"type":"event"`) && strings.Contains(l, `"bits":8`) {
			lines[i] = strings.Replace(l, `"bits":8`, `"bits":9`, 1)
			break
		}
	}
	input := strings.Join(lines, "\n") + "\n"
	if _, err := Check(strings.NewReader(input)); err == nil {
		t.Error("Check accepted a file whose events disagree with its digest")
	}
}

func TestCheckRejectsNonMonotonePhases(t *testing.T) {
	input := `{"type":"meta","version":1,"n":1,"round":0}
{"type":"phase","round":2,"active":1}
{"type":"phase","round":1,"active":1}
`
	if _, err := Check(strings.NewReader(input)); err == nil {
		t.Error("Check accepted non-monotone phase rounds")
	}
	if _, err := ReadJSONL(strings.NewReader(input)); err != nil {
		t.Errorf("ReadJSONL rejected structurally valid file: %v", err)
	}
}

func TestReadJSONLNoDigestLine(t *testing.T) {
	lines := validFile(t)
	input := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	log, err := Check(strings.NewReader(input))
	if err != nil {
		t.Fatalf("digest-less file rejected: %v", err)
	}
	if log.Digest != nil {
		t.Error("Digest non-nil for a file without a digest line")
	}
}
