package trace

import (
	"bufio"
	"encoding/json"
	"io"
)

// Chrome trace_event export: renders the timing channel as nested
// complete ("X") slices — one per round, with step/route/sync children
// — and the logical activity curve as counter ("C") tracks, producing a
// file chrome://tracing and Perfetto open directly. Timestamps are
// cumulative round wall times, so the rendering is a faithful picture
// of where the run's wall clock went; the logical transcript itself is
// not rendered (use the JSONL form and cmd/trace for that).

// chromeEvent is one trace_event entry. Durations and timestamps are in
// microseconds (the format's unit), kept as float64 for sub-µs rounds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome renders the recorded run as a Chrome trace_event JSON
// document. Rounds missing a timing entry (logical-only logs) get a
// nominal 1µs slice so the counter tracks still render.
func WriteChrome(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Index timings by round; phases drive the iteration so logical-only
	// recorders still export.
	byRound := make(map[int]int, len(r.timings))
	for i, t := range r.timings {
		byRound[t.Round] = i
	}
	rounds := r.phases
	ts := 0.0
	for _, act := range rounds {
		wall, step, route, sync := 1.0, 0.0, 0.0, 0.0 // µs fallback
		if i, ok := byRound[act.Round]; ok {
			t := r.timings[i]
			wall = float64(t.Wall.Nanoseconds()) / 1e3
			step = float64(t.Step.Nanoseconds()) / 1e3
			route = float64(t.Route.Nanoseconds()) / 1e3
			sync = float64(t.Sync.Nanoseconds()) / 1e3
		}
		if err := emit(chromeEvent{
			Name: "round", Ph: "X", Ts: ts, Dur: wall, Pid: 0, Tid: 0,
			Args: map[string]any{"round": act.Round},
		}); err != nil {
			return err
		}
		off := ts
		for _, part := range []struct {
			name string
			dur  float64
		}{{"step", step}, {"route", route}, {"sync", sync}} {
			if part.dur <= 0 {
				continue
			}
			if err := emit(chromeEvent{Name: part.name, Ph: "X", Ts: off, Dur: part.dur, Pid: 0, Tid: 1}); err != nil {
				return err
			}
			off += part.dur
		}
		for _, ctr := range []struct {
			name string
			val  int64
		}{
			{"active", int64(act.Active)}, {"parked", int64(act.Parked)},
			{"senders", int64(act.Senders)}, {"delivered", int64(act.Delivered)},
			{"delivered_bits", act.DeliveredBits},
		} {
			if err := emit(chromeEvent{
				Name: ctr.name, Ph: "C", Ts: ts, Pid: 0, Tid: 0,
				Args: map[string]any{"value": ctr.val},
			}); err != nil {
				return err
			}
		}
		ts += wall
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
