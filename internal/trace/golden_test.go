package trace

import (
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/gen"
)

// Golden run digests for a fixed (graph, seed) per algorithm family.
// These pin the logical transcript itself — message contents, order,
// and vertex lifecycle — not just cross-mode agreement: an engine or
// algorithm change that alters the transcript (even one that all three
// engines agree on) must show up here and be consciously re-golded.
// Regenerate by running the test: the failure output prints the
// observed values to paste in.
var goldenDigests = map[string]string{
	"twospanner": "11fcb251292f7b19",
	"congest":    "ca5c42e5d213250d",
	"directed":   "abd24ebf829de00d",
	"cs":         "97a13eeb96572506",
	"weighted":   "d09b61af9888478b",
	"mds":        "ea285d0489bf314a",
}

func TestGoldenDigests(t *testing.T) {
	g := gen.ConnectedGNP(32, 0.2, 1)
	const seed = 1
	for _, fam := range algoFamilies {
		t.Run(fam.name, func(t *testing.T) {
			rec := NewRecorder(g.N())
			if err := fam.run(g, seed, dist.ModeAuto, rec); err != nil {
				t.Fatal(err)
			}
			got := rec.Digest().Run
			want, ok := goldenDigests[fam.name]
			if !ok {
				t.Fatalf("no golden digest for family %q; observed %q", fam.name, got)
			}
			if got != want {
				t.Errorf("digest = %q, golden = %q — the logical transcript changed; re-gold only if intentional", got, want)
			}
		})
	}
}
