package trace

import (
	"fmt"
	"testing"

	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/mds"
)

// Cross-engine digest equality — the tentpole acceptance test: every
// algorithm family, on scenario-representative instances, must produce
// the identical logical transcript (same Digest) under the barrier,
// event, and goroutine-free step engines. The digest collapses the full
// per-vertex transcript, so any divergence in message content, order,
// lifecycle, or per-round activity fails here.

var engineModes = []dist.Mode{dist.ModeBarrier, dist.ModeEvent, dist.ModeStep}

// algoFamilies enumerates the dist-engine algorithm families the
// scenario registry exposes, each run the way its scenario runs it.
var algoFamilies = []struct {
	name string
	run  func(g *graph.Graph, seed int64, mode dist.Mode, tr dist.Tracer) error
}{
	{"twospanner", func(g *graph.Graph, seed int64, mode dist.Mode, tr dist.Tracer) error {
		_, err := core.TwoSpanner(g, core.Options{Seed: seed, ExecMode: mode, Tracer: tr})
		return err
	}},
	{"congest", func(g *graph.Graph, seed int64, mode dist.Mode, tr dist.Tracer) error {
		_, err := core.TwoSpannerCongest(g, core.Options{Seed: seed, ExecMode: mode, Tracer: tr})
		return err
	}},
	{"directed", func(g *graph.Graph, seed int64, mode dist.Mode, tr dist.Tracer) error {
		d := gen.OrientRandomly(g, 0.3, seed)
		_, err := core.DirectedTwoSpanner(d, core.Options{Seed: seed, ExecMode: mode, Tracer: tr})
		return err
	}},
	{"cs", func(g *graph.Graph, seed int64, mode dist.Mode, tr dist.Tracer) error {
		clients, servers := gen.ClientServerSplit(g, 0.5, 0.8, seed)
		_, err := core.ClientServerTwoSpanner(g, clients, servers, core.Options{Seed: seed, ExecMode: mode, Tracer: tr})
		return err
	}},
	{"weighted", func(g *graph.Graph, seed int64, mode dist.Mode, tr dist.Tracer) error {
		wg := g.Clone()
		gen.RandomWeights(wg, 1, 8, seed)
		_, err := core.TwoSpanner(wg, core.Options{Seed: seed, ExecMode: mode, Tracer: tr})
		return err
	}},
	{"mds", func(g *graph.Graph, seed int64, mode dist.Mode, tr dist.Tracer) error {
		_, err := mds.Run(g, mds.Options{Seed: seed, ExecMode: mode, Tracer: tr})
		return err
	}},
}

func TestCrossModeDigestEquality(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp48":    gen.ConnectedGNP(48, 0.15, 1),
		"clique12": gen.Clique(12),
		"grid6":    gen.Grid(6, 6),
	}
	for _, fam := range algoFamilies {
		for gname, g := range graphs {
			for seed := int64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed=%d", fam.name, gname, seed), func(t *testing.T) {
					var ref Digest
					for i, mode := range engineModes {
						rec := NewRecorder(g.N())
						if err := fam.run(g, seed, mode, rec); err != nil {
							t.Fatalf("mode %v: %v", mode, err)
						}
						if rec.EventCount() == 0 {
							t.Fatalf("mode %v recorded no events", mode)
						}
						d := rec.Digest()
						if i == 0 {
							ref = d
							continue
						}
						if !d.Equal(ref) {
							t.Errorf("mode %v digest %s diverged from %v digest %s",
								mode, d.Run, engineModes[0], ref.Run)
							for v := range d.Vertex {
								if d.Vertex[v] != ref.Vertex[v] {
									t.Errorf("  first diverging vertex: %d", v)
									break
								}
							}
						}
					}
				})
			}
		}
	}
}
