package trace

import (
	"time"

	"distspanner/internal/dist"
)

func duration(ns int64) time.Duration { return time.Duration(ns) }

// TimingSummary aggregates a run's timing channel: the per-round wall
// distribution and the scheduler-phase shares of total wall time. All
// values are wall-clock telemetry — nondeterministic, never part of the
// logical transcript or its digest.
type TimingSummary struct {
	// Rounds is the number of measured rounds.
	Rounds int
	// WallMeanNs and WallMaxNs summarize the per-round wall time.
	WallMeanNs float64
	WallMaxNs  int64
	// TotalWallNs is the summed round wall time.
	TotalWallNs int64
	// StepShare, RouteShare, and SyncShare are each phase's fraction of
	// TotalWallNs (in [0,1], summing to ~1). In the blocking modes Sync
	// is folded into Step by construction (see dist.RoundTiming).
	StepShare  float64
	RouteShare float64
	SyncShare  float64
}

// SummarizeTimings folds a timing channel into its summary. An empty
// channel yields the zero summary.
func SummarizeTimings(ts []dist.RoundTiming) TimingSummary {
	var s TimingSummary
	if len(ts) == 0 {
		return s
	}
	var step, route, sync int64
	for _, t := range ts {
		w := t.Wall.Nanoseconds()
		s.TotalWallNs += w
		if w > s.WallMaxNs {
			s.WallMaxNs = w
		}
		step += t.Step.Nanoseconds()
		route += t.Route.Nanoseconds()
		sync += t.Sync.Nanoseconds()
	}
	s.Rounds = len(ts)
	s.WallMeanNs = float64(s.TotalWallNs) / float64(s.Rounds)
	if s.TotalWallNs > 0 {
		s.StepShare = float64(step) / float64(s.TotalWallNs)
		s.RouteShare = float64(route) / float64(s.TotalWallNs)
		s.SyncShare = float64(sync) / float64(s.TotalWallNs)
	}
	return s
}
