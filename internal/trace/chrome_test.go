package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeWellFormed checks the trace_event export is valid JSON
// with the expected track structure: per round, one "X" round slice,
// up-to-three phase children, and five "C" counters.
func TestWriteChromeWellFormed(t *testing.T) {
	rec := realRecorder(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	rounds := len(rec.Phases())
	var slices, counters int
	lastTs := -1.0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Name == "round" {
				slices++
				if ev.Ts < lastTs {
					t.Errorf("round slices not time-ordered: ts %v after %v", ev.Ts, lastTs)
				}
				lastTs = ev.Ts
			}
		case "C":
			counters++
		default:
			t.Errorf("unexpected phase type %q", ev.Ph)
		}
	}
	if slices != rounds {
		t.Errorf("round slices = %d, want %d", slices, rounds)
	}
	if counters != 5*rounds {
		t.Errorf("counter events = %d, want %d", counters, 5*rounds)
	}
}

// TestWriteChromeLogicalOnly exercises the fallback path: a recorder
// with phases but no timing channel still exports renderable slices.
func TestWriteChromeLogicalOnly(t *testing.T) {
	rec := realRecorder(t)
	rec.timings = nil
	var buf bytes.Buffer
	if err := WriteChrome(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc["traceEvents"].([]any)) == 0 {
		t.Error("logical-only export produced no events")
	}
}
