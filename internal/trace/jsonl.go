package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"distspanner/internal/dist"
)

// FormatVersion is the JSONL schema version written in the meta line;
// readers reject other versions.
const FormatVersion = 1

// Meta is the run identification written as the first JSONL line.
type Meta struct {
	// N is the vertex count; every event's v must lie in [0, N).
	N int `json:"n"`
	// Seed is the run seed — half of the (Graph, Seed) determinism key.
	Seed int64 `json:"seed"`
	// Label names the run for humans ("twospanner n=64 p=0.2", ...).
	Label string `json:"label,omitempty"`
	// Mode is the execution mode's CLI spelling, recorded so a digest
	// mismatch can be attributed; equal digests are expected across modes.
	Mode string `json:"mode,omitempty"`
}

// The JSONL schema: one JSON object per line, discriminated by "type".
//
//	{"type":"meta","version":1,"n":64,"seed":1,"label":"...","mode":"step"}
//	{"type":"event","kind":"send","round":3,"v":7,"peer":9,"tag":2,"bits":24}
//	{"type":"event","kind":"deliver","round":3,"v":9,"peer":7,"boxed":true,"bits":24}
//	{"type":"phase","round":3,"active":12,"parked":50,"senders":4,"delivered":9,"delivered_bits":216}
//	{"type":"timing","round":3,"wall_ns":41250,"step_ns":30100,"route_ns":9800,"sync_ns":1350}
//	{"type":"digest","run":"8f3c...","vertex":["ab12...","..."]}
//
// Events are written vertex-major (all of vertex 0's buffer, then
// vertex 1's, ...), preserving exactly the per-vertex order the digest
// is defined over; "timing" lines are the wall-clock channel and are
// excluded from the digest. The final "digest" line makes the file
// self-validating: Check recomputes it from the preceding lines.
type jsonLine struct {
	Type string `json:"type"`

	// meta
	Version int    `json:"version,omitempty"`
	N       int    `json:"n,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Label   string `json:"label,omitempty"`
	Mode    string `json:"mode,omitempty"`

	// event (V/Peer are pointers so that 0 and -1 survive omitempty
	// round-trips unambiguously: absent means invalid, not zero)
	Kind  string `json:"kind,omitempty"`
	Round int    `json:"round"`
	V     *int   `json:"v,omitempty"`
	Peer  *int   `json:"peer,omitempty"`
	Tag   uint8  `json:"tag,omitempty"`
	Boxed bool   `json:"boxed,omitempty"`
	Bits  int    `json:"bits,omitempty"`

	// phase
	Active        int   `json:"active,omitempty"`
	Parked        int   `json:"parked,omitempty"`
	Senders       int   `json:"senders,omitempty"`
	Delivered     int   `json:"delivered,omitempty"`
	DeliveredBits int64 `json:"delivered_bits,omitempty"`

	// timing
	WallNs  int64 `json:"wall_ns,omitempty"`
	StepNs  int64 `json:"step_ns,omitempty"`
	RouteNs int64 `json:"route_ns,omitempty"`
	SyncNs  int64 `json:"sync_ns,omitempty"`

	// digest
	Run    string   `json:"run,omitempty"`
	Vertex []string `json:"vertex,omitempty"`
}

// Log is one deserialized trace file: the meta line, the rebuilt
// recorder (per-vertex buffers in file order), and the digest line as
// written (nil when the file carries none).
type Log struct {
	Meta     Meta
	Recorder *Recorder
	// Digest is the file's trailing digest line, as written. Compare
	// with Recorder.Digest() to validate (Check does).
	Digest *Digest
}

// WriteJSONL serializes the recorded run: meta line, events
// (vertex-major), phase and timing lines (round order), and the
// trailing digest line.
func WriteJSONL(w io.Writer, meta Meta, r *Recorder) error {
	bw := bufio.NewWriter(w)
	meta.N = r.N()
	if err := writeLine(bw, jsonLine{Type: "meta", Version: FormatVersion, N: meta.N, Seed: meta.Seed, Label: meta.Label, Mode: meta.Mode}); err != nil {
		return err
	}
	for v := range r.events {
		for i := range r.events[v] {
			ev := &r.events[v][i]
			vv, peer := ev.V, ev.Peer
			if err := writeLine(bw, jsonLine{
				Type: "event", Kind: ev.Kind.String(), Round: ev.Round,
				V: &vv, Peer: &peer, Tag: ev.Tag, Boxed: ev.Boxed, Bits: ev.Bits,
			}); err != nil {
				return err
			}
		}
	}
	for _, act := range r.phases {
		if err := writeLine(bw, jsonLine{
			Type: "phase", Round: act.Round, Active: act.Active, Parked: act.Parked,
			Senders: act.Senders, Delivered: act.Delivered, DeliveredBits: act.DeliveredBits,
		}); err != nil {
			return err
		}
	}
	for _, t := range r.timings {
		if err := writeLine(bw, jsonLine{
			Type: "timing", Round: t.Round,
			WallNs: t.Wall.Nanoseconds(), StepNs: t.Step.Nanoseconds(),
			RouteNs: t.Route.Nanoseconds(), SyncNs: t.Sync.Nanoseconds(),
		}); err != nil {
			return err
		}
	}
	d := r.Digest()
	if err := writeLine(bw, jsonLine{Type: "digest", Run: d.Run, Vertex: d.Vertex}); err != nil {
		return err
	}
	return bw.Flush()
}

func writeLine(w *bufio.Writer, l jsonLine) error {
	b, err := json.Marshal(l)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// ReadJSONL parses a trace file, validating the schema as it goes: the
// first line must be a version-1 meta line, every later line must be a
// known type with well-formed fields, and event vertices must lie in
// [0, N). It does not compare the digest line against a recomputation —
// that is Check's job.
func ReadJSONL(rd io.Reader) (*Log, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	log := &Log{}
	lineno := 0
	for sc.Scan() {
		lineno++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l jsonLine
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
		}
		if lineno == 1 {
			if l.Type != "meta" {
				return nil, fmt.Errorf("trace: line 1: first line must be type meta, got %q", l.Type)
			}
			if l.Version != FormatVersion {
				return nil, fmt.Errorf("trace: line 1: format version %d, want %d", l.Version, FormatVersion)
			}
			if l.N < 0 {
				return nil, fmt.Errorf("trace: line 1: negative vertex count %d", l.N)
			}
			log.Meta = Meta{N: l.N, Seed: l.Seed, Label: l.Label, Mode: l.Mode}
			log.Recorder = NewRecorder(l.N)
			continue
		}
		switch l.Type {
		case "meta":
			return nil, fmt.Errorf("trace: line %d: duplicate meta line", lineno)
		case "event":
			kind, ok := dist.ParseTraceKind(l.Kind)
			if !ok {
				return nil, fmt.Errorf("trace: line %d: unknown event kind %q", lineno, l.Kind)
			}
			if l.V == nil || l.Peer == nil {
				return nil, fmt.Errorf("trace: line %d: event missing v/peer", lineno)
			}
			if l.Round < 0 {
				return nil, fmt.Errorf("trace: line %d: negative round %d", lineno, l.Round)
			}
			ev := dist.TraceEvent{Kind: kind, Round: l.Round, V: *l.V, Peer: *l.Peer, Tag: l.Tag, Boxed: l.Boxed, Bits: l.Bits}
			if err := log.Recorder.addEvent(ev); err != nil {
				return nil, fmt.Errorf("trace: line %d: %v", lineno, err)
			}
		case "phase":
			if l.Round < 1 {
				return nil, fmt.Errorf("trace: line %d: phase round %d < 1", lineno, l.Round)
			}
			log.Recorder.Phase(dist.RoundActivity{
				Round: l.Round, Active: l.Active, Parked: l.Parked,
				Senders: l.Senders, Delivered: l.Delivered, DeliveredBits: l.DeliveredBits,
			})
		case "timing":
			if l.Round < 1 {
				return nil, fmt.Errorf("trace: line %d: timing round %d < 1", lineno, l.Round)
			}
			log.Recorder.RoundTime(dist.RoundTiming{
				Round: l.Round, Wall: duration(l.WallNs), Step: duration(l.StepNs),
				Route: duration(l.RouteNs), Sync: duration(l.SyncNs),
			})
		case "digest":
			if log.Digest != nil {
				return nil, fmt.Errorf("trace: line %d: duplicate digest line", lineno)
			}
			if len(l.Run) != 16 || len(l.Vertex) != log.Recorder.N() {
				return nil, fmt.Errorf("trace: line %d: malformed digest line", lineno)
			}
			log.Digest = &Digest{Run: l.Run, Vertex: l.Vertex}
		default:
			return nil, fmt.Errorf("trace: line %d: unknown line type %q", lineno, l.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if lineno == 0 {
		return nil, fmt.Errorf("trace: empty input")
	}
	return log, nil
}

// Check parses and fully validates a trace file: everything ReadJSONL
// checks, plus phase rounds strictly increasing and — when a digest
// line is present — an exact match between the written digest and one
// recomputed from the file's own event and phase lines. It returns the
// validated log.
func Check(rd io.Reader) (*Log, error) {
	log, err := ReadJSONL(rd)
	if err != nil {
		return nil, err
	}
	last := 0
	for _, act := range log.Recorder.Phases() {
		if act.Round <= last {
			return nil, fmt.Errorf("trace: phase rounds not strictly increasing at round %d", act.Round)
		}
		last = act.Round
	}
	if log.Digest != nil {
		got := log.Recorder.Digest()
		if !got.Equal(*log.Digest) {
			return nil, fmt.Errorf("trace: digest mismatch: file says %s, recomputed %s", log.Digest.Run, got.Run)
		}
	}
	return log, nil
}
