package trace

import "distspanner/internal/dist"

// Digest is the canonical hash of one run's logical transcript: one
// FNV-64a hash per vertex over that vertex's event buffer, and a
// whole-run hash folding the vertex hashes (in id order) with the
// per-round activity snapshots. The timing channel never enters it.
//
// Two successful runs have equal Digests iff their logical transcripts
// are equal — same events per vertex in the same per-vertex order, same
// activity curve. The determinism contract this pins down: for a fixed
// (Graph, Seed, protocol), all three execution modes produce the same
// Digest (asserted by the cross-mode tests), and the golden-digest
// tests keep it stable across refactors. Aborted runs (round limit,
// cancellation, enforcement, panic) truncate the narration at
// mode-dependent points and carry no digest guarantee.
type Digest struct {
	// Run is the whole-run hash, 16 hex digits.
	Run string
	// Vertex holds the per-vertex hashes, indexed by vertex id.
	Vertex []string
}

// FNV-64a parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix folds one 64-bit value into an FNV-64a state, byte by byte,
// little-endian. Fixed-width folding keeps the encoding unambiguous
// without separators.
func mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// mixEvent folds one logical event. The vertex id is not folded — it is
// implied by which buffer the event lives in — so a per-vertex hash is
// a pure function of that vertex's own transcript.
func mixEvent(h uint64, ev dist.TraceEvent) uint64 {
	h = mix(h, uint64(ev.Kind))
	h = mix(h, uint64(ev.Round))
	h = mix(h, uint64(int64(ev.Peer)))
	h = mix(h, uint64(ev.Tag))
	if ev.Boxed {
		h = mix(h, 1)
	} else {
		h = mix(h, 0)
	}
	return mix(h, uint64(ev.Bits))
}

// mixPhase folds one per-round activity snapshot.
func mixPhase(h uint64, act dist.RoundActivity) uint64 {
	h = mix(h, uint64(act.Round))
	h = mix(h, uint64(act.Active))
	h = mix(h, uint64(act.Parked))
	h = mix(h, uint64(act.Senders))
	h = mix(h, uint64(act.Delivered))
	return mix(h, uint64(act.DeliveredBits))
}

const hexDigits = "0123456789abcdef"

// hex64 formats h as 16 lowercase hex digits.
func hex64(h uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// Digest computes the canonical transcript hash of the recorded run.
func (r *Recorder) Digest() Digest {
	d := Digest{Vertex: make([]string, len(r.events))}
	run := mix(fnvOffset, uint64(len(r.events)))
	for v, evs := range r.events {
		h := mix(fnvOffset, uint64(len(evs)))
		for _, ev := range evs {
			h = mixEvent(h, ev)
		}
		d.Vertex[v] = hex64(h)
		run = mix(run, h)
	}
	run = mix(run, uint64(len(r.phases)))
	for _, act := range r.phases {
		run = mixPhase(run, act)
	}
	d.Run = hex64(run)
	return d
}

// Equal reports whether two digests are identical (same run hash and
// same per-vertex hashes).
func (d Digest) Equal(o Digest) bool {
	if d.Run != o.Run || len(d.Vertex) != len(o.Vertex) {
		return false
	}
	for i := range d.Vertex {
		if d.Vertex[i] != o.Vertex[i] {
			return false
		}
	}
	return true
}
