package trace

import (
	"fmt"
	"testing"

	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/mds"
)

// Sharding analogue of the cross-mode test: the logical transcript must
// be invariant under the shard count. Running a family distributed
// across 1, 2, 4, or 7 shard workers (Options.Shards, in-process
// channel transport) must produce per-vertex digests identical to the
// plain step engine — partitioning is an execution detail, not an
// algorithm input.

var shardCounts = []int{1, 2, 4, 7}

// shardFamilies mirrors algoFamilies with a shard-count knob; the
// reference is shards == 0 (the unsharded step engine).
var shardFamilies = []struct {
	name string
	run  func(g *graph.Graph, seed int64, shards int, tr dist.Tracer) error
}{
	{"twospanner", func(g *graph.Graph, seed int64, shards int, tr dist.Tracer) error {
		_, err := core.TwoSpanner(g, core.Options{Seed: seed, ExecMode: dist.ModeStep, Shards: shards, Tracer: tr})
		return err
	}},
	{"congest", func(g *graph.Graph, seed int64, shards int, tr dist.Tracer) error {
		_, err := core.TwoSpannerCongest(g, core.Options{Seed: seed, ExecMode: dist.ModeStep, Shards: shards, Tracer: tr})
		return err
	}},
	{"directed", func(g *graph.Graph, seed int64, shards int, tr dist.Tracer) error {
		d := gen.OrientRandomly(g, 0.3, seed)
		_, err := core.DirectedTwoSpanner(d, core.Options{Seed: seed, ExecMode: dist.ModeStep, Shards: shards, Tracer: tr})
		return err
	}},
	{"cs", func(g *graph.Graph, seed int64, shards int, tr dist.Tracer) error {
		clients, servers := gen.ClientServerSplit(g, 0.5, 0.8, seed)
		_, err := core.ClientServerTwoSpanner(g, clients, servers, core.Options{Seed: seed, ExecMode: dist.ModeStep, Shards: shards, Tracer: tr})
		return err
	}},
	{"weighted", func(g *graph.Graph, seed int64, shards int, tr dist.Tracer) error {
		wg := g.Clone()
		gen.RandomWeights(wg, 1, 8, seed)
		_, err := core.TwoSpanner(wg, core.Options{Seed: seed, ExecMode: dist.ModeStep, Shards: shards, Tracer: tr})
		return err
	}},
	{"mds", func(g *graph.Graph, seed int64, shards int, tr dist.Tracer) error {
		_, err := mds.Run(g, mds.Options{Seed: seed, ExecMode: dist.ModeStep, Shards: shards, Tracer: tr})
		return err
	}},
}

func TestShardCountDigestInvariance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"gnp48":    gen.ConnectedGNP(48, 0.15, 1),
		"clique12": gen.Clique(12),
		"grid6":    gen.Grid(6, 6),
	}
	for _, fam := range shardFamilies {
		for gname, g := range graphs {
			for seed := int64(1); seed <= 2; seed++ {
				t.Run(fmt.Sprintf("%s/%s/seed=%d", fam.name, gname, seed), func(t *testing.T) {
					rec := NewRecorder(g.N())
					if err := fam.run(g, seed, 0, rec); err != nil {
						t.Fatalf("reference run: %v", err)
					}
					if rec.EventCount() == 0 {
						t.Fatal("reference run recorded no events")
					}
					ref := rec.Digest()
					for _, shards := range shardCounts {
						rec := NewRecorder(g.N())
						if err := fam.run(g, seed, shards, rec); err != nil {
							t.Fatalf("shards=%d: %v", shards, err)
						}
						d := rec.Digest()
						if d.Equal(ref) {
							continue
						}
						t.Errorf("shards=%d digest %s diverged from unsharded digest %s",
							shards, d.Run, ref.Run)
						for v := range d.Vertex {
							if d.Vertex[v] != ref.Vertex[v] {
								t.Errorf("  first diverging vertex: %d", v)
								break
							}
						}
					}
				})
			}
		}
	}
}
