package trace

import (
	"testing"
	"time"

	"distspanner/internal/dist"
)

// Unit tests for the Recorder, the digest, and the timing summary —
// hand-built transcripts with known expectations. The integration
// surface (real engine runs, cross-mode equality, golden digests per
// algorithm family) lives in crossmode_test.go and golden_test.go.

// sampleRecorder builds a small fixed transcript by hand: two vertices,
// one exchange, one phase, one timing entry.
func sampleRecorder() *Recorder {
	r := NewRecorder(2)
	r.Event(dist.TraceEvent{Kind: dist.TraceSend, Round: 1, V: 0, Peer: 1, Boxed: true, Bits: 8})
	r.Event(dist.TraceEvent{Kind: dist.TraceDeliver, Round: 1, V: 1, Peer: 0, Boxed: true, Bits: 8})
	r.Event(dist.TraceEvent{Kind: dist.TraceRetire, Round: 2, V: 0, Peer: -1})
	r.Event(dist.TraceEvent{Kind: dist.TraceRetire, Round: 2, V: 1, Peer: -1})
	r.Phase(dist.RoundActivity{Round: 1, Active: 2, Senders: 1, Delivered: 1, DeliveredBits: 8})
	r.RoundTime(dist.RoundTiming{Round: 1, Wall: 1500 * time.Nanosecond, Step: 1000, Route: 400, Sync: 100})
	return r
}

func TestRecorderAccessors(t *testing.T) {
	r := sampleRecorder()
	if r.N() != 2 {
		t.Errorf("N = %d", r.N())
	}
	if r.EventCount() != 4 {
		t.Errorf("EventCount = %d", r.EventCount())
	}
	if len(r.VertexEvents(0)) != 2 || len(r.VertexEvents(1)) != 2 {
		t.Errorf("vertex buffers: %d, %d", len(r.VertexEvents(0)), len(r.VertexEvents(1)))
	}
	if len(r.Phases()) != 1 || len(r.Timings()) != 1 {
		t.Errorf("phases=%d timings=%d", len(r.Phases()), len(r.Timings()))
	}
}

func TestDigestDeterministic(t *testing.T) {
	a, b := sampleRecorder().Digest(), sampleRecorder().Digest()
	if !a.Equal(b) {
		t.Fatalf("identical transcripts digest differently: %s vs %s", a.Run, b.Run)
	}
	if len(a.Run) != 16 || len(a.Vertex) != 2 {
		t.Fatalf("malformed digest: %+v", a)
	}
}

// TestDigestSensitivity flips one field at a time and checks the run
// hash moves; vertex hashes must move only for the touched vertex.
func TestDigestSensitivity(t *testing.T) {
	base := sampleRecorder().Digest()

	mutations := map[string]func(*Recorder){
		"event kind": func(r *Recorder) {
			r.events[0][0].Kind = dist.TraceDeliver
		},
		"event round": func(r *Recorder) {
			r.events[0][0].Round = 2
		},
		"event peer": func(r *Recorder) {
			r.events[0][0].Peer = 0
		},
		"event bits": func(r *Recorder) {
			r.events[0][0].Bits = 9
		},
		"event boxed": func(r *Recorder) {
			r.events[0][0].Boxed = false
		},
		"event tag": func(r *Recorder) {
			r.events[0][0].Tag = 3
		},
		"event order": func(r *Recorder) {
			r.events[0][0], r.events[0][1] = r.events[0][1], r.events[0][0]
		},
		"phase delivered": func(r *Recorder) {
			r.phases[0].Delivered = 2
		},
	}
	for name, mutate := range mutations {
		r := sampleRecorder()
		mutate(r)
		d := r.Digest()
		if d.Equal(base) {
			t.Errorf("%s: mutation did not change the digest", name)
		}
		if name != "phase delivered" && d.Vertex[1] != base.Vertex[1] {
			t.Errorf("%s: vertex 1 hash moved though only vertex 0 changed", name)
		}
	}

	// The timing channel must NOT be part of the digest.
	r := sampleRecorder()
	r.timings[0].Wall = 999 * time.Millisecond
	r.RoundTime(dist.RoundTiming{Round: 2, Wall: time.Second})
	if d := r.Digest(); !d.Equal(base) {
		t.Error("timing mutation changed the digest — wall clock leaked into the logical channel")
	}
}

func TestDigestEqual(t *testing.T) {
	a := sampleRecorder().Digest()
	b := a
	b.Vertex = append([]string(nil), a.Vertex...)
	if !a.Equal(b) {
		t.Error("copied digest not Equal")
	}
	b.Vertex[0] = "0000000000000000"
	if a.Equal(b) {
		t.Error("vertex mismatch not detected")
	}
	c := a
	c.Vertex = a.Vertex[:1]
	if a.Equal(c) {
		t.Error("vertex count mismatch not detected")
	}
}

func TestTimingRecorderKeepsOnlyTimings(t *testing.T) {
	tr := &TimingRecorder{}
	tr.Event(dist.TraceEvent{Kind: dist.TraceSend, Round: 1, V: 0, Peer: 1})
	tr.Phase(dist.RoundActivity{Round: 1, Active: 1})
	tr.RoundTime(dist.RoundTiming{Round: 1, Wall: time.Microsecond})
	if got := len(tr.Timings()); got != 1 {
		t.Fatalf("timings = %d", got)
	}
}

func TestSummarizeTimings(t *testing.T) {
	if s := SummarizeTimings(nil); s != (TimingSummary{}) {
		t.Errorf("empty summary = %+v", s)
	}
	ts := []dist.RoundTiming{
		{Round: 1, Wall: 100, Step: 60, Route: 30, Sync: 10},
		{Round: 2, Wall: 300, Step: 200, Route: 80, Sync: 20},
	}
	s := SummarizeTimings(ts)
	if s.Rounds != 2 || s.TotalWallNs != 400 || s.WallMaxNs != 300 || s.WallMeanNs != 200 {
		t.Errorf("wall aggregates wrong: %+v", s)
	}
	if s.StepShare != 0.65 || s.RouteShare != 0.275 || s.SyncShare != 0.075 {
		t.Errorf("shares wrong: %+v", s)
	}
}
