// Package prof is the shared CLI profiling harness: it starts the
// standard process-wide profilers (CPU pprof, runtime execution trace)
// and registers an at-exit allocation profile, returning a single stop
// function the command defers. It exists so every cmd/ binary exposes
// the same -cpuprofile/-memprofile/-exectrace surface without each one
// re-implementing the open/start/stop/close dance.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Start starts the profilers whose output paths are non-empty and
// returns the function that stops them and writes the at-exit profiles.
// The returned stop is never nil and is safe to call even when Start
// fails partway: profilers already started are stopped. cpu and exec
// stream for the process lifetime; mem is a single "allocs" snapshot
// (after a forced GC) taken when stop runs.
func Start(cpu, mem, exec string) (stop func(), err error) {
	var stops []func()
	stop = func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		stops = nil
	}
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return stop, err
		}
		stops = append(stops, func() { pprof.StopCPUProfile(); f.Close() })
	}
	if exec != "" {
		f, err := os.Create(exec)
		if err != nil {
			stop()
			return stop, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return stop, err
		}
		stops = append(stops, func() { trace.Stop(); f.Close() })
	}
	if mem != "" {
		path := mem
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
		})
	}
	return stop, nil
}
