package scenario

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
)

// TestCrossModeScenarioEquivalence is the scheduler-equivalence check at
// the workload level: the same (scenario, cell, seed) run under the
// barrier engine, the event-driven scheduler, and the goroutine-free
// state-machine engine must produce identical metrics — same
// spanner/dominating-set size, same round count, same metered bits, bit
// for bit. Cells and seeds are randomized so every run exercises fresh
// instances; any divergence is an engine bug, not a flaky workload.
func TestCrossModeScenarioEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	cases := []struct {
		scenario string
		cell     func() Params
	}{
		{"twospanner", func() Params {
			return Params{
				"n": strconv.Itoa(24 + rng.Intn(40)),
				"p": []string{"0.1", "0.15", "0.25"}[rng.Intn(3)],
			}
		}},
		{"twospanner-congest", func() Params {
			return Params{"n": strconv.Itoa(12 + rng.Intn(12))}
		}},
		{"twospanner-directed", func() Params {
			return Params{"n": strconv.Itoa(12 + rng.Intn(12)), "p": "0.2"}
		}},
		{"twospanner-weighted", func() Params {
			return Params{"n": strconv.Itoa(20 + rng.Intn(16)), "whi": "16"}
		}},
		{"twospanner-cs", func() Params {
			return Params{"n": strconv.Itoa(20 + rng.Intn(16))}
		}},
		{"mds", func() Params {
			return Params{
				"family": []string{"cgnp", "expander"}[rng.Intn(2)],
				"n":      strconv.Itoa(16 + rng.Intn(24)),
			}
		}},
	}
	for _, tc := range cases {
		sc, ok := Get(tc.scenario)
		if !ok {
			t.Fatalf("scenario %q not registered", tc.scenario)
		}
		for rep := 0; rep < 3; rep++ {
			cell := tc.cell()
			seed := rng.Int63()
			engines := []string{"barrier", "event", "step"}
			metrics := make([]Metrics, len(engines))
			errs := make([]error, len(engines))
			for i, engine := range engines {
				p := sc.Defaults.Merge(cell).Merge(Params{"engine": engine})
				metrics[i], errs[i] = sc.Run(p, seed, nil)
			}
			for i := 1; i < len(engines); i++ {
				if (errs[0] == nil) != (errs[i] == nil) {
					t.Fatalf("%s %v seed %d: engines disagree on failure: %s=%v %s=%v",
						tc.scenario, cell, seed, engines[0], errs[0], engines[i], errs[i])
				}
				if !reflect.DeepEqual(metrics[0], metrics[i]) {
					t.Fatalf("%s %v seed %d: metrics diverge across engines:\n%s: %v\n%s: %v",
						tc.scenario, cell, seed, engines[0], metrics[0], engines[i], metrics[i])
				}
			}
		}
	}
}
