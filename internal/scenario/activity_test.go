package scenario

import "testing"

// TestScenarioActivityMetrics asserts the activity columns every
// simulated scenario now reports: the totals are present and consistent,
// and on a workload with staggered termination the run is strictly
// cheaper than all-spinning execution (active_steps < rounds × n) — the
// measurable effect of the Recv-parking algorithm ports.
func TestScenarioActivityMetrics(t *testing.T) {
	for _, tc := range []struct {
		scenario string
		cell     Params
	}{
		{"twospanner", Params{"family": "planted-stars", "c": "4", "s": "10", "q": "0.4"}},
		{"mds", Params{"n": "64", "p": "0.08"}},
	} {
		sc, ok := Get(tc.scenario)
		if !ok {
			t.Fatalf("scenario %q not registered", tc.scenario)
		}
		m, err := sc.Run(sc.Defaults.Merge(tc.cell), 7, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.scenario, err)
		}
		for _, key := range []string{"active_steps", "parked_steps", "peak_active", "mean_active", "mean_parked"} {
			if _, ok := m[key]; !ok {
				t.Fatalf("%s: missing activity metric %q", tc.scenario, key)
			}
		}
		n, rounds := m["n"], m["rounds"]
		if m["peak_active"] > n {
			t.Fatalf("%s: peak_active %v exceeds n %v", tc.scenario, m["peak_active"], n)
		}
		if m["active_steps"]+m["parked_steps"] > rounds*n {
			t.Fatalf("%s: active %v + parked %v exceed rounds×n = %v",
				tc.scenario, m["active_steps"], m["parked_steps"], rounds*n)
		}
		if m["active_steps"] >= rounds*n {
			t.Fatalf("%s: no activity saved (active_steps %v at rounds×n = %v)",
				tc.scenario, m["active_steps"], rounds*n)
		}
	}
}
