package scenario

import "testing"

// TestTimingMetricsOptIn asserts the timing columns' contract: absent
// by default (reports stay byte-reproducible), present on every
// simulated scenario when the execution-only timing parameter is set,
// with shares in [0,1] and a positive wall mean. It also pins that
// "timing" does not change the instance: the logical metrics of a
// timed and an untimed run of the same cell must agree exactly.
func TestTimingMetricsOptIn(t *testing.T) {
	timingCols := []string{
		"round_wall_ns_mean", "round_wall_ns_max",
		"time_share_step", "time_share_route", "time_share_sync",
	}
	for _, name := range []string{"twospanner", "twospanner-congest", "twospanner-directed", "twospanner-weighted", "twospanner-cs", "mds"} {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		cell := sc.Defaults.Merge(Params{"n": "48"})

		plain, err := sc.Run(cell, 3, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, key := range timingCols {
			if _, present := plain[key]; present {
				t.Errorf("%s: %q present without timing=1", name, key)
			}
		}

		timed, err := sc.Run(cell.Merge(Params{"timing": "1"}), 3, nil)
		if err != nil {
			t.Fatalf("%s (timed): %v", name, err)
		}
		for _, key := range timingCols {
			if _, present := timed[key]; !present {
				t.Errorf("%s: %q missing with timing=1", name, key)
			}
		}
		if timed["round_wall_ns_mean"] <= 0 {
			t.Errorf("%s: round_wall_ns_mean = %v", name, timed["round_wall_ns_mean"])
		}
		for _, key := range []string{"time_share_step", "time_share_route", "time_share_sync"} {
			if s := timed[key]; s < 0 || s > 1 {
				t.Errorf("%s: %s = %v outside [0,1]", name, key, s)
			}
		}

		// Observation must not perturb the instance or the run.
		for key, v := range plain {
			if tv, ok := timed[key]; !ok || tv != v {
				t.Errorf("%s: logical metric %q changed under timing: %v vs %v", name, key, v, tv)
			}
		}
	}
}
