package scenario

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
)

// TestCrossTransportScenarioEquivalence is the delivery-layer analogue
// of the cross-mode check: the same (scenario, cell, seed) run with the
// local in-process engine and distributed across shard workers over the
// in-process channel transport (the execution-only "transport"
// parameter) must produce identical metrics, bit for bit. Cells and
// seeds are randomized so every run exercises fresh instances.
func TestCrossTransportScenarioEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	cases := []struct {
		scenario string
		cell     func() Params
	}{
		{"twospanner", func() Params {
			return Params{
				"n": strconv.Itoa(24 + rng.Intn(40)),
				"p": []string{"0.1", "0.15", "0.25"}[rng.Intn(3)],
			}
		}},
		{"twospanner-congest", func() Params {
			return Params{"n": strconv.Itoa(12 + rng.Intn(12))}
		}},
		{"twospanner-directed", func() Params {
			return Params{"n": strconv.Itoa(12 + rng.Intn(12)), "p": "0.2"}
		}},
		{"twospanner-weighted", func() Params {
			return Params{"n": strconv.Itoa(20 + rng.Intn(16)), "whi": "16"}
		}},
		{"twospanner-cs", func() Params {
			return Params{"n": strconv.Itoa(20 + rng.Intn(16))}
		}},
		{"mds", func() Params {
			return Params{
				"family": []string{"cgnp", "expander"}[rng.Intn(2)],
				"n":      strconv.Itoa(16 + rng.Intn(24)),
			}
		}},
	}
	for _, tc := range cases {
		sc, ok := Get(tc.scenario)
		if !ok {
			t.Fatalf("scenario %q not registered", tc.scenario)
		}
		for rep := 0; rep < 2; rep++ {
			cell := tc.cell()
			seed := rng.Int63()
			transports := []string{"local", "chan2", "chan5"}
			metrics := make([]Metrics, len(transports))
			errs := make([]error, len(transports))
			for i, tr := range transports {
				p := sc.Defaults.Merge(cell).Merge(Params{"engine": "step", "transport": tr})
				metrics[i], errs[i] = sc.Run(p, seed, nil)
			}
			for i := 1; i < len(transports); i++ {
				if (errs[0] == nil) != (errs[i] == nil) {
					t.Fatalf("%s %v seed %d: transports disagree on failure: %s=%v %s=%v",
						tc.scenario, cell, seed, transports[0], errs[0], transports[i], errs[i])
				}
				if !reflect.DeepEqual(metrics[0], metrics[i]) {
					t.Fatalf("%s %v seed %d: metrics diverge across transports:\n%s: %v\n%s: %v",
						tc.scenario, cell, seed, transports[0], metrics[0], transports[i], metrics[i])
				}
			}
		}
	}
}

// TestTransportParamValidation pins the parameter surface: unknown
// transport values panic loudly rather than silently running local.
func TestTransportParamValidation(t *testing.T) {
	for _, bad := range []string{"tcp", "chan0", "chan-1", "chanx", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("transport=%q did not panic", bad)
				}
			}()
			transportShards(Params{"transport": bad})
		}()
	}
	if got := transportShards(Params{}); got != 0 {
		t.Errorf("default transport shards = %d, want 0", got)
	}
	if got := transportShards(Params{"transport": "chan7"}); got != 7 {
		t.Errorf("chan7 shards = %d, want 7", got)
	}
}
