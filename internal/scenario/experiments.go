package scenario

// The paper's reproduction suite: every experiment E1–E15 of the former
// cmd/experiments monolith, re-expressed as a registered scenario whose
// default cases replay the figure/theorem it reproduces. Registration
// order is presentation order (E1..E15); cmd/experiments iterates
// Experiments() and any cell returning an error fails the run.
//
// Cells that replay a pinned instance carry an explicit "iseed"; cells
// exploring randomness leave the instance to the sweep-derived seed and
// rely on replicates. Every hard assertion of the old driver (spanner
// validity, zero fallbacks, exact Claim 3.1 equality, dichotomy checks,
// CONGEST output equality, ...) survives as an error return.

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"distspanner/internal/baseline"
	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/lb"
	"distspanner/internal/mds"
	"distspanner/internal/span"
)

// Experiments returns the registered paper experiments (names "e1".."e15")
// in presentation order.
func Experiments() []*Scenario {
	var out []*Scenario
	for _, s := range All() {
		if strings.HasPrefix(s.Name, "e") {
			if _, err := strconv.Atoi(s.Name[1:]); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}

func cases(ps ...Params) []Params { return ps }

// delegate runs another registered scenario's Run with its defaults
// layered under p: the experiment supplies the cases, the sweepable
// scenario supplies the algorithm, verification, and metrics, so the two
// cannot drift apart. Resolution is lazy because init order across files
// is not guaranteed.
func delegate(name string, p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
	s, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: delegate target %q not registered", name)
	}
	return s.Run(s.Defaults.Merge(p), seed, cancel)
}

func init() {
	Register(&Scenario{
		Name:  "e1",
		Title: "Figure 1 / Lemma 2.3: G(ℓ,β) spanner-size dichotomy",
		Doc: "Builds the Fig. 1 lower-bound graph for disjoint and intersecting inputs, " +
			"verifies Claim 2.2, checks the disjoint case admits a 5-spanner avoiding D with " +
			"<= 7ℓβ edges, and that each input conflict forces β² D-edges (Lemma 2.3).",
		Model: "analytic",
		Cases: cases(
			Params{"l": "3", "beta": "4"},
			Params{"l": "4", "beta": "6"},
			Params{"l": "5", "beta": "8"},
		),
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) { //spanlint:nocancel analytic Fig. 1 gadgets are fixed-size (l <= 5) and finish in microseconds
			l := p.Int("l", 4)
			beta := p.Int("beta", 2*l-2)
			s := instanceSeed(p, seed)
			a, b := lb.DisjointInputs(l*l, 0.4, s)
			f, err := lb.NewFig1(l, beta, a, b)
			if err != nil {
				return nil, err
			}
			m := Metrics{"l": float64(l), "beta": float64(beta), "n": float64(f.G.N()),
				"d_edges": float64(f.D.Len()), "bound_7lb": float64(7 * l * beta)}
			if err := f.VerifyClaim22(); err != nil {
				return m, fmt.Errorf("disjoint Claim 2.2: %w", err)
			}
			nonD := f.NonDSpanner()
			m["nond_size"] = float64(nonD.Len())
			if !span.IsDirectedKSpanner(f.G, nonD, 5) {
				return m, fmt.Errorf("disjoint non-D spanner invalid at ℓ=%d", l)
			}
			conflicts := p.Int("conflicts", 2)
			a2, b2 := lb.IntersectingInputs(l*l, conflicts, 0.3, s+7)
			f2, err := lb.NewFig1(l, beta, a2, b2)
			if err != nil {
				return nil, err
			}
			if err := f2.VerifyClaim22(); err != nil {
				return m, fmt.Errorf("intersecting Claim 2.2: %w", err)
			}
			forced := f2.ForcedDEdges().Len()
			m["conflicts"] = float64(conflicts)
			m["forced_d"] = float64(forced)
			if forced != conflicts*beta*beta {
				return m, fmt.Errorf("forced D-edges %d != cβ² = %d", forced, conflicts*beta*beta)
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "e2",
		Title: "Theorem 1.1: randomized directed k-spanner lower bound",
		Doc: "Tabulates T(n) = Ω(√n/(√α·log n)) for randomized α-approximation (k >= 5), " +
			"meters the bits a 5-ball learner pushes across the Θ(ℓ) cut of G(ℓ,β) to turn " +
			"disjointness's Ω(ℓ²) bits into a round bound, and checks the Lemma 2.4 decision " +
			"rule classifies disjoint vs intersecting instances at β > 7αℓ.",
		Model: "two-party",
		Cases: cases(
			Params{"mode": "bounds", "n": "256"},
			Params{"mode": "bounds", "n": "1024"},
			Params{"mode": "bounds", "n": "4096"},
			Params{"mode": "bounds", "n": "16384"},
			Params{"mode": "bounds", "n": "65536"},
			Params{"mode": "meter", "l": "4", "beta": "6", "iseed": "1"},
			Params{"mode": "decision", "l": "3", "beta": "45", "iseed": "2"},
		),
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			switch mode := p.Str("mode", "bounds"); mode {
			case "bounds":
				n := p.Int("n", 1024)
				return Metrics{
					"n":        float64(n),
					"alpha_1":  lb.RandomizedDirectedRounds(n, 1),
					"alpha_4":  lb.RandomizedDirectedRounds(n, 4),
					"alpha_16": lb.RandomizedDirectedRounds(n, 16),
					"alpha_64": lb.RandomizedDirectedRounds(n, 64),
				}, nil
			case "meter":
				l, beta := p.Int("l", 4), p.Int("beta", 6)
				a, b := lb.DisjointInputs(l*l, 0.4, instanceSeed(p, seed))
				f, err := lb.NewFig1(l, beta, a, b)
				if err != nil {
					return nil, err
				}
				comm, _ := f.G.Underlying()
				bandwidth := p.Int("bandwidth", 32)
				rep, err := lb.MeterLearnBall(comm, f.CutSide(), 5, bandwidth, l*l)
				if err != nil {
					return nil, err
				}
				return Metrics{
					"cut_edges":      float64(rep.CutEdges),
					"cut_bits":       float64(rep.Stats.CutBits),
					"bits_needed":    float64(l * l),
					"implied_rounds": rep.ImpliedRounds,
				}, nil
			case "decision":
				alpha := p.Float("alpha", 2)
				l, beta := p.Int("l", 3), p.Int("beta", 45)
				s := instanceSeed(p, seed)
				aD, bD := lb.DisjointInputs(l*l, 0.4, s)
				fD, err := lb.NewFig1(l, beta, aD, bD)
				if err != nil {
					return nil, err
				}
				aI, bI := lb.IntersectingInputs(l*l, 1, 0.3, s+1)
				fI, err := lb.NewFig1(l, beta, aI, bI)
				if err != nil {
					return nil, err
				}
				okD := lb.DecideDisjointness(fD, fD.MinimalSpanner(), alpha)
				okI := !lb.DecideDisjointness(fI, fI.MinimalSpanner(), alpha)
				m := Metrics{"alpha": alpha, "ok_disjoint": boolMetric(okD),
					"ok_intersecting": boolMetric(okI), "margin": lb.ThresholdGap(fD, alpha)}
				if !okD || !okI {
					return m, fmt.Errorf("Lemma 2.4 decision rule misclassified (disjoint %v, intersecting %v)", okD, okI)
				}
				return m, nil
			default:
				return nil, fmt.Errorf("e2: unknown mode %q", mode)
			}
		},
	})

	Register(&Scenario{
		Name:  "e3",
		Title: "Theorem 2.8 / Lemma 2.6: deterministic gap-disjointness bound",
		Doc: "Contrasts the deterministic Ω(n/(√α·log n)) bound with the randomized " +
			"Ω(√n/(√α·log n)) one, and verifies the gap dichotomy at β <= ℓ: far-from-" +
			"disjoint inputs force >= β²ℓ²/12 D-edges while disjoint ones stay below 7ℓ².",
		Model: "analytic",
		Cases: cases(
			Params{"mode": "bounds", "n": "256"},
			Params{"mode": "bounds", "n": "1024"},
			Params{"mode": "bounds", "n": "4096"},
			Params{"mode": "bounds", "n": "16384"},
			Params{"mode": "gap", "l": "12", "beta": "11", "iseed": "1"},
		),
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			switch mode := p.Str("mode", "bounds"); mode {
			case "bounds":
				n := p.Int("n", 1024)
				return Metrics{
					"n":       float64(n),
					"det_1":   lb.DeterministicDirectedRounds(n, 1),
					"det_4":   lb.DeterministicDirectedRounds(n, 4),
					"det_16":  lb.DeterministicDirectedRounds(n, 16),
					"rand_4":  lb.RandomizedDirectedRounds(n, 4),
					"speedup": lb.DeterministicDirectedRounds(n, 4) / lb.RandomizedDirectedRounds(n, 4),
				}, nil
			case "gap":
				l, beta := p.Int("l", 12), p.Int("beta", 11)
				s := instanceSeed(p, seed)
				a, b := lb.DisjointInputs(l*l, 0.3, s)
				f, err := lb.NewFig1(l, beta, a, b)
				if err != nil {
					return nil, err
				}
				af, bf := lb.FarFromDisjointInputs(l*l, s+1)
				f2, err := lb.NewFig1(l, beta, af, bf)
				if err != nil {
					return nil, err
				}
				forced := f2.ForcedDEdges().Len()
				need := float64(beta*beta) * float64(l*l) / 12
				m := Metrics{"l": float64(l), "beta": float64(beta),
					"disjoint_nond": float64(f.NonDSpanner().Len()),
					"bound_7l2":     float64(7 * l * l),
					"forced_d":      float64(forced), "need": need}
				if float64(forced) < need {
					return m, fmt.Errorf("gap dichotomy violated: forced %d < %.0f", forced, need)
				}
				return m, nil
			default:
				return nil, fmt.Errorf("e3: unknown mode %q", mode)
			}
		},
	})

	Register(&Scenario{
		Name:  "e4",
		Title: "Figure 2 / Theorems 2.9, 2.10: weighted lower bounds",
		Doc: "Verifies the Fig. 2 dichotomy — a 0-cost 4-spanner exists iff the inputs are " +
			"disjoint — in the directed construction, the undirected variant for k in " +
			"{4,5,7}, and tabulates the weighted round lower bounds.",
		Model: "analytic",
		Cases: cases(
			Params{"mode": "fig2", "l": "3"},
			Params{"mode": "fig2", "l": "5"},
			Params{"mode": "fig2", "l": "8"},
			Params{"mode": "undirected", "k": "4"},
			Params{"mode": "undirected", "k": "5"},
			Params{"mode": "undirected", "k": "7"},
			Params{"mode": "bounds", "n": "1024"},
			Params{"mode": "bounds", "n": "4096"},
			Params{"mode": "bounds", "n": "16384"},
		),
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			s := instanceSeed(p, seed)
			switch mode := p.Str("mode", "fig2"); mode {
			case "fig2":
				l := p.Int("l", 3)
				a, b := lb.DisjointInputs(l*l, 0.4, s)
				f, err := lb.NewFig2(l, a, b)
				if err != nil {
					return nil, err
				}
				ok := span.IsDirectedKSpanner(f.G, f.ZeroCostSpanner(), 4)
				a2, b2 := lb.IntersectingInputs(l*l, 1, 0.3, s+1)
				f2, err := lb.NewFig2(l, a2, b2)
				if err != nil {
					return nil, err
				}
				bad := span.IsDirectedKSpanner(f2.G, f2.ZeroCostSpanner(), 4)
				m := Metrics{"l": float64(l), "n": float64(f.G.N()),
					"zero_cost_ok": boolMetric(ok), "conflict_forced": boolMetric(!bad)}
				if !ok || bad {
					return m, fmt.Errorf("Fig2 dichotomy broken at ℓ=%d", l)
				}
				return m, nil
			case "undirected":
				k := p.Int("k", 4)
				a, b := lb.DisjointInputs(9, 0.4, s)
				fu, err := lb.NewFig2Undirected(3, k, a, b)
				if err != nil {
					return nil, err
				}
				ok := span.IsKSpanner(fu.G, fu.ZeroCostSpanner(), k)
				m := Metrics{"k": float64(k), "zero_cost_ok": boolMetric(ok)}
				if !ok {
					return m, fmt.Errorf("undirected Fig2 failed at k=%d", k)
				}
				return m, nil
			case "bounds":
				n := p.Int("n", 1024)
				return Metrics{
					"n":        float64(n),
					"dir_lb":   lb.WeightedDirectedRounds(n),
					"undir_k4": lb.WeightedUndirectedRounds(n, 4),
					"undir_k8": lb.WeightedUndirectedRounds(n, 8),
				}, nil
			default:
				return nil, fmt.Errorf("e4: unknown mode %q", mode)
			}
		},
	})

	Register(&Scenario{
		Name:  "e5",
		Title: "Figure 3 / Claim 3.1: MVC gadget equality and Section 3 bounds",
		Doc: "Checks cost of the minimum 2-spanner of the gadget G_S equals MVC(G) exactly " +
			"(Claim 3.1, undirected and directed), runs Lemma 3.2 forwards (distributed MVC " +
			"via the weighted spanner algorithm), machine-checks the disjointness fooling " +
			"set, and tabulates the Section 3 round bounds.",
		Model: "analytic",
		Cases: cases(
			Params{"mode": "gadget", "iseed": "0"},
			Params{"mode": "gadget", "iseed": "1"},
			Params{"mode": "gadget", "iseed": "2"},
			Params{"mode": "gadget", "iseed": "3"},
			Params{"mode": "gadget", "iseed": "4"},
			Params{"mode": "directed"},
			Params{"mode": "forwards", "iseed": "9"},
			Params{"mode": "fooling"},
			Params{"mode": "bounds"},
		),
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			switch mode := p.Str("mode", "gadget"); mode {
			case "gadget":
				g := gen.GNP(p.Int("n", 5), p.Float("p", 0.5), instanceSeed(p, seed))
				gadget := lb.NewMVCGadget(g, false)
				mvc := len(exact.MinVertexCover(g))
				_, cost, err := exact.MinSpanner(gadget.GS, exact.SpannerOptions{K: 2})
				if err != nil {
					return nil, err
				}
				m := Metrics{"n": float64(g.N()), "m": float64(g.M()),
					"mvc": float64(mvc), "spanner_cost": cost}
				if cost != float64(mvc) {
					return m, fmt.Errorf("Claim 3.1 equality failed: cost %.0f != MVC %d", cost, mvc)
				}
				return m, nil
			case "directed":
				g := gen.Cycle(p.Int("n", 4))
				gs, _ := lb.DirectedMVCGadget(g, false)
				mvc := len(exact.MinVertexCover(g))
				_, cost, err := exact.MinDirectedSpanner(gs, exact.SpannerOptions{K: 2})
				if err != nil {
					return nil, err
				}
				m := Metrics{"mvc": float64(mvc), "spanner_cost": cost}
				if cost != float64(mvc) {
					return m, fmt.Errorf("directed Claim 3.1 equality failed")
				}
				return m, nil
			case "forwards":
				gf := gen.ConnectedGNP(p.Int("n", 14), p.Float("p", 0.35), instanceSeed(p, seed))
				mvcOpt := len(exact.MinVertexCover(gf))
				res, err := lb.MVCViaSpanner(gf, core.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
				if err != nil {
					return nil, err
				}
				m := Metrics{"cover": float64(len(res.Cover)), "opt": float64(mvcOpt),
					"gadget_rounds": float64(res.GadgetRounds)}
				if mvcOpt > 0 {
					m["ratio"] = float64(len(res.Cover)) / float64(mvcOpt)
				}
				if !lb.NewMVCGadget(gf, false).IsVertexCover(res.Cover) {
					return m, fmt.Errorf("Lemma 3.2 output is not a vertex cover")
				}
				return m, nil
			case "fooling":
				n := p.Int("n", 10)
				if err := lb.VerifyDisjointnessFoolingSet(n); err != nil {
					return nil, err
				}
				return Metrics{"certified_n": float64(n), "bound_bits": float64(lb.DisjFoolingBoundBits(n))}, nil
			case "bounds":
				return Metrics{
					"local_delta_1024": lb.Weighted2SpannerLocalRoundsDelta(1024),
					"local_n_65536":    lb.Weighted2SpannerLocalRoundsN(65536),
					"exact_n_4096":     lb.ExactWeighted2SpannerRounds(4096),
				}, nil
			default:
				return nil, fmt.Errorf("e5: unknown mode %q", mode)
			}
		},
	})

	e6Families := cases(
		Params{"family": "clique", "n": "16"},
		Params{"family": "bipartite", "a": "8", "b": "8"},
		Params{"family": "hypercube", "d": "4"},
		Params{"family": "grid", "rows": "6", "cols": "6"},
		Params{"family": "cgnp", "n": "40", "p": "0.15", "iseed": "1"},
		Params{"family": "cgnp", "n": "60", "p": "0.08", "iseed": "2"},
		Params{"family": "planted-stars", "c": "4", "s": "8", "q": "0.4", "iseed": "3"},
	)
	Register(&Scenario{
		Name:  "e6",
		Title: "Theorem 1.3: distributed 2-spanner, guaranteed O(log m/n)",
		Doc: "Runs the core algorithm over the standard family zoo (worst case over " +
			"replicate seeds), asserts validity and zero Claim 4.4 fallbacks, compares " +
			"against Kortsarz–Peleg and the n-1 lower bound, contrasts with the " +
			"expectation-only random-star comparator, and sweeps planted stars to relate " +
			"iterations to log n · log Δ.",
		Model: "LOCAL",
		Cases: append(append([]Params{}, e6Families...),
			Params{"mode": "comparator", "family": "cgnp", "n": "30", "p": "0.3", "iseed": "9"},
			Params{"mode": "scaling", "c": "4", "iseed": "5"},
			Params{"mode": "scaling", "c": "8", "iseed": "5"},
			Params{"mode": "scaling", "c": "16", "iseed": "5"},
		),
		Replicates: 5,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			switch mode := p.Str("mode", "run"); mode {
			case "run":
				g, err := GraphSpec{}.Build(p, seed)
				if err != nil {
					return nil, err
				}
				res, err := core.TwoSpanner(g, core.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
				if err != nil {
					return nil, err
				}
				m := graphMetrics(g, Metrics{})
				statsMetrics(res.Stats, m)
				m["size"] = float64(res.Spanner.Len())
				m["iterations"] = float64(res.Iterations)
				m["kp_size"] = float64(baseline.KortsarzPeleg(g).Len())
				m["lb_size"] = float64(g.N() - 1)
				m["ratio_lb"] = float64(res.Spanner.Len()) / float64(g.N()-1)
				m["log_bound"] = math.Log2(math.Max(2, float64(g.M())/float64(g.N()))) + 1
				if !span.IsKSpanner(g, res.Spanner, 2) {
					return m, fmt.Errorf("invalid spanner")
				}
				if res.Fallbacks != 0 {
					return m, fmt.Errorf("Claim 4.4 fallback taken")
				}
				return m, nil
			case "comparator":
				g, err := GraphSpec{}.Build(p, seed)
				if err != nil {
					return nil, err
				}
				res, err := core.TwoSpanner(g, core.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
				if err != nil {
					return nil, err
				}
				if !span.IsKSpanner(g, res.Spanner, 2) {
					return nil, fmt.Errorf("invalid spanner")
				}
				return Metrics{
					"alg_size":  float64(res.Spanner.Len()),
					"rand_size": float64(baseline.RandomStarSpanner(g, seed).Len()),
				}, nil
			case "scaling":
				c := p.Int("c", 4)
				gs := gen.PlantedStars(c, p.Int("s", 8), p.Float("q", 0.4), instanceSeed(p, seed))
				res, err := core.TwoSpanner(gs, core.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
				if err != nil {
					return nil, err
				}
				return Metrics{
					"n": float64(gs.N()), "max_degree": float64(gs.MaxDegree()),
					"iterations":    float64(res.Iterations),
					"logn_logdelta": math.Log2(float64(gs.N())) * math.Log2(float64(gs.MaxDegree())),
				}, nil
			default:
				return nil, fmt.Errorf("e6: unknown mode %q", mode)
			}
		},
	})

	Register(&Scenario{
		Name:  "e7",
		Title: "Theorem 4.9: directed 2-spanner",
		Doc: "Runs the directed variant over random digraphs and a randomly oriented " +
			"clique, verifying the directed 2-spanner property on every replicate. Paper: " +
			"same O(log m/n) ratio and O(log n · log Δ) rounds as the undirected algorithm.",
		Model: "LOCAL",
		Cases: cases(
			Params{"family": "rdg", "n": "20", "p": "0.25", "iseed": "1"},
			Params{"family": "rdg", "n": "30", "p": "0.15", "iseed": "2"},
			Params{"family": "rdg", "n": "12", "p": "1.1", "iseed": "3"},
			Params{"family": "clique", "n": "12", "twoway": "0.5", "iseed": "4"},
		),
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			return delegate("twospanner-directed", p, seed, cancel)
		},
	})

	Register(&Scenario{
		Name:  "e8",
		Title: "Theorem 4.12: weighted 2-spanner, O(log Δ)",
		Doc: "Runs the weighted algorithm across weight scales W (worst case over " +
			"replicates), compares cost against weighted Kortsarz–Peleg, and computes the " +
			"true ratio against the branch-and-bound optimum on a small instance. Paper: " +
			"ratio O(log Δ), rounds O(log n · log(ΔW)).",
		Model: "LOCAL",
		Cases: cases(
			Params{"whi": "2", "family": "cgnp", "n": "30", "p": "0.25", "iseed": "3"},
			Params{"whi": "16", "family": "cgnp", "n": "30", "p": "0.25", "iseed": "3"},
			Params{"whi": "128", "family": "cgnp", "n": "30", "p": "0.25", "iseed": "3"},
			Params{"ref": "exact", "family": "cgnp", "n": "9", "p": "0.4", "whi": "8", "iseed": "2"},
			Params{"ref": "kp", "family": "wgeom", "n": "48", "radius": "0.3", "whi": "0", "iseed": "6"},
		),
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			return delegate("twospanner-weighted", p, seed, cancel)
		},
	})

	Register(&Scenario{
		Name:  "e9",
		Title: "Theorem 4.15: client-server 2-spanner",
		Doc: "Splits edges into clients and servers at several client fractions, verifies " +
			"every coverable client edge is spanned by chosen server edges, and computes the " +
			"exact ratio on a small instance. Paper: ratio O(min{log(|C|/|V(C)|), log Δ_S}).",
		Model: "LOCAL",
		Cases: cases(
			Params{"pc": "0.3", "family": "cgnp", "n": "30", "p": "0.25", "iseed": "5"},
			Params{"pc": "0.6", "family": "cgnp", "n": "30", "p": "0.25", "iseed": "5"},
			Params{"pc": "0.9", "family": "cgnp", "n": "30", "p": "0.25", "iseed": "5"},
			Params{"mode": "exact", "family": "cgnp", "n": "10", "p": "0.4", "pc": "0.6", "ps": "0.8", "iseed": "8"},
		),
		Replicates: 2,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			m, err := delegate("twospanner-cs", p, seed, cancel)
			if err != nil {
				return m, err
			}
			if p.Str("mode", "run") == "exact" {
				// Rebuild the (deterministic) instance the delegate ran on
				// to compute the true optimum restricted to server edges.
				cs, _ := Get("twospanner-cs")
				pp := cs.Defaults.Merge(p)
				g, err := GraphSpec{}.Build(pp, seed)
				if err != nil {
					return m, err
				}
				clients, servers := gen.ClientServerSplit(g, pp.Float("pc", 0.6), pp.Float("ps", 0.7), instanceSeed(pp, seed)+0xc5)
				coverable := span.CoverableClients(g, clients, servers, 2)
				_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: 2, Target: coverable, Allowed: servers})
				if err != nil {
					return m, err
				}
				m["opt"] = opt
				if opt > 0 {
					m["ratio_opt"] = m["size"] / opt
				}
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "e10",
		Title: "Theorem 5.1: CONGEST MDS, guaranteed O(log Δ)",
		Doc: "Runs the CONGEST MDS algorithm (bandwidth enforced) over the family zoo, " +
			"worst case over replicates, against greedy and the exact optimum, and contrasts " +
			"the paper's voting rule with expectation-only symmetry breaking on planted " +
			"stars. Paper: O(log Δ) ratio always, O(log n · log Δ) rounds w.h.p.",
		Model: "CONGEST",
		Cases: cases(
			Params{"family": "star", "n": "20"},
			Params{"family": "cgnp", "n": "22", "p": "0.25", "iseed": "7"},
			Params{"family": "grid", "rows": "5", "cols": "5"},
			Params{"family": "cycle", "n": "24"},
			Params{"mode": "voting", "family": "planted-stars", "c": "6", "s": "6", "q": "0.1", "iseed": "3"},
		),
		Replicates: 8,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			res, err := mds.Run(g, mds.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			statsMetrics(res.Stats, m)
			m["size"] = float64(len(res.DominatingSet))
			m["budget"] = float64(8 * dist.IDBits(g.N()))
			if p.Str("mode", "run") == "voting" {
				m["expectation_size"] = float64(len(baseline.ExpectationMDS(g, seed)))
				return m, nil
			}
			greedy := float64(len(baseline.GreedyMDS(g)))
			opt := float64(len(exact.MinDominatingSet(g)))
			m["greedy_size"] = greedy
			m["opt_size"] = opt
			if opt > 0 {
				m["ratio_opt"] = m["size"] / opt
			}
			m["ln_delta_bound"] = math.Log(float64(g.MaxDegree())) + 1
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "e11",
		Title: "Theorem 1.2: LOCAL (1+ε)-approximation",
		Doc: "Runs the LOCAL scheme on exactly solvable instances and asserts " +
			"cost <= (1+ε)·OPT for each (graph, k, ε) case. Paper: (1+ε)·OPT in " +
			"poly(log n / ε) LOCAL rounds with unbounded local computation.",
		Model: "LOCAL",
		Cases: cases(
			Params{"family": "clique", "n": "8", "k": "2", "eps": "1.0"},
			Params{"family": "clique", "n": "8", "k": "2", "eps": "0.25"},
			Params{"family": "bipartite", "a": "3", "b": "3", "k": "2", "eps": "0.5"},
			Params{"family": "cgnp", "n": "10", "p": "0.35", "iseed": "3", "k": "2", "eps": "0.5"},
			Params{"family": "cgnp", "n": "9", "p": "0.35", "iseed": "5", "k": "3", "eps": "0.5"},
		),
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			return delegate("local-epsilon", p, seed, cancel)
		},
	})

	Register(&Scenario{
		Name:  "e12",
		Title: "Separations: LOCAL vs CONGEST, directed vs undirected, weighted vs not",
		Doc: "(a) Meters the max per-edge-round bits of the core 2-spanner (grows with Δ: " +
			"the Section 1.3 overhead) against MDS (stays within the CONGEST budget); " +
			"(b) contrasts the k-round undirected construction with the directed lower " +
			"bound at α = n^{1/k}; (c) tabulates the weighted Ω(n/log n) bound.",
		Model: "analytic",
		Cases: cases(
			Params{"mode": "bits", "n": "8"},
			Params{"mode": "bits", "n": "16"},
			Params{"mode": "bits", "n": "24"},
			Params{"mode": "dirvsundir", "n": "1024", "k": "2"},
			Params{"mode": "dirvsundir", "n": "1024", "k": "3"},
			Params{"mode": "dirvsundir", "n": "4096", "k": "2"},
			Params{"mode": "dirvsundir", "n": "4096", "k": "3"},
			Params{"mode": "weighted", "n": "1024"},
			Params{"mode": "weighted", "n": "4096"},
		),
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			switch mode := p.Str("mode", "bits"); mode {
			case "bits":
				g := gen.Clique(p.Int("n", 16))
				resC, err := core.TwoSpanner(g, core.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
				if err != nil {
					return nil, err
				}
				resM, err := mds.Run(g, mds.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
				if err != nil {
					return nil, err
				}
				budget := 8 * dist.IDBits(g.N())
				return Metrics{
					"max_degree":       float64(g.MaxDegree()),
					"core_bits":        float64(resC.Stats.MaxEdgeRoundBits),
					"mds_bits":         float64(resM.Stats.MaxEdgeRoundBits),
					"budget":           float64(budget),
					"core_over_budget": float64(resC.Stats.MaxEdgeRoundBits) / float64(budget),
				}, nil
			case "dirvsundir":
				n, k := p.Int("n", 1024), p.Int("k", 2)
				alpha := math.Pow(float64(n), 1/float64(k))
				return Metrics{
					"n": float64(n), "k": float64(k), "alpha": alpha,
					"undirected_rounds": float64(k),
					"directed_lb":       lb.RandomizedDirectedRounds(n, alpha),
				}, nil
			case "weighted":
				n := p.Int("n", 1024)
				return Metrics{
					"n":                 float64(n),
					"weighted_lb":       lb.WeightedDirectedRounds(n),
					"unweighted_rounds": 3,
				}, nil
			default:
				return nil, fmt.Errorf("e12: unknown mode %q", mode)
			}
		},
	})

	Register(&Scenario{
		Name:  "e13",
		Title: "Baswana–Sen baseline: O(n^{1/k})-approximation in k rounds",
		Doc: "Builds (2k-1)-spanners with the k-phase Baswana–Sen construction across " +
			"(n, k), verifying stretch and recording size against the O(k · n^{1+1/k}) " +
			"bound — the undirected CONGEST baseline the paper's lower bounds separate from.",
		Model:      "CONGEST",
		Grid:       Grid{"n": {"100", "200"}, "k": {"2", "3", "4"}},
		Replicates: 5,
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			n, k := p.Int("n", 100), p.Int("k", 3)
			// The pinned instance of the original driver: seed n+k.
			g := gen.ConnectedGNP(n, p.Float("p", 0.3), int64(p.Int("iseed", n+k)))
			res := baseline.BaswanaSen(g, k, seed)
			m := graphMetrics(g, Metrics{})
			m["k"] = float64(k)
			m["stretch"] = float64(res.Stretch)
			m["rounds"] = float64(res.Rounds)
			m["size"] = float64(res.Spanner.Len())
			m["size_bound"] = 4 * float64(k) * math.Pow(float64(n), 1+1/float64(k))
			m["ratio_lb"] = float64(res.Spanner.Len()) / float64(n-1)
			if !span.IsKSpanner(g, res.Spanner, res.Stretch) {
				return m, fmt.Errorf("invalid Baswana–Sen spanner at n=%d k=%d", n, k)
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "e14",
		Title: "Section 1.3: direct CONGEST implementation pays Θ(Δ) overhead",
		Doc: "Runs the LOCAL core algorithm and its CONGEST compilation on cliques of " +
			"growing degree, asserts both produce the identical spanner, and records how " +
			"subrounds grow linearly in Δ while every message fits the enforced O(log n) " +
			"budget.",
		Model: "CONGEST",
		Grid:  Grid{"n": {"8", "16", "24", "32"}},
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g := gen.Clique(p.Int("n", 16))
			local, err := core.TwoSpanner(g, core.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
			if err != nil {
				return nil, err
			}
			cg, err := core.TwoSpannerCongest(g, core.Options{Seed: seed, ExecMode: execMode(p), Cancel: cancel})
			if err != nil {
				return nil, err
			}
			same := local.Spanner.Equal(cg.Spanner)
			m := Metrics{
				"max_degree":     float64(g.MaxDegree()),
				"local_rounds":   float64(local.Stats.Rounds),
				"subrounds":      float64(cg.Subrounds),
				"congest_rounds": float64(cg.Stats.Rounds),
				"max_bits":       float64(cg.Stats.MaxEdgeRoundBits),
				"bandwidth":      float64(cg.Bandwidth),
				"same_output":    boolMetric(same),
			}
			if !same {
				return m, fmt.Errorf("CONGEST output diverged on K%d", g.N())
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "e15",
		Title: "Ablations: voting threshold and the Section 4.1 star rule",
		Doc: "On planted stars: (a) sweeps the acceptance threshold denominator around the " +
			"paper's 8, (b) disables the monotone Section 4.1 star rule (fresh choices every " +
			"iteration, fallbacks become possible), (c) replaces power-of-two density " +
			"rounding with exact comparisons. Every variant must still output a valid " +
			"2-spanner.",
		Model: "LOCAL",
		Cases: cases(
			Params{"mode": "threshold", "votden": "1"},
			Params{"mode": "threshold", "votden": "2"},
			Params{"mode": "threshold", "votden": "8"},
			Params{"mode": "threshold", "votden": "32"},
			Params{"mode": "star", "fresh": "0"},
			Params{"mode": "star", "fresh": "1"},
			Params{"mode": "rounding", "noround": "0"},
			Params{"mode": "rounding", "noround": "1"},
		),
		Replicates: 4,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g := gen.PlantedStars(p.Int("c", 4), p.Int("s", 8), p.Float("q", 0.4), int64(p.Int("iseed", 3)))
			opts, _ := coreOptions(p, seed, cancel)
			res, err := core.TwoSpanner(g, opts)
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			m["size"] = float64(res.Spanner.Len())
			m["iterations"] = float64(res.Iterations)
			m["fallbacks"] = float64(res.Fallbacks)
			if !span.IsKSpanner(g, res.Spanner, 2) {
				return m, fmt.Errorf("ablation produced an invalid spanner")
			}
			return m, nil
		},
	})
}
