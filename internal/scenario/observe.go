package scenario

import (
	"strconv"
	"sync"

	"distspanner/internal/dist"
)

// Run observers give a driver a live view of one run's per-round
// activity curve (dist.Config.OnRound) without widening the Run
// signature every scenario implements. The driver registers a callback,
// receives an opaque token, and overlays the execution-only "obs"
// parameter on the cell it runs; simulated scenarios look the token up
// and install the callback as the engine's RoundHook. The parameter is
// execution-only (excluded from Params.InstanceKey, like "engine"):
// observing a run never changes which instance it is or what it
// computes — it is how the service layer streams live progress for a
// job without perturbing its cache identity.
//
// The callback runs under the engine's OnRound contract: on an engine
// goroutine, in round order, and it must not block or call back into
// the engine. Release the token when the run completes; an unreleased
// token is a leak, and a run naming an unknown token runs unobserved.
var (
	obsMu  sync.Mutex
	obsSeq uint64
	obsFns = map[string]func(dist.RoundActivity){}
)

// RegisterObserver installs fn as a live run observer and returns the
// token to carry in the "obs" parameter plus the release function that
// unregisters it.
func RegisterObserver(fn func(dist.RoundActivity)) (token string, release func()) {
	obsMu.Lock()
	obsSeq++
	token = strconv.FormatUint(obsSeq, 10)
	obsFns[token] = fn
	obsMu.Unlock()
	return token, func() {
		obsMu.Lock()
		delete(obsFns, token)
		obsMu.Unlock()
	}
}

// roundObserver resolves the execution-only "obs" parameter to the
// registered callback, nil when the parameter is absent or the token
// unknown (a released observer must not dangle into a later run).
func roundObserver(p Params) func(dist.RoundActivity) {
	token := p.Str("obs", "")
	if token == "" {
		return nil
	}
	obsMu.Lock()
	fn := obsFns[token]
	obsMu.Unlock()
	return fn
}
