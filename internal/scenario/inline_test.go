package scenario

import (
	"testing"

	"distspanner/internal/gen"
	"distspanner/internal/graph"
)

// TestInlineParamsRoundTrip checks the inline family reconstructs the
// encoded graph exactly: same vertex count, same edge set, same weight
// per edge (up to the canonical edge renumbering).
func TestInlineParamsRoundTrip(t *testing.T) {
	g := gen.ConnectedGNP(24, 0.2, 7)
	gen.RandomWeights(g, 1, 8, 7)
	p := InlineParams(g)
	got, err := GraphSpec{}.Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != g.N() || got.M() != g.M() {
		t.Fatalf("round trip: n=%d m=%d, want n=%d m=%d", got.N(), got.M(), g.N(), g.M())
	}
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		j, ok := got.EdgeIndex(e.U, e.V)
		if !ok {
			t.Fatalf("edge %v lost in round trip", e)
		}
		if got.Weight(j) != g.Weight(i) {
			t.Fatalf("edge %v weight %g != %g", e, got.Weight(j), g.Weight(i))
		}
	}
}

// TestInlineParamsOrderInvariant checks the canonical encoding erases
// submission order: the same edge set inserted in different orders
// yields identical parameters, hence identical cell identity.
func TestInlineParamsOrderInvariant(t *testing.T) {
	a := graph.New(5)
	a.AddEdge(0, 1)
	a.AddEdge(3, 2)
	a.AddEdge(1, 4)
	a.AddEdge(0, 2)
	b := graph.New(5)
	b.AddEdge(2, 0)
	b.AddEdge(4, 1)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	pa, pb := InlineParams(a), InlineParams(b)
	if pa.Key() != pb.Key() {
		t.Fatalf("submission order leaked into the encoding:\n%s\n%s", pa.Key(), pb.Key())
	}
	if pa.InstanceKey() != pb.InstanceKey() {
		t.Fatalf("instance keys differ: %s vs %s", pa.InstanceKey(), pb.InstanceKey())
	}
}

// TestInlineIsolatedVertices checks n survives when it exceeds the
// largest endpoint (trailing isolated vertices are part of the
// instance).
func TestInlineIsolatedVertices(t *testing.T) {
	g := graph.New(6)
	g.AddEdge(0, 1)
	got, err := GraphSpec{}.Build(InlineParams(g), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 6 || got.M() != 1 {
		t.Fatalf("got n=%d m=%d, want n=6 m=1", got.N(), got.M())
	}
}

// TestInlineScenarioRun checks a registered scenario actually runs on an
// inline instance — the seam the service layer submits through.
func TestInlineScenarioRun(t *testing.T) {
	sc, ok := Get("twospanner")
	if !ok {
		t.Fatal("twospanner not registered")
	}
	g := gen.ConnectedGNP(20, 0.25, 3)
	p := sc.Defaults.Merge(InlineParams(g))
	m, err := sc.Run(p, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m["valid"] != 1 || m["n"] != 20 {
		t.Fatalf("inline run metrics: valid=%v n=%v", m["valid"], m["n"])
	}
}
