package scenario

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"distspanner/internal/graph"
)

// The "inline" graph family carries an explicit, client-submitted edge
// list through the ordinary parameter plane, so any scenario that builds
// its instance via GraphSpec can run on a submitted graph instead of a
// generated one — the seam the service layer uses for inline job
// submissions. The encoding is canonical: InlineParams sorts the edge
// list (endpoints low-high, edges lexicographic) before rendering it,
// so two submissions of the same edge set in any order produce the same
// parameters, the same cell identity (Params.InstanceKey), and — since
// edge indices follow the canonical order — byte-identical results.
//
// Parameters read by the family builder:
//
//	n      vertex count (default: max endpoint + 1; set it explicitly
//	       when trailing isolated vertices matter)
//	edges  comma-separated "u-v" pairs (default "0-1,1-2", the P3 path)
//	wts    optional comma-separated weights aligned with edges
//
// Like every family builder, malformed values panic: the encoder below
// is the supported producer, and a hand-written spec with bad syntax is
// a spec bug, not a runtime condition. The service layer validates
// submissions before encoding, so its requests can never trip these.
func init() {
	registerFamily(&Family{
		Name:   "inline",
		Params: "edges=0-1,1-2, n=max+1, wts=",
		Doc:    "explicit submitted edge list (canonical order; the service layer's inline graphs)",
		Build:  buildInline,
	})
}

// InlineParams encodes g in the canonical parameter form of the
// "inline" family: family/n/edges (and wts when g is weighted), with the
// edge list sorted so that submission order never reaches the instance
// identity. Build(InlineParams(g), seed) reconstructs a graph equal to g
// up to edge-index renumbering into canonical order.
func InlineParams(g *graph.Graph) Params {
	edges := g.Edges()
	idx := make([]int, len(edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := edges[idx[a]], edges[idx[b]]
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})
	var sb strings.Builder
	for i, id := range idx {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d-%d", edges[id].U, edges[id].V)
	}
	p := Params{
		"family": "inline",
		"n":      strconv.Itoa(g.N()),
		"edges":  sb.String(),
	}
	if g.Weighted() {
		var wb strings.Builder
		for i, id := range idx {
			if i > 0 {
				wb.WriteByte(',')
			}
			wb.WriteString(strconv.FormatFloat(g.Weight(id), 'g', -1, 64))
		}
		p["wts"] = wb.String()
	}
	return p
}

// buildInline reconstructs the graph from the inline parameter form.
func buildInline(p Params, seed int64) *graph.Graph {
	type pair struct{ u, v int }
	var pairs []pair
	var edgeList []string
	if es := p.Str("edges", "0-1,1-2"); es != "" {
		edgeList = strings.Split(es, ",")
		for _, e := range edgeList {
			u, v, ok := strings.Cut(e, "-")
			if !ok {
				panic(fmt.Sprintf("scenario: inline edge %q is not u-v", e))
			}
			ui, err1 := strconv.Atoi(u)
			vi, err2 := strconv.Atoi(v)
			if err1 != nil || err2 != nil {
				panic(fmt.Sprintf("scenario: inline edge %q is not u-v", e))
			}
			pairs = append(pairs, pair{ui, vi})
		}
	}
	maxEnd := -1
	for _, e := range pairs {
		if e.u > maxEnd {
			maxEnd = e.u
		}
		if e.v > maxEnd {
			maxEnd = e.v
		}
	}
	nv := p.Int("n", maxEnd+1)
	if nv < 0 {
		panic(fmt.Sprintf("scenario: inline n=%d is not a vertex count", nv))
	}
	g := graph.New(nv)
	for _, e := range pairs {
		g.AddEdge(e.u, e.v)
	}
	if ws := p.Str("wts", ""); ws != "" {
		wts := strings.Split(ws, ",")
		if len(wts) != len(edgeList) {
			panic(fmt.Sprintf("scenario: inline wts has %d values for %d edges", len(wts), len(edgeList)))
		}
		for i, w := range wts {
			wv, err := strconv.ParseFloat(w, 64)
			if err != nil {
				panic(fmt.Sprintf("scenario: inline weight %q is not a float", w))
			}
			g.SetWeight(i, wv)
		}
	}
	return g
}
