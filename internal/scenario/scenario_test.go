package scenario

import (
	"fmt"
	"reflect"
	"testing"
)

func TestParamsAccessors(t *testing.T) {
	p := Params{"n": "64", "p": "0.25", "name": "x", "flag": "true"}
	if p.Int("n", 1) != 64 || p.Int("missing", 7) != 7 {
		t.Fatal("Int")
	}
	if p.Float("p", 0) != 0.25 || p.Float("missing", 1.5) != 1.5 {
		t.Fatal("Float")
	}
	if p.Str("name", "") != "x" || p.Str("missing", "d") != "d" {
		t.Fatal("Str")
	}
	if !p.Bool("flag", false) || p.Bool("missing", true) != true {
		t.Fatal("Bool")
	}
}

func TestParamsMergeAndKey(t *testing.T) {
	base := Params{"a": "1", "b": "2"}
	over := Params{"b": "3", "c": "4"}
	m := base.Merge(over)
	if m["a"] != "1" || m["b"] != "3" || m["c"] != "4" {
		t.Fatalf("merge = %v", m)
	}
	if base["b"] != "2" {
		t.Fatal("merge mutated the receiver")
	}
	if m.Key() != "a=1 b=3 c=4" {
		t.Fatalf("key = %q", m.Key())
	}
	if (Params{}).Key() != "" {
		t.Fatal("empty key")
	}
}

func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("n=64,128; p=0.1,0.2")
	if err != nil {
		t.Fatal(err)
	}
	want := Grid{"n": {"64", "128"}, "p": {"0.1", "0.2"}}
	if !reflect.DeepEqual(g, want) {
		t.Fatalf("grid = %v", g)
	}
	if _, err := ParseGrid("n=,"); err == nil {
		t.Fatal("empty value accepted")
	}
	if _, err := ParseGrid("noequals"); err == nil {
		t.Fatal("missing = accepted")
	}
	if _, err := ParseGrid("n=1;n=2"); err == nil {
		t.Fatal("duplicate axis accepted")
	}
	if g, err := ParseGrid(" "); err != nil || len(g) != 0 {
		t.Fatal("blank grid should parse empty")
	}
}

func TestGridCells(t *testing.T) {
	g := Grid{"b": {"x", "y"}, "a": {"1", "2", "3"}}
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("%d cells", len(cells))
	}
	// Axes sorted (a before b), last axis varies fastest.
	if cells[0].Key() != "a=1 b=x" || cells[1].Key() != "a=1 b=y" || cells[2].Key() != "a=2 b=x" {
		t.Fatalf("cell order: %q %q %q", cells[0].Key(), cells[1].Key(), cells[2].Key())
	}
	if got := (Grid{}).Cells(); len(got) != 1 || len(got[0]) != 0 {
		t.Fatal("empty grid must yield one empty cell")
	}
}

func TestGraphSpecFamilies(t *testing.T) {
	// Every registered family must build with its documented defaults.
	for _, f := range Families() {
		g, err := GraphSpec{Family: f.Name}.Build(Params{}, 1)
		if err != nil {
			t.Fatalf("family %s: %v", f.Name, err)
		}
		if g.N() == 0 {
			t.Fatalf("family %s built an empty graph", f.Name)
		}
	}
	if len(Families()) < 18 {
		t.Fatalf("only %d families registered", len(Families()))
	}
}

func TestGraphSpecWeightLayering(t *testing.T) {
	g, err := GraphSpec{}.Build(Params{"family": "clique", "n": "8", "whi": "4"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("whi > 0 must weight the graph")
	}
	// wgeom is intrinsically weighted.
	wg, err := GraphSpec{}.Build(Params{"family": "wgeom", "n": "32", "radius": "0.4"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !wg.Weighted() {
		t.Fatal("wgeom must be weighted")
	}
}

func TestGraphSpecErrorsAndDigraph(t *testing.T) {
	if _, err := (GraphSpec{}).Build(Params{"family": "no-such"}, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	d, err := GraphSpec{}.BuildDigraph(Params{"family": "rdg", "n": "12", "p": "0.3"}, 1)
	if err != nil || d.N() != 12 {
		t.Fatalf("rdg: %v", err)
	}
	od, err := GraphSpec{}.BuildDigraph(Params{"family": "clique", "n": "6", "twoway": "0.5"}, 1)
	if err != nil || od.N() != 6 {
		t.Fatalf("oriented: %v", err)
	}
}

func TestGraphSpecInstancePinning(t *testing.T) {
	p := Params{"family": "cgnp", "n": "20", "p": "0.2", "iseed": "5"}
	a, _ := GraphSpec{}.Build(p, 100)
	b, _ := GraphSpec{}.Build(p, 200)
	if a.M() != b.M() {
		t.Fatal("iseed must pin the instance across run seeds")
	}
	free := Params{"family": "cgnp", "n": "20", "p": "0.2"}
	c, _ := GraphSpec{}.Build(free, 100)
	d, _ := GraphSpec{}.Build(free, 200)
	same := c.M() == d.M()
	if same {
		for i := 0; i < c.M(); i++ {
			if c.Edge(i) != d.Edge(i) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("without iseed, different run seeds should vary the instance")
	}
}

func TestExperimentsRegisteredInOrder(t *testing.T) {
	exps := Experiments()
	if len(exps) != 15 {
		t.Fatalf("%d experiments registered, want 15", len(exps))
	}
	for i, s := range exps {
		want := fmt.Sprintf("e%d", i+1)
		if s.Name != want {
			t.Fatalf("experiment %d is %q, want %q (registration order)", i, s.Name, want)
		}
		if s.Title == "" || s.Doc == "" {
			t.Fatalf("%s missing title or doc", s.Name)
		}
		if len(s.DefaultCells()) == 0 {
			t.Fatalf("%s has no default cells", s.Name)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	for _, name := range []string{"twospanner", "twospanner-congest", "twospanner-directed",
		"twospanner-weighted", "twospanner-cs", "mds", "baswanasen", "kortsarz-peleg",
		"greedy-spanner", "local-epsilon"} {
		if _, ok := Get(name); !ok {
			t.Fatalf("scenario %q not registered", name)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatal("Names not sorted")
		}
	}
}

// TestExperimentsAllCellsPass executes every default cell of every
// registered experiment once (single replicate), so a regression in any
// E1–E15 verification fails `go test` rather than waiting for someone to
// run cmd/experiments by hand. The whole suite is a couple of seconds.
func TestExperimentsAllCellsPass(t *testing.T) {
	for _, s := range Experiments() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, cell := range s.DefaultCells() {
				params := s.Defaults.Merge(cell)
				m, err := s.Run(params, 1, nil)
				if err != nil {
					t.Errorf("cell [%s]: %v", params.Key(), err)
					continue
				}
				if len(m) == 0 {
					t.Errorf("cell [%s]: no metrics", params.Key())
				}
			}
		})
	}
}

// TestSweepableScenariosSmoke runs one small cell of every non-experiment
// scenario and requires verification to pass.
func TestSweepableScenariosSmoke(t *testing.T) {
	small := map[string]Params{
		"twospanner":          {"n": "24", "p": "0.2"},
		"twospanner-congest":  {"n": "12", "p": "0.3"},
		"twospanner-directed": {"n": "12", "p": "0.2"},
		"twospanner-weighted": {"n": "14", "p": "0.3", "whi": "8"},
		"twospanner-cs":       {"n": "14", "p": "0.3"},
		"mds":                 {"n": "16", "p": "0.2"},
		"baswanasen":          {"n": "40", "p": "0.3", "k": "2"},
		"kortsarz-peleg":      {"n": "24", "p": "0.2"},
		"greedy-spanner":      {"n": "24", "p": "0.2", "k": "3"},
		"local-epsilon":       {"n": "8", "p": "0.35", "eps": "1.0"},
	}
	for name, over := range small {
		sc, ok := Get(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		m, err := sc.Run(sc.Defaults.Merge(over), 1, nil)
		if err != nil {
			t.Fatalf("%s failed: %v", name, err)
		}
		if len(m) == 0 {
			t.Fatalf("%s returned no metrics", name)
		}
	}
}
