package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Params is one cell of a parameter space: named string values with typed
// accessors. String values keep grids uniform — numeric axes ("n=64,128"),
// categorical axes ("family=clique,sbm"), and mode switches all parse the
// same way — while the accessors give scenarios typed views with defaults.
type Params map[string]string

// Int returns the parameter k as an int, or def when absent. A present
// but malformed value panics: it is a spec bug, not a runtime condition.
func (p Params) Int(k string, def int) int {
	s, ok := p[k]
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: param %s=%q is not an int", k, s))
	}
	return v
}

// Float returns the parameter k as a float64, or def when absent.
func (p Params) Float(k string, def float64) float64 {
	s, ok := p[k]
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		panic(fmt.Sprintf("scenario: param %s=%q is not a float", k, s))
	}
	return v
}

// Str returns the parameter k, or def when absent.
func (p Params) Str(k, def string) string {
	if s, ok := p[k]; ok {
		return s
	}
	return def
}

// Bool returns the parameter k as a bool ("1"/"true" vs "0"/"false"), or
// def when absent.
func (p Params) Bool(k string, def bool) bool {
	s, ok := p[k]
	if !ok {
		return def
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		panic(fmt.Sprintf("scenario: param %s=%q is not a bool", k, s))
	}
	return v
}

// Merge returns a new Params with over's entries layered on top of p.
// Either may be nil.
func (p Params) Merge(over Params) Params {
	out := make(Params, len(p)+len(over))
	for k, v := range p {
		out[k] = v
	}
	for k, v := range over {
		out[k] = v
	}
	return out
}

// Keys returns the parameter names in sorted order.
func (p Params) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Key returns the canonical "k1=v1 k2=v2 ..." form (sorted by name). It is
// the cell's identity: sweep seed derivation and result labeling both hash
// or print it, so two cells with equal parameters are the same cell no
// matter how they were constructed.
func (p Params) Key() string {
	parts := make([]string, 0, len(p))
	for _, k := range p.Keys() {
		parts = append(parts, k+"="+p[k])
	}
	return strings.Join(parts, " ")
}

// execOnlyParams name the parameters that select how a run executes
// rather than what instance it runs on. They are excluded from
// InstanceKey so that cells differing only in execution knobs draw the
// same derived seeds — which is what makes an engine={barrier,event,step}
// sweep axis a pure wall-clock comparison over identical instances.
// "timing" (record the wall-clock timing channel and surface it as
// metrics) is likewise pure observation: it must not change which
// instance a cell runs. "transport" (local in-process engine vs the
// sharded runner over an in-process channel cluster) is the delivery
// layer: results are transport-independent by the conformance
// contract, so it too is excluded. "obs" (a live run-observer token,
// see RegisterObserver) only attaches a progress listener — the
// service layer streams per-round activity through it without
// perturbing the job's cache identity.
var execOnlyParams = map[string]bool{"engine": true, "timing": true, "transport": true, "obs": true}

// InstanceParams returns a copy of p without the execution-only
// parameters: the parameter view that identifies the instance. It is
// what the service layer fingerprints for cache keys and echoes in
// result documents, so two requests differing only in execution knobs
// read back the same document.
func (p Params) InstanceParams() Params {
	out := make(Params, len(p))
	for k, v := range p {
		if !execOnlyParams[k] {
			out[k] = v
		}
	}
	return out
}

// InstanceKey is Key with execution-only parameters (the dist engine
// selection) removed: the identity of the probabilistic instance, used by
// sweep seed derivation.
func (p Params) InstanceKey() string {
	parts := make([]string, 0, len(p))
	for _, k := range p.Keys() {
		if execOnlyParams[k] {
			continue
		}
		parts = append(parts, k+"="+p[k])
	}
	return strings.Join(parts, " ")
}

// Metrics is a scenario run's measured output: named scalar observations
// (rounds, bits, sizes, ratios, 0/1 verification flags, ...). The sweep
// layer aggregates each metric independently across replicates.
type Metrics map[string]float64

// Names returns the metric names in sorted order — the canonical column
// order of every machine-readable output.
func (m Metrics) Names() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// MarshalJSON serializes metrics with sorted keys and non-finite values
// (ln(0), 0/0 ratios on degenerate instances) as null — JSON has no
// Inf/NaN literal, and one degenerate metric must not make a whole
// report unserializable.
func (m Metrics) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range m.Names() {
		if i > 0 {
			b.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		b.Write(kb)
		b.WriteByte(':')
		if v := m[k]; math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteString("null")
		} else {
			vb, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			b.Write(vb)
		}
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// Grid is a parameter grid: each key maps to the axis of values it sweeps
// over. Cells() expands the cartesian product.
type Grid map[string][]string

// ParseGrid parses the CLI grid syntax "n=64,128;p=0.1,0.2" — semicolon-
// separated axes, comma-separated values.
func ParseGrid(s string) (Grid, error) {
	g := Grid{}
	if strings.TrimSpace(s) == "" {
		return g, nil
	}
	for _, axis := range strings.Split(s, ";") {
		axis = strings.TrimSpace(axis)
		if axis == "" {
			continue
		}
		eq := strings.IndexByte(axis, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("scenario: grid axis %q is not name=v1,v2,...", axis)
		}
		name := strings.TrimSpace(axis[:eq])
		if _, dup := g[name]; dup {
			return nil, fmt.Errorf("scenario: grid axis %q repeated", name)
		}
		var vals []string
		for _, v := range strings.Split(axis[eq+1:], ",") {
			v = strings.TrimSpace(v)
			if v == "" {
				return nil, fmt.Errorf("scenario: grid axis %q has an empty value", name)
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return nil, fmt.Errorf("scenario: grid axis %q has no values", name)
		}
		g[name] = vals
	}
	return g, nil
}

// Cells expands the grid into the cartesian product of its axes, in
// deterministic order: axes sorted by name, the last axis varying fastest.
// An empty grid yields a single empty cell.
func (g Grid) Cells() []Params {
	axes := make([]string, 0, len(g))
	for k := range g {
		axes = append(axes, k)
	}
	sort.Strings(axes)
	cells := []Params{{}}
	for _, axis := range axes {
		next := make([]Params, 0, len(cells)*len(g[axis]))
		for _, cell := range cells {
			for _, v := range g[axis] {
				c := cell.Merge(Params{axis: v})
				next = append(next, c)
			}
		}
		cells = next
	}
	return cells
}
