package scenario

import (
	"fmt"
	"sort"

	"distspanner/internal/gen"
	"distspanner/internal/graph"
)

// GraphSpec is a declarative graph source: a family name from the family
// registry plus optional fixed parameter overrides. Build resolves the
// family's parameters from (Fixed layered under the cell's Params) and the
// run seed, so one scenario can sweep any family axis — including the
// family itself ("family=clique,sbm,expander").
type GraphSpec struct {
	// Family names the generator; empty means the cell's "family" param
	// (default "cgnp").
	Family string
	// Fixed is layered under the cell parameters: the cell wins conflicts.
	Fixed Params
}

// Family is one registered graph generator.
type Family struct {
	// Name is the value of the "family" parameter selecting it.
	Name string
	// Params documents the parameters the builder reads (with defaults).
	Params string
	// Doc is a one-line description.
	Doc string
	// Build constructs the instance. Families with no internal randomness
	// ignore the seed.
	Build func(p Params, seed int64) *graph.Graph
}

// instanceSeed returns the seed a generator should use: the pinned
// "iseed" parameter when present (experiments replaying a fixed instance),
// the run seed otherwise (sweeps exploring fresh instances per replicate).
func instanceSeed(p Params, seed int64) int64 {
	return int64(p.Int("iseed", int(seed)))
}

var families = map[string]*Family{}

func registerFamily(f *Family) {
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("scenario: graph family %q registered twice", f.Name))
	}
	families[f.Name] = f
}

// Families returns every registered graph family sorted by name.
func Families() []*Family {
	names := make([]string, 0, len(families))
	for n := range families {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Family, len(names))
	for i, n := range names {
		out[i] = families[n]
	}
	return out
}

func init() {
	for _, f := range []*Family{
		{"gnp", "n=32, p=0.2", "Erdős–Rényi G(n,p)", func(p Params, seed int64) *graph.Graph {
			return gen.GNP(p.Int("n", 32), p.Float("p", 0.2), instanceSeed(p, seed))
		}},
		{"cgnp", "n=32, p=0.2", "G(n,p) conditioned on connectivity (spanning-tree backbone)", func(p Params, seed int64) *graph.Graph {
			return gen.ConnectedGNP(p.Int("n", 32), p.Float("p", 0.2), instanceSeed(p, seed))
		}},
		{"clique", "n=16", "complete graph K_n", func(p Params, seed int64) *graph.Graph {
			return gen.Clique(p.Int("n", 16))
		}},
		{"bipartite", "a=8, b=8", "complete bipartite K_{a,b} (the 2-spanner worst case)", func(p Params, seed int64) *graph.Graph {
			return gen.CompleteBipartite(p.Int("a", 8), p.Int("b", 8))
		}},
		{"random-bipartite", "a=8, b=8, p=0.3", "random bipartite graph", func(p Params, seed int64) *graph.Graph {
			return gen.RandomBipartite(p.Int("a", 8), p.Int("b", 8), p.Float("p", 0.3), instanceSeed(p, seed))
		}},
		{"hypercube", "d=4", "d-dimensional hypercube (the synchronizer topology)", func(p Params, seed int64) *graph.Graph {
			return gen.Hypercube(p.Int("d", 4))
		}},
		{"grid", "rows=6, cols=6", "rows × cols grid", func(p Params, seed int64) *graph.Graph {
			return gen.Grid(p.Int("rows", 6), p.Int("cols", 6))
		}},
		{"path", "n=16", "path graph", func(p Params, seed int64) *graph.Graph {
			return gen.Path(p.Int("n", 16))
		}},
		{"cycle", "n=16", "cycle graph", func(p Params, seed int64) *graph.Graph {
			return gen.Cycle(p.Int("n", 16))
		}},
		{"star", "n=16", "star graph (center 0)", func(p Params, seed int64) *graph.Graph {
			return gen.Star(p.Int("n", 16))
		}},
		{"planted-stars", "c=4, s=8, q=0.4", "c hubs with s satellites each, satellites wired w.p. q", func(p Params, seed int64) *graph.Graph {
			return gen.PlantedStars(p.Int("c", 4), p.Int("s", 8), p.Float("q", 0.4), instanceSeed(p, seed))
		}},
		{"geometric", "n=64, radius=0.25", "random geometric graph in the unit square", func(p Params, seed int64) *graph.Graph {
			return gen.Geometric(p.Int("n", 64), p.Float("radius", 0.25), instanceSeed(p, seed))
		}},
		{"pref-attach", "n=64, m=2", "Barabási–Albert preferential attachment", func(p Params, seed int64) *graph.Graph {
			return gen.PreferentialAttachment(p.Int("n", 64), p.Int("m", 2), instanceSeed(p, seed))
		}},
		{"caterpillar", "spine=8, legs=3", "caterpillar tree (its own 2-spanner; a no-op workload)", func(p Params, seed int64) *graph.Graph {
			return gen.Caterpillar(p.Int("spine", 8), p.Int("legs", 3))
		}},
		{"lollipop", "c=3, s=6, bridge=3", "chain of c s-cliques joined by bridge-length paths", func(p Params, seed int64) *graph.Graph {
			return gen.LollipopChain(p.Int("c", 3), p.Int("s", 6), p.Int("bridge", 3))
		}},
		{"expander", "n=64, chords=2", "ring with random chords (expander-style, no dense stars)", func(p Params, seed int64) *graph.Graph {
			return gen.RingWithChords(p.Int("n", 64), p.Int("chords", 2), instanceSeed(p, seed))
		}},
		{"sbm", "n=64, comm=4, pin=0.5, pout=0.02", "stochastic block model with planted communities", func(p Params, seed int64) *graph.Graph {
			return gen.SBM(p.Int("n", 64), p.Int("comm", 4), p.Float("pin", 0.5), p.Float("pout", 0.02), instanceSeed(p, seed))
		}},
		{"wgeom", "n=64, radius=0.25", "geometric graph weighted by Euclidean edge length", func(p Params, seed int64) *graph.Graph {
			return gen.WeightedGeometric(p.Int("n", 64), p.Float("radius", 0.25), instanceSeed(p, seed))
		}},
	} {
		registerFamily(f)
	}
}

// Build resolves and constructs the instance for one cell. The optional
// "whi" parameter (with "wlo", default 1) layers uniform random weights in
// [wlo, whi] over any unweighted family, exercising the weighted
// algorithms on arbitrary topologies.
func (gs GraphSpec) Build(p Params, seed int64) (*graph.Graph, error) {
	merged := gs.Fixed.Merge(p)
	name := gs.Family
	if name == "" {
		name = merged.Str("family", "cgnp")
	}
	f, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown graph family %q", name)
	}
	g := f.Build(merged, seed)
	if whi := merged.Float("whi", 0); whi > 0 {
		gen.RandomWeights(g, merged.Float("wlo", 1), whi, instanceSeed(merged, seed)+0x5eed)
	}
	return g, nil
}

// BuildDigraph resolves a directed instance: family "rdg" is a random
// simple digraph (n, p), anything else is interpreted as an undirected
// family oriented uniformly at random with a "twoway" fraction of
// bidirected edges.
func (gs GraphSpec) BuildDigraph(p Params, seed int64) (*graph.Digraph, error) {
	merged := gs.Fixed.Merge(p)
	name := gs.Family
	if name == "" {
		name = merged.Str("family", "rdg")
	}
	if name == "rdg" {
		return gen.RandomDigraph(merged.Int("n", 24), merged.Float("p", 0.2), instanceSeed(merged, seed)), nil
	}
	under := gs
	under.Family = name
	g, err := under.Build(merged, seed)
	if err != nil {
		return nil, err
	}
	return gen.OrientRandomly(g, merged.Float("twoway", 0.5), instanceSeed(merged, seed)+0x0d1), nil
}
