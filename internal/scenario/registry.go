// Package scenario is the declarative experiment layer: every workload the
// repo can run — the paper's 2-spanner variants, CONGEST MDS, the LOCAL
// (1+ε) scheme, baselines, lower-bound constructions — is a named,
// self-describing Scenario in a global registry. A Scenario couples a
// graph source (GraphSpec), an algorithm, a model budget (LOCAL vs
// CONGEST bandwidth), and verification + metric extraction into one
// function of (Params, seed).
//
// The registry serves two consumers: cmd/sweep runs any scenario over an
// arbitrary parameter grid via internal/sweep, and cmd/experiments replays
// the paper's E1–E15 reproduction suite, each experiment being nothing
// more than a registered scenario with default cases. Adding a workload is
// adding a Register call — no driver code changes.
//
// Every scenario that executes on the internal/dist engine (the spanner
// variants, MDS, and the E1–E15 experiments built on them) honors the
// shared "engine" parameter ("auto", "barrier", "event", "step"),
// selecting which scheduling strategy executes the protocol: the classic
// barrier engine, the event-driven scheduler that only wakes active
// vertices, or the goroutine-free state-machine engine. Sequential and
// analytic scenarios ignore it. The engines are bit-identical by the
// dist package's determinism contract, so "engine" is an execution-only
// parameter: it is excluded from instance identity (Params.InstanceKey),
// and sweeping engine={barrier,event,step} compares wall-clock cost over
// identical instances.
package scenario

import (
	"fmt"
	"sort"
)

// Scenario is one registered workload.
type Scenario struct {
	// Name is the registry key, e.g. "twospanner" or "e6".
	Name string
	// Title is a one-line human description.
	Title string
	// Doc is the longer paper-context paragraph (what is measured, what
	// the paper predicts); it feeds the generated EXPERIMENTS.md.
	Doc string
	// Model names the computation model exercised: "LOCAL", "CONGEST",
	// "two-party", "analytic", or "sequential".
	Model string
	// Defaults are parameter values assumed by Run when a cell does not
	// set them; they also document the scenario's parameter surface.
	Defaults Params
	// Grid is the default sweep (nil when Cases is set or the scenario is
	// single-cell). cmd/sweep overrides it with -grid.
	Grid Grid
	// Cases is an explicit default cell list for workloads whose natural
	// sub-cases are ragged rather than a cartesian product (most of the
	// paper experiments). When set, it takes precedence over Grid.
	Cases []Params
	// Replicates is the default number of seed replicates per cell
	// (0 means 1).
	Replicates int
	// Run executes one cell: build the instance, run the algorithm,
	// verify the output, extract metrics. A non-nil error means the cell
	// FAILED verification (not merely measured something slow) — sweeps
	// record it and drivers exit non-zero. cancel, when non-nil, asks the
	// run to abort promptly once closed (dist-engine scenarios plumb it
	// into dist.Config.Cancel; sequential and analytic scenarios may
	// ignore it): it is how sweep timeouts stop the losing run instead of
	// abandoning its goroutine mid-flight.
	Run func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error)
}

// DefaultCells returns the scenario's default cell list: Cases when set,
// otherwise the expansion of Grid (a single empty cell when both are nil).
func (s *Scenario) DefaultCells() []Params {
	if len(s.Cases) > 0 {
		cells := make([]Params, len(s.Cases))
		for i, c := range s.Cases {
			cells[i] = c.Merge(nil)
		}
		return cells
	}
	return s.Grid.Cells()
}

// EffectiveReplicates returns the default replicate count, at least 1.
func (s *Scenario) EffectiveReplicates() int {
	if s.Replicates < 1 {
		return 1
	}
	return s.Replicates
}

var (
	registry = map[string]*Scenario{}
	order    []string
)

// Register adds s to the registry. Duplicate or empty names panic: the
// registry is assembled from init functions, so either is a code bug.
func Register(s *Scenario) {
	if s.Name == "" {
		panic("scenario: Register with empty name")
	}
	if s.Run == nil {
		panic(fmt.Sprintf("scenario: %q has no Run function", s.Name))
	}
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("scenario: %q registered twice", s.Name))
	}
	registry[s.Name] = s
	order = append(order, s.Name)
}

// Get returns the named scenario.
func Get(name string) (*Scenario, bool) {
	s, ok := registry[name]
	return s, ok
}

// All returns every registered scenario in registration order — for the
// experiment suite that order is the E1..E15 presentation order.
func All() []*Scenario {
	out := make([]*Scenario, 0, len(order))
	for _, name := range order {
		out = append(out, registry[name])
	}
	return out
}

// Names returns the registered names sorted alphabetically (the stable
// order for -list style output).
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// boolMetric converts a verification outcome into a 0/1 metric so it
// aggregates like everything else (a cell's min over replicates is 1 iff
// every replicate passed).
func boolMetric(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}
