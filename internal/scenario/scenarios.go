package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"distspanner/internal/baseline"
	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/exact"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/localmodel"
	"distspanner/internal/mds"
	"distspanner/internal/span"
	"distspanner/internal/trace"
)

// graphMetrics are the instance-shape observations shared by every
// graph-algorithm scenario.
func graphMetrics(g *graph.Graph, m Metrics) Metrics {
	m["n"] = float64(g.N())
	m["m"] = float64(g.M())
	m["max_degree"] = float64(g.MaxDegree())
	return m
}

// statsMetrics are the engine observations shared by every simulated run.
// The activity columns expose the per-run activity profile: active_steps
// is the total number of vertex steps over all rounds (an all-spinning
// protocol has active_steps ≈ rounds × n), parked_steps the total parked
// vertex-rounds, and mean_active / mean_parked their per-round means —
// the quantities the activity-aware algorithm ports shrink.
func statsMetrics(s dist.Stats, m Metrics) Metrics {
	m["rounds"] = float64(s.Rounds)
	m["messages"] = float64(s.Messages)
	m["total_bits"] = float64(s.TotalBits)
	m["max_msg_bits"] = float64(s.MaxMessageBits)
	m["max_edge_round_bits"] = float64(s.MaxEdgeRoundBits)
	m["active_steps"] = float64(s.ActiveSteps)
	m["parked_steps"] = float64(s.ParkedSteps)
	m["peak_active"] = float64(s.PeakActive)
	if s.Rounds > 0 {
		m["mean_active"] = float64(s.ActiveSteps) / float64(s.Rounds)
		m["mean_parked"] = float64(s.ParkedSteps) / float64(s.Rounds)
	}
	return m
}

// spannerReference computes the reference cost the approximation ratio is
// reported against, selected by the "ref" parameter: "lb" (the n-1 /
// weight lower bound; cheap, always sound), "kp" (sequential
// Kortsarz–Peleg), "greedy" (sequential greedy k-spanner), or "exact"
// (branch-and-bound optimum; small instances only).
func spannerReference(g *graph.Graph, ref string, k int) (float64, error) {
	switch ref {
	case "", "lb":
		return float64(span.SpannerOPTLowerBound(g)), nil
	case "kp":
		return span.Cost(g, baseline.KortsarzPeleg(g)), nil
	case "greedy":
		return span.Cost(g, baseline.GreedyKSpanner(g, k)), nil
	case "exact":
		_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: k})
		return opt, err
	default:
		return 0, fmt.Errorf("scenario: unknown ref %q (want lb, kp, greedy, exact)", ref)
	}
}

// verifySpanner folds validity and stretch extraction into metrics,
// returning an error (the sweep-level failure signal) when H is not a
// k-spanner.
func verifySpanner(g *graph.Graph, H *graph.EdgeSet, k int, m Metrics) error {
	if !span.IsKSpanner(g, H, k) {
		m["valid"] = 0
		return fmt.Errorf("output is not a %d-spanner", k)
	}
	m["valid"] = 1
	st := span.Stretch(g, H, k)
	m["stretch_max"] = float64(st.Max)
	m["stretch_mean"] = st.Mean
	return nil
}

// execMode parses the shared "engine" parameter every simulated scenario
// honors: the engine's scheduling strategy ("auto", "barrier", "event",
// "step"). Results are mode-independent by the engine's determinism
// contract, so sweeping engine={barrier,event,step} is a pure wall-clock
// comparison — and a cross-mode equivalence check, since any metric
// difference is an engine bug (crossmode_test.go asserts exactly that).
func execMode(p Params) dist.Mode {
	m, err := dist.ParseMode(p.Str("engine", "auto"))
	if err != nil {
		panic(fmt.Sprintf("scenario: %v", err))
	}
	return m
}

// transportShards parses the shared execution-only "transport"
// parameter: "local" (the default) runs the dist engine in-process;
// "chanK" (e.g. "chan4") runs the protocol distributed across K shard
// workers over the in-process channel transport (dist.Config.Shards).
// Like "engine", the parameter selects how a run executes, not what
// instance it runs on: results are transport-independent by the
// transport conformance contract, and the parameter is excluded from
// InstanceKey. The sharded runner is built on the step engine, so a
// non-local transport composes with engine=auto or engine=step only.
func transportShards(p Params) int {
	t := p.Str("transport", "local")
	if t == "local" {
		return 0
	}
	if rest, ok := strings.CutPrefix(t, "chan"); ok {
		if k, err := strconv.Atoi(rest); err == nil && k > 0 {
			return k
		}
	}
	panic(fmt.Sprintf("scenario: unknown transport %q (want local or chanK)", t))
}

// coreOptions builds the shared core options plus the run's timing
// recorder (nil unless the execution-only "timing" parameter is set —
// see timingTracer). The recorder, when present, is already installed
// as the options' Tracer; the caller folds it into the metrics with
// timingMetrics after the run.
func coreOptions(p Params, seed int64, cancel <-chan struct{}) (core.Options, *trace.TimingRecorder) {
	opts := core.Options{
		Seed:            seed,
		ExecMode:        execMode(p),
		VoteDenominator: p.Int("votden", 0),
		FreshStars:      p.Bool("fresh", false),
		NoRounding:      p.Bool("noround", false),
		Shards:          transportShards(p),
		Cancel:          cancel,
		RoundHook:       roundObserver(p),
	}
	tim := timingTracer(p)
	if tim != nil {
		opts.Tracer = tim
	}
	return opts, tim
}

// timingTracer parses the shared execution-only "timing" parameter: when
// true, the run records its wall-clock timing channel (per-round wall
// time and scheduler-phase split) through a trace.TimingRecorder and
// surfaces it via timingMetrics. Like "engine", the parameter selects
// how a run executes, not what instance it runs on: it is excluded from
// InstanceKey, and the timing columns are nondeterministic wall-clock
// telemetry — reports meant to be byte-reproducible should leave it off
// (the default).
func timingTracer(p Params) *trace.TimingRecorder {
	if !p.Bool("timing", false) {
		return nil
	}
	return &trace.TimingRecorder{}
}

// timingMetrics folds a run's recorded timing channel into the metrics:
// round_wall_ns_mean / round_wall_ns_max (per-round wall time) and the
// time_share_{step,route,sync} scheduler-phase fractions. A nil recorder
// (timing off) adds nothing, keeping default reports wall-clock-free.
func timingMetrics(tr *trace.TimingRecorder, m Metrics) Metrics {
	if tr == nil {
		return m
	}
	s := trace.SummarizeTimings(tr.Timings())
	m["round_wall_ns_mean"] = s.WallMeanNs
	m["round_wall_ns_max"] = float64(s.WallMaxNs)
	m["time_share_step"] = s.StepShare
	m["time_share_route"] = s.RouteShare
	m["time_share_sync"] = s.SyncShare
	return m
}

func init() {
	Register(&Scenario{
		Name:  "twospanner",
		Title: "Theorem 1.3 distributed minimum 2-spanner (LOCAL)",
		Doc: "Runs the paper's core distributed 2-spanner algorithm on any graph family, " +
			"verifies the output is a 2-spanner with zero Claim 4.4 fallbacks, and reports " +
			"size, cost, approximation ratio against the chosen reference (param ref: lb, kp, " +
			"greedy, exact), iterations, rounds, and metered bits. Paper guarantee: ratio " +
			"O(log m/n) always, O(log n · log Δ) rounds w.h.p.",
		Model:      "LOCAL",
		Defaults:   Params{"family": "cgnp", "n": "48", "p": "0.15", "ref": "lb"},
		Grid:       Grid{"n": {"32", "64"}, "p": {"0.1", "0.2"}},
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			opts, tim := coreOptions(p, seed, cancel)
			res, err := core.TwoSpanner(g, opts)
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			statsMetrics(res.Stats, m)
			timingMetrics(tim, m)
			m["size"] = float64(res.Spanner.Len())
			m["cost"] = res.Cost
			m["iterations"] = float64(res.Iterations)
			m["fallbacks"] = float64(res.Fallbacks)
			m["log_bound"] = math.Log2(math.Max(2, float64(g.M())/float64(g.N()))) + 1
			if err := verifySpanner(g, res.Spanner, 2, m); err != nil {
				return m, err
			}
			if res.Fallbacks != 0 {
				return m, fmt.Errorf("Claim 4.4 fallback taken %d times", res.Fallbacks)
			}
			ref, err := spannerReference(g, p.Str("ref", "lb"), 2)
			if err != nil {
				return m, err
			}
			m["ref_cost"] = ref
			if ref > 0 {
				m["ratio"] = res.Cost / ref
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "twospanner-congest",
		Title: "Section 1.3 CONGEST compilation of the 2-spanner algorithm",
		Doc: "Runs the CONGEST variant (messages fragmented into O(log n)-bit chunks, " +
			"bandwidth enforced by the engine) and reports the Θ(Δ) subround overhead " +
			"alongside the LOCAL metrics. A bandwidth violation aborts the run, so CONGEST " +
			"legality is a checked property of every cell.",
		Model:      "CONGEST",
		Defaults:   Params{"family": "cgnp", "n": "24", "p": "0.25"},
		Grid:       Grid{"n": {"16", "24"}},
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			opts, tim := coreOptions(p, seed, cancel)
			res, err := core.TwoSpannerCongest(g, opts)
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			statsMetrics(res.Stats, m)
			timingMetrics(tim, m)
			m["size"] = float64(res.Spanner.Len())
			m["iterations"] = float64(res.Iterations)
			m["subrounds"] = float64(res.Subrounds)
			m["bandwidth"] = float64(res.Bandwidth)
			m["congest_ok"] = boolMetric(res.Stats.CongestCompatible(res.Bandwidth))
			if err := verifySpanner(g, res.Spanner, 2, m); err != nil {
				return m, err
			}
			if !res.Stats.CongestCompatible(res.Bandwidth) {
				return m, fmt.Errorf("bandwidth exceeded: %d > %d", res.Stats.MaxEdgeRoundBits, res.Bandwidth)
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "twospanner-directed",
		Title: "Theorem 4.9 directed 2-spanner",
		Doc: "Runs the directed variant on a random digraph (family rdg: n, p) or any " +
			"undirected family oriented at random (family=<name>, twoway=<frac>), verifying " +
			"the directed 2-spanner property. Paper guarantee: same O(log m/n) ratio and " +
			"O(log n · log Δ) rounds as the undirected algorithm.",
		Model:      "LOCAL",
		Defaults:   Params{"family": "rdg", "n": "24", "p": "0.2"},
		Grid:       Grid{"n": {"16", "24"}, "p": {"0.15", "0.25"}},
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			d, err := GraphSpec{}.BuildDigraph(p, seed)
			if err != nil {
				return nil, err
			}
			opts, tim := coreOptions(p, seed, cancel)
			res, err := core.DirectedTwoSpanner(d, opts)
			if err != nil {
				return nil, err
			}
			m := Metrics{"n": float64(d.N()), "m": float64(d.M())}
			statsMetrics(res.Stats, m)
			timingMetrics(tim, m)
			m["size"] = float64(res.Spanner.Len())
			m["iterations"] = float64(res.Iterations)
			if !span.IsDirectedKSpanner(d, res.Spanner, 2) {
				m["valid"] = 0
				return m, fmt.Errorf("output is not a directed 2-spanner")
			}
			m["valid"] = 1
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "twospanner-weighted",
		Title: "Theorem 4.12 weighted 2-spanner",
		Doc: "Runs the weighted algorithm on a weighted family (wgeom, or any family with " +
			"whi/wlo weight layering) and reports cost against the reference plus the " +
			"O(log Δ) bound. Paper guarantee: ratio O(log Δ), rounds O(log n · log(ΔW)).",
		Model:      "LOCAL",
		Defaults:   Params{"family": "cgnp", "n": "30", "p": "0.25", "whi": "16", "ref": "kp"},
		Grid:       Grid{"whi": {"2", "16", "128"}},
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			opts, tim := coreOptions(p, seed, cancel)
			res, err := core.TwoSpanner(g, opts)
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			statsMetrics(res.Stats, m)
			timingMetrics(tim, m)
			m["size"] = float64(res.Spanner.Len())
			m["cost"] = res.Cost
			m["iterations"] = float64(res.Iterations)
			m["log_delta_bound"] = math.Log2(float64(g.MaxDegree())) + 1
			if err := verifySpanner(g, res.Spanner, 2, m); err != nil {
				return m, err
			}
			ref, err := spannerReference(g, p.Str("ref", "kp"), 2)
			if err != nil {
				return m, err
			}
			m["ref_cost"] = ref
			if ref > 0 {
				m["ratio"] = res.Cost / ref
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "twospanner-cs",
		Title: "Theorem 4.15 client-server 2-spanner",
		Doc: "Splits the edges into client and server sets (params pc, ps), runs the " +
			"client-server algorithm, and checks every coverable client edge is spanned by " +
			"server edges. Paper guarantee: ratio O(min{log(|C|/|V(C)|), log Δ_S}).",
		Model:      "LOCAL",
		Defaults:   Params{"family": "cgnp", "n": "30", "p": "0.25", "pc": "0.6", "ps": "0.7"},
		Grid:       Grid{"pc": {"0.3", "0.6", "0.9"}},
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			clients, servers := gen.ClientServerSplit(g, p.Float("pc", 0.6), p.Float("ps", 0.7), instanceSeed(p, seed)+0xc5)
			opts, tim := coreOptions(p, seed, cancel)
			res, err := core.ClientServerTwoSpanner(g, clients, servers, opts)
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			statsMetrics(res.Stats, m)
			timingMetrics(tim, m)
			m["clients"] = float64(clients.Len())
			m["servers"] = float64(servers.Len())
			m["client_vertices"] = float64(span.ClientVertexCount(g, clients))
			m["size"] = float64(res.Spanner.Len())
			m["opt_lb"] = span.ClientServerOPTLowerBound(g, clients)
			if !span.ClientServerValid(g, clients, servers, res.Spanner, 2) {
				m["valid"] = 0
				return m, fmt.Errorf("client-server solution invalid")
			}
			m["valid"] = 1
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "mds",
		Title: "Theorem 5.1 CONGEST minimum dominating set",
		Doc: "Runs the CONGEST MDS algorithm (bandwidth always enforced) and reports the " +
			"dominating-set size against the greedy reference (param ref: greedy or exact) " +
			"and the ln Δ + 1 bound. Paper guarantee: O(log Δ) ratio always, " +
			"O(log n · log Δ) rounds w.h.p., O(log n)-bit messages.",
		Model:      "CONGEST",
		Defaults:   Params{"family": "cgnp", "n": "24", "p": "0.2", "ref": "greedy"},
		Grid:       Grid{"n": {"16", "24", "32"}},
		Replicates: 3,
		Run: func(p Params, seed int64, cancel <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			mopts := mds.Options{Seed: seed, Bandwidth: p.Int("bandwidth", 0), ExecMode: execMode(p), Shards: transportShards(p), Cancel: cancel, RoundHook: roundObserver(p)}
			tim := timingTracer(p)
			if tim != nil {
				mopts.Tracer = tim
			}
			res, err := mds.Run(g, mopts)
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			statsMetrics(res.Stats, m)
			timingMetrics(tim, m)
			m["size"] = float64(len(res.DominatingSet))
			m["iterations"] = float64(res.Iterations)
			m["ln_delta_bound"] = math.Log(float64(g.MaxDegree())) + 1
			var ref float64
			switch r := p.Str("ref", "greedy"); r {
			case "greedy":
				ref = float64(len(baseline.GreedyMDS(g)))
			case "exact":
				ref = float64(len(exact.MinDominatingSet(g)))
			default:
				return m, fmt.Errorf("scenario: unknown ref %q (want greedy, exact)", r)
			}
			m["ref_size"] = ref
			if ref > 0 {
				m["ratio"] = m["size"] / ref
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "baswanasen",
		Title: "Baswana–Sen (2k-1)-spanner baseline",
		Doc: "The k-round undirected baseline: builds a (2k-1)-spanner of expected size " +
			"O(k · n^{1+1/k}), i.e. an O(n^{1/k})-approximation of the minimum (2k-1)-spanner, " +
			"the construction the paper's directed lower bounds separate against.",
		Model:      "CONGEST",
		Defaults:   Params{"family": "cgnp", "n": "100", "p": "0.3", "k": "3"},
		Grid:       Grid{"n": {"100", "200"}, "k": {"2", "3", "4"}},
		Replicates: 5,
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			k := p.Int("k", 3)
			res := baseline.BaswanaSen(g, k, seed)
			m := graphMetrics(g, Metrics{})
			m["k"] = float64(k)
			m["stretch"] = float64(res.Stretch)
			m["rounds"] = float64(res.Rounds)
			m["size"] = float64(res.Spanner.Len())
			m["size_bound"] = 4 * float64(k) * math.Pow(float64(g.N()), 1+1/float64(k))
			m["ratio_lb"] = float64(res.Spanner.Len()) / math.Max(1, float64(g.N()-1))
			if !span.IsKSpanner(g, res.Spanner, res.Stretch) {
				m["valid"] = 0
				return m, fmt.Errorf("output is not a %d-spanner", res.Stretch)
			}
			m["valid"] = 1
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "kortsarz-peleg",
		Title: "Kortsarz–Peleg sequential 2-spanner reference",
		Doc: "The classical sequential O(log m/n)-approximation the distributed algorithm " +
			"matches; used as the reference implementation in ratio comparisons.",
		Model:      "sequential",
		Defaults:   Params{"family": "cgnp", "n": "48", "p": "0.15"},
		Grid:       Grid{"n": {"32", "64"}},
		Replicates: 3,
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			H := baseline.KortsarzPeleg(g)
			m := graphMetrics(g, Metrics{})
			m["size"] = float64(H.Len())
			m["cost"] = span.Cost(g, H)
			if err := verifySpanner(g, H, 2, m); err != nil {
				return m, err
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "greedy-spanner",
		Title: "Greedy k-spanner reference",
		Doc: "The sequential greedy construction (add an edge iff not already k-spanned): " +
			"the girth-based size-optimal reference for stretch parameters beyond 2 " +
			"(param k).",
		Model:      "sequential",
		Defaults:   Params{"family": "cgnp", "n": "48", "p": "0.15", "k": "3"},
		Grid:       Grid{"k": {"2", "3", "5"}},
		Replicates: 3,
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			k := p.Int("k", 3)
			H := baseline.GreedyKSpanner(g, k)
			m := graphMetrics(g, Metrics{})
			m["k"] = float64(k)
			m["size"] = float64(H.Len())
			m["cost"] = span.Cost(g, H)
			if err := verifySpanner(g, H, k, m); err != nil {
				return m, err
			}
			return m, nil
		},
	})

	Register(&Scenario{
		Name:  "local-epsilon",
		Title: "Theorem 1.2 LOCAL (1+ε)-approximation",
		Doc: "Runs the LOCAL scheme (network decomposition + exact local solves) and checks " +
			"cost <= (1+ε)·OPT against the branch-and-bound optimum — exact verification, so " +
			"keep n small. Params k, eps. Paper guarantee: poly(log n / ε) rounds.",
		Model:      "LOCAL",
		Defaults:   Params{"family": "cgnp", "n": "10", "p": "0.35", "k": "2", "eps": "0.5"},
		Grid:       Grid{"eps": {"0.25", "0.5", "1.0"}},
		Replicates: 2,
		Run: func(p Params, seed int64, _ <-chan struct{}) (Metrics, error) {
			g, err := GraphSpec{}.Build(p, seed)
			if err != nil {
				return nil, err
			}
			k := p.Int("k", 2)
			eps := p.Float("eps", 0.5)
			res, err := localmodel.EpsilonSpanner(g, localmodel.Options{K: k, Eps: eps, Seed: seed})
			if err != nil {
				return nil, err
			}
			m := graphMetrics(g, Metrics{})
			m["k"] = float64(k)
			m["eps"] = eps
			m["cost"] = res.Cost
			m["colors"] = float64(res.Colors)
			m["radius"] = float64(res.Radius)
			m["est_rounds"] = float64(res.EstimatedRounds)
			if err := verifySpanner(g, res.Spanner, k, m); err != nil {
				return m, err
			}
			_, opt, err := exact.MinSpanner(g, exact.SpannerOptions{K: k})
			if err != nil {
				return m, err
			}
			m["opt"] = opt
			m["bound"] = (1 + eps) * opt
			if res.Cost > (1+eps)*opt+1e-9 {
				return m, fmt.Errorf("cost %.4f exceeds (1+ε)·OPT = %.4f", res.Cost, (1+eps)*opt)
			}
			return m, nil
		},
	})
}
