// Package distrun names the algorithm families runnable on the
// distributed transport. A family couples a worker-side shard program
// with the engine parameters (bandwidth budget, enforcement) the run
// needs; everything an instance requires beyond the base graph —
// orientations, edge-set splits, weights — is derived deterministically
// from (graph, seed), so every worker reconstructs the same instance
// from its SetupFrame and the in-process reference run is comparable
// bit-for-bit. The algorithm code itself is transport-oblivious: the
// same factories run under RunMachines and under ServeShard.
package distrun

import (
	"fmt"

	"distspanner/internal/core"
	"distspanner/internal/dist"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/mds"
)

// Family is one distributed-runnable algorithm family.
type Family struct {
	// Name is the registry key, carried as SetupFrame.Algo.
	Name string
	// Bandwidth returns the per-edge per-round bit budget for an
	// n-vertex run; nil means unmetered.
	Bandwidth func(n int) int
	// Enforce aborts the run on a budget violation (CONGEST families).
	Enforce bool
	// Program builds the shard program for the instance (g, seed).
	Program func(g *graph.Graph, seed int64) (dist.ShardProgram, error)
}

// Aux-input derivation constants. Fixed so that (family, g, seed)
// fully determines the instance on every worker and in every reference
// run.
const (
	directedTwoWay = 0.3 // gen.OrientRandomly two-way probability
	csClientP      = 0.5 // gen.ClientServerSplit client probability
	csServerP      = 0.8 // gen.ClientServerSplit server probability
	weightLo       = 1   // gen.RandomWeights range
	weightHi       = 8
)

var families = []Family{
	{
		Name: "twospanner",
		Program: func(g *graph.Graph, seed int64) (dist.ShardProgram, error) {
			return core.TwoSpannerProgram(g, core.Options{}), nil
		},
	},
	{
		Name:      "congest",
		Bandwidth: core.CongestBandwidth,
		Enforce:   true,
		Program: func(g *graph.Graph, seed int64) (dist.ShardProgram, error) {
			return core.TwoSpannerCongestProgram(g, core.Options{})
		},
	},
	{
		Name: "directed",
		Program: func(g *graph.Graph, seed int64) (dist.ShardProgram, error) {
			d := gen.OrientRandomly(g, directedTwoWay, seed)
			return core.DirectedTwoSpannerProgram(d, core.Options{}), nil
		},
	},
	{
		Name: "cs",
		Program: func(g *graph.Graph, seed int64) (dist.ShardProgram, error) {
			clients, servers := gen.ClientServerSplit(g, csClientP, csServerP, seed)
			return core.ClientServerTwoSpannerProgram(g, clients, servers, core.Options{})
		},
	},
	{
		Name: "weighted",
		Program: func(g *graph.Graph, seed int64) (dist.ShardProgram, error) {
			wg := g.Clone()
			gen.RandomWeights(wg, weightLo, weightHi, seed)
			prog := core.TwoSpannerProgram(wg, core.Options{})
			// The engine may as well run on the weighted clone: identical
			// topology, and the workers' instance is self-contained.
			prog.Graph = wg
			return prog, nil
		},
	},
	{
		Name:      "mds",
		Bandwidth: mds.DefaultBandwidth,
		Enforce:   true,
		Program: func(g *graph.Graph, seed int64) (dist.ShardProgram, error) {
			return mds.Program(g, mds.Options{}), nil
		},
	},
}

// Names lists the registered families in registration order.
func Names() []string {
	out := make([]string, len(families))
	for i, f := range families {
		out[i] = f.Name
	}
	return out
}

// Get looks a family up by name.
func Get(name string) (Family, bool) {
	for _, f := range families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Resolver maps SetupFrame.Algo names through the registry — the
// ProgramResolver worker processes (cmd/node) serve with.
func Resolver() dist.ProgramResolver {
	return func(algo string, g *graph.Graph, seed int64) (dist.ShardProgram, error) {
		f, ok := Get(algo)
		if !ok {
			return dist.ShardProgram{}, fmt.Errorf("distrun: unknown family %q", algo)
		}
		return f.Program(g, seed)
	}
}

func (f Family) bandwidth(n int) int {
	if f.Bandwidth == nil {
		return 0
	}
	return f.Bandwidth(n)
}

// CoordConfig builds the coordinator configuration for one distributed
// run of the family on (g, seed): the family's bandwidth/enforcement
// plus output collection.
func (f Family) CoordConfig(g *graph.Graph, seed int64) dist.CoordConfig {
	return dist.CoordConfig{
		Graph: g, Seed: seed, Algo: f.Name,
		Bandwidth: f.bandwidth(g.N()), Enforce: f.Enforce,
		Collect: true,
	}
}

// RunLocal executes the family in-process on the step engine — the
// reference a conformant transport must reproduce bit-for-bit. It
// returns the per-vertex outputs (the same shape CoordResult.Outputs
// has) and the run's Stats.
func (f Family) RunLocal(g *graph.Graph, seed int64, tracer dist.Tracer) ([][]int, *dist.Stats, error) {
	prog, err := f.Program(g, seed)
	if err != nil {
		return nil, nil, err
	}
	engineG := g
	if prog.Graph != nil {
		engineG = prog.Graph
	}
	stats, err := dist.RunMachines(dist.Config{
		Graph: engineG, Seed: seed, Mode: dist.ModeStep,
		Bandwidth: f.bandwidth(g.N()), Enforce: f.Enforce,
		Tracer: tracer,
	}, prog.Factory)
	if err != nil {
		return nil, nil, err
	}
	outs := make([][]int, g.N())
	if prog.Output != nil {
		for v := range outs {
			outs[v] = prog.Output(v)
		}
	}
	return outs, stats, nil
}
