package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"distspanner/internal/dist"
	"distspanner/internal/scenario"
)

// Result is the served result document. Its bytes are a deterministic
// function of the job: struct fields marshal in declaration order and
// both maps (Params, Metrics) marshal with sorted keys, so the cached
// body of the original miss is byte-identical to what a fresh
// computation of the same job would serialize — the property the e2e
// suite pins against a direct internal/scenario run.
type Result struct {
	Scenario string `json:"scenario"`
	Key      string `json:"key"`
	// GraphHash is the canonical content hash of the submitted inline
	// graph; absent for generator-spec jobs.
	GraphHash string `json:"graph_hash,omitempty"`
	Seed      int64  `json:"seed"`
	// Params is the merged instance cell (execution-only knobs removed:
	// two requests differing only in engine read back the same document).
	Params  scenario.Params  `json:"params"`
	Metrics scenario.Metrics `json:"metrics"`
}

// encodeResult renders the deterministic result document.
func encodeResult(job *Job, m scenario.Metrics) ([]byte, error) {
	return json.Marshal(Result{
		Scenario:  job.Scenario.Name,
		Key:       job.Key,
		GraphHash: job.GraphHash,
		Seed:      job.Seed,
		Params:    job.Params.InstanceParams(),
		Metrics:   m,
	})
}

// runJob is the shared serve path: cache, then coalesced execution on
// the pool. status is "hit", "miss", or "coalesced"; overlay, when
// non-nil, is merged into the cell only for the execution this caller
// launches (the stream handler's observer token rides here — it is
// execution-only, so it never reaches the key or the document).
func (s *Server) runJob(job *Job, abort <-chan struct{}, overlay scenario.Params) (body []byte, status string, err error) {
	if body, ok := s.cache.Get(job.Key); ok {
		return body, "hit", nil
	}
	body, shared, err := s.flights.Do(job.Key, abort, func(cancel <-chan struct{}) ([]byte, error) {
		params := job.Params
		if overlay != nil {
			params = params.Merge(overlay)
		}
		m, runErr := s.pool.Run(job.Scenario, params, job.Seed, cancel)
		if runErr != nil {
			atomic.AddUint64(&s.runErrors, 1)
			return nil, runErr
		}
		b, encErr := encodeResult(job, m)
		if encErr != nil {
			return nil, encErr
		}
		s.cache.Put(job.Key, b)
		return b, nil
	})
	status = "miss"
	if shared {
		status = "coalesced"
	}
	return body, status, err
}

// decodeJob parses and normalizes the request body.
func (s *Server) decodeJob(w http.ResponseWriter, r *http.Request) *Job {
	var req JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reject(w, badRequest("invalid job body: %v", err))
		return nil
	}
	job, rerr := s.prepare(&req)
	if rerr != nil {
		s.reject(w, rerr)
		return nil
	}
	return job
}

// reject writes a pre-run 4xx and counts it.
func (s *Server) reject(w http.ResponseWriter, e *reqError) {
	atomic.AddUint64(&s.rejected, 1)
	writeJSON(w, e.status, map[string]string{"error": e.msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleRun serves POST /v1/run: one synchronous job. The cache outcome
// rides in the X-Spannerd-Cache header (hit | miss | coalesced) so the
// body stays byte-identical across hits and misses; X-Spannerd-Key
// echoes the cache key.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	job := s.decodeJob(w, r)
	if job == nil {
		return
	}
	body, status, err := s.runJob(job, r.Context().Done(), nil)
	if err == ErrAbandoned {
		return // client is gone; nothing to write
	}
	w.Header().Set("X-Spannerd-Cache", status)
	w.Header().Set("X-Spannerd-Key", job.Key)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]string{
			"error": err.Error(),
			"key":   job.Key,
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// roundEvent is the SSE rendering of one dist.RoundActivity snapshot.
type roundEvent struct {
	Round         int   `json:"round"`
	Active        int   `json:"active"`
	Parked        int   `json:"parked"`
	Senders       int   `json:"senders"`
	Delivered     int   `json:"delivered"`
	DeliveredBits int64 `json:"delivered_bits"`
}

// handleStream serves POST /v1/stream: the same job as /v1/run but as a
// server-sent-event stream — "round" events carrying the engine's live
// per-round activity curve (dist.Config.OnRound via the scenario
// layer's observer seam), then one terminal "result" or "error" event.
// A cache hit emits the result immediately; a coalesced follower joins
// an execution whose observer belongs to the leader, so it receives the
// terminal event only. The activity feed is telemetry: rounds are
// dropped rather than ever back-pressuring the engine, and the terminal
// event is authoritative.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.decodeJob(w, r)
	if job == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Spannerd-Key", job.Key)
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	if body, ok := s.cache.Get(job.Key); ok {
		writeEvent(w, flusher, "result", body)
		return
	}

	rounds := make(chan dist.RoundActivity, 256)
	token, release := scenario.RegisterObserver(func(act dist.RoundActivity) {
		select { // never block the engine; the feed is lossy by contract
		case rounds <- act:
		default:
		}
	})
	defer release()

	stop := make(chan struct{})
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for {
			select {
			case act := <-rounds:
				ev, _ := json.Marshal(roundEvent{
					Round: act.Round, Active: act.Active, Parked: act.Parked,
					Senders: act.Senders, Delivered: act.Delivered, DeliveredBits: act.DeliveredBits,
				})
				writeEvent(w, flusher, "round", ev)
			case <-stop:
				// Flush whatever the engine queued before the run
				// finished, so short runs still show their curve.
				for {
					select {
					case act := <-rounds:
						ev, _ := json.Marshal(roundEvent{
							Round: act.Round, Active: act.Active, Parked: act.Parked,
							Senders: act.Senders, Delivered: act.Delivered, DeliveredBits: act.DeliveredBits,
						})
						writeEvent(w, flusher, "round", ev)
					default:
						return
					}
				}
			}
		}
	}()

	body, _, err := s.runJob(job, r.Context().Done(), scenario.Params{"obs": token})
	close(stop)
	<-drained
	if err == ErrAbandoned {
		return
	}
	if err != nil {
		ev, _ := json.Marshal(map[string]string{"error": err.Error(), "key": job.Key})
		writeEvent(w, flusher, "error", ev)
		return
	}
	writeEvent(w, flusher, "result", body)
}

// writeEvent emits one SSE frame and flushes it.
func writeEvent(w http.ResponseWriter, flusher http.Flusher, name string, data []byte) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
	flusher.Flush()
}

// handleScenarios serves the catalog: every registered scenario and
// graph family, the service-side analogue of `sweep -list`.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	type scenarioDoc struct {
		Name       string          `json:"name"`
		Title      string          `json:"title"`
		Model      string          `json:"model"`
		Defaults   scenario.Params `json:"defaults,omitempty"`
		Replicates int             `json:"replicates,omitempty"`
	}
	type familyDoc struct {
		Name   string `json:"name"`
		Params string `json:"params"`
		Doc    string `json:"doc"`
	}
	var doc struct {
		Scenarios []scenarioDoc `json:"scenarios"`
		Families  []familyDoc   `json:"families"`
	}
	for _, sc := range scenario.All() {
		doc.Scenarios = append(doc.Scenarios, scenarioDoc{
			Name: sc.Name, Title: sc.Title, Model: sc.Model,
			Defaults: sc.Defaults, Replicates: sc.Replicates,
		})
	}
	for _, f := range scenario.Families() {
		doc.Families = append(doc.Families, familyDoc{Name: f.Name, Params: f.Params, Doc: f.Doc})
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleStats serves the JSON counter snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the counters in Prometheus text exposition
// format (hand-rolled: the repo takes no dependencies).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, m := range []struct {
		name, typ string
		value     float64
	}{
		{"spannerd_requests_total", "counter", float64(st.Requests)},
		{"spannerd_rejected_total", "counter", float64(st.Rejected)},
		{"spannerd_run_errors_total", "counter", float64(st.RunErrors)},
		{"spannerd_cache_entries", "gauge", float64(st.Cache.Entries)},
		{"spannerd_cache_bytes", "gauge", float64(st.Cache.Bytes)},
		{"spannerd_cache_hits_total", "counter", float64(st.Cache.Hits)},
		{"spannerd_cache_misses_total", "counter", float64(st.Cache.Misses)},
		{"spannerd_cache_evictions_total", "counter", float64(st.Cache.Evictions)},
		{"spannerd_flights_in_flight", "gauge", float64(st.Flights.InFlight)},
		{"spannerd_flights_launched_total", "counter", float64(st.Flights.Launched)},
		{"spannerd_flights_coalesced_total", "counter", float64(st.Flights.Coalesced)},
		{"spannerd_pool_workers", "gauge", float64(st.Pool.Workers)},
		{"spannerd_pool_active", "gauge", float64(st.Pool.Active)},
		{"spannerd_pool_queued", "gauge", float64(st.Pool.Queued)},
		{"spannerd_pool_executions_total", "counter", float64(st.Pool.Executions)},
		{"spannerd_pool_failures_total", "counter", float64(st.Pool.Failures)},
		{"spannerd_pool_run_seconds_total", "counter", float64(st.Pool.RunNanos) / 1e9},
	} {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %g\n", m.name, m.typ, m.name, m.value)
	}
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Write([]byte("ok\n"))
}
