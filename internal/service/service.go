// Package service is the spanner-as-a-service layer: a long-running
// HTTP/JSON front-end over the scenario registry. A client submits a
// job — a registered scenario plus parameter overrides and a seed, with
// the graph either named (any generator family) or inline (an explicit
// edge list) — and gets back the run's verified metrics.
//
// Everything the server does leans on one fact, proven by the repo's
// determinism contract and its conformance suites: a result is a pure
// function of (spec, seed). That makes every result infinitely
// cacheable and every identical in-flight request shareable, so the
// server is three subsystems around the scenario executor:
//
//   - Cache: a content-addressed LRU keyed on (canonical-graph-hash,
//     algorithm, params-fingerprint, seed). A hit returns the
//     byte-identical body of the original computation; only successful
//     results enter.
//   - FlightGroup: single-flight request coalescing — N concurrent
//     identical jobs run once, everyone gets the result, and the run is
//     canceled only when the last interested client disconnects.
//   - Pool: a bounded worker pool executing runs through sweep.Single,
//     inheriting the sweep runner's timeout, panic-recovery, and
//     active-cancellation discipline.
//
// Endpoints: POST /v1/run (synchronous job), POST /v1/stream (same job,
// server-sent events with the live per-round activity curve before the
// result), GET /v1/scenarios (the catalog), GET /v1/stats (JSON
// counters), GET /metrics (Prometheus text format), GET /healthz.
// cmd/spannerd serves it; cmd/spannerd/loadtest drives mixed workloads
// against it.
package service

import (
	"net/http"
	"runtime"
	"sync/atomic"
	"time"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent scenario runs; 0 uses GOMAXPROCS.
	Workers int
	// CacheEntries bounds the result cache; 0 means 4096.
	CacheEntries int
	// Timeout bounds one run's wall clock (0: none). Timed-out runs are
	// actively canceled and report an error; they are never cached.
	Timeout time.Duration
	// MaxVertices / MaxEdges bound inline graph submissions; 0 means
	// 1<<20 vertices and 1<<22 edges.
	MaxVertices int
	MaxEdges    int
}

// Server is the service: an http.Handler plus the cache, coalescer, and
// pool behind it.
type Server struct {
	opts    Options
	cache   *Cache
	flights *FlightGroup
	pool    *Pool
	mux     *http.ServeMux
	start   time.Time

	requests  uint64 // requests accepted on any endpoint
	rejected  uint64 // malformed/unknown requests (4xx before running)
	runErrors uint64 // valid jobs whose run failed (verification, timeout, cancel)
}

// New returns a ready-to-serve Server.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheEntries <= 0 {
		opts.CacheEntries = 4096
	}
	if opts.MaxVertices <= 0 {
		opts.MaxVertices = 1 << 20
	}
	if opts.MaxEdges <= 0 {
		opts.MaxEdges = 1 << 22
	}
	s := &Server{
		opts:    opts,
		cache:   NewCache(opts.CacheEntries),
		flights: &FlightGroup{},
		pool:    NewPool(opts.Workers, opts.Timeout),
		mux:     http.NewServeMux(),
		start:   time.Now(),
	}
	s.mux.HandleFunc("POST /v1/run", s.handleRun)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	atomic.AddUint64(&s.requests, 1)
	s.mux.ServeHTTP(w, r)
}

// Drain blocks until every in-flight run has returned; the graceful-
// shutdown hook (stop admitting requests first).
func (s *Server) Drain() { s.pool.Drain() }

// Stats is the /v1/stats document.
type Stats struct {
	UptimeMs  int64       `json:"uptime_ms"`
	Requests  uint64      `json:"requests"`
	Rejected  uint64      `json:"rejected"`
	RunErrors uint64      `json:"run_errors"`
	Cache     CacheStats  `json:"cache"`
	Flights   FlightStats `json:"flights"`
	Pool      PoolStats   `json:"pool"`
}

// Stats returns the current counters.
func (s *Server) Stats() Stats {
	return Stats{
		UptimeMs:  time.Since(s.start).Milliseconds(),
		Requests:  atomic.LoadUint64(&s.requests),
		Rejected:  atomic.LoadUint64(&s.rejected),
		RunErrors: atomic.LoadUint64(&s.runErrors),
		Cache:     s.cache.Stats(),
		Flights:   s.flights.Stats(),
		Pool:      s.pool.Stats(),
	}
}
