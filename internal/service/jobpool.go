package service

import (
	"sync"
	"sync/atomic"
	"time"

	"distspanner/internal/scenario"
	"distspanner/internal/sweep"
)

// Pool is the bounded execution pool: at most workers scenario runs in
// flight, the rest queued on the semaphore. Each run goes through
// sweep.Single — the same executor the sweep grid runner uses — so the
// service inherits its discipline wholesale: panic recovery, the
// per-run timeout, and active cancellation that waits for the canceled
// run to unwind before the slot is reused.
type Pool struct {
	sem     chan struct{}
	timeout time.Duration

	executions uint64 // runs started (the coalescing tests pin this)
	failures   uint64 // runs that returned an error (incl. cancel/timeout)
	active     int64  // runs currently executing
	queued     int64  // runs currently waiting for a slot
	runNanos   int64  // cumulative execution wall time

	wg sync.WaitGroup // live runs, for clean shutdown
}

// NewPool returns a pool of the given width (minimum 1) applying
// timeout to every run (0 = none).
func NewPool(workers int, timeout time.Duration) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{sem: make(chan struct{}, workers), timeout: timeout}
}

// Run executes one (params, seed) cell of sc, queueing for a worker
// slot first. cancel aborts the job at any point: while queued it
// returns sweep.ErrCanceled without ever executing, while running it is
// forwarded to the scenario (dist.Config.Cancel) and Run returns after
// the run has unwound — no goroutine or half-written state survives an
// abandoned job.
func (p *Pool) Run(sc *scenario.Scenario, params scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
	atomic.AddInt64(&p.queued, 1)
	select {
	case p.sem <- struct{}{}:
		atomic.AddInt64(&p.queued, -1)
	case <-cancel:
		atomic.AddInt64(&p.queued, -1)
		return nil, sweep.ErrCanceled
	}
	atomic.AddInt64(&p.active, 1)
	atomic.AddUint64(&p.executions, 1)
	p.wg.Add(1)
	start := time.Now()
	m, err := sweep.Single(sc, params, seed, p.timeout, cancel)
	atomic.AddInt64(&p.runNanos, int64(time.Since(start)))
	if err != nil {
		atomic.AddUint64(&p.failures, 1)
	}
	atomic.AddInt64(&p.active, -1)
	p.wg.Done()
	<-p.sem
	return m, err
}

// Drain blocks until every in-flight run has returned — the graceful-
// shutdown hook. New Run calls during a drain still execute; the caller
// stops admitting requests first.
func (p *Pool) Drain() { p.wg.Wait() }

// PoolStats is a point-in-time counter snapshot.
type PoolStats struct {
	Workers    int    `json:"workers"`
	Active     int64  `json:"active"`
	Queued     int64  `json:"queued"`
	Executions uint64 `json:"executions"`
	Failures   uint64 `json:"failures"`
	RunNanos   int64  `json:"run_nanos"`
}

// Stats returns the current counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    cap(p.sem),
		Active:     atomic.LoadInt64(&p.active),
		Queued:     atomic.LoadInt64(&p.queued),
		Executions: atomic.LoadUint64(&p.executions),
		Failures:   atomic.LoadUint64(&p.failures),
		RunNanos:   atomic.LoadInt64(&p.runNanos),
	}
}
