package service

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFlightSingleCaller(t *testing.T) {
	g := &FlightGroup{}
	body, shared, err := g.Do("k", nil, func(cancel <-chan struct{}) ([]byte, error) {
		return []byte("result"), nil
	})
	if err != nil || shared || string(body) != "result" {
		t.Fatalf("Do = %q, shared=%v, err=%v", body, shared, err)
	}
	st := g.Stats()
	if st.Launched != 1 || st.Coalesced != 0 || st.InFlight != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFlightCoalescesConcurrentCallers(t *testing.T) {
	g := &FlightGroup{}
	gate := make(chan struct{})
	const followers = 4

	type outcome struct {
		body   []byte
		shared bool
		err    error
	}
	results := make(chan outcome, followers+1)
	run := func() {
		body, shared, err := g.Do("k", nil, func(cancel <-chan struct{}) ([]byte, error) {
			<-gate
			return []byte("shared-result"), nil
		})
		results <- outcome{body, shared, err}
	}

	go run()
	waitFor(t, "leader flight", func() bool { return g.Stats().InFlight == 1 })
	for i := 0; i < followers; i++ {
		go run()
	}
	waitFor(t, "followers to join", func() bool { return g.Stats().Coalesced == followers })
	close(gate)

	sharedCount := 0
	for i := 0; i < followers+1; i++ {
		out := <-results
		if out.err != nil || string(out.body) != "shared-result" {
			t.Fatalf("caller %d: %q, err=%v", i, out.body, out.err)
		}
		if out.shared {
			sharedCount++
		}
	}
	st := g.Stats()
	if st.Launched != 1 {
		t.Fatalf("launched %d executions, want exactly 1", st.Launched)
	}
	if sharedCount != followers {
		t.Fatalf("%d callers reported shared, want %d", sharedCount, followers)
	}
	if st.InFlight != 0 {
		t.Fatalf("flight leaked: %+v", st)
	}
}

func TestFlightErrorPropagatesToAllCallers(t *testing.T) {
	g := &FlightGroup{}
	gate := make(chan struct{})
	wantErr := errors.New("run failed")
	errs := make(chan error, 2)
	run := func() {
		_, _, err := g.Do("k", nil, func(cancel <-chan struct{}) ([]byte, error) {
			<-gate
			return nil, wantErr
		})
		errs <- err
	}
	go run()
	waitFor(t, "leader flight", func() bool { return g.Stats().InFlight == 1 })
	go run()
	waitFor(t, "follower to join", func() bool { return g.Stats().Coalesced == 1 })
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != wantErr {
			t.Fatalf("caller %d error = %v, want %v", i, err, wantErr)
		}
	}
}

func TestFlightLastWaiterAbortCancelsRun(t *testing.T) {
	g := &FlightGroup{}
	sawCancel := make(chan struct{})
	abort := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do("k", abort, func(cancel <-chan struct{}) ([]byte, error) {
			close(started)
			<-cancel
			close(sawCancel)
			return nil, errors.New("canceled")
		})
		done <- err
	}()
	<-started
	close(abort)
	if err := <-done; err != ErrAbandoned {
		t.Fatalf("Do = %v, want ErrAbandoned", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatal("fn's cancel channel never fired after the last waiter left")
	}
	waitFor(t, "flight table to drain", func() bool { return g.Stats().InFlight == 0 })
}

func TestFlightAbortOfOneWaiterKeepsRunAlive(t *testing.T) {
	g := &FlightGroup{}
	gate := make(chan struct{})
	canceled := false
	var mu sync.Mutex

	leaderDone := make(chan outcome3, 1)
	go func() {
		body, _, err := g.Do("k", nil, func(cancel <-chan struct{}) ([]byte, error) {
			<-gate
			mu.Lock()
			select {
			case <-cancel:
				canceled = true
			default:
			}
			mu.Unlock()
			return []byte("survived"), nil
		})
		leaderDone <- outcome3{body: body, err: err}
	}()
	waitFor(t, "leader flight", func() bool { return g.Stats().InFlight == 1 })

	abort := make(chan struct{})
	followerDone := make(chan outcome3, 1)
	go func() {
		body, _, err := g.Do("k", abort, func(<-chan struct{}) ([]byte, error) {
			t.Error("follower must not launch its own execution")
			return nil, nil
		})
		followerDone <- outcome3{body: body, err: err}
	}()
	waitFor(t, "follower to join", func() bool { return g.Stats().Coalesced == 1 })

	close(abort) // the follower leaves; the leader still waits
	if out := <-followerDone; out.err != ErrAbandoned {
		t.Fatalf("follower error = %v, want ErrAbandoned", out.err)
	}
	close(gate)
	out := <-leaderDone
	if out.err != nil || string(out.body) != "survived" {
		t.Fatalf("leader = %q, err=%v", out.body, out.err)
	}
	mu.Lock()
	defer mu.Unlock()
	if canceled {
		t.Fatal("one waiter's abort canceled a run another caller was waiting on")
	}
}

type outcome3 struct {
	body []byte
	err  error
}

func TestFlightCompletedRunNotReused(t *testing.T) {
	g := &FlightGroup{}
	fn := func(cancel <-chan struct{}) ([]byte, error) { return []byte("x"), nil }
	if _, shared, _ := g.Do("k", nil, fn); shared {
		t.Fatal("first call reported shared")
	}
	if _, shared, _ := g.Do("k", nil, fn); shared {
		t.Fatal("post-completion call joined a dead flight; repeats are the cache's job")
	}
	if st := g.Stats(); st.Launched != 2 {
		t.Fatalf("launched = %d, want 2", st.Launched)
	}
}
