package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// postRun POSTs one job to /v1/run and returns (status, cache header, body).
func postRun(t *testing.T, ts *httptest.Server, req JobRequest) (int, string, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, resp.Header.Get("X-Spannerd-Cache"), body
}

// TestServedResultMatchesDirectRun pins the service's core contract:
// the body served for a job is byte-identical to encoding a direct
// internal/scenario run of the same (spec, seed).
func TestServedResultMatchesDirectRun(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	req := JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "40", "p": "0.15"},
		Seed:     11,
	}
	status, cache, served := postRun(t, ts, req)
	if status != http.StatusOK || cache != "miss" {
		t.Fatalf("status=%d cache=%q body=%s", status, cache, served)
	}

	job, rerr := srv.prepare(&req)
	if rerr != nil {
		t.Fatalf("prepare: %v", rerr)
	}
	m, err := job.Scenario.Run(job.Params, job.Seed, nil)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want, err := encodeResult(job, m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(served, want) {
		t.Fatalf("served body differs from direct run:\n got %s\nwant %s", served, want)
	}
}

// TestInlineGraphMatchesDirectRun does the same for an inline edge-list
// submission, including submission-order invariance of the key.
func TestInlineGraphMatchesDirectRun(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	req := JobRequest{
		Scenario: "twospanner",
		Seed:     3,
		Graph:    &InlineGraph{N: 6, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}}},
	}
	status, _, served := postRun(t, ts, req)
	if status != http.StatusOK {
		t.Fatalf("status=%d body=%s", status, served)
	}

	// The same graph submitted in reverse order with flipped endpoints
	// is the same job: answered from cache, byte-identical.
	shuffled := JobRequest{Scenario: "twospanner", Seed: 3, Graph: &InlineGraph{N: 6}}
	for i := len(req.Graph.Edges) - 1; i >= 0; i-- {
		e := req.Graph.Edges[i]
		shuffled.Graph.Edges = append(shuffled.Graph.Edges, [2]int{e[1], e[0]})
	}
	status, cache, body2 := postRun(t, ts, shuffled)
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("shuffled submission: status=%d cache=%q", status, cache)
	}
	if !bytes.Equal(served, body2) {
		t.Fatal("edge submission order changed the served bytes")
	}

	job, rerr := srv.prepare(&req)
	if rerr != nil {
		t.Fatalf("prepare: %v", rerr)
	}
	m, err := job.Scenario.Run(job.Params, job.Seed, nil)
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}
	want, _ := encodeResult(job, m)
	if !bytes.Equal(served, want) {
		t.Fatalf("served body differs from direct run:\n got %s\nwant %s", served, want)
	}
}

func TestCacheHitServesIdenticalBytesWithoutReexecution(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	req := JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "32", "p": "0.2"},
		Seed:     7,
	}
	_, cache1, body1 := postRun(t, ts, req)
	_, cache2, body2 := postRun(t, ts, req)
	if cache1 != "miss" || cache2 != "hit" {
		t.Fatalf("cache headers = %q, %q; want miss, hit", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cache hit served different bytes:\n %s\n %s", body1, body2)
	}
	// The hit must not have executed anything.
	if st := srv.pool.Stats(); st.Executions != 1 {
		t.Fatalf("executions = %d after a hit, want 1", st.Executions)
	}
	if st := srv.cache.Stats(); st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// TestConcurrentIdenticalRequestsCoalesce pins the single-flight
// contract end to end: N clients firing the same brand-new job get one
// execution and N identical bodies.
func TestConcurrentIdenticalRequestsCoalesce(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 4})
	ctl := newBlockCtl("e2e-coalesce")
	req := JobRequest{Scenario: "svc-test-block", Params: map[string]string{"ctl": "e2e-coalesce"}, Seed: 5}

	const clients = 6
	type result struct {
		status int
		cache  string
		body   []byte
	}
	results := make(chan result, clients)
	for i := 0; i < clients; i++ {
		go func() {
			status, cache, body := postRun(t, ts, req)
			results <- result{status, cache, body}
		}()
	}
	// Hold the run until every client has joined the flight, so none of
	// them can be served by the cache instead.
	waitFor(t, "all clients to join the flight", func() bool {
		return srv.flights.Stats().Coalesced == clients-1
	})
	close(ctl.release)

	var bodies [][]byte
	counts := map[string]int{}
	for i := 0; i < clients; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("client got status %d: %s", r.status, r.body)
		}
		counts[r.cache]++
		bodies = append(bodies, r.body)
	}
	for _, b := range bodies[1:] {
		if !bytes.Equal(bodies[0], b) {
			t.Fatal("coalesced clients received different bodies")
		}
	}
	if counts["miss"] != 1 || counts["coalesced"] != clients-1 {
		t.Fatalf("cache header counts = %v, want 1 miss + %d coalesced", counts, clients-1)
	}
	if st := srv.pool.Stats(); st.Executions != 1 {
		t.Fatalf("executions = %d, want exactly 1", st.Executions)
	}
}

// TestClientDisconnectCancelsRun pins the full cancellation chain:
// client disconnect → request context → flight abandonment → pool
// cancel → scenario cancel channel (dist.Config.Cancel on engine
// scenarios) — leaving no goroutine, no flight, and no cache entry.
func TestClientDisconnectCancelsRun(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	ctl := newBlockCtl("e2e-disconnect")
	req := JobRequest{Scenario: "svc-test-block", Params: map[string]string{"ctl": "e2e-disconnect"}, Seed: 9}
	payload, _ := json.Marshal(req)

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/run", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	clientDone := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()

	<-ctl.started // the run is executing
	cancel()      // client disconnects
	if err := <-clientDone; err == nil {
		t.Fatal("canceled client request unexpectedly succeeded")
	}

	// The scenario must observe the cancel...
	select {
	case <-ctl.canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("run was never canceled after the client disconnected")
	}
	// ...every tracking structure must drain...
	waitFor(t, "pool to drain", func() bool {
		st := srv.pool.Stats()
		return st.Active == 0 && st.Queued == 0
	})
	waitFor(t, "flight table to drain", func() bool { return srv.flights.Stats().InFlight == 0 })
	// ...the failed run must not be cached...
	job, rerr := srv.prepare(&req)
	if rerr != nil {
		t.Fatalf("prepare: %v", rerr)
	}
	if _, ok := srv.cache.Get(job.Key); ok {
		t.Fatal("canceled run left a cache entry")
	}
	if st := srv.Stats(); st.RunErrors != 1 {
		t.Fatalf("run_errors = %d, want 1", st.RunErrors)
	}
	// ...and no goroutine may survive the abandoned job.
	ts.Client().CloseIdleConnections()
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

func TestRejectedRequests(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})
	for _, tc := range []struct {
		name   string
		body   string
		status int
	}{
		{"malformed json", `{"scenario":`, http.StatusBadRequest},
		{"unknown field", `{"scenario":"twospanner","bogus":1}`, http.StatusBadRequest},
		{"missing scenario", `{"seed":1}`, http.StatusBadRequest},
		{"unknown scenario", `{"scenario":"no-such-thing"}`, http.StatusNotFound},
		{"self loop", `{"scenario":"twospanner","graph":{"n":2,"edges":[[1,1]]}}`, http.StatusBadRequest},
		{"duplicate edge", `{"scenario":"twospanner","graph":{"n":2,"edges":[[0,1],[1,0]]}}`, http.StatusBadRequest},
		{"endpoint out of range", `{"scenario":"twospanner","graph":{"n":2,"edges":[[0,5]]}}`, http.StatusBadRequest},
		{"weight count mismatch", `{"scenario":"twospanner","graph":{"n":2,"edges":[[0,1]],"weights":[1,2]}}`, http.StatusBadRequest},
		{"negative weight", `{"scenario":"twospanner","graph":{"n":2,"edges":[[0,1]],"weights":[-1]}}`, http.StatusBadRequest},
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, msg)
		}
	}
	if st := srv.Stats(); st.Rejected != 9 {
		t.Errorf("rejected = %d, want 9", st.Rejected)
	}
	if st := srv.pool.Stats(); st.Executions != 0 {
		t.Errorf("rejected requests executed %d runs", st.Executions)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("read SSE stream: %v", err)
	}
	return events
}

func TestStreamEmitsRoundsThenResult(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	req := JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "64", "p": "0.1"},
		Seed:     3,
	}
	payload, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /v1/stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := readSSE(t, resp.Body)
	if len(events) < 2 {
		t.Fatalf("got %d events, want rounds + result", len(events))
	}
	last := events[len(events)-1]
	if last.name != "result" {
		t.Fatalf("last event = %q, want result", last.name)
	}
	rounds := 0
	prev := 0
	for _, ev := range events[:len(events)-1] {
		if ev.name != "round" {
			t.Fatalf("mid-stream event %q, want round", ev.name)
		}
		var r roundEvent
		if err := json.Unmarshal([]byte(ev.data), &r); err != nil {
			t.Fatalf("round event %q: %v", ev.data, err)
		}
		if r.Round <= prev {
			t.Fatalf("round numbers not increasing: %d after %d", r.Round, prev)
		}
		prev = r.Round
		rounds++
	}
	if rounds == 0 {
		t.Fatal("no round events before the result")
	}

	// The stream's result is the same document /v1/run serves — and the
	// run it triggered populated the cache.
	status, cache, body := postRun(t, ts, req)
	if status != http.StatusOK || cache != "hit" {
		t.Fatalf("follow-up run: status=%d cache=%q", status, cache)
	}
	if string(body) != last.data {
		t.Fatalf("stream result differs from /v1/run body:\n %s\n %s", last.data, body)
	}
	if st := srv.pool.Stats(); st.Executions != 1 {
		t.Fatalf("executions = %d, want 1", st.Executions)
	}
}

func TestStreamCacheHitEmitsResultImmediately(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	req := JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "24", "p": "0.2"},
		Seed:     1,
	}
	_, _, want := postRun(t, ts, req)
	payload, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/stream", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /v1/stream: %v", err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) != 1 || events[0].name != "result" {
		t.Fatalf("cached stream = %+v, want exactly one result event", events)
	}
	if events[0].data != string(want) {
		t.Fatal("cached stream result differs from /v1/run body")
	}
}

func TestCatalogStatsMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// Warm one job so the counters are nonzero.
	postRun(t, ts, JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "24", "p": "0.2"},
		Seed:     2,
	})

	get := func(path string) (string, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	catalog, _ := get("/v1/scenarios")
	for _, want := range []string{`"twospanner"`, `"inline"`, `"families"`} {
		if !strings.Contains(catalog, want) {
			t.Errorf("/v1/scenarios missing %s", want)
		}
	}

	statsBody, _ := get("/v1/stats")
	var st Stats
	if err := json.Unmarshal([]byte(statsBody), &st); err != nil {
		t.Fatalf("/v1/stats unparseable: %v", err)
	}
	if st.Requests == 0 || st.Pool.Executions != 1 || st.Cache.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}

	metrics, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	for _, want := range []string{
		"spannerd_requests_total", "spannerd_cache_hits_total",
		"spannerd_pool_executions_total 1", "spannerd_flights_launched_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health, _ := get("/healthz")
	if health != "ok\n" {
		t.Errorf("/healthz = %q", health)
	}
}

// TestDrainWaitsForInFlightRuns pins the graceful-shutdown hook.
func TestDrainWaitsForInFlightRuns(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	ctl := newBlockCtl("e2e-drain")
	req := JobRequest{Scenario: "svc-test-block", Params: map[string]string{"ctl": "e2e-drain"}, Seed: 1}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		postRun(t, ts, req)
	}()
	<-ctl.started

	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a run was still executing")
	case <-time.After(50 * time.Millisecond):
	}
	close(ctl.release)
	select {
	case <-drained:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned after the run finished")
	}
	wg.Wait()
}

// TestExecOnlyParamsShareOneCacheEntry: two requests differing only in
// an execution knob are the same job — one execution, one entry.
func TestExecOnlyParamsShareOneCacheEntry(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2})
	base := map[string]string{"family": "gnp", "n": "24", "p": "0.2"}
	_, cache1, body1 := postRun(t, ts, JobRequest{Scenario: "twospanner", Params: base, Seed: 4})
	withEngine := map[string]string{"family": "gnp", "n": "24", "p": "0.2", "engine": "event"}
	_, cache2, body2 := postRun(t, ts, JobRequest{Scenario: "twospanner", Params: withEngine, Seed: 4})
	if cache1 != "miss" || cache2 != "hit" {
		t.Fatalf("cache headers = %q, %q; want miss, hit", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("execution-only param changed the served bytes")
	}
	if st := srv.pool.Stats(); st.Executions != 1 {
		t.Fatalf("executions = %d, want 1", st.Executions)
	}
}
