package service

import (
	"fmt"
	"math"
	"net/http"

	"distspanner/internal/graph"
	"distspanner/internal/scenario"
)

// JobRequest is the submitted form of one job: a registered scenario
// name, optional parameter overrides (layered over the scenario's
// defaults), the seed, and optionally an inline graph that replaces the
// cell's generator family. It is a pure description of an instance —
// everything the server does with it is a deterministic function of
// this value.
type JobRequest struct {
	// Scenario names a registry entry (see GET /v1/scenarios).
	Scenario string `json:"scenario"`
	// Params overlays the scenario defaults; same surface as a sweep
	// grid cell ("n", "p", "family", "ref", ..., plus execution-only
	// knobs like "engine", which never enter the cache key).
	Params map[string]string `json:"params,omitempty"`
	// Seed is the run seed; results are pure functions of (spec, seed).
	Seed int64 `json:"seed"`
	// Graph, when set, submits an explicit edge list instead of a named
	// generator family (encoded as the scenario layer's "inline" family).
	Graph *InlineGraph `json:"graph,omitempty"`
}

// InlineGraph is an explicit edge-list submission.
type InlineGraph struct {
	// N is the vertex count; vertices are 0..N-1.
	N int `json:"n"`
	// Edges are undirected [u, v] pairs, in any order (the server
	// canonicalizes, so order never changes the result or the cache key).
	Edges [][2]int `json:"edges"`
	// Weights, when present, assigns Weights[i] to Edges[i].
	Weights []float64 `json:"weights,omitempty"`
}

// Job is a validated, normalized request: the resolved scenario, the
// fully merged parameter cell, and the content-addressed cache key.
type Job struct {
	Scenario *scenario.Scenario
	// Params is the merged cell: scenario defaults, then the request
	// overrides, then the canonical inline-graph encoding when a graph
	// was submitted.
	Params scenario.Params
	Seed   int64
	// GraphHash is the canonical content hash of the submitted graph,
	// empty for generator-spec jobs.
	GraphHash string
	// Key is the cache key: fnv64(scenario, fingerprint, seed) where
	// the fingerprint is the instance identity of the merged cell with
	// the raw inline edge list replaced by GraphHash — i.e.
	// (canonical-graph-hash, algorithm, params, seed) in one string.
	Key string
}

// reqError is a rejected request: an HTTP status plus a message. Run
// failures are not reqErrors — they are outcomes of a valid job.
type reqError struct {
	status int
	msg    string
}

func (e *reqError) Error() string { return e.msg }

func badRequest(format string, args ...any) *reqError {
	return &reqError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// prepare validates req and resolves it into a Job.
func (s *Server) prepare(req *JobRequest) (*Job, *reqError) {
	if req.Scenario == "" {
		return nil, badRequest("missing scenario name")
	}
	sc, ok := scenario.Get(req.Scenario)
	if !ok {
		return nil, &reqError{status: http.StatusNotFound, msg: fmt.Sprintf("unknown scenario %q (see /v1/scenarios)", req.Scenario)}
	}
	merged := sc.Defaults.Merge(scenario.Params(req.Params))
	job := &Job{Scenario: sc, Seed: req.Seed}
	if req.Graph != nil {
		g, err := s.buildInline(req.Graph)
		if err != nil {
			return nil, err
		}
		job.GraphHash = GraphHash(g)
		merged = merged.Merge(scenario.InlineParams(g))
	}
	job.Params = merged
	job.Key = jobKey(sc.Name, merged, job.GraphHash, req.Seed)
	return job, nil
}

// buildInline validates the submission and constructs the graph.
func (s *Server) buildInline(in *InlineGraph) (*graph.Graph, *reqError) {
	if in.N < 1 {
		return nil, badRequest("inline graph: n must be >= 1 (got %d)", in.N)
	}
	if in.N > s.opts.MaxVertices {
		return nil, badRequest("inline graph: n=%d exceeds the server limit of %d vertices", in.N, s.opts.MaxVertices)
	}
	if len(in.Edges) > s.opts.MaxEdges {
		return nil, badRequest("inline graph: %d edges exceed the server limit of %d", len(in.Edges), s.opts.MaxEdges)
	}
	if in.Weights != nil && len(in.Weights) != len(in.Edges) {
		return nil, badRequest("inline graph: %d weights for %d edges", len(in.Weights), len(in.Edges))
	}
	g := graph.New(in.N)
	for i, e := range in.Edges {
		u, v := e[0], e[1]
		if u < 0 || u >= in.N || v < 0 || v >= in.N {
			return nil, badRequest("inline graph: edge %d endpoints [%d, %d] out of range [0, %d)", i, u, v, in.N)
		}
		if u == v {
			return nil, badRequest("inline graph: edge %d is a self-loop at %d", i, u)
		}
		if g.HasEdge(u, v) {
			return nil, badRequest("inline graph: duplicate edge [%d, %d]", u, v)
		}
		idx := g.AddEdge(u, v)
		if in.Weights != nil {
			w := in.Weights[i]
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, badRequest("inline graph: edge %d weight %v is not a finite non-negative number", i, w)
			}
			g.SetWeight(idx, w)
		}
	}
	return g, nil
}

// jobKey derives the content-addressed cache key. The fingerprint is
// the merged cell's instance identity (execution-only parameters —
// engine, transport, timing, obs — excluded, exactly as sweep seed
// derivation excludes them) with the raw inline edge encoding replaced
// by the canonical graph hash, so the key stays short and the hash
// scheme pinned by hash_test.go is load-bearing for every inline job.
func jobKey(scenarioName string, merged scenario.Params, graphHash string, seed int64) string {
	fp := merged.InstanceParams()
	if graphHash != "" {
		delete(fp, "edges")
		delete(fp, "wts")
		delete(fp, "n")
		fp["graphhash"] = graphHash
	}
	h := mixString(fnvOffset, scenarioName)
	h = mixString(h, fp.InstanceKey())
	h = mix(h, uint64(seed))
	return hex64(h)
}

// mixString folds s (length-prefixed) into an FNV-64a state.
func mixString(h uint64, s string) uint64 {
	h = mix(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}
