package service

import (
	"testing"

	"distspanner/internal/graph"
)

func buildGraph(n int, edges [][2]int) *graph.Graph {
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestGraphHashOrderInvariant(t *testing.T) {
	a := buildGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	// Same edge set: reversed insertion order AND flipped endpoints.
	b := buildGraph(5, [][2]int{{0, 4}, {4, 3}, {3, 2}, {2, 1}, {1, 0}})
	if GraphHash(a) != GraphHash(b) {
		t.Fatalf("same labeled edge set hashed differently: %s vs %s", GraphHash(a), GraphHash(b))
	}
}

func TestGraphHashRelabelDiffers(t *testing.T) {
	// The same 3-vertex path with its center at 1 vs at 0: isomorphic,
	// but vertex ids are protocol-visible, so the instances differ.
	path := buildGraph(3, [][2]int{{0, 1}, {1, 2}})
	relabeled := buildGraph(3, [][2]int{{0, 1}, {0, 2}})
	if GraphHash(path) == GraphHash(relabeled) {
		t.Fatalf("relabeled graph hashed equal: %s", GraphHash(path))
	}
}

func TestGraphHashVertexCountSensitive(t *testing.T) {
	a := buildGraph(3, [][2]int{{0, 1}, {1, 2}})
	b := buildGraph(4, [][2]int{{0, 1}, {1, 2}}) // extra isolated vertex
	if GraphHash(a) == GraphHash(b) {
		t.Fatalf("different vertex counts hashed equal: %s", GraphHash(a))
	}
}

func TestGraphHashWeightSensitive(t *testing.T) {
	plain := buildGraph(3, [][2]int{{0, 1}, {1, 2}})

	// Explicit weight 1 on every edge is the same instance as unweighted.
	ones := buildGraph(3, [][2]int{{0, 1}, {1, 2}})
	for i := 0; i < ones.M(); i++ {
		ones.SetWeight(i, 1)
	}
	if GraphHash(plain) != GraphHash(ones) {
		t.Fatalf("all-weights-1 hashed differently from unweighted: %s vs %s",
			GraphHash(plain), GraphHash(ones))
	}

	heavy := buildGraph(3, [][2]int{{0, 1}, {1, 2}})
	heavy.SetWeight(0, 2.5)
	if GraphHash(plain) == GraphHash(heavy) {
		t.Fatalf("weight change did not change the hash: %s", GraphHash(plain))
	}
}

// TestGraphHashGolden pins the hash scheme. These values are the cache
// key's content-addressed half: changing the fold (constants, field
// order, widths) strands every cached result and silently unpins the
// e2e suite, so any diff here must be a deliberate, flag-day decision.
func TestGraphHashGolden(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		edges   [][2]int
		weights map[int]float64
		want    string
	}{
		{name: "empty-1", n: 1, want: "392209f14dea4c24"},
		{name: "single-edge", n: 2, edges: [][2]int{{0, 1}}, want: "c4f117834461aa16"},
		{name: "path-3", n: 3, edges: [][2]int{{0, 1}, {1, 2}}, want: "4054d8ce9dcd00a2"},
		{name: "triangle", n: 3, edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}, want: "efd1ac677abc55dc"},
		{name: "weighted-path-3", n: 3, edges: [][2]int{{0, 1}, {1, 2}},
			weights: map[int]float64{0: 2, 1: 0.5}, want: "72787b8a9d8a7307"},
	} {
		g := buildGraph(tc.n, tc.edges)
		for i, w := range tc.weights {
			g.SetWeight(i, w)
		}
		if got := GraphHash(g); got != tc.want {
			t.Errorf("%s: GraphHash = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestJobKeyGolden pins the full job-key derivation on top of the graph
// hash, including the exec-only parameter exclusion and the inline
// edge-list replacement.
func TestJobKeyGolden(t *testing.T) {
	s := New(Options{})
	job, rerr := s.prepare(&JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "32", "p": "0.2"},
		Seed:     7,
	})
	if rerr != nil {
		t.Fatalf("prepare: %v", rerr)
	}
	if job.Key != "c658a1615af30d3c" {
		t.Errorf("generator job key = %s, want c658a1615af30d3c", job.Key)
	}

	inline, rerr := s.prepare(&JobRequest{
		Scenario: "twospanner",
		Seed:     1,
		Graph:    &InlineGraph{N: 4, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
	})
	if rerr != nil {
		t.Fatalf("prepare inline: %v", rerr)
	}
	if inline.GraphHash != "d51f3147cad24361" {
		t.Errorf("inline graph hash = %s, want d51f3147cad24361", inline.GraphHash)
	}
	if inline.Key != "c9db7d00bf2cc79e" {
		t.Errorf("inline job key = %s, want c9db7d00bf2cc79e", inline.Key)
	}
}

func TestJobKeyIgnoresExecOnlyParams(t *testing.T) {
	s := New(Options{})
	base, rerr := s.prepare(&JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "32", "p": "0.2"},
		Seed:     7,
	})
	if rerr != nil {
		t.Fatalf("prepare: %v", rerr)
	}
	engined, rerr := s.prepare(&JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "32", "p": "0.2", "engine": "event"},
		Seed:     7,
	})
	if rerr != nil {
		t.Fatalf("prepare with engine: %v", rerr)
	}
	if base.Key != engined.Key {
		t.Fatalf("engine param changed the cache key: %s vs %s", base.Key, engined.Key)
	}
}

func TestJobKeySeedAndParamSensitive(t *testing.T) {
	s := New(Options{})
	mk := func(params map[string]string, seed int64) string {
		job, rerr := s.prepare(&JobRequest{Scenario: "twospanner", Params: params, Seed: seed})
		if rerr != nil {
			t.Fatalf("prepare: %v", rerr)
		}
		return job.Key
	}
	base := mk(map[string]string{"family": "gnp", "n": "32", "p": "0.2"}, 7)
	if base == mk(map[string]string{"family": "gnp", "n": "32", "p": "0.2"}, 8) {
		t.Fatal("seed change did not change the cache key")
	}
	if base == mk(map[string]string{"family": "gnp", "n": "33", "p": "0.2"}, 7) {
		t.Fatal("param change did not change the cache key")
	}
}
