package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// The service yardsticks report req/sec and are gated by benchgate
// against BENCH_service.json (see .github/workflows/ci.yml):
//
//	go test -run '^$' -bench 'BenchmarkServe' ./internal/service | tee bench-service.txt
//	go run ./cmd/benchgate -metric req/sec -baseline BENCH_service.json bench-service.txt
//
// ServeCacheHit is the hot path a loaded server lives on (hash + key
// derivation + LRU lookup + response write); ServeCacheMiss includes a
// real scenario execution and bounds the cold-path overhead.

func benchServe(b *testing.B, srv *Server, payload []byte, wantCache string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup: status %d: %s", rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(payload))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Spannerd-Cache"); got != wantCache {
			b.Fatalf("cache header %q, want %q", got, wantCache)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}

func BenchmarkServeCacheHit(b *testing.B) {
	srv := New(Options{Workers: 2})
	payload, _ := json.Marshal(JobRequest{
		Scenario: "twospanner",
		Params:   map[string]string{"family": "gnp", "n": "32", "p": "0.2"},
		Seed:     7,
	})
	benchServe(b, srv, payload, "hit")
}

// BenchmarkServeCacheHitInline measures the hit path including inline
// graph canonicalization and content hashing — the full key derivation
// a caching proxy workload pays per request.
func BenchmarkServeCacheHitInline(b *testing.B) {
	srv := New(Options{Workers: 2})
	edges := make([][2]int, 0, 128)
	for i := 0; i < 128; i++ {
		edges = append(edges, [2]int{i, (i + 1) % 129})
	}
	payload, _ := json.Marshal(JobRequest{
		Scenario: "twospanner",
		Seed:     1,
		Graph:    &InlineGraph{N: 129, Edges: edges},
	})
	benchServe(b, srv, payload, "hit")
}

func BenchmarkServeCacheMiss(b *testing.B) {
	// A cache of 1 entry with an alternating pair of jobs: every request
	// after the warmup misses, so each iteration pays key derivation +
	// a real scenario execution + result encoding + cache insertion.
	srv := New(Options{Workers: 2, CacheEntries: 1})
	var payloads [2][]byte
	for i := range payloads {
		payloads[i], _ = json.Marshal(JobRequest{
			Scenario: "twospanner",
			Params:   map[string]string{"family": "gnp", "n": "24", "p": "0.2"},
			Seed:     int64(i),
		})
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(payloads[0]))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup: status %d: %s", rec.Code, rec.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(payloads[1-i%2]))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if got := rec.Header().Get("X-Spannerd-Cache"); got != "miss" {
			b.Fatalf("cache header %q, want miss", got)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/sec")
}
