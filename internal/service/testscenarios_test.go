package service

import (
	"errors"
	"sync"

	"distspanner/internal/scenario"
)

// blockCtl coordinates one svc-test-block run with its test: the run
// closes started when it begins, then holds until the test closes
// release or the executor's cancel channel fires (closing canceled).
type blockCtl struct {
	started   chan struct{}
	release   chan struct{}
	canceled  chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
}

var (
	ctlMu sync.Mutex
	ctls  = map[string]*blockCtl{}
)

// newBlockCtl registers a controller under name; runs select it with
// the "ctl" parameter (part of instance identity, so distinct
// controllers are distinct jobs and identical ctl params coalesce).
func newBlockCtl(name string) *blockCtl {
	c := &blockCtl{
		started:  make(chan struct{}),
		release:  make(chan struct{}),
		canceled: make(chan struct{}),
	}
	ctlMu.Lock()
	ctls[name] = c
	ctlMu.Unlock()
	return c
}

// svc-test-block: a synthetic scenario for exercising the service's
// queueing, coalescing, and cancellation paths deterministically. It is
// registered only in this test binary.
func init() {
	scenario.Register(&scenario.Scenario{
		Name:  "svc-test-block",
		Title: "service test: run until released or canceled",
		Model: "sequential",
		Run: func(p scenario.Params, seed int64, cancel <-chan struct{}) (scenario.Metrics, error) {
			ctlMu.Lock()
			c := ctls[p.Str("ctl", "")]
			ctlMu.Unlock()
			if c == nil {
				return scenario.Metrics{"valid": 1, "seed": float64(seed)}, nil
			}
			c.startOnce.Do(func() { close(c.started) })
			select {
			case <-c.release:
				return scenario.Metrics{"valid": 1, "seed": float64(seed)}, nil
			case <-cancel:
				c.stopOnce.Do(func() { close(c.canceled) })
				return nil, errors.New("svc-test-block: canceled")
			}
		},
	})
}
