package service

import (
	"bytes"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", []byte("alpha"))
	body, ok := c.Get("a")
	if !ok || !bytes.Equal(body, []byte("alpha")) {
		t.Fatalf("Get(a) = %q, %v", body, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 5 || st.Evictions != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", []byte("aa"))
	c.Put("b", []byte("bb"))
	// Touch a so b is the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put("c", []byte("cc"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheFirstWriteWins(t *testing.T) {
	c := NewCache(8)
	c.Put("k", []byte("original"))
	c.Put("k", []byte("duplicate")) // racing duplicate resolution: no-op
	body, ok := c.Get("k")
	if !ok || string(body) != "original" {
		t.Fatalf("Get(k) = %q, %v; want the first write", body, ok)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != int64(len("original")) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := NewCache(0) // clamps to 1
	c.Put("a", []byte("x"))
	c.Put("b", []byte("y"))
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by b in a capacity-1 cache")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should be present")
	}
}
