package service

import (
	"math"
	"sort"

	"distspanner/internal/graph"
)

// Canonical graph hashing: the content-addressed half of a job's cache
// key. Two graphs hash equal iff they have the same vertex count and the
// same labeled edge set with the same weights — submission order never
// enters (edges are folded in sorted canonical order), while relabeling
// does (the hash is over labeled edges, not isomorphism classes: vertex
// ids are protocol-visible, so a relabeled graph is a different
// instance with different results). hash_test.go pins golden values so
// the key scheme cannot drift silently and strand every cached result.

// FNV-64a parameters (same folding discipline as trace.Digest).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix folds one 64-bit value into an FNV-64a state, byte by byte,
// little-endian; fixed-width folding keeps the encoding unambiguous
// without separators.
func mix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

const hexDigits = "0123456789abcdef"

// hex64 formats h as 16 lowercase hex digits.
func hex64(h uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[h&0xf]
		h >>= 4
	}
	return string(b[:])
}

// GraphHash returns the canonical content hash of g: 16 hex digits over
// (n, m, sorted canonical edge list, per-edge weights). Equal for the
// same edge set in any insertion order; different under any relabeling,
// weight change, or vertex-count change. An unweighted graph and the
// same graph with every weight explicitly 1 hash equal — they are the
// same instance to every algorithm.
func GraphHash(g *graph.Graph) string {
	edges := g.Edges()
	idx := make([]int, len(edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ea, eb := edges[idx[a]], edges[idx[b]]
		if ea.U != eb.U {
			return ea.U < eb.U
		}
		return ea.V < eb.V
	})
	h := mix(fnvOffset, uint64(g.N()))
	h = mix(h, uint64(g.M()))
	for _, id := range idx {
		h = mix(h, uint64(edges[id].U))
		h = mix(h, uint64(edges[id].V))
		h = mix(h, math.Float64bits(g.Weight(id)))
	}
	return hex64(h)
}
