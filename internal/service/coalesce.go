package service

import (
	"fmt"
	"sync"
)

// FlightGroup coalesces identical in-flight jobs: concurrent callers
// with the same key share one execution and all receive its result.
// Single-flight is sound here for the same reason caching is — a job's
// result is a pure function of its key — and it is what keeps a burst
// of identical requests from stampeding the worker pool.
//
// Cancellation is waiter-refcounted: every caller that abandons its
// wait (client disconnect) decrements the flight's waiter count, and
// the execution's cancel channel closes only when the last waiter is
// gone — one impatient client must not kill a run that other clients
// are still waiting on, while a fully abandoned run stops promptly and
// caches nothing.
type FlightGroup struct {
	mu        sync.Mutex
	flights   map[string]*flight
	coalesced uint64 // callers that joined an existing flight
	launched  uint64 // flights that ran fn
}

type flight struct {
	done    chan struct{} // closed when fn's outcome is recorded
	cancel  chan struct{} // closed when the last waiter abandons
	waiters int
	body    []byte
	err     error
}

// ErrAbandoned is returned to a caller whose abort signal fired while
// it was waiting on a flight.
var ErrAbandoned = fmt.Errorf("service: request abandoned before completion")

// Do returns fn's result for key, coalescing concurrent callers: the
// first caller launches fn on its own goroutine (receiving the flight's
// refcounted cancel channel), later callers with the same key wait on
// the same outcome, and shared reports whether this caller joined an
// existing flight. abort, when non-nil, abandons this caller's wait
// when it fires: Do returns ErrAbandoned, and if no other caller
// remains the flight's cancel channel closes so the execution can stop.
// A finished flight is removed before its result is handed out, so a
// request arriving after completion starts a fresh flight — the result
// cache, not the flight group, is what serves repeats.
func (g *FlightGroup) Do(key string, abort <-chan struct{}, fn func(cancel <-chan struct{}) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[string]*flight)
	}
	f, ok := g.flights[key]
	if ok {
		f.waiters++
		g.coalesced++
	} else {
		f = &flight{
			done:    make(chan struct{}),
			cancel:  make(chan struct{}),
			waiters: 1,
		}
		g.flights[key] = f
		g.launched++
		go func() {
			b, e := fn(f.cancel)
			g.mu.Lock()
			f.body, f.err = b, e
			if g.flights[key] == f {
				delete(g.flights, key)
			}
			g.mu.Unlock()
			close(f.done)
		}()
	}
	g.mu.Unlock()

	select {
	case <-f.done:
		return f.body, ok, f.err
	case <-abort:
		// The outcome may have landed in the same instant; prefer it.
		select {
		case <-f.done:
			return f.body, ok, f.err
		default:
		}
		g.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		if last && g.flights[key] == f {
			// Unlink the dying flight now so a later identical request
			// starts fresh instead of inheriting a canceled run.
			delete(g.flights, key)
		}
		g.mu.Unlock()
		if last {
			close(f.cancel)
		}
		return nil, ok, ErrAbandoned
	}
}

// FlightStats is a point-in-time counter snapshot.
type FlightStats struct {
	InFlight  int    `json:"in_flight"`
	Launched  uint64 `json:"launched"`
	Coalesced uint64 `json:"coalesced"`
}

// Stats returns the current counters.
func (g *FlightGroup) Stats() FlightStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return FlightStats{InFlight: len(g.flights), Launched: g.launched, Coalesced: g.coalesced}
}
