package service

import (
	"errors"
	"strings"
	"testing"
	"time"

	"distspanner/internal/scenario"
	"distspanner/internal/sweep"
)

func blockScenario(t *testing.T) *scenario.Scenario {
	t.Helper()
	sc, ok := scenario.Get("svc-test-block")
	if !ok {
		t.Fatal("svc-test-block scenario not registered")
	}
	return sc
}

func TestPoolRunsAndCounts(t *testing.T) {
	p := NewPool(2, 0)
	sc := blockScenario(t)
	m, err := p.Run(sc, scenario.Params{}, 42, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m["seed"] != 42 || m["valid"] != 1 {
		t.Fatalf("metrics = %v", m)
	}
	st := p.Stats()
	if st.Executions != 1 || st.Failures != 0 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPoolCancelWhileQueued(t *testing.T) {
	p := NewPool(1, 0)
	sc := blockScenario(t)
	ctl := newBlockCtl("pool-queued")

	// Occupy the single worker slot.
	occupied := make(chan error, 1)
	go func() {
		_, err := p.Run(sc, scenario.Params{"ctl": "pool-queued"}, 1, nil)
		occupied <- err
	}()
	<-ctl.started

	// Queue a second run, then cancel it before a slot frees up.
	cancel := make(chan struct{})
	queuedDone := make(chan error, 1)
	go func() {
		_, err := p.Run(sc, scenario.Params{}, 2, cancel)
		queuedDone <- err
	}()
	waitFor(t, "second run to queue", func() bool { return p.Stats().Queued == 1 })
	close(cancel)
	if err := <-queuedDone; !errors.Is(err, sweep.ErrCanceled) {
		t.Fatalf("queued run error = %v, want sweep.ErrCanceled", err)
	}
	// The canceled run never reached a worker: executions stays at 1.
	if st := p.Stats(); st.Executions != 1 {
		t.Fatalf("executions = %d, want 1 (queued run must not execute)", st.Executions)
	}

	close(ctl.release)
	if err := <-occupied; err != nil {
		t.Fatalf("occupying run: %v", err)
	}
}

func TestPoolCancelWhileRunning(t *testing.T) {
	p := NewPool(1, 0)
	sc := blockScenario(t)
	ctl := newBlockCtl("pool-running")

	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(sc, scenario.Params{"ctl": "pool-running"}, 1, cancel)
		done <- err
	}()
	<-ctl.started
	close(cancel)

	// The cancel must reach the scenario's cancel channel (the same
	// plumbing that feeds dist.Config.Cancel on engine scenarios)...
	select {
	case <-ctl.canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("scenario never observed the cancel")
	}
	// ...and Run must report the cancellation after the run unwound.
	if err := <-done; !errors.Is(err, sweep.ErrCanceled) {
		t.Fatalf("Run error = %v, want sweep.ErrCanceled", err)
	}
	st := p.Stats()
	if st.Failures != 1 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
	p.Drain() // must not hang: the worker goroutine is gone
}

func TestPoolTimeout(t *testing.T) {
	p := NewPool(1, 20*time.Millisecond)
	sc := blockScenario(t)
	ctl := newBlockCtl("pool-timeout")
	_, err := p.Run(sc, scenario.Params{"ctl": "pool-timeout"}, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("Run error = %v, want timeout", err)
	}
	select {
	case <-ctl.canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("timed-out run was never actively canceled")
	}
	if st := p.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
