package service

import (
	"container/list"
	"sync"
)

// Cache is the content-addressed result cache: job key → the serialized
// result document, exactly as served. Since every result is a pure
// function of its key (the determinism contract, enforced end to end by
// the conformance suites), entries never expire — they are only evicted
// by the LRU bound — and a hit returns the byte-identical body of the
// original miss. Only successful results enter; failed, canceled, and
// timed-out runs leave nothing behind.
type Cache struct {
	mu        sync.Mutex
	maxEntry  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
	bytes     int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache returns a cache bounded to maxEntries results (minimum 1).
func NewCache(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		maxEntry: maxEntries,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and marks it most recently used.
// The returned slice is the cache's own storage; callers must treat it
// as read-only (handlers only ever write it to the response).
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key, evicting least-recently-used entries over
// the bound. Re-putting an existing key refreshes its recency but keeps
// the original body: results are immutable per key, so the first write
// wins and a racing duplicate (two misses resolving concurrently) is a
// no-op.
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.ll.Len() > c.maxEntry {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= int64(len(ent.body))
		c.evictions++
	}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns the current counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
