package exact

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func TestMinSpannerClique(t *testing.T) {
	// The minimum 2-spanner of K_n is a star: n-1 edges.
	g := gen.Clique(5)
	h, cost, err := MinSpanner(g, SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 4 {
		t.Fatalf("min 2-spanner of K5 costs %f, want 4", cost)
	}
	if !span.IsKSpanner(g, h, 2) {
		t.Fatal("returned set is not a 2-spanner")
	}
}

func TestMinSpannerCycle(t *testing.T) {
	// C5 has no 2-paths replacing any edge: the only 2-spanner is C5 itself.
	g := gen.Cycle(5)
	h, cost, err := MinSpanner(g, SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 5 || h.Len() != 5 {
		t.Fatalf("min 2-spanner of C5 = %d edges, want all 5", h.Len())
	}
	// At stretch 4, one edge can be dropped.
	h4, cost4, err := MinSpanner(g, SpannerOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cost4 != 4 {
		t.Fatalf("min 4-spanner of C5 costs %f, want 4", cost4)
	}
	if !span.IsKSpanner(g, h4, 4) {
		t.Fatal("4-spanner invalid")
	}
}

func TestMinSpannerCompleteBipartite(t *testing.T) {
	// K_{2,3}: the minimum 2-spanner must contain all edges of one side's
	// star plus enough to 2-span the rest. A full star of one A-vertex
	// (3 edges) 2-spans only A-side... verify against brute force instead.
	g := gen.CompleteBipartite(2, 3)
	h, cost, err := MinSpanner(g, SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	bruteCost := bruteMinSpanner(t, g, 2)
	if cost != bruteCost {
		t.Fatalf("K(2,3) min 2-spanner = %f, brute force says %f", cost, bruteCost)
	}
	if !span.IsKSpanner(g, h, 2) {
		t.Fatal("spanner invalid")
	}
}

func bruteMinSpanner(t *testing.T, g *graph.Graph, k int) float64 {
	t.Helper()
	m := g.M()
	if m > 18 {
		t.Fatalf("brute force on %d edges too slow", m)
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<uint(m); mask++ {
		h := graph.NewEdgeSet(m)
		cost := 0.0
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				h.Add(i)
				cost += g.Weight(i)
			}
		}
		if cost < best && span.IsKSpanner(g, h, k) {
			best = cost
		}
	}
	return best
}

func TestMinSpannerWeightedZero(t *testing.T) {
	// Triangle with one expensive edge coverable by two free edges.
	g := gen.Clique(3)
	e01, _ := g.EdgeIndex(0, 1)
	e12, _ := g.EdgeIndex(1, 2)
	e02, _ := g.EdgeIndex(0, 2)
	g.SetWeight(e01, 0)
	g.SetWeight(e12, 0)
	g.SetWeight(e02, 5)
	h, cost, err := MinSpanner(g, SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 {
		t.Fatalf("cost = %f, want 0 (free 2-path covers the expensive edge)", cost)
	}
	if !h.Has(e01) || !h.Has(e12) || h.Has(e02) {
		t.Fatalf("wrong spanner %v", h.Slice())
	}
}

func TestMinSpannerClientServer(t *testing.T) {
	// Square 0-1-2-3-0 with diagonal 0-2. Client = diagonal; servers = the
	// four square edges. Cheapest cover: the 2-path 0-1-2 or 0-3-2.
	g := graph.New(4)
	e01 := g.AddEdge(0, 1)
	e12 := g.AddEdge(1, 2)
	e23 := g.AddEdge(2, 3)
	e30 := g.AddEdge(3, 0)
	diag := g.AddEdge(0, 2)
	clients := graph.NewEdgeSet(g.M())
	clients.Add(diag)
	servers := graph.NewEdgeSet(g.M())
	for _, e := range []int{e01, e12, e23, e30} {
		servers.Add(e)
	}
	h, cost, err := MinSpanner(g, SpannerOptions{K: 2, Target: clients, Allowed: servers})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Fatalf("client-server cost = %f, want 2", cost)
	}
	if h.Has(diag) {
		t.Fatal("spanner used a non-server edge")
	}
	if !span.ClientServerValid(g, clients, servers, h, 2) {
		t.Fatal("client-server solution invalid")
	}
}

func TestMinSpannerInfeasible(t *testing.T) {
	g := gen.Path(3)
	allowed := graph.NewEdgeSet(g.M()) // nothing allowed
	_, _, err := MinSpanner(g, SpannerOptions{K: 2, Allowed: allowed})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestMinSpannerBadK(t *testing.T) {
	if _, _, err := MinSpanner(gen.Path(3), SpannerOptions{K: 0}); err == nil {
		t.Fatal("k=0 must error")
	}
}

func TestMinDirectedSpanner(t *testing.T) {
	// Directed triangle 0->1->2->0 plus shortcut 0->2: the cycle 2-spans
	// the shortcut, so OPT = 3.
	d := graph.NewDigraph(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	d.AddEdge(0, 2)
	h, cost, err := MinDirectedSpanner(d, SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 3 {
		t.Fatalf("directed OPT = %f, want 3", cost)
	}
	if !span.IsDirectedKSpanner(d, h, 2) {
		t.Fatal("directed spanner invalid")
	}
}

// Property: MinSpanner matches brute force on random small graphs for
// k in {2, 3}.
func TestMinSpannerMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		g := gen.ConnectedGNP(n, 0.4, seed)
		if g.M() > 14 {
			return true // keep brute force fast
		}
		for _, k := range []int{2, 3} {
			h, cost, err := MinSpanner(g, SpannerOptions{K: k})
			if err != nil {
				return false
			}
			if !span.IsKSpanner(g, h, k) {
				return false
			}
			best := math.Inf(1)
			m := g.M()
			for mask := 0; mask < 1<<uint(m); mask++ {
				hh := graph.NewEdgeSet(m)
				c := 0.0
				for i := 0; i < m; i++ {
					if mask&(1<<uint(i)) != 0 {
						hh.Add(i)
						c += 1
					}
				}
				if c < best && span.IsKSpanner(g, hh, k) {
					best = c
				}
			}
			if cost != best {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: directed solver matches brute force on tiny digraphs.
func TestMinDirectedSpannerMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(2)
		d := gen.RandomDigraph(n, 0.5, seed)
		if d.M() == 0 || d.M() > 12 {
			return true
		}
		h, cost, err := MinDirectedSpanner(d, SpannerOptions{K: 3})
		if err != nil {
			return false
		}
		if !span.IsDirectedKSpanner(d, h, 3) {
			return false
		}
		best := math.Inf(1)
		m := d.M()
		for mask := 0; mask < 1<<uint(m); mask++ {
			hh := graph.NewEdgeSet(m)
			c := 0.0
			for i := 0; i < m; i++ {
				if mask&(1<<uint(i)) != 0 {
					hh.Add(i)
					c++
				}
			}
			if c < best && span.IsDirectedKSpanner(d, hh, 3) {
				best = c
			}
		}
		return cost == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinVertexCoverSmall(t *testing.T) {
	// Path 0-1-2: cover {1}.
	p := gen.Path(3)
	if got := MinVertexCover(p); len(got) != 1 || got[0] != 1 {
		t.Fatalf("MVC(P3) = %v, want [1]", got)
	}
	// C5 needs 3 vertices.
	if got := MinVertexCover(gen.Cycle(5)); len(got) != 3 {
		t.Fatalf("MVC(C5) size = %d, want 3", len(got))
	}
	// K4 needs 3.
	if got := MinVertexCover(gen.Clique(4)); len(got) != 3 {
		t.Fatalf("MVC(K4) size = %d, want 3", len(got))
	}
	// Star: the center.
	if got := MinVertexCover(gen.Star(6)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("MVC(star) = %v, want [0]", got)
	}
	// Edgeless graph: empty cover.
	if got := MinVertexCover(graph.New(4)); len(got) != 0 {
		t.Fatalf("MVC(edgeless) = %v, want empty", got)
	}
}

// Property: MVC matches brute force on random small graphs and is a valid
// cover.
func TestMinVertexCoverMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := gen.GNP(n, 0.4, seed)
		got := MinVertexCover(g)
		inCover := make([]bool, n)
		for _, v := range got {
			inCover[v] = true
		}
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if !inCover[e.U] && !inCover[e.V] {
				return false
			}
		}
		best := n + 1
		for mask := 0; mask < 1<<uint(n); mask++ {
			ok := true
			for i := 0; i < g.M(); i++ {
				e := g.Edge(i)
				if mask&(1<<uint(e.U)) == 0 && mask&(1<<uint(e.V)) == 0 {
					ok = false
					break
				}
			}
			if ok {
				if c := popcount(mask); c < best {
					best = c
				}
			}
		}
		return len(got) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMinSetCover(t *testing.T) {
	// Universe {0..3}; sets {0,1}, {2,3}, {0,1,2,3} with weights 1,1,1.5.
	sets := [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}
	chosen, cost := MinSetCover(4, sets, []float64{1, 1, 1.5})
	if cost != 1.5 || len(chosen) != 1 || chosen[0] != 2 {
		t.Fatalf("chose %v at cost %f, want [2] at 1.5", chosen, cost)
	}
	// With unit weights, the two small sets win (cost 2 vs... equal
	// actually 1 set of cost 1? No: set 2 costs 1 too then; with unit
	// weights the big set alone costs 1 and wins.
	chosen, cost = MinSetCover(4, sets, nil)
	if cost != 1 || len(chosen) != 1 || chosen[0] != 2 {
		t.Fatalf("unit weights: chose %v at %f, want the single big set", chosen, cost)
	}
	// Uncoverable element.
	if got, _ := MinSetCover(3, [][]int{{0, 1}}, nil); got != nil {
		t.Fatal("uncoverable universe must return nil")
	}
	// Empty universe needs no sets.
	if got, cost := MinSetCover(0, nil, nil); len(got) != 0 || cost != 0 {
		t.Fatal("empty universe must cost 0")
	}
}

func TestMinDominatingSetSmall(t *testing.T) {
	if got := MinDominatingSet(gen.Star(7)); len(got) != 1 || got[0] != 0 {
		t.Fatalf("MDS(star) = %v, want [0]", got)
	}
	if got := MinDominatingSet(gen.Cycle(6)); len(got) != 2 {
		t.Fatalf("MDS(C6) size = %d, want 2", len(got))
	}
	if got := MinDominatingSet(gen.Path(4)); len(got) != 2 {
		t.Fatalf("MDS(P4) size = %d, want 2", len(got))
	}
}

// Property: MDS matches brute force and is dominating.
func TestMinDominatingSetMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(7)
		g := gen.GNP(n, 0.35, seed)
		got := MinDominatingSet(g)
		if !dominates(g, got) {
			return false
		}
		best := n + 1
		for mask := 1; mask < 1<<uint(n); mask++ {
			var set []int
			for v := 0; v < n; v++ {
				if mask&(1<<uint(v)) != 0 {
					set = append(set, v)
				}
			}
			if dominates(g, set) && len(set) < best {
				best = len(set)
			}
		}
		return len(got) == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func dominates(g *graph.Graph, set []int) bool {
	dominated := make([]bool, g.N())
	for _, v := range set {
		dominated[v] = true
		for _, arc := range g.Adj(v) {
			dominated[arc.To] = true
		}
	}
	for _, d := range dominated {
		if !d {
			return false
		}
	}
	return true
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// Property: the weighted solver matches weighted brute force on tiny
// instances.
func TestMinSpannerWeightedMatchesBruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.ConnectedGNP(5, 0.5, seed)
		if g.M() > 10 {
			return true
		}
		for i := 0; i < g.M(); i++ {
			g.SetWeight(i, float64(rng.Intn(4))) // includes zeros
		}
		_, cost, err := MinSpanner(g, SpannerOptions{K: 2})
		if err != nil {
			return false
		}
		best := math.Inf(1)
		m := g.M()
		for mask := 0; mask < 1<<uint(m); mask++ {
			h := graph.NewEdgeSet(m)
			c := 0.0
			for i := 0; i < m; i++ {
				if mask&(1<<uint(i)) != 0 {
					h.Add(i)
					c += g.Weight(i)
				}
			}
			if c < best && span.IsKSpanner(g, h, 2) {
				best = c
			}
		}
		return math.Abs(cost-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: directed solver matches brute force at k=2 as well.
func TestMinDirectedSpannerK2BruteProperty(t *testing.T) {
	f := func(seed int64) bool {
		d := gen.RandomDigraph(4, 0.5, seed)
		if d.M() == 0 || d.M() > 10 {
			return true
		}
		_, cost, err := MinDirectedSpanner(d, SpannerOptions{K: 2})
		if err != nil {
			return false
		}
		best := math.Inf(1)
		m := d.M()
		for mask := 0; mask < 1<<uint(m); mask++ {
			h := graph.NewEdgeSet(m)
			c := 0.0
			for i := 0; i < m; i++ {
				if mask&(1<<uint(i)) != 0 {
					h.Add(i)
					c++
				}
			}
			if c < best && span.IsDirectedKSpanner(d, h, 2) {
				best = c
			}
		}
		return cost == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
