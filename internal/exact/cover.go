package exact

import (
	"math"
	"sort"

	"distspanner/internal/graph"
)

// MinVertexCover computes a minimum vertex cover of g by branch-and-bound,
// returning the sorted cover. Intended for small graphs (n up to roughly
// 40). The lower-bound prune uses a greedy maximal matching: every matched
// edge needs at least one endpoint in any cover.
func MinVertexCover(g *graph.Graph) []int {
	n := g.N()
	inCover := make([]bool, n)
	// Upper bound: greedy 2-approximation (take both endpoints of a
	// maximal matching).
	best := greedyVertexCover(g)
	bestSize := len(best)

	var rec func(size int)
	rec = func(size int) {
		if size+matchingLowerBound(g, inCover) >= bestSize {
			return
		}
		// Find an uncovered edge.
		edge := -1
		for i := 0; i < g.M(); i++ {
			e := g.Edge(i)
			if !inCover[e.U] && !inCover[e.V] {
				edge = i
				break
			}
		}
		if edge < 0 {
			if size < bestSize {
				bestSize = size
				best = best[:0]
				for v := 0; v < n; v++ {
					if inCover[v] {
						best = append(best, v)
					}
				}
			}
			return
		}
		e := g.Edge(edge)
		for _, v := range []int{e.U, e.V} {
			inCover[v] = true
			rec(size + 1)
			inCover[v] = false
		}
	}
	rec(0)
	out := make([]int, len(best))
	copy(out, best)
	sort.Ints(out)
	return out
}

func greedyVertexCover(g *graph.Graph) []int {
	covered := make([]bool, g.N())
	var cover []int
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if !covered[e.U] && !covered[e.V] {
			covered[e.U], covered[e.V] = true, true
			cover = append(cover, e.U, e.V)
		}
	}
	return cover
}

// matchingLowerBound returns the size of a greedy matching among edges with
// both endpoints outside the partial cover: each needs one more vertex.
func matchingLowerBound(g *graph.Graph, inCover []bool) int {
	used := make(map[int]bool, g.N())
	lb := 0
	for i := 0; i < g.M(); i++ {
		e := g.Edge(i)
		if inCover[e.U] || inCover[e.V] || used[e.U] || used[e.V] {
			continue
		}
		used[e.U], used[e.V] = true, true
		lb++
	}
	return lb
}

// MinSetCover computes a minimum-weight set cover: pick a sub-collection of
// sets covering every element of [0, universe) minimizing total weight.
// weights nil means unit weights. It returns the chosen set indices
// (sorted) and the total weight; it returns nil if some element is
// uncoverable.
func MinSetCover(universe int, sets [][]int, weights []float64) ([]int, float64) {
	if weights == nil {
		weights = make([]float64, len(sets))
		for i := range weights {
			weights[i] = 1
		}
	}
	// coveredBy[e] lists the sets containing element e.
	coveredBy := make([][]int, universe)
	for si, set := range sets {
		for _, e := range set {
			coveredBy[e] = append(coveredBy[e], si)
		}
	}
	for e := 0; e < universe; e++ {
		if len(coveredBy[e]) == 0 {
			return nil, 0
		}
	}
	coverCount := make([]int, universe)
	chosen := make([]bool, len(sets))

	// Greedy incumbent: cheapest cost-per-new-element.
	bestSets, bestCost := greedySetCover(universe, sets, weights)

	var rec func(cost float64, uncovered int)
	rec = func(cost float64, uncovered int) {
		if cost >= bestCost-1e-12 {
			return
		}
		if uncovered == 0 {
			bestCost = cost
			bestSets = bestSets[:0]
			for si, c := range chosen {
				if c {
					bestSets = append(bestSets, si)
				}
			}
			return
		}
		// First-fail: uncovered element with fewest candidate sets.
		bestE, bestLen := -1, math.MaxInt
		for e := 0; e < universe; e++ {
			if coverCount[e] == 0 && len(coveredBy[e]) < bestLen {
				bestE, bestLen = e, len(coveredBy[e])
			}
		}
		options := append([]int(nil), coveredBy[bestE]...)
		sort.Slice(options, func(i, j int) bool { return weights[options[i]] < weights[options[j]] })
		for _, si := range options {
			if chosen[si] {
				continue // would already have covered bestE
			}
			chosen[si] = true
			newlyCovered := 0
			for _, e := range sets[si] {
				if coverCount[e] == 0 {
					newlyCovered++
				}
				coverCount[e]++
			}
			rec(cost+weights[si], uncovered-newlyCovered)
			for _, e := range sets[si] {
				coverCount[e]--
			}
			chosen[si] = false
		}
	}
	rec(0, universe)
	out := make([]int, len(bestSets))
	copy(out, bestSets)
	sort.Ints(out)
	return out, bestCost
}

func greedySetCover(universe int, sets [][]int, weights []float64) ([]int, float64) {
	covered := make([]bool, universe)
	remaining := universe
	var picked []int
	cost := 0.0
	for remaining > 0 {
		bestSet, bestRatio, bestNew := -1, math.Inf(1), 0
		for si, set := range sets {
			newCount := 0
			for _, e := range set {
				if !covered[e] {
					newCount++
				}
			}
			if newCount == 0 {
				continue
			}
			ratio := weights[si] / float64(newCount)
			if ratio < bestRatio {
				bestSet, bestRatio, bestNew = si, ratio, newCount
			}
		}
		if bestSet < 0 {
			return nil, math.Inf(1) // uncoverable; caller pre-checks
		}
		picked = append(picked, bestSet)
		cost += weights[bestSet]
		remaining -= bestNew
		for _, e := range sets[bestSet] {
			covered[e] = true
		}
	}
	return picked, cost
}

// MinDominatingSet computes a minimum dominating set of g exactly via the
// set-cover solver (closed neighborhoods as sets). Intended for small
// graphs.
func MinDominatingSet(g *graph.Graph) []int {
	n := g.N()
	sets := make([][]int, n)
	for v := 0; v < n; v++ {
		set := []int{v}
		for _, arc := range g.Adj(v) {
			set = append(set, arc.To)
		}
		sets[v] = set
	}
	chosen, _ := MinSetCover(n, sets, nil)
	return chosen
}
