// Package exact provides exact (exponential-time) solvers for the
// optimization problems the paper builds on: minimum k-spanner (undirected,
// directed, weighted, client-server), minimum vertex cover, minimum
// dominating set, and minimum set cover.
//
// They serve three purposes in the reproduction: measuring true
// approximation ratios on small instances, machine-checking the lower-bound
// gadget equalities (Claim 3.1), and performing the unbounded local
// computations that the LOCAL-model (1+ε) algorithm of Section 6 is allowed
// (finding optimal spanners of small balls). All solvers are branch-and-
// bound with first-fail branching and are intended for small inputs.
package exact

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"distspanner/internal/graph"
)

// ErrInfeasible is returned when some target edge cannot be covered by any
// allowed path, so no solution exists.
var ErrInfeasible = errors.New("exact: infeasible instance")

// ErrTooLarge is returned when the instance exceeds the configured safety
// caps for exhaustive search.
var ErrTooLarge = errors.New("exact: instance too large for exact search")

// SpannerOptions configures MinSpanner / MinDirectedSpanner.
type SpannerOptions struct {
	// K is the stretch. Must be >= 1.
	K int
	// Target is the set of edges that must be covered; nil means every edge
	// of the graph (the classic minimum k-spanner).
	Target *graph.EdgeSet
	// Allowed is the set of edges the spanner may use; nil means every edge.
	// Setting Target = client edges and Allowed = server edges yields the
	// client-server k-spanner problem.
	Allowed *graph.EdgeSet
	// MaxCovers caps the number of candidate covering paths enumerated per
	// target edge. Zero means the default of 5000.
	MaxCovers int
	// MaxNodes caps the number of branch-and-bound nodes explored. Zero
	// means the default of 5,000,000.
	MaxNodes int
}

type coverInstance struct {
	m       int
	weights []float64
	targets [][]cover // covers per target
	maxNode int
}

// cover is one way to satisfy a target: a set of edges that forms a path of
// length at most k between the target's endpoints (possibly the target edge
// itself).
type cover []int

// MinSpanner computes a minimum-cost k-spanner of g subject to opt,
// returning the spanner and its cost. Costs use g's weights (1 per edge
// when unweighted).
func MinSpanner(g *graph.Graph, opt SpannerOptions) (*graph.EdgeSet, float64, error) {
	if opt.K < 1 {
		return nil, 0, fmt.Errorf("exact: stretch k=%d must be >= 1", opt.K)
	}
	allowed := opt.Allowed
	if allowed == nil {
		allowed = graph.Full(g.M())
	}
	target := opt.Target
	if target == nil {
		target = graph.Full(g.M())
	}
	inst := &coverInstance{m: g.M(), weights: make([]float64, g.M()), maxNode: defaultInt(opt.MaxNodes, 5_000_000)}
	for i := 0; i < g.M(); i++ {
		inst.weights[i] = g.Weight(i)
	}
	maxCovers := defaultInt(opt.MaxCovers, 5000)
	var enumErr error
	target.ForEach(func(i int) {
		if enumErr != nil {
			return
		}
		e := g.Edge(i)
		covers, capped := enumerateCovers(undirectedPathGraph{g}, e.U, e.V, opt.K, allowed, maxCovers)
		if capped {
			enumErr = fmt.Errorf("%w: more than %d covers for target edge %d", ErrTooLarge, maxCovers, i)
			return
		}
		if covers == nil {
			enumErr = fmt.Errorf("%w: target edge %d has no allowed cover", ErrInfeasible, i)
			return
		}
		inst.targets = append(inst.targets, covers)
	})
	if enumErr != nil {
		return nil, 0, enumErr
	}
	return inst.solve()
}

// MinDirectedSpanner computes a minimum-cost k-spanner of the digraph d:
// every target edge (u, v) must be covered by a directed path of length at
// most k from u to v using only allowed edges.
func MinDirectedSpanner(d *graph.Digraph, opt SpannerOptions) (*graph.EdgeSet, float64, error) {
	if opt.K < 1 {
		return nil, 0, fmt.Errorf("exact: stretch k=%d must be >= 1", opt.K)
	}
	allowed := opt.Allowed
	if allowed == nil {
		allowed = graph.Full(d.M())
	}
	target := opt.Target
	if target == nil {
		target = graph.Full(d.M())
	}
	inst := &coverInstance{m: d.M(), weights: make([]float64, d.M()), maxNode: defaultInt(opt.MaxNodes, 5_000_000)}
	for i := 0; i < d.M(); i++ {
		inst.weights[i] = d.Weight(i)
	}
	maxCovers := defaultInt(opt.MaxCovers, 5000)
	var enumErr error
	target.ForEach(func(i int) {
		if enumErr != nil {
			return
		}
		e := d.Edge(i)
		covers, capped := enumerateCovers(directedPathGraph{d}, e.U, e.V, opt.K, allowed, maxCovers)
		if capped {
			enumErr = fmt.Errorf("%w: more than %d covers for target edge %d", ErrTooLarge, maxCovers, i)
			return
		}
		if covers == nil {
			enumErr = fmt.Errorf("%w: target edge %d has no allowed cover", ErrInfeasible, i)
			return
		}
		inst.targets = append(inst.targets, covers)
	})
	if enumErr != nil {
		return nil, 0, enumErr
	}
	return inst.solve()
}

// pathGraph abstracts undirected vs directed path enumeration.
type pathGraph interface {
	arcsFrom(v int) []graph.Arc
}

type undirectedPathGraph struct{ g *graph.Graph }

func (u undirectedPathGraph) arcsFrom(v int) []graph.Arc { return u.g.Adj(v) }

type directedPathGraph struct{ d *graph.Digraph }

func (dg directedPathGraph) arcsFrom(v int) []graph.Arc { return dg.d.Out(v) }

// enumerateCovers lists all simple paths from u to v of length at most k
// using only allowed edges, as edge-id sets. The direct edge (target
// itself), when allowed, appears as a singleton cover. It returns nil if no
// cover exists and capped=true if the enumeration hit maxCovers (in which
// case the list is incomplete and optimality cannot be guaranteed).
func enumerateCovers(pg pathGraph, u, v, k int, allowed *graph.EdgeSet, maxCovers int) (out []cover, capped bool) {
	var covers []cover
	visited := map[int]bool{u: true}
	var path []int
	var dfs func(x, depth int)
	dfs = func(x, depth int) {
		if len(covers) >= maxCovers {
			return
		}
		for _, arc := range pg.arcsFrom(x) {
			if !allowed.Has(arc.Edge) {
				continue
			}
			if arc.To == v {
				c := make(cover, len(path)+1)
				copy(c, path)
				c[len(path)] = arc.Edge
				covers = append(covers, c)
				if len(covers) >= maxCovers {
					return
				}
				continue
			}
			if depth+1 >= k || visited[arc.To] {
				continue
			}
			visited[arc.To] = true
			path = append(path, arc.Edge)
			dfs(arc.To, depth+1)
			path = path[:len(path)-1]
			visited[arc.To] = false
		}
	}
	dfs(u, 0)
	if len(covers) == 0 {
		return nil, false
	}
	return covers, len(covers) >= maxCovers
}

// solve runs branch-and-bound over the covering instance.
func (inst *coverInstance) solve() (*graph.EdgeSet, float64, error) {
	chosen := graph.NewEdgeSet(inst.m)
	// Zero-weight edges are free: include them up front (they can only
	// help and any optimal solution may include them at no cost).
	for i := 0; i < inst.m; i++ {
		if inst.weights[i] == 0 && inst.usable(i) {
			chosen.Add(i)
		}
	}
	// Initial upper bound from greedy: satisfy each target with its
	// cheapest cover.
	best := chosen.Clone()
	bestCost := inst.greedy(best)

	nodes := 0
	var rec func(cost float64)
	var tooLarge bool
	rec = func(cost float64) {
		if tooLarge {
			return
		}
		nodes++
		if nodes > inst.maxNode {
			tooLarge = true
			return
		}
		if cost >= bestCost-1e-12 {
			return
		}
		ti, covers := inst.pickUnsatisfied(chosen)
		if ti < 0 {
			bestCost = cost
			best = chosen.Clone()
			return
		}
		// Branch over the covers of the chosen target, cheapest first.
		type branch struct {
			add []int
			inc float64
		}
		branches := make([]branch, 0, len(covers))
		for _, c := range covers {
			var add []int
			inc := 0.0
			for _, e := range c {
				if !chosen.Has(e) {
					add = append(add, e)
					inc += inst.weights[e]
				}
			}
			branches = append(branches, branch{add: add, inc: inc})
		}
		sort.Slice(branches, func(i, j int) bool { return branches[i].inc < branches[j].inc })
		for _, b := range branches {
			if cost+b.inc >= bestCost-1e-12 {
				continue
			}
			for _, e := range b.add {
				chosen.Add(e)
			}
			rec(cost + b.inc)
			for _, e := range b.add {
				chosen.Remove(e)
			}
		}
	}
	rec(chosenCost(inst.weights, chosen))
	if tooLarge {
		return nil, 0, ErrTooLarge
	}
	return best, bestCost, nil
}

// usable reports whether edge i appears in some cover (adding unusable
// zero-weight edges would be harmless but pollutes solutions).
func (inst *coverInstance) usable(i int) bool {
	for _, covers := range inst.targets {
		for _, c := range covers {
			for _, e := range c {
				if e == i {
					return true
				}
			}
		}
	}
	return false
}

// pickUnsatisfied returns the index and covers of an unsatisfied target
// with the fewest covers (first-fail), or -1 if all targets are satisfied.
func (inst *coverInstance) pickUnsatisfied(chosen *graph.EdgeSet) (int, []cover) {
	bestIdx, bestLen := -1, math.MaxInt
	for ti, covers := range inst.targets {
		satisfied := false
		for _, c := range covers {
			if coverSatisfied(c, chosen) {
				satisfied = true
				break
			}
		}
		if !satisfied && len(covers) < bestLen {
			bestIdx, bestLen = ti, len(covers)
		}
	}
	if bestIdx < 0 {
		return -1, nil
	}
	return bestIdx, inst.targets[bestIdx]
}

func coverSatisfied(c cover, chosen *graph.EdgeSet) bool {
	for _, e := range c {
		if !chosen.Has(e) {
			return false
		}
	}
	return true
}

// greedy fills chosen to feasibility by repeatedly taking the cheapest
// cover of an unsatisfied target, returning the resulting cost. It mutates
// chosen into a feasible solution (used as the initial incumbent).
func (inst *coverInstance) greedy(chosen *graph.EdgeSet) float64 {
	for {
		ti, covers := inst.pickUnsatisfied(chosen)
		if ti < 0 {
			break
		}
		bestInc := math.Inf(1)
		var bestAdd []int
		for _, c := range covers {
			inc := 0.0
			var add []int
			for _, e := range c {
				if !chosen.Has(e) {
					inc += inst.weights[e]
					add = append(add, e)
				}
			}
			if inc < bestInc {
				bestInc, bestAdd = inc, add
			}
		}
		for _, e := range bestAdd {
			chosen.Add(e)
		}
	}
	return chosenCost(inst.weights, chosen)
}

func chosenCost(weights []float64, s *graph.EdgeSet) float64 {
	total := 0.0
	s.ForEach(func(i int) { total += weights[i] })
	return total
}

func defaultInt(v, def int) int {
	if v <= 0 {
		return def
	}
	return v
}
