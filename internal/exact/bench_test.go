package exact

import (
	"testing"

	"distspanner/internal/gen"
)

func BenchmarkMinSpannerSmall(b *testing.B) {
	g := gen.ConnectedGNP(9, 0.45, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MinSpanner(g, SpannerOptions{K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinVertexCover(b *testing.B) {
	g := gen.GNP(18, 0.3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinVertexCover(g)
	}
}

func BenchmarkMinDominatingSet(b *testing.B) {
	g := gen.ConnectedGNP(18, 0.25, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinDominatingSet(g)
	}
}
