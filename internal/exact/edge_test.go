package exact

import (
	"errors"
	"testing"

	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/span"
)

func TestMinSpannerCoverCapReturnsTooLarge(t *testing.T) {
	// A dense clique at k=3 has far more than 3 covering paths per edge.
	g := gen.Clique(8)
	_, _, err := MinSpanner(g, SpannerOptions{K: 3, MaxCovers: 3})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge on cover cap, got %v", err)
	}
}

func TestMinSpannerNodeCap(t *testing.T) {
	g := gen.Clique(9)
	_, _, err := MinSpanner(g, SpannerOptions{K: 2, MaxNodes: 1})
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge on node cap, got %v", err)
	}
}

func TestMinSpannerEmptyTarget(t *testing.T) {
	g := gen.Clique(4)
	empty := graph.NewEdgeSet(g.M())
	h, cost, err := MinSpanner(g, SpannerOptions{K: 2, Target: empty})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || h.Len() != 0 {
		t.Fatalf("empty target must cost 0, got %f with %d edges", cost, h.Len())
	}
}

func TestMinSpannerStretchOneKeepsTargets(t *testing.T) {
	// At k=1, every target edge can only be covered by itself.
	g := gen.ConnectedGNP(8, 0.5, 1)
	h, cost, err := MinSpanner(g, SpannerOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if int(cost) != g.M() || h.Len() != g.M() {
		t.Fatalf("k=1 must keep all %d edges, got %d", g.M(), h.Len())
	}
}

func TestMinSpannerWeightedTieAmongPaths(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3 plus chord 0-3 (weight 3). Both 2-paths
	// cost 2; the solver must pick one, not both.
	g := graph.New(4)
	e01 := g.AddEdge(0, 1)
	e13 := g.AddEdge(1, 3)
	e02 := g.AddEdge(0, 2)
	e23 := g.AddEdge(2, 3)
	chord := g.AddEdge(0, 3)
	for _, e := range []int{e01, e13, e02, e23} {
		g.SetWeight(e, 1)
	}
	g.SetWeight(chord, 3)
	h, cost, err := MinSpanner(g, SpannerOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !span.IsKSpanner(g, h, 2) {
		t.Fatal("invalid spanner")
	}
	// OPT: all four cheap edges (the side paths also need covering: each
	// weight-1 edge needs itself or a 2-path; the two 2-paths cover the
	// chord; each cheap edge's only cheap cover is itself) => cost 4.
	if cost != 4 {
		t.Fatalf("cost = %f, want 4", cost)
	}
	if h.Has(chord) {
		t.Fatal("chord should be covered by a 2-path, not kept")
	}
}

func TestMinDirectedSpannerClientServer(t *testing.T) {
	// Directed square with a directed chord as the only target.
	d := graph.NewDigraph(3)
	a := d.AddEdge(0, 1)
	b := d.AddEdge(1, 2)
	c := d.AddEdge(0, 2)
	target := graph.NewEdgeSet(d.M())
	target.Add(c)
	allowed := graph.NewEdgeSet(d.M())
	allowed.Add(a)
	allowed.Add(b)
	h, cost, err := MinDirectedSpanner(d, SpannerOptions{K: 2, Target: target, Allowed: allowed})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 || !h.Has(a) || !h.Has(b) || h.Has(c) {
		t.Fatalf("directed client-server solution wrong: %v cost %f", h.Slice(), cost)
	}
}

func TestMinSetCoverWeightedPrefersCheap(t *testing.T) {
	sets := [][]int{{0}, {1}, {0, 1}}
	chosen, cost := MinSetCover(2, sets, []float64{0.4, 0.4, 1.0})
	if cost != 0.8 || len(chosen) != 2 {
		t.Fatalf("chose %v at %f, want the two cheap singletons at 0.8", chosen, cost)
	}
	chosen, cost = MinSetCover(2, sets, []float64{0.6, 0.6, 1.0})
	if cost != 1.0 || len(chosen) != 1 || chosen[0] != 2 {
		t.Fatalf("chose %v at %f, want the big set at 1.0", chosen, cost)
	}
}
