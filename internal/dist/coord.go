package dist

import (
	"errors"
	"fmt"
	"sync"

	"distspanner/internal/graph"
)

// The coordinator half of the sharded runner. Coordinate owns exactly
// the global decisions of runStep — finish when every vertex retired,
// quiesce when nobody yielded and no pending delivery can wake anyone,
// abort on the round limit / cancellation / an enforced bandwidth
// violation — and the global accounting (Stats, RoundActivity, the
// OnRound hook, Phase snapshots). Everything per-vertex stays on the
// workers. The decisions are taken in runStep's exact order with
// runStep's exact error formats, which is what makes a distributed run
// indistinguishable from an in-process ModeStep run: same Stats, same
// per-vertex trace digests, same errors.

// ShardError is a worker-side failure (machine panic, boxed send,
// program resolution) surfaced through the protocol; the coordinator
// aborts the run and returns it.
type ShardError struct {
	Shard int
	Msg   string
}

func (e *ShardError) Error() string { return fmt.Sprintf("dist: shard %d: %s", e.Shard, e.Msg) }

// CoordConfig configures a Coordinate run. The engine-semantics fields
// (Graph, Seed, Bandwidth, Enforce, MaxRounds, CutSide, OnRound, Cancel,
// Tracer) mean exactly what they mean on Config.
type CoordConfig struct {
	Graph     *graph.Graph
	Seed      int64
	Algo      string
	Bandwidth int
	Enforce   bool
	MaxRounds int
	CutSide   []bool
	OnRound   func(RoundActivity)
	Cancel    <-chan struct{}
	// Tracer receives the run's logical transcript: Phase snapshots live
	// at each committed round, per-vertex events replayed in vertex-major
	// order after the run completes (workers buffer them). The timing
	// channel (RoundTime) does not exist on the sharded path.
	Tracer Tracer
	// Collect asks workers to ship per-vertex program outputs, merged
	// into CoordResult.Outputs.
	Collect bool
}

// CoordResult is a completed distributed run.
type CoordResult struct {
	Stats Stats
	// Outputs is the per-vertex program output (Collect only; nil
	// entries for vertices whose program produced none).
	Outputs [][]int
}

// Coordinate drives one distributed run over the workers connected by
// ct: it partitions the graph contiguously, ships setup frames, runs
// the round/quiescence protocol, and merges Stats, activity, outputs,
// and trace events. On any abort — including a transport failure — it
// drains every worker's final frame (best effort) so no worker is left
// mid-protocol, and replays nothing into the tracer: a failed run's
// transcript contains no partial round.
func Coordinate(ct CoordTransport, cfg CoordConfig) (*CoordResult, error) {
	if cfg.Graph == nil {
		return nil, errors.New("dist: CoordConfig.Graph is nil")
	}
	n := cfg.Graph.N()
	if cfg.CutSide != nil && len(cfg.CutSide) != n {
		return nil, fmt.Errorf("dist: CutSide has %d entries for %d vertices", len(cfg.CutSide), n)
	}
	w := ct.Workers()
	if w < 1 {
		return nil, errors.New("dist: Coordinate needs at least one worker")
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	cuts := PartitionEven(n, w)
	trace := cfg.Tracer != nil
	meterDlv := cfg.OnRound != nil || trace
	for i := 0; i < w; i++ {
		su := &SetupFrame{
			Shard: i, Workers: w, Cuts: cuts, Graph: cfg.Graph,
			Algo: cfg.Algo, Seed: cfg.Seed, Bandwidth: cfg.Bandwidth,
			Cut: cfg.CutSide, Trace: trace, Collect: cfg.Collect,
		}
		if err := ct.Send(i, &Frame{Type: FrameSetup, Setup: su}); err != nil {
			return nil, fmt.Errorf("%w: setup to worker %d: %v", ErrTransport, i, err)
		}
	}

	var (
		stats   Stats
		rounds  int
		runErr  error
		reports = make([]*RoundFrame, w)
		wakes   = make([]*WakeFrame, w)
	)
	canceled := func() bool {
		if cfg.Cancel == nil {
			return false
		}
		select {
		case <-cfg.Cancel:
			return true
		default:
			return false
		}
	}
	// abortAll best-effort ships the abort decision to every worker so
	// they stop waiting for batches/decisions and send their final frame.
	abortAll := func() {
		d := &DecisionFrame{Kind: DecideAbort, Round: rounds}
		for i := 0; i < w; i++ {
			ct.Send(i, &Frame{Type: FrameDecision, Decision: d})
		}
	}
	fail := func(err error) {
		runErr = err
		abortAll()
	}

protocol:
	for {
		// Phase 1: gather every shard's classification/metering report.
		for i := 0; i < w; i++ {
			f, err := ct.Recv(i)
			if err != nil {
				runErr = fmt.Errorf("%w: round report from worker %d: %v", ErrTransport, i, err)
				abortAll()
				break protocol
			}
			if f.Type != FrameRound || f.Round == nil {
				runErr = fmt.Errorf("%w: expected round frame from worker %d, got type %d", ErrTransport, i, f.Type)
				abortAll()
				break protocol
			}
			reports[i] = f.Round
		}
		for i, r := range reports {
			if r.Err != "" {
				fail(&ShardError{Shard: i, Msg: r.Err})
				break protocol
			}
		}
		// Relay: worker d's inbound view is column d of the report matrix.
		for d := 0; d < w; d++ {
			bf := &BatchesFrame{In: make([]RecBatch, w)}
			for s := 0; s < w; s++ {
				if s == d || reports[s].Out == nil {
					continue
				}
				bf.In[s] = reports[s].Out[d]
			}
			if err := ct.Send(d, &Frame{Type: FrameBatches, Batches: bf}); err != nil {
				fail(fmt.Errorf("%w: batches to worker %d: %v", ErrTransport, d, err))
				break protocol
			}
		}
		// Phase 2: gather the dry wake scans.
		for i := 0; i < w; i++ {
			f, err := ct.Recv(i)
			if err != nil {
				fail(fmt.Errorf("%w: wake report from worker %d: %v", ErrTransport, i, err))
				break protocol
			}
			if f.Type != FrameWake || f.Wake == nil {
				fail(fmt.Errorf("%w: expected wake frame from worker %d, got type %d", ErrTransport, i, f.Type))
				break protocol
			}
			wakes[i] = f.Wake
		}

		// Decision, in runStep's order.
		var (
			sumStepped, sumYielded, sumParked, sumDone, sumSenders int
			sumWoken, sumDeliv                                     int
			sumDelivBits                                           int64
			anyWake                                                bool
			meter                                                  MeterReport
		)
		meter.ViolSender = -1
		for i := 0; i < w; i++ {
			r, wk := reports[i], wakes[i]
			sumStepped += r.Stepped
			sumYielded += r.Yielded
			sumParked += r.ParkedNow
			sumDone += r.DoneTotal
			sumSenders += r.Senders
			meter.Msgs += r.Meter.Msgs
			meter.Bits += r.Meter.Bits
			meter.CutBits += r.Meter.CutBits
			if r.Meter.MaxMsg > meter.MaxMsg {
				meter.MaxMsg = r.Meter.MaxMsg
			}
			if r.Meter.MaxEdge > meter.MaxEdge {
				meter.MaxEdge = r.Meter.MaxEdge
			}
			meter.Violations += r.Meter.Violations
			if r.Meter.ViolSender >= 0 && meter.ViolSender < 0 {
				// Shards are ascending vertex ranges gathered in index order,
				// so the first shard's first violator is the global first.
				meter.ViolSender, meter.ViolTo, meter.ViolBits = r.Meter.ViolSender, r.Meter.ViolTo, r.Meter.ViolBits
			}
			anyWake = anyWake || wk.WouldWake
			sumWoken += wk.Woken
			sumDeliv += wk.Delivered
			sumDelivBits += wk.DeliveredBits
		}
		foldMeter := func() {
			stats.Messages += meter.Msgs
			stats.TotalBits += meter.Bits
			stats.CutBits += meter.CutBits
			if meter.MaxMsg > stats.MaxMessageBits {
				stats.MaxMessageBits = meter.MaxMsg
			}
			if meter.MaxEdge > stats.MaxEdgeRoundBits {
				stats.MaxEdgeRoundBits = meter.MaxEdge
			}
			stats.BandwidthViolations += meter.Violations
		}
		bwErr := func(round int) error {
			return fmt.Errorf("%w: vertex %d sent %d bits to %d in round %d (budget %d)",
				ErrBandwidth, meter.ViolSender, meter.ViolBits, meter.ViolTo, round, cfg.Bandwidth)
		}
		decide := func(kind DecisionKind, round int) error {
			d := &DecisionFrame{Kind: kind, Round: round}
			for i := 0; i < w; i++ {
				if err := ct.Send(i, &Frame{Type: FrameDecision, Decision: d}); err != nil {
					return fmt.Errorf("%w: decision to worker %d: %v", ErrTransport, i, err)
				}
			}
			return nil
		}

		if sumDone == n {
			// Everyone retired: meter-and-drop last words without charging a
			// round — but an enforced violation in them still aborts, like
			// route would.
			if cfg.Enforce && meter.ViolSender >= 0 {
				fail(bwErr(rounds))
				break protocol
			}
			foldMeter()
			stats.Rounds = rounds
			if err := decide(DecideFinish, rounds); err != nil {
				fail(err)
			}
			break protocol
		}
		if sumYielded == 0 && !anyWake {
			// Nobody asked for another round and no pending delivery can wake
			// anyone: meter-and-drop, then quiesce the parked population.
			if cfg.Enforce && meter.ViolSender >= 0 {
				fail(bwErr(rounds))
				break protocol
			}
			foldMeter()
			stats.Rounds = rounds
			if err := decide(DecideQuiesce, rounds); err != nil {
				fail(err)
			}
			break protocol
		}
		r := rounds + 1
		if r > maxRounds {
			fail(fmt.Errorf("%w: %d rounds executed (MaxRounds %d)", ErrRoundLimit, r, maxRounds))
			break protocol
		}
		if canceled() {
			fail(fmt.Errorf("%w after %d rounds", ErrCanceled, r))
			break protocol
		}
		if cfg.Enforce && meter.ViolSender >= 0 {
			fail(bwErr(r))
			break protocol
		}
		rounds = r
		foldMeter()
		act := RoundActivity{Round: r, Active: sumStepped, Parked: sumParked - sumWoken, Senders: sumSenders}
		if meterDlv {
			act.Delivered, act.DeliveredBits = sumDeliv, sumDelivBits
		}
		stats.ActiveSteps += int64(act.Active)
		stats.ParkedSteps += int64(act.Parked)
		if act.Active > stats.PeakActive {
			stats.PeakActive = act.Active
		}
		if trace {
			cfg.Tracer.Phase(act)
		}
		if cfg.OnRound != nil {
			cfg.OnRound(act)
		}
		if err := decide(DecideCommit, r); err != nil {
			fail(err)
			break protocol
		}
	}

	// Drain one final frame per worker — on success and on abort alike —
	// so no worker is ever left blocked mid-send.
	var outputs [][]int
	if cfg.Collect {
		outputs = make([][]int, n)
	}
	var events [][]TraceEvent
	if trace {
		events = make([][]TraceEvent, n)
	}
	for i := 0; i < w; i++ {
		f, err := ct.Recv(i)
		if err != nil {
			if runErr == nil {
				runErr = fmt.Errorf("%w: result from worker %d: %v", ErrTransport, i, err)
			}
			continue
		}
		if f.Type != FrameResult || f.Result == nil {
			if runErr == nil {
				runErr = fmt.Errorf("%w: expected result frame from worker %d, got type %d", ErrTransport, i, f.Type)
			}
			continue
		}
		res := f.Result
		if res.Err != "" && runErr == nil {
			runErr = &ShardError{Shard: i, Msg: res.Err}
		}
		lo, hi := cuts[i], cuts[i+1]
		if outputs != nil && len(res.Outputs) == hi-lo {
			copy(outputs[lo:hi], res.Outputs)
		}
		if events != nil && len(res.Events) == hi-lo {
			copy(events[lo:hi], res.Events)
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	if trace {
		// Replay the buffered per-vertex transcripts vertex-major. Each
		// vertex's order is exactly what the worker emitted; cross-vertex
		// interleaving is unobservable by contract (trace.go).
		for v := 0; v < n; v++ {
			for _, ev := range events[v] {
				cfg.Tracer.Event(ev)
			}
		}
	}
	return &CoordResult{Stats: stats, Outputs: outputs}, nil
}

// runSharded is RunMachines' Config.Shards path: the same machines, run
// distributed over an in-process channel transport — Coordinate on the
// calling goroutine, one ServeShard goroutine per shard, all sharing the
// caller's factory through a resolver closure.
func runSharded(cfg Config, factory func(*Ctx) Machine) (*Stats, error) {
	if cfg.Graph == nil {
		return nil, errors.New("dist: Config.Graph is nil")
	}
	if cfg.Mode != ModeAuto && cfg.Mode != ModeStep {
		return nil, errors.New("dist: Config.Shards runs the step engine: Mode must be ModeAuto or ModeStep")
	}
	resolver := func(string, *graph.Graph, int64) (ShardProgram, error) {
		return ShardProgram{Factory: factory}, nil
	}
	ct, wts := NewChanCluster(cfg.Shards)
	var wg sync.WaitGroup
	for i := range wts {
		wg.Add(1)
		go func(wt WorkerTransport) {
			defer wg.Done()
			ServeShard(wt, resolver)
		}(wts[i])
	}
	res, err := Coordinate(ct, CoordConfig{
		Graph: cfg.Graph, Seed: cfg.Seed,
		Bandwidth: cfg.Bandwidth, Enforce: cfg.Enforce,
		MaxRounds: cfg.MaxRounds, CutSide: cfg.CutSide,
		OnRound: cfg.OnRound, Cancel: cfg.Cancel, Tracer: cfg.Tracer,
	})
	ct.Close()
	wg.Wait()
	if err != nil {
		return nil, err
	}
	s := res.Stats
	return &s, nil
}
