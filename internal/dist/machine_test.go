package dist

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"distspanner/internal/graph"
)

// Tests for the state-machine surface (machine.go), the goroutine-free
// step engine (step.go), the retire-flush delivery rule, and run
// cancellation. The chaos matrix here is the three-engine analogue of
// TestRecCrossModeChaosEquivalence: the same Machine must produce
// bit-identical outputs and Stats under barrier, event, and step
// scheduling.

// chaosMachine is recChaosProc as an explicit state machine: per
// iteration it may fault (retire early), send records to random
// neighbors or broadcast with a shared tail, then yields or parks, and
// folds every delivery into a per-vertex hash.
type chaosMachine struct {
	out    []int64
	h      int64
	r      int
	rounds int
}

func (m *chaosMachine) Step(c *Ctx, in StepIn) StepStatus {
	if in.Quiesced {
		m.h = m.h*31 + 7
		m.out[c.ID()] = m.h
		return StepDone
	}
	if in.Start {
		m.h = int64(c.ID())
	} else {
		for i := range in.Recs {
			rec := &in.Recs[i]
			m.h = m.h*31 + int64(rec.From)<<2 + int64(rec.Tag) + rec.A + rec.B
			for _, x := range rec.Ints {
				m.h = m.h*33 + int64(x)
			}
		}
		m.r++
	}
	if m.r >= m.rounds {
		m.out[c.ID()] = m.h
		return StepDone
	}
	if c.Rand().Intn(16) == 0 {
		m.h = m.h*31 + 13 // fault: retire early
		m.out[c.ID()] = m.h
		return StepDone
	}
	roll := c.Rand().Intn(8)
	switch {
	case roll == 0 && c.Degree() > 0:
		c.BroadcastRec(Rec{Tag: 2, A: int64(m.r), Ints: []int{m.r, c.ID()}}, 32)
	case roll < 3 && c.Degree() > 0:
		to := c.Neighbors()[c.Rand().Intn(c.Degree())]
		c.SendRec(to, Rec{Tag: 1, B: int64(to), F1: float64(m.r)}, 16)
	}
	if roll >= 6 {
		return StepPark
	}
	return StepYield
}

// machineModeConfigs is the full engine matrix machines run under.
func machineModeConfigs(g *graph.Graph, seed int64) []Config {
	return []Config{
		{Graph: g, Seed: seed, Mode: ModeBarrier},
		{Graph: g, Seed: seed, Mode: ModeBarrier, Workers: 3},
		{Graph: g, Seed: seed, Mode: ModeEvent},
		{Graph: g, Seed: seed, Mode: ModeEvent, Workers: 3},
		{Graph: g, Seed: seed, Mode: ModeStep},
		{Graph: g, Seed: seed, Mode: ModeStep, Workers: 3},
		{Graph: g, Seed: seed}, // ModeAuto: resolves to ModeStep for machines
	}
}

func TestMachineCrossModeChaosEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"clique16":   clique(16),
		"path33":     path(33),
		"ring64":     benchGraph(64),
		"sparse2x40": func() *graph.Graph { g := graph.New(80); g.AddEdge(0, 79); return g }(),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				var ref []int64
				var refStats Stats
				for i, cfg := range machineModeConfigs(g, seed) {
					out := make([]int64, g.N())
					stats, err := RunMachines(cfg, func(c *Ctx) Machine {
						return &chaosMachine{out: out, rounds: 12}
					})
					if err != nil {
						t.Fatalf("config %d: %v", i, err)
					}
					if i == 0 {
						ref, refStats = out, *stats
						continue
					}
					if !reflect.DeepEqual(ref, out) {
						t.Fatalf("config %d (mode=%v workers=%d) diverged from barrier reference", i, cfg.Mode, cfg.Workers)
					}
					if refStats != *stats {
						t.Fatalf("config %d stats diverged:\nref: %+v\ngot: %+v", i, refStats, *stats)
					}
				}
			})
		}
	}
}

// lastWordsMachine: vertex 0 sends one record and immediately retires;
// every other vertex parks and must still receive the delivery — the
// retire-flush contract.
type lastWordsMachine struct {
	got []int64
}

func (m *lastWordsMachine) Step(c *Ctx, in StepIn) StepStatus {
	if c.ID() == 0 {
		c.SendRec(1, Rec{Tag: 1, A: 9}, 8)
		return StepDone // last words ride the retirement
	}
	if in.Quiesced {
		return StepDone
	}
	if in.Start {
		return StepPark
	}
	for i := range in.Recs {
		m.got = append(m.got, in.Recs[i].A)
	}
	return StepPark
}

func TestRetireFlushDeliversLastWords(t *testing.T) {
	// A vertex that retires with sends queued commits them with the
	// retirement: parked receivers wake on the delivery, and the round
	// counts because somebody observed it.
	g := path(3)
	for i, cfg := range machineModeConfigs(g, 1) {
		var m1 lastWordsMachine
		stats, err := RunMachines(cfg, func(c *Ctx) Machine {
			if c.ID() == 1 {
				return &m1
			}
			return &lastWordsMachine{}
		})
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if !reflect.DeepEqual(m1.got, []int64{9}) {
			t.Fatalf("config %d: receiver saw %v, want [9]", i, m1.got)
		}
		if stats.Rounds != 1 || stats.Messages != 1 {
			t.Fatalf("config %d: stats = %+v, want Rounds=1 Messages=1", i, stats)
		}
	}

	// The same contract holds for blocking procedures: a proc that sends
	// and returns without another block still delivers.
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		var got []int
		stats, err := Run(Config{Graph: path(3), Seed: 1, Mode: mode}, func(ctx *Ctx) {
			switch ctx.ID() {
			case 0:
				ctx.Send(1, blob{val: 9, size: 8})
				return // no trailing NextRound
			case 1:
				if msgs, ok := ctx.Recv(); ok {
					for _, m := range msgs {
						got = append(got, m.Payload.(blob).val)
					}
					ctx.Recv() // quiesce
				}
			default:
				ctx.Recv()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []int{9}) {
			t.Fatalf("mode %v: receiver saw %v, want [9]", mode, got)
		}
		if stats.Rounds != 1 || stats.Messages != 1 {
			t.Fatalf("mode %v: stats = %+v, want Rounds=1 Messages=1", mode, stats)
		}
	}
}

func TestRetireFlushSilentDrop(t *testing.T) {
	// Last words that can only reach already-retired vertices are metered
	// (the bits were sent) but dropped without charging a round: no
	// receiver could observe that boundary.
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		stats, err := Run(Config{Graph: path(2), Seed: 1, Mode: mode}, func(ctx *Ctx) {
			if ctx.ID() == 1 {
				return // retires instantly
			}
			ctx.NextRound()            // round 1: vertex 1 already gone
			ctx.Send(1, blob{size: 8}) // addressed to the departed
			ctx.Send(1, blob{size: 8}) // (twice, to check metering adds up)
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rounds != 1 {
			t.Fatalf("mode %v: Rounds = %d, want 1 (silent drop must not count a round)", mode, stats.Rounds)
		}
		if stats.Messages != 2 || stats.TotalBits != 16 {
			t.Fatalf("mode %v: dropped last words not metered: %+v", mode, stats)
		}
	}
	// Machine flavor, all engines: vertex 1 retires instantly, and the
	// survivor's final words go to the corpse after one observed round.
	for i, cfg := range machineModeConfigs(path(2), 1) {
		stats, err := RunMachines(cfg, func(c *Ctx) Machine {
			return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
				if ctx.ID() == 1 {
					return StepDone
				}
				if in.Start {
					return StepYield
				}
				ctx.SendRec(1, Rec{Tag: 1}, 8)
				return StepDone
			})
		})
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if stats.Rounds != 1 || stats.Messages != 1 || stats.TotalBits != 8 {
			t.Fatalf("config %d: stats = %+v, want Rounds=1 Messages=1 TotalBits=8", i, stats)
		}
	}
}

// machineFunc adapts a function to the Machine interface.
type machineFunc func(*Ctx, StepIn) StepStatus

func (f machineFunc) Step(c *Ctx, in StepIn) StepStatus { return f(c, in) }

func TestCancelAbortsRun(t *testing.T) {
	// A canceled run aborts at the next round boundary with ErrCanceled,
	// in every mode, releasing every vertex (Run only returns once all
	// vertex goroutines have exited, so -race verifies no writer outlives
	// the call).
	g := clique(8)
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		cancel := make(chan struct{})
		var canceledAt int
		_, err := Run(Config{Graph: g, Seed: 1, Mode: mode, Cancel: cancel,
			OnRound: func(a RoundActivity) {
				if a.Round == 5 {
					canceledAt = a.Round
					close(cancel)
				}
			}}, func(ctx *Ctx) {
			for {
				ctx.Broadcast(blob{size: 4})
				ctx.NextRound()
			}
		})
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("mode %v: err = %v, want ErrCanceled", mode, err)
		}
		if canceledAt != 5 {
			t.Fatalf("mode %v: cancel fired at round %d", mode, canceledAt)
		}
	}
	// Step mode, via a busy machine.
	cancel := make(chan struct{})
	_, err := RunMachines(Config{Graph: g, Seed: 1, Mode: ModeStep, Cancel: cancel,
		OnRound: func(a RoundActivity) {
			if a.Round == 5 {
				close(cancel)
			}
		}}, func(c *Ctx) Machine {
		return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
			ctx.BroadcastRec(Rec{Tag: 1}, 4)
			return StepYield
		})
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("step mode: err = %v, want ErrCanceled", err)
	}
	// A pre-closed cancel aborts before any traffic is delivered.
	pre := make(chan struct{})
	close(pre)
	_, err = Run(Config{Graph: g, Seed: 1, Cancel: pre}, func(ctx *Ctx) {
		for {
			ctx.Broadcast(blob{size: 4})
			ctx.NextRound()
		}
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-closed cancel: err = %v, want ErrCanceled", err)
	}
}

func TestModeStepValidation(t *testing.T) {
	// Blocking procedures cannot run under ModeStep...
	_, err := Run(Config{Graph: path(2), Mode: ModeStep}, func(*Ctx) {})
	if err == nil || !strings.Contains(err.Error(), "RunMachines") {
		t.Fatalf("Run accepted ModeStep: err = %v", err)
	}
	// ...and a machine that calls a blocking primitive mid-step is a
	// protocol bug, reported like any vertex panic.
	_, err = RunMachines(Config{Graph: path(2), Mode: ModeStep}, func(c *Ctx) Machine {
		return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
			ctx.NextRound()
			return StepDone
		})
	})
	if err == nil || !strings.Contains(err.Error(), "StepYield/StepPark") {
		t.Fatalf("blocking call inside a step: err = %v", err)
	}
	// RunMachines validates like Run.
	if _, err := RunMachines(Config{}, func(c *Ctx) Machine { return nil }); err == nil {
		t.Fatal("nil graph must error")
	}
	if _, err := RunMachines(Config{Graph: path(2), Mode: Mode(99)}, func(c *Ctx) Machine { return nil }); err == nil {
		t.Fatal("invalid mode must error")
	}
	stats, err := RunMachines(Config{Graph: graph.New(0)}, func(c *Ctx) Machine { return nil })
	if err != nil || *stats != (Stats{}) {
		t.Fatalf("empty graph: %+v, %v", stats, err)
	}
}

func TestMachineActivityAccounting(t *testing.T) {
	// The activity fold must be identical across engines for machines,
	// including the OnRound curve.
	g := benchGraph(32)
	var ref []RoundActivity
	for i, cfg := range machineModeConfigs(g, 3) {
		var curve []RoundActivity
		cfg.OnRound = func(a RoundActivity) { curve = append(curve, a) }
		out := make([]int64, g.N())
		if _, err := RunMachines(cfg, func(c *Ctx) Machine {
			return &chaosMachine{out: out, rounds: 8}
		}); err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if i == 0 {
			ref = curve
			continue
		}
		if !reflect.DeepEqual(ref, curve) {
			t.Fatalf("config %d activity curve diverged:\nref: %+v\ngot: %+v", i, ref, curve)
		}
	}
}
