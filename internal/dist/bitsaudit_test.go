package dist

import (
	"strings"
	"testing"
)

// TestAuditPayloadFields exercises the conformance helper itself: the
// passing case, the three failure modes, and the per-element charging of
// slice and array fields.
func TestAuditPayloadFields(t *testing.T) {
	type msg struct {
		ids  []int
		r    int64
		n    int
		flag bool
	}
	m := msg{ids: []int{1, 2, 3}, r: 9, n: 64, flag: true}
	ok := map[string]int{"ids": 6, "r": 24, "n": 0, "flag": 1}
	bits := 3*6 + 24 + 1
	if err := AuditPayloadFields(m, bits, ok); err != nil {
		t.Fatalf("conforming payload rejected: %v", err)
	}
	// Undercount: Bits below the field minimum.
	if err := AuditPayloadFields(m, bits-1, ok); err == nil || !strings.Contains(err.Error(), "under-accounts") {
		t.Fatalf("undercount not caught: %v", err)
	}
	// A field with no accounting entry (the "field added without
	// accounting" CI guard).
	missing := map[string]int{"ids": 6, "r": 24, "n": 0}
	if err := AuditPayloadFields(m, bits, missing); err == nil || !strings.Contains(err.Error(), "no accounting entry") {
		t.Fatalf("unaccounted field not caught: %v", err)
	}
	// A stale table naming a field the struct no longer has.
	stale := map[string]int{"ids": 6, "r": 24, "n": 0, "flag": 1, "gone": 8}
	if err := AuditPayloadFields(m, bits, stale); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("stale audit entry not caught: %v", err)
	}
	// Non-struct payloads are rejected.
	if err := AuditPayloadFields(42, 1, nil); err == nil {
		t.Fatal("non-struct payload accepted")
	}
	// Array-element charging: [2]int arrays count per element.
	type pairMsg struct{ vs [][2]int }
	pm := pairMsg{vs: [][2]int{{1, 2}, {3, 4}}}
	if err := AuditPayloadFields(pm, 2*12, map[string]int{"vs": 12}); err != nil {
		t.Fatalf("pair payload rejected: %v", err)
	}
}

// TestAuditPayloadFieldsEmbedded pins the embedded-struct and
// unexported-field semantics the static bitsacct analyzer mirrors: an
// embedded struct is one field under its type name, charged once (its own
// promoted fields are audited where the inner type's Bits lives), and
// unexported fields are billed like any other — the wire records transmit
// them all. The struct shapes deliberately match the bitsacct golden
// fixtures under internal/analysis/testdata/src/bitsacct, so the static
// and runtime audits are exercised against the same contract.
func TestAuditPayloadFieldsEmbedded(t *testing.T) {
	type header struct {
		Tag int
	}
	type goodMsg struct {
		header
		ids  []int
		full bool
	}
	m := goodMsg{header: header{Tag: 3}, ids: []int{4, 5}, full: true}
	bits := 8 + 2*32 + 1
	ok := map[string]int{"header": 8, "ids": 32, "full": 1}
	if err := AuditPayloadFields(m, bits, ok); err != nil {
		t.Fatalf("conforming embedded payload rejected: %v", err)
	}
	// The embedded struct is one field named after its type; a table
	// that forgets it fails under that name — the same name the static
	// analyzer reports for an unreferenced embedded field.
	noHeader := map[string]int{"ids": 32, "full": 1}
	if err := AuditPayloadFields(m, bits, noHeader); err == nil ||
		!strings.Contains(err.Error(), `"header"`) || !strings.Contains(err.Error(), "no accounting entry") {
		t.Fatalf("missing embedded-field entry not caught: %v", err)
	}
	// Unexported fields need entries too.
	noIds := map[string]int{"header": 8, "full": 1}
	if err := AuditPayloadFields(m, bits, noIds); err == nil ||
		!strings.Contains(err.Error(), `"ids"`) || !strings.Contains(err.Error(), "no accounting entry") {
		t.Fatalf("missing unexported-field entry not caught: %v", err)
	}
	// Undercounting the embedded contribution is an undercount like any
	// other: the header's 8 bits are part of the minimum.
	if err := AuditPayloadFields(m, bits-8, ok); err == nil || !strings.Contains(err.Error(), "under-accounts") {
		t.Fatalf("embedded undercount not caught: %v", err)
	}
}

// TestPairsBitsConformance audits the engine's own Pairs payload.
func TestPairsBitsConformance(t *testing.T) {
	p := Pairs{Space: 100, Values: [][2]int{{1, 2}, {3, 4}, {5, 6}}}
	accounted := map[string]int{"Space": 0, "Values": 2 * IDBits(100)}
	if err := AuditPayloadFields(p, p.Bits(), accounted); err != nil {
		t.Fatal(err)
	}
}
