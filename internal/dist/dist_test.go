package dist

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"distspanner/internal/graph"
)

// blob is a payload of a declared size with an integer body.
type blob struct {
	val  int
	size int
}

func (b blob) Bits() int { return b.size }

func path(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

func clique(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// gossipProc is a deterministic-but-randomized protocol used by the
// determinism tests: for rounds iterations every vertex broadcasts a
// random word and accumulates what it hears into out[me].
func gossipProc(rounds int, out []int64) func(*Ctx) {
	return func(ctx *Ctx) {
		acc := int64(ctx.ID())
		for r := 0; r < rounds; r++ {
			ctx.Broadcast(blob{val: ctx.Rand().Intn(1 << 20), size: 32})
			for _, m := range ctx.NextRound() {
				acc = acc*31 + int64(m.From) + int64(m.Payload.(blob).val)
			}
		}
		out[ctx.ID()] = acc
	}
}

func TestFixedSeedDeterminism(t *testing.T) {
	g := clique(12)
	run := func(workers int) ([]int64, Stats) {
		out := make([]int64, g.N())
		stats, err := Run(Config{Graph: g, Seed: 42, Workers: workers}, gossipProc(8, out))
		if err != nil {
			t.Fatal(err)
		}
		return out, *stats
	}
	out1, st1 := run(0)
	out2, st2 := run(0)
	if !reflect.DeepEqual(out1, out2) {
		t.Fatal("two runs with the same seed produced different per-vertex outputs")
	}
	if st1 != st2 {
		t.Fatalf("two runs with the same seed produced different Stats:\n%+v\n%+v", st1, st2)
	}
	// The gated worker pool must be observationally identical to
	// goroutine-per-vertex execution.
	out3, st3 := run(2)
	if !reflect.DeepEqual(out1, out3) || st1 != st3 {
		t.Fatal("worker-pool execution diverged from goroutine-per-vertex execution")
	}
	// A different seed must actually change the random stream.
	out4 := make([]int64, g.N())
	if _, err := Run(Config{Graph: g, Seed: 43}, gossipProc(8, out4)); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(out1, out4) {
		t.Fatal("different seeds produced identical outputs")
	}
}

func TestRoundCounting(t *testing.T) {
	// Vertex v stays for v+1 rounds; Rounds is the maximum.
	n := 7
	g := clique(n)
	stats, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		for r := 0; r <= ctx.ID(); r++ {
			ctx.NextRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != n {
		t.Fatalf("Rounds = %d, want %d (max NextRound calls over vertices)", stats.Rounds, n)
	}
	if stats.Messages != 0 || stats.TotalBits != 0 {
		t.Fatalf("silent protocol metered traffic: %+v", stats)
	}
}

func TestMessageDeliveryAndOrdering(t *testing.T) {
	// On a path, each vertex broadcasts its id once; everyone must receive
	// exactly its neighbors' messages, sorted by sender.
	g := path(5)
	got := make([][]int, g.N())
	stats, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		ctx.Broadcast(blob{val: ctx.ID(), size: IDBits(ctx.N())})
		var from []int
		for _, m := range ctx.NextRound() {
			if m.Payload.(blob).val != m.From {
				t.Errorf("payload %d does not match sender %d", m.Payload.(blob).val, m.From)
			}
			from = append(from, m.From)
		}
		got[ctx.ID()] = from
		// No cross-round leakage: the next round is silent.
		if extra := ctx.NextRound(); len(extra) != 0 {
			t.Errorf("vertex %d received %d stale messages", ctx.ID(), len(extra))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inboxes = %v, want %v", got, want)
	}
	if stats.Messages != 8 { // 2*(n-1) directed endpoints
		t.Fatalf("Messages = %d, want 8", stats.Messages)
	}
	if stats.Rounds != 2 {
		t.Fatalf("Rounds = %d, want 2", stats.Rounds)
	}
}

func TestBitsAccounting(t *testing.T) {
	// Vertex 0 sends 10 bits then 30 bits to vertex 1 in one round: the
	// edge carries 40 bits that round, and MaxMessageBits is 30.
	g := path(2)
	stats, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, blob{size: 10})
			ctx.Send(1, blob{size: 30})
		}
		ctx.NextRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalBits != 40 || stats.MaxMessageBits != 30 || stats.MaxEdgeRoundBits != 40 {
		t.Fatalf("accounting wrong: %+v", stats)
	}
	if !stats.CongestCompatible(40) || stats.CongestCompatible(39) {
		t.Fatalf("CongestCompatible inconsistent with MaxEdgeRoundBits: %+v", stats)
	}
}

func TestEnforceRejectsOversizedPayload(t *testing.T) {
	g := path(2)
	proc := func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, blob{size: 100})
		}
		ctx.NextRound()
		ctx.NextRound()
	}
	_, err := Run(Config{Graph: g, Seed: 1, Bandwidth: 64, Enforce: true}, proc)
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("enforced oversized payload: err = %v, want ErrBandwidth", err)
	}
	// Unenforced, the same run completes and only counts the violation.
	stats, err := Run(Config{Graph: g, Seed: 1, Bandwidth: 64}, proc)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BandwidthViolations != 1 {
		t.Fatalf("BandwidthViolations = %d, want 1", stats.BandwidthViolations)
	}
	// Two payloads within budget individually but not together also
	// violate: the budget is per edge per round, not per message.
	_, err = Run(Config{Graph: g, Seed: 1, Bandwidth: 64, Enforce: true}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, blob{size: 40})
			ctx.Send(1, blob{size: 40})
		}
		ctx.NextRound()
	})
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("accumulated edge traffic not enforced: err = %v", err)
	}
}

func TestRoundLimit(t *testing.T) {
	g := path(3)
	_, err := Run(Config{Graph: g, Seed: 1, MaxRounds: 10}, func(ctx *Ctx) {
		for {
			ctx.Broadcast(blob{size: 1})
			ctx.NextRound()
		}
	})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("runaway protocol: err = %v, want ErrRoundLimit", err)
	}
}

func TestCutBits(t *testing.T) {
	// Path 0-1-2-3 cut between 1 and 2: only traffic on edge (1,2) counts.
	g := path(4)
	cut := []bool{false, false, true, true}
	stats, err := Run(Config{Graph: g, Seed: 1, CutSide: cut}, func(ctx *Ctx) {
		ctx.Broadcast(blob{size: 7})
		ctx.NextRound()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CutBits != 14 { // 1->2 and 2->1
		t.Fatalf("CutBits = %d, want 14", stats.CutBits)
	}
}

func TestTopologyAccessors(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	_, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		if ctx.N() != 4 {
			t.Errorf("N() = %d", ctx.N())
		}
		if ctx.ID() == 2 {
			if !reflect.DeepEqual(ctx.Neighbors(), []int{0, 1, 3}) {
				t.Errorf("Neighbors() = %v, want sorted {0,1,3}", ctx.Neighbors())
			}
			if ctx.Degree() != 3 {
				t.Errorf("Degree() = %d", ctx.Degree())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVertexTerminationStaggered(t *testing.T) {
	// Messages sent to a vertex that already returned are metered but
	// dropped; the engine must not deadlock or misdeliver.
	g := clique(4)
	stats, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			return // leaves immediately
		}
		for r := 0; r < 3; r++ {
			ctx.Broadcast(blob{size: 4})
			inbox := ctx.NextRound()
			for _, m := range inbox {
				if m.From == 0 {
					t.Error("received a message the retired vertex never sent")
				}
			}
			if len(inbox) != 2 { // the other two survivors
				t.Errorf("vertex %d round %d: %d messages, want 2", ctx.ID(), r, len(inbox))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 {
		t.Fatalf("Rounds = %d, want 3", stats.Rounds)
	}
	if stats.Messages != 27 { // 3 rounds x 3 senders x 3 neighbors
		t.Fatalf("Messages = %d, want 27", stats.Messages)
	}
}

func TestSendToNonNeighborFails(t *testing.T) {
	g := path(3) // 0-1-2: 0 and 2 are not adjacent
	_, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(2, blob{size: 1})
		}
		ctx.NextRound()
	})
	if err == nil || !strings.Contains(err.Error(), "not a neighbor") {
		t.Fatalf("send to non-neighbor: err = %v", err)
	}
}

func TestVertexPanicBecomesError(t *testing.T) {
	g := clique(5)
	_, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		for {
			ctx.Broadcast(blob{size: 1})
			ctx.NextRound()
			if ctx.ID() == 3 {
				panic("protocol bug")
			}
		}
	})
	if err == nil || !strings.Contains(err.Error(), "protocol bug") {
		t.Fatalf("vertex panic: err = %v", err)
	}
}

func TestDegenerateGraphs(t *testing.T) {
	stats, err := Run(Config{Graph: graph.New(0), Seed: 1}, func(ctx *Ctx) {
		t.Error("proc invoked on empty graph")
	})
	if err != nil || *stats != (Stats{}) {
		t.Fatalf("empty graph: %+v, %v", stats, err)
	}
	// A single isolated vertex can run rounds against nobody.
	var ran atomic.Bool
	stats, err = Run(Config{Graph: graph.New(1), Seed: 1}, func(ctx *Ctx) {
		ran.Store(true)
		ctx.Broadcast(blob{size: 9}) // no neighbors: a no-op
		if len(ctx.NextRound()) != 0 {
			t.Error("isolated vertex received messages")
		}
	})
	if err != nil || !ran.Load() {
		t.Fatalf("singleton run failed: %v", err)
	}
	if stats.Rounds != 1 || stats.Messages != 0 {
		t.Fatalf("singleton stats: %+v", stats)
	}
	// Disconnected components run independently without deadlock.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	out := make([]int64, 4)
	if _, err := Run(Config{Graph: g, Seed: 5}, gossipProc(4, out)); err != nil {
		t.Fatal(err)
	}
}

func TestIDBits(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 16: 4, 17: 5, 20: 5, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := IDBits(n); got != want {
			t.Errorf("IDBits(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPairsBits(t *testing.T) {
	p := Pairs{Space: 16} // empty: one length word
	if p.Bits() != IDBits(16) {
		t.Fatalf("empty Pairs = %d bits", p.Bits())
	}
	p.Values = append(p.Values, [2]int{1, 2}, [2]int{3, 4})
	if p.Bits() != 5*IDBits(16) {
		t.Fatalf("2-pair Pairs = %d bits, want %d", p.Bits(), 5*IDBits(16))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, func(*Ctx) {}); err == nil {
		t.Fatal("nil graph must error")
	}
	g := path(3)
	if _, err := Run(Config{Graph: g, CutSide: []bool{true}}, func(*Ctx) {}); err == nil {
		t.Fatal("mis-sized CutSide must error")
	}
}
