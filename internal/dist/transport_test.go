package dist

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"distspanner/internal/graph"
)

// Tests for the sharded runner (transport.go, shard.go, coord.go) at the
// engine level: Config.Shards over the in-process channel transport must
// be indistinguishable from single-engine ModeStep — outputs, Stats,
// activity curves, trace transcripts, and error strings. The
// algorithm-level matrix (families × graphs × seeds, both transports)
// lives in the conformance suite (transportconf).

// evRecorder is a minimal Tracer capturing the logical transcript
// (internal/trace is not importable from this package's tests).
type evRecorder struct {
	events [][]TraceEvent
	phases []RoundActivity
}

func newEvRecorder(n int) *evRecorder { return &evRecorder{events: make([][]TraceEvent, n)} }

func (r *evRecorder) Event(ev TraceEvent)   { r.events[ev.V] = append(r.events[ev.V], ev) }
func (r *evRecorder) Phase(a RoundActivity) { r.phases = append(r.phases, a) }
func (r *evRecorder) RoundTime(RoundTiming) {}

func shardCounts(n int) []int { return []int{1, 2, 3, 5, n + 2} }

func TestShardedChaosEquivalence(t *testing.T) {
	// The chaos machine (sends, broadcasts with shared tails, parks,
	// early retirements, quiescence finalizers) across shard counts —
	// including more shards than vertices — must reproduce the ModeStep
	// run exactly: outputs, Stats, activity curve, per-vertex trace
	// events, and phase snapshots.
	graphs := map[string]*graph.Graph{
		"clique16":   clique(16),
		"path33":     path(33),
		"ring64":     benchGraph(64),
		"sparse2x40": func() *graph.Graph { g := graph.New(80); g.AddEdge(0, 79); return g }(),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				run := func(shards int) ([]int64, Stats, []RoundActivity, *evRecorder) {
					out := make([]int64, g.N())
					var curve []RoundActivity
					rec := newEvRecorder(g.N())
					stats, err := RunMachines(Config{
						Graph: g, Seed: seed, Mode: ModeStep, Shards: shards,
						OnRound: func(a RoundActivity) { curve = append(curve, a) },
						Tracer:  rec,
					}, func(c *Ctx) Machine {
						return &chaosMachine{out: out, rounds: 12}
					})
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					return out, *stats, curve, rec
				}
				refOut, refStats, refCurve, refRec := run(0)
				for _, shards := range shardCounts(g.N()) {
					out, stats, curve, rec := run(shards)
					if !reflect.DeepEqual(refOut, out) {
						t.Fatalf("shards=%d outputs diverged", shards)
					}
					if refStats != stats {
						t.Fatalf("shards=%d stats diverged:\nref: %+v\ngot: %+v", shards, refStats, stats)
					}
					if !reflect.DeepEqual(refCurve, curve) {
						t.Fatalf("shards=%d activity curve diverged:\nref: %+v\ngot: %+v", shards, refCurve, curve)
					}
					if !reflect.DeepEqual(refRec.phases, rec.phases) {
						t.Fatalf("shards=%d phase snapshots diverged", shards)
					}
					for v := range refRec.events {
						if !reflect.DeepEqual(refRec.events[v], rec.events[v]) {
							t.Fatalf("shards=%d vertex %d transcript diverged:\nref: %+v\ngot: %+v",
								shards, v, refRec.events[v], rec.events[v])
						}
					}
				}
			})
		}
	}
}

func TestShardedRetireFlushAndSilentDrop(t *testing.T) {
	// Last words cross a shard boundary: vertex 0 retires with a send to
	// vertex 1 queued; on a 2-shard path(3) partition they live on
	// different... the same shard — use 3 shards so every vertex is its
	// own shard. The delivery and the round accounting must match the
	// in-process run (Rounds=1, Messages=1).
	for _, shards := range []int{2, 3} {
		var m1 lastWordsMachine
		stats, err := RunMachines(Config{Graph: path(3), Seed: 1, Shards: shards}, func(c *Ctx) Machine {
			if c.ID() == 1 {
				return &m1
			}
			return &lastWordsMachine{}
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if !reflect.DeepEqual(m1.got, []int64{9}) {
			t.Fatalf("shards=%d: receiver saw %v, want [9]", shards, m1.got)
		}
		if stats.Rounds != 1 || stats.Messages != 1 {
			t.Fatalf("shards=%d: stats = %+v, want Rounds=1 Messages=1", shards, stats)
		}
	}
	// Silent drop: last words addressed to a retired vertex are metered
	// but no round is charged, across a shard boundary.
	for _, shards := range []int{2} {
		stats, err := RunMachines(Config{Graph: path(2), Seed: 1, Shards: shards}, func(c *Ctx) Machine {
			return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
				if ctx.ID() == 1 {
					return StepDone
				}
				if in.Start {
					return StepYield
				}
				ctx.SendRec(1, Rec{Tag: 1}, 8)
				return StepDone
			})
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if stats.Rounds != 1 || stats.Messages != 1 || stats.TotalBits != 8 {
			t.Fatalf("shards=%d: stats = %+v, want Rounds=1 Messages=1 TotalBits=8", shards, stats)
		}
	}
}

func TestShardedErrorEquality(t *testing.T) {
	// Abort paths must produce the exact in-process error strings: the
	// coordinator formats them from the same data in the same order.
	busy := func(c *Ctx) Machine {
		return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
			ctx.BroadcastRec(Rec{Tag: 1}, 64)
			return StepYield
		})
	}
	g := clique(6)

	// Round limit.
	_, refErr := RunMachines(Config{Graph: g, Seed: 1, Mode: ModeStep, MaxRounds: 4}, busy)
	_, shErr := RunMachines(Config{Graph: g, Seed: 1, MaxRounds: 4, Shards: 2}, busy)
	if refErr == nil || shErr == nil || refErr.Error() != shErr.Error() {
		t.Fatalf("round-limit errors differ:\nref: %v\ngot: %v", refErr, shErr)
	}
	if !errors.Is(shErr, ErrRoundLimit) {
		t.Fatalf("sharded round-limit error lost its type: %v", shErr)
	}

	// Enforced bandwidth violation: same first violator, same round.
	_, refErr = RunMachines(Config{Graph: g, Seed: 1, Mode: ModeStep, Bandwidth: 32, Enforce: true}, busy)
	_, shErr = RunMachines(Config{Graph: g, Seed: 1, Bandwidth: 32, Enforce: true, Shards: 3}, busy)
	if refErr == nil || shErr == nil || refErr.Error() != shErr.Error() {
		t.Fatalf("bandwidth errors differ:\nref: %v\ngot: %v", refErr, shErr)
	}
	if !errors.Is(shErr, ErrBandwidth) {
		t.Fatalf("sharded bandwidth error lost its type: %v", shErr)
	}

	// Unenforced violations only count, identically.
	refStats, err1 := RunMachines(Config{Graph: g, Seed: 1, Mode: ModeStep, Bandwidth: 32, MaxRounds: 3}, busy)
	shStats, err2 := RunMachines(Config{Graph: g, Seed: 1, Bandwidth: 32, MaxRounds: 3, Shards: 2}, busy)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("round-limited runs differ: %v vs %v", err1, err2)
	}
	_, _ = refStats, shStats

	// Cancellation: pre-closed cancel aborts before round 1.
	pre := make(chan struct{})
	close(pre)
	_, refErr = RunMachines(Config{Graph: g, Seed: 1, Mode: ModeStep, Cancel: pre}, busy)
	_, shErr = RunMachines(Config{Graph: g, Seed: 1, Cancel: pre, Shards: 2}, busy)
	if refErr == nil || shErr == nil || refErr.Error() != shErr.Error() {
		t.Fatalf("cancel errors differ:\nref: %v\ngot: %v", refErr, shErr)
	}
	if !errors.Is(shErr, ErrCanceled) {
		t.Fatalf("sharded cancel error lost its type: %v", shErr)
	}

	// Mid-run cancellation from the OnRound hook.
	cancel := make(chan struct{})
	_, shErr = RunMachines(Config{Graph: g, Seed: 1, Shards: 2, Cancel: cancel,
		OnRound: func(a RoundActivity) {
			if a.Round == 5 {
				close(cancel)
			}
		}}, busy)
	if !errors.Is(shErr, ErrCanceled) {
		t.Fatalf("mid-run cancel: err = %v, want ErrCanceled", shErr)
	}
}

func TestShardedWorkerFailures(t *testing.T) {
	// A machine panic on one shard aborts the whole run and surfaces as a
	// ShardError carrying the in-process panic text.
	g := path(8)
	_, err := RunMachines(Config{Graph: g, Seed: 1, Shards: 2}, func(c *Ctx) Machine {
		return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
			if ctx.ID() == 6 && !in.Start {
				panic("shard boom")
			}
			return StepYield
		})
	})
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("panic did not surface as ShardError: %v", err)
	}
	if se.Shard != 1 || !strings.Contains(se.Msg, "vertex 6 panicked") || !strings.Contains(se.Msg, "shard boom") {
		t.Fatalf("ShardError = %+v", se)
	}

	// Boxed sends cannot cross the sharded path: typed rejection.
	_, err = RunMachines(Config{Graph: path(4), Seed: 1, Shards: 2}, func(c *Ctx) Machine {
		return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
			if ctx.ID() == 0 && in.Start {
				ctx.Send(1, blob{size: 4})
				return StepYield
			}
			return StepDone
		})
	})
	if err == nil || !strings.Contains(err.Error(), "boxed Send is not supported") {
		t.Fatalf("boxed send on the sharded path: err = %v", err)
	}
}

func TestShardedValidation(t *testing.T) {
	if _, err := Run(Config{Graph: path(2), Shards: 2}, func(*Ctx) {}); err == nil {
		t.Fatal("Run must reject Shards")
	}
	_, err := RunMachines(Config{Graph: path(2), Mode: ModeBarrier, Shards: 2}, func(c *Ctx) Machine {
		return machineFunc(func(*Ctx, StepIn) StepStatus { return StepDone })
	})
	if err == nil || !strings.Contains(err.Error(), "ModeAuto or ModeStep") {
		t.Fatalf("Shards under ModeBarrier: err = %v", err)
	}
	if _, err := RunMachines(Config{Shards: 2}, func(c *Ctx) Machine { return nil }); err == nil {
		t.Fatal("nil graph must error")
	}
	// Empty graph: zero rounds, no error — the protocol finishes on its
	// first decision.
	stats, err := RunMachines(Config{Graph: graph.New(0), Shards: 2}, func(c *Ctx) Machine { return nil })
	if err != nil || *stats != (Stats{}) {
		t.Fatalf("empty sharded graph: %+v, %v", stats, err)
	}
}

func TestPartitionEven(t *testing.T) {
	for _, tc := range []struct{ n, w int }{{10, 3}, {36, 7}, {5, 5}, {3, 7}, {0, 2}, {1, 1}} {
		cuts := PartitionEven(tc.n, tc.w)
		if len(cuts) != tc.w+1 || cuts[0] != 0 || cuts[tc.w] != tc.n {
			t.Fatalf("PartitionEven(%d,%d) = %v", tc.n, tc.w, cuts)
		}
		for i := 0; i < tc.w; i++ {
			if cuts[i] > cuts[i+1] {
				t.Fatalf("PartitionEven(%d,%d) not ascending: %v", tc.n, tc.w, cuts)
			}
			if cuts[i+1]-cuts[i] > (tc.n+tc.w-1)/tc.w {
				t.Fatalf("PartitionEven(%d,%d) uneven: %v", tc.n, tc.w, cuts)
			}
		}
		for v := 0; v < tc.n; v++ {
			s := shardOf(cuts, v)
			if v < cuts[s] || v >= cuts[s+1] {
				t.Fatalf("shardOf(%v, %d) = %d", cuts, v, s)
			}
		}
	}
}

func TestShardedCutMetering(t *testing.T) {
	// CutSide metering crosses the transport unchanged.
	g := path(8)
	cut := make([]bool, 8)
	for v := 4; v < 8; v++ {
		cut[v] = true
	}
	run := func(shards int) Stats {
		stats, err := RunMachines(Config{Graph: g, Seed: 1, Mode: ModeStep, Shards: shards, CutSide: cut},
			func(c *Ctx) Machine {
				return machineFunc(func(ctx *Ctx, in StepIn) StepStatus {
					if in.Start {
						ctx.BroadcastRec(Rec{Tag: 1}, 8)
						return StepYield
					}
					return StepDone
				})
			})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		return *stats
	}
	ref := run(0)
	if ref.CutBits == 0 {
		t.Fatal("reference run metered no cut bits")
	}
	for _, shards := range []int{1, 2, 3} {
		if got := run(shards); got != ref {
			t.Fatalf("shards=%d stats = %+v, want %+v", shards, got, ref)
		}
	}
}
