package dist

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"distspanner/internal/graph"
)

// The pluggable transport seam. A run can execute on a single engine
// (the in-process modes of dist.go) or be sharded across workers, each
// owning a contiguous vertex range and stepping its machines with the
// ModeStep loop, with a coordinator driving the round/quiescence
// protocol. What moves between the processes is exactly the engine's
// serialization points: a round's record batches, the per-shard
// activity/metering reports, and the coordinator's round decisions.
//
// The protocol is a pure re-partitioning of runStep (step.go): every
// decision the coordinator takes — commit a round, quiesce, finish,
// abort — is the decision runStep would have taken with the same global
// information, and every worker-side effect (classification, metering,
// delivery, trace emission) happens in the same order as the in-process
// engine. A transport is correct iff a distributed run reproduces the
// in-process per-vertex trace digests and Stats bit-for-bit; the
// conformance suite (internal/dist/transportconf) checks exactly that.
//
// Partitions must be contiguous ascending vertex ranges: shard order
// then equals global sender-id order, which is what lets a worker apply
// inbound batches in shard order and reproduce the in-process
// per-vertex event interleaving (route visits senders ascending).
//
// Only the record path (SendRec) crosses shards: the Rec wire format is
// the serialization. A machine that queues a boxed Send on the sharded
// path aborts the run with ErrBoxedSend.

// ErrTransport is wrapped by coordinator/worker errors when the
// transport itself fails (connection dropped, peer closed, codec
// error) — as opposed to a protocol-level abort like ErrCanceled.
var ErrTransport = errors.New("dist: transport failure")

// ErrBoxedSend is wrapped by the run error when a machine queues a
// boxed Send on the sharded path; only records (SendRec) cross shards.
var ErrBoxedSend = errors.New("dist: boxed Send is not supported on the sharded path")

// FrameType discriminates transport frames.
type FrameType uint8

const (
	// FrameSetup (coordinator → worker, once): graph, partition, shard
	// identity, and run parameters.
	FrameSetup FrameType = iota + 1
	// FrameRound (worker → coordinator, each iteration): the shard's
	// classification/metering report plus its outbound record batches.
	FrameRound
	// FrameBatches (coordinator → worker, each iteration): the record
	// batches inbound to this shard, indexed by source shard.
	FrameBatches
	// FrameWake (worker → coordinator, each iteration): what this
	// shard's pending deliveries would do — the distributed half of
	// flushWakesLocked and the delivery counters.
	FrameWake
	// FrameDecision (coordinator → worker, each iteration): commit,
	// quiesce, finish, or abort.
	FrameDecision
	// FrameResult (worker → coordinator, once): per-vertex outputs and
	// buffered trace events.
	FrameResult
)

// Frame is one transport message; exactly the field matching Type is
// non-nil. In-process transports pass frames by pointer; wire
// transports serialize them (internal/dist/wire).
type Frame struct {
	Type     FrameType
	Setup    *SetupFrame
	Round    *RoundFrame
	Batches  *BatchesFrame
	Wake     *WakeFrame
	Decision *DecisionFrame
	Result   *ResultFrame
}

// SetupFrame hands a worker its shard of the run.
type SetupFrame struct {
	// Shard is this worker's index; Workers the total count.
	Shard, Workers int
	// Cuts is the contiguous partition: shard i owns [Cuts[i], Cuts[i+1]).
	Cuts []int
	// Graph is the communication topology (the full graph — workers need
	// every vertex's neighborhood to validate sends and meter edges).
	Graph *graph.Graph
	// Algo names the program for the worker's resolver; the in-process
	// sharded path leaves it empty (the resolver closes over the factory).
	Algo string
	// Seed is the run seed; all per-vertex randomness and any auxiliary
	// inputs (orientations, weights, splits) derive from (Graph, Seed).
	Seed int64
	// Bandwidth is the per-edge per-round bit budget metered by the
	// worker (violations are decided by the coordinator).
	Bandwidth int
	// Cut is Config.CutSide (nil when unset).
	Cut []bool
	// Trace asks the worker to buffer per-vertex trace events and ship
	// them in its ResultFrame.
	Trace bool
	// Collect asks the worker to ship per-vertex outputs in its
	// ResultFrame (requires the program to define Output).
	Collect bool
}

// MeterReport aggregates one shard's meterSender results for one
// iteration — the same quantities route folds into Stats.
type MeterReport struct {
	Msgs, Bits, CutBits int64
	MaxMsg, MaxEdge     int
	// Violations counts budget violations; ViolSender/ViolTo/ViolBits
	// describe the first violation by ascending sender id (ViolSender is
	// -1 when none), which is what the enforced abort reports.
	Violations int64
	ViolSender int
	ViolTo     int
	ViolBits   int
}

// fold merges a per-sender meterResult into the report, keeping the
// first violation by the (ascending) sender order of the caller.
func (m *MeterReport) fold(senderID int, r meterResult) {
	m.Msgs += r.msgs
	m.Bits += r.bits
	m.CutBits += r.cut
	if r.maxMsg > m.MaxMsg {
		m.MaxMsg = r.maxMsg
	}
	if r.maxEdge > m.MaxEdge {
		m.MaxEdge = r.maxEdge
	}
	if r.viol > 0 {
		m.Violations += r.viol
		if m.ViolSender < 0 {
			m.ViolSender, m.ViolTo, m.ViolBits = senderID, r.violTo, r.violBits
		}
	}
}

// BatchRec is one record send crossing a shard boundary: the flat Rec
// header plus sender/receiver ids, the metered size, and the tail span
// in the enclosing batch's Ints arena.
type BatchRec struct {
	From, To  int32
	Tag, Flag uint8
	Bits      int64
	A, B      int64
	F0        float64
	F1        float64
	F2        float64
	Off, N    int32
}

// RecBatch is the records one shard sends to one other shard in one
// round, ordered by (ascending sender id, send order) — the same order
// route delivers in. Ints is the packed tail arena.
type RecBatch struct {
	Recs []BatchRec
	Ints []int
}

// add appends one record, copying its tail into the batch arena.
func (b *RecBatch) add(from int, o *outRec, tail []int) {
	off := int32(len(b.Ints))
	b.Ints = append(b.Ints, tail...)
	b.Recs = append(b.Recs, BatchRec{
		From: int32(from), To: o.to, Tag: o.tag, Flag: o.flag, Bits: o.bits,
		A: o.a, B: o.b, F0: o.f0, F1: o.f1, F2: o.f2,
		Off: off, N: o.n,
	})
}

// RoundFrame is a worker's phase-1 report for one iteration.
type RoundFrame struct {
	// Stepped is the number of machines stepped this iteration;
	// Yielded/ParkedNow/DoneTotal the classification counts (ParkedNow
	// and DoneTotal are the shard's running totals, before this round's
	// wake-ups); Senders the shard's dirty-sender count.
	Stepped, Yielded, ParkedNow, DoneTotal, Senders int
	// Meter aggregates the shard's sender metering for the iteration.
	Meter MeterReport
	// Out holds the outbound batches, indexed by destination shard (the
	// worker's own index stays empty — local deliveries never leave the
	// worker). Nil when Err is set.
	Out []RecBatch
	// Err reports a worker-side abort (machine panic, boxed send); the
	// coordinator aborts the run.
	Err string
}

// BatchesFrame relays to one worker its inbound batches, indexed by
// source shard (the worker's own index stays empty).
type BatchesFrame struct {
	In []RecBatch
}

// WakeFrame is a worker's phase-2 report: what the round's pending
// deliveries into this shard would do, computed without applying them.
type WakeFrame struct {
	// WouldWake reports whether any pending delivery targets a non-done
	// vertex of this shard — the distributed half of flushWakesLocked.
	WouldWake bool
	// Woken counts the distinct parked vertices that would be woken.
	Woken int
	// Delivered/DeliveredBits count payloads that would land in live
	// inboxes — the RoundActivity delivery counters.
	Delivered     int
	DeliveredBits int64
}

// DecisionKind is the coordinator's per-iteration verdict.
type DecisionKind uint8

const (
	// DecideCommit: the round is charged; apply deliveries and continue.
	DecideCommit DecisionKind = iota + 1
	// DecideQuiesce: no vertex yielded and no delivery can wake anyone;
	// meter-and-drop pending sends, run the parked epilogue, finish.
	DecideQuiesce
	// DecideFinish: every vertex retired; meter-and-drop last words.
	DecideFinish
	// DecideAbort: the run aborted (round limit, cancellation, enforced
	// bandwidth violation, worker error); discard and shut down.
	DecideAbort
)

// DecisionFrame carries the verdict and the resulting round count.
type DecisionFrame struct {
	Kind DecisionKind
	// Round is the committed round number on DecideCommit, and the
	// final (uncharged) round count otherwise.
	Round int
}

// ResultFrame is a worker's final frame.
type ResultFrame struct {
	// Outputs holds the program's per-vertex outputs for the shard's
	// range, index 0 = the shard's first vertex (Collect only).
	Outputs [][]int
	// Events holds the buffered per-vertex trace events for the shard's
	// range (Trace only).
	Events [][]TraceEvent
	// Err reports a worker-side abort during the epilogue.
	Err string
}

// WorkerTransport is one worker's connection to the coordinator.
// Implementations must be safe for the strict alternation the protocol
// performs (no concurrent calls are made).
type WorkerTransport interface {
	Send(f *Frame) error
	Recv() (*Frame, error)
	Close() error
}

// CoordTransport is the coordinator's view of all workers. Recv blocks
// on one worker's next frame; the protocol gathers workers in index
// order, which is safe because workers progress independently.
type CoordTransport interface {
	Workers() int
	Send(worker int, f *Frame) error
	Recv(worker int) (*Frame, error)
	Close() error
}

// PartitionEven cuts n vertices into w contiguous ranges of near-equal
// size: shard i owns [cuts[i], cuts[i+1]). Shards may be empty when
// w > n. The contiguous-ascending shape is load-bearing — see the
// package section above.
func PartitionEven(n, w int) []int {
	if w < 1 {
		w = 1
	}
	cuts := make([]int, w+1)
	for i := 0; i <= w; i++ {
		cuts[i] = i * n / w
	}
	return cuts
}

// shardOf locates v's shard in a contiguous partition.
func shardOf(cuts []int, v int) int {
	return sort.SearchInts(cuts, v+1) - 1
}

// ShardProgram is what a worker runs: a machine factory over the
// shard's vertices plus an optional per-vertex output reader.
type ShardProgram struct {
	// Graph, when non-nil, overrides the engine's communication topology
	// (e.g. a derived underlying graph); it must have the same vertex
	// count as the setup graph.
	Graph *graph.Graph
	// Factory builds the machine for one vertex, exactly like the
	// RunMachines factory.
	Factory func(*Ctx) Machine
	// Output reads one vertex's result after the run (nil when the
	// program produces no per-vertex outputs).
	Output func(v int) []int
}

// ProgramResolver maps a SetupFrame's algorithm name to the shard
// program, deriving any auxiliary inputs deterministically from
// (g, seed) so every worker reconstructs the same instance.
type ProgramResolver func(algo string, g *graph.Graph, seed int64) (ShardProgram, error)

// chanEndpoint is one direction of an in-process transport: a buffered
// frame channel with idempotent close and panic-safe send.
type chanEndpoint struct {
	ch     chan *Frame
	closed chan struct{}
	once   sync.Once
}

func newChanEndpoint() *chanEndpoint {
	return &chanEndpoint{ch: make(chan *Frame, 2), closed: make(chan struct{})}
}

func (p *chanEndpoint) close() { p.once.Do(func() { close(p.closed) }) }

func (p *chanEndpoint) send(f *Frame) error {
	select {
	case <-p.closed:
		return fmt.Errorf("%w: endpoint closed", ErrTransport)
	case p.ch <- f:
		return nil
	}
}

func (p *chanEndpoint) recv() (*Frame, error) {
	select {
	case <-p.closed:
		// Drain anything already queued before reporting the close, so a
		// close racing the final frame does not lose it.
		select {
		case f := <-p.ch:
			return f, nil
		default:
			return nil, fmt.Errorf("%w: endpoint closed", ErrTransport)
		}
	case f := <-p.ch:
		return f, nil
	}
}

// chanWorker / chanCoord are the reference in-process transport: frames
// move by pointer over buffered channels. Frame payloads are built
// fresh each iteration (batches copy record tails out of the sender
// arenas), so sharing pointers across goroutines is safe.
type chanWorker struct {
	down *chanEndpoint // coordinator → worker
	up   *chanEndpoint // worker → coordinator
}

func (w *chanWorker) Send(f *Frame) error   { return w.up.send(f) }
func (w *chanWorker) Recv() (*Frame, error) { return w.down.recv() }
func (w *chanWorker) Close() error          { w.up.close(); w.down.close(); return nil }

type chanCoord struct {
	down []*chanEndpoint
	up   []*chanEndpoint
}

func (c *chanCoord) Workers() int { return len(c.down) }

func (c *chanCoord) Send(worker int, f *Frame) error { return c.down[worker].send(f) }

func (c *chanCoord) Recv(worker int) (*Frame, error) { return c.up[worker].recv() }

func (c *chanCoord) Close() error {
	for i := range c.down {
		c.down[i].close()
		c.up[i].close()
	}
	return nil
}

// NewChanCluster builds the in-process reference transport: a connected
// coordinator endpoint plus w worker endpoints.
func NewChanCluster(w int) (CoordTransport, []WorkerTransport) {
	c := &chanCoord{down: make([]*chanEndpoint, w), up: make([]*chanEndpoint, w)}
	workers := make([]WorkerTransport, w)
	for i := 0; i < w; i++ {
		c.down[i] = newChanEndpoint()
		c.up[i] = newChanEndpoint()
		workers[i] = &chanWorker{down: c.down[i], up: c.up[i]}
	}
	return c, workers
}
