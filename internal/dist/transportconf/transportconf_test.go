package transportconf

import (
	"reflect"
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/distrun"
	"distspanner/internal/gen"
)

// TestChanTransportConformance runs the suite against the in-process
// channel transport — the reference implementation must pass its own
// conformance bar.
func TestChanTransportConformance(t *testing.T) {
	Run(t, ChanFactory)
}

// corruptCoord is the non-conformant-transport fixture: it tampers
// with the first eligible record batch flowing from a worker to the
// coordinator, either duplicating a record or swapping two records
// bound for the same destination vertex (sender order is part of the
// delivery contract).
type corruptCoord struct {
	dist.CoordTransport
	mode  string // "duplicate" or "reorder"
	fired bool
}

func (c *corruptCoord) Recv(w int) (*dist.Frame, error) {
	f, err := c.CoordTransport.Recv(w)
	if err != nil || c.fired || f.Round == nil {
		return f, err
	}
	for bi := range f.Round.Out {
		b := &f.Round.Out[bi]
		switch c.mode {
		case "duplicate":
			if len(b.Recs) > 0 {
				b.Recs = append(b.Recs, b.Recs[0])
				c.fired = true
				return f, nil
			}
		case "reorder":
			for i := 0; i < len(b.Recs); i++ {
				for j := i + 1; j < len(b.Recs); j++ {
					if b.Recs[i].To == b.Recs[j].To && b.Recs[i].From != b.Recs[j].From {
						b.Recs[i], b.Recs[j] = b.Recs[j], b.Recs[i]
						c.fired = true
						return f, nil
					}
				}
			}
		}
	}
	return f, nil
}

// diverges reports whether the two outcomes differ on any surface the
// conformance suite checks.
func diverges(ref, got outcome) bool {
	if errString(ref.err) != errString(got.err) {
		return true
	}
	if ref.err != nil {
		return false
	}
	return !ref.digest.Equal(got.digest) ||
		ref.stats != got.stats ||
		!equalOutputs(ref.outputs, got.outputs) ||
		!reflect.DeepEqual(ref.phases, got.phases)
}

// TestSuiteDetectsBrokenTransport validates the suite's teeth: a
// transport that duplicates or reorders records must show up as a
// divergence from the in-process reference.
func TestSuiteDetectsBrokenTransport(t *testing.T) {
	g := gen.Clique(12)
	f, ok := distrun.Get("twospanner")
	if !ok {
		t.Fatal("twospanner family missing")
	}
	cfg := f.CoordConfig(g, 1)
	ref := runLocal(f, cfg)
	if ref.err != nil {
		t.Fatalf("reference run failed: %v", ref.err)
	}
	for _, mode := range []string{"duplicate", "reorder"} {
		t.Run(mode, func(t *testing.T) {
			ct, cleanup := ChanFactory(t, 2)
			defer cleanup()
			cc := &corruptCoord{CoordTransport: ct, mode: mode}
			got := runDistributed(cc, cfg)
			if !cc.fired {
				t.Fatal("corruption fixture never found an eligible batch")
			}
			if !diverges(ref, got) {
				t.Fatal("conformance checks did not detect the corrupted transport")
			}
		})
	}
}

// TestRegistryNames pins the family registry surface the suite (and
// cmd tooling) iterate over.
func TestRegistryNames(t *testing.T) {
	want := []string{"twospanner", "congest", "directed", "cs", "weighted", "mds"}
	if got := distrun.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("distrun.Names() = %v, want %v", got, want)
	}
	if _, ok := distrun.Get("nope"); ok {
		t.Fatal("Get accepted an unknown family")
	}
	if _, err := distrun.Resolver()("nope", gen.Clique(4), 1); err == nil {
		t.Fatal("Resolver accepted an unknown family")
	}
}
