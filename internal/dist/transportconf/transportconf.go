// Package transportconf is the conformance suite a dist.CoordTransport
// implementation must pass. A conformant transport is invisible: a
// distributed run over it reproduces the in-process step engine
// bit-for-bit — identical per-vertex trace digests, identical Stats
// (message/bit metering included), identical merged outputs — across
// every algorithm family in the distrun registry, and it quiesces,
// cancels, and aborts exactly where the local engine does.
//
// Call Run with a Factory that builds a connected cluster whose
// workers serve distrun.Resolver(). The package's own tests run the
// suite against the in-process channel transport and verify the suite
// detects deliberately broken transports (record duplication and
// reordering fixtures); the wire package runs it against TCP.
package transportconf

import (
	"errors"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/distrun"
	"distspanner/internal/gen"
	"distspanner/internal/graph"
	"distspanner/internal/trace"
)

// Factory builds a connected cluster with the given number of workers,
// each serving distrun.Resolver(). The returned wait must tear the
// cluster down, block until every worker has exited (failing tb if
// that takes unreasonably long), and return each worker's ServeShard
// error by slot; the suite decides which errors a case permits.
type Factory func(tb testing.TB, workers int) (dist.CoordTransport, func() []error)

// joinClean tears the cluster down and fails t on any worker error
// that is not a coordinator-initiated hangup.
func joinClean(t *testing.T, wait func() []error) {
	t.Helper()
	for i, err := range wait() {
		if err != nil && !errors.Is(err, dist.ErrTransport) {
			t.Errorf("worker %d exited with %v", i, err)
		}
	}
}

// namedGraph pairs a conformance graph with its subtest label; the suite
// iterates the slice so subtest order (and any shared-cluster scheduling
// it implies) is deterministic — a map here made the matrix order vary
// run to run.
type namedGraph struct {
	name string
	g    *graph.Graph
}

// suiteGraphs is the conformance graph matrix — the same trio the
// trace-level cross-mode tests pin.
func suiteGraphs() []namedGraph {
	return []namedGraph{
		{"gnp48", gen.ConnectedGNP(48, 0.15, 1)},
		{"clique12", gen.Clique(12)},
		{"grid6", gen.Grid(6, 6)},
	}
}

// suiteGraph returns the named graph from the matrix.
func suiteGraph(name string) *graph.Graph {
	for _, ng := range suiteGraphs() {
		if ng.name == name {
			return ng.g
		}
	}
	panic("transportconf: unknown suite graph " + name)
}

var suiteSeeds = []int64{1, 2}

// outcome is one run's observable surface: what conformance compares.
type outcome struct {
	stats   dist.Stats
	outputs [][]int
	digest  trace.Digest
	phases  []dist.RoundActivity
	err     error
}

// runLocal executes the reference in-process run for cfg (which must
// have come from Family.CoordConfig, possibly with extra hooks set).
func runLocal(f distrun.Family, cfg dist.CoordConfig) outcome {
	prog, err := f.Program(cfg.Graph, cfg.Seed)
	if err != nil {
		return outcome{err: err}
	}
	engineG := cfg.Graph
	if prog.Graph != nil {
		engineG = prog.Graph
	}
	rec := trace.NewRecorder(cfg.Graph.N())
	stats, err := dist.RunMachines(dist.Config{
		Graph:     engineG,
		Seed:      cfg.Seed,
		Mode:      dist.ModeStep,
		Bandwidth: cfg.Bandwidth,
		Enforce:   cfg.Enforce,
		MaxRounds: cfg.MaxRounds,
		CutSide:   cfg.CutSide,
		Cancel:    cfg.Cancel,
		Tracer:    rec,
	}, prog.Factory)
	if err != nil {
		return outcome{err: err}
	}
	outs := make([][]int, cfg.Graph.N())
	if prog.Output != nil {
		for v := range outs {
			outs[v] = prog.Output(v)
		}
	}
	return outcome{stats: *stats, outputs: outs, digest: rec.Digest(), phases: rec.Phases()}
}

// runDistributed executes cfg over ct, collecting the replayed
// transcript.
func runDistributed(ct dist.CoordTransport, cfg dist.CoordConfig) outcome {
	rec := trace.NewRecorder(cfg.Graph.N())
	cfg.Tracer = rec
	cfg.Collect = true
	res, err := dist.Coordinate(ct, cfg)
	if err != nil {
		return outcome{err: err}
	}
	return outcome{stats: res.Stats, outputs: res.Outputs, digest: rec.Digest(), phases: rec.Phases()}
}

// compare fails t on any observable divergence between the reference
// and distributed outcomes. It is the definition of conformance.
func compare(t *testing.T, ref, got outcome) {
	t.Helper()
	if ref.err != nil || got.err != nil {
		refMsg, gotMsg := errString(ref.err), errString(got.err)
		if refMsg != gotMsg {
			t.Errorf("error mismatch:\n  reference:   %s\n  distributed: %s", refMsg, gotMsg)
		}
		return
	}
	if !ref.digest.Equal(got.digest) {
		v := -1
		for i := range ref.digest.Vertex {
			if ref.digest.Vertex[i] != got.digest.Vertex[i] {
				v = i
				break
			}
		}
		t.Errorf("trace digest mismatch: run %s vs %s (first divergent vertex %d)",
			ref.digest.Run, got.digest.Run, v)
	}
	if ref.stats != got.stats {
		t.Errorf("stats mismatch:\n  reference:   %+v\n  distributed: %+v", ref.stats, got.stats)
	}
	if !equalOutputs(ref.outputs, got.outputs) {
		t.Errorf("outputs mismatch:\n  reference:   %v\n  distributed: %v", ref.outputs, got.outputs)
	}
	if !reflect.DeepEqual(ref.phases, got.phases) {
		t.Errorf("round-activity mismatch:\n  reference:   %+v\n  distributed: %+v", ref.phases, got.phases)
	}
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// equalOutputs treats nil and empty per-vertex slices as equal: the
// wire codec does not distinguish them.
func equalOutputs(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if len(a[v]) != len(b[v]) {
			return false
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				return false
			}
		}
	}
	return true
}

// Run executes the conformance suite against the transport built by
// newCluster.
func Run(t *testing.T, newCluster Factory) {
	t.Run("Equivalence", func(t *testing.T) { equivalence(t, newCluster) })
	t.Run("WorkerCounts", func(t *testing.T) { workerCounts(t, newCluster) })
	t.Run("CutMetering", func(t *testing.T) { cutMetering(t, newCluster) })
	t.Run("IdleQuiescence", func(t *testing.T) { idleQuiescence(t, newCluster) })
	t.Run("Cancellation", func(t *testing.T) { cancellation(t, newCluster) })
	t.Run("RoundLimit", func(t *testing.T) { roundLimit(t, newCluster) })
	t.Run("UnknownAlgo", func(t *testing.T) { unknownAlgo(t, newCluster) })
}

// equivalence pins the headline property: for every (family, graph,
// seed) in the matrix, a 2-worker distributed run is bit-identical to
// the in-process step engine.
func equivalence(t *testing.T, newCluster Factory) {
	graphs := suiteGraphs()
	for _, name := range distrun.Names() {
		f, _ := distrun.Get(name)
		for _, ng := range graphs {
			for _, seed := range suiteSeeds {
				t.Run(name+"/"+ng.name+"/"+itoa(seed), func(t *testing.T) {
					cfg := f.CoordConfig(ng.g, seed)
					ref := runLocal(f, cfg)
					if ref.err != nil {
						t.Fatalf("reference run failed: %v", ref.err)
					}
					ct, wait := newCluster(t, 2)
					defer joinClean(t, wait)
					compare(t, ref, runDistributed(ct, cfg))
				})
			}
		}
	}
}

// workerCounts pins shard-count invariance on the transport: the same
// instance over 1, 2, 3, and 5 workers produces the same transcript.
func workerCounts(t *testing.T, newCluster Factory) {
	g := suiteGraph("gnp48")
	f, _ := distrun.Get("twospanner")
	cfg := f.CoordConfig(g, 1)
	ref := runLocal(f, cfg)
	if ref.err != nil {
		t.Fatalf("reference run failed: %v", ref.err)
	}
	for _, w := range []int{1, 2, 3, 5} {
		t.Run(itoa(int64(w)), func(t *testing.T) {
			ct, wait := newCluster(t, w)
			defer joinClean(t, wait)
			compare(t, ref, runDistributed(ct, cfg))
		})
	}
}

// cutMetering pins Stats.CutBits over the wire: the coordinator's cut
// assignment reaches the workers and their metering folds back.
func cutMetering(t *testing.T, newCluster Factory) {
	g := suiteGraph("grid6")
	cut := make([]bool, g.N())
	for v := g.N() / 2; v < g.N(); v++ {
		cut[v] = true
	}
	f, _ := distrun.Get("twospanner")
	cfg := f.CoordConfig(g, 1)
	cfg.CutSide = cut
	ref := runLocal(f, cfg)
	if ref.err != nil {
		t.Fatalf("reference run failed: %v", ref.err)
	}
	if ref.stats.CutBits == 0 {
		t.Fatal("cut fixture meters no cut traffic; pick a different cut")
	}
	ct, wait := newCluster(t, 3)
	defer joinClean(t, wait)
	compare(t, ref, runDistributed(ct, cfg))
}

// idleQuiescence pins the quiescence protocol with mostly idle
// populations: all but two vertices are isolated and park immediately,
// so two of the three shards contribute nothing. The run must still
// terminate with the reference transcript.
func idleQuiescence(t *testing.T, newCluster Factory) {
	g := graph.New(42)
	g.AddEdge(0, 1)
	f, _ := distrun.Get("twospanner")
	cfg := f.CoordConfig(g, 1)
	ref := runLocal(f, cfg)
	if ref.err != nil {
		t.Fatalf("reference run failed: %v", ref.err)
	}
	ct, wait := newCluster(t, 3)
	defer joinClean(t, wait)
	done := make(chan outcome, 1)
	go func() { done <- runDistributed(ct, cfg) }()
	select {
	case got := <-done:
		compare(t, ref, got)
	case <-time.After(30 * time.Second):
		t.Fatal("idle-population run did not quiesce within 30s")
	}
}

// cancellation pins clean cancellation: a pre-closed Cancel channel
// aborts the run with the local engine's exact error, the transcript
// stays empty (no partial round), and the cluster tears down.
func cancellation(t *testing.T, newCluster Factory) {
	g := suiteGraph("clique12")
	f, _ := distrun.Get("twospanner")
	cancel := make(chan struct{})
	close(cancel)
	cfg := f.CoordConfig(g, 1)
	cfg.Cancel = cancel

	ref := runLocal(f, cfg)
	if !errors.Is(ref.err, dist.ErrCanceled) {
		t.Fatalf("reference cancellation error = %v", ref.err)
	}

	ct, wait := newCluster(t, 2)
	defer joinClean(t, wait)
	rec := trace.NewRecorder(g.N())
	cfg.Tracer = rec
	done := make(chan error, 1)
	go func() {
		_, err := dist.Coordinate(ct, cfg)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cancellation did not surface within 30s")
	}
	if !errors.Is(err, dist.ErrCanceled) {
		t.Fatalf("distributed cancellation error = %v", err)
	}
	if err.Error() != ref.err.Error() {
		t.Errorf("cancellation error mismatch:\n  reference:   %s\n  distributed: %s", ref.err, err)
	}
	if rec.EventCount() != 0 || len(rec.Phases()) != 0 {
		t.Errorf("canceled run left a partial transcript: %d events, %d phases",
			rec.EventCount(), len(rec.Phases()))
	}
}

// roundLimit pins abort-path equality: the distributed run hits
// MaxRounds with the local engine's exact error text.
func roundLimit(t *testing.T, newCluster Factory) {
	g := suiteGraph("clique12")
	f, _ := distrun.Get("twospanner")
	cfg := f.CoordConfig(g, 1)
	cfg.MaxRounds = 2
	ref := runLocal(f, cfg)
	if !errors.Is(ref.err, dist.ErrRoundLimit) {
		t.Fatalf("reference round-limit error = %v", ref.err)
	}
	ct, wait := newCluster(t, 2)
	defer joinClean(t, wait)
	got := runDistributed(ct, cfg)
	if !errors.Is(got.err, dist.ErrRoundLimit) {
		t.Fatalf("distributed round-limit error = %v", got.err)
	}
	if got.err.Error() != ref.err.Error() {
		t.Errorf("round-limit error mismatch:\n  reference:   %s\n  distributed: %s", ref.err, got.err)
	}
}

// unknownAlgo pins resolver-failure propagation: a family name the
// workers cannot resolve surfaces as a ShardError, not a hang.
func unknownAlgo(t *testing.T, newCluster Factory) {
	g := suiteGraph("clique12")
	ct, wait := newCluster(t, 2)
	defer func() {
		for i, werr := range wait() {
			if werr != nil && !errors.Is(werr, dist.ErrTransport) &&
				!strings.Contains(werr.Error(), "unknown family") {
				t.Errorf("worker %d exited with %v", i, werr)
			}
		}
	}()
	done := make(chan error, 1)
	go func() {
		_, err := dist.Coordinate(ct, dist.CoordConfig{Graph: g, Seed: 1, Algo: "no-such-family"})
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("unknown-algo run did not fail within 30s")
	}
	var se *dist.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("unknown algo error = %v, want ShardError", err)
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

// ChanFactory builds in-process channel clusters — the reference
// transport the suite itself is validated against.
func ChanFactory(tb testing.TB, workers int) (dist.CoordTransport, func() []error) {
	ct, wts := dist.NewChanCluster(workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, wt := range wts {
		wg.Add(1)
		go func(i int, wt dist.WorkerTransport) {
			defer wg.Done()
			errs[i] = dist.ServeShard(wt, distrun.Resolver())
		}(i, wt)
	}
	wait := func() []error {
		ct.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			tb.Fatal("workers did not exit within 30s of coordinator close")
		}
		return errs
	}
	return ct, wait
}
