package dist

import (
	"fmt"
	"testing"

	"distspanner/internal/graph"
)

// The execution-mode baseline for future perf work: rounds/sec of a plain
// gossip protocol under goroutine-per-vertex execution (Workers < 0)
// versus the gated worker pool (Workers > 0), across network sizes.
// Larger n amortizes scheduler pressure differently in the two modes;
// this benchmark is what a perf PR should move.

const benchRounds = 16

// benchGraph is a ring with chords: degree 4, deterministic, cheap to
// build at any size.
func benchGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
		if n > 4 {
			g.AddEdge(v, (v+2)%n)
		}
	}
	return g
}

func benchProc(ctx *Ctx) {
	for r := 0; r < benchRounds; r++ {
		ctx.Broadcast(blob{val: r, size: 32})
		for _, m := range ctx.NextRound() {
			_ = m.Payload.(blob).val
		}
	}
}

func runEngineBenchmark(b *testing.B, n, workers int) {
	g := benchGraph(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := Run(Config{Graph: g, Seed: 1, Workers: workers}, benchProc)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Rounds != benchRounds {
			b.Fatalf("rounds = %d", stats.Rounds)
		}
	}
	b.StopTimer()
	roundsPerSec := float64(benchRounds) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(roundsPerSec, "rounds/sec")
}

// quietProc has only vertex 0 send each round; everyone else just spins
// the barrier. This isolates the per-round delivery cost on quiet rounds,
// which dominates the tail of the spanner algorithms (most vertices have
// terminated). With dirty-sender tracking, routing is O(1) per quiet
// round instead of an O(n) context scan.
func quietProc(ctx *Ctx) {
	for r := 0; r < benchRounds; r++ {
		if ctx.ID() == 0 {
			ctx.Send(ctx.Neighbors()[0], blob{val: r, size: 32})
		}
		for _, m := range ctx.NextRound() {
			_ = m.Payload.(blob).val
		}
	}
}

func BenchmarkQuietRounds(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			g := benchGraph(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := Run(Config{Graph: g, Seed: 1, Workers: -1}, quietProc)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Rounds != benchRounds {
					b.Fatalf("rounds = %d", stats.Rounds)
				}
			}
			b.StopTimer()
			roundsPerSec := float64(benchRounds) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(roundsPerSec, "rounds/sec")
		})
	}
}

func BenchmarkGoroutinePerVertex(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runEngineBenchmark(b, n, -1)
		})
	}
}

func BenchmarkWorkerPool(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runEngineBenchmark(b, n, 0) // auto: pool above PoolThreshold
		})
	}
}
