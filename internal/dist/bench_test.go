package dist

import (
	"fmt"
	"testing"

	"distspanner/internal/graph"
)

// The execution-mode yardsticks for perf work, comparing the barrier
// engine, the event-driven scheduler, and (where the protocol is a state
// machine) the goroutine-free step engine across network sizes and
// activity fractions:
//
//   - BenchmarkGoroutinePerVertex / BenchmarkWorkerPool / BenchmarkEventBusy:
//     fully-busy gossip (every vertex broadcasts every round) — the
//     worst case for the event scheduler, whose hand-off then touches
//     every vertex anyway.
//   - BenchmarkQuietRounds: one driver vertex, everyone else parked in
//     Recv — the regime the spanner algorithms' tails live in, and the
//     workload the event scheduler exists for.
//   - BenchmarkSparseActivity: a tunable fraction of active vertices,
//     mapping the crossover between those extremes.
//
// All variants assert the protocol ran the expected number of rounds, so
// a scheduling bug cannot masquerade as a speedup.

const benchRounds = 16

// quietBenchRounds is deliberately larger: the quiet-round benchmarks
// measure the steady-state cost of a round, so the per-run fixed cost of
// spawning n vertex goroutines has to be amortized away.
const quietBenchRounds = 256

// benchGraph is a ring with chords: degree 4, deterministic, cheap to
// build at any size.
func benchGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
		if n > 4 {
			g.AddEdge(v, (v+2)%n)
		}
	}
	return g
}

func benchProc(ctx *Ctx) {
	for r := 0; r < benchRounds; r++ {
		ctx.Broadcast(blob{val: r, size: 32})
		for _, m := range ctx.NextRound() {
			_ = m.Payload.(blob).val
		}
	}
}

// benchProcRec is benchProc on the flat-buffer record path: identical
// traffic shape and metering, no boxed payloads. The boxed/record
// benchmark pairs (…Busy vs …BusyRec) are the engine-level before/after
// yardstick of the typed inbox in the CI bench artifact.
func benchProcRec(ctx *Ctx) {
	for r := 0; r < benchRounds; r++ {
		ctx.BroadcastRec(Rec{Tag: 1, A: int64(r)}, 32)
		for i := range ctx.NextRoundRecs() {
			_ = i
		}
	}
}

func runEngineBenchmark(b *testing.B, n, workers int, mode Mode, proc func(*Ctx)) {
	g := benchGraph(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := Run(Config{Graph: g, Seed: 1, Workers: workers, Mode: mode}, proc)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Rounds != benchRounds {
			b.Fatalf("rounds = %d", stats.Rounds)
		}
	}
	b.StopTimer()
	roundsPerSec := float64(benchRounds) * float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(roundsPerSec, "rounds/sec")
}

// quietProc is the sparse-activity extreme: vertex 0 drives the run,
// pinging one neighbor every round; every other vertex parks in Recv and
// is released by quiescence. Under the event scheduler a quiet round
// wakes two vertices instead of n.
func quietProc(ctx *Ctx) {
	if ctx.ID() == 0 {
		for r := 0; r < quietBenchRounds; r++ {
			ctx.Send(ctx.Neighbors()[0], blob{val: r, size: 32})
			ctx.NextRound()
		}
		return
	}
	for {
		msgs, ok := ctx.Recv()
		if !ok {
			return
		}
		for _, m := range msgs {
			_ = m.Payload.(blob).val
		}
	}
}

func BenchmarkQuietRounds(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		for _, mode := range []Mode{ModeBarrier, ModeEvent} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				g := benchGraph(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					stats, err := Run(Config{Graph: g, Seed: 1, Mode: mode}, quietProc)
					if err != nil {
						b.Fatal(err)
					}
					if stats.Rounds != quietBenchRounds {
						b.Fatalf("rounds = %d", stats.Rounds)
					}
				}
				b.StopTimer()
				roundsPerSec := float64(quietBenchRounds) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(roundsPerSec, "rounds/sec")
			})
		}
	}
}

// sparseProc activates the first activeCount vertices (send + NextRound
// every round); the rest park in Recv. Actives near the boundary wake a
// couple of parked vertices per round, as real protocol frontiers do.
func sparseProc(activeCount int) func(*Ctx) {
	return func(ctx *Ctx) {
		if ctx.ID() < activeCount {
			for r := 0; r < quietBenchRounds; r++ {
				ctx.Send(ctx.Neighbors()[0], blob{val: r, size: 32})
				for _, m := range ctx.NextRound() {
					_ = m.Payload.(blob).val
				}
			}
			return
		}
		for {
			msgs, ok := ctx.Recv()
			if !ok {
				return
			}
			for _, m := range msgs {
				_ = m.Payload.(blob).val
			}
		}
	}
}

func BenchmarkSparseActivity(b *testing.B) {
	for _, n := range []int{2048, 16384} {
		for _, pct := range []int{1, 10, 50} {
			active := n * pct / 100
			for _, mode := range []Mode{ModeBarrier, ModeEvent} {
				b.Run(fmt.Sprintf("n=%d/active=%d%%/mode=%s", n, pct, mode), func(b *testing.B) {
					g := benchGraph(n)
					proc := sparseProc(active)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						stats, err := Run(Config{Graph: g, Seed: 1, Mode: mode}, proc)
						if err != nil {
							b.Fatal(err)
						}
						if stats.Rounds != quietBenchRounds {
							b.Fatalf("rounds = %d", stats.Rounds)
						}
					}
					b.StopTimer()
					roundsPerSec := float64(quietBenchRounds) * float64(b.N) / b.Elapsed().Seconds()
					b.ReportMetric(roundsPerSec, "rounds/sec")
				})
			}
		}
	}
}

func BenchmarkGoroutinePerVertex(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runEngineBenchmark(b, n, -1, ModeBarrier, benchProc)
		})
	}
}

func BenchmarkWorkerPool(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runEngineBenchmark(b, n, 0, ModeBarrier, benchProc) // auto: pool above PoolThreshold
		})
	}
}

func BenchmarkEventBusy(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runEngineBenchmark(b, n, 0, ModeEvent, benchProc)
		})
	}
}

// The record-path twins: same fully-busy gossip through the flat-buffer
// inbox. Comparing …Busy to …BusyRec in the bench artifact isolates what
// the typed path saves over boxed payloads at identical traffic.
func BenchmarkBarrierBusyRec(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runEngineBenchmark(b, n, 0, ModeBarrier, benchProcRec)
		})
	}
}

func BenchmarkEventBusyRec(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			runEngineBenchmark(b, n, 0, ModeEvent, benchProcRec)
		})
	}
}

// benchMachine is benchProcRec as a state machine: the same fully-busy
// record gossip, stepped instead of blocked. Running it under all three
// modes isolates what the goroutine-free step engine saves over
// goroutine hand-off at identical traffic — the engine-level yardstick
// for ModeStep.
type benchMachine struct{ round int }

func (m *benchMachine) Step(ctx *Ctx, in StepIn) StepStatus {
	if !in.Start {
		for i := range in.Recs {
			_ = i
		}
	}
	if m.round == benchRounds {
		return StepDone
	}
	ctx.BroadcastRec(Rec{Tag: 1, A: int64(m.round)}, 32)
	m.round++
	return StepYield
}

func BenchmarkMachineBusy(b *testing.B) {
	for _, n := range []int{256, 2048, 16384} {
		for _, mode := range []Mode{ModeBarrier, ModeEvent, ModeStep} {
			b.Run(fmt.Sprintf("n=%d/mode=%s", n, mode), func(b *testing.B) {
				g := benchGraph(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					stats, err := RunMachines(Config{Graph: g, Seed: 1, Mode: mode},
						func(*Ctx) Machine { return &benchMachine{} })
					if err != nil {
						b.Fatal(err)
					}
					if stats.Rounds != benchRounds {
						b.Fatalf("rounds = %d", stats.Rounds)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(benchRounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			})
		}
	}
}

// nullTracer drops every hook call: the traced benchmark variants
// measure the engine-side cost of tracing itself (timestamps, event
// construction, delivery metering), not the cost of any recorder.
type nullTracer struct{}

func (nullTracer) Event(TraceEvent)      {}
func (nullTracer) Phase(RoundActivity)   {}
func (nullTracer) RoundTime(RoundTiming) {}

// BenchmarkTraceOverheadBusy pairs untraced and traced runs of the
// fully-busy record gossip — the most events per round, hence the
// tracing worst case. tracer=off is the nil-Tracer disabled path the
// benchgate guards against regressing; tracer=null isolates what
// enabling the hooks costs on top.
func BenchmarkTraceOverheadBusy(b *testing.B) {
	for _, n := range []int{256, 2048} {
		for _, v := range []struct {
			name string
			tr   Tracer
		}{{"off", nil}, {"null", nullTracer{}}} {
			b.Run(fmt.Sprintf("n=%d/tracer=%s", n, v.name), func(b *testing.B) {
				g := benchGraph(n)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					stats, err := Run(Config{Graph: g, Seed: 1, Mode: ModeBarrier, Tracer: v.tr}, benchProcRec)
					if err != nil {
						b.Fatal(err)
					}
					if stats.Rounds != benchRounds {
						b.Fatalf("rounds = %d", stats.Rounds)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(benchRounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			})
		}
	}
}

// BenchmarkTraceOverheadQuiet is the same pair in the quiet regime —
// one driver, everyone parked — where per-round fixed costs (the
// timestamp reads and Phase emission) dominate over per-event costs.
func BenchmarkTraceOverheadQuiet(b *testing.B) {
	for _, v := range []struct {
		name string
		tr   Tracer
	}{{"off", nil}, {"null", nullTracer{}}} {
		b.Run(fmt.Sprintf("n=2048/tracer=%s", v.name), func(b *testing.B) {
			g := benchGraph(2048)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := Run(Config{Graph: g, Seed: 1, Mode: ModeEvent, Tracer: v.tr}, quietProc)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Rounds != quietBenchRounds {
					b.Fatalf("rounds = %d", stats.Rounds)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(quietBenchRounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
		})
	}
}
