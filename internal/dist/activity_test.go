package dist

import (
	"reflect"
	"testing"
)

// The activity-metering contract: Stats.ActiveSteps / ParkedSteps /
// PeakActive and the Config.OnRound per-round curve are exact,
// deterministic, and identical across execution modes. These tests pin
// the semantics on hand-built protocols where the curve can be derived
// by hand.

// collectActivity runs proc under the given mode and returns the stats
// plus the OnRound curve.
func collectActivity(t *testing.T, g interface{ N() int }, cfg Config, proc func(*Ctx)) (*Stats, []RoundActivity) {
	t.Helper()
	var curve []RoundActivity
	cfg.OnRound = func(a RoundActivity) { curve = append(curve, a) }
	stats, err := Run(cfg, proc)
	if err != nil {
		t.Fatal(err)
	}
	return stats, curve
}

func TestActivityAllBusy(t *testing.T) {
	// Every vertex broadcasts every round: Active is n in every round,
	// nobody ever parks.
	const rounds = 5
	g := clique(6)
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		stats, curve := collectActivity(t, g, Config{Graph: g, Seed: 1, Mode: mode}, func(ctx *Ctx) {
			for r := 0; r < rounds; r++ {
				ctx.Broadcast(blob{val: r, size: 8})
				ctx.NextRound()
			}
		})
		if stats.ActiveSteps != int64(rounds*g.N()) || stats.ParkedSteps != 0 || stats.PeakActive != g.N() {
			t.Fatalf("mode %v: busy protocol activity = %+v", mode, stats)
		}
		if len(curve) != rounds {
			t.Fatalf("mode %v: OnRound fired %d times, want %d", mode, len(curve), rounds)
		}
		for i, a := range curve {
			// Every broadcast is delivered: n senders × (n-1) receivers of an
			// 8-bit payload per round.
			want := RoundActivity{
				Round: i + 1, Active: g.N(), Parked: 0, Senders: g.N(),
				Delivered: g.N() * (g.N() - 1), DeliveredBits: int64(8 * g.N() * (g.N() - 1)),
			}
			if a != want {
				t.Fatalf("mode %v round %d: activity = %+v, want %+v", mode, i+1, a, want)
			}
		}
	}
}

func TestActivityCurveWithParkedVertices(t *testing.T) {
	// Path 0-1-2. Vertex 0 idles for 3 rounds, then pings vertex 1 and
	// retires; vertices 1 and 2 park in Recv immediately. The hand-derived
	// curve: round 1 is the initial step of all three vertices (two of
	// them park); rounds 2-3 only the driver runs; round 4 carries the
	// ping, whose delivery unparks vertex 1. The finalization steps after
	// the last completed round (retirements, quiescence release of vertex
	// 2) belong to no round and are not counted.
	want := []RoundActivity{
		{Round: 1, Active: 3, Parked: 2, Senders: 0},
		{Round: 2, Active: 1, Parked: 2, Senders: 0},
		{Round: 3, Active: 1, Parked: 2, Senders: 0},
		{Round: 4, Active: 1, Parked: 1, Senders: 1, Delivered: 1, DeliveredBits: 8},
	}
	g := path(3)
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		stats, curve := collectActivity(t, g, Config{Graph: g, Seed: 1, Mode: mode}, func(ctx *Ctx) {
			switch ctx.ID() {
			case 0:
				for r := 0; r < 3; r++ {
					ctx.NextRound()
				}
				ctx.Send(1, blob{val: 9, size: 8})
				ctx.NextRound()
			default:
				for {
					if _, ok := ctx.Recv(); !ok {
						return
					}
				}
			}
		})
		if !reflect.DeepEqual(curve, want) {
			t.Fatalf("mode %v: curve = %+v, want %+v", mode, curve, want)
		}
		if stats.ActiveSteps != 6 || stats.ParkedSteps != 7 || stats.PeakActive != 3 {
			t.Fatalf("mode %v: aggregates = %+v", mode, stats)
		}
	}
}

func TestActivityIdenticalAcrossModes(t *testing.T) {
	// The chaos protocol mixes NextRound, Recv, sends, and retirement;
	// the activity curve must be bit-identical across modes and worker
	// gatings, like every other statistic.
	g := benchGraph(48)
	var ref []RoundActivity
	var refStats Stats
	for i, cfg := range []Config{
		{Graph: g, Seed: 7, Mode: ModeBarrier},
		{Graph: g, Seed: 7, Mode: ModeBarrier, Workers: 3},
		{Graph: g, Seed: 7, Mode: ModeEvent},
	} {
		out := make([]int64, g.N())
		stats, curve := collectActivity(t, g, cfg, chaosProc(12, out))
		if i == 0 {
			ref, refStats = curve, *stats
			continue
		}
		if !reflect.DeepEqual(ref, curve) {
			t.Fatalf("config %d: activity curve diverged across modes", i)
		}
		if refStats != *stats {
			t.Fatalf("config %d: stats diverged:\nref: %+v\ngot: %+v", i, refStats, *stats)
		}
	}
	// Sanity: the aggregates are the curve's sums.
	var active, parked int64
	peak := 0
	for _, a := range ref {
		active += int64(a.Active)
		parked += int64(a.Parked)
		if a.Active > peak {
			peak = a.Active
		}
	}
	if refStats.ActiveSteps != active || refStats.ParkedSteps != parked || refStats.PeakActive != peak {
		t.Fatalf("aggregates %+v do not match curve sums (active=%d parked=%d peak=%d)",
			refStats, active, parked, peak)
	}
}
