package dist

import "fmt"

// Mode selects the engine's scheduling strategy. All strategies execute
// the same synchronous-round semantics and are required (and tested) to
// produce bit-identical results and Stats for a fixed (Graph, Seed); they
// differ only in how vertex steps are driven, i.e. in wall-clock cost.
type Mode int

const (
	// ModeAuto picks the mode by how the protocol is expressed. For
	// blocking procedures (Run) it switches on network size: ModeEvent at
	// or above EventThreshold vertices, ModeBarrier below it. For state
	// machines (RunMachines) it always picks ModeStep — a machine never
	// blocks, so the goroutine-free engine dominates at every size.
	ModeAuto Mode = iota
	// ModeBarrier is the classic execution: every vertex runs freely
	// between central barriers, and completing a round wakes every
	// still-running vertex — O(n) wakeups per round regardless of how
	// many vertices have anything to do.
	ModeBarrier
	// ModeEvent is the event-driven scheduler: vertices are parked
	// goroutines resumed by explicit hand-off, and a round schedules only
	// the active vertices — those holding a freshly delivered inbox or an
	// explicit self-wakeup (a NextRound call). Quiet vertices (parked in
	// Recv) cost zero wakeups, making round cost O(#active + #senders)
	// instead of O(n).
	ModeEvent
	// ModeStep is the goroutine-free engine: vertices are explicit state
	// machines (see Machine) stepped by a sharded run-to-completion loop
	// on the caller's goroutine — no per-vertex goroutine, no parking, no
	// channel hand-off. A round is a scan over the active set. Like
	// ModeEvent, quiet machines cost nothing; unlike it, active ones cost
	// a plain function call instead of two channel operations, which is
	// what removes the per-vertex stack and hand-off and lets runs scale
	// to millions of vertices on one box. Only RunMachines accepts it:
	// blocking procedures cannot run without a goroutine to block.
	ModeStep
)

// EventThreshold is the vertex count at which ModeAuto switches a
// blocking-procedure Run from the barrier engine to the event-driven
// scheduler. It is the single source of truth for that switch point —
// doc references (ROADMAP, ARCHITECTURE) cite this constant rather than
// repeating the number. The tradeoff, measured by bench_test.go and the
// core 2-spanner algorithm: on rounds where every vertex is active the
// hand-off costs extra channel operations per vertex (up to ~25% on
// light-payload gossip, 13-26% on the real algorithm below n=4096),
// while on sparse rounds — any vertex parked in Recv — the scheduler
// wins by up to an order of magnitude, because quiet vertices cost zero
// wakeups. At n >= 4096 the barrier engine itself pays worker-pool
// gating (PoolThreshold), and the real-algorithm gap closes to noise
// (event was 7% faster at n=4096, 1.5% slower at n=8192 on the
// 2-spanner), so switching here is regression-free on fully-busy
// protocols and buys the sparse win by default. Protocols that know
// their activity profile should pin Config.Mode instead. State machines
// (RunMachines) never consult this: ModeAuto resolves them to ModeStep,
// which wins on both busy and sparse rounds.
const EventThreshold = 4096

// String returns the mode's CLI/parameter spelling.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeBarrier:
		return "barrier"
	case ModeEvent:
		return "event"
	case ModeStep:
		return "step"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses the CLI/parameter spelling of a Mode ("auto",
// "barrier", "event", "step").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "auto":
		return ModeAuto, nil
	case "barrier":
		return ModeBarrier, nil
	case "event":
		return ModeEvent, nil
	case "step":
		return ModeStep, nil
	}
	return ModeAuto, fmt.Errorf("dist: unknown execution mode %q (want auto, barrier, event, step)", s)
}

// resolve maps ModeAuto to a concrete mode for an n-vertex run of a
// blocking procedure (Run). ModeStep is not a candidate here: it cannot
// execute blocking procedures.
func (m Mode) resolve(n int) Mode {
	if m == ModeAuto {
		if n >= EventThreshold {
			return ModeEvent
		}
		return ModeBarrier
	}
	return m
}

// resolveMachines maps ModeAuto to a concrete mode for a state-machine
// run (RunMachines): always ModeStep. The blocking modes remain
// selectable explicitly — that is what the cross-mode equivalence tests
// exercise — but never win on wall clock for machines.
func (m Mode) resolveMachines() Mode {
	if m == ModeAuto {
		return ModeStep
	}
	return m
}
