package dist

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"distspanner/internal/graph"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
	}{{"", ModeAuto}, {"auto", ModeAuto}, {"barrier", ModeBarrier}, {"event", ModeEvent}} {
		got, err := ParseMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("Mode.String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted a bogus mode")
	}
	if _, err := Run(Config{Graph: path(2), Mode: Mode(99)}, func(*Ctx) {}); err == nil {
		t.Error("Run accepted an invalid Config.Mode")
	}
}

func TestAutoModeThreshold(t *testing.T) {
	if got := ModeAuto.resolve(EventThreshold - 1); got != ModeBarrier {
		t.Errorf("auto below threshold = %v", got)
	}
	if got := ModeAuto.resolve(EventThreshold); got != ModeEvent {
		t.Errorf("auto at threshold = %v", got)
	}
	if got := ModeBarrier.resolve(1 << 20); got != ModeBarrier {
		t.Errorf("explicit barrier resolved to %v", got)
	}
}

// runBothModes executes the same configured protocol under the barrier and
// event engines and requires identical outcomes, returning the (shared)
// stats and error.
func runBothModes(t *testing.T, cfg Config, mkProc func(out []int64) func(*Ctx)) ([]int64, *Stats, error) {
	t.Helper()
	type result struct {
		out   []int64
		stats *Stats
		err   error
	}
	var results [2]result
	for i, mode := range []Mode{ModeBarrier, ModeEvent} {
		c := cfg
		c.Mode = mode
		out := make([]int64, c.Graph.N())
		stats, err := Run(c, mkProc(out))
		results[i] = result{out, stats, err}
	}
	b, ev := results[0], results[1]
	if (b.err == nil) != (ev.err == nil) {
		t.Fatalf("modes disagree on failure: barrier err=%v, event err=%v", b.err, ev.err)
	}
	if b.err == nil {
		if !reflect.DeepEqual(b.out, ev.out) {
			t.Fatalf("per-vertex outputs differ across modes:\nbarrier: %v\nevent:   %v", b.out, ev.out)
		}
		if *b.stats != *ev.stats {
			t.Fatalf("stats differ across modes:\nbarrier: %+v\nevent:   %+v", *b.stats, *ev.stats)
		}
	}
	return b.out, b.stats, b.err
}

func TestEventModeGossipMatchesBarrier(t *testing.T) {
	_, stats, err := runBothModes(t, Config{Graph: clique(12), Seed: 42}, func(out []int64) func(*Ctx) {
		return gossipProc(8, out)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 8 {
		t.Fatalf("Rounds = %d, want 8", stats.Rounds)
	}
}

func TestRecvParksUntilDelivery(t *testing.T) {
	// Vertex 0 stays silent for 5 rounds, then pings vertex 1, which is
	// parked in Recv the whole time. The receiver must see exactly the
	// round-6 delivery; the skipped rounds still count globally.
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		g := path(3)
		got := make([]int, 0, 1)
		stats, err := Run(Config{Graph: g, Seed: 1, Mode: mode}, func(ctx *Ctx) {
			switch ctx.ID() {
			case 0:
				for r := 0; r < 5; r++ {
					ctx.NextRound()
				}
				ctx.Send(1, blob{val: 77, size: 8})
				ctx.NextRound()
			case 1:
				msgs, ok := ctx.Recv()
				if !ok || len(msgs) != 1 {
					t.Errorf("mode %v: Recv = %v, %v", mode, msgs, ok)
					return
				}
				got = append(got, msgs[0].Payload.(blob).val)
			case 2:
				// Parked forever: released only by quiescence.
				if _, ok := ctx.Recv(); ok {
					t.Errorf("mode %v: vertex 2 woke without a delivery", mode)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, []int{77}) {
			t.Fatalf("mode %v: received %v", mode, got)
		}
		if stats.Rounds != 6 {
			t.Fatalf("mode %v: Rounds = %d, want 6", mode, stats.Rounds)
		}
	}
}

func TestQuiesceImmediate(t *testing.T) {
	// Every vertex parks with nothing in flight: the run quiesces without
	// completing a single round.
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		released := make([]bool, 4)
		stats, err := Run(Config{Graph: clique(4), Seed: 1, Mode: mode}, func(ctx *Ctx) {
			if msgs, ok := ctx.Recv(); ok || msgs != nil {
				t.Errorf("mode %v: Recv on a silent network = %v, %v", mode, msgs, ok)
			}
			released[ctx.ID()] = true
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rounds != 0 {
			t.Fatalf("mode %v: Rounds = %d, want 0", mode, stats.Rounds)
		}
		for v, ok := range released {
			if !ok {
				t.Fatalf("mode %v: vertex %d never released from Recv", mode, v)
			}
		}
	}
}

func TestQuiesceAfterTraffic(t *testing.T) {
	// Each vertex forwards a token a fixed number of hops, then parks; the
	// run must flush all traffic, then quiesce deterministically.
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		n := 8
		g := benchGraph(n)
		stats, err := Run(Config{Graph: g, Seed: 1, Mode: mode}, func(ctx *Ctx) {
			if ctx.ID() == 0 {
				ctx.Send(ctx.Neighbors()[0], blob{val: 3, size: 8})
			}
			for {
				msgs, ok := ctx.Recv()
				if !ok {
					return
				}
				for _, m := range msgs {
					if hops := m.Payload.(blob).val; hops > 0 {
						ctx.Send(ctx.Neighbors()[0], blob{val: hops - 1, size: 8})
					}
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Token travels 4 hops (rounds 1-4); round 5 delivers nothing, but
		// the last forward commits in round 4 and quiescence follows.
		if stats.Rounds != 4 || stats.Messages != 4 {
			t.Fatalf("mode %v: stats = %+v", mode, stats)
		}
	}
}

func TestQuiesceEpilogueIsInert(t *testing.T) {
	// After Recv reports quiescence, NextRound must return immediately
	// with nothing, and sends must be discarded, in both modes.
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		stats, err := Run(Config{Graph: path(2), Seed: 1, Mode: mode}, func(ctx *Ctx) {
			if _, ok := ctx.Recv(); ok {
				t.Errorf("mode %v: expected quiescence", mode)
			}
			ctx.Broadcast(blob{val: 1, size: 8})
			if msgs := ctx.NextRound(); msgs != nil {
				t.Errorf("mode %v: post-quiescence NextRound = %v", mode, msgs)
			}
			if msgs, ok := ctx.Recv(); ok || msgs != nil {
				t.Errorf("mode %v: post-quiescence Recv = %v, %v", mode, msgs, ok)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rounds != 0 || stats.Messages != 0 {
			t.Fatalf("mode %v: post-quiescence traffic metered: %+v", mode, stats)
		}
	}
}

func TestEventModeErrors(t *testing.T) {
	// The failure paths must behave identically in event mode: vertex
	// panics become Run errors, round limits abort, enforced bandwidth
	// aborts — including with parked vertices waiting.
	g := clique(5)
	_, err := Run(Config{Graph: g, Seed: 1, Mode: ModeEvent}, func(ctx *Ctx) {
		if ctx.ID() == 3 {
			panic("protocol bug")
		}
		if _, ok := ctx.Recv(); ok {
			t.Error("parked vertex woke without delivery")
		}
	})
	if err == nil || !strings.Contains(err.Error(), "protocol bug") {
		t.Fatalf("vertex panic in event mode: err = %v", err)
	}

	_, err = Run(Config{Graph: g, Seed: 1, Mode: ModeEvent, MaxRounds: 10}, func(ctx *Ctx) {
		for {
			ctx.Broadcast(blob{size: 1})
			ctx.NextRound()
		}
	})
	if !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("round limit in event mode: err = %v", err)
	}

	_, err = Run(Config{Graph: path(3), Seed: 1, Mode: ModeEvent, Bandwidth: 8, Enforce: true}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.Send(1, blob{size: 100})
			ctx.NextRound()
			return
		}
		if _, ok := ctx.Recv(); ok {
			ctx.Recv()
		}
	})
	if !errors.Is(err, ErrBandwidth) {
		t.Fatalf("enforced bandwidth in event mode: err = %v", err)
	}
}

func TestEventModeStaggeredTermination(t *testing.T) {
	// Re-run the staggered-termination scenario under the event engine:
	// messages to retired vertices are metered but dropped.
	stats, err := Run(Config{Graph: clique(4), Seed: 1, Mode: ModeEvent}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			return
		}
		for r := 0; r < 3; r++ {
			ctx.Broadcast(blob{size: 4})
			inbox := ctx.NextRound()
			if len(inbox) != 2 {
				t.Errorf("vertex %d round %d: %d messages, want 2", ctx.ID(), r, len(inbox))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 3 || stats.Messages != 27 {
		t.Fatalf("stats = %+v", stats)
	}
}

// chaosProc is a randomized protocol mixing every engine primitive: each
// vertex flips its private coin to decide between sending to random
// neighbors, yielding via NextRound, and parking in Recv, folding
// everything it hears into a per-vertex hash. Because each vertex's RNG is
// a pure function of (seed, id), the whole transcript must be a pure
// function of (graph, seed) — in every mode, under any worker gating.
func chaosProc(steps int, out []int64) func(*Ctx) {
	return func(ctx *Ctx) {
		h := int64(ctx.ID()) + 1
		defer func() { out[ctx.ID()] = h }()
		for s := 0; s < steps; s++ {
			if deg := ctx.Degree(); deg > 0 && ctx.Rand().Intn(3) > 0 {
				for k := ctx.Rand().Intn(3); k > 0; k-- {
					to := ctx.Neighbors()[ctx.Rand().Intn(deg)]
					v := ctx.Rand().Intn(1 << 16)
					ctx.Send(to, blob{val: v, size: 8 + v%9})
					h = h*31 + int64(v)
				}
			}
			var msgs []Message
			if ctx.Rand().Intn(4) == 0 {
				var ok bool
				msgs, ok = ctx.Recv()
				if !ok {
					h = h*31 + 7
					return
				}
			} else {
				msgs = ctx.NextRound()
			}
			for _, m := range msgs {
				h = h*31 + int64(m.From) + int64(m.Payload.(blob).val)<<1
			}
		}
	}
}

func TestCrossModeChaosEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"clique16":   clique(16),
		"path33":     path(33),
		"ring64":     benchGraph(64),
		"sparse2x40": func() *graph.Graph { g := graph.New(80); g.AddEdge(0, 79); return g }(),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				var ref []int64
				var refStats Stats
				for i, cfg := range []Config{
					{Graph: g, Seed: seed, Mode: ModeBarrier},
					{Graph: g, Seed: seed, Mode: ModeBarrier, Workers: 3},
					{Graph: g, Seed: seed, Mode: ModeEvent},
					{Graph: g, Seed: seed, Mode: ModeEvent, Workers: 3},
				} {
					out := make([]int64, g.N())
					stats, err := Run(cfg, chaosProc(10, out))
					if err != nil {
						t.Fatalf("config %d: %v", i, err)
					}
					if i == 0 {
						ref, refStats = out, *stats
						continue
					}
					if !reflect.DeepEqual(ref, out) {
						t.Fatalf("config %d (mode=%v workers=%d) diverged from barrier reference", i, cfg.Mode, cfg.Workers)
					}
					if refStats != *stats {
						t.Fatalf("config %d stats diverged:\nref: %+v\ngot: %+v", i, refStats, *stats)
					}
				}
			})
		}
	}
}
