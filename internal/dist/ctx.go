package dist

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ctx is the per-vertex surface of the engine: identity, topology access,
// a private deterministic RNG, and the send/receive primitives. Exactly
// one goroutine (the vertex's own) may use a Ctx.
type Ctx struct {
	eng  *engine
	id   int
	nbrs []int // sorted neighbor ids
	rng  *rand.Rand

	inbox    []Message // delivered by the engine at each barrier
	outbox   []outMsg  // queued sends of the current round
	edgeBits []int     // routing scratch, parallel to nbrs
	touched  []int     // edgeBits indices written this round (routing scratch)
	done     bool      // proc returned
	holding  bool      // occupies a worker-pool slot
}

func newCtx(e *engine, id int, seed int64) *Ctx {
	nbrs := e.g.Neighbors(id) // freshly allocated and sorted
	return &Ctx{
		eng:      e,
		id:       id,
		nbrs:     nbrs,
		rng:      rand.New(rand.NewSource(vertexSeed(seed, id))),
		edgeBits: make([]int, len(nbrs)),
	}
}

// vertexSeed decorrelates the per-vertex RNG streams from the run seed
// with a splitmix64 step, so neighboring ids do not get correlated
// randomness.
func vertexSeed(seed int64, id int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ID returns this vertex's id in 0..N()-1.
func (c *Ctx) ID() int { return c.id }

// N returns the number of vertices in the network. Ids are globally
// known, as the paper's model assumes.
func (c *Ctx) N() int { return c.eng.n }

// Neighbors returns this vertex's neighbor ids in ascending order. The
// slice is shared; callers must not modify it.
func (c *Ctx) Neighbors() []int { return c.nbrs }

// Degree returns the number of neighbors.
func (c *Ctx) Degree() int { return len(c.nbrs) }

// Rand returns this vertex's private RNG. Its stream is a deterministic
// function of (Config.Seed, vertex id), which is what makes whole runs
// reproducible.
func (c *Ctx) Rand() *rand.Rand { return c.rng }

// Send queues p for delivery to the neighbor to at the next round
// boundary. Sends are committed by the sender's next NextRound call;
// sends queued after a vertex's last NextRound are discarded when its
// procedure returns. Sending to a non-neighbor (or to yourself) panics:
// the model only has channels along graph edges.
func (c *Ctx) Send(to int, p Payload) {
	c.nbrIndex(to) // validates
	c.outbox = append(c.outbox, outMsg{to: to, p: p})
}

// Broadcast queues p for every neighbor.
func (c *Ctx) Broadcast(p Payload) {
	for _, u := range c.nbrs {
		c.outbox = append(c.outbox, outMsg{to: u, p: p})
	}
}

// NextRound ends this vertex's current round: all queued sends are
// committed, the vertex blocks until every other active vertex has done
// the same, and the messages addressed to it in the completed round are
// returned, sorted by sender id (ties in send order).
func (c *Ctx) NextRound() []Message {
	return c.eng.barrier(c)
}

// nbrIndex returns to's position in the sorted neighbor list, panicking
// when to is not a neighbor.
func (c *Ctx) nbrIndex(to int) int {
	i := sort.SearchInts(c.nbrs, to)
	if i >= len(c.nbrs) || c.nbrs[i] != to {
		panic(fmt.Sprintf("dist: vertex %d cannot send to %d: not a neighbor", c.id, to))
	}
	return i
}

// acquire takes a worker-pool slot before executing a step; a no-op in
// goroutine-per-vertex mode.
func (c *Ctx) acquire() {
	if c.eng.sem != nil {
		c.eng.sem <- struct{}{}
		c.holding = true
	}
}

// release returns the slot while blocked at a barrier (or retired).
func (c *Ctx) release() {
	if c.holding {
		<-c.eng.sem
		c.holding = false
	}
}
