package dist

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ctx is the per-vertex surface of the engine: identity, topology access,
// a private deterministic RNG, and the send/receive primitives. Exactly
// one goroutine (the vertex's own) may use a Ctx.
type Ctx struct {
	eng  *engine
	id   int
	nbrs []int      // sorted neighbor ids
	rng  *rand.Rand // lazily built on first Rand call
	seed int64      // run seed, for the lazy RNG derivation

	inbox    []Message     // delivered boxed payloads of the completed round
	outbox   []outMsg      // queued boxed sends of the current round
	edgeBits []int         // routing scratch, parallel to nbrs
	touched  []int         // edgeBits indices written this round (routing scratch)
	done     bool          // proc returned
	parked   bool          // blocked in Recv awaiting a delivery
	holding  bool          // occupies a worker-pool slot
	wake     chan wakeKind // event mode: scheduler -> vertex hand-off

	// Flat-buffer record arenas (see rec.go). The in arenas are written by
	// the router while the vertex is blocked and drained by takeRecs; the
	// out arenas hold queued record sends with their packed int tails.
	inRecs     []InRec
	inInts     []int
	outRecs    []outRec
	outInts    []int
	lastStaged []int // backing slice of the last staged tail (broadcast reuse)
	lastOff    int32
}

func newCtx(e *engine, id int, seed int64) *Ctx {
	// The RNG state (~5KB, seeded with hundreds of multiplications) and
	// the metering scratch are built lazily on first use: a vertex that
	// never draws randomness or sends costs O(degree) to set up, which is
	// what keeps Run's fixed cost low on huge, mostly-quiet networks.
	return &Ctx{
		eng:  e,
		id:   id,
		nbrs: e.g.Neighbors(id), // freshly allocated and sorted
		seed: seed,
	}
}

// vertexSeed decorrelates the per-vertex RNG streams from the run seed
// with a splitmix64 step, so neighboring ids do not get correlated
// randomness.
func vertexSeed(seed int64, id int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(id+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ID returns this vertex's id in 0..N()-1.
func (c *Ctx) ID() int { return c.id }

// N returns the number of vertices in the network. Ids are globally
// known, as the paper's model assumes.
func (c *Ctx) N() int { return c.eng.n }

// Neighbors returns this vertex's neighbor ids in ascending order. The
// slice is shared; callers must not modify it.
func (c *Ctx) Neighbors() []int { return c.nbrs }

// Degree returns the number of neighbors.
func (c *Ctx) Degree() int { return len(c.nbrs) }

// Rand returns this vertex's private RNG. Its stream is a deterministic
// function of (Config.Seed, vertex id), which is what makes whole runs
// reproducible.
func (c *Ctx) Rand() *rand.Rand {
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(vertexSeed(c.seed, c.id)))
	}
	return c.rng
}

// Send queues p for delivery to the neighbor to at the next round
// boundary. Sends are committed by the sender's next block (NextRound or
// Recv) — or, for sends still queued when the procedure returns, by the
// retirement itself: a vertex's last words ride the round in flight, and
// when they could only reach already-retired peers they are metered and
// dropped without charging a round. Sending to a non-neighbor (or to
// yourself) panics: the model only has channels along graph edges.
func (c *Ctx) Send(to int, p Payload) {
	c.nbrIndex(to) // validates
	c.ensureScratch()
	c.outbox = append(c.outbox, outMsg{to: to, p: p})
}

// Broadcast queues p for every neighbor.
func (c *Ctx) Broadcast(p Payload) {
	if len(c.nbrs) == 0 {
		return
	}
	c.ensureScratch()
	for _, u := range c.nbrs {
		c.outbox = append(c.outbox, outMsg{to: u, p: p})
	}
}

// ensureScratch lazily builds the per-edge metering scratch the first
// time this vertex sends anything.
func (c *Ctx) ensureScratch() {
	if c.edgeBits == nil {
		c.edgeBits = make([]int, len(c.nbrs))
	}
}

// NextRound ends this vertex's current round: all queued sends are
// committed, the vertex blocks until the round completes, and the
// messages addressed to it in the completed round are returned, sorted by
// sender id (ties in send order). Calling NextRound is an explicit
// self-wakeup: the vertex is active in the next round whether or not
// anyone wrote to it. After the network has quiesced (see Recv), rounds
// no longer advance and NextRound returns nil immediately.
func (c *Ctx) NextRound() []Message {
	c.blockStep()
	return c.takeMessages()
}

// blockStep is the shared blocking body of NextRound and NextRoundRecs:
// commit sends, end the step, resume when the round has completed (or the
// network has quiesced).
func (c *Ctx) blockStep() {
	switch c.eng.mode {
	case ModeEvent:
		c.eng.eventYield(c)
	case ModeStep:
		panic("dist: blocking call (NextRound/Recv) inside a state-machine step: return StepYield/StepPark instead")
	default:
		c.eng.barrier(c)
	}
}

// blockRecv is the shared blocking body of Recv and RecvRecs: commit
// sends, park until a delivery (true) or quiescence (false).
func (c *Ctx) blockRecv() bool {
	switch c.eng.mode {
	case ModeEvent:
		return c.eng.eventPark(c)
	case ModeStep:
		panic("dist: blocking call (NextRound/Recv) inside a state-machine step: return StepYield/StepPark instead")
	default:
		return c.eng.park(c)
	}
}

// Recv commits all queued sends like NextRound, then parks the vertex: it
// sleeps through every round in which it receives nothing and wakes in
// the first round that delivers at least one message, returning that
// round's inbox (sorted by sender id) and ok=true. A parked vertex costs
// the event-driven scheduler zero wakeups per quiet round, which is what
// makes sparse-activity protocols cheap — prefer Recv over a NextRound
// loop whenever a vertex is idle until contacted.
//
// If the whole network goes permanently silent — every live vertex parked
// in Recv and no messages in flight — no future round could wake anyone:
// the run has quiesced. Recv then returns (nil, false), and the procedure
// should finalize and return. Quiescence is deterministic (it happens at
// the same round in every mode) and is the idiomatic way to terminate
// protocols whose vertices do not know their own last round.
func (c *Ctx) Recv() ([]Message, bool) {
	if !c.blockRecv() {
		return nil, false
	}
	return c.takeMessages(), true
}

// nbrIndex returns to's position in the sorted neighbor list, panicking
// when to is not a neighbor.
func (c *Ctx) nbrIndex(to int) int {
	i := sort.SearchInts(c.nbrs, to)
	if i >= len(c.nbrs) || c.nbrs[i] != to {
		panic(fmt.Sprintf("dist: vertex %d cannot send to %d: not a neighbor", c.id, to))
	}
	return i
}

// acquire takes a worker-pool slot before executing a step; a no-op in
// goroutine-per-vertex mode.
func (c *Ctx) acquire() {
	if c.eng.sem != nil {
		c.eng.sem <- struct{}{}
		c.holding = true
	}
}

// release returns the slot while blocked at a barrier (or retired).
func (c *Ctx) release() {
	if c.holding {
		<-c.eng.sem
		c.holding = false
	}
}
