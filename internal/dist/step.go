package dist

import (
	"runtime"
	"sync"
	"time"
)

// The ModeStep scheduler: vertices are explicit state machines stepped
// by a sharded run-to-completion loop on the caller's goroutine. There
// is no per-vertex goroutine, no parking, no channel hand-off — vertex
// resume state lives in the Machine values and the flat Ctx arenas, and
// a round is one scan over the active set. The loop shares routing,
// metering, activity accounting, and the quiescence/retire-flush rules
// with the blocking engines (routeLocked, recordRoundLocked,
// flushWakesLocked), which is what keeps all three modes bit-identical.
//
// Concurrency: only the scheduler goroutine touches engine state, so no
// locks are taken. Machine steps themselves are sharded across worker
// goroutines when the active set is large — safe because a step only
// writes its own vertex's Ctx arenas and status slot.

// runStep drives machines to completion. On return e.stats and e.abort
// hold the result; the caller (RunMachines) packages them.
func (e *engine) runStep(machines []Machine) {
	n := e.n
	status := make([]StepStatus, n)
	ins := make([]StepIn, n)
	active := make([]*Ctx, 0, n)
	for _, c := range e.ctxs {
		ins[c.id] = StepIn{Start: true}
		active = append(active, c)
	}
	done := 0
	var yielded []*Ctx
	for {
		if e.timed {
			t0 := time.Now()
			e.stepMachines(machines, status, ins, active)
			e.stepNs += int64(time.Since(t0))
		} else {
			e.stepMachines(machines, status, ins, active)
		}
		if e.abort != nil {
			return
		}
		yielded = yielded[:0]
		for _, c := range active {
			e.stepped++
			switch status[c.id] {
			case StepYield:
				yielded = append(yielded, c)
				if c.hasSends() {
					e.dirty = append(e.dirty, c)
				}
			case StepPark:
				c.parked = true
				e.traceBlocked(TracePark, c.id)
				e.parked++
				if c.hasSends() {
					e.dirty = append(e.dirty, c)
				}
			case StepDone:
				c.done = true
				e.traceBlocked(TraceRetire, c.id)
				// Retire-flush: a retiring vertex's sends are committed by
				// the retirement itself (see engine.finish).
				if !e.quiesced && c.hasSends() {
					e.dirty = append(e.dirty, c)
				} else {
					c.clearSends()
				}
				done++
			}
		}
		if done == n {
			// Everyone retired. Any last words can only be going to done
			// vertices: meter and drop them without charging a round.
			if len(e.dirty) > 0 {
				e.routeLocked()
			}
			return
		}
		if len(yielded) == 0 {
			// No vertex asked for another round. If pending retirement
			// sends cannot wake anybody, route them silently (meter+drop)
			// and quiesce the parked set.
			wakes := len(e.dirty) > 0 && e.flushWakesLocked()
			if !wakes {
				if len(e.dirty) > 0 {
					e.routeLocked()
					if e.abort != nil {
						return
					}
				}
				e.quiesced = true
				for _, c := range e.ctxs {
					if !c.parked {
						continue
					}
					c.parked = false
					e.stepEpilogue(machines[c.id], c)
					if e.abort != nil {
						return
					}
				}
				e.parked = 0
				return
			}
		}
		e.stats.Rounds++
		if e.stats.Rounds > e.maxRounds {
			e.abort = e.roundLimitError()
			return
		}
		if e.canceled() {
			e.abort = e.cancelError()
			return
		}
		e.routeLocked()
		if e.abort != nil {
			return
		}
		e.parked -= len(e.woken)
		e.recordRoundLocked()
		active = active[:0]
		for _, c := range yielded {
			ins[c.id] = StepIn{Recs: c.takeRecs(), Msgs: c.takeMessages()}
			active = append(active, c)
		}
		for _, c := range e.woken {
			c.parked = false
			ins[c.id] = StepIn{Recs: c.takeRecs(), Msgs: c.takeMessages()}
			active = append(active, c)
		}
		e.woken = e.woken[:0]
	}
}

// stepParallelThreshold is the active-set size below which machines are
// stepped serially: sharding overhead dominates under it. Mirrors the
// routing shard threshold in routeLocked.
const stepParallelThreshold = 64

// stepMachines steps every active machine, serially for small active
// sets and sharded across workers for large ones. Each shard writes
// only its own vertices' status slots and Ctx arenas, so no locking is
// needed; the first panic (by vertex id order) becomes e.abort.
func (e *engine) stepMachines(machines []Machine, status []StepStatus, ins []StepIn, active []*Ctx) {
	if e.stepPar <= 1 || len(active) < stepParallelThreshold {
		for _, c := range active {
			st, err := stepSafe(machines[c.id], c, ins[c.id])
			status[c.id] = st
			if err != nil {
				e.abort = err
				return
			}
		}
		return
	}
	workers := e.stepPar
	if workers > len(active) {
		workers = len(active)
	}
	errs := make([]error, len(active))
	var wg sync.WaitGroup
	chunk := (len(active) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(active) {
			break
		}
		hi := lo + chunk
		if hi > len(active) {
			hi = len(active)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := active[i]
				st, err := stepSafe(machines[c.id], c, ins[c.id])
				status[c.id] = st
				errs[i] = err
			}
		}(lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			e.abort = err
			return
		}
	}
}

// stepSafe runs one machine step, converting a panic into the abort
// error the blocking engines would produce for the same vertex.
func stepSafe(m Machine, c *Ctx, in StepIn) (st StepStatus, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = StepDone, vertexPanicError(c.id, r)
		}
	}()
	return m.Step(c, in), nil
}

// stepEpilogue drains a parked machine after quiescence: it is stepped
// with Quiesced until it retires, mirroring the post-quiescence
// behavior of the blocking engines (Recv returns false, NextRound
// returns immediately, all sends are discarded).
func (e *engine) stepEpilogue(m Machine, c *Ctx) {
	in := StepIn{Quiesced: true}
	for {
		st, err := stepSafe(m, c, in)
		c.clearSends()
		if err != nil {
			if e.abort == nil {
				e.abort = err
			}
			return
		}
		switch st {
		case StepDone:
			c.done = true
			e.traceBlocked(TraceRetire, c.id)
			return
		case StepYield:
			in = StepIn{}
		case StepPark:
			in = StepIn{Quiesced: true}
		}
	}
}

// stepWorkers resolves the step-shard width for a config: Workers if
// set, else GOMAXPROCS.
func stepWorkers(cfg Config) int {
	if cfg.Workers > 0 {
		return cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}
