package dist

import (
	"fmt"
	"reflect"
	"sort"
)

// AuditPayloadFields checks a payload struct's bit accounting against its
// declared fields. bits is the payload's metered size (its Bits method);
// accounted maps every struct field name to the minimum number of bits the
// accounting charges for it — per element for slice and array fields, once
// for scalars. An explicit 0 waives a field as non-transmitted metadata
// (e.g. the id-universe size carried only so Bits can size words).
//
// The audit fails when:
//   - the struct declares a field with no accounting entry — the
//     conformance tests call this for every payload type, so adding a
//     payload field without updating its Bits method (and the audit
//     table) fails CI;
//   - accounted names a field the struct no longer declares (stale table);
//   - bits is below the accounted minimum (undercounting).
//
// This is the guard the PODC metering arguments lean on: rounds-vs-bits
// tradeoffs are only meaningful when every transmitted field is billed.
func AuditPayloadFields(p any, bits int, accounted map[string]int) error {
	v := reflect.ValueOf(p)
	t := v.Type()
	if t.Kind() != reflect.Struct {
		return fmt.Errorf("payload %T is not a struct", p)
	}
	seen := make(map[string]bool, t.NumField())
	min := 0
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		per, ok := accounted[f.Name]
		if !ok {
			return fmt.Errorf("%T: field %q has no accounting entry — update Bits() and the audit table together", p, f.Name)
		}
		seen[f.Name] = true
		switch f.Type.Kind() {
		case reflect.Slice, reflect.Array:
			min += per * v.Field(i).Len()
		default:
			min += per
		}
	}
	// Sorted so that which stale entry gets reported is deterministic
	// when the table has several.
	names := make([]string, 0, len(accounted))
	for name := range accounted {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !seen[name] {
			return fmt.Errorf("%T: audit table names unknown field %q", p, name)
		}
	}
	if bits < min {
		return fmt.Errorf("%T: Bits() = %d under-accounts the field minimum %d", p, bits, min)
	}
	return nil
}
