package dist

// The event-driven scheduler (ModeEvent). Vertices are parked goroutines
// resumed by explicit hand-off: each vertex owns a wake channel, and a
// single scheduler goroutine owns the round loop. A vertex runs until it
// blocks — yielding (NextRound: "wake me next round"), parking (Recv:
// "wake me when a message arrives"), or retiring — and reports the
// transition to the scheduler. When every woken vertex has reported, the
// scheduler completes the round with the same metering/delivery code as
// barrier mode and wakes exactly the next round's active set: the
// yielders plus the parked vertices that just received messages. A quiet
// vertex is never touched, so a round costs O(#active + #senders) instead
// of the barrier engine's O(n) broadcast.
//
// The hand-off discipline is also the synchronization story: whenever the
// scheduler mutates shared state (routing, the quiesced flag), every
// live vertex is blocked on its wake channel, and the report/wake channel
// pair carries the happens-before edges — no locks on the round path.

// wakeKind tells a blocked vertex why it was woken.
type wakeKind uint8

const (
	// wakeStep resumes the vertex for the new round; its inbox holds the
	// round's deliveries.
	wakeStep wakeKind = iota
	// wakeQuiesce releases a parked vertex because the network went
	// permanently silent; Recv reports ok=false.
	wakeQuiesce
	// wakeAbort unwinds the vertex's procedure: the run is over with an
	// error.
	wakeAbort
)

// reportKind is a vertex's blocked-state report to the scheduler.
type reportKind uint8

const (
	// reportYield: the vertex called NextRound — an explicit self-wakeup;
	// it is active next round no matter what.
	reportYield reportKind = iota
	// reportPark: the vertex called Recv; wake it only on delivery (or
	// quiescence).
	reportPark
	// reportDone: the vertex's procedure returned (normally or unwound).
	reportDone
)

// vreport is one vertex->scheduler hand-off message.
type vreport struct {
	c    *Ctx
	kind reportKind
}

// runEvent executes the whole run under the event-driven scheduler and
// leaves the outcome in e.stats / e.abort, exactly like the barrier path.
func (e *engine) runEvent(proc func(*Ctx)) {
	e.reports = make(chan vreport, 64)
	for _, c := range e.ctxs {
		c.wake = make(chan wakeKind, 1)
	}
	e.wg.Add(e.n)
	for _, c := range e.ctxs {
		go e.runVertexEvent(c, proc)
	}
	e.schedule()
	e.wg.Wait()
}

// runVertexEvent is the per-vertex goroutine wrapper of event mode: run
// proc, convert protocol panics into the Run error, and always hand the
// final done report to the scheduler.
func (e *engine) runVertexEvent(c *Ctx, proc func(*Ctx)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				e.mu.Lock()
				if e.abort == nil {
					e.abort = vertexPanicError(c.id, r)
				}
				e.mu.Unlock()
			}
		}
		c.release()
		e.reports <- vreport{c: c, kind: reportDone}
		e.wg.Done()
	}()
	c.acquire()
	proc(c)
}

// eventYield is the blocking body of a NextRound step in event mode.
func (e *engine) eventYield(c *Ctx) {
	if e.quiesced {
		// Post-quiescence epilogue (a proc finalizing after Recv returned
		// ok=false): rounds no longer advance, sends go nowhere.
		c.clearSends()
		return
	}
	c.release()
	e.reports <- vreport{c: c, kind: reportYield}
	if <-c.wake == wakeAbort {
		panic(abortSignal{})
	}
	c.acquire()
}

// eventPark is the blocking body of a Recv step in event mode: true on
// delivery, false on quiescence.
func (e *engine) eventPark(c *Ctx) bool {
	if e.quiesced {
		c.clearSends()
		return false
	}
	c.release()
	e.reports <- vreport{c: c, kind: reportPark}
	switch <-c.wake {
	case wakeAbort:
		panic(abortSignal{})
	case wakeQuiesce:
		c.acquire()
		return false
	}
	c.acquire()
	return true
}

// schedule is the event-driven round loop. Invariant at the top of each
// iteration after the report-draining phase: every live vertex is blocked
// (yielded or parked) and outstanding == 0, so the scheduler has exclusive
// access to all engine state.
func (e *engine) schedule() {
	outstanding := e.n // woken (or initially started) vertices yet to report
	done := 0
	var yielded []*Ctx // this round's explicit self-wakeups
	for {
		for outstanding > 0 {
			r := <-e.reports
			outstanding--
			e.stepped++
			switch r.kind {
			case reportYield:
				yielded = append(yielded, r.c)
				if r.c.hasSends() {
					e.dirty = append(e.dirty, r.c)
				}
			case reportPark:
				r.c.parked = true
				e.traceBlocked(TracePark, r.c.id)
				e.parked++
				if r.c.hasSends() {
					e.dirty = append(e.dirty, r.c)
				}
			case reportDone:
				r.c.done = true
				e.traceBlocked(TraceRetire, r.c.id)
				// Retire-flush: a retiring vertex's sends are committed by
				// the retirement itself (see engine.finish) — unless the run
				// is over, in which case they are discarded below or by the
				// abort path's dirty reset.
				if !e.quiesced && r.c.hasSends() {
					e.dirty = append(e.dirty, r.c)
				} else {
					r.c.clearSends()
				}
				done++
			}
		}
		if done == e.n {
			// Everyone retired. Any last words can only be going to done
			// vertices: meter and drop them without charging a round.
			e.mu.Lock()
			aborted := e.abort != nil
			e.mu.Unlock()
			if !aborted && !e.quiesced && len(e.dirty) > 0 {
				e.routeLocked()
			}
			return
		}
		e.mu.Lock()
		aborted := e.abort != nil
		e.mu.Unlock()
		if aborted {
			// Unwind every blocked vertex; they report done as they exit.
			for _, c := range yielded {
				c.wake <- wakeAbort
			}
			outstanding += len(yielded)
			yielded = yielded[:0]
			for _, c := range e.ctxs {
				if c.parked {
					c.parked = false
					c.wake <- wakeAbort
					outstanding++
				}
			}
			e.parked = 0
			e.dirty = e.dirty[:0]
			continue
		}
		if len(yielded) == 0 && !(len(e.dirty) > 0 && e.flushWakesLocked()) {
			// No self-wakeups and no traffic that could reach a live
			// vertex: no round could ever change anything. Route any last
			// words to nowhere (meter + drop, no round charged), then
			// quiesce: release the parked vertices to finalize (Recv
			// reports ok=false).
			if len(e.dirty) > 0 {
				e.routeLocked()
				e.mu.Lock()
				aborted = e.abort != nil // Enforce tripped during metering
				e.mu.Unlock()
				if aborted {
					continue
				}
			}
			e.quiesced = true
			for _, c := range e.ctxs {
				if c.parked {
					c.parked = false
					c.wake <- wakeQuiesce
					outstanding++
				}
			}
			e.parked = 0
			continue
		}
		// Complete the round: meter and deliver, then wake exactly the
		// active set — yielders plus parked vertices that got messages.
		e.stats.Rounds++
		if e.stats.Rounds > e.maxRounds {
			e.mu.Lock()
			if e.abort == nil {
				e.abort = e.roundLimitError()
			}
			e.mu.Unlock()
			continue
		}
		if e.canceled() {
			e.mu.Lock()
			if e.abort == nil {
				e.abort = e.cancelError()
			}
			e.mu.Unlock()
			continue
		}
		e.routeLocked()
		e.mu.Lock()
		aborted = e.abort != nil // Enforce tripped during metering
		e.mu.Unlock()
		if aborted {
			// Receivers already flipped awake by routing must get the
			// abort wake here; the loop's abort path only sees parked
			// vertices. Yielders are handled there next iteration.
			for _, c := range e.woken {
				c.wake <- wakeAbort
			}
			outstanding += len(e.woken)
			e.woken = e.woken[:0]
			continue
		}
		// Receivers unparked by routing leave the parked count before the
		// round's activity is recorded, mirroring barrier mode.
		e.parked -= len(e.woken)
		e.recordRoundLocked()
		for _, c := range yielded {
			c.wake <- wakeStep
		}
		for _, c := range e.woken {
			c.wake <- wakeStep
		}
		outstanding += len(yielded) + len(e.woken)
		yielded = yielded[:0]
		e.woken = e.woken[:0]
	}
}
