package dist

import (
	"fmt"
	"reflect"
	"testing"

	"distspanner/internal/graph"
)

// Tests for the tracing hooks (trace.go): the logical transcript's
// cross-mode determinism — per-vertex event buffers and Phase snapshots
// must be bit-identical under barrier, event, and step scheduling, with
// and without faults — and the nil-tracer contract (zero allocations,
// no timestamps) on the disabled path.

// memTracer is the in-package test recorder: per-vertex append-only
// event buffers plus the phase and timing channels. Tracer calls are
// serialized by the engine (the same discipline as OnRound), so no
// locking is needed.
type memTracer struct {
	events  [][]TraceEvent
	phases  []RoundActivity
	timings []RoundTiming
}

func newMemTracer(n int) *memTracer {
	return &memTracer{events: make([][]TraceEvent, n)}
}

func (m *memTracer) Event(ev TraceEvent)     { m.events[ev.V] = append(m.events[ev.V], ev) }
func (m *memTracer) Phase(act RoundActivity) { m.phases = append(m.phases, act) }
func (m *memTracer) RoundTime(t RoundTiming) { m.timings = append(m.timings, t) }

func TestTraceKindStringRoundTrip(t *testing.T) {
	for _, k := range []TraceKind{TraceSend, TraceDeliver, TraceWake, TracePark, TraceRetire} {
		got, ok := ParseTraceKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseTraceKind(%q) = %v, %v", k.String(), got, ok)
		}
	}
	if _, ok := ParseTraceKind("bogus"); ok {
		t.Error("ParseTraceKind accepted bogus kind")
	}
}

// TestTraceEventSequence pins the exact transcript of a two-vertex
// exchange — the worked example of the round-stamping rules: sends and
// deliveries carry the routed round, routing visits senders in
// ascending id (so v1's delivery from v0 lands before v1's own send is
// routed), NextRound's barrier wait is not a park (no park/wake
// events), and retirements carry the round after the last completed
// one.
func TestTraceEventSequence(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	tr := newMemTracer(2)
	_, err := Run(Config{Graph: g, Seed: 1, Mode: ModeBarrier, Tracer: tr}, func(ctx *Ctx) {
		ctx.Send(1-ctx.ID(), blob{val: ctx.ID(), size: 8})
		msgs := ctx.NextRound()
		if len(msgs) != 1 {
			t.Errorf("vertex %d: got %d messages", ctx.ID(), len(msgs))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]TraceEvent{
		{
			{Kind: TraceSend, Round: 1, V: 0, Peer: 1, Boxed: true, Bits: 8},
			{Kind: TraceDeliver, Round: 1, V: 0, Peer: 1, Boxed: true, Bits: 8},
			{Kind: TraceRetire, Round: 2, V: 0, Peer: -1},
		},
		{
			{Kind: TraceDeliver, Round: 1, V: 1, Peer: 0, Boxed: true, Bits: 8},
			{Kind: TraceSend, Round: 1, V: 1, Peer: 0, Boxed: true, Bits: 8},
			{Kind: TraceRetire, Round: 2, V: 1, Peer: -1},
		},
	}
	if !reflect.DeepEqual(tr.events, want) {
		t.Errorf("transcript mismatch:\ngot:  %+v\nwant: %+v", tr.events, want)
	}
	wantPhases := []RoundActivity{
		{Round: 1, Active: 2, Senders: 2, Delivered: 2, DeliveredBits: 16},
	}
	if !reflect.DeepEqual(tr.phases, wantPhases) {
		t.Errorf("phases mismatch:\ngot:  %+v\nwant: %+v", tr.phases, wantPhases)
	}
	if len(tr.timings) != len(tr.phases) {
		t.Errorf("timings: got %d entries, want %d", len(tr.timings), len(tr.phases))
	}
}

// TestTraceParkWakeSequence pins the park/wake half of the lifecycle:
// a vertex blocking in Recv parks (stamped with the round it blocks
// into), a later delivery wakes it (stamped with the routed round), and
// quiescence retires the still-parked listener.
func TestTraceParkWakeSequence(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1)
	tr := newMemTracer(2)
	_, err := Run(Config{Graph: g, Seed: 1, Mode: ModeBarrier, Tracer: tr}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.NextRound() // idle round 1
			ctx.Send(1, blob{val: 7, size: 8})
			ctx.NextRound()
			return
		}
		for {
			if _, ok := ctx.Recv(); !ok {
				return // released by quiescence
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]TraceEvent{
		{
			{Kind: TraceSend, Round: 2, V: 0, Peer: 1, Boxed: true, Bits: 8},
			{Kind: TraceRetire, Round: 3, V: 0, Peer: -1},
		},
		{
			{Kind: TracePark, Round: 1, V: 1, Peer: -1},
			{Kind: TraceDeliver, Round: 2, V: 1, Peer: 0, Boxed: true, Bits: 8},
			{Kind: TraceWake, Round: 2, V: 1, Peer: 0},
			{Kind: TracePark, Round: 3, V: 1, Peer: -1},
			{Kind: TraceRetire, Round: 3, V: 1, Peer: -1},
		},
	}
	if !reflect.DeepEqual(tr.events, want) {
		t.Errorf("transcript mismatch:\ngot:  %+v\nwant: %+v", tr.events, want)
	}
}

// TestTraceCrossModeChaosEquivalence reruns the fault-injecting chaos
// protocol (random parks, broadcasts, early retirements) with a tracer
// installed and asserts the full logical transcript — every per-vertex
// event buffer and every Phase snapshot — is bit-identical across the
// barrier engine, the worker-pool barrier, and the event scheduler.
func TestTraceCrossModeChaosEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"clique16":   clique(16),
		"path33":     path(33),
		"sparse2x40": func() *graph.Graph { g := graph.New(80); g.AddEdge(0, 79); return g }(),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				var ref *memTracer
				for i, cfg := range []Config{
					{Graph: g, Seed: seed, Mode: ModeBarrier},
					{Graph: g, Seed: seed, Mode: ModeBarrier, Workers: 3},
					{Graph: g, Seed: seed, Mode: ModeEvent},
					{Graph: g, Seed: seed, Mode: ModeEvent, Workers: 3},
				} {
					tr := newMemTracer(g.N())
					cfg.Tracer = tr
					out := make([]int64, g.N())
					if _, err := Run(cfg, recChaosProc(12, out)); err != nil {
						t.Fatalf("config %d: %v", i, err)
					}
					if i == 0 {
						ref = tr
						continue
					}
					if !reflect.DeepEqual(ref.events, tr.events) {
						t.Fatalf("config %d (mode=%v workers=%d): event transcript diverged", i, cfg.Mode, cfg.Workers)
					}
					if !reflect.DeepEqual(ref.phases, tr.phases) {
						t.Fatalf("config %d (mode=%v workers=%d): phases diverged:\nref: %+v\ngot: %+v",
							i, cfg.Mode, cfg.Workers, ref.phases, tr.phases)
					}
				}
			})
		}
	}
}

// TestTraceMachineCrossModeEquivalence is the three-engine version on
// the state-machine surface: the chaos machine's transcript must be
// identical under barrier, event, and goroutine-free step scheduling.
func TestTraceMachineCrossModeEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"clique16": clique(16),
		"ring64":   benchGraph(64),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				var ref *memTracer
				for i, cfg := range machineModeConfigs(g, seed) {
					tr := newMemTracer(g.N())
					cfg.Tracer = tr
					out := make([]int64, g.N())
					if _, err := RunMachines(cfg, func(c *Ctx) Machine {
						return &chaosMachine{out: out, rounds: 12}
					}); err != nil {
						t.Fatalf("config %d: %v", i, err)
					}
					if i == 0 {
						ref = tr
						continue
					}
					if !reflect.DeepEqual(ref.events, tr.events) {
						t.Fatalf("config %d (mode=%v workers=%d): event transcript diverged", i, cfg.Mode, cfg.Workers)
					}
					if !reflect.DeepEqual(ref.phases, tr.phases) {
						t.Fatalf("config %d (mode=%v workers=%d): phases diverged", i, cfg.Mode, cfg.Workers)
					}
				}
			})
		}
	}
}

// TestTraceDeliveredMatchesStats cross-checks the Phase channel against
// the engine's own metering on a fully-busy run, where every sent
// payload is also delivered: summed Delivered must equal
// Stats.Messages, summed DeliveredBits must equal Stats.TotalBits.
func TestTraceDeliveredMatchesStats(t *testing.T) {
	g := clique(8)
	tr := newMemTracer(g.N())
	stats, err := Run(Config{Graph: g, Seed: 3, Tracer: tr}, func(ctx *Ctx) {
		for r := 0; r < 4; r++ {
			ctx.Broadcast(blob{val: r, size: 16})
			ctx.NextRound()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var deliv, bits int64
	for _, act := range tr.phases {
		deliv += int64(act.Delivered)
		bits += act.DeliveredBits
	}
	if deliv != stats.Messages {
		t.Errorf("summed Delivered = %d, Stats.Messages = %d", deliv, stats.Messages)
	}
	if bits != stats.TotalBits {
		t.Errorf("summed DeliveredBits = %d, Stats.TotalBits = %d", bits, stats.TotalBits)
	}
}

// TestNilTracerZeroAllocs pins the disabled path's cost: with no tracer
// installed, the per-event emission helpers must not allocate, and the
// engine must not arm the timing clock or delivery metering.
func TestNilTracerZeroAllocs(t *testing.T) {
	g := clique(4)
	e, err := newEngine(Config{Graph: g, Seed: 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if e.timed {
		t.Error("nil tracer armed the timing clock")
	}
	if e.meterDlv {
		t.Error("nil tracer (and nil OnRound) armed delivery metering")
	}
	if n := testing.AllocsPerRun(100, func() {
		e.traceBlocked(TracePark, 2)
		e.traceBlocked(TraceRetire, 3)
	}); n != 0 {
		t.Errorf("traceBlocked with nil tracer allocated %v times per run", n)
	}
}
