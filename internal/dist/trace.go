package dist

import "time"

// Execution tracing: the engine can narrate a run to a Tracer as it
// happens. The narration has two strictly separated channels:
//
//   - The logical transcript — Event and Phase calls — is a pure function
//     of (Config.Graph, Config.Seed, protocol), like every other output
//     of the engine. For a successful run, all three execution modes
//     produce the same per-vertex event sequences and the same phase
//     sequence (cross-vertex interleaving may differ; within one vertex
//     the order is fixed). internal/trace hashes this channel into the
//     canonical run digest.
//   - The timing channel — RoundTime calls — carries wall-clock
//     measurements. It is nondeterministic by nature and never
//     contaminates the logical transcript: no logical event carries a
//     timestamp, and no timing value feeds back into scheduling.
//
// All Tracer methods are invoked from the engine's existing
// serialization points (under the engine lock in barrier mode, on the
// scheduler goroutine in event and step mode), so implementations need
// no internal locking for a single run — but a Tracer must not be shared
// by concurrent runs. Tracer calls must not call back into the engine or
// block, exactly like Config.OnRound.
//
// A nil Config.Tracer costs nothing: every emission site is behind a nil
// check, timestamps are only taken when a tracer is installed, and the
// disabled path performs zero allocations (asserted by
// TestNilTracerZeroAllocs and the Traced benchmark pairs).

// TraceKind classifies one logical transcript event.
type TraceKind uint8

const (
	// TraceSend: vertex V committed a payload to Peer. Emitted when the
	// round's sends are routed, whether or not the receiver is still
	// alive (a retired receiver yields a Send with no matching Deliver).
	TraceSend TraceKind = iota + 1
	// TraceDeliver: vertex V's inbox received a payload from Peer,
	// consumable at the start of round Round+1.
	TraceDeliver
	// TraceWake: a delivery from Peer unparked vertex V out of Recv.
	TraceWake
	// TracePark: vertex V parked in Recv, committing its queued sends.
	TracePark
	// TraceRetire: vertex V's procedure (or machine) terminated.
	TraceRetire
)

// String returns the kind's JSONL spelling.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceDeliver:
		return "deliver"
	case TraceWake:
		return "wake"
	case TracePark:
		return "park"
	case TraceRetire:
		return "retire"
	}
	return "invalid"
}

// ParseTraceKind parses the JSONL spelling of a TraceKind.
func ParseTraceKind(s string) (TraceKind, bool) {
	switch s {
	case "send":
		return TraceSend, true
	case "deliver":
		return TraceDeliver, true
	case "wake":
		return TraceWake, true
	case "park":
		return TracePark, true
	case "retire":
		return TraceRetire, true
	}
	return 0, false
}

// TraceEvent is one logical transcript event, attributed to exactly one
// vertex (V). Round stamps follow the accounting model: Send, Deliver,
// and Wake carry the number of the completed round whose routing emitted
// them (the payload is consumable in round Round+1); Park and Retire
// carry the round the vertex was executing when it blocked or returned,
// i.e. one past the last completed round at that moment. The stamps are
// identical across execution modes — that is part of the digest contract.
type TraceEvent struct {
	// Kind classifies the event.
	Kind TraceKind
	// Round is the event's round stamp (see above).
	Round int
	// V is the vertex whose transcript the event belongs to.
	V int
	// Peer is the counterparty: the receiver for Send, the sender for
	// Deliver and Wake, -1 for Park and Retire.
	Peer int
	// Tag is the record type tag for record-path payloads (see SendRec);
	// zero for boxed payloads and for Park/Retire/Wake.
	Tag uint8
	// Boxed marks boxed Payload messages (Send/Deliver via Ctx.Send),
	// distinguishing them from flat-buffer records at Tag zero.
	Boxed bool
	// Bits is the metered payload size for Send and Deliver; zero
	// otherwise.
	Bits int
}

// RoundTiming is one completed round's wall-clock measurement — the
// timing channel. Unlike every other engine output it is NOT
// deterministic: values change run to run and machine to machine, and
// they never appear in the logical transcript or its digest.
type RoundTiming struct {
	// Round is the 1-based completed round the measurement covers.
	Round int
	// Wall is the boundary-to-boundary wall time of the round: from the
	// end of the previous round's bookkeeping (hooks excluded) to the
	// moment this round's deliveries were out.
	Wall time.Duration
	// Step is the vertex-execution share. In ModeStep it is measured
	// exactly (the machine-stepping scan); in the blocking modes vertex
	// execution and scheduler hand-off are indistinguishable, so Step is
	// Wall - Route there and Sync is zero by construction.
	Step time.Duration
	// Route is the metering + delivery share (the routing pass).
	Route time.Duration
	// Sync is the scheduler-bookkeeping remainder: Wall - Step - Route,
	// clamped at zero. Only ModeStep resolves it separately.
	Sync time.Duration
}

// Tracer receives a run's execution narration. See the package section
// above for the logical-vs-timing separation, the serialization
// guarantees, and the determinism contract; internal/trace provides the
// standard implementations (Recorder, TimingRecorder).
type Tracer interface {
	// Event receives one logical transcript event. Events for one vertex
	// arrive in a deterministic order; events for different vertices may
	// interleave differently across modes and runs.
	Event(ev TraceEvent)
	// Phase receives the completed round's activity snapshot — the same
	// value Config.OnRound gets, part of the logical transcript.
	Phase(act RoundActivity)
	// RoundTime receives the completed round's wall-clock measurement —
	// the timing channel, excluded from the logical transcript.
	RoundTime(t RoundTiming)
}

// traceBlocked emits a Park or Retire event for vertex v, stamped one
// past the last completed round. The nil check lives here so every
// blocking/retiring site pays one predictable branch and zero
// allocations when tracing is disabled.
func (e *engine) traceBlocked(kind TraceKind, v int) {
	if e.tracer == nil {
		return
	}
	e.tracer.Event(TraceEvent{Kind: kind, Round: e.stats.Rounds + 1, V: v, Peer: -1})
}

// traceRoundTime computes and emits the completed round's RoundTiming
// and arms the next round's boundary timestamp. Called from
// recordRoundLocked only when a tracer is installed (e.timed).
func (e *engine) traceRoundTime(round int) {
	wall := time.Since(e.lastTick)
	route := time.Duration(e.routeNs)
	var step, syn time.Duration
	if e.mode == ModeStep {
		step = time.Duration(e.stepNs)
		syn = wall - step - route
		if syn < 0 {
			syn = 0
		}
	} else {
		step = wall - route
		if step < 0 {
			step = 0
		}
	}
	e.tracer.RoundTime(RoundTiming{Round: round, Wall: wall, Step: step, Route: route, Sync: syn})
	e.routeNs, e.stepNs = 0, 0
}
