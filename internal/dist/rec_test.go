package dist

import (
	"fmt"
	"reflect"
	"testing"

	"distspanner/internal/graph"
)

// Tests for the flat-buffer typed inbox path (rec.go): delivery order,
// metering, arena reuse, quiescence, mixed-family runs, and randomized
// cross-mode equivalence over tail-heavy and fault (early-retirement)
// workloads. These all run under the CI -race job.

func TestRecDeliveryAndOrdering(t *testing.T) {
	// Each vertex broadcasts one record naming itself; everyone must
	// receive exactly its neighbors' records sorted by sender, with the
	// scalar and tail fields intact, and the next round must be empty.
	g := path(5)
	got := make([][]int, g.N())
	stats, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		ctx.BroadcastRec(Rec{Tag: 3, Flag: 1, A: int64(ctx.ID()), F0: 0.5, Ints: []int{ctx.ID(), 99}}, 10)
		var from []int
		for _, r := range ctx.NextRoundRecs() {
			if r.Tag != 3 || r.Flag != 1 || r.A != int64(r.From) || r.F0 != 0.5 {
				t.Errorf("scalar fields corrupted: %+v", r)
			}
			if len(r.Ints) != 2 || r.Ints[0] != r.From || r.Ints[1] != 99 {
				t.Errorf("tail corrupted: %+v", r)
			}
			from = append(from, r.From)
		}
		got[ctx.ID()] = from
		if extra := ctx.NextRoundRecs(); len(extra) != 0 {
			t.Errorf("vertex %d received %d stale records", ctx.ID(), len(extra))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{1}, {0, 2}, {1, 3}, {2, 4}, {3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("inboxes = %v, want %v", got, want)
	}
	if stats.Messages != 8 || stats.TotalBits != 80 || stats.MaxMessageBits != 10 {
		t.Fatalf("metering wrong: %+v", stats)
	}
}

func TestRecMeteringMatchesBoxed(t *testing.T) {
	// A record-path run and a boxed run of the same traffic shape must
	// meter identically: bits are sender-declared either way.
	g := clique(6)
	boxed := func(ctx *Ctx) {
		for r := 0; r < 4; r++ {
			ctx.Broadcast(blob{val: r, size: 17})
			ctx.NextRound()
		}
	}
	recs := func(ctx *Ctx) {
		for r := 0; r < 4; r++ {
			ctx.BroadcastRec(Rec{Tag: 1, A: int64(r)}, 17)
			ctx.NextRoundRecs()
		}
	}
	sb, err := Run(Config{Graph: g, Seed: 1}, boxed)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(Config{Graph: g, Seed: 1}, recs)
	if err != nil {
		t.Fatal(err)
	}
	if *sb != *sr {
		t.Fatalf("record metering diverged from boxed:\nboxed: %+v\nrecs:  %+v", sb, sr)
	}
}

func TestRecBandwidthEnforced(t *testing.T) {
	// Record bits count against the per-edge budget exactly like payload
	// bits, including accumulation across records on one edge.
	g := path(2)
	_, err := Run(Config{Graph: g, Seed: 1, Bandwidth: 64, Enforce: true}, func(ctx *Ctx) {
		if ctx.ID() == 0 {
			ctx.SendRec(1, Rec{Tag: 1}, 40)
			ctx.SendRec(1, Rec{Tag: 2}, 40)
		}
		ctx.NextRoundRecs()
	})
	if err == nil {
		t.Fatal("accumulated record traffic not enforced")
	}
}

func TestRecCutBits(t *testing.T) {
	g := path(4)
	cut := []bool{false, false, true, true}
	stats, err := Run(Config{Graph: g, Seed: 1, CutSide: cut}, func(ctx *Ctx) {
		ctx.BroadcastRec(Rec{Tag: 1}, 7)
		ctx.NextRoundRecs()
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CutBits != 14 { // 1->2 and 2->1
		t.Fatalf("CutBits = %d, want 14", stats.CutBits)
	}
}

func TestRecArenaReusedAcrossRounds(t *testing.T) {
	// The whole point of the arena: after warm-up, steady-state rounds
	// append into retained buffers. Assert the returned views stay
	// correct round over round while the backing arrays are reused
	// (record contents must never bleed between rounds).
	g := clique(4)
	_, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		for r := 0; r < 8; r++ {
			ctx.BroadcastRec(Rec{Tag: uint8(r + 1), A: int64(r), Ints: []int{r, r, r}}, 5)
			for _, in := range ctx.NextRoundRecs() {
				if in.Tag != uint8(r+1) || in.A != int64(r) {
					t.Errorf("round %d: stale header %+v", r, in)
				}
				for _, x := range in.Ints {
					if x != r {
						t.Errorf("round %d: stale tail %v", r, in.Ints)
					}
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecRecvParksAndQuiesces(t *testing.T) {
	// Vertex 0 drives three waves, then everyone quiesces: RecvRecs must
	// deliver each wave and then report ok=false everywhere.
	for _, mode := range []Mode{ModeBarrier, ModeEvent} {
		g := path(8)
		waves := make([]int, g.N())
		stats, err := Run(Config{Graph: g, Seed: 1, Mode: mode}, func(ctx *Ctx) {
			if ctx.ID() == 0 {
				for r := 0; r < 3; r++ {
					ctx.SendRec(1, Rec{Tag: 1, A: int64(r)}, 8)
					ctx.NextRoundRecs()
				}
				return
			}
			for {
				msgs, ok := ctx.RecvRecs()
				if !ok {
					return
				}
				if len(msgs) == 0 {
					t.Errorf("vertex %d woken with an empty record inbox", ctx.ID())
				}
				waves[ctx.ID()] += len(msgs)
				// Relay one hop down the path.
				if next := ctx.ID() + 1; next < ctx.N() {
					ctx.SendRec(next, Rec{Tag: 1, A: msgs[0].A}, 8)
				}
			}
		})
		if err != nil {
			t.Fatalf("mode=%v: %v", mode, err)
		}
		for v := 1; v < g.N(); v++ {
			if waves[v] != 3 {
				t.Fatalf("mode=%v: vertex %d saw %d waves, want 3", mode, v, waves[v])
			}
		}
		if stats.Messages != 3*7 {
			t.Fatalf("mode=%v: Messages = %d, want 21", mode, stats.Messages)
		}
	}
}

func TestRecMixedFamiliesInOneRun(t *testing.T) {
	// The engine delivers both families in one round: boxed payloads via
	// NextRound, records via NextRoundRecs, either one waking a parked
	// receiver. Vertex 1 receives a boxed message and a record in the
	// same round and must see both through the matching accessors.
	g := path(3)
	_, err := Run(Config{Graph: g, Seed: 1}, func(ctx *Ctx) {
		switch ctx.ID() {
		case 0:
			ctx.Send(1, blob{val: 5, size: 8})
			ctx.NextRound()
		case 2:
			ctx.SendRec(1, Rec{Tag: 9, A: 6}, 8)
			ctx.NextRound()
		case 1:
			msgs, ok := ctx.Recv()
			if !ok {
				t.Error("vertex 1 quiesced before delivery")
				return
			}
			recs := ctx.takeRecs() // drain the record half of the mixed round
			if len(msgs) != 1 || msgs[0].Payload.(blob).val != 5 {
				t.Errorf("boxed half wrong: %+v", msgs)
			}
			if len(recs) != 1 || recs[0].Tag != 9 || recs[0].A != 6 {
				t.Errorf("record half wrong: %+v", recs)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// recChaosProc is a randomized record protocol mixing yields, parks,
// broadcasts with shared tails, targeted sends, and early retirement
// (faults): vertices whose RNG rolls a fault retire mid-run while peers
// keep sending to them. Every delivered record folds into a per-vertex
// hash, so any divergence in content, order, or lifecycle shows up.
func recChaosProc(rounds int, out []int64) func(*Ctx) {
	return func(ctx *Ctx) {
		h := int64(ctx.ID())
		defer func() { out[ctx.ID()] = h }()
		for r := 0; r < rounds; r++ {
			if ctx.Rand().Intn(16) == 0 {
				h = h*31 + 13 // fault: retire early
				return
			}
			roll := ctx.Rand().Intn(8)
			switch {
			case roll == 0 && ctx.Degree() > 0:
				// Broadcast with a shared tail.
				tail := []int{r, ctx.ID()}
				ctx.BroadcastRec(Rec{Tag: 2, A: int64(r), Ints: tail}, 32)
			case roll < 3 && ctx.Degree() > 0:
				to := ctx.Neighbors()[ctx.Rand().Intn(ctx.Degree())]
				ctx.SendRec(to, Rec{Tag: 1, B: int64(to), F1: float64(r)}, 16)
			}
			var msgs []InRec
			if roll >= 6 {
				var ok bool
				msgs, ok = ctx.RecvRecs()
				if !ok {
					h = h*31 + 7
					return
				}
			} else {
				msgs = ctx.NextRoundRecs()
			}
			for i := range msgs {
				m := &msgs[i]
				h = h*31 + int64(m.From)<<2 + int64(m.Tag) + m.A + m.B
				for _, x := range m.Ints {
					h = h*33 + int64(x)
				}
			}
		}
	}
}

// TestRecCrossModeChaosEquivalence is the record-path analogue of
// TestCrossModeChaosEquivalence: outputs and the full Stats must be
// bit-identical across the barrier engine, the worker-pool barrier, and
// the event scheduler, on topologies covering tail-heavy (sparse, mostly
// parked) and fault-prone (random early retirement) executions.
func TestRecCrossModeChaosEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"clique16":   clique(16),
		"path33":     path(33),
		"ring64":     benchGraph(64),
		"sparse2x40": func() *graph.Graph { g := graph.New(80); g.AddEdge(0, 79); return g }(),
	}
	for name, g := range graphs {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				var ref []int64
				var refStats Stats
				for i, cfg := range []Config{
					{Graph: g, Seed: seed, Mode: ModeBarrier},
					{Graph: g, Seed: seed, Mode: ModeBarrier, Workers: 3},
					{Graph: g, Seed: seed, Mode: ModeEvent},
					{Graph: g, Seed: seed, Mode: ModeEvent, Workers: 3},
				} {
					out := make([]int64, g.N())
					stats, err := Run(cfg, recChaosProc(12, out))
					if err != nil {
						t.Fatalf("config %d: %v", i, err)
					}
					if i == 0 {
						ref, refStats = out, *stats
						continue
					}
					if !reflect.DeepEqual(ref, out) {
						t.Fatalf("config %d (mode=%v workers=%d) diverged from barrier reference", i, cfg.Mode, cfg.Workers)
					}
					if refStats != *stats {
						t.Fatalf("config %d stats diverged:\nref: %+v\ngot: %+v", i, refStats, *stats)
					}
				}
			})
		}
	}
}

// TestRecTailHeavyCrossMode drives a tail-heavy record workload — one
// active core, a long parked fringe woken in waves — and asserts output
// and Stats equality across modes, the regime the spanner tails live in.
func TestRecTailHeavyCrossMode(t *testing.T) {
	g := benchGraph(96)
	proc := func(ctx *Ctx) {
		if ctx.ID() < 4 {
			for r := 0; r < 24; r++ {
				to := ctx.Neighbors()[r%ctx.Degree()]
				ctx.SendRec(to, Rec{Tag: 1, A: int64(r), Ints: []int{r}}, 12)
				ctx.NextRoundRecs()
			}
			return
		}
		for {
			msgs, ok := ctx.RecvRecs()
			if !ok {
				return
			}
			// Occasionally ripple one record outward.
			if msgs[0].A%5 == 0 {
				ctx.SendRec(ctx.Neighbors()[0], Rec{Tag: 1, A: msgs[0].A + 100}, 12)
			}
		}
	}
	var ref Stats
	for i, mode := range []Mode{ModeBarrier, ModeEvent} {
		stats, err := Run(Config{Graph: g, Seed: 9, Mode: mode}, proc)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = *stats
			continue
		}
		if ref != *stats {
			t.Fatalf("tail-heavy stats diverged across modes:\nbarrier: %+v\nevent:   %+v", ref, stats)
		}
		if stats.ParkedSteps == 0 {
			t.Fatal("tail-heavy workload recorded no parked steps")
		}
	}
}
