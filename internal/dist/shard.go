package dist

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// The worker half of the sharded runner: ServeShard owns a contiguous
// vertex range and drives it with the ModeStep machinery (stepMachines,
// stepEpilogue, meterSender — the same code paths as runStep), while the
// round/quiescence decisions move to the coordinator (coord.go). The
// loop is runStep with its global checks replaced by protocol frames:
//
//	step actives            → classify, pre-meter, ship batches (FrameRound)
//	receive inbound batches (FrameBatches)
//	dry-scan deliveries     → would anything wake? (FrameWake)
//	receive the decision    (FrameDecision)
//	  Commit r  → apply deliveries (trace-faithful), step again
//	  Quiesce   → meter-and-drop last words, run the parked epilogue
//	  Finish    → meter-and-drop last words
//	  Abort     → discard everything
//
// Delivery order: the apply pass walks source shards in index order and,
// within its own shard's position, its own dirty senders in ascending id
// — with a contiguous partition that is exactly route's global
// ascending-sender order, so per-vertex trace transcripts (and arena
// inbox order) come out identical to the in-process engines.

// shardRecorder buffers the worker's per-vertex trace events for the
// ResultFrame. Phase snapshots are emitted by the coordinator (it owns
// the global activity counts) and the timing channel does not exist on
// the sharded path.
type shardRecorder struct {
	lo     int
	events [][]TraceEvent
}

func (r *shardRecorder) Event(ev TraceEvent) {
	r.events[ev.V-r.lo] = append(r.events[ev.V-r.lo], ev)
}

func (r *shardRecorder) Phase(RoundActivity)   {}
func (r *shardRecorder) RoundTime(RoundTiming) {}

// shardWorker is the state of one ServeShard call.
type shardWorker struct {
	wt      WorkerTransport
	e       *engine
	shard   int
	workers int
	cuts    []int
	lo, hi  int

	machines []Machine
	status   []StepStatus
	ins      []StepIn
	active   []*Ctx
	yielded  []*Ctx
	dirty    []*Ctx
	woken    []*Ctx

	parkedCnt int
	doneCnt   int

	// wakeStamp/iterNo implement the dry wake scan's distinct-target
	// counting without mutating vertex state.
	wakeStamp []int
	iterNo    int

	rec     *shardRecorder
	collect bool
	output  func(v int) []int
}

// ServeShard runs one worker: receive the setup frame, resolve the
// program, and speak the round protocol until the coordinator's final
// decision. It returns nil on a clean run or a coordinator-initiated
// abort, and an error for local failures (which are also reported to the
// coordinator through the protocol so the whole run aborts cleanly).
func ServeShard(wt WorkerTransport, resolve ProgramResolver) error {
	defer wt.Close()
	f, err := wt.Recv()
	if err != nil {
		return err
	}
	if f.Type != FrameSetup || f.Setup == nil {
		return fmt.Errorf("%w: expected setup frame, got type %d", ErrTransport, f.Type)
	}
	su := f.Setup
	w, err := newShardWorker(wt, su, resolve)
	if err != nil {
		return failSetup(wt, err)
	}
	return w.run()
}

// failSetup reports a setup-time failure through the protocol: the
// coordinator is waiting for the first RoundFrame, so the error rides
// one, and the worker drains to the abort decision like any other
// failing shard.
func failSetup(wt WorkerTransport, cause error) error {
	rf := &RoundFrame{Err: cause.Error(), Meter: MeterReport{ViolSender: -1}}
	if err := wt.Send(&Frame{Type: FrameRound, Round: rf}); err != nil {
		return cause
	}
	drainToAbort(wt)
	wt.Send(&Frame{Type: FrameResult, Result: &ResultFrame{Err: cause.Error()}})
	return cause
}

// drainToAbort consumes frames until the coordinator's abort decision
// (or a transport failure), keeping the two sides in lockstep.
func drainToAbort(wt WorkerTransport) {
	for {
		f, err := wt.Recv()
		if err != nil {
			return
		}
		if f.Type == FrameDecision && f.Decision != nil && f.Decision.Kind == DecideAbort {
			return
		}
	}
}

func newShardWorker(wt WorkerTransport, su *SetupFrame, resolve ProgramResolver) (*shardWorker, error) {
	if su.Graph == nil {
		return nil, fmt.Errorf("%w: setup frame without a graph", ErrTransport)
	}
	n := su.Graph.N()
	if su.Workers < 1 || su.Shard < 0 || su.Shard >= su.Workers {
		return nil, fmt.Errorf("%w: shard %d of %d workers", ErrTransport, su.Shard, su.Workers)
	}
	if len(su.Cuts) != su.Workers+1 || su.Cuts[0] != 0 || su.Cuts[su.Workers] != n {
		return nil, fmt.Errorf("%w: malformed partition (cuts %v over %d vertices)", ErrTransport, su.Cuts, n)
	}
	for i := 0; i < su.Workers; i++ {
		if su.Cuts[i] > su.Cuts[i+1] {
			return nil, fmt.Errorf("%w: partition not ascending at shard %d", ErrTransport, i)
		}
	}
	if su.Cut != nil && len(su.Cut) != n {
		return nil, fmt.Errorf("dist: CutSide has %d entries for %d vertices", len(su.Cut), n)
	}
	prog, err := resolve(su.Algo, su.Graph, su.Seed)
	if err != nil {
		return nil, err
	}
	if prog.Factory == nil {
		return nil, fmt.Errorf("dist: program %q resolved without a machine factory", su.Algo)
	}
	g := su.Graph
	if prog.Graph != nil {
		if prog.Graph.N() != n {
			return nil, fmt.Errorf("dist: program graph has %d vertices, setup graph %d", prog.Graph.N(), n)
		}
		g = prog.Graph
	}
	lo, hi := su.Cuts[su.Shard], su.Cuts[su.Shard+1]
	var rec *shardRecorder
	var tr Tracer
	if su.Trace {
		rec = &shardRecorder{lo: lo, events: make([][]TraceEvent, hi-lo)}
		tr = rec
	}
	e := &engine{
		g: g, n: n, mode: ModeStep,
		bandwidth: su.Bandwidth,
		cut:       su.Cut,
		routePar:  1,
		stepPar:   runtime.GOMAXPROCS(0),
		tracer:    tr,
	}
	e.cond = sync.NewCond(&e.mu)
	e.ctxs = make([]*Ctx, n)
	w := &shardWorker{
		wt: wt, e: e, shard: su.Shard, workers: su.Workers, cuts: su.Cuts,
		lo: lo, hi: hi,
		machines:  make([]Machine, n),
		status:    make([]StepStatus, n),
		ins:       make([]StepIn, n),
		active:    make([]*Ctx, 0, hi-lo),
		wakeStamp: make([]int, hi-lo),
		rec:       rec,
		collect:   su.Collect,
		output:    prog.Output,
	}
	for v := lo; v < hi; v++ {
		c := newCtx(e, v, su.Seed)
		e.ctxs[v] = c
		w.machines[v] = prog.Factory(c)
		w.ins[v] = StepIn{Start: true}
		w.active = append(w.active, c)
	}
	return w, nil
}

// run is the worker's protocol loop.
func (w *shardWorker) run() error {
	for {
		w.e.stepMachines(w.machines, w.status, w.ins, w.active)
		if w.e.abort != nil {
			return w.failRound(w.e.abort)
		}
		rf, err := w.classify()
		if err != nil {
			return w.failRound(err)
		}
		if err := w.wt.Send(&Frame{Type: FrameRound, Round: rf}); err != nil {
			return err
		}
		f, err := w.wt.Recv()
		if err != nil {
			return err
		}
		var in []RecBatch
		switch {
		case f.Type == FrameBatches && f.Batches != nil:
			in = f.Batches.In
		case f.Type == FrameDecision && f.Decision != nil && f.Decision.Kind == DecideAbort:
			w.discard()
			return w.sendAbortResult()
		default:
			return fmt.Errorf("%w: expected batches frame, got type %d", ErrTransport, f.Type)
		}
		if len(in) != w.workers {
			return fmt.Errorf("%w: batches frame with %d shards, want %d", ErrTransport, len(in), w.workers)
		}
		if err := w.wt.Send(&Frame{Type: FrameWake, Wake: w.wakeScan(in)}); err != nil {
			return err
		}
		f, err = w.wt.Recv()
		if err != nil {
			return err
		}
		if f.Type != FrameDecision || f.Decision == nil {
			return fmt.Errorf("%w: expected decision frame, got type %d", ErrTransport, f.Type)
		}
		switch d := f.Decision; d.Kind {
		case DecideCommit:
			w.commit(in, d.Round)
		case DecideQuiesce:
			w.applyDrop()
			w.e.quiesced = true
			var epErr error
			for v := w.lo; v < w.hi; v++ {
				c := w.e.ctxs[v]
				if !c.parked {
					continue
				}
				c.parked = false
				w.e.stepEpilogue(w.machines[v], c)
				if w.e.abort != nil {
					epErr = w.e.abort
					break
				}
			}
			w.parkedCnt = 0
			return w.sendResult(epErr)
		case DecideFinish:
			w.applyDrop()
			return w.sendResult(nil)
		case DecideAbort:
			w.discard()
			return w.sendAbortResult()
		default:
			return fmt.Errorf("%w: unknown decision kind %d", ErrTransport, d.Kind)
		}
	}
}

// failRound reports a local failure (machine panic, boxed send) on the
// current iteration's RoundFrame, drains to the abort decision, and
// ships the final ResultFrame carrying the same error.
func (w *shardWorker) failRound(cause error) error {
	rf := &RoundFrame{Err: cause.Error(), Meter: MeterReport{ViolSender: -1}}
	if err := w.wt.Send(&Frame{Type: FrameRound, Round: rf}); err != nil {
		return cause
	}
	drainToAbort(w.wt)
	w.discard()
	w.wt.Send(&Frame{Type: FrameResult, Result: &ResultFrame{Err: cause.Error()}})
	return cause
}

// classify mirrors runStep's post-step scan: sort the dirty senders,
// emit Park/Retire trace events with runStep's stamps, pre-meter every
// sender (meterSender is round-independent, so metering can happen
// before the coordinator assigns the round number), and pack the
// cross-shard batches.
func (w *shardWorker) classify() (*RoundFrame, error) {
	rf := &RoundFrame{Stepped: len(w.active)}
	w.yielded = w.yielded[:0]
	w.dirty = w.dirty[:0]
	for _, c := range w.active {
		switch w.status[c.id] {
		case StepYield:
			w.yielded = append(w.yielded, c)
			if c.hasSends() {
				w.dirty = append(w.dirty, c)
			}
		case StepPark:
			c.parked = true
			w.e.traceBlocked(TracePark, c.id)
			w.parkedCnt++
			if c.hasSends() {
				w.dirty = append(w.dirty, c)
			}
		case StepDone:
			c.done = true
			w.e.traceBlocked(TraceRetire, c.id)
			// Retire-flush: a retiring vertex's sends are committed by the
			// retirement itself (see engine.finish).
			if c.hasSends() {
				w.dirty = append(w.dirty, c)
			} else {
				c.clearSends()
			}
			w.doneCnt++
		}
	}
	sort.Slice(w.dirty, func(i, j int) bool { return w.dirty[i].id < w.dirty[j].id })
	rf.Yielded = len(w.yielded)
	rf.ParkedNow = w.parkedCnt
	rf.DoneTotal = w.doneCnt
	rf.Senders = len(w.dirty)
	rf.Meter = MeterReport{ViolSender: -1}
	rf.Out = make([]RecBatch, w.workers)
	for _, c := range w.dirty {
		if len(c.outbox) > 0 {
			return nil, fmt.Errorf("%w (vertex %d queued a boxed payload; use SendRec)", ErrBoxedSend, c.id)
		}
		rf.Meter.fold(c.id, w.e.meterSender(c))
		for ri := range c.outRecs {
			o := &c.outRecs[ri]
			dst := shardOf(w.cuts, int(o.to))
			if dst == w.shard {
				continue
			}
			var tail []int
			if o.n > 0 {
				tail = c.outInts[o.off : o.off+o.n]
			}
			rf.Out[dst].add(c.id, o, tail)
		}
	}
	return rf, nil
}

// wakeScan is the dry half of flushWakesLocked plus the delivery
// counters: scan every pending delivery into this shard — own-local
// sends still sitting in the sender arenas plus the inbound batches —
// without applying anything.
func (w *shardWorker) wakeScan(in []RecBatch) *WakeFrame {
	w.iterNo++
	wf := &WakeFrame{}
	scan := func(to int, bits int64) {
		c := w.e.ctxs[to]
		if c.done {
			return
		}
		wf.WouldWake = true
		wf.Delivered++
		wf.DeliveredBits += bits
		if c.parked && w.wakeStamp[to-w.lo] != w.iterNo {
			w.wakeStamp[to-w.lo] = w.iterNo
			wf.Woken++
		}
	}
	for _, c := range w.dirty {
		for ri := range c.outRecs {
			o := &c.outRecs[ri]
			if w.owned(int(o.to)) {
				scan(int(o.to), o.bits)
			}
		}
	}
	for s := range in {
		if s == w.shard {
			continue
		}
		for ri := range in[s].Recs {
			scan(int(in[s].Recs[ri].To), in[s].Recs[ri].Bits)
		}
	}
	return wf
}

func (w *shardWorker) owned(v int) bool { return v >= w.lo && v < w.hi }

// commit applies a committed round r: advance the round counter (which
// stamps the trace events), deliver in global ascending-sender order,
// and rebuild the active set exactly like runStep's round epilogue.
func (w *shardWorker) commit(in []RecBatch, r int) {
	w.e.stats.Rounds = r
	w.woken = w.woken[:0]
	w.apply(in, false)
	w.parkedCnt -= len(w.woken)
	w.active = w.active[:0]
	for _, c := range w.yielded {
		w.ins[c.id] = StepIn{Recs: c.takeRecs(), Msgs: c.takeMessages()}
		w.active = append(w.active, c)
	}
	for _, c := range w.woken {
		w.ins[c.id] = StepIn{Recs: c.takeRecs(), Msgs: c.takeMessages()}
		w.active = append(w.active, c)
	}
	w.woken = w.woken[:0]
}

// applyDrop is the meter-and-drop pass of the Finish/Quiesce decisions:
// last words are metered (already, at classify) and traced as sends at
// the final uncharged round, but nothing is delivered — the coordinator
// only decides Finish/Quiesce when every pending target has retired.
func (w *shardWorker) applyDrop() {
	w.woken = w.woken[:0]
	w.apply(nil, true)
}

// apply walks the round's deliveries in global ascending-sender order:
// source shards in index order, with this shard's own dirty senders (in
// ascending id) at its own position. Every own record yields a
// TraceSend; a delivery to a live owned vertex yields TraceDeliver (and
// TraceWake when it unparks), exactly like route's serial loop.
func (w *shardWorker) apply(in []RecBatch, drop bool) {
	for s := 0; s < w.workers; s++ {
		if s == w.shard {
			for _, c := range w.dirty {
				for ri := range c.outRecs {
					o := &c.outRecs[ri]
					if w.e.tracer != nil {
						w.e.tracer.Event(TraceEvent{Kind: TraceSend, Round: w.e.stats.Rounds, V: c.id, Peer: int(o.to), Tag: o.tag, Bits: int(o.bits)})
					}
					if drop || !w.owned(int(o.to)) {
						continue
					}
					var tail []int
					if o.n > 0 {
						tail = c.outInts[o.off : o.off+o.n]
					}
					w.deliver(c.id, int(o.to), Rec{Tag: o.tag, Flag: o.flag, A: o.a, B: o.b, F0: o.f0, F1: o.f1, F2: o.f2}, o.bits, tail)
				}
			}
			continue
		}
		if drop || in == nil {
			continue
		}
		b := &in[s]
		for ri := range b.Recs {
			br := &b.Recs[ri]
			var tail []int
			if br.N > 0 {
				tail = b.Ints[br.Off : br.Off+br.N]
			}
			w.deliver(int(br.From), int(br.To), Rec{Tag: br.Tag, Flag: br.Flag, A: br.A, B: br.B, F0: br.F0, F1: br.F1, F2: br.F2}, br.Bits, tail)
		}
	}
	for _, c := range w.dirty {
		c.clearSends()
	}
	w.dirty = w.dirty[:0]
}

// deliver copies one record into the receiving vertex's arena, flipping
// a parked receiver awake — route's record-delivery body.
func (w *shardWorker) deliver(from, to int, rec Rec, bits int64, tail []int) {
	c := w.e.ctxs[to]
	if c.done {
		return
	}
	if w.e.tracer != nil {
		w.e.tracer.Event(TraceEvent{Kind: TraceDeliver, Round: w.e.stats.Rounds, V: to, Peer: from, Tag: rec.Tag, Bits: int(bits)})
	}
	off := int32(len(c.inInts))
	n := int32(len(tail))
	if n > 0 {
		c.inInts = append(c.inInts, tail...)
	}
	c.inRecs = append(c.inRecs, InRec{From: from, Rec: rec, off: off, n: n})
	if c.parked {
		c.parked = false
		w.woken = append(w.woken, c)
		if w.e.tracer != nil {
			w.e.tracer.Event(TraceEvent{Kind: TraceWake, Round: w.e.stats.Rounds, V: to, Peer: from})
		}
	}
}

// discard drops all pending sends on an abort, like the blocking
// engines' unwind path.
func (w *shardWorker) discard() {
	for _, c := range w.dirty {
		c.clearSends()
	}
	w.dirty = w.dirty[:0]
}

// sendAbortResult acknowledges a coordinator-initiated abort with an
// empty result frame: the run did not finish, so no outputs or events
// ship.
func (w *shardWorker) sendAbortResult() error {
	return w.wt.Send(&Frame{Type: FrameResult, Result: &ResultFrame{}})
}

// sendResult ships the shard's final frame: per-vertex outputs (when
// collecting), the buffered trace events, and any epilogue error.
func (w *shardWorker) sendResult(cause error) error {
	res := &ResultFrame{}
	if cause != nil {
		res.Err = cause.Error()
	} else {
		if w.collect && w.output != nil {
			res.Outputs = make([][]int, w.hi-w.lo)
			for v := w.lo; v < w.hi; v++ {
				res.Outputs[v-w.lo] = w.output(v)
			}
		}
		if w.rec != nil {
			res.Events = w.rec.events
		}
	}
	if err := w.wt.Send(&Frame{Type: FrameResult, Result: res}); err != nil {
		if cause != nil {
			return cause
		}
		return err
	}
	return cause
}
