package dist

// Pairs is a generic payload carrying id pairs from a space of Space ids
// — edges, in practice. The lower-bound harness uses it to run naive
// "learn your neighborhood" protocols whose cut traffic it meters; it is
// also convenient for tests.
type Pairs struct {
	// Space is the id universe size used for sizing (IDBits(Space) bits
	// per id).
	Space int
	// Values are the pairs themselves.
	Values [][2]int
}

// Bits accounts one length word plus two id words per pair.
func (p Pairs) Bits() int { return (1 + 2*len(p.Values)) * IDBits(p.Space) }
