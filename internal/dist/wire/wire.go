// Package wire implements the binary frame codec and the TCP transport
// for the dist package's sharded runner. Frames are length-prefixed
// (u32 little-endian payload length) and the payload is a fixed-width
// little-endian encoding: a version byte, the frame type, then the
// frame body. The Rec flat-buffer layout (dist.BatchRec) is the
// serialization for cross-shard record sends — no reflection, no
// per-field tags, and the decoder rejects truncated or malformed input
// without panicking or over-allocating.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// MaxFrameBytes bounds a single frame's payload; ReadFrame rejects
// longer length prefixes before allocating.
const MaxFrameBytes = 1 << 28

// maxGraphVertices bounds the vertex count a SetupFrame may declare: a
// graph's vertex count is not bounded by its encoded size (vertices
// carry no bytes), so the decoder caps it instead of trusting garbage.
const maxGraphVertices = 1 << 26

// frameVersion is the codec version; a mismatch is a decode error.
const frameVersion = 1

// writer is an append-only little-endian encoder.
type writer struct {
	b []byte
}

func (w *writer) u8(v byte)     { w.b = append(w.b, v) }
func (w *writer) u64(v uint64)  { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) int_(v int)    { w.u64(uint64(int64(v))) }
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) str(s string)  { w.int_(len(s)); w.b = append(w.b, s...) }
func (w *writer) bool_(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) ints(v []int) {
	w.int_(len(v))
	for _, x := range v {
		w.int_(x)
	}
}

// reader is a bounds-checked decoder; the first failure latches err and
// turns every further read into a zero-value no-op.
type reader struct {
	p   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *reader) remaining() int { return len(r.p) - r.off }

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 1 {
		r.fail("truncated frame")
		return 0
	}
	v := r.p[r.off]
	r.off++
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.remaining() < 8 {
		r.fail("truncated frame")
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func (r *reader) int_() int    { return int(int64(r.u64())) }
func (r *reader) i64() int64   { return int64(r.u64()) }
func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *reader) bool_() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail("invalid bool byte")
		return false
	}
}

// count reads a non-negative element count and verifies the remaining
// bytes can plausibly hold it (minSize bytes per element), so garbage
// lengths cannot trigger huge allocations.
func (r *reader) count(minSize int) int {
	c := r.int_()
	if r.err != nil {
		return 0
	}
	if c < 0 || (minSize > 0 && c > r.remaining()/minSize) {
		r.fail("implausible count %d for %d remaining bytes", c, r.remaining())
		return 0
	}
	return c
}

func (r *reader) str() string {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return ""
	}
	s := string(r.p[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) ints() []int {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = r.int_()
	}
	return v
}

// i32 reads an int that must fit int32 (BatchRec header fields).
func (r *reader) i32() int32 {
	v := r.int_()
	if r.err == nil && (v < math.MinInt32 || v > math.MaxInt32) {
		r.fail("value %d overflows int32 field", v)
	}
	return int32(v)
}

func putGraph(w *writer, g *graph.Graph) {
	if g == nil {
		w.bool_(false)
		return
	}
	w.bool_(true)
	n, m := g.N(), g.M()
	w.int_(n)
	w.int_(m)
	for i := 0; i < m; i++ {
		e := g.Edge(i)
		w.int_(e.U)
		w.int_(e.V)
	}
	w.bool_(g.Weighted())
	if g.Weighted() {
		for i := 0; i < m; i++ {
			w.f64(g.Weight(i))
		}
	}
}

func getGraph(r *reader) *graph.Graph {
	if !r.bool_() || r.err != nil {
		return nil
	}
	n := r.int_()
	m := r.count(16)
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxGraphVertices {
		r.fail("implausible vertex count %d", n)
		return nil
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		u, v := r.int_(), r.int_()
		if r.err != nil {
			return nil
		}
		if u < 0 || u >= n || v < 0 || v >= n || u == v || g.HasEdge(u, v) {
			r.fail("invalid edge (%d,%d) in %d-vertex graph", u, v, n)
			return nil
		}
		g.AddEdge(u, v)
	}
	if r.bool_() {
		for i := 0; i < m; i++ {
			wt := r.f64()
			if r.err != nil {
				return nil
			}
			if wt < 0 || math.IsNaN(wt) || math.IsInf(wt, 0) {
				r.fail("invalid edge weight %v", wt)
				return nil
			}
			g.SetWeight(i, wt)
		}
	}
	if r.err != nil {
		return nil
	}
	return g
}

func putBools(w *writer, v []bool) {
	w.int_(len(v))
	for _, b := range v {
		w.bool_(b)
	}
}

func getBools(r *reader) []bool {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = r.bool_()
	}
	return v
}

// batchRecWire is the fixed on-wire size of one BatchRec.
const batchRecWire = 10*8 + 2

func putBatch(w *writer, b *dist.RecBatch) {
	w.int_(len(b.Recs))
	for i := range b.Recs {
		rec := &b.Recs[i]
		w.int_(int(rec.From))
		w.int_(int(rec.To))
		w.u8(rec.Tag)
		w.u8(rec.Flag)
		w.i64(rec.Bits)
		w.i64(rec.A)
		w.i64(rec.B)
		w.f64(rec.F0)
		w.f64(rec.F1)
		w.f64(rec.F2)
		w.int_(int(rec.Off))
		w.int_(int(rec.N))
	}
	w.ints(b.Ints)
}

func getBatch(r *reader) dist.RecBatch {
	var b dist.RecBatch
	n := r.count(batchRecWire)
	if r.err != nil {
		return b
	}
	if n > 0 {
		b.Recs = make([]dist.BatchRec, n)
		for i := range b.Recs {
			rec := &b.Recs[i]
			rec.From = r.i32()
			rec.To = r.i32()
			rec.Tag = r.u8()
			rec.Flag = r.u8()
			rec.Bits = r.i64()
			rec.A = r.i64()
			rec.B = r.i64()
			rec.F0 = r.f64()
			rec.F1 = r.f64()
			rec.F2 = r.f64()
			rec.Off = r.i32()
			rec.N = r.i32()
		}
	}
	b.Ints = r.ints()
	// Tail spans must stay inside the arena so the receiver never
	// slices out of bounds.
	for i := range b.Recs {
		rec := &b.Recs[i]
		if r.err != nil {
			break
		}
		if rec.Off < 0 || rec.N < 0 || int(rec.Off)+int(rec.N) > len(b.Ints) {
			r.fail("record tail [%d,%d) outside arena of %d ints", rec.Off, int(rec.Off)+int(rec.N), len(b.Ints))
		}
	}
	return b
}

func putBatches(w *writer, bs []dist.RecBatch) {
	w.int_(len(bs))
	for i := range bs {
		putBatch(w, &bs[i])
	}
}

func getBatches(r *reader) []dist.RecBatch {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	bs := make([]dist.RecBatch, n)
	for i := range bs {
		bs[i] = getBatch(r)
	}
	return bs
}

func putMeter(w *writer, m *dist.MeterReport) {
	w.i64(m.Msgs)
	w.i64(m.Bits)
	w.i64(m.CutBits)
	w.int_(m.MaxMsg)
	w.int_(m.MaxEdge)
	w.i64(m.Violations)
	w.int_(m.ViolSender)
	w.int_(m.ViolTo)
	w.int_(m.ViolBits)
}

func getMeter(r *reader) dist.MeterReport {
	return dist.MeterReport{
		Msgs: r.i64(), Bits: r.i64(), CutBits: r.i64(),
		MaxMsg: r.int_(), MaxEdge: r.int_(),
		Violations: r.i64(),
		ViolSender: r.int_(), ViolTo: r.int_(), ViolBits: r.int_(),
	}
}

func putEvents(w *writer, evs [][]dist.TraceEvent) {
	w.int_(len(evs))
	for _, ve := range evs {
		w.int_(len(ve))
		for i := range ve {
			ev := &ve[i]
			w.u8(byte(ev.Kind))
			w.int_(ev.Round)
			w.int_(ev.V)
			w.int_(ev.Peer)
			w.u8(ev.Tag)
			w.bool_(ev.Boxed)
			w.int_(ev.Bits)
		}
	}
}

const traceEventWire = 4*8 + 3

func getEvents(r *reader) [][]dist.TraceEvent {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	evs := make([][]dist.TraceEvent, n)
	for v := range evs {
		c := r.count(traceEventWire)
		if r.err != nil {
			return nil
		}
		if c == 0 {
			continue
		}
		ve := make([]dist.TraceEvent, c)
		for i := range ve {
			ve[i] = dist.TraceEvent{
				Kind:  dist.TraceKind(r.u8()),
				Round: r.int_(),
				V:     r.int_(),
				Peer:  r.int_(),
				Tag:   r.u8(),
				Boxed: r.bool_(),
				Bits:  r.int_(),
			}
		}
		evs[v] = ve
	}
	return evs
}

func putOutputs(w *writer, outs [][]int) {
	w.int_(len(outs))
	for _, o := range outs {
		w.ints(o)
	}
}

func getOutputs(r *reader) [][]int {
	n := r.count(8)
	if r.err != nil || n == 0 {
		return nil
	}
	outs := make([][]int, n)
	for i := range outs {
		outs[i] = r.ints()
	}
	return outs
}

// EncodeFrame serializes one frame payload (without the length prefix).
func EncodeFrame(f *dist.Frame) ([]byte, error) {
	if f == nil {
		return nil, fmt.Errorf("wire: nil frame")
	}
	w := &writer{b: make([]byte, 0, 64)}
	w.u8(frameVersion)
	w.u8(byte(f.Type))
	switch f.Type {
	case dist.FrameSetup:
		s := f.Setup
		if s == nil {
			return nil, fmt.Errorf("wire: setup frame without body")
		}
		w.int_(s.Shard)
		w.int_(s.Workers)
		w.ints(s.Cuts)
		putGraph(w, s.Graph)
		w.str(s.Algo)
		w.i64(s.Seed)
		w.int_(s.Bandwidth)
		putBools(w, s.Cut)
		w.bool_(s.Trace)
		w.bool_(s.Collect)
	case dist.FrameRound:
		rf := f.Round
		if rf == nil {
			return nil, fmt.Errorf("wire: round frame without body")
		}
		w.int_(rf.Stepped)
		w.int_(rf.Yielded)
		w.int_(rf.ParkedNow)
		w.int_(rf.DoneTotal)
		w.int_(rf.Senders)
		putMeter(w, &rf.Meter)
		putBatches(w, rf.Out)
		w.str(rf.Err)
	case dist.FrameBatches:
		b := f.Batches
		if b == nil {
			return nil, fmt.Errorf("wire: batches frame without body")
		}
		putBatches(w, b.In)
	case dist.FrameWake:
		wf := f.Wake
		if wf == nil {
			return nil, fmt.Errorf("wire: wake frame without body")
		}
		w.bool_(wf.WouldWake)
		w.int_(wf.Woken)
		w.int_(wf.Delivered)
		w.i64(wf.DeliveredBits)
	case dist.FrameDecision:
		d := f.Decision
		if d == nil {
			return nil, fmt.Errorf("wire: decision frame without body")
		}
		w.u8(byte(d.Kind))
		w.int_(d.Round)
	case dist.FrameResult:
		res := f.Result
		if res == nil {
			return nil, fmt.Errorf("wire: result frame without body")
		}
		putOutputs(w, res.Outputs)
		putEvents(w, res.Events)
		w.str(res.Err)
	default:
		return nil, fmt.Errorf("wire: unknown frame type %d", f.Type)
	}
	if len(w.b) > MaxFrameBytes {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", len(w.b))
	}
	return w.b, nil
}

// DecodeFrame parses one frame payload. Every byte must be consumed;
// truncated, trailing, or malformed input is an error, never a panic.
func DecodeFrame(p []byte) (*dist.Frame, error) {
	r := &reader{p: p}
	if v := r.u8(); r.err == nil && v != frameVersion {
		return nil, fmt.Errorf("wire: unsupported frame version %d", v)
	}
	f := &dist.Frame{Type: dist.FrameType(r.u8())}
	switch f.Type {
	case dist.FrameSetup:
		s := &dist.SetupFrame{}
		s.Shard = r.int_()
		s.Workers = r.int_()
		s.Cuts = r.ints()
		s.Graph = getGraph(r)
		s.Algo = r.str()
		s.Seed = r.i64()
		s.Bandwidth = r.int_()
		s.Cut = getBools(r)
		s.Trace = r.bool_()
		s.Collect = r.bool_()
		f.Setup = s
	case dist.FrameRound:
		rf := &dist.RoundFrame{}
		rf.Stepped = r.int_()
		rf.Yielded = r.int_()
		rf.ParkedNow = r.int_()
		rf.DoneTotal = r.int_()
		rf.Senders = r.int_()
		rf.Meter = getMeter(r)
		rf.Out = getBatches(r)
		rf.Err = r.str()
		f.Round = rf
	case dist.FrameBatches:
		f.Batches = &dist.BatchesFrame{In: getBatches(r)}
	case dist.FrameWake:
		f.Wake = &dist.WakeFrame{
			WouldWake:     r.bool_(),
			Woken:         r.int_(),
			Delivered:     r.int_(),
			DeliveredBits: r.i64(),
		}
	case dist.FrameDecision:
		d := &dist.DecisionFrame{Kind: dist.DecisionKind(r.u8()), Round: r.int_()}
		if r.err == nil && (d.Kind < dist.DecideCommit || d.Kind > dist.DecideAbort) {
			return nil, fmt.Errorf("wire: unknown decision kind %d", d.Kind)
		}
		f.Decision = d
	case dist.FrameResult:
		res := &dist.ResultFrame{}
		res.Outputs = getOutputs(r)
		res.Events = getEvents(r)
		res.Err = r.str()
		f.Result = res
	default:
		if r.err == nil {
			return nil, fmt.Errorf("wire: unknown frame type %d", f.Type)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(p) {
		return nil, fmt.Errorf("wire: %d trailing bytes after frame", len(p)-r.off)
	}
	return f, nil
}
