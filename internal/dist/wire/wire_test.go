package wire

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// sampleFrames covers every frame type with representative payloads:
// weighted and unweighted graphs, cut sides, negative sentinel fields,
// record batches with shared tails, buffered trace events.
func sampleFrames() []*dist.Frame {
	wg := graph.New(4)
	wg.AddEdge(0, 1)
	wg.AddEdge(1, 2)
	wg.AddEdge(2, 3)
	wg.SetWeight(0, 1.5)
	wg.SetWeight(1, 7)
	wg.SetWeight(2, 0.25)
	ug := graph.New(3)
	ug.AddEdge(0, 2)
	return []*dist.Frame{
		{Type: dist.FrameSetup, Setup: &dist.SetupFrame{
			Shard: 1, Workers: 3, Cuts: []int{0, 2, 3, 4}, Graph: wg,
			Algo: "twospanner", Seed: -42, Bandwidth: 96,
			Cut: []bool{true, false, false, true}, Trace: true, Collect: true,
		}},
		{Type: dist.FrameSetup, Setup: &dist.SetupFrame{
			Shard: 0, Workers: 1, Cuts: []int{0, 3}, Graph: ug, Seed: 7,
		}},
		{Type: dist.FrameRound, Round: &dist.RoundFrame{
			Stepped: 5, Yielded: 3, ParkedNow: 1, DoneTotal: 1, Senders: 2,
			Meter: dist.MeterReport{
				Msgs: 9, Bits: 512, CutBits: 64, MaxMsg: 4, MaxEdge: 128,
				Violations: 2, ViolSender: 3, ViolTo: 0, ViolBits: 640,
			},
			Out: []dist.RecBatch{
				{},
				{Recs: []dist.BatchRec{
					{From: 0, To: 2, Tag: 1, Flag: 3, Bits: 64, A: -5, B: 9,
						F0: 1.25, F1: -0.5, F2: 3e9, Off: 0, N: 2},
					{From: 1, To: 3, Tag: 2, Bits: 32, Off: 2, N: 0},
				}, Ints: []int{10, -20}},
			},
		}},
		{Type: dist.FrameRound, Round: &dist.RoundFrame{
			Meter: dist.MeterReport{ViolSender: -1, ViolTo: -1},
			Err:   "vertex 6 panicked: boom",
		}},
		{Type: dist.FrameBatches, Batches: &dist.BatchesFrame{
			In: []dist.RecBatch{{Recs: []dist.BatchRec{{From: 2, To: 0, Bits: 8}}}, {}},
		}},
		{Type: dist.FrameBatches, Batches: &dist.BatchesFrame{}},
		{Type: dist.FrameWake, Wake: &dist.WakeFrame{
			WouldWake: true, Woken: 2, Delivered: 7, DeliveredBits: 448,
		}},
		{Type: dist.FrameDecision, Decision: &dist.DecisionFrame{Kind: dist.DecideCommit, Round: 12}},
		{Type: dist.FrameDecision, Decision: &dist.DecisionFrame{Kind: dist.DecideAbort, Round: 3}},
		{Type: dist.FrameResult, Result: &dist.ResultFrame{
			Outputs: [][]int{{1, 2, 3}, nil, {9}},
			Events: [][]dist.TraceEvent{
				{
					{Kind: dist.TraceSend, Round: 1, V: 0, Peer: 1, Tag: 2, Bits: 64},
					{Kind: dist.TracePark, Round: 2, V: 0, Peer: -1},
				},
				nil,
			},
		}},
		{Type: dist.FrameResult, Result: &dist.ResultFrame{Err: "epilogue failed"}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for i, f := range sampleFrames() {
		p, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("frame %d: encode: %v", i, err)
		}
		g, err := DecodeFrame(p)
		if err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		// Encoding is canonical: re-encoding the decoded frame must
		// reproduce the bytes (graphs rebuild with identical edge order).
		p2, err := EncodeFrame(g)
		if err != nil {
			t.Fatalf("frame %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(p, p2) {
			t.Fatalf("frame %d: encoding not canonical", i)
		}
		if g.Type != f.Type {
			t.Fatalf("frame %d: type %d → %d", i, f.Type, g.Type)
		}
	}
}

func TestFrameRoundTripFields(t *testing.T) {
	// Spot-check structural equality on the non-graph frames (graphs
	// compare via canonical bytes above).
	for i, f := range sampleFrames() {
		if f.Type == dist.FrameSetup {
			continue
		}
		p, _ := EncodeFrame(f)
		g, err := DecodeFrame(p)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		// Canonicalize nil-vs-empty before comparing: the decoder keeps
		// empty slices nil.
		if f.Type == dist.FrameRound && f.Round.Out != nil {
			for j := range f.Round.Out {
				if len(f.Round.Out[j].Recs) == 0 {
					f.Round.Out[j].Recs = nil
				}
				if len(f.Round.Out[j].Ints) == 0 {
					f.Round.Out[j].Ints = nil
				}
			}
		}
		if f.Type == dist.FrameBatches && f.Batches.In != nil {
			for j := range f.Batches.In {
				if len(f.Batches.In[j].Recs) == 0 {
					f.Batches.In[j].Recs = nil
				}
				if len(f.Batches.In[j].Ints) == 0 {
					f.Batches.In[j].Ints = nil
				}
			}
		}
		if !reflect.DeepEqual(f, g) {
			t.Fatalf("frame %d diverged:\nin:  %+v\nout: %+v", i, f, g)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	// Every proper prefix of every valid frame must fail cleanly.
	for i, f := range sampleFrames() {
		p, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(p); n++ {
			if _, err := DecodeFrame(p[:n]); err == nil {
				t.Fatalf("frame %d: decode accepted %d-byte prefix of %d", i, n, len(p))
			}
		}
		if _, err := DecodeFrame(append(append([]byte(nil), p...), 0)); err == nil {
			t.Fatalf("frame %d: decode accepted trailing byte", i)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad version":  {99, byte(dist.FrameWake), 1, 0, 0, 0, 0, 0, 0, 0, 0},
		"bad type":     {frameVersion, 77},
		"bad bool":     {frameVersion, byte(dist.FrameWake), 7},
		"bad decision": {frameVersion, byte(dist.FrameDecision), 9, 1, 0, 0, 0, 0, 0, 0, 0},
	}
	// Implausible count: a batches frame claiming 2^40 batches.
	w := &writer{}
	w.u8(frameVersion)
	w.u8(byte(dist.FrameBatches))
	w.int_(1 << 40)
	cases["huge count"] = w.b
	// Record tail pointing outside the arena.
	w = &writer{}
	w.u8(frameVersion)
	w.u8(byte(dist.FrameBatches))
	w.int_(1) // one batch
	putBatch(w, &dist.RecBatch{Recs: []dist.BatchRec{{Off: 5, N: 3}}, Ints: []int{1}})
	cases["tail outside arena"] = w.b
	// Graph with an out-of-range endpoint.
	w = &writer{}
	w.u8(frameVersion)
	w.u8(byte(dist.FrameSetup))
	w.int_(0) // shard
	w.int_(1) // workers
	w.ints([]int{0, 2})
	w.bool_(true) // graph present
	w.int_(2)     // n
	w.int_(1)     // m
	w.int_(0)
	w.int_(5) // v out of range
	cases["bad edge"] = w.b
	for name, p := range cases {
		if _, err := DecodeFrame(p); err == nil {
			t.Errorf("%s: decode accepted garbage", name)
		}
	}
}

func TestReadFrameRejectsOversizedPrefix(t *testing.T) {
	var hdr [4]byte
	hdr[3] = 0xFF // length ≈ 4G
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil ||
		!strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized prefix: err = %v", err)
	}
}

func TestWriteReadFrame(t *testing.T) {
	var buf bytes.Buffer
	frames := sampleFrames()
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i := range frames {
		g, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if g.Type != frames[i].Type {
			t.Fatalf("frame %d: type %d → %d", i, frames[i].Type, g.Type)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d stray bytes after stream", buf.Len())
	}
}
