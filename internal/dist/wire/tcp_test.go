package wire

import (
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// gossip is a small record-path protocol exercising sends with tails,
// parking, waking, and quiescence finalizers — enough traffic shape to
// catch framing bugs. Deterministic in (graph, seed).
type gossip struct {
	out    []int64
	sum    int64
	rounds int
	r      int
}

func (m *gossip) Step(c *dist.Ctx, in dist.StepIn) dist.StepStatus {
	if in.Quiesced {
		m.out[c.ID()] = m.sum*31 + 7
		return dist.StepDone
	}
	if in.Start {
		m.sum = int64(c.ID()) + 1
	}
	for _, rec := range in.Recs {
		m.sum = m.sum*31 + int64(rec.From) + rec.A
		for _, x := range rec.Ints {
			m.sum = m.sum*33 + int64(x)
		}
	}
	m.r++
	if m.r > m.rounds {
		m.out[c.ID()] = m.sum
		return dist.StepDone
	}
	switch c.Rand().Intn(4) {
	case 0:
		c.BroadcastRec(dist.Rec{Tag: 1, A: int64(m.r), Ints: []int{m.r, c.ID()}}, 48)
	case 1:
		nbrs := c.Neighbors()
		c.SendRec(nbrs[c.Rand().Intn(len(nbrs))], dist.Rec{Tag: 2, A: m.sum % 97}, 16)
	case 2:
		return dist.StepPark
	}
	return dist.StepYield
}

// recorder buffers a run's logical transcript.
type recorder struct {
	events [][]dist.TraceEvent
	phases []dist.RoundActivity
}

func newRecorder(n int) *recorder { return &recorder{events: make([][]dist.TraceEvent, n)} }

func (r *recorder) Event(ev dist.TraceEvent)   { r.events[ev.V] = append(r.events[ev.V], ev) }
func (r *recorder) Phase(a dist.RoundActivity) { r.phases = append(r.phases, a) }
func (r *recorder) RoundTime(dist.RoundTiming) {}

func gossipResolver(rounds int) dist.ProgramResolver {
	return func(algo string, g *graph.Graph, seed int64) (dist.ShardProgram, error) {
		out := make([]int64, g.N())
		return dist.ShardProgram{
			Factory: func(c *dist.Ctx) dist.Machine { return &gossip{out: out, rounds: rounds} },
			Output:  func(v int) []int { return []int{int(out[v])} },
		}, nil
	}
}

func testGraph() *graph.Graph {
	g := graph.New(24)
	for v := 1; v < 24; v++ {
		g.AddEdge(v-1, v)
		if v >= 5 {
			g.AddEdge(v-5, v)
		}
	}
	return g
}

// startCluster wires a coordinator transport to `workers` ServeShard
// goroutines over TCP on localhost. The returned wait function joins
// the workers and reports their errors.
func startCluster(t *testing.T, workers, rounds int) (*TCPCoord, func() []error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wt, err := DialRetry(ln.Addr().String(), 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = dist.ServeShard(wt, gossipResolver(rounds))
		}(i)
	}
	ct, err := AcceptWorkers(ln, workers, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return ct, func() []error { wg.Wait(); return errs }
}

func TestTCPClusterMatchesInProcess(t *testing.T) {
	g := testGraph()
	for _, workers := range []int{1, 2, 3} {
		for seed := int64(1); seed <= 2; seed++ {
			t.Run(fmt.Sprintf("workers=%d/seed=%d", workers, seed), func(t *testing.T) {
				// In-process ModeStep reference.
				refOut := make([]int64, g.N())
				refRec := newRecorder(g.N())
				refStats, err := dist.RunMachines(dist.Config{
					Graph: g, Seed: seed, Mode: dist.ModeStep, Tracer: refRec,
				}, func(c *dist.Ctx) dist.Machine {
					return &gossip{out: refOut, rounds: 9}
				})
				if err != nil {
					t.Fatal(err)
				}

				ct, wait := startCluster(t, workers, 9)
				rec := newRecorder(g.N())
				res, err := dist.Coordinate(ct, dist.CoordConfig{
					Graph: g, Seed: seed, Tracer: rec, Collect: true,
				})
				ct.Close()
				for i, werr := range wait() {
					if werr != nil {
						t.Fatalf("worker %d: %v", i, werr)
					}
				}
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats != *refStats {
					t.Fatalf("stats diverged over TCP:\nref: %+v\ngot: %+v", *refStats, res.Stats)
				}
				for v := 0; v < g.N(); v++ {
					if want := []int{int(refOut[v])}; !reflect.DeepEqual(res.Outputs[v], want) {
						t.Fatalf("vertex %d output %v, want %v", v, res.Outputs[v], want)
					}
					if !reflect.DeepEqual(refRec.events[v], rec.events[v]) {
						t.Fatalf("vertex %d transcript diverged over TCP:\nref: %+v\ngot: %+v",
							v, refRec.events[v], rec.events[v])
					}
				}
				if !reflect.DeepEqual(refRec.phases, rec.phases) {
					t.Fatal("phase snapshots diverged over TCP")
				}
			})
		}
	}
}

// TestTCPWorkerDropMidRound kills one worker's connection mid-protocol:
// the coordinator must surface a typed transport error without hanging,
// and the transcript must contain no partial round.
func TestTCPWorkerDropMidRound(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // worker slot 0: honest
		defer wg.Done()
		wt, err := DialRetry(ln.Addr().String(), 5*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		if err := dist.ServeShard(wt, gossipResolver(50)); err != nil &&
			!errors.Is(err, dist.ErrTransport) {
			t.Errorf("honest worker: %v", err)
		}
	}()
	go func() { // worker slot 1: reads its setup, then drops the link
		defer wg.Done()
		wt, err := DialRetry(ln.Addr().String(), 5*time.Second)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := wt.Recv(); err != nil {
			t.Errorf("dropper: recv setup: %v", err)
		}
		wt.Close()
	}()

	ct, err := AcceptWorkers(ln, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	g := testGraph()
	rec := newRecorder(g.N())
	done := make(chan error, 1)
	go func() {
		_, err := dist.Coordinate(ct, dist.CoordConfig{Graph: g, Seed: 1, Tracer: rec})
		done <- err
	}()
	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung after worker drop")
	}
	if !errors.Is(err, dist.ErrTransport) {
		t.Fatalf("err = %v, want ErrTransport", err)
	}
	ct.Close()
	wg.Wait()
	// No partial round in the transcript: the drop happened before any
	// round committed, so the tracer saw nothing at all.
	if len(rec.phases) != 0 {
		t.Fatalf("transcript has %d phase snapshots after aborted run", len(rec.phases))
	}
	for v, evs := range rec.events {
		if len(evs) != 0 {
			t.Fatalf("vertex %d has %d events after aborted run", v, len(evs))
		}
	}
}

// TestTCPCoordinatorVanishes drops the coordinator's side mid-run: the
// worker must return a typed transport error, not hang.
func TestTCPCoordinatorVanishes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		wt, err := DialRetry(ln.Addr().String(), 5*time.Second)
		if err != nil {
			done <- err
			return
		}
		done <- dist.ServeShard(wt, gossipResolver(50))
	}()

	ct, err := AcceptWorkers(ln, 1, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph()
	// Hand the worker a valid setup, then vanish.
	if err := ct.Send(0, &dist.Frame{Type: dist.FrameSetup, Setup: &dist.SetupFrame{
		Shard: 0, Workers: 1, Cuts: []int{0, g.N()}, Graph: g, Seed: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	ct.Close()

	select {
	case err = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("worker hung after coordinator vanished")
	}
	if !errors.Is(err, dist.ErrTransport) {
		t.Fatalf("worker err = %v, want ErrTransport", err)
	}
}

// TestTCPShardErrorPropagates runs a resolver that fails on one shard:
// the coordinator reports a ShardError and the honest workers exit nil.
func TestTCPShardErrorPropagates(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resolve := func(algo string, g *graph.Graph, seed int64) (dist.ShardProgram, error) {
		return dist.ShardProgram{}, errors.New("no such program")
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wt, err := DialRetry(ln.Addr().String(), 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			dist.ServeShard(wt, resolve)
		}()
	}
	ct, err := AcceptWorkers(ln, 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	_, err = dist.Coordinate(ct, dist.CoordConfig{Graph: testGraph(), Seed: 1})
	var se *dist.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ShardError", err)
	}
	ct.Close()
	wg.Wait()
}
