package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"

	"distspanner/internal/dist"
)

// WriteFrame encodes f and writes it length-prefixed (u32 little-endian
// payload length, then the payload).
func WriteFrame(w io.Writer, f *dist.Frame) error {
	p, err := EncodeFrame(f)
	if err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(p)
	return err
}

// ReadFrame reads one length-prefixed frame. A length prefix beyond
// MaxFrameBytes is rejected before any allocation.
func ReadFrame(r io.Reader) (*dist.Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrameBytes {
		return nil, fmt.Errorf("wire: frame length %d exceeds limit", n)
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}
	return DecodeFrame(p)
}

// conn is one framed stream. The protocol is strictly alternating per
// peer, so no locking is needed; Close unblocks a pending read.
type conn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, br: bufio.NewReaderSize(c, 1<<16), bw: bufio.NewWriterSize(c, 1<<16)}
}

func (t *conn) send(f *dist.Frame) error {
	if err := WriteFrame(t.bw, f); err != nil {
		return fmt.Errorf("%w: %v", dist.ErrTransport, err)
	}
	if err := t.bw.Flush(); err != nil {
		return fmt.Errorf("%w: %v", dist.ErrTransport, err)
	}
	return nil
}

func (t *conn) recv() (*dist.Frame, error) {
	f, err := ReadFrame(t.br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", dist.ErrTransport, err)
	}
	return f, nil
}

func (t *conn) close() error { return t.c.Close() }

// TCPWorker is a worker's framed connection to the coordinator.
type TCPWorker struct {
	*conn
}

var _ dist.WorkerTransport = (*TCPWorker)(nil)

func (w *TCPWorker) Send(f *dist.Frame) error   { return w.send(f) }
func (w *TCPWorker) Recv() (*dist.Frame, error) { return w.recv() }
func (w *TCPWorker) Close() error               { return w.close() }

// Dial connects a worker to the coordinator at addr.
func Dial(addr string) (*TCPWorker, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", dist.ErrTransport, addr, err)
	}
	return &TCPWorker{conn: newConn(c)}, nil
}

// DialRetry dials until the coordinator is listening, for workers
// started before (or racing) the coordinator.
func DialRetry(addr string, timeout time.Duration) (*TCPWorker, error) {
	deadline := time.Now().Add(timeout)
	for {
		w, err := Dial(addr)
		if err == nil {
			return w, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TCPCoord is the coordinator's side: one framed connection per worker,
// slot order = accept order = shard index order (the shard index is
// assigned by the SetupFrame the coordinator sends on each slot).
type TCPCoord struct {
	conns []*conn
}

var _ dist.CoordTransport = (*TCPCoord)(nil)

func (c *TCPCoord) Workers() int { return len(c.conns) }

func (c *TCPCoord) Send(worker int, f *dist.Frame) error { return c.conns[worker].send(f) }

func (c *TCPCoord) Recv(worker int) (*dist.Frame, error) { return c.conns[worker].recv() }

func (c *TCPCoord) Close() error {
	var first error
	for _, t := range c.conns {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AcceptWorkers accepts exactly `workers` connections on ln and returns
// the coordinator transport. The caller retains ownership of ln (close
// it after this returns). A non-zero timeout bounds the whole accept
// phase when ln supports deadlines (a *net.TCPListener does).
func AcceptWorkers(ln net.Listener, workers int, timeout time.Duration) (*TCPCoord, error) {
	if workers < 1 {
		return nil, fmt.Errorf("%w: need at least one worker", dist.ErrTransport)
	}
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok && timeout > 0 {
		if err := d.SetDeadline(time.Now().Add(timeout)); err != nil {
			return nil, fmt.Errorf("%w: %v", dist.ErrTransport, err)
		}
	}
	c := &TCPCoord{conns: make([]*conn, 0, workers)}
	for i := 0; i < workers; i++ {
		nc, err := ln.Accept()
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("%w: accept worker %d/%d: %v", dist.ErrTransport, i, workers, err)
		}
		c.conns = append(c.conns, newConn(nc))
	}
	return c, nil
}
