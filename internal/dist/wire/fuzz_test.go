package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// FuzzFrameDecode asserts the decoder's safety contract on arbitrary
// input: never panic, never accept non-canonical bytes. Any payload the
// decoder accepts must re-encode to exactly the same bytes (decode is
// the inverse of the canonical encoding, on its image).
//
// Seeds: every sample frame's encoding plus a few corrupted variants;
// the committed corpus under testdata/fuzz mirrors them (regenerate
// with WIRE_WRITE_CORPUS=1 go test -run TestWriteFuzzCorpus ./internal/dist/wire).
func FuzzFrameDecode(f *testing.F) {
	for _, p := range corpusSeeds() {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, p []byte) {
		fr, err := DecodeFrame(p)
		if err != nil {
			return
		}
		p2, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
		if !bytes.Equal(p, p2) {
			t.Fatalf("decode accepted non-canonical bytes:\nin:  %x\nout: %x", p, p2)
		}
	})
}

func corpusSeeds() [][]byte {
	var seeds [][]byte
	for _, fr := range sampleFrames() {
		p, err := EncodeFrame(fr)
		if err != nil {
			panic(err)
		}
		seeds = append(seeds, p)
		// A truncated and a bit-flipped variant of each.
		if len(p) > 3 {
			seeds = append(seeds, p[:len(p)*2/3])
			q := append([]byte(nil), p...)
			q[len(q)/2] ^= 0x40
			seeds = append(seeds, q)
		}
	}
	seeds = append(seeds, []byte{}, []byte{frameVersion}, []byte{frameVersion, 0xFF})
	return seeds
}

// TestWriteFuzzCorpus regenerates the committed seed corpus. Gated so
// normal test runs never touch the tree.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("WIRE_WRITE_CORPUS") == "" {
		t.Skip("set WIRE_WRITE_CORPUS=1 to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzFrameDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, p := range corpusSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(p)) + ")\n"
		name := filepath.Join(dir, "seed-"+strconv.Itoa(i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
