package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/dist/transportconf"
	"distspanner/internal/distrun"
)

// tcpFactory builds a localhost TCP cluster whose workers serve the
// real algorithm registry — the transportconf Factory for this
// package's transport.
func tcpFactory(tb testing.TB, workers int) (dist.CoordTransport, func() []error) {
	tb.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wt, err := DialRetry(ln.Addr().String(), 5*time.Second)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = dist.ServeShard(wt, distrun.Resolver())
		}(i)
	}
	ct, err := AcceptWorkers(ln, workers, 10*time.Second)
	ln.Close()
	if err != nil {
		tb.Fatal(err)
	}
	wait := func() []error {
		ct.Close()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			tb.Fatal("workers did not exit within 30s of coordinator close")
		}
		return errs
	}
	return ct, wait
}

// TestTCPTransportConformance runs the full transport conformance
// suite — digest/stats/output equivalence across the algorithm-family
// matrix, quiescence, cancellation, abort parity — over real sockets.
func TestTCPTransportConformance(t *testing.T) {
	transportconf.Run(t, tcpFactory)
}
