package wire

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"distspanner/internal/dist"
	"distspanner/internal/graph"
)

// The transport yardsticks: the same fully-busy broadcast workload run
// (a) on the in-process step engine, (b) distributed over the boxed
// channel transport (Go structs handed between goroutines, no
// serialization), and (c) distributed over framed TCP on localhost
// (every frame wire-encoded and length-prefixed). local-vs-chan prices
// the sharded round protocol; chan-vs-tcp prices the framing and the
// sockets. Each TCP iteration includes cluster setup (listen, dial,
// accept) — the cost a real deployment pays once per run.

const benchRounds = 16

type benchBusy struct {
	round int
}

func (m *benchBusy) Step(c *dist.Ctx, in dist.StepIn) dist.StepStatus {
	if !in.Start {
		for i := range in.Recs {
			_ = i
		}
	}
	if m.round == benchRounds {
		return dist.StepDone
	}
	c.BroadcastRec(dist.Rec{Tag: 1, A: int64(m.round)}, 32)
	m.round++
	return dist.StepYield
}

func benchResolver(algo string, g *graph.Graph, seed int64) (dist.ShardProgram, error) {
	return dist.ShardProgram{
		Factory: func(*dist.Ctx) dist.Machine { return &benchBusy{} },
	}, nil
}

// benchRing mirrors the dist package's bench graph: a ring with chords,
// degree 4, deterministic at any size.
func benchRing(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
		g.AddEdge(v, (v+2)%n)
	}
	return g
}

func benchChanRun(b *testing.B, g *graph.Graph, shards int) {
	stats, err := dist.RunMachines(dist.Config{Graph: g, Seed: 1, Mode: dist.ModeStep, Shards: shards},
		func(*dist.Ctx) dist.Machine { return &benchBusy{} })
	if err != nil {
		b.Fatal(err)
	}
	if stats.Rounds != benchRounds {
		b.Fatalf("rounds = %d", stats.Rounds)
	}
}

func benchTCPRun(b *testing.B, g *graph.Graph, workers int) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wt, err := DialRetry(ln.Addr().String(), 5*time.Second)
			if err != nil {
				b.Error(err)
				return
			}
			if err := dist.ServeShard(wt, benchResolver); err != nil {
				b.Error(err)
			}
		}()
	}
	ct, err := AcceptWorkers(ln, workers, 5*time.Second)
	ln.Close()
	if err != nil {
		b.Fatal(err)
	}
	res, err := dist.Coordinate(ct, dist.CoordConfig{Graph: g, Seed: 1})
	ct.Close()
	wg.Wait()
	if err != nil {
		b.Fatal(err)
	}
	if res.Stats.Rounds != benchRounds {
		b.Fatalf("rounds = %d", res.Stats.Rounds)
	}
}

func BenchmarkTransportLoopback(b *testing.B) {
	for _, n := range []int{256, 2048} {
		g := benchRing(n)
		variants := []struct {
			name string
			run  func(b *testing.B)
		}{
			{"local", func(b *testing.B) { benchChanRun(b, g, 0) }},
			{"chan2", func(b *testing.B) { benchChanRun(b, g, 2) }},
			{"tcp2", func(b *testing.B) { benchTCPRun(b, g, 2) }},
		}
		for _, v := range variants {
			b.Run(fmt.Sprintf("n=%d/transport=%s", n, v.name), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v.run(b)
				}
				b.StopTimer()
				b.ReportMetric(float64(benchRounds)*float64(b.N)/b.Elapsed().Seconds(), "rounds/sec")
			})
		}
	}
}
