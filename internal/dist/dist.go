// Package dist is the synchronous round-based message-passing simulator
// the distributed algorithms run on. It implements the classic LOCAL /
// CONGEST execution model of the paper: computation proceeds in global
// rounds, in each round every vertex sends payloads to neighbors, and all
// payloads sent in round r are delivered at the start of round r+1.
//
// A protocol is expressed either as a blocking procedure that every
// vertex executes on its own goroutine (Run) or as an explicit state
// machine stepped by the engine (RunMachines, see Machine). The engine
// meters every payload's Bits() size, so the same protocol can be
// classified as LOCAL (unbounded messages) or CONGEST (O(log n) bits per
// edge per round) from its measured Stats — and with Config.Enforce set,
// exceeding the bandwidth budget is a runtime error, making CONGEST
// legality a checked property rather than an assumption.
//
// # Accounting model
//
//   - A "round" is one synchronous boundary: it completes when every
//     live vertex has either committed its step (Ctx.NextRound), parked
//     (Ctx.Recv), or retired. Stats.Rounds counts completed rounds; for
//     protocols that only use NextRound this equals the maximum number of
//     NextRound calls made by any vertex.
//   - Each payload is metered at its Bits() size. Stats.TotalBits and
//     Stats.Messages aggregate over the whole run; Stats.MaxMessageBits is
//     the largest single payload.
//   - Stats.MaxEdgeRoundBits is the maximum, over every directed edge and
//     round, of the bits sent across that edge in that round. A protocol
//     is CONGEST-legal for budget B iff MaxEdgeRoundBits <= B; that is
//     what Stats.CongestCompatible reports and Config.Enforce enforces.
//   - With Config.CutSide set, Stats.CutBits additionally totals the bits
//     crossing the two-party cut, which is what converts runs on the
//     lower-bound constructions into communication-complexity arguments.
//   - Stats.ActiveSteps, Stats.ParkedSteps, and Stats.PeakActive record
//     the run's activity profile: how many vertices each completed round
//     actually ran, and how many sat parked in Recv. Config.OnRound
//     exposes the full per-round curve. Like every other statistic they
//     are identical across execution modes.
//
// Executions are deterministic functions of (Config.Graph, Config.Seed):
// each vertex gets a private RNG derived from the seed, and inboxes are
// delivered sorted by sender id, so goroutine scheduling never leaks into
// results or statistics.
//
// # Execution modes
//
// The engine has three scheduling strategies selected by Config.Mode, all
// executing identical round semantics (results and Stats are bit-identical
// for a fixed Graph and Seed — the root determinism tests assert this):
//
//   - ModeBarrier: vertex goroutines run freely between central barriers;
//     completing a round wakes every still-running vertex. Below
//     Config.Workers' threshold every goroutine runs unrestricted; at
//     large n step execution is gated through a bounded worker pool and
//     the per-round metering is sharded across CPUs.
//   - ModeEvent: vertices are parked goroutines resumed by explicit
//     hand-off, and a round schedules only the active vertices — those
//     with a freshly delivered inbox or an explicit self-wakeup
//     (NextRound). Vertices parked in Ctx.Recv cost zero wakeups, so
//     round cost is O(#active + #senders) instead of O(n) — the regime
//     the paper's algorithms live in, where most vertices are idle in
//     most rounds.
//   - ModeStep: vertices are explicit state machines (Machine) stepped by
//     a sharded run-to-completion loop — no goroutine, no stack, no
//     hand-off per vertex, which is what lets runs scale to millions of
//     vertices on one box. Only RunMachines accepts it; blocking
//     procedures need a goroutine to block.
//
// ModeAuto (the default) switches on network size for procedures and
// always picks ModeStep for machines; bench_test.go measures the engines
// head-to-head across sizes and activity fractions.
//
// # Quiescence
//
// A vertex that has nothing to do until it hears from a neighbor parks in
// Ctx.Recv instead of spinning NextRound. If every live vertex is parked
// and no messages are in flight, no round could ever change anything: the
// run has quiesced. The engine then releases every parked vertex with
// ok=false from Recv, letting procedures finalize and return. Quiescence
// is itself deterministic — it happens at the same round in both modes.
package dist

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"distspanner/internal/graph"
)

// Payload is a message body. Bits reports its encoded size in bits — the
// quantity the engine meters and (optionally) enforces.
type Payload interface {
	Bits() int
}

// Message is one delivered payload together with its sender.
type Message struct {
	From    int
	Payload Payload
}

// Config configures a Run.
type Config struct {
	// Graph is the communication topology; vertices are 0..N()-1 and
	// messages travel only along its edges.
	Graph *graph.Graph
	// Seed drives all per-vertex randomness. Runs are deterministic
	// functions of (Graph, Seed).
	Seed int64
	// Mode selects the scheduling strategy (barrier vs event-driven);
	// the zero value ModeAuto switches on network size. Results are
	// identical in every mode; only wall-clock cost differs.
	Mode Mode
	// Bandwidth is the per-directed-edge per-round bit budget. Zero means
	// unlimited (pure LOCAL); a positive value defines what counts as a
	// bandwidth violation.
	Bandwidth int
	// Enforce makes a bandwidth violation abort the run with an error
	// wrapping ErrBandwidth. Without it, violations are only counted in
	// Stats.BandwidthViolations.
	Enforce bool
	// MaxRounds aborts runaway executions with an error wrapping
	// ErrRoundLimit; zero uses DefaultMaxRounds.
	MaxRounds int
	// CutSide, when non-nil, partitions the vertices into a two-party cut
	// (Alice = false, Bob = true); the engine then meters the bits
	// crossing the cut in Stats.CutBits. Length must equal Graph.N().
	CutSide []bool
	// Shards, when positive, runs RunMachines distributed: the graph is
	// partitioned into that many contiguous vertex ranges, each stepped
	// by its own worker over the in-process channel transport, with the
	// round/quiescence protocol run by a coordinator (see transport.go,
	// coord.go). Results, Stats, and trace digests are bit-identical to
	// the single-engine ModeStep run — the transport conformance suite
	// asserts exactly that. Requires ModeAuto or ModeStep; only the
	// record path (SendRec) may cross shards. Zero means off; the wire
	// transports (internal/dist/wire) use Coordinate/ServeShard directly.
	Shards int
	// Workers caps how many vertex steps execute concurrently. Zero picks
	// automatically: unlimited (goroutine-per-vertex) below
	// PoolThreshold vertices, a small multiple of GOMAXPROCS above it.
	// Negative forces unlimited; positive forces that cap.
	Workers int
	// OnRound, when non-nil, is called after every completed round with
	// that round's activity snapshot, in round order, while every vertex
	// is blocked — in barrier mode on the goroutine of the round's last
	// arriving vertex with the engine lock held, in event and step mode
	// on the scheduler goroutine. It must not call back into the engine
	// or block (either deadlocks the run); it is the hook behind
	// per-scenario activity curves. The same calls are made in every
	// execution mode.
	OnRound func(RoundActivity)
	// Cancel, when non-nil, aborts the run with an error wrapping
	// ErrCanceled once the channel is closed (or receives). It is checked
	// at every round boundary — the same points as the MaxRounds check —
	// so a canceled run stops within one round and releases every vertex
	// goroutine; timed-out sweep runs use it to avoid leaking writers.
	Cancel <-chan struct{}
	// Tracer, when non-nil, receives the run's execution narration: the
	// deterministic logical transcript (per-vertex send/deliver/wake/
	// park/retire events plus per-round Phase snapshots) and the
	// separate wall-clock timing channel. See trace.go for the contract.
	// Tracer calls happen at the engine's existing serialization points
	// — the same discipline as OnRound — and must not call back into the
	// engine or block. A nil Tracer costs nothing: no timestamps are
	// taken and the hot path performs zero extra allocations.
	Tracer Tracer
}

// DefaultMaxRounds is the round limit used when Config.MaxRounds is zero.
const DefaultMaxRounds = 1 << 20

// PoolThreshold is the vertex count at which Run switches from free
// goroutine-per-vertex execution to the gated worker pool by default.
const PoolThreshold = 4096

// ErrRoundLimit is wrapped by Run's error when MaxRounds is exceeded.
var ErrRoundLimit = errors.New("dist: round limit exceeded")

// ErrBandwidth is wrapped by Run's error when an enforced bandwidth
// budget is violated.
var ErrBandwidth = errors.New("dist: bandwidth exceeded")

// ErrCanceled is wrapped by Run's error when Config.Cancel fires.
var ErrCanceled = errors.New("dist: run canceled")

// abortSignal is panicked through vertex goroutines to unwind them when
// the run aborts; the vertex wrapper recovers it.
type abortSignal struct{}

// outMsg is one queued send.
type outMsg struct {
	to int
	p  Payload
}

// engine is the shared state of one Run.
type engine struct {
	g         *graph.Graph
	n         int
	mode      Mode
	bandwidth int
	enforce   bool
	maxRounds int
	cut       []bool
	cancel    <-chan struct{} // nil: never canceled
	sem       chan struct{}   // nil: unlimited concurrency
	routePar  int             // goroutines for sharded metering
	stepPar   int             // goroutines for sharded machine stepping
	tracer    Tracer          // nil: tracing disabled (zero cost)
	timed     bool            // tracer != nil: take round timestamps
	meterDlv  bool            // compute per-round delivery counts (OnRound or Tracer set)

	mu       sync.Mutex
	cond     *sync.Cond
	gen      uint64 // round generation, bumped at each barrier release
	arrived  int    // running vertices blocked at the current barrier
	running  int    // vertices neither done nor parked in Recv
	parked   int    // vertices parked in Recv awaiting delivery
	stepped  int    // vertices that blocked or retired since the last completed round
	senders  int    // senders routed in the current round (set by routeLocked)
	onRound  func(RoundActivity)
	quiesced bool // the network went permanently silent
	abort    error
	dirty    []*Ctx // vertices that blocked this round with sends queued
	woken    []*Ctx // parked vertices receiving messages this round

	reports chan vreport // event mode: vertex -> scheduler hand-off

	// Timing-channel scratch (tracer installed only): the previous round
	// boundary and the current round's accumulated routing/stepping time.
	lastTick time.Time
	routeNs  int64
	stepNs   int64
	// Delivery counters of the current round (meterDlv only), folded into
	// RoundActivity by recordRoundLocked.
	deliv     int
	delivBits int64

	ctxs  []*Ctx
	stats Stats

	wg sync.WaitGroup
}

// newEngine validates cfg and builds the shared engine state. A nil
// engine with a nil error means the run is trivially empty (n == 0).
// machines selects the mode-resolution rule: blocking procedures cannot
// run under ModeStep, machines default to it.
func newEngine(cfg Config, machines bool) (*engine, error) {
	if cfg.Graph == nil {
		return nil, errors.New("dist: Config.Graph is nil")
	}
	n := cfg.Graph.N()
	if cfg.CutSide != nil && len(cfg.CutSide) != n {
		return nil, fmt.Errorf("dist: CutSide has %d entries for %d vertices", len(cfg.CutSide), n)
	}
	if cfg.Mode < ModeAuto || cfg.Mode > ModeStep {
		return nil, fmt.Errorf("dist: invalid Config.Mode %d", int(cfg.Mode))
	}
	if !machines && cfg.Mode == ModeStep {
		return nil, errors.New("dist: ModeStep executes state machines: use RunMachines")
	}
	if n == 0 {
		return nil, nil
	}
	mode := cfg.Mode.resolve(n)
	if machines {
		mode = cfg.Mode.resolveMachines()
	}
	e := &engine{
		g:         cfg.Graph,
		n:         n,
		mode:      mode,
		bandwidth: cfg.Bandwidth,
		enforce:   cfg.Enforce,
		maxRounds: cfg.MaxRounds,
		cut:       cfg.CutSide,
		cancel:    cfg.Cancel,
		routePar:  runtime.GOMAXPROCS(0),
		stepPar:   stepWorkers(cfg),
		running:   n,
		onRound:   cfg.OnRound,
		tracer:    cfg.Tracer,
		timed:     cfg.Tracer != nil,
		meterDlv:  cfg.OnRound != nil || cfg.Tracer != nil,
	}
	if e.timed {
		e.lastTick = time.Now()
	}
	if e.maxRounds <= 0 {
		e.maxRounds = DefaultMaxRounds
	}
	e.cond = sync.NewCond(&e.mu)
	if e.mode != ModeStep {
		// The step loop never blocks, so only goroutine-backed modes need
		// the worker-pool gate.
		workers := cfg.Workers
		if workers == 0 && n >= PoolThreshold {
			workers = 2 * runtime.GOMAXPROCS(0)
		}
		if workers > 0 {
			e.sem = make(chan struct{}, workers)
		}
	}
	e.ctxs = make([]*Ctx, n)
	for v := 0; v < n; v++ {
		e.ctxs[v] = newCtx(e, v, cfg.Seed)
	}
	return e, nil
}

// result packages the finished engine's statistics and abort state.
func (e *engine) result() (*Stats, error) {
	if e.abort != nil {
		return nil, e.abort
	}
	s := e.stats
	return &s, nil
}

// Run executes proc once per vertex of cfg.Graph as a synchronous
// message-passing protocol and returns the metered statistics. It returns
// an error when the round limit is exceeded, when cfg.Cancel fires, or,
// with cfg.Enforce set, when any directed edge carries more than
// cfg.Bandwidth bits in one round.
func Run(cfg Config, proc func(*Ctx)) (*Stats, error) {
	if cfg.Shards > 0 {
		return nil, errors.New("dist: Config.Shards executes state machines: use RunMachines")
	}
	e, err := newEngine(cfg, false)
	if err != nil {
		return nil, err
	}
	if e == nil {
		return &Stats{}, nil
	}
	if e.timed {
		// Round 1's wall time starts at launch, not at engine construction.
		e.lastTick = time.Now()
	}
	if e.mode == ModeEvent {
		e.runEvent(proc)
	} else {
		e.wg.Add(e.n)
		for v := 0; v < e.n; v++ {
			go e.runVertex(e.ctxs[v], proc)
		}
		e.wg.Wait()
	}
	return e.result()
}

// RunMachines executes one Machine per vertex of cfg.Graph under the
// mode cfg selects: ModeStep (the ModeAuto default for machines) drives
// them with the goroutine-free step loop, while ModeBarrier/ModeEvent
// wrap each machine in a blocking driver so the equivalence tests can
// compare all three schedulers on identical protocol code. Results and
// Stats are bit-identical across modes. factory is called once per
// vertex — sequentially in id order under ModeStep, concurrently on the
// vertex goroutines otherwise, so it must be safe for concurrent use
// (per-vertex writes to distinct slice indices are fine).
func RunMachines(cfg Config, factory func(*Ctx) Machine) (*Stats, error) {
	if cfg.Shards > 0 {
		return runSharded(cfg, factory)
	}
	e, err := newEngine(cfg, true)
	if err != nil {
		return nil, err
	}
	if e == nil {
		return &Stats{}, nil
	}
	if e.mode == ModeStep {
		machines := make([]Machine, e.n)
		for v := 0; v < e.n; v++ {
			machines[v] = factory(e.ctxs[v])
		}
		if e.timed {
			// Machine construction is setup, not round 1.
			e.lastTick = time.Now()
		}
		e.runStep(machines)
		return e.result()
	}
	if e.timed {
		e.lastTick = time.Now()
	}
	proc := func(c *Ctx) { driveMachine(c, factory(c)) }
	if e.mode == ModeEvent {
		e.runEvent(proc)
	} else {
		e.wg.Add(e.n)
		for v := 0; v < e.n; v++ {
			go e.runVertex(e.ctxs[v], proc)
		}
		e.wg.Wait()
	}
	return e.result()
}

// runVertex is the per-vertex goroutine wrapper of barrier mode: it gates
// entry through the worker pool, runs proc, and unwinds cleanly on engine
// aborts.
func (e *engine) runVertex(c *Ctx, proc func(*Ctx)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(abortSignal); !ok {
				// A protocol bug (bad send, failed type assertion, ...)
				// must not kill the process or deadlock the barrier: turn
				// it into a Run error and unwind every other vertex.
				e.mu.Lock()
				if e.abort == nil {
					e.abort = vertexPanicError(c.id, r)
				}
				e.cond.Broadcast()
				e.mu.Unlock()
			}
		}
		e.finish(c)
	}()
	c.acquire()
	proc(c)
}

// vertexPanicError converts a recovered vertex panic into the Run error,
// identically in both modes.
func vertexPanicError(id int, r any) error {
	return fmt.Errorf("dist: vertex %d panicked: %v\n%s", id, r, debug.Stack())
}

// roundLimitError builds the ErrRoundLimit abort, identically in every
// mode.
func (e *engine) roundLimitError() error {
	return fmt.Errorf("%w: %d rounds executed (MaxRounds %d)", ErrRoundLimit, e.stats.Rounds, e.maxRounds)
}

// canceled reports whether Config.Cancel has fired. Non-blocking and
// nil-safe; checked at round boundaries like the round limit.
func (e *engine) canceled() bool {
	if e.cancel == nil {
		return false
	}
	select {
	case <-e.cancel:
		return true
	default:
		return false
	}
}

// cancelError builds the ErrCanceled abort, identically in every mode.
func (e *engine) cancelError() error {
	return fmt.Errorf("%w after %d rounds", ErrCanceled, e.stats.Rounds)
}

// finish retires a vertex whose proc returned (or was unwound). If every
// other running vertex is already blocked, the retirement is what
// completes the round (or quiesces the run).
//
// Retire-flush: sends still queued when the vertex retires are its last
// words, committed by the retirement itself and delivered with the round
// in flight — so a halting vertex need not spend an extra flush round to
// announce its departure. On an aborted or quiesced run (or when the
// vertex was unwound mid-step) the sends are discarded instead, never
// half-delivered depending on peers.
func (e *engine) finish(c *Ctx) {
	c.release()
	e.mu.Lock()
	if e.abort == nil && !e.quiesced && c.hasSends() {
		e.dirty = append(e.dirty, c)
	} else {
		c.clearSends()
	}
	c.done = true
	e.traceBlocked(TraceRetire, c.id)
	e.running--
	e.stepped++
	e.maybeAdvanceLocked()
	e.mu.Unlock()
	e.wg.Done()
}

// barrier is the blocking body of a NextRound step in barrier mode: park
// until every running vertex has blocked or finished, and have the last
// one meter and deliver the round. The caller reads its inbox (boxed or
// record flavor) after this returns.
func (e *engine) barrier(c *Ctx) {
	c.release()
	e.mu.Lock()
	if e.abort != nil {
		e.mu.Unlock()
		panic(abortSignal{})
	}
	if e.quiesced {
		// The network is permanently silent (see package docs): rounds no
		// longer advance, sends go nowhere, inboxes stay empty.
		c.clearSends()
		e.mu.Unlock()
		c.acquire()
		return
	}
	e.arrived++
	e.stepped++
	if c.hasSends() {
		// Dirty-sender tracking: senders register themselves on arrival, so
		// round delivery never scans the n vertex contexts. Quiet rounds —
		// ubiquitous in the later iterations of the spanner algorithms,
		// where most vertices have terminated their stars — cost O(1)
		// routing work instead of O(n).
		e.dirty = append(e.dirty, c)
	}
	gen := e.gen
	e.maybeAdvanceLocked()
	for e.gen == gen && e.abort == nil {
		e.cond.Wait()
	}
	if e.abort != nil {
		e.mu.Unlock()
		panic(abortSignal{})
	}
	e.mu.Unlock()
	c.acquire()
}

// park is the blocking body of a Recv step in barrier mode: commit queued
// sends, leave the running set, and sleep until a round delivers messages
// to this vertex (true) — or until the network quiesces (false).
func (e *engine) park(c *Ctx) bool {
	c.release()
	e.mu.Lock()
	if e.abort != nil {
		e.mu.Unlock()
		panic(abortSignal{})
	}
	if e.quiesced {
		c.clearSends()
		e.mu.Unlock()
		c.acquire()
		return false
	}
	if c.hasSends() {
		e.dirty = append(e.dirty, c)
	}
	c.parked = true
	e.traceBlocked(TracePark, c.id)
	e.running--
	e.parked++
	e.stepped++
	e.maybeAdvanceLocked()
	for c.parked && e.abort == nil && !e.quiesced {
		e.cond.Wait()
	}
	if e.abort != nil {
		e.mu.Unlock()
		panic(abortSignal{})
	}
	if c.parked {
		// Quiesced while parked: nobody will ever write this inbox again.
		c.parked = false
		e.parked--
		e.running++
		e.mu.Unlock()
		c.acquire()
		return false
	}
	// A delivery unparked this vertex; the round completer already moved it
	// back into the running count before releasing the barrier.
	e.mu.Unlock()
	c.acquire()
	return true
}

// maybeAdvanceLocked is barrier mode's round-advance rule, applied after
// every transition that blocks or retires a vertex: complete the round
// when every running vertex has arrived; when nobody is left running,
// flush any committed sends (which may wake parked receivers) and then
// quiesce if vertices remain parked with no traffic to wake them. Last
// words that can only reach retired vertices are metered and dropped
// without charging a round — no receiver could ever observe one, so a
// round here would count a boundary no vertex crosses.
func (e *engine) maybeAdvanceLocked() {
	if e.abort != nil || e.quiesced {
		return
	}
	if e.running > 0 {
		if e.arrived == e.running {
			e.completeRoundLocked()
		}
		return
	}
	if len(e.dirty) > 0 {
		if e.flushWakesLocked() {
			e.completeRoundLocked()
		} else {
			e.routeLocked()
			if e.abort != nil {
				e.cond.Broadcast()
				return
			}
		}
	}
	if e.running == 0 && e.parked > 0 && e.abort == nil {
		e.quiesced = true
		e.cond.Broadcast()
	}
}

// flushWakesLocked reports whether any pending (dirty) send targets a
// vertex that is still alive — i.e. whether flushing would be observable
// as a round. Parked receivers count: a delivery would wake them.
func (e *engine) flushWakesLocked() bool {
	for _, c := range e.dirty {
		for _, m := range c.outbox {
			if !e.ctxs[m.to].done {
				return true
			}
		}
		for ri := range c.outRecs {
			if !e.ctxs[c.outRecs[ri].to].done {
				return true
			}
		}
	}
	return false
}

// completeRoundLocked meters and delivers every queued message, advances
// the round, moves parked vertices that received messages back into the
// running set, and releases the barrier. Called with e.mu held by the last
// vertex to block (or retire).
func (e *engine) completeRoundLocked() {
	if e.abort == nil {
		e.stats.Rounds++
		if e.stats.Rounds > e.maxRounds {
			e.abort = e.roundLimitError()
		} else if e.canceled() {
			e.abort = e.cancelError()
		} else {
			e.routeLocked()
			// Receivers unparked by routing rejoin the running set before
			// the barrier releases, so the next round cannot complete
			// without them.
			for range e.woken {
				e.parked--
				e.running++
			}
			e.woken = e.woken[:0]
			e.recordRoundLocked()
		}
	}
	e.arrived = 0
	e.gen++
	e.cond.Broadcast()
}

// recordRoundLocked folds the completed round's activity into Stats and
// fires the OnRound hook and the tracer's Phase/RoundTime calls. Called
// with every vertex blocked (under e.mu in barrier mode, from the
// scheduler in event and step mode), identically in every mode: Active
// counts the vertices that blocked or retired since the previous
// completion, Parked the vertices still parked after this round's
// deliveries, Delivered/DeliveredBits the payloads routing just placed
// in live inboxes (computed only when OnRound or Tracer is set).
func (e *engine) recordRoundLocked() {
	act := RoundActivity{
		Round: e.stats.Rounds, Active: e.stepped, Parked: e.parked, Senders: e.senders,
		Delivered: e.deliv, DeliveredBits: e.delivBits,
	}
	e.stats.ActiveSteps += int64(act.Active)
	e.stats.ParkedSteps += int64(act.Parked)
	if act.Active > e.stats.PeakActive {
		e.stats.PeakActive = act.Active
	}
	e.stepped = 0
	e.senders = 0
	e.deliv, e.delivBits = 0, 0
	if e.tracer != nil {
		e.tracer.Phase(act)
		e.traceRoundTime(act.Round)
	}
	if e.onRound != nil {
		e.onRound(act)
	}
	if e.timed {
		// Hook and tracer time belongs to neither round: re-arm the
		// boundary timestamp after the callbacks return.
		e.lastTick = time.Now()
	}
}

// meterResult is the per-sender accounting of one round, computed
// independently per sender so the work can be sharded.
type meterResult struct {
	msgs, bits, cut int64
	maxMsg, maxEdge int
	viol            int64
	violTo          int // receiver of this sender's first violation, -1 if none
	violBits        int
}

// routeLocked aggregates statistics and delivers all outboxes, timing
// the pass for the tracer's timing channel when one is installed. The
// logical work lives in route.
func (e *engine) routeLocked() {
	if !e.timed {
		e.route()
		return
	}
	t0 := time.Now()
	e.route()
	e.routeNs += int64(time.Since(t0))
}

// route aggregates statistics and delivers all outboxes. The dirty
// list holds exactly the vertices that queued sends this round (registered
// as they blocked), in arrival order; it is re-sorted by vertex id so
// inboxes arrive sorted by sender and every statistic is deterministic
// regardless of goroutine scheduling. Senders are metered independently
// (in parallel for large rounds). Parked receivers of a delivery are
// flipped awake and collected in e.woken for the caller's mode-specific
// bookkeeping. In barrier mode the caller holds e.mu; in event mode the
// scheduler calls it while every vertex is blocked, which serializes it
// just as well. With a tracer installed, the serial delivery loop is
// also where Send/Deliver/Wake events are emitted — senders in
// ascending id, a sender's payloads in send order, boxed before record
// sends — which is what makes the logical transcript deterministic.
func (e *engine) route() {
	// All vertices are blocked while routing runs, so truncating in place
	// cannot race with new arrivals registering.
	senders := e.dirty
	e.dirty = e.dirty[:0]
	e.senders = len(senders)
	if len(senders) == 0 {
		return
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i].id < senders[j].id })
	results := make([]meterResult, len(senders))
	if e.routePar > 1 && len(senders) >= 64 {
		var wg sync.WaitGroup
		shard := (len(senders) + e.routePar - 1) / e.routePar
		for lo := 0; lo < len(senders); lo += shard {
			hi := lo + shard
			if hi > len(senders) {
				hi = len(senders)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					results[i] = e.meterSender(senders[i])
				}
			}(lo, hi)
		}
		wg.Wait()
	} else {
		for i, c := range senders {
			results[i] = e.meterSender(c)
		}
	}
	for i, c := range senders {
		r := &results[i]
		e.stats.Messages += r.msgs
		e.stats.TotalBits += r.bits
		e.stats.CutBits += r.cut
		if r.maxMsg > e.stats.MaxMessageBits {
			e.stats.MaxMessageBits = r.maxMsg
		}
		if r.maxEdge > e.stats.MaxEdgeRoundBits {
			e.stats.MaxEdgeRoundBits = r.maxEdge
		}
		if r.viol > 0 {
			e.stats.BandwidthViolations += r.viol
			if e.enforce && e.abort == nil {
				e.abort = fmt.Errorf("%w: vertex %d sent %d bits to %d in round %d (budget %d)",
					ErrBandwidth, c.id, r.violBits, r.violTo, e.stats.Rounds, e.bandwidth)
			}
		}
		for _, m := range c.outbox {
			to := e.ctxs[m.to]
			var b int
			if e.meterDlv {
				// Delivery accounting re-sizes the payload (senders meter in
				// the parallel shards above); only paid with OnRound/Tracer.
				if b = m.p.Bits(); b < 0 {
					b = 0
				}
				if e.tracer != nil {
					e.tracer.Event(TraceEvent{Kind: TraceSend, Round: e.stats.Rounds, V: c.id, Peer: m.to, Boxed: true, Bits: b})
				}
			}
			if to.done {
				continue
			}
			if e.meterDlv {
				e.deliv++
				e.delivBits += int64(b)
				if e.tracer != nil {
					e.tracer.Event(TraceEvent{Kind: TraceDeliver, Round: e.stats.Rounds, V: m.to, Peer: c.id, Boxed: true, Bits: b})
				}
			}
			to.inbox = append(to.inbox, Message{From: c.id, Payload: m.p})
			if to.parked {
				to.parked = false
				e.woken = append(e.woken, to)
				if e.tracer != nil {
					e.tracer.Event(TraceEvent{Kind: TraceWake, Round: e.stats.Rounds, V: m.to, Peer: c.id})
				}
			}
		}
		// Record deliveries: copy the header and the packed int tail into
		// the receiver's arena. Senders are visited in ascending id and a
		// sender's records in send order, so the arena is sorted exactly
		// like the boxed inbox.
		for ri := range c.outRecs {
			o := &c.outRecs[ri]
			to := e.ctxs[o.to]
			if e.tracer != nil {
				e.tracer.Event(TraceEvent{Kind: TraceSend, Round: e.stats.Rounds, V: c.id, Peer: int(o.to), Tag: o.tag, Bits: int(o.bits)})
			}
			if to.done {
				continue
			}
			if e.meterDlv {
				e.deliv++
				e.delivBits += int64(o.bits)
				if e.tracer != nil {
					e.tracer.Event(TraceEvent{Kind: TraceDeliver, Round: e.stats.Rounds, V: int(o.to), Peer: c.id, Tag: o.tag, Bits: int(o.bits)})
				}
			}
			off := int32(len(to.inInts))
			if o.n > 0 {
				to.inInts = append(to.inInts, c.outInts[o.off:o.off+o.n]...)
			}
			to.inRecs = append(to.inRecs, InRec{
				From: c.id,
				Rec:  Rec{Tag: o.tag, Flag: o.flag, A: o.a, B: o.b, F0: o.f0, F1: o.f1, F2: o.f2},
				off:  off, n: o.n,
			})
			if to.parked {
				to.parked = false
				e.woken = append(e.woken, to)
				if e.tracer != nil {
					e.tracer.Event(TraceEvent{Kind: TraceWake, Round: e.stats.Rounds, V: int(o.to), Peer: c.id})
				}
			}
		}
		c.clearSends()
	}
}

// meterSender sizes one sender's round of messages: global aggregates plus
// the per-directed-edge accumulation behind MaxEdgeRoundBits and the
// bandwidth check. It touches only the sender's own state. Only the edge
// slots actually written this round are revisited (and re-zeroed), so the
// cost is O(#messages) rather than O(degree) — a vertex of degree Δ that
// pings one neighbor no longer pays a Δ-wide scan.
func (e *engine) meterSender(c *Ctx) meterResult {
	r := meterResult{violTo: -1}
	for _, m := range c.outbox {
		b := m.p.Bits()
		if b < 0 {
			b = 0
		}
		r.msgs++
		r.bits += int64(b)
		if b > r.maxMsg {
			r.maxMsg = b
		}
		if e.cut != nil && e.cut[c.id] != e.cut[m.to] {
			r.cut += int64(b)
		}
		i := c.nbrIndex(m.to)
		if b > 0 && c.edgeBits[i] == 0 {
			c.touched = append(c.touched, i)
		}
		c.edgeBits[i] += b
	}
	// Record sends carry their size from SendRec and their neighbor slot
	// from validation time: no interface call, no binary search.
	for ri := range c.outRecs {
		o := &c.outRecs[ri]
		b := int(o.bits)
		if b < 0 {
			b = 0
		}
		r.msgs++
		r.bits += int64(b)
		if b > r.maxMsg {
			r.maxMsg = b
		}
		if e.cut != nil && e.cut[c.id] != e.cut[o.to] {
			r.cut += int64(b)
		}
		i := int(o.nbrIdx)
		if b > 0 && c.edgeBits[i] == 0 {
			c.touched = append(c.touched, i)
		}
		c.edgeBits[i] += b
	}
	for _, i := range c.touched {
		eb := c.edgeBits[i]
		c.edgeBits[i] = 0
		if eb > r.maxEdge {
			r.maxEdge = eb
		}
		if e.bandwidth > 0 && eb > e.bandwidth {
			r.viol++
			if r.violTo < 0 {
				r.violTo = c.nbrs[i]
				r.violBits = eb
			}
		}
	}
	c.touched = c.touched[:0]
	return r
}
